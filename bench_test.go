// Benchmarks: one target per paper artifact (Fig. 2–4, Table 1) and one per
// evaluation experiment (E1–E10 of DESIGN.md §4). The experiment benchmarks
// execute the Quick-size drivers; `go run ./cmd/rtds-bench` runs the Full
// configuration that EXPERIMENTS.md records.
package rtds_test

import (
	"testing"
	"time"

	rtds "repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

// BenchmarkFig2TaskGraph measures constructing the paper's example DAG.
func BenchmarkFig2TaskGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PaperExampleDAG()
	}
}

// BenchmarkFig3Fig4Schedules measures the mapper computing the schedules S
// (Fig. 3) and S* (Fig. 4).
func BenchmarkFig3Fig4Schedules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PaperExample(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Adjustment measures the full §12 pipeline including the
// window adjustment of Table 1, verifying the values each iteration.
func BenchmarkTable1Adjustment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.PaperExample()
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.VerifyPaperExample(res); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTable(b *testing.B, run func(experiments.Size, int64) (*metrics.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := run(experiments.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1GuaranteeVsLoad regenerates the E1 table.
func BenchmarkE1GuaranteeVsLoad(b *testing.B) { benchTable(b, experiments.E1GuaranteeVsLoad) }

// BenchmarkE2MessagesVsNetworkSize regenerates the E2 table.
func BenchmarkE2MessagesVsNetworkSize(b *testing.B) {
	benchTable(b, experiments.E2MessagesVsNetworkSize)
}

// BenchmarkE3SphereRadius regenerates the E3 table.
func BenchmarkE3SphereRadius(b *testing.B) { benchTable(b, experiments.E3SphereRadius) }

// BenchmarkE4DeadlineTightness regenerates the E4 table.
func BenchmarkE4DeadlineTightness(b *testing.B) { benchTable(b, experiments.E4DeadlineTightness) }

// BenchmarkE5LaxityDispatch regenerates the E5 table.
func BenchmarkE5LaxityDispatch(b *testing.B) { benchTable(b, experiments.E5LaxityDispatch) }

// BenchmarkE6UniformMachines regenerates the E6 table.
func BenchmarkE6UniformMachines(b *testing.B) { benchTable(b, experiments.E6UniformMachines) }

// BenchmarkE7Preemption regenerates the E7 table.
func BenchmarkE7Preemption(b *testing.B) { benchTable(b, experiments.E7Preemption) }

// BenchmarkE8MapperHeuristics regenerates the E8 table.
func BenchmarkE8MapperHeuristics(b *testing.B) { benchTable(b, experiments.E8MapperHeuristics) }

// BenchmarkE9PCSConstruction regenerates the E9 table.
func BenchmarkE9PCSConstruction(b *testing.B) { benchTable(b, experiments.E9PCSConstruction) }

// BenchmarkE12FaultTolerance regenerates the E12 fault sweep — the cost of
// simulating under injected loss, jitter and crashes.
func BenchmarkE12FaultTolerance(b *testing.B) { benchTable(b, experiments.E12FaultTolerance) }

// BenchmarkSuiteSerial runs the entire Quick suite serially — the baseline
// the parallel runner is measured against.
func BenchmarkSuiteSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.All(experiments.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteParallel runs the entire Quick suite on the worker pool at
// GOMAXPROCS. On a 4+ core machine this is the ≥2x wall-time win the
// harness banks on; on one core it degenerates to the serial cost.
func BenchmarkSuiteParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(experiments.Quick, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10TransportDES measures one distributed admission end to end on
// the deterministic transport.
func BenchmarkE10TransportDES(b *testing.B) {
	topo := rtds.NewNetwork(3)
	topo.MustAddEdge(0, 1, 0.05)
	topo.MustAddEdge(1, 2, 0.05)
	job := rtds.NewJob("par").Task(1, 10).Task(2, 10).MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := rtds.NewCluster(topo, rtds.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		rec, err := c.Submit(0, 0, job, 16)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
		if rec.Outcome != core.AcceptedDistributed {
			b.Fatalf("outcome %v", rec.Outcome)
		}
	}
}

// BenchmarkE10TransportLive measures the same admission on the live
// goroutine transport (includes real scaled delays, so it is wall-clock
// bound by design).
func BenchmarkE10TransportLive(b *testing.B) {
	topo := rtds.NewNetwork(3)
	topo.MustAddEdge(0, 1, 0.05)
	topo.MustAddEdge(1, 2, 0.05)
	cfg := rtds.DefaultConfig()
	cfg.EnrollSlack = 2
	cfg.ReleasePadFactor = 25
	job := rtds.NewJob("par").Task(1, 10).Task(2, 10).MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := rtds.NewLiveCluster(topo, cfg, 100*time.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Submit(0, 0, job, 40); err != nil {
			b.Fatal(err)
		}
		if !c.Wait(30 * time.Second) {
			b.Fatal("no quiesce")
		}
		c.Close()
	}
}

// BenchmarkEndToEndThroughput measures jobs decided per second on a mid-size
// cluster under the standard workload — the headline systems number.
func BenchmarkEndToEndThroughput(b *testing.B) {
	topo := rtds.NewRandomNetwork(32, 3, 1)
	arrivals, err := rtds.GenerateWorkload(rtds.Workload{
		Sites:       32,
		Horizon:     200,
		RatePerSite: 0.03,
		TaskSize:    8,
		Tightness:   2.5,
		Seed:        1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := rtds.NewCluster(topo, rtds.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := rtds.SubmitAll(c, arrivals); err != nil {
			b.Fatal(err)
		}
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(arrivals)), "jobs/op")
}
