// Command rtds-bench runs the full experiment suite (DESIGN.md §4) on a
// parallel worker pool and prints every table; -md emits GitHub-flavored
// markdown for EXPERIMENTS.md, -json writes the machine-readable suite
// benchmark (per-experiment wall time, events/sec, guarantee ratios) so the
// performance trajectory is tracked across PRs.
//
// Usage:
//
//	rtds-bench [-quick] [-md] [-seed N] [-trials N] [-workers N] [-json] [-out FILE] [-exp SUBSTR]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "small networks/horizons (seconds instead of minutes)")
	md := flag.Bool("md", false, "emit markdown tables")
	seed := flag.Int64("seed", 1, "base random seed for every experiment")
	trials := flag.Int("trials", 1, "run the suite at seeds seed..seed+trials-1")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size (1 = serial)")
	jsonOut := flag.Bool("json", false, "write the machine-readable suite benchmark")
	outPath := flag.String("out", "BENCH_suite.json", "path of the -json report")
	expFilter := flag.String("exp", "", "run only experiments whose name contains this substring (e.g. E12, fault)")
	flag.Parse()

	size := experiments.Full
	if *quick {
		size = experiments.Quick
	}
	if *trials < 1 {
		*trials = 1
	}
	if *workers < 1 {
		*workers = runtime.GOMAXPROCS(0)
	}

	// One task per experiment×seed; trial-major order keeps each trial's
	// tables contiguous and in suite order.
	suite := experiments.Suite()
	if *expFilter != "" {
		var keep []experiments.Named
		for _, n := range suite {
			if strings.Contains(strings.ToLower(n.Name), strings.ToLower(*expFilter)) {
				keep = append(keep, n)
			}
		}
		if len(keep) == 0 {
			fmt.Fprintf(os.Stderr, "error: -exp %q matches no experiment; suite:", *expFilter)
			for _, n := range suite {
				fmt.Fprintf(os.Stderr, " %s", n.Name)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(1)
		}
		suite = keep
	}
	var tasks []experiments.Task
	var seeds []int64
	for t := 0; t < *trials; t++ {
		s := *seed + int64(t)
		seeds = append(seeds, s)
		for _, n := range suite {
			tasks = append(tasks, experiments.Task{Exp: n, Seed: s})
		}
	}

	start := time.Now()
	results := experiments.RunTasks(size, tasks, *workers)
	wall := time.Since(start)
	if err := experiments.FirstError(results); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	// Print the first trial's tables (the historical rtds-bench output);
	// additional trials only feed the JSON report.
	for _, r := range results[:len(suite)] {
		if *md {
			fmt.Println(r.Table.Markdown())
		} else {
			fmt.Println(r.Table.String())
		}
	}

	if *jsonOut {
		rep := experiments.NewBenchReport(size, seeds, *workers, wall, results)
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d experiment runs, %.0f events/sec)\n",
			*outPath, len(rep.Experiments), rep.EventsPerSec)
	}
	fmt.Fprintf(os.Stderr, "suite completed in %v on %d workers (%d tasks)\n",
		wall.Round(time.Millisecond), *workers, len(tasks))
}
