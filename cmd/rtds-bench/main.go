// Command rtds-bench runs the full experiment suite (DESIGN.md §4) on a
// parallel worker pool and prints every table; -md emits GitHub-flavored
// markdown for EXPERIMENTS.md, -json writes the machine-readable suite
// benchmark (per-experiment wall time, events/sec, guarantee ratios) so the
// performance trajectory is tracked across PRs.
//
// With -scheme the tool instead benchmarks one registered scheme on one
// -topo topology: a targeted cell (scheme × topology × load) with wall time
// and events/sec, without running the whole suite.
//
// With -check the tool is the CI benchmark-regression gate: it re-runs the
// suite at the committed baseline's size and seeds and fails if any
// per-experiment guarantee ratio drifts from the baseline or suite
// throughput (events/sec) regresses beyond -evps-tolerance.
//
// -kernel-workers selects the simulation kernel for every RTDS-core cluster
// the run builds: 0 (the default) the serial reference engine, N >= 1 the
// conservative parallel kernel with N partitions. The produced tables are
// byte-identical either way — the flag trades wall-clock time only, and
// running -check with it is a live proof of that invariant.
//
// -cpuprofile, -memprofile and -trace write the standard pprof/runtime-trace
// artifacts for whichever mode runs, so kernel scaling work can be measured
// rather than guessed at.
//
// Usage:
//
//	rtds-bench [-quick] [-md] [-seed N] [-trials N] [-workers N] [-kernel-workers N] [-json] [-out FILE] [-exp SUBSTR]
//	rtds-bench -scheme NAME [-topo KIND] [-sites N] [-load F] [-quick] [-seed N] [-kernel-workers N]
//	rtds-bench -check BENCH_suite.json [-workers N] [-kernel-workers N] [-evps-tolerance 0.25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/scheme"
)

func main() {
	quick := flag.Bool("quick", false, "small networks/horizons (seconds instead of minutes)")
	md := flag.Bool("md", false, "emit markdown tables")
	seed := flag.Int64("seed", 1, "base random seed for every experiment")
	trials := flag.Int("trials", 1, "run the suite at seeds seed..seed+trials-1")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size (1 = serial)")
	jsonOut := flag.Bool("json", false, "write the machine-readable suite benchmark")
	outPath := flag.String("out", "BENCH_suite.json", "path of the -json report")
	expFilter := flag.String("exp", "", "run only experiments whose name contains this substring (e.g. E12, fault)")
	schemeName := flag.String("scheme", "", "benchmark one scheme ("+strings.Join(scheme.Names(), "|")+") instead of the suite")
	topoKind := flag.String("topo", "random", "topology kind of the -scheme benchmark: ring|line|star|clique|grid|torus|hypercube|tree|random|geometric")
	sites := flag.Int("sites", 0, "sites of the -scheme benchmark (0 = suite default for the size)")
	load := flag.Float64("load", 0.6, "offered load of the -scheme benchmark")
	checkPath := flag.String("check", "", "regression gate: re-run the suite at this baseline's size/seeds and fail on drift")
	evpsTol := flag.Float64("evps-tolerance", 0.25, "-check: allowed events/sec regression (0.25 = 25%)")
	kernelWorkers := flag.Int("kernel-workers", 0, "simulation kernel for rtds-core clusters: 0 = serial reference, N = parallel kernel with N partitions (tables are byte-identical)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken at exit) to this file")
	tracePath := flag.String("trace", "", "write a runtime execution trace of the run to this file")
	flag.Parse()

	size := experiments.Full
	if *quick {
		size = experiments.Quick
	}
	if *trials < 1 {
		*trials = 1
	}
	if *workers < 1 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *kernelWorkers < 0 {
		fmt.Fprintln(os.Stderr, "error: -kernel-workers must be >= 0")
		os.Exit(1)
	}
	experiments.SetKernelWorkers(*kernelWorkers)
	stopProfiling, err := startProfiling(*cpuProfile, *memProfile, *tracePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	defer stopProfiling()

	// The modes accept disjoint flag sets; a flag from another mode would
	// be silently ignored, so refuse it loudly instead of letting a user
	// read suite tables as torus numbers (or wait for a report that will
	// never be written).
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *checkPath != "" {
		for _, other := range []string{"scheme", "topo", "sites", "load", "json", "out", "md", "exp", "trials", "quick", "seed"} {
			if explicit[other] {
				fmt.Fprintf(os.Stderr, "error: -%s does not apply to -check mode (size and seeds come from the baseline)\n", other)
				os.Exit(1)
			}
		}
		if err := checkBaseline(*checkPath, *workers, *evpsTol); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	if *schemeName != "" {
		for _, suiteOnly := range []string{"json", "out", "md", "exp", "trials", "workers"} {
			if explicit[suiteOnly] {
				fmt.Fprintf(os.Stderr, "error: -%s applies to suite runs only, not -scheme mode\n", suiteOnly)
				os.Exit(1)
			}
		}
		if err := benchScheme(*schemeName, *topoKind, *sites, *load, *quick, *seed, *kernelWorkers); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	for _, schemeOnly := range []string{"topo", "sites", "load"} {
		if explicit[schemeOnly] {
			fmt.Fprintf(os.Stderr, "error: -%s applies to -scheme mode only; the suite runs its fixed configurations\n", schemeOnly)
			os.Exit(1)
		}
	}

	// One task per experiment×seed; trial-major order keeps each trial's
	// tables contiguous and in suite order.
	suite := experiments.Suite()
	if *expFilter != "" {
		var keep []experiments.Named
		for _, n := range suite {
			if strings.Contains(strings.ToLower(n.Name), strings.ToLower(*expFilter)) {
				keep = append(keep, n)
			}
		}
		if len(keep) == 0 {
			fmt.Fprintf(os.Stderr, "error: -exp %q matches no experiment; suite:", *expFilter)
			for _, n := range suite {
				fmt.Fprintf(os.Stderr, " %s", n.Name)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(1)
		}
		suite = keep
	}
	var tasks []experiments.Task
	var seeds []int64
	for t := 0; t < *trials; t++ {
		s := *seed + int64(t)
		seeds = append(seeds, s)
		for _, n := range suite {
			tasks = append(tasks, experiments.Task{Exp: n, Seed: s})
		}
	}

	start := time.Now()
	results := experiments.RunTasks(size, tasks, *workers)
	wall := time.Since(start)
	if err := experiments.FirstError(results); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	// Print the first trial's tables (the historical rtds-bench output);
	// additional trials only feed the JSON report.
	for _, r := range results[:len(suite)] {
		if *md {
			fmt.Println(r.Table.Markdown())
		} else {
			fmt.Println(r.Table.String())
		}
	}

	if *jsonOut {
		rep := experiments.NewBenchReport(size, seeds, *workers, wall, results)
		fmt.Fprintln(os.Stderr, "running hot-path micro-benchmarks (allocs/op)")
		rep.Micro = experiments.RunMicroBenches()
		fmt.Fprintln(os.Stderr, "running kernel scaling benchmark (token storm)")
		kb, err := experiments.RunKernelBench()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		rep.Kernel = kb
		fmt.Fprintln(os.Stderr, "running gateway submission benchmark (durable front door)")
		gb, err := experiments.RunGatewayBench()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		rep.Gateway = gb
		fmt.Fprintln(os.Stderr, "running hierarchical routing benchmark (scale sweep)")
		rb, err := experiments.RunRoutingBench()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		rep.Routing = rb
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d experiment runs, %.0f events/sec)\n",
			*outPath, len(rep.Experiments), rep.EventsPerSec)
	}
	fmt.Fprintf(os.Stderr, "suite completed in %v on %d workers (%d tasks)\n",
		wall.Round(time.Millisecond), *workers, len(tasks))
}

// startProfiling starts whichever of the three profilers were requested and
// returns a single stop function (run the deferred way; error-path os.Exit
// calls lose the profile, which is fine — the run failed). The heap profile
// is taken at stop time, after a GC, so it shows retained memory rather than
// transient garbage.
func startProfiling(cpuPath, memPath, tracePath string) (func(), error) {
	var stops []func()
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("start execution trace: %w", err)
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	if memPath != "" {
		stops = append(stops, func() {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "error: write heap profile:", err)
			}
		})
	}
	return func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}, nil
}

// checkBaseline is the benchmark-regression gate: re-run the suite exactly
// as the committed baseline describes (size, seeds), then compare
// guarantee ratios (exact) and events/sec (within tolerance).
func checkBaseline(path string, workers int, evpsTol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var baseline experiments.BenchReport
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if len(baseline.Experiments) == 0 || len(baseline.Seeds) == 0 {
		return fmt.Errorf("baseline %s has no experiments/seeds", path)
	}
	size := experiments.Full
	if baseline.Size == "quick" {
		size = experiments.Quick
	}
	suite := experiments.Suite()
	var tasks []experiments.Task
	for _, s := range baseline.Seeds {
		for _, n := range suite {
			tasks = append(tasks, experiments.Task{Exp: n, Seed: s})
		}
	}
	fmt.Fprintf(os.Stderr, "regression gate: re-running the %s suite at seeds %v on %d workers\n",
		baseline.Size, baseline.Seeds, workers)
	start := time.Now()
	results := experiments.RunTasks(size, tasks, workers)
	wall := time.Since(start)
	if err := experiments.FirstError(results); err != nil {
		return err
	}
	current := experiments.NewBenchReport(size, baseline.Seeds, workers, wall, results)
	if len(baseline.Micro) > 0 {
		fmt.Fprintln(os.Stderr, "regression gate: running hot-path micro-benchmarks (allocs/op)")
		current.Micro = experiments.RunMicroBenches()
	}
	if baseline.Kernel != nil {
		fmt.Fprintln(os.Stderr, "regression gate: running kernel scaling benchmark (token storm)")
		kb, err := experiments.RunKernelBench()
		if err != nil {
			return err
		}
		current.Kernel = kb
	}
	if baseline.Gateway != nil {
		fmt.Fprintln(os.Stderr, "regression gate: running gateway submission benchmark")
		gb, err := experiments.RunGatewayBench()
		if err != nil {
			return err
		}
		current.Gateway = gb
	}
	if baseline.Routing != nil {
		fmt.Fprintln(os.Stderr, "regression gate: running hierarchical routing benchmark")
		rb, err := experiments.RunRoutingBench()
		if err != nil {
			return err
		}
		current.Routing = rb
	}
	if err := experiments.CompareReports(baseline, current, evpsTol); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"regression gate passed: %d experiments match the baseline, %.0f events/sec (baseline %.0f) in %v\n",
		len(current.Experiments), current.EventsPerSec, baseline.EventsPerSec, wall.Round(time.Millisecond))
	return nil
}

// benchScheme benchmarks one registered scheme on one generated topology:
// build (bootstrap included), submit a standard workload, drain, and report
// the outcome with wall time and simulation throughput.
func benchScheme(name, topoKind string, sites int, load float64, quick bool, seed int64, kernelWorkers int) error {
	s, ok := scheme.Get(name)
	if !ok {
		return fmt.Errorf("unknown scheme %q; have %s", name, strings.Join(scheme.Names(), ", "))
	}
	n, horizon := 32, 400.0
	if quick {
		n, horizon = 16, 150.0
	}
	if sites > 0 {
		n = sites
	}
	topo, err := graph.Generate(graph.TopologyKind(topoKind), n, experiments.StdDelays, seed)
	if err != nil {
		return err
	}
	// Literally the suite's workload shape, so "-scheme shares the suite's
	// workload" stays true by construction.
	arrivals, err := experiments.ArrivalsForLoad(
		experiments.StdSpec(topo.Len(), horizon, seed), load)
	if err != nil {
		return err
	}
	start := time.Now()
	c, err := s.Build(topo, scheme.Config{Horizon: horizon, KernelWorkers: kernelWorkers})
	if err != nil {
		return err
	}
	for _, a := range arrivals {
		if err := c.Submit(a.At, a.Origin, a.Graph, a.Deadline); err != nil {
			return err
		}
	}
	if err := c.Run(); err != nil {
		return err
	}
	wall := time.Since(start)
	res := c.Summarize()
	fmt.Printf("scheme %s on %s (%d sites, %d links), load %.2f, %d jobs\n",
		s.Name(), topoKind, topo.Len(), topo.NumEdges(), load, len(arrivals))
	fmt.Printf("ratio=%.3f msgs/job=%.1f bytes=%d\n",
		res.GuaranteeRatio, res.MessagesPerJob, res.Bytes)
	if res.Core != nil {
		fmt.Println(*res.Core)
	}
	evps := 0.0
	if wall > 0 {
		evps = float64(c.EventsProcessed()) / wall.Seconds()
	}
	fmt.Fprintf(os.Stderr, "completed in %v (%d events, %.0f events/sec)\n",
		wall.Round(time.Millisecond), c.EventsProcessed(), evps)
	return nil
}
