// Command rtds-bench runs the full experiment suite (DESIGN.md §4) and
// prints every table; -md emits GitHub-flavored markdown for EXPERIMENTS.md.
//
// Usage:
//
//	rtds-bench [-quick] [-md] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "small networks/horizons (seconds instead of minutes)")
	md := flag.Bool("md", false, "emit markdown tables")
	seed := flag.Int64("seed", 1, "random seed for every experiment")
	flag.Parse()

	size := experiments.Full
	if *quick {
		size = experiments.Quick
	}
	start := time.Now()
	tables, err := experiments.All(size, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	for _, t := range tables {
		if *md {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
	}
	fmt.Fprintf(os.Stderr, "suite completed in %v\n", time.Since(start).Round(time.Millisecond))
}
