// Command rtds-dot emits Graphviz DOT for the repository's generators:
// network topologies and task-graph families.
//
// Usage:
//
//	rtds-dot -what topo -kind grid -n 16
//	rtds-dot -what topo -kind random -n 64 -regions
//	rtds-dot -what dag  -kind gauss -n 20
//	rtds-dot -what paper
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/daggen"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/routing/hier"
	"repro/internal/trace"
)

func main() {
	what := flag.String("what", "paper", "what to render: topo|dag|paper")
	kind := flag.String("kind", "random", "generator kind (see internal/graph, internal/daggen)")
	n := flag.Int("n", 16, "approximate size")
	seed := flag.Int64("seed", 1, "random seed")
	regions := flag.Bool("regions", false, "with -what topo: color the hierarchical region partition and mark landmarks")
	flag.Parse()

	switch *what {
	case "paper":
		fmt.Println(experiments.PaperExampleDAG().DOT())
	case "topo":
		g, err := graph.Generate(graph.TopologyKind(*kind), *n,
			graph.DelayRange{Min: 1, Max: 5}, *seed)
		if err != nil {
			fatal(err)
		}
		if *regions {
			layout, err := hier.NewLayout(g)
			if err != nil {
				fatal(err)
			}
			fmt.Println(trace.RegionDOT(*kind, g, layout.Assign, layout.Landmarks))
			return
		}
		fmt.Println(trace.TopologyDOT(*kind, g))
	case "dag":
		g, err := daggen.Generate(daggen.Kind(*kind), *n, daggen.Params{}, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(g.DOT())
	default:
		fatal(fmt.Errorf("unknown -what %q", *what))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
