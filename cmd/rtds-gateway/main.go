// Command rtds-gateway runs the cluster's HTTP front door: multi-tenant
// job submission with quota/rate/laxity admission, a write-ahead job log
// that makes every 202 ack durable across gateway crashes, and a
// Prometheus /metrics plane.
//
// Usage:
//
//	rtds-gateway -listen 127.0.0.1:9100 \
//	             -nodes 127.0.0.1:8400,127.0.0.1:8401,127.0.0.1:8402 \
//	             -joblog /var/lib/rtds/gateway.wal \
//	             -tenants 'acme:rate=50,burst=100,inflight=200;zeta:rate=10'
//
// Endpoints:
//
//	POST /v1/jobs                submit a job (tenant, deadline, graph)
//	GET  /v1/jobs/{id}           decision state of one submission
//	GET  /v1/tenants/{t}/stats   per-tenant admission counters
//	GET  /metrics                Prometheus text exposition
//	GET  /healthz, /readyz       probes
//
// On start the job log is replayed: undecided submissions re-enter the
// cluster, so a SIGKILL between an ack and a cluster decision loses
// nothing (see docs/operations.md for the soak recipe that proves it).
//
// The process exits 0 on SIGINT/SIGTERM after draining HTTP and closing
// the log.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9100", "HTTP listen address")
	nodes := flag.String("nodes", "", "comma-separated rtds-node control-API addresses (required)")
	joblogPath := flag.String("joblog", "", "write-ahead job log path (required)")
	tenants := flag.String("tenants", "", "tenant quotas: name:rate=R,burst=B,inflight=N;... (required)")
	poll := flag.Duration("poll", 200*time.Millisecond, "decision poll period")
	backendTimeout := flag.Duration("backend-timeout", 5*time.Second, "per-request backend HTTP timeout")
	flag.Parse()

	if err := run(*listen, *nodes, *joblogPath, *tenants, *poll, *backendTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "rtds-gateway:", err)
		os.Exit(1)
	}
}

func run(listen, nodes, joblogPath, tenants string, poll, backendTimeout time.Duration) error {
	if nodes == "" {
		return fmt.Errorf("-nodes is required")
	}
	if joblogPath == "" {
		return fmt.Errorf("-joblog is required")
	}
	if tenants == "" {
		return fmt.Errorf("-tenants is required")
	}
	quotas, err := gateway.ParseTenants(tenants)
	if err != nil {
		return fmt.Errorf("-tenants: %w", err)
	}
	backend, err := gateway.NewHTTPBackend(strings.Split(nodes, ","), backendTimeout)
	if err != nil {
		return err
	}
	srv, err := gateway.New(gateway.Options{
		Tenants:      quotas,
		Backend:      backend,
		LogPath:      joblogPath,
		PollInterval: poll,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: listen, Handler: srv}
	errCh := make(chan error, 1)
	//lint:allow spawncheck -- the HTTP listener lives for the process; Shutdown below unblocks ListenAndServe and errCh joins it
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	fmt.Printf("rtds-gateway listening on %s (tenants: %s)\n", listen, tenants)

	select {
	case err := <-errCh:
		srv.Close()
		return err
	case <-sig:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	<-errCh // ListenAndServe returns ErrServerClosed after Shutdown
	if err := srv.Close(); err != nil {
		return err
	}
	fmt.Println("rtds-gateway: clean shutdown")
	return nil
}
