// Command rtds-lint machine-checks the repository's determinism and
// protocol invariants with seven project-specific analyzers: the
// per-package detclock, mapiter, exhaustive, and sendunderlock, and the
// whole-program lockorder, hotalloc, and spawncheck (see
// internal/analysis/... for what each enforces and why).
//
// Standalone:
//
//	rtds-lint ./...
//	rtds-lint -json ./...       # machine-readable diagnostics
//	rtds-lint -hierarchy ./...  # print the derived lock hierarchy
//
// As a vet tool (per-package analyzers only — vet schedules one package
// per process, so the whole-program checks cannot run there):
//
//	go build -o bin/rtds-lint ./cmd/rtds-lint
//	go vet -vettool=$PWD/bin/rtds-lint ./...
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/rtdslint"
)

func main() {
	args := os.Args[1:]
	if isVettoolInvocation(args) {
		analysis.UnitcheckerMain("rtds-lint", rtdslint.Suite(), rtdslint.AppliesTo, args)
		return // unreachable; UnitcheckerMain exits
	}

	flags := flag.NewFlagSet("rtds-lint", flag.ExitOnError)
	jsonOut := flags.Bool("json", false, "emit diagnostics as JSON on stdout")
	hierarchy := flags.Bool("hierarchy", false, "print the derived lock hierarchy instead of linting")
	flags.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rtds-lint [-json] [-hierarchy] <packages>   (e.g. rtds-lint ./...)")
		flags.PrintDefaults()
	}
	_ = flags.Parse(args)
	patterns := flags.Args()
	if len(patterns) == 0 {
		flags.Usage()
		os.Exit(1)
	}

	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtds-lint:", err)
		os.Exit(1)
	}

	if *hierarchy {
		printHierarchy(pkgs)
		return
	}

	diags, fset, err := analysis.RunPackages(rtdslint.Suite(), rtdslint.AppliesTo, ".", pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtds-lint:", err)
		os.Exit(1)
	}
	if *jsonOut {
		printJSON(fset, diags)
		if len(diags) > 0 {
			os.Exit(2)
		}
		return
	}
	if len(diags) > 0 {
		analysis.PrintDiagnostics(os.Stderr, fset, diags)
		os.Exit(2)
	}
}

// printHierarchy derives and prints the canonical lock hierarchy over the
// lockorder-scoped subset of the loaded packages.
func printHierarchy(pkgs []*analysis.Package) {
	var scoped []*analysis.Package
	for _, p := range pkgs {
		if rtdslint.AppliesTo(lockorder.Analyzer, p.ImportPath) {
			scoped = append(scoped, p)
		}
	}
	if len(scoped) == 0 {
		fmt.Fprintln(os.Stderr, "rtds-lint: no lockorder-scoped packages in the load")
		os.Exit(1)
	}
	classes := lockorder.Hierarchy(scoped[0].Fset, scoped)
	if len(classes) == 0 {
		fmt.Println("lock hierarchy is empty: the discipline is flat — no lock is ever acquired while another is held")
		return
	}
	for i, class := range classes {
		fmt.Printf("%2d. %s\n", i+1, class)
	}
}

// jsonDiagnostic is the -json output shape, one object per finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

func printJSON(fset *token.FileSet, diags []analysis.Diagnostic) {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		jd := jsonDiagnostic{Message: d.Message, Analyzer: d.Analyzer}
		if fset != nil && d.Pos.IsValid() {
			p := fset.Position(d.Pos)
			jd.File, jd.Line, jd.Column = p.Filename, p.Line, p.Column
		}
		out = append(out, jd)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "rtds-lint:", err)
		os.Exit(1)
	}
}

// isVettoolInvocation recognizes the three argument shapes the go command
// uses when driving a vettool; anything else is a human.
func isVettoolInvocation(args []string) bool {
	if len(args) != 1 {
		return false
	}
	return args[0] == "-V=full" || args[0] == "-flags" || strings.HasSuffix(args[0], ".cfg")
}
