// Command rtds-lint machine-checks the repository's determinism and
// protocol invariants with four project-specific analyzers: detclock,
// mapiter, exhaustive, and sendunderlock (see internal/analysis/... for
// what each enforces and why).
//
// Standalone:
//
//	rtds-lint ./...
//	rtds-lint repro/internal/core repro/internal/routing
//
// As a vet tool (same diagnostics, but scheduled and cached by the go
// command):
//
//	go build -o bin/rtds-lint ./cmd/rtds-lint
//	go vet -vettool=$PWD/bin/rtds-lint ./...
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/rtdslint"
)

func main() {
	args := os.Args[1:]
	if isVettoolInvocation(args) {
		analysis.UnitcheckerMain("rtds-lint", rtdslint.Suite(), rtdslint.AppliesTo, args)
		return // unreachable; UnitcheckerMain exits
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: rtds-lint <packages>   (e.g. rtds-lint ./...)")
		os.Exit(1)
	}
	pkgs, err := analysis.Load(".", args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtds-lint:", err)
		os.Exit(1)
	}
	diags, fset, err := analysis.RunPackages(rtdslint.Suite(), rtdslint.AppliesTo, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtds-lint:", err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		analysis.PrintDiagnostics(os.Stderr, fset, diags)
		os.Exit(2)
	}
}

// isVettoolInvocation recognizes the three argument shapes the go command
// uses when driving a vettool; anything else is a human.
func isVettoolInvocation(args []string) bool {
	if len(args) != 1 {
		return false
	}
	return args[0] == "-V=full" || args[0] == "-flags" || strings.HasSuffix(args[0], ".cfg")
}
