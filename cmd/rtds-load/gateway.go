// Gateway mode: -gateway drives the workload through cmd/rtds-gateway
// instead of the node control APIs directly. Submissions carry tenant
// attribution (round-robined over -tenants) and idempotency keys, 429s
// honor Retry-After, and connection failures retry — a gateway SIGKILL
// mid-run shows up as a burst of retries, not a failed load run. At the
// end every acked job ID is reconciled against GET /v1/jobs/{id}: an
// acked submission the restarted gateway no longer knows is a durability
// bug and fails the run.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// GatewayReport is the gateway-mode machine-readable result.
type GatewayReport struct {
	Gateway  string   `json:"gateway"`
	Tenants  []string `json:"tenants"`
	Arrivals int      `json:"arrivals"`
	// Acked counts submissions the gateway answered 202 (or a duplicate
	// 200 after a retry); every acked ID must survive to the end.
	Acked int `json:"acked"`
	// LostAcked counts acked IDs the gateway no longer knew at
	// reconciliation — must be zero.
	LostAcked int `json:"lost_acked"`
	// Undecided counts acked jobs with no cluster verdict at timeout.
	Undecided int `json:"undecided"`
	Accepted  int `json:"accepted"`
	Rejected  int `json:"rejected"`
	// RateLimited counts 429 responses (retried after Retry-After).
	RateLimited int `json:"rate_limited"`
	// SubmitRetries counts transport-level retries (connection refused
	// during a gateway restart, 5xx).
	SubmitRetries int `json:"submit_retries"`
	// TenantSubmitted is the gateway's own per-tenant attribution,
	// cross-checked against what this client actually submitted.
	TenantSubmitted   map[string]int `json:"tenant_submitted"`
	MetricsValidated  []string       `json:"metrics_validated"`
	SubmitWallSeconds float64        `json:"submit_wall_seconds"`
	TotalWallSeconds  float64        `json:"total_wall_seconds"`
}

// runGateway is the -gateway entry point.
func runGateway(o opts) error {
	tenants := strings.Split(o.tenantsSpec, ",")
	if o.tenantsSpec == "" || len(tenants) == 0 {
		return fmt.Errorf("-tenants is required in gateway mode (comma-separated tenant names)")
	}
	arrivals, err := buildWorkload(o)
	if err != nil {
		return err
	}
	base := strings.TrimRight(o.gatewayURL, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	fmt.Printf("rtds-load: %d jobs via gateway %s across tenants %v (load %.2f, scale %v)\n",
		len(arrivals), base, tenants, o.load, o.scale)

	client := &http.Client{Timeout: 10 * time.Second}
	if err := waitGatewayReady(client, base, 60*time.Second); err != nil {
		return err
	}

	rep := GatewayReport{
		Gateway: base, Tenants: tenants,
		Arrivals:        len(arrivals),
		TenantSubmitted: make(map[string]int),
	}
	type acked struct {
		id, tenant string
	}
	var ackedJobs []acked
	mySubmitted := make(map[string]int)

	start := time.Now()
	for i, a := range arrivals {
		due := time.Duration(a.At * float64(o.scale))
		if d := due - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		tenant := tenants[i%len(tenants)]
		id, outcome, err := submitGateway(client, base, tenant,
			fmt.Sprintf("load-%d-%d", o.seed, i), a, o.timeout, &rep)
		if err != nil {
			return fmt.Errorf("submit %d (tenant %s): %w", i, tenant, err)
		}
		if outcome == "dropped" {
			continue // persistent 429: the quota is the verdict, not a failure
		}
		ackedJobs = append(ackedJobs, acked{id: id, tenant: tenant})
		mySubmitted[tenant]++
	}
	rep.Acked = len(ackedJobs)
	rep.SubmitWallSeconds = time.Since(start).Seconds()
	fmt.Printf("rtds-load: %d of %d submissions acked in %v (%d rate-limited, %d retries), reconciling...\n",
		rep.Acked, len(arrivals), time.Duration(rep.SubmitWallSeconds*float64(time.Second)).Round(time.Millisecond),
		rep.RateLimited, rep.SubmitRetries)

	// Reconciliation: every acked ID must still exist and reach a
	// decision. A 404 is an accepted-but-lost submission — the exact
	// failure the write-ahead log exists to prevent.
	deadline := time.Now().Add(o.timeout)
	for _, aj := range ackedJobs {
		for {
			var j struct {
				State   string `json:"state"`
				Outcome string `json:"outcome"`
			}
			code, err := getJSONCode(client, base+"/v1/jobs/"+aj.id, &j)
			switch {
			case err == nil && code == http.StatusNotFound:
				rep.LostAcked++
				fmt.Printf("rtds-load: LOST acked job %s (tenant %s)\n", aj.id, aj.tenant)
			case err == nil && code == http.StatusOK && j.State != "decided":
				if time.Now().Before(deadline) {
					time.Sleep(200 * time.Millisecond)
					continue
				}
				rep.Undecided++
			case err == nil && code == http.StatusOK:
				if j.Outcome == "accepted-local" || j.Outcome == "accepted-distributed" {
					rep.Accepted++
				} else {
					rep.Rejected++
				}
			case err != nil && time.Now().Before(deadline):
				time.Sleep(500 * time.Millisecond)
				continue
			default:
				return fmt.Errorf("reconcile %s: %w", aj.id, err)
			}
			break
		}
	}
	rep.TotalWallSeconds = time.Since(start).Seconds()

	// Per-tenant attribution: the gateway's own counters must match what
	// this client submitted per tenant (replayed duplicates excluded by
	// the idempotency keys).
	for _, tenant := range tenants {
		var ts struct {
			Submitted int `json:"submitted"`
		}
		code, err := getJSONCode(client, base+"/v1/tenants/"+tenant+"/stats", &ts)
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("tenant %s stats: code %d, %v", tenant, code, err)
		}
		rep.TenantSubmitted[tenant] = ts.Submitted
		if ts.Submitted < mySubmitted[tenant] {
			return fmt.Errorf("tenant %s: gateway attributes %d submissions, client sent %d",
				tenant, ts.Submitted, mySubmitted[tenant])
		}
	}

	// The metrics plane must parse as valid Prometheus text — on the
	// gateway and on every node we were told about.
	targets := []string{base + "/metrics"}
	if o.nodesSpec != "" {
		nodes, err := parseNodeList(o.nodesSpec, o.sites)
		if err != nil {
			return err
		}
		for _, addr := range nodes {
			targets = append(targets, "http://"+addr+"/metrics")
		}
	}
	for _, url := range targets {
		if err := validateMetrics(client, url); err != nil {
			return err
		}
		rep.MetricsValidated = append(rep.MetricsValidated, url)
	}

	fmt.Printf("gateway load: %d acked, %d accepted, %d rejected, %d undecided, %d lost, per-tenant %v\n",
		rep.Acked, rep.Accepted, rep.Rejected, rep.Undecided, rep.LostAcked, rep.TenantSubmitted)
	fmt.Printf("metrics validated: %s\n", strings.Join(rep.MetricsValidated, ", "))

	if o.jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", o.jsonOut)
	}
	switch {
	case rep.LostAcked > 0:
		return fmt.Errorf("%d acked submissions lost — write-ahead durability broken", rep.LostAcked)
	case rep.Undecided > 0:
		return fmt.Errorf("%d acked jobs undecided after %v", rep.Undecided, o.timeout)
	case rep.Acked == 0:
		return fmt.Errorf("no submission was acked")
	}
	return nil
}

// submitGateway pushes one job, absorbing 429 backpressure (sleep
// Retry-After, retry) and transport errors (gateway restarting: retry
// with the same idempotency key). Returns outcome "dropped" when
// backpressure persists past the arrival's own deadline budget — the
// quota said no, which is a valid load-test outcome, not an error.
func submitGateway(client *http.Client, base, tenant, key string, a workload.Arrival,
	timeout time.Duration, rep *GatewayReport) (id, outcome string, err error) {
	graphJSON, err := json.Marshal(a.Graph)
	if err != nil {
		return "", "", err
	}
	body, err := json.Marshal(map[string]any{
		"tenant": tenant, "client_key": key, "deadline": a.Deadline, "graph": json.RawMessage(graphJSON),
	})
	if err != nil {
		return "", "", err
	}
	deadline := time.Now().Add(timeout)
	throttled := 0
	for {
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			if time.Now().After(deadline) {
				return "", "", err
			}
			rep.SubmitRetries++
			time.Sleep(250 * time.Millisecond)
			continue
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK:
			var reply struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(data, &reply); err != nil || reply.ID == "" {
				return "", "", fmt.Errorf("malformed ack %q", data)
			}
			return reply.ID, "acked", nil
		case resp.StatusCode == http.StatusTooManyRequests:
			rep.RateLimited++
			throttled++
			if throttled > 40 || time.Now().After(deadline) {
				return "", "dropped", nil
			}
			wait := time.Second
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
				wait = time.Duration(s) * time.Second
			}
			if wait > 2*time.Second {
				wait = 2 * time.Second // soak pacing: don't stall the pacer on long hints
			}
			time.Sleep(wait)
		case resp.StatusCode >= 500:
			if time.Now().After(deadline) {
				return "", "", fmt.Errorf("status %d: %s", resp.StatusCode, data)
			}
			rep.SubmitRetries++
			time.Sleep(250 * time.Millisecond)
		default:
			return "", "", fmt.Errorf("status %d: %s", resp.StatusCode, data)
		}
	}
}

func waitGatewayReady(client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(250 * time.Millisecond)
	}
	return fmt.Errorf("gateway %s not ready after %v", base, timeout)
}

// getJSONCode is getJSON that hands back the status code instead of
// failing on non-200s (reconciliation needs to see 404s).
func getJSONCode(client *http.Client, url string, v any) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	return resp.StatusCode, json.NewDecoder(resp.Body).Decode(v)
}

func validateMetrics(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if err := metrics.ValidateText(data); err != nil {
		return fmt.Errorf("%s: invalid Prometheus exposition: %w", url, err)
	}
	return nil
}

// parseNodeList accepts both the id=host:port map form and a bare
// comma-separated host:port list (gateway mode does not need site ids).
func parseNodeList(spec string, sites int) ([]string, error) {
	var out []string
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if _, addr, found := strings.Cut(tok, "="); found {
			out = append(out, addr)
		} else if tok != "" {
			out = append(out, tok)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-nodes %q names no addresses", spec)
	}
	return out, nil
}
