// Command rtds-load drives a deployed rtds-node cluster: it submits a
// Std-spec DAG workload at the target rate through the nodes' HTTP control
// APIs, waits for every decision, and reports guarantee ratio, p50/p99
// decision latency, messages per job and leak checks. With -verify-live it
// additionally replays the identical workload on the in-process live
// transport and reports per-arrival decision agreement — the deployment's
// transport-equivalence proof.
//
// Usage:
//
//	rtds-load -nodes 0=127.0.0.1:8100,1=127.0.0.1:8101,... \
//	          -sites 8 -topo random -seed 1 \
//	          [-jobs 600] [-load 0.6] [-horizon 400] [-scale 2ms] \
//	          [-tightness 5] [-infeasible 0.3] \
//	          [-verify-live] [-min-agreement 1.0] [-json report.json] \
//	          [-optional-sites 3] [-joiner 3]
//
// The topology flags must match the nodes'; -verify-live also needs the
// nodes' -scheme/-policy/-slack/-pad to replicate their configuration.
//
// Churn soaks (scripts/soak.sh CHURN=1) kill one node mid-run and join a
// replacement on the same addresses. -optional-sites names the sites that
// may vanish: submissions to them are tolerated-skipped while they are
// down, their pre-kill jobs are written off (they died with the process),
// and unreachable polls do not fail the run. -joiner asserts the
// replacement actually served: it must have answered at least one
// enrollment and accepted at least one job of its own, or the run fails.
// -verify-live cannot be combined with churn (lost jobs break the
// per-origin pairing).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/nodeapi"
	"repro/internal/scheme"
	"repro/internal/workload"
)

func main() {
	nodesSpec := flag.String("nodes", "", "comma-separated id=host:port control (HTTP) addresses of all sites (required)")
	sites := flag.Int("sites", 8, "number of sites (must match the nodes)")
	topoKind := flag.String("topo", "random", "topology kind (must match the nodes)")
	seed := flag.Int64("seed", 1, "topology and workload seed (must match the nodes)")
	jobs := flag.Int("jobs", 0, "target job count (0 = whatever the horizon yields)")
	load := flag.Float64("load", 0.6, "offered load of the Std-spec workload")
	horizon := flag.Float64("horizon", 400, "arrival horizon in virtual time units")
	scale := flag.Duration("scale", 2*time.Millisecond, "wall-clock duration of one virtual unit (pacing; must match the nodes)")
	tightness := flag.Float64("tightness", 0, "override deadline tightness (0 = Std-spec 2.5)")
	infeasible := flag.Float64("infeasible", 0, "fraction of extra infeasible jobs (deadline < critical path)")
	verifyLive := flag.Bool("verify-live", false, "replay the workload on the in-process live transport and compare decisions")
	minAgreement := flag.Float64("min-agreement", 0, "fail unless decision agreement with -verify-live reaches this fraction")
	schemeName := flag.String("scheme", "rtds", "scheme of the deployed nodes (for -verify-live)")
	policySpec := flag.String("policy", "", "policy overrides of the deployed nodes (for -verify-live)")
	slack := flag.Float64("slack", 8, "enrollment slack of the deployed nodes (for -verify-live)")
	pad := flag.Float64("pad", 30, "release pad factor of the deployed nodes (for -verify-live)")
	timeout := flag.Duration("timeout", 5*time.Minute, "how long to wait for all decisions")
	jsonOut := flag.String("json", "", "write the machine-readable report to this path")
	optionalSites := flag.String("optional-sites", "", "comma-separated site ids that may be down or replaced mid-run (churn mode)")
	joiner := flag.Int("joiner", -1, "site id that must have joined and served by the end of the run")
	gatewayURL := flag.String("gateway", "", "drive the workload through this rtds-gateway base URL instead of the node APIs")
	tenantsList := flag.String("tenants", "", "gateway mode: comma-separated tenant names to round-robin submissions over")
	flag.Parse()

	if err := run(opts{
		nodesSpec: *nodesSpec, sites: *sites, topoKind: *topoKind, seed: *seed,
		jobs: *jobs, load: *load, horizon: *horizon, scale: *scale,
		tightness: *tightness, infeasible: *infeasible,
		verifyLive: *verifyLive, minAgreement: *minAgreement,
		schemeName: *schemeName, policySpec: *policySpec, slack: *slack, pad: *pad,
		timeout: *timeout, jsonOut: *jsonOut,
		optionalSpec: *optionalSites, joiner: *joiner,
		gatewayURL: *gatewayURL, tenantsSpec: *tenantsList,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

type opts struct {
	nodesSpec    string
	sites        int
	topoKind     string
	seed         int64
	jobs         int
	load         float64
	horizon      float64
	scale        time.Duration
	tightness    float64
	infeasible   float64
	verifyLive   bool
	minAgreement float64
	schemeName   string
	policySpec   string
	slack, pad   float64
	timeout      time.Duration
	jsonOut      string
	optionalSpec string
	joiner       int
	gatewayURL   string
	tenantsSpec  string

	optional map[graph.NodeID]bool // parsed optionalSpec
}

func (o opts) churn() bool { return len(o.optional) > 0 }

// Report is the load run's machine-readable result.
type Report struct {
	Sites              int      `json:"sites"`
	Jobs               int      `json:"jobs"`
	Undecided          int      `json:"undecided"`
	Accepted           int      `json:"accepted"`
	GuaranteeRatio     float64  `json:"guarantee_ratio"`
	DecisionLatencyP50 float64  `json:"decision_latency_p50"`
	DecisionLatencyP99 float64  `json:"decision_latency_p99"`
	Messages           int64    `json:"messages"`
	Bytes              int64    `json:"bytes"`
	MsgsPerJob         float64  `json:"msgs_per_job"`
	Dropped            int64    `json:"dropped"`
	Violations         int      `json:"violations"`
	Disruptions        int      `json:"disruptions"`
	LeakedReservations []string `json:"leaked_reservations"`
	SubmitWallSeconds  float64  `json:"submit_wall_seconds"`
	TotalWallSeconds   float64  `json:"total_wall_seconds"`
	// Churn mode: submissions skipped because an optional site was down,
	// jobs written off because they died with a killed node (submitted
	// successfully but never visible again), reservations held for jobs no
	// reachable node remembers (informational — the job record died with
	// its initiator), and the joiner's served work.
	SkippedSubmissions int      `json:"skipped_submissions,omitempty"`
	LostJobs           int      `json:"lost_jobs,omitempty"`
	OrphanReservations []string `json:"orphan_reservations,omitempty"`
	JoinerEnrollAcks   int64    `json:"joiner_enroll_acks,omitempty"`
	JoinerAccepted     int      `json:"joiner_accepted,omitempty"`
	// LiveVerified records whether -verify-live ran; without it an
	// agreement of 0.0 (total disagreement) would be indistinguishable
	// from "not verified" in the JSON. LiveAgreement is the fraction of
	// arrivals whose guarantee decision (accepted vs rejected — the
	// paper's decision) matched the live replay; LiveAgreementStrict
	// additionally distinguishes local from distributed acceptance, which
	// is a mechanism detail two wall-clock transports may legitimately
	// resolve differently on a busy site.
	LiveVerified        bool     `json:"live_verified"`
	LiveAgreement       float64  `json:"live_agreement"`
	LiveAgreementStrict float64  `json:"live_agreement_strict"`
	LiveMismatches      []string `json:"live_mismatches,omitempty"`
}

func run(o opts) error {
	if o.gatewayURL != "" {
		return runGateway(o)
	}
	if o.nodesSpec == "" {
		return fmt.Errorf("-nodes is required")
	}
	nodes, err := nodeapi.ParseAddrs("nodes", o.nodesSpec, o.sites, true)
	if err != nil {
		return err
	}
	if o.optionalSpec != "" {
		if o.optional, err = nodeapi.ParseSites("optional-sites", o.optionalSpec, o.sites); err != nil {
			return err
		}
	}
	if o.verifyLive && o.churn() {
		return fmt.Errorf("-verify-live cannot be combined with -optional-sites: " +
			"jobs lost with a killed node break the per-origin pairing")
	}
	if o.joiner >= o.sites {
		return fmt.Errorf("-joiner %d out of range [0,%d)", o.joiner, o.sites)
	}
	arrivals, err := buildWorkload(o)
	if err != nil {
		return err
	}
	fmt.Printf("rtds-load: %d jobs over %d sites (load %.2f, horizon %.0f, scale %v)\n",
		len(arrivals), o.sites, o.load, o.horizon, o.scale)

	client := &http.Client{Timeout: 10 * time.Second}
	for id := 0; id < o.sites; id++ {
		if err := waitReady(client, nodes[graph.NodeID(id)], 60*time.Second); err != nil {
			if o.optional[graph.NodeID(id)] {
				fmt.Printf("rtds-load: optional site %d not ready, continuing\n", id)
				continue
			}
			return fmt.Errorf("node %d: %w", id, err)
		}
	}
	// The report and the -verify-live per-origin pairing both assume this
	// run's jobs are the only jobs the nodes have; stale jobs from an
	// earlier run would silently corrupt both, so refuse them loudly.
	for id := 0; id < o.sites; id++ {
		jobs, err := fetchJobs(client, nodes[graph.NodeID(id)])
		if err != nil {
			if o.optional[graph.NodeID(id)] {
				continue
			}
			return fmt.Errorf("node %d: %w", id, err)
		}
		if len(jobs) > 0 {
			return fmt.Errorf("node %d already has %d jobs from an earlier run; restart the cluster", id, len(jobs))
		}
	}

	// Submit at the target rate: one serial pacer preserves per-origin
	// submission order (the equivalence pairing depends on it). In churn
	// mode a submission to a down optional site is skipped, not fatal —
	// the node was killed, or its replacement is not ready yet.
	start := time.Now()
	skipped := 0
	submitted := make(map[graph.NodeID]int)
	for i, a := range arrivals {
		due := time.Duration(a.At * float64(o.scale))
		if d := due - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		if err := submit(client, nodes[a.Origin], a); err != nil {
			if o.optional[a.Origin] {
				skipped++
				continue
			}
			return fmt.Errorf("submit %d to site %d: %w", i, a.Origin, err)
		}
		submitted[a.Origin]++
	}
	submitWall := time.Since(start)
	fmt.Printf("rtds-load: %d of %d jobs submitted in %v (%d skipped), waiting for decisions...\n",
		len(arrivals)-skipped, len(arrivals), submitWall.Round(time.Millisecond), skipped)

	statuses, err := waitDecided(client, nodes, o, submitted)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	rep, err := buildReport(client, nodes, o, statuses)
	if err != nil {
		return err
	}
	rep.SkippedSubmissions = skipped
	for id, n := range submitted {
		if lost := n - len(statuses[id]); lost > 0 {
			rep.LostJobs += lost
		}
	}
	rep.SubmitWallSeconds = submitWall.Seconds()
	rep.TotalWallSeconds = wall.Seconds()

	if o.verifyLive {
		if err := verifyAgainstLive(o, arrivals, statuses, &rep); err != nil {
			return err
		}
	}
	if o.joiner >= 0 {
		if err := checkJoiner(client, nodes[graph.NodeID(o.joiner)], &rep); err != nil {
			return err
		}
	}

	fmt.Printf("guarantee ratio %.3f (%d/%d accepted), latency p50 %.2f p99 %.2f units, %.1f msgs/job\n",
		rep.GuaranteeRatio, rep.Accepted, rep.Jobs,
		rep.DecisionLatencyP50, rep.DecisionLatencyP99, rep.MsgsPerJob)
	if rep.Dropped > 0 || rep.Disruptions > 0 {
		fmt.Printf("faults: %d traversals dropped, %d disruptions\n", rep.Dropped, rep.Disruptions)
	}
	if o.churn() {
		fmt.Printf("churn: %d submissions skipped, %d jobs lost with killed nodes, %d orphan reservations\n",
			rep.SkippedSubmissions, rep.LostJobs, len(rep.OrphanReservations))
	}
	if o.joiner >= 0 {
		fmt.Printf("joiner %d: %d enroll-acks served, %d own jobs accepted\n",
			o.joiner, rep.JoinerEnrollAcks, rep.JoinerAccepted)
	}
	if o.verifyLive {
		fmt.Printf("live-transport agreement: %.4f on the guarantee decision (%.4f incl. local-vs-distributed), %d mismatches\n",
			rep.LiveAgreement, rep.LiveAgreementStrict, len(rep.LiveMismatches))
		for _, m := range rep.LiveMismatches {
			fmt.Println("  mismatch:", m)
		}
	}
	if o.jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", o.jsonOut)
	}

	switch {
	case rep.Undecided > 0:
		return fmt.Errorf("%d jobs left undecided", rep.Undecided)
	case len(rep.LeakedReservations) > 0:
		return fmt.Errorf("leaked reservations: %v", rep.LeakedReservations)
	case rep.Violations > 0:
		return fmt.Errorf("%d causality violations", rep.Violations)
	case o.verifyLive && rep.LiveAgreement < o.minAgreement:
		return fmt.Errorf("live agreement %.4f below -min-agreement %.4f", rep.LiveAgreement, o.minAgreement)
	case o.joiner >= 0 && rep.JoinerEnrollAcks == 0:
		return fmt.Errorf("joiner %d never answered an enrollment", o.joiner)
	case o.joiner >= 0 && rep.JoinerAccepted == 0:
		return fmt.Errorf("joiner %d accepted none of its own jobs", o.joiner)
	}
	return nil
}

// checkJoiner verifies the replacement node actually served: membership
// says it joined, it answered at least one enrollment, and it accepted at
// least one of its own submissions. The hard gating happens in run's final
// switch; this only collects the evidence.
func checkJoiner(client *http.Client, addr string, rep *Report) error {
	var st nodeapi.StatsReply
	if err := getJSON(client, "http://"+addr+"/stats", &st); err != nil {
		return fmt.Errorf("joiner stats: %w", err)
	}
	rep.JoinerEnrollAcks = st.ByKind["rtds.enroll-ack"]
	jobs, err := fetchJobs(client, addr)
	if err != nil {
		return fmt.Errorf("joiner jobs: %w", err)
	}
	for _, j := range jobs {
		if j.OutcomeName == "accepted-local" || j.OutcomeName == "accepted-distributed" {
			rep.JoinerAccepted++
		}
	}
	return nil
}

// buildWorkload draws the Std-spec workload (the suite's shape) at the
// requested load, optionally overriding tightness and mixing in a fraction
// of infeasible jobs (deadline below the critical path — rejected by every
// scheduler, margin-robust by construction). With -jobs the horizon is
// doubled until the target count is reached, then truncated.
func buildWorkload(o opts) ([]workload.Arrival, error) {
	horizon := o.horizon
	for {
		spec := experiments.StdSpec(o.sites, horizon, o.seed)
		if o.tightness > 0 {
			spec.Tightness = o.tightness
		}
		arrivals, err := experiments.ArrivalsForLoad(spec, o.load)
		if err != nil {
			return nil, err
		}
		if o.infeasible > 0 {
			spec2 := spec
			spec2.Tightness = 0.4
			spec2.Seed = o.seed + 1
			extra, err := experiments.ArrivalsForLoad(spec2, o.load*o.infeasible)
			if err != nil {
				return nil, err
			}
			arrivals = append(arrivals, extra...)
			sort.Slice(arrivals, func(i, j int) bool {
				if arrivals[i].At != arrivals[j].At {
					return arrivals[i].At < arrivals[j].At
				}
				return arrivals[i].Origin < arrivals[j].Origin
			})
		}
		if o.jobs <= 0 || len(arrivals) >= o.jobs {
			if o.jobs > 0 {
				arrivals = arrivals[:o.jobs]
			}
			return arrivals, nil
		}
		horizon *= 2
		if horizon > 1e6 {
			return nil, fmt.Errorf("cannot reach %d jobs even with horizon %.0f", o.jobs, horizon)
		}
	}
}

func waitReady(client *http.Client, addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := client.Get("http://" + addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(250 * time.Millisecond)
	}
	return fmt.Errorf("not ready after %v", timeout)
}

func submit(client *http.Client, addr string, a workload.Arrival) error {
	graphJSON, err := json.Marshal(a.Graph)
	if err != nil {
		return err
	}
	body, err := json.Marshal(nodeapi.SubmitRequest{At: 0, Deadline: a.Deadline, Graph: graphJSON})
	if err != nil {
		return err
	}
	resp, err := client.Post("http://"+addr+"/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(msg.String()))
	}
	return nil
}

func fetchJobs(client *http.Client, addr string) ([]core.JobStatus, error) {
	resp, err := client.Get("http://" + addr + "/jobs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var reply struct {
		Jobs []core.JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, err
	}
	return reply.Jobs, nil
}

// waitDecided polls every node until the submitted jobs are decided AND
// every node reports idle (lock released, transactions closed — so the
// abort unlocks of rejected jobs have been processed and the subsequent
// /reservations leak check does not race in-flight cleanup), returning
// each node's job list in submission order.
//
// Required sites must report every successful submission decided. Optional
// sites (churn mode) are weaker by nature: an unreachable one is skipped,
// and a reachable one only needs every job it still REMEMBERS decided —
// jobs submitted to a node that was later killed died with it and cannot
// be waited for.
func waitDecided(client *http.Client, nodes map[graph.NodeID]string, o opts,
	submitted map[graph.NodeID]int) (map[graph.NodeID][]core.JobStatus, error) {
	deadline := time.Now().Add(o.timeout)
	for {
		statuses := make(map[graph.NodeID][]core.JobStatus, o.sites)
		done := true
		decided, seen := 0, 0
		for id := 0; id < o.sites; id++ {
			site := graph.NodeID(id)
			jobs, err := fetchJobs(client, nodes[site])
			if err != nil {
				if o.optional[site] {
					continue
				}
				return nil, fmt.Errorf("node %d: %w", id, err)
			}
			statuses[site] = jobs
			seen += len(jobs)
			siteDecided := 0
			for _, j := range jobs {
				if j.OutcomeName != "pending" {
					siteDecided++
				}
			}
			decided += siteDecided
			if siteDecided < len(jobs) {
				done = false
			}
			if !o.optional[site] && len(jobs) < submitted[site] {
				done = false
			}
		}
		if done && allIdle(client, nodes, o) {
			return statuses, nil
		}
		if time.Now().After(deadline) {
			return statuses, fmt.Errorf("timeout: %d of %d visible jobs decided after %v", decided, seen, o.timeout)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func allIdle(client *http.Client, nodes map[graph.NodeID]string, o opts) bool {
	for id := 0; id < o.sites; id++ {
		resp, err := client.Get("http://" + nodes[graph.NodeID(id)] + "/idle")
		if err != nil {
			if o.optional[graph.NodeID(id)] {
				continue
			}
			return false
		}
		var reply struct {
			Idle bool `json:"idle"`
		}
		err = json.NewDecoder(resp.Body).Decode(&reply)
		resp.Body.Close()
		if err != nil || !reply.Idle {
			return false
		}
	}
	return true
}

// buildReport aggregates the nodes' stats and runs the leak check. Every
// fetch failure is an error, not a skip — a node whose /reservations
// answer was lost must not silently pass the gate this tool exists to
// enforce — except on optional sites in churn mode, which may simply be
// gone.
//
// The leak check distinguishes two cases. A reservation of a job some
// node REMEMBERS rejecting is a leak: the abort path failed. A
// reservation of a job no reachable node remembers at all can only happen
// in churn mode (the job record died with its killed initiator after the
// commit went out); it is reported as an orphan, not a failure — the
// member executed a share in good faith and its slots expire with time.
func buildReport(client *http.Client, nodes map[graph.NodeID]string, o opts,
	statuses map[graph.NodeID][]core.JobStatus) (Report, error) {
	rep := Report{Sites: o.sites, LeakedReservations: []string{}}
	var latency metrics.Sample
	accepted := make(map[string]bool)
	known := make(map[string]bool)
	for id := 0; id < o.sites; id++ {
		for _, j := range statuses[graph.NodeID(id)] {
			rep.Jobs++
			known[j.ID] = true
			switch j.OutcomeName {
			case "pending":
				rep.Undecided++
				continue
			case "accepted-local", "accepted-distributed":
				rep.Accepted++
				accepted[j.ID] = true
			}
			latency.Add(j.DecisionAt - j.Arrival)
		}
	}
	if rep.Jobs > 0 {
		rep.GuaranteeRatio = float64(rep.Accepted) / float64(rep.Jobs)
	}
	rep.DecisionLatencyP50 = latency.Percentile(50)
	rep.DecisionLatencyP99 = latency.Percentile(99)
	for id := 0; id < o.sites; id++ {
		site := graph.NodeID(id)
		addr := nodes[site]
		var st nodeapi.StatsReply
		if err := getJSON(client, "http://"+addr+"/stats", &st); err != nil {
			if o.optional[site] {
				continue
			}
			return rep, fmt.Errorf("node %d stats: %w", id, err)
		}
		rep.Messages += st.Messages
		rep.Bytes += st.Bytes
		rep.Dropped += st.Dropped
		rep.Violations += st.Violations
		rep.Disruptions += st.Disruptions
		var r struct {
			Jobs []string `json:"jobs"`
		}
		if err := getJSON(client, "http://"+addr+"/reservations", &r); err != nil {
			if o.optional[site] {
				continue
			}
			return rep, fmt.Errorf("node %d reservations: %w", id, err)
		}
		for _, jobID := range r.Jobs {
			switch {
			case accepted[jobID]:
			case known[jobID] || !o.churn():
				rep.LeakedReservations = append(rep.LeakedReservations,
					fmt.Sprintf("site %d: %s", id, jobID))
			default:
				rep.OrphanReservations = append(rep.OrphanReservations,
					fmt.Sprintf("site %d: %s", id, jobID))
			}
		}
	}
	if rep.Jobs > 0 {
		rep.MsgsPerJob = float64(rep.Messages) / float64(rep.Jobs)
	}
	return rep, nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// verifyAgainstLive replays the identical arrivals on the in-process live
// transport with the nodes' configuration and compares per-arrival
// outcomes, pairing each arrival with its per-origin submission sequence.
func verifyAgainstLive(o opts, arrivals []workload.Arrival,
	statuses map[graph.NodeID][]core.JobStatus, rep *Report) error {
	topo, err := graph.Generate(graph.TopologyKind(o.topoKind), o.sites, experiments.StdDelays, o.seed)
	if err != nil {
		return err
	}
	cfg, err := scheme.CoreConfig(o.schemeName, topo)
	if err != nil {
		return err
	}
	cfg.EnrollSlack = o.slack
	cfg.ReleasePadFactor = o.pad
	if cfg.Policies, err = scheme.ParsePolicies(o.policySpec); err != nil {
		return err
	}
	fmt.Println("rtds-load: replaying the workload on the in-process live transport...")
	lc, err := core.NewLiveCluster(topo, cfg, o.scale)
	if err != nil {
		return err
	}
	defer lc.Close()
	for _, a := range arrivals {
		if _, err := lc.Submit(a.At, a.Origin, a.Graph, a.Deadline); err != nil {
			return err
		}
	}
	if !lc.Wait(o.timeout) {
		return fmt.Errorf("live replay did not quiesce within %v", o.timeout)
	}
	live := lc.JobStatuses()
	rep.LiveVerified = true

	accepted := func(outcome string) bool {
		return outcome == "accepted-local" || outcome == "accepted-distributed"
	}
	next := make(map[graph.NodeID]int)
	match, strict := 0, 0
	for i, a := range arrivals {
		netSt := statuses[a.Origin][next[a.Origin]]
		next[a.Origin]++
		if netSt.OutcomeName == live[i].OutcomeName {
			strict++
		}
		if accepted(netSt.OutcomeName) == accepted(live[i].OutcomeName) {
			match++
		} else {
			rep.LiveMismatches = append(rep.LiveMismatches, fmt.Sprintf(
				"arrival %d (origin %d): cluster %s, live %s",
				i, a.Origin, netSt.OutcomeName, live[i].OutcomeName))
		}
	}
	if len(arrivals) > 0 {
		rep.LiveAgreement = float64(match) / float64(len(arrivals))
		rep.LiveAgreementStrict = float64(strict) / float64(len(arrivals))
	}
	return nil
}
