// Command rtds-node runs ONE RTDS site as a real networked process: the
// protocol core over the internal/wire TCP transport, with an HTTP control
// plane (internal/nodeapi) for job submission, decision polling and
// metrics. N processes with a shared topology seed form a cluster that
// reaches the same decisions as the in-process transports.
//
// Every process must be given the same -topo/-sites/-seed (they generate
// the shared topology deterministically) and a -peers map naming each
// site's protocol address.
//
// Usage:
//
//	rtds-node -id 0 -sites 8 -topo random -seed 1 \
//	          -listen 127.0.0.1:7100 \
//	          -peers 0=127.0.0.1:7100,1=127.0.0.1:7101,... \
//	          -http 127.0.0.1:8100 \
//	          [-scheme rtds] [-policy sphere=k6,accept=laxity0.25] \
//	          [-scale 2ms] [-loss 0.1] [-jitter 0.05] \
//	          [-hb 25] [-suspect 100] [-join]
//
// Membership (heartbeats, failure detection, epoch-tagged route repair) is
// on by default; -hb 0 disables it. With -join the process enters a
// RUNNING cluster instead of bootstrapping with it: it skips the §7 PCS
// construction and asks its topology neighbors for admission — the shape a
// replacement for a crashed site uses. In join mode -peers only needs to
// name reachable seed peers among the site's topology neighbors.
//
// The process exits 0 on SIGINT/SIGTERM after a graceful shutdown (HTTP
// drained, transport closed).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/core/membership"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/nodeapi"
	"repro/internal/scheme"
	"repro/internal/simnet"
	"repro/internal/wire"
)

func main() {
	id := flag.Int("id", -1, "site id of this node (0..sites-1)")
	sites := flag.Int("sites", 8, "number of sites in the shared topology")
	topoKind := flag.String("topo", "random", "topology kind: ring|line|star|clique|grid|torus|hypercube|tree|random|geometric")
	seed := flag.Int64("seed", 1, "topology seed (identical on every node)")
	listen := flag.String("listen", "", "TCP address for protocol traffic (required)")
	peers := flag.String("peers", "", "comma-separated id=host:port protocol addresses of all sites (required)")
	httpAddr := flag.String("http", "", "HTTP address of the control/metrics API (empty = disabled)")
	schemeName := flag.String("scheme", "rtds", "RTDS-core scheme to run ("+strings.Join(scheme.Names(), "|")+")")
	policySpec := flag.String("policy", "", "policy overrides, e.g. sphere=k6,accept=laxity0.25,dispatch=weighted")
	scale := flag.Duration("scale", 2*time.Millisecond, "wall-clock duration of one virtual time unit")
	slack := flag.Float64("slack", 8, "enrollment slack in virtual units (wall clocks need real headroom)")
	pad := flag.Float64("pad", 30, "release pad factor (mapper release = now + pad*omega)")
	loss := flag.Float64("loss", 0, "fault injection: per-traversal loss probability at the socket layer")
	jitter := flag.Float64("jitter", 0, "fault injection: max extra delay per traversal (virtual units)")
	hb := flag.Float64("hb", 25, "membership heartbeat period in virtual units (0 = membership off)")
	suspect := flag.Float64("suspect", 0, "membership suspicion timeout in virtual units (0 = 3x the heartbeat)")
	join := flag.Bool("join", false, "enter a running cluster via the join handshake instead of bootstrapping")
	bootTimeout := flag.Duration("boot-timeout", 60*time.Second, "how long to wait for the distributed PCS bootstrap")
	flag.Parse()

	if err := run(runOpts{
		id: *id, sites: *sites, topoKind: *topoKind, seed: *seed,
		listen: *listen, peers: *peers, httpAddr: *httpAddr,
		schemeName: *schemeName, policySpec: *policySpec,
		scale: *scale, slack: *slack, pad: *pad, loss: *loss, jitter: *jitter,
		hb: *hb, suspect: *suspect, join: *join, bootTimeout: *bootTimeout,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

type runOpts struct {
	id, sites              int
	topoKind               string
	seed                   int64
	listen, peers          string
	httpAddr               string
	schemeName, policySpec string
	scale                  time.Duration
	slack, pad             float64
	loss, jitter           float64
	hb, suspect            float64
	join                   bool
	bootTimeout            time.Duration
}

func run(o runOpts) error {
	id, sites, seed := o.id, o.sites, o.seed
	if id < 0 || id >= sites {
		return fmt.Errorf("-id %d out of range [0,%d)", id, sites)
	}
	if o.listen == "" || o.peers == "" {
		return fmt.Errorf("-listen and -peers are required")
	}
	if o.join && o.hb <= 0 {
		return fmt.Errorf("-join requires membership (-hb > 0)")
	}
	topo, err := graph.Generate(graph.TopologyKind(o.topoKind), sites, experiments.StdDelays, seed)
	if err != nil {
		return err
	}
	peerMap, err := nodeapi.ParseAddrs("peers", o.peers, sites, false)
	if err != nil {
		return err
	}
	cfg, err := scheme.CoreConfig(o.schemeName, topo)
	if err != nil {
		return err
	}
	cfg.EnrollSlack = o.slack
	cfg.ReleasePadFactor = o.pad
	if cfg.Policies, err = scheme.ParsePolicies(o.policySpec); err != nil {
		return err
	}
	if o.loss > 0 || o.jitter > 0 {
		cfg.Faults = &simnet.FaultPlan{Seed: seed, Loss: o.loss, MaxJitter: o.jitter}
	}
	if o.hb > 0 {
		cfg.Membership = membership.Config{
			Enabled:        true,
			HeartbeatEvery: o.hb,
			SuspectAfter:   o.suspect, // 0 defaults to 3x the heartbeat
		}
	}

	tr, err := wire.Listen(wire.NetConfig{
		Self:   graph.NodeID(id),
		Topo:   topo,
		Listen: o.listen,
		Peers:  peerMap,
		Scale:  o.scale,
		Seed:   seed*1000 + int64(id), // deterministic reconnect jitter per node
	})
	if err != nil {
		return err
	}
	defer tr.Close()
	node, err := core.NewNode(topo, cfg, tr, graph.NodeID(id))
	if err != nil {
		return err
	}

	api := nodeapi.New(node)
	var httpSrv *http.Server
	if o.httpAddr != "" {
		httpSrv = &http.Server{Addr: o.httpAddr, Handler: api}
		//lint:allow spawncheck -- the HTTP listener lives for the process; shutdown below unblocks ListenAndServe
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "http:", err)
				os.Exit(1)
			}
		}()
	}

	tr.Start()
	if o.join {
		if err := node.StartJoin(); err != nil {
			return err
		}
		fmt.Printf("rtds-node %d/%d (%s seed %d): protocol %s, joining the running cluster...\n",
			id, sites, o.topoKind, seed, tr.Addr())
		if !node.WaitReady(o.bootTimeout) {
			return fmt.Errorf("join handshake did not complete within %v (are the seed peers up?)", o.bootTimeout)
		}
		node.Seal()
		api.SetReady()
		snap := node.Membership()
		fmt.Printf("rtds-node %d: joined (scheme %s, incarnation %d, epoch %#x)\n",
			id, o.schemeName, snap.Inc, snap.Epoch)
	} else {
		node.StartBootstrap()
		fmt.Printf("rtds-node %d/%d (%s seed %d): protocol %s, bootstrap over TCP...\n",
			id, sites, o.topoKind, seed, tr.Addr())
		if !node.WaitReady(o.bootTimeout) {
			return fmt.Errorf("PCS bootstrap did not complete within %v (are the peers up?)", o.bootTimeout)
		}
		node.Seal()
		api.SetReady()
		bm, _ := node.BootstrapCost()
		fmt.Printf("rtds-node %d: ready (scheme %s, %d bootstrap messages, sphere radius %d, membership %v)\n",
			id, o.schemeName, bm, cfg.Radius, o.hb > 0)
	}

	// Graceful shutdown on SIGINT/SIGTERM: drain HTTP, close the transport.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Printf("rtds-node %d: shutting down\n", id)
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}
	tr.Close()
	if v := node.Violations(); len(v) > 0 {
		return fmt.Errorf("causality violations: %v", v)
	}
	return nil
}
