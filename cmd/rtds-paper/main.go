// Command rtds-paper reproduces every quantitative artifact of the paper:
// the Fig. 2 task graph, the schedules S (Fig. 3) and S* (Fig. 4) computed
// by the mapper, and the adjusted releases/deadlines of Table 1 — and
// verifies each value against the numbers the paper reports.
//
// Usage:
//
//	rtds-paper [-dot]
//
// -dot additionally prints the Fig. 2 DAG in Graphviz format.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	dot := flag.Bool("dot", false, "also print the Fig. 2 DAG as Graphviz DOT")
	flag.Parse()

	res, err := experiments.PaperExample()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Println("Reproduction of Butelle, Hakem, Finta — \"Real-Time Distributed")
	fmt.Println("Scheduling of Precedence Graphs on Arbitrary Wide Networks\", §12 example")
	fmt.Println()
	fmt.Printf("Fig. 2 — %s\n", res.Graph)
	fmt.Println("         edges: 1→3, 2→3, 1→4, 3→5, 4→5")
	fmt.Println("         surpluses I1 = 0.5, I2 = 0.4; ω = 3; r = 0; d = 66")
	fmt.Println()
	fmt.Println(res.GanttS)
	fmt.Println(res.GanttSStar)
	fmt.Printf("case (%s): M = %g ≤ d − r = 66, scaling factor (d−r)/M = %g\n\n",
		res.Mapping.Case, res.Mapping.Makespan, 66/res.Mapping.Makespan)
	fmt.Println(res.Table1.String())

	if err := experiments.VerifyPaperExample(res); err != nil {
		fmt.Fprintln(os.Stderr, "MISMATCH with the paper:", err)
		os.Exit(1)
	}
	fmt.Println("All values match the paper exactly (Figs. 3–4, Table 1, M = 33, M* = 19).")

	if *dot {
		fmt.Println()
		fmt.Println(res.Graph.DOT())
	}
}
