// Command rtds-sim runs one configurable simulation: a topology, a sporadic
// workload, and a scheduling scheme picked from the scheme registry,
// reporting the guarantee ratio, rejection breakdown and communication cost.
//
// Example:
//
//	rtds-sim -sites 32 -topo random -scheme rtds -radius 3 -load 0.8 -tightness 2.5 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/scheme"
	"repro/internal/workload"
)

func main() {
	var (
		sites      = flag.Int("sites", 32, "number of sites")
		topoKind   = flag.String("topo", "random", "topology: ring|line|star|clique|grid|torus|hypercube|tree|random|geometric")
		schemeName = flag.String("scheme", "rtds", "scheduling scheme: "+strings.Join(scheme.Names(), "|"))
		radius     = flag.Int("radius", 3, "computing-sphere hop radius h (core schemes)")
		load       = flag.Float64("load", 0.6, "offered load (total work / capacity)")
		tightness  = flag.Float64("tightness", 2.5, "deadline = tightness x critical path")
		horizon    = flag.Float64("horizon", 400, "arrival horizon (virtual time)")
		taskSize   = flag.Int("tasks", 8, "approximate tasks per job")
		seed       = flag.Int64("seed", 1, "random seed")
		localOnly  = flag.Bool("local-only", false, "shorthand for -scheme local")
		preempt    = flag.Bool("preemptive", false, "preemptive local scheduler (§13, core schemes)")
		verbose    = flag.Bool("v", false, "print per-job outcomes (core schemes)")
		traceLog   = flag.Bool("trace", false, "print the protocol event timeline (core schemes)")
	)
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	name := *schemeName
	if *localOnly {
		if explicit["scheme"] && name != "local" {
			fatal(fmt.Errorf("-local-only conflicts with -scheme %s (it is shorthand for -scheme local)", name))
		}
		name = "local"
	}
	s, ok := scheme.Get(name)
	if !ok {
		fatal(fmt.Errorf("unknown scheme %q; have %s", name, strings.Join(scheme.Names(), ", ")))
	}

	topo, err := graph.Generate(graph.TopologyKind(*topoKind), *sites, experiments.StdDelays, *seed)
	if err != nil {
		fatal(err)
	}

	// The suite's standard workload shape, with the task-size and tightness
	// flags layered on top.
	spec := experiments.StdSpec(topo.Len(), *horizon, *seed)
	spec.TaskSize = *taskSize
	spec.Tightness = *tightness
	arrivals, err := experiments.ArrivalsForLoad(spec, *load)
	if err != nil {
		fatal(err)
	}

	// Tune runs after the scheme's base config; overriding the radius
	// unconditionally would clobber bases that fix it (broadcast sets
	// Radius = N), so -radius applies only when explicitly given.
	effRadius := 0
	cluster, err := s.Build(topo, scheme.Config{
		Horizon: *horizon,
		Tune: func(cfg *core.Config) {
			if explicit["radius"] {
				cfg.Radius = *radius
			}
			cfg.Preemptive = *preempt
			cfg.TraceEvents = *traceLog
			effRadius = cfg.Radius
		},
	})
	if err != nil {
		fatal(err)
	}
	for _, a := range arrivals {
		if err := cluster.Submit(a.At, a.Origin, a.Graph, a.Deadline); err != nil {
			fatal(err)
		}
	}
	if err := cluster.Run(); err != nil {
		fatal(err)
	}

	fmt.Printf("scheme: %s — %s\n", s.Name(), s.Description())
	if effRadius > 0 {
		fmt.Printf("topology: %s, %d sites, %d links; sphere radius h=%d\n",
			*topoKind, topo.Len(), topo.NumEdges(), effRadius)
	} else {
		fmt.Printf("topology: %s, %d sites, %d links\n", *topoKind, topo.Len(), topo.NumEdges())
	}
	fmt.Printf("workload: %d jobs, offered load %.2f (realized %.2f), tightness %.2f\n",
		len(arrivals), *load, workload.OfferedLoad(arrivals, topo.Len(), *horizon), *tightness)
	if b, ok := cluster.(scheme.Bootstrapper); ok {
		msgs, bytes := b.BootstrapCost()
		fmt.Printf("bootstrap: %d messages, %d bytes (one-time PCS construction)\n", msgs, bytes)
	}
	res := cluster.Summarize()
	if res.Core != nil {
		fmt.Println(*res.Core)
	} else {
		fmt.Printf("jobs=%d ratio=%.3f msgs=%d bytes=%d msgs/job=%.1f\n",
			res.Jobs, res.GuaranteeRatio, res.Messages, res.Bytes, res.MessagesPerJob)
	}
	if cb, ok := cluster.(scheme.CoreBacked); ok {
		if *verbose {
			for _, j := range cb.Core().Jobs() {
				fmt.Printf("  %-12s %-22s arrival=%8.2f decided=%8.2f acs=%d procs=%d\n",
					j.ID, j.Outcome.String()+"/"+string(j.RejectStage), j.Arrival, j.DecisionAt, j.ACSSize, j.NumProcs)
			}
		}
		if *traceLog {
			for _, e := range cb.Core().Events() {
				fmt.Println(e)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
