// Command rtds-sim runs one configurable RTDS simulation: a topology, a
// sporadic workload, and the scheduling scheme of choice, reporting the
// guarantee ratio, rejection breakdown and communication cost.
//
// Example:
//
//	rtds-sim -sites 32 -topo random -radius 3 -load 0.8 -tightness 2.5 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/daggen"
	"repro/internal/graph"
	"repro/internal/workload"
)

func main() {
	var (
		sites     = flag.Int("sites", 32, "number of sites")
		topoKind  = flag.String("topo", "random", "topology: ring|line|star|clique|grid|torus|hypercube|tree|random|geometric")
		radius    = flag.Int("radius", 3, "computing-sphere hop radius h")
		load      = flag.Float64("load", 0.6, "offered load (total work / capacity)")
		tightness = flag.Float64("tightness", 2.5, "deadline = tightness x critical path")
		horizon   = flag.Float64("horizon", 400, "arrival horizon (virtual time)")
		taskSize  = flag.Int("tasks", 8, "approximate tasks per job")
		seed      = flag.Int64("seed", 1, "random seed")
		localOnly = flag.Bool("local-only", false, "baseline: never distribute")
		preempt   = flag.Bool("preemptive", false, "preemptive local scheduler (§13)")
		verbose   = flag.Bool("v", false, "print per-job outcomes")
		traceLog  = flag.Bool("trace", false, "print the protocol event timeline")
	)
	flag.Parse()

	topo, err := graph.Generate(graph.TopologyKind(*topoKind), *sites,
		graph.DelayRange{Min: 0.05, Max: 0.3}, *seed)
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Radius = *radius
	cfg.LocalOnly = *localOnly
	cfg.Preemptive = *preempt
	cfg.TraceEvents = *traceLog

	spec := workload.Spec{
		Sites:     topo.Len(),
		Horizon:   *horizon,
		TaskSize:  *taskSize,
		Params:    daggen.Params{MinComplexity: 0.5, MaxComplexity: 5},
		Tightness: *tightness,
		Seed:      *seed,
	}
	spec.RatePerSite = workload.RateForLoad(*load, workload.ExpectedWorkPerJob(spec, 200))
	arrivals, err := workload.Generate(spec)
	if err != nil {
		fatal(err)
	}

	cluster, err := core.NewCluster(topo, cfg)
	if err != nil {
		fatal(err)
	}
	for _, a := range arrivals {
		if _, err := cluster.Submit(a.At, a.Origin, a.Graph, a.Deadline); err != nil {
			fatal(err)
		}
	}
	if err := cluster.Run(); err != nil {
		fatal(err)
	}

	bootMsgs, bootBytes := cluster.BootstrapCost()
	fmt.Printf("topology: %s, %d sites, %d links; sphere radius h=%d\n",
		*topoKind, topo.Len(), topo.NumEdges(), *radius)
	fmt.Printf("workload: %d jobs, offered load %.2f (realized %.2f), tightness %.2f\n",
		len(arrivals), *load, workload.OfferedLoad(arrivals, topo.Len(), *horizon), *tightness)
	fmt.Printf("bootstrap: %d messages, %d bytes (one-time PCS construction)\n", bootMsgs, bootBytes)
	fmt.Println(cluster.Summarize())
	if v := cluster.Violations(); len(v) > 0 {
		fmt.Printf("CAUSALITY VIOLATIONS: %d (first: %s)\n", len(v), v[0])
		os.Exit(1)
	}
	if *verbose {
		for _, j := range cluster.Jobs() {
			fmt.Printf("  %-12s %-22s arrival=%8.2f decided=%8.2f acs=%d procs=%d\n",
				j.ID, j.Outcome.String()+"/"+j.RejectStage, j.Arrival, j.DecisionAt, j.ACSSize, j.NumProcs)
		}
	}
	if *traceLog {
		for _, e := range cluster.Events() {
			fmt.Println(e)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
