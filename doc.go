// Package rtds is a Go implementation of Real-Time Distributed Scheduling
// of precedence graphs on arbitrary wide networks, reproducing the
// algorithm of Butelle, Hakem and Finta (IPPS 2007).
//
// # Model
//
// A network is an arbitrary connected graph of sites joined by
// bidirectional links weighted with communication delays. Sporadic
// real-time jobs — DAGs of tasks with computational complexities, a release
// and a hard deadline — arrive at any site at any time and compete for the
// sites' computation processors.
//
// Each site runs the same state machine; there is no centralized control:
//
//   - the site first tries to guarantee an arriving job locally, inserting
//     all tasks between its existing reservations before the deadline;
//   - otherwise it enrolls its Available Computing Sphere — the unlocked
//     subset of a hop-bounded neighborhood precomputed by an interrupted
//     distributed shortest-paths algorithm — and its mapper list-schedules
//     the DAG onto logical processors, deriving per-task windows that are
//     validated by the sphere members and matched to sites by a maximum
//     coupling; a perfect coupling dispatches the tasks, anything less
//     rejects the job and unlocks the sphere.
//
// # Quick start
//
//	topo := rtds.NewRandomNetwork(16, 3, 42)
//	cluster, err := rtds.NewCluster(topo, rtds.DefaultConfig())
//	if err != nil { ... }
//	job := rtds.NewJob("render").
//		Task(1, 6).Task(2, 4).Task(3, 4).Task(4, 2).Task(5, 5).
//		Edge(1, 3).Edge(2, 3).Edge(1, 4).Edge(3, 5).Edge(4, 5).
//		MustBuild()
//	rec, err := cluster.Submit(0, 0, job, 66)
//	if err != nil { ... }
//	if err := cluster.Run(); err != nil { ... }
//	fmt.Println(rec.Outcome, cluster.Summarize())
//
// The package is a facade: the implementation lives in the internal
// packages (internal/core for the protocol, internal/mapper for the
// trial-mapping construction, internal/routing for sphere construction,
// internal/schedule for the local scheduler, and so on). See DESIGN.md for
// the full inventory and EXPERIMENTS.md for the reproduction results.
package rtds
