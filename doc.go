// Package rtds is a Go implementation of Real-Time Distributed Scheduling
// of precedence graphs on arbitrary wide networks, reproducing the
// algorithm of Butelle, Hakem and Finta (IPPS 2007).
//
// # Model
//
// A network is an arbitrary connected graph of sites joined by
// bidirectional links weighted with communication delays. Sporadic
// real-time jobs — DAGs of tasks with computational complexities, a release
// and a hard deadline — arrive at any site at any time and compete for the
// sites' computation processors.
//
// Each site runs the same code; there is no centralized control. An
// arriving job is first put to the local guarantee test; if the whole DAG
// fits between the site's existing reservations it is accepted on the
// spot. Otherwise the site becomes the initiator of a distributed
// transaction that progresses through three named phases (the state
// machine of internal/core/txn):
//
//   - Enrolling — the sphere policy picks members of the precomputed
//     Potential Computing Sphere to lock; their surplus reports form the
//     Accepted Computing Sphere when the window closes;
//   - Validating — the mapper list-schedules the DAG onto logical
//     processors and every member reports which processors it can endorse;
//   - Committing — a maximum coupling assigns processors to members; a
//     perfect coupling dispatches the tasks, anything less aborts and
//     unlocks everyone.
//
// Every transition is guarded and timer-backed, so lost messages, silent
// members and crashed initiators degrade into rejections instead of
// wedged locks.
//
// # Membership
//
// Failure knowledge belongs to the protocol, not a harness: the
// membership layer (internal/core/membership) runs one manager per site
// that heartbeats its topology neighbors, declares a silent neighbor dead
// after a suspicion timeout, floods incarnation-guarded death and
// resurrection notices, and repairs routing tables through epoch-tagged
// re-floods bounded like the bootstrap — stale-epoch tables are rejected
// so routes computed under different membership views never mix. A
// JoinReq/JoinAck handshake lets a fresh process for a crashed site enter
// a running cluster and start serving enrollments (Node.StartJoin,
// rtds-node -join). Membership arms automatically when a fault plan
// injects crashes, replacing the scripted DetectDelay oracle.
//
// # Policies and schemes
//
// The protocol's decision points are pluggable (Config.Policies, the
// policy layer): the enrollment fan-out (full sphere or k-redundant), the
// local acceptance test (EDF or a laxity threshold), the laxity
// dispatching and the mapper heuristic. Nil policies replay the paper's
// hard-wired behavior exactly.
//
// Complete scheduling algorithms are registered as schemes — rtds, spread,
// broadcast, local, fab (focused addressing + bidding) and oracle — and
// built by name:
//
//	c, err := rtds.BuildScheme("broadcast", topo, rtds.SchemeConfig{})
//	if err != nil { ... }
//	_ = c.Submit(0, 0, job, 66)
//	if err := c.Run(); err != nil { ... }
//	fmt.Println(c.Summarize().GuaranteeRatio)
//
// # Transports and deployment
//
// The protocol core is transport-agnostic (simnet.Transport). Three
// transports implement it:
//
//   - the deterministic discrete-event simulator (internal/simnet.DES),
//     used by every experiment and benchmark; with KernelWorkers set, the
//     same experiments run on the conservative parallel kernel
//     (internal/sim/par behind internal/simnet.PartDES) and produce
//     byte-identical tables at any partition count;
//   - the goroutine-backed live transport (internal/simnet.Live), real
//     scaled time and genuine concurrency in one process;
//   - the TCP transport (internal/wire.NetTransport), which frames every
//     protocol message with the versioned binary codec of internal/wire
//     and runs one site per operating-system process (internal/core.Node,
//     deployed by cmd/rtds-node with the HTTP control plane of
//     internal/nodeapi and driven by cmd/rtds-load).
//
// # Gateway
//
// A deployed cluster is fronted by cmd/rtds-gateway
// (internal/gateway), the production submission API. A POST /v1/jobs
// passes four gates before it is acked: payload validation against the
// dag schema and the wire codec; per-tenant admission (token-bucket
// rate, inflight quota); laxity backpressure (jobs whose deadline is
// tighter than the cluster's observed p99 decision latency are refused
// 429 with Retry-After, before they cost cluster work); and durability —
// the submission is appended to a write-ahead job log (internal/joblog,
// group-commit fsync, truncation-tolerant recovery) before the 202
// leaves. A restarted gateway replays undecided jobs into the cluster;
// an acked submission is never lost. Both the gateway and every node
// expose a Prometheus text /metrics plane built on the stdlib-only
// registry in internal/metrics.
//
// # Static analysis
//
// The determinism and protocol invariants the packages above rely on are
// machine-checked: cmd/rtds-lint (internal/analysis) runs four
// project-specific analyzers — detclock (no wall clocks or global rand in
// deterministic packages), mapiter (no order-sensitive range over maps;
// use internal/determinism.SortedKeys), exhaustive (switches over
// protocol enums cover every constant or reject explicitly) and
// sendunderlock (no transport sends while holding a mutex). CI fails on
// any finding; exceptions are annotated in the source with
// //lint:allow <check> -- <justification>.
//
// # Quick start
//
//	topo := rtds.NewRandomNetwork(16, 3, 42)
//	cluster, err := rtds.NewCluster(topo, rtds.DefaultConfig())
//	if err != nil { ... }
//	job := rtds.NewJob("render").
//		Task(1, 6).Task(2, 4).Task(3, 4).Task(4, 2).Task(5, 5).
//		Edge(1, 3).Edge(2, 3).Edge(1, 4).Edge(3, 5).Edge(4, 5).
//		MustBuild()
//	rec, err := cluster.Submit(0, 0, job, 66)
//	if err != nil { ... }
//	if err := cluster.Run(); err != nil { ... }
//	fmt.Println(rec.Outcome, cluster.Summarize())
//
// The package is a facade: the implementation lives in the internal
// packages (internal/core for the protocol I/O, internal/core/txn for the
// transaction state machine, internal/core/policy for the policy layer,
// internal/scheme for the scheme registry, internal/mapper for the
// trial-mapping construction, internal/routing for sphere construction,
// internal/schedule for the local scheduler, and so on). See
// docs/architecture.md for the full inventory and docs/operations.md for
// deployment and soak runbooks.
package rtds
