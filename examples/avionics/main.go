// Avionics: the paper's introduction lists flight control among the
// motivating real-time systems. This example models a federated avionics
// network — cockpit, sensor, and actuator segments bridged by routers —
// with heterogeneous processor powers (the §13 uniform-machines extension)
// and two job classes: tight control-loop DAGs and longer navigation jobs.
package main

import (
	"fmt"
	"log"
	"math/rand"

	rtds "repro"
)

func controlLoop(name string, rng *rand.Rand) *rtds.DAG {
	// sense -> fuse -> {pitch, roll, yaw} -> actuate
	jb := rtds.NewJob(name)
	jb.Task(1, 0.5+rng.Float64()*0.5) // sense
	jb.Task(2, 1+rng.Float64())       // fuse
	jb.Edge(1, 2)
	for i := rtds.TaskID(3); i <= 5; i++ {
		jb.Task(i, 0.8+rng.Float64()*0.8)
		jb.Edge(2, i)
	}
	jb.Task(6, 0.5) // actuate
	jb.Edge(3, 6)
	jb.Edge(4, 6)
	jb.Edge(5, 6)
	return jb.MustBuild()
}

func navigationJob(name string, rng *rand.Rand) *rtds.DAG {
	// A wider planning DAG: terrain tiles processed in parallel, then fused.
	jb := rtds.NewJob(name)
	jb.Task(1, 2) // load route
	tiles := 4 + rng.Intn(4)
	next := rtds.TaskID(2)
	for i := 0; i < tiles; i++ {
		jb.Task(next, 3+rng.Float64()*3)
		jb.Edge(1, next)
		next++
	}
	fuse := next
	jb.Task(fuse, 2)
	for id := rtds.TaskID(2); id < fuse; id++ {
		jb.Edge(id, fuse)
	}
	return jb.MustBuild()
}

func main() {
	// Federated topology: three 4-site segments in a line of routers.
	topo := rtds.NewNetwork(12)
	for seg := 0; seg < 3; seg++ {
		base := rtds.NodeID(seg * 4)
		for i := rtds.NodeID(1); i < 4; i++ {
			topo.MustAddEdge(base, base+i, 0.05) // intra-segment bus
		}
	}
	topo.MustAddEdge(0, 4, 0.2) // inter-segment trunks
	topo.MustAddEdge(4, 8, 0.2)

	// The registry's rtds scheme, tuned for the federation: tight radius-2
	// spheres and mission computers (segment heads) at 2x the power of
	// line-replaceable units.
	cluster, err := rtds.BuildScheme("rtds", topo, rtds.SchemeConfig{
		Tune: func(cfg *rtds.Config) {
			cfg.Radius = 2
			cfg.Powers = []float64{2, 1, 1, 1, 2, 1, 1, 1, 2, 1, 1, 1}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	t := 0.0
	control, nav := 0, 0
	for i := 0; i < 80; i++ {
		t += rng.ExpFloat64() * 2.5
		origin := rtds.NodeID(rng.Intn(12))
		if rng.Intn(3) > 0 {
			g := controlLoop(fmt.Sprintf("ctl%d", i), rng)
			control++
			if err := cluster.Submit(t, origin, g, g.CriticalPathLength()*2); err != nil {
				log.Fatal(err)
			}
		} else {
			g := navigationJob(fmt.Sprintf("nav%d", i), rng)
			nav++
			if err := cluster.Submit(t, origin, g, g.CriticalPathLength()*2.5); err != nil {
				log.Fatal(err)
			}
		}
	}
	// A Run error covers causality violations for registry core schemes.
	if err := cluster.Run(); err != nil {
		log.Fatal(err)
	}
	sum := *cluster.Summarize().Core
	fmt.Printf("avionics workload: %d control loops + %d navigation jobs on 3 segments\n", control, nav)
	fmt.Println(sum)
	fmt.Printf("mean decision latency: %.3f time units; mean ACS: %.1f sites\n",
		sum.MeanDecisionLatency, sum.MeanACSSize)
	for stage, n := range sum.RejectedByStage {
		fmt.Printf("  rejected at %-9s: %d\n", stage, n)
	}
}
