// Livenet: the same RTDS protocol running on real goroutines and channels
// instead of the deterministic event simulator — one goroutine per site,
// one per directed link, real (scaled) time. Demonstrates that the protocol
// logic is transport-agnostic and survives genuine concurrency.
package main

import (
	"fmt"
	"log"
	"time"

	rtds "repro"
)

func main() {
	topo := rtds.NewNetwork(5)
	topo.MustAddEdge(0, 1, 0.05)
	topo.MustAddEdge(1, 2, 0.05)
	topo.MustAddEdge(2, 3, 0.05)
	topo.MustAddEdge(3, 4, 0.05)
	topo.MustAddEdge(4, 0, 0.08)

	cfg := rtds.DefaultConfig()
	// Real message handling takes real time, which the pure-delay timeouts
	// of the simulator do not model — give the live run generous slack.
	cfg.EnrollSlack = 2
	cfg.ReleasePadFactor = 30

	start := time.Now()
	cluster, err := rtds.NewLiveCluster(topo, cfg, 2*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	bootMsgs, _ := cluster.BootstrapCost()
	fmt.Printf("live PCS bootstrap over goroutines: %d messages in %v\n",
		bootMsgs, time.Since(start).Round(time.Millisecond))

	job := rtds.NewJob("burst").
		Task(1, 10).Task(2, 10).Task(3, 10).
		MustBuild() // three independent tasks: needs parallelism under a tight deadline

	// 30 units of work, deadline 26: impossible on one site, easy on three.
	rec, err := cluster.Submit(0, 0, job, 26)
	if err != nil {
		log.Fatal(err)
	}
	if !cluster.Wait(30 * time.Second) {
		log.Fatal("cluster did not quiesce")
	}
	fmt.Printf("job outcome: %v (ACS %d sites, |U| = %d), wall time %v\n",
		rec.Outcome, rec.ACSSize, rec.NumProcs, time.Since(start).Round(time.Millisecond))
	if v := cluster.Violations(); len(v) > 0 {
		log.Fatalf("causality violations: %v", v)
	}
	fmt.Println("summary:", cluster.Summarize())
}
