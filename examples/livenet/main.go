// Livenet: the same RTDS protocol running on real goroutines and channels
// instead of the deterministic event simulator — and then again over real
// TCP sockets, one site per transport, as the multi-process deployment
// (cmd/rtds-node) runs it. Demonstrates that the protocol logic is
// transport-agnostic and survives genuine concurrency.
package main

import (
	"fmt"
	"log"
	"time"

	rtds "repro"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/wire"
)

func ring() *rtds.Network {
	topo := rtds.NewNetwork(5)
	topo.MustAddEdge(0, 1, 0.05)
	topo.MustAddEdge(1, 2, 0.05)
	topo.MustAddEdge(2, 3, 0.05)
	topo.MustAddEdge(3, 4, 0.05)
	topo.MustAddEdge(4, 0, 0.08)
	return topo
}

func burst() *rtds.DAG {
	// Three independent tasks: needs parallelism under a tight deadline.
	// 30 units of work, deadline 26: impossible on one site, easy on three.
	return rtds.NewJob("burst").
		Task(1, 10).Task(2, 10).Task(3, 10).
		MustBuild()
}

func liveConfig() rtds.Config {
	cfg := rtds.DefaultConfig()
	// Real message handling takes real time, which the pure-delay timeouts
	// of the simulator do not model — give wall-clock runs generous slack.
	cfg.EnrollSlack = 2
	cfg.ReleasePadFactor = 30
	return cfg
}

func main() {
	runGoroutines()
	runTCP()
}

// runGoroutines: one goroutine per site, one per link, shared memory.
func runGoroutines() {
	start := time.Now()
	cluster, err := rtds.NewLiveCluster(ring(), liveConfig(), 2*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	bootMsgs, _ := cluster.BootstrapCost()
	fmt.Printf("live PCS bootstrap over goroutines: %d messages in %v\n",
		bootMsgs, time.Since(start).Round(time.Millisecond))

	rec, err := cluster.Submit(0, 0, burst(), 26)
	if err != nil {
		log.Fatal(err)
	}
	if !cluster.Wait(30 * time.Second) {
		log.Fatal("cluster did not quiesce")
	}
	fmt.Printf("job outcome: %v (ACS %d sites, |U| = %d), wall time %v\n",
		rec.Outcome, rec.ACSSize, rec.NumProcs, time.Since(start).Round(time.Millisecond))
	if v := cluster.Violations(); len(v) > 0 {
		log.Fatalf("causality violations: %v", v)
	}
	fmt.Println("summary:", cluster.Summarize())
	// Close is idempotent and drains in-flight traffic: the deferred call
	// above plus this one exercise exactly what cmd/rtds-node relies on.
	cluster.Close()
}

// runTCP: the same ring, but every site is its own wire.NetTransport on a
// loopback TCP socket — the protocol messages travel as length-prefixed
// binary frames, exactly as between rtds-node processes.
func runTCP() {
	topo := ring()
	cfg := liveConfig()
	scale := 2 * time.Millisecond
	start := time.Now()

	trs := make([]*wire.NetTransport, topo.Len())
	addrs := make(map[graph.NodeID]string)
	for id := 0; id < topo.Len(); id++ {
		tr, err := wire.Listen(wire.NetConfig{
			Self: graph.NodeID(id), Topo: topo, Listen: "127.0.0.1:0", Scale: scale,
		})
		if err != nil {
			log.Fatal(err)
		}
		trs[id] = tr
		addrs[graph.NodeID(id)] = tr.Addr()
		defer tr.Close()
	}
	nodes := make([]*core.Node, topo.Len())
	for id, tr := range trs {
		tr.SetPeers(addrs)
		n, err := core.NewNode(topo, cfg, tr, graph.NodeID(id))
		if err != nil {
			log.Fatal(err)
		}
		nodes[id] = n
	}
	for _, tr := range trs {
		tr.Start()
	}
	for _, n := range nodes {
		n.StartBootstrap()
	}
	var boot int64
	for id, n := range nodes {
		if !n.WaitReady(30 * time.Second) {
			log.Fatalf("site %d never finished the PCS bootstrap over TCP", id)
		}
		n.Seal()
		m, _ := n.BootstrapCost()
		boot += m
	}
	fmt.Printf("live PCS bootstrap over TCP sockets: %d messages in %v\n",
		boot, time.Since(start).Round(time.Millisecond))

	if _, err := nodes[0].Submit(0, burst(), 26); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := nodes[0].JobStatuses()
		if len(st) == 1 && st[0].Outcome != core.Pending {
			fmt.Printf("job outcome over TCP: %s (ACS %d sites, |U| = %d), wall time %v\n",
				st[0].OutcomeName, st[0].ACSSize, st[0].NumProcs,
				time.Since(start).Round(time.Millisecond))
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("TCP cluster never decided the job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for id, n := range nodes {
		if v := n.Violations(); len(v) > 0 {
			log.Fatalf("site %d causality violations: %v", id, v)
		}
	}
}
