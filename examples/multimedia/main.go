// Multimedia: the paper's introduction motivates real-time scheduling with
// multimedia systems. This example models a video-processing service: each
// incoming clip spawns a decode → (parallel filters) → encode pipeline DAG
// with a deadline proportional to the clip's play-out time, arriving
// sporadically on a 12-site cluster. It compares RTDS against the
// local-only baseline on the same workload.
package main

import (
	"fmt"
	"log"
	"math/rand"

	rtds "repro"
)

// pipelineJob builds a decode -> k parallel filters -> merge -> encode DAG.
func pipelineJob(name string, filters int, rng *rand.Rand) *rtds.DAG {
	jb := rtds.NewJob(name)
	decode := rtds.TaskID(1)
	jb.Task(decode, 2+rng.Float64()*2)
	next := rtds.TaskID(2)
	var filterIDs []rtds.TaskID
	for i := 0; i < filters; i++ {
		jb.Task(next, 3+rng.Float64()*4) // denoise, scale, color-grade, ...
		jb.Edge(decode, next)
		filterIDs = append(filterIDs, next)
		next++
	}
	merge := next
	jb.Task(merge, 1+rng.Float64())
	for _, f := range filterIDs {
		jb.Edge(f, merge)
	}
	encode := merge + 1
	jb.Task(encode, 4+rng.Float64()*3)
	jb.Edge(merge, encode)
	return jb.MustBuild()
}

// run drives one scheme from the registry ("rtds" or "local") over the same
// clip workload; a Run error covers causality violations for core schemes.
func run(schemeName string, jobs []*rtds.DAG, arrivals []float64, origins []rtds.NodeID, deadlines []float64) rtds.Summary {
	topo := rtds.NewRandomNetwork(12, 3, 7)
	cluster, err := rtds.BuildScheme(schemeName, topo, rtds.SchemeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	for i, g := range jobs {
		if err := cluster.Submit(arrivals[i], origins[i], g, deadlines[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := cluster.Run(); err != nil {
		log.Fatal(err)
	}
	return *cluster.Summarize().Core
}

func main() {
	rng := rand.New(rand.NewSource(2))
	var (
		jobs      []*rtds.DAG
		arrivals  []float64
		origins   []rtds.NodeID
		deadlines []float64
	)
	t := 0.0
	for i := 0; i < 60; i++ {
		t += rng.ExpFloat64() * 4 // sporadic clip arrivals, mean gap 4
		g := pipelineJob(fmt.Sprintf("clip%d", i), 2+rng.Intn(4), rng)
		jobs = append(jobs, g)
		arrivals = append(arrivals, t)
		origins = append(origins, rtds.NodeID(rng.Intn(12)))
		// Play-out deadline: tight for "live" clips, looser for batch.
		tight := 1.6
		if rng.Intn(3) == 0 {
			tight = 3.5
		}
		deadlines = append(deadlines, g.CriticalPathLength()*tight)
	}

	dist := run("rtds", jobs, arrivals, origins, deadlines)
	local := run("local", jobs, arrivals, origins, deadlines)

	fmt.Println("video pipeline workload: 60 clips, 12 sites, sphere radius 3")
	fmt.Printf("  RTDS:        guarantee ratio %.2f (%d local + %d distributed), %d msgs\n",
		dist.GuaranteeRatio, dist.AcceptedLocal, dist.AcceptedDistributed, dist.Messages)
	fmt.Printf("  local-only:  guarantee ratio %.2f\n", local.GuaranteeRatio)
	fmt.Printf("  distribution rescued %.0f%% of the clips\n",
		100*(dist.GuaranteeRatio-local.GuaranteeRatio))
}
