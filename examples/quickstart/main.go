// Quickstart: build a small network, submit the paper's example job, and
// watch RTDS decide.
package main

import (
	"fmt"
	"log"

	rtds "repro"
)

func main() {
	// A 6-site network: a ring with one chord. Delays are small relative to
	// task durations, as in a loosely coupled LAN.
	topo := rtds.NewNetwork(6)
	for i := 0; i < 6; i++ {
		topo.MustAddEdge(rtds.NodeID(i), rtds.NodeID((i+1)%6), 0.1)
	}
	topo.MustAddEdge(0, 3, 0.15)

	cluster, err := rtds.NewCluster(topo, rtds.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The task graph from the paper's Fig. 2: five tasks, five precedence
	// constraints, total work 21, critical path 15.
	job := rtds.NewJob("fig2").
		Task(1, 6).Task(2, 4).Task(3, 4).Task(4, 2).Task(5, 5).
		Edge(1, 3).Edge(2, 3).Edge(1, 4).Edge(3, 5).Edge(4, 5).
		MustBuild()

	// Submit at time 0 on site 0 with deadline 66 — an easy job for an idle
	// site, accepted locally.
	easy, err := cluster.Submit(0, 0, job, 66)
	if err != nil {
		log.Fatal(err)
	}

	// A second copy arrives immediately after on the same site with a much
	// tighter deadline: it no longer fits locally behind the first job and
	// must be distributed over the computing sphere.
	tight, err := cluster.Submit(0.5, 0, job, 30)
	if err != nil {
		log.Fatal(err)
	}

	if err := cluster.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("easy job:  %-22s decided %.2f after arrival\n",
		easy.Outcome, easy.DecisionAt-easy.Arrival)
	fmt.Printf("tight job: %-22s decided %.2f after arrival, ACS=%d sites, |U|=%d\n",
		tight.Outcome, tight.DecisionAt-tight.Arrival, tight.ACSSize, tight.NumProcs)
	fmt.Println()
	fmt.Println("run summary:", cluster.Summarize())
	if v := cluster.Violations(); len(v) > 0 {
		log.Fatalf("causality violations: %v", v)
	}
}
