// Package analysis is the repo's static-analysis layer: a minimal,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus the machinery the four
// rtds-lint analyzers share — a go-list-driven package loader with full type
// information (load.go), a standalone runner (run.go), the `go vet -vettool`
// unit-checker protocol (unitchecker.go), and the //lint:allow escape-hatch
// grammar implemented here.
//
// The x/tools module is deliberately not a dependency: the checks live and
// die with this repository, and everything they need — parsing, type
// checking, export data — ships in the standard library. The Analyzer/Pass
// shape is kept compatible enough that porting to the real go/analysis
// framework later is a rename, not a rewrite.
//
// # Escape hatches
//
// A diagnostic can be suppressed, with a mandatory one-line justification,
// by a comment on the offending line or on the line directly above it:
//
//	//lint:allow <escape> -- <justification>
//
// or for a whole file (the live/TCP side of a mixed package, say):
//
//	//lint:file-allow <escape> -- <justification>
//
// <escape> is the analyzer's escape token: wallclock (detclock), mapiter,
// exhaustive, sendunderlock, lockorder, hotalloc, spawncheck. The runner
// rejects malformed escapes — an unknown token or a missing justification
// is itself a diagnostic — so an exception cannot be waved through
// silently.
//
// A second directive declares hot-path roots for the hotalloc analyzer, on
// the line directly above (or the doc comment of) a function declaration:
//
//	//lint:hotpath -- <why this function must stay allocation-free>
//
// The root set thus lives in the source next to the functions it names
// (wire.Encode, the sim event loop, schedule Admit), not in linter
// configuration.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is the one-paragraph description shown by rtds-lint -help.
	Doc string
	// Escape is the token accepted by //lint:allow comments. Defaults to
	// Name; detclock uses "wallclock" (the escape names the forbidden
	// thing, not the checker).
	Escape string
	// Run executes the check over one package. Exactly one of Run and
	// RunProgram is set.
	Run func(*Pass) error
	// RunProgram executes the check once over every package of the load —
	// the whole-program analyzers (lockorder, hotalloc, spawncheck) that
	// follow calls across package boundaries. See program.go.
	RunProgram func(*ProgramPass) error
}

// EscapeToken returns the analyzer's escape-hatch token.
func (a *Analyzer) EscapeToken() string {
	if a.Escape != "" {
		return a.Escape
	}
	return a.Name
}

// A Diagnostic is one reported problem.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// A Pass provides one analyzer run with a single type-checked package and
// collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
	allows      *allowIndex
}

// Reportf records a diagnostic at pos unless an escape comment allows it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Allowed(pos) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Allowed reports whether an escape comment suppresses diagnostics of this
// pass's analyzer at pos: a file-allow anywhere in the file, or a line
// allow on the same line or the line directly above.
func (p *Pass) Allowed(pos token.Pos) bool {
	if p.allows == nil {
		p.allows = indexAllows(p.Fset, p.Files)
	}
	return p.allows.allowed(p.Fset, pos, p.Analyzer.EscapeToken())
}

// ---------------------------------------------------------------------------
// Escape comment parsing

// allowRe matches the escape grammar. Group 1: "file-allow" or "allow",
// group 2: the escape token, group 3: the justification (may be empty,
// which CheckEscapes rejects).
var allowRe = regexp.MustCompile(`^//lint:(allow|file-allow)\s+([A-Za-z0-9_-]+)(?:\s+--\s*(.*))?$`)

// hotpathRe matches the hot-path root directive. Group 1 is the mandatory
// justification: a root without a why is as suspicious as an escape
// without one.
var hotpathRe = regexp.MustCompile(`^//lint:hotpath(?:\s+--\s*(.*))?$`)

// HotpathFuncs returns the functions marked as hot-path roots by a
// //lint:hotpath directive in their doc comment or on the line directly
// above the declaration. The result is in file order.
func HotpathFuncs(fset *token.FileSet, files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		// Lines carrying the directive, whether or not attached as a doc
		// comment (a detached comment line still counts, matching how
		// //lint:allow binds to the line below it).
		marked := make(map[string]map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if hotpathRe.MatchString(c.Text) {
					p := fset.Position(c.Slash)
					if marked[p.Filename] == nil {
						marked[p.Filename] = make(map[int]bool)
					}
					marked[p.Filename][p.Line] = true
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			p := fset.Position(fd.Pos())
			byLine := marked[p.Filename]
			if byLine == nil {
				continue
			}
			// Anywhere in the doc comment, or the line directly above the
			// func keyword.
			hit := byLine[p.Line-1]
			if fd.Doc != nil {
				start := fset.Position(fd.Doc.Pos()).Line
				for l := start; l < p.Line && !hit; l++ {
					hit = byLine[l]
				}
			}
			if hit {
				out = append(out, fd)
			}
		}
	}
	return out
}

type allowIndex struct {
	fileAllows map[string]map[string]bool // file -> token -> present
	lineAllows map[string]map[int][]string
}

func indexAllows(fset *token.FileSet, files []*ast.File) *allowIndex {
	idx := &allowIndex{
		fileAllows: make(map[string]map[string]bool),
		lineAllows: make(map[string]map[int][]string),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				switch m[1] {
				case "file-allow":
					byTok := idx.fileAllows[pos.Filename]
					if byTok == nil {
						byTok = make(map[string]bool)
						idx.fileAllows[pos.Filename] = byTok
					}
					byTok[m[2]] = true
				case "allow":
					byLine := idx.lineAllows[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]string)
						idx.lineAllows[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], m[2])
				}
			}
		}
	}
	return idx
}

func (idx *allowIndex) allowed(fset *token.FileSet, pos token.Pos, tok string) bool {
	if !pos.IsValid() {
		return false
	}
	p := fset.Position(pos)
	if idx.fileAllows[p.Filename][tok] {
		return true
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, t := range idx.lineAllows[p.Filename][line] {
			if t == tok {
				return true
			}
		}
	}
	return false
}

// CheckEscapes validates every //lint: comment in the files against the
// escape grammar and the known tokens, reporting malformed ones as
// diagnostics. An escape without a justification, or naming a check that
// does not exist, must fail the build rather than silently allow nothing
// (or worse, silently allow everything a typo away).
func CheckEscapes(fset *token.FileSet, files []*ast.File, knownTokens []string) []Diagnostic {
	known := make(map[string]bool, len(knownTokens))
	for _, t := range knownTokens {
		known[t] = true
	}
	var out []Diagnostic
	bad := func(pos token.Pos, format string, args ...any) {
		out = append(out, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: "lintescape"})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:") {
					continue
				}
				if h := hotpathRe.FindStringSubmatch(c.Text); h != nil {
					if strings.TrimSpace(h[1]) == "" {
						bad(c.Slash, "hot-path root is missing its justification (//lint:hotpath -- <why>)")
					}
					continue
				}
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					bad(c.Slash, "malformed lint escape %q: want //lint:allow <check> -- <justification>", c.Text)
					continue
				}
				if !known[m[2]] {
					bad(c.Slash, "lint escape names unknown check %q (known: %s)", m[2], strings.Join(knownTokens, ", "))
				}
				if strings.TrimSpace(m[3]) == "" {
					bad(c.Slash, "lint escape for %q is missing its justification (//lint:%s %s -- <why>)", m[2], m[1], m[2])
				}
			}
		}
	}
	return out
}
