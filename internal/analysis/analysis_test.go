package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestCheckEscapesRejectsMalformedComments(t *testing.T) {
	fset, files := parseOne(t, `package p

//lint:allow mapiter -- justified exception
var a int

//lint:allow mapiter
var b int

//lint:allow nosuchcheck -- typo in the token
var c int

//lint:alow mapiter -- misspelled directive
var d int

//lint:file-allow wallclock -- whole file is on the live side
var e int
`)
	diags := CheckEscapes(fset, files, []string{"wallclock", "mapiter", "exhaustive", "sendunderlock"})
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
	wants := []string{"missing its justification", "unknown check", "malformed lint escape"}
	SortDiagnostics(fset, diags)
	for i, w := range wants {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, w)
		}
		if diags[i].Analyzer != "lintescape" {
			t.Errorf("diagnostic %d attributed to %q, want lintescape", i, diags[i].Analyzer)
		}
	}
}

func TestAllowScopes(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	g() //lint:allow mapiter -- same line

	g()

	//lint:allow mapiter -- line above
	g()
}
`)
	a := &Analyzer{Name: "mapiter", Run: func(*Pass) error { return nil }}
	pass := &Pass{Analyzer: a, Fset: fset, Files: files}
	// Reportf at each g() call; only the unescaped middle one survives.
	ast.Inspect(files[0], func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			pass.Reportf(call.Pos(), "flagged")
		}
		return true
	})
	if len(pass.diagnostics) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (the unescaped call): %v", len(pass.diagnostics), pass.diagnostics)
	}
	if line := fset.Position(pass.diagnostics[0].Pos).Line; line != 6 {
		t.Errorf("surviving diagnostic on line %d, want 6", line)
	}
}

func TestFileAllowSuppressesWholeFile(t *testing.T) {
	fset, files := parseOne(t, `package p

//lint:file-allow wallclock -- live-side file

func f() { g() }
func h() { g() }
`)
	a := &Analyzer{Name: "detclock", Escape: "wallclock", Run: func(*Pass) error { return nil }}
	pass := &Pass{Analyzer: a, Fset: fset, Files: files}
	ast.Inspect(files[0], func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			pass.Reportf(call.Pos(), "flagged")
		}
		return true
	})
	if len(pass.diagnostics) != 0 {
		t.Fatalf("file-allow did not suppress: %v", pass.diagnostics)
	}
}
