// Package analysistest runs an analyzer over a testdata package and checks
// its diagnostics against // want comments, mirroring (a useful subset of)
// golang.org/x/tools/go/analysis/analysistest.
//
// A testdata package is a directory of ordinary Go files (conventionally
// testdata/src/<name>/ under the analyzer's package). Each expected
// diagnostic is declared on the line it is reported at:
//
//	m := map[int]int{}
//	for k := range m { // want `range over map reaches .*`
//		out = append(out, k)
//	}
//
// Every quoted string after "want" is a regular expression; one diagnostic
// must match each, on that line, and no diagnostic may go undeclared. This
// is how each rtds-lint analyzer proves both halves of its contract: it
// catches the seeded violation, and it stays silent on the fixed form.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// Run loads the Go files in dir as one package, applies the analyzer, and
// reports mismatches against the // want comments through t.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, fset, files := load(t, dir)
	diags, err := analysis.RunForTest(a, pkg)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	check(t, fset, files, diags)
}

// RunProgram loads the Go files in dir as one package and applies a
// whole-program analyzer (Analyzer.RunProgram) to it as a single-package
// program, checking // want comments exactly as Run does. dir doubles as
// Program.Dir, so an analyzer that shells out to the go tool (hotalloc's
// escape-analysis cross-check) runs it over the fixture sources.
func RunProgram(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, fset, files := load(t, dir)
	diags, err := analysis.RunProgramForTest(a, dir, pkg)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	check(t, fset, files, diags)
}

// check matches reported diagnostics against the // want expectations.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q was not reported", w.file, w.line, w.re)
		}
	}
}

// load parses and type-checks the fixture directory as one package.
func load(t *testing.T, dir string) (*analysis.Package, *token.FileSet, []*ast.File) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var imports []string
	seen := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	pkg, err := analysis.TypecheckStandalone(fset, files, exportsFor(t, imports))
	if err != nil {
		t.Fatalf("analysistest: typecheck %s: %v", dir, err)
	}
	return pkg, fset, files
}

var (
	exportsMu    sync.Mutex
	exportsCache = map[string]string{}
)

// exportsFor resolves export-data files for the testdata package's imports
// (standard library, possibly this module's packages) via one `go list`
// invocation, cached process-wide.
func exportsFor(t *testing.T, imports []string) map[string]string {
	t.Helper()
	exportsMu.Lock()
	defer exportsMu.Unlock()
	var missing []string
	for _, p := range imports {
		if _, ok := exportsCache[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		found, err := analysis.ListExports(".", missing)
		if err != nil {
			t.Fatalf("analysistest: resolving imports %v: %v", missing, err)
		}
		for p, f := range found {
			exportsCache[p] = f
		}
	}
	out := make(map[string]string, len(exportsCache))
	for p, f := range exportsCache {
		out[p] = f
	}
	return out
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRe pulls the quoted expectations out of a want comment. Both "..."
// and `...` quoting are accepted.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var out []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Slash)
				matches := wantRe.FindAllStringSubmatch(text[len("want "):], -1)
				if len(matches) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, m := range matches {
					expr := m[1]
					if expr == "" {
						expr = m[2]
						expr = strings.ReplaceAll(expr, `\"`, `"`)
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, expr, err)
					}
					out = append(out, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// Dir returns the conventional testdata package directory for a named
// testdata package: testdata/src/<name> relative to the caller's package.
func Dir(name string) string {
	return filepath.Join("testdata", "src", name)
}
