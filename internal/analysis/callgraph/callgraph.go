// Package callgraph builds a type-based whole-program call graph over the
// packages a lint run loads, plus the per-function summaries the
// second-generation analyzers (lockorder, hotalloc, spawncheck) compose
// transitively: which lock classes a function acquires and with what held,
// which calls it makes under which locks, and which goroutines it spawns.
//
// Resolution is deliberately CHA (class-hierarchy analysis), not points-to:
// a call through an interface method resolves to every concrete type in the
// load whose method set implements the interface. That over-approximates —
// simnet.Transport has both the in-process and the TCP implementation, and
// both count at every call site — which is exactly the right bias for the
// clients: a deadlock or allocation that any implementation can reach is a
// finding.
//
// Function literals are nodes of their own, not inlined into the enclosing
// function. A closure handed to transport.After runs after the caller's
// locks are released — the sanctioned fix for send-under-lock bugs — so it
// must not inherit the caller's held set. The enclosing function gets a
// Call-context edge to a literal only when the literal is invoked on the
// spot; a literal that is deferred, spawned, or passed as a value gets a
// Defer/Go/Ref edge, all of which start with an empty held set.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Context says how an edge's callee comes to run, which decides whether it
// inherits the caller's held locks.
type Context int

const (
	// Call is an ordinary call: the callee runs here, under the caller's
	// current held set.
	Call Context = iota
	// Go is a go statement: the callee runs on a fresh goroutine with no
	// inherited locks.
	Go
	// Defer is a deferred call: it runs at function exit, after the
	// lock/unlock pairing of the body, so it inherits nothing either.
	Defer
	// Ref is a function or method value taken but not called here; it may
	// run later, lock-free as far as this site is concerned.
	Ref
)

func (c Context) String() string {
	switch c {
	case Call:
		return "call"
	case Go:
		return "go"
	case Defer:
		return "defer"
	case Ref:
		return "ref"
	}
	return fmt.Sprintf("Context(%d)", int(c))
}

// An Edge is one resolved call (or function-value reference) site.
type Edge struct {
	Caller *Node
	Callee *Node
	// Pos is the call (or reference) position.
	Pos token.Pos
	// Ctx is how the callee comes to run.
	Ctx Context
	// Dynamic marks edges resolved by CHA over an interface method set
	// rather than direct name binding.
	Dynamic bool
	// Held is the set of lock classes held at the site, sorted. Always
	// empty for Go/Defer/Ref edges.
	Held []string
	// GoStmt is set on Go-context edges: the statement that spawned the
	// callee (spawncheck keys its evidence search on it).
	GoStmt *ast.GoStmt
}

// An Acquire is one Lock/RLock call, with the lock classes already held
// when it executes.
type Acquire struct {
	// Class is the canonical lock class, e.g.
	// "repro/internal/simnet.Stats.mu" for a field mutex or
	// "repro/internal/core.epochGate" for a package-level one.
	Class string
	// Read marks RLock acquisitions.
	Read bool
	// Held is the set of classes already held, sorted.
	Held []string
	Pos  token.Pos
}

// A Node is one function body: a declared function or method, or a
// function literal.
type Node struct {
	// Pkg is the package the body lives in.
	Pkg *analysis.Package
	// Decl is set for declared functions; Lit for literals. Exactly one is
	// non-nil.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Obj is the declared function's type object (nil for literals).
	Obj *types.Func
	// Name is the stable qualified name: "pkgpath.Func",
	// "(pkgpath.Recv).Method", or "enclosing$N" for the N-th literal (in
	// source order) inside its enclosing function.
	Name string

	// Out holds the outgoing edges in source order (CHA fan-out at one
	// site is ordered by callee name).
	Out []*Edge
	// In holds the incoming edges, filled after all bodies are walked.
	In []*Edge
	// Acquires lists the node's own lock acquisitions in source order.
	Acquires []Acquire
	// Spawns lists the node's go statements in source order.
	Spawns []*ast.GoStmt
}

// Body returns the function body block.
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Pos returns the declaration (or literal) position.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// A Graph is the call graph of one load.
type Graph struct {
	Fset *token.FileSet
	// Nodes is every function body, in package / file / position order.
	Nodes []*Node

	byObj map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node
	// concrete is every named non-interface type declared in the load,
	// sorted by full name: the CHA universe.
	concrete []*types.Named
}

// NodeOf returns the node for a declared function object, or nil.
func (g *Graph) NodeOf(obj *types.Func) *Node { return g.byObj[obj] }

// NodeOfLit returns the node for a function literal, or nil.
func (g *Graph) NodeOfLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Build constructs the call graph and per-function summaries for the given
// packages (normally every package of one load — resolution quality
// degrades gracefully if callees live outside the set: those calls are
// simply unresolved).
func Build(fset *token.FileSet, pkgs []*analysis.Package) *Graph {
	g := &Graph{
		Fset:  fset,
		byObj: make(map[*types.Func]*Node),
		byLit: make(map[*ast.FuncLit]*Node),
	}
	g.collectNodes(pkgs)
	g.collectConcreteTypes(pkgs)
	for _, n := range g.Nodes {
		if n.Decl != nil { // literals are walked from their enclosing decl
			walkBody(g, n)
		}
	}
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			e.Callee.In = append(e.Callee.In, e)
		}
	}
	return g
}

// collectNodes creates a node per function declaration with a body and per
// function literal, naming literals enclosing$1, enclosing$2, ... in
// source order.
func (g *Graph) collectNodes(pkgs []*analysis.Package) {
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				n := &Node{Pkg: pkg, Decl: fd, Obj: obj, Name: declName(pkg, fd, obj)}
				g.Nodes = append(g.Nodes, n)
				if obj != nil {
					g.byObj[obj] = n
				}
				idx := 0
				ast.Inspect(fd.Body, func(x ast.Node) bool {
					lit, ok := x.(*ast.FuncLit)
					if !ok {
						return true
					}
					idx++
					ln := &Node{Pkg: pkg, Lit: lit, Name: fmt.Sprintf("%s$%d", n.Name, idx)}
					g.Nodes = append(g.Nodes, ln)
					g.byLit[lit] = ln
					return true // nested literals are numbered depth-first
				})
			}
		}
	}
}

// declName renders the qualified function name.
func declName(pkg *analysis.Package, fd *ast.FuncDecl, obj *types.Func) string {
	path := pkg.ImportPath
	if obj != nil && obj.Pkg() != nil {
		path = obj.Pkg().Path()
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return path + "." + fd.Name.Name
	}
	recv := "?"
	if obj != nil {
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			star := ""
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
				star = "*"
			}
			if named, isNamed := t.(*types.Named); isNamed {
				recv = star + path + "." + named.Obj().Name()
			}
		}
	}
	return "(" + recv + ")." + fd.Name.Name
}

// collectConcreteTypes gathers the CHA universe: every named non-interface
// type declared at package scope in the load.
func (g *Graph) collectConcreteTypes(pkgs []*analysis.Package) {
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			g.concrete = append(g.concrete, named)
		}
	}
	sort.Slice(g.concrete, func(i, j int) bool {
		return fullTypeName(g.concrete[i]) < fullTypeName(g.concrete[j])
	})
}

func fullTypeName(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// implementers resolves an interface method to the nodes of every concrete
// method in the load that implements it, sorted by name.
func (g *Graph) implementers(iface *types.Interface, method *types.Func) []*Node {
	var out []*Node
	seen := make(map[*Node]bool)
	for _, named := range g.concrete {
		// Method sets of *T include T's methods, so checking the pointer
		// type covers both value and pointer receivers.
		pt := types.NewPointer(named)
		if !types.Implements(pt, iface) {
			continue
		}
		sel := types.NewMethodSet(pt).Lookup(method.Pkg(), method.Name())
		if sel == nil {
			continue
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			continue
		}
		if n := g.byObj[fn]; n != nil && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
