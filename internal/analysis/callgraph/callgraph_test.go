package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// buildSrc type-checks one source string as package p and builds its graph.
func buildSrc(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	exports := map[string]string{}
	if len(f.Imports) > 0 {
		var imports []string
		for _, imp := range f.Imports {
			imports = append(imports, strings.Trim(imp.Path.Value, `"`))
		}
		found, err := analysis.ListExports(".", imports)
		if err != nil {
			t.Fatalf("exports: %v", err)
		}
		exports = found
	}
	pkg, err := analysis.TypecheckStandalone(fset, []*ast.File{f}, exports)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return Build(fset, []*analysis.Package{pkg})
}

func nodeByName(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	var names []string
	for _, n := range g.Nodes {
		names = append(names, n.Name)
	}
	t.Fatalf("no node %q (have %v)", name, names)
	return nil
}

// edges renders a node's outgoing edges as "ctx:callee" strings.
func edges(n *Node) []string {
	var out []string
	for _, e := range n.Out {
		s := e.Ctx.String() + ":" + e.Callee.Name
		if e.Dynamic {
			s = "dyn/" + s
		}
		out = append(out, s)
	}
	return out
}

func wantEdge(t *testing.T, n *Node, want string) {
	t.Helper()
	for _, have := range edges(n) {
		if have == want {
			return
		}
	}
	t.Errorf("%s: missing edge %q; have %v", n.Name, want, edges(n))
}

func TestStaticCallAndRecursion(t *testing.T) {
	g := buildSrc(t, `package p
func a() { b() }
func b() { a(); b() }
`)
	wantEdge(t, nodeByName(t, g, "p.a"), "call:p.b")
	b := nodeByName(t, g, "p.b")
	wantEdge(t, b, "call:p.a")
	wantEdge(t, b, "call:p.b") // self-recursion

	// Recursion must not hang the fixpoint and acquires stay empty.
	acq := g.TransitiveAcquires()
	if len(acq[b]) != 0 {
		t.Errorf("b acquires %v, want none", acq[b])
	}
}

func TestInterfaceDispatchCHA(t *testing.T) {
	g := buildSrc(t, `package p
type doer interface{ do() }
type x struct{}
func (x) do() {}
type y struct{}
func (*y) do() {}
type notDoer struct{}
func (notDoer) other() {}
func run(d doer) { d.do() }
`)
	run := nodeByName(t, g, "p.run")
	wantEdge(t, run, "dyn/call:(p.x).do")
	wantEdge(t, run, "dyn/call:(*p.y).do")
	if len(run.Out) != 2 {
		t.Errorf("run has %v, want exactly the two implementers", edges(run))
	}
	// CHA fan-out is name-sorted at one site for deterministic output.
	if run.Out[0].Callee.Name > run.Out[1].Callee.Name {
		t.Errorf("fan-out not sorted: %v", edges(run))
	}
}

func TestMethodValuesAndFuncValues(t *testing.T) {
	g := buildSrc(t, `package p
type s struct{}
func (s) m() {}
func helper() {}
func take(f func()) { f() }
func use(v s) {
	f := v.m   // method value
	f()        // dynamic: no edge, but the ref above covers it
	take(helper) // func value passed along
}
`)
	use := nodeByName(t, g, "p.use")
	wantEdge(t, use, "ref:(p.s).m")
	wantEdge(t, use, "call:p.take")
	wantEdge(t, use, "ref:p.helper")
}

func TestMethodExpression(t *testing.T) {
	g := buildSrc(t, `package p
type s struct{}
func (s) m() {}
func use(v s) { s.m(v) }
`)
	wantEdge(t, nodeByName(t, g, "p.use"), "call:(p.s).m")
}

func TestFuncLitsAreSeparateNodes(t *testing.T) {
	g := buildSrc(t, `package p
import "sync"
type s struct{ mu sync.Mutex }
func (v *s) work(after func(func())) {
	v.mu.Lock()
	func() { inner() }() // immediately invoked: call edge
	after(func() { inner() }) // handed off: ref edge, no held locks
	v.mu.Unlock()
}
func inner() {}
`)
	work := nodeByName(t, g, "(*p.s).work")
	wantEdge(t, work, "call:(*p.s).work$1")
	wantEdge(t, work, "ref:(*p.s).work$2")

	// The immediately-invoked literal runs under the lock...
	for _, e := range work.Out {
		if e.Callee.Name == "(*p.s).work$1" && e.Ctx == Call {
			if len(e.Held) != 1 || e.Held[0] != "p.s.mu" {
				t.Errorf("invoked literal held = %v, want [p.s.mu]", e.Held)
			}
		}
	}
	// ...but the literal's own body starts lock-free, and its call to
	// inner carries no held set.
	lit1 := nodeByName(t, g, "(*p.s).work$1")
	wantEdge(t, lit1, "call:p.inner")
	if len(lit1.Out[0].Held) != 0 {
		t.Errorf("literal body inherited held set %v", lit1.Out[0].Held)
	}
}

func TestLockSummaries(t *testing.T) {
	g := buildSrc(t, `package p
import "sync"
type a struct{ mu sync.Mutex }
type b struct{ mu sync.RWMutex }
func outer(x *a, y *b) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.RLock()
	y.mu.RUnlock()
}
`)
	outer := nodeByName(t, g, "p.outer")
	if len(outer.Acquires) != 2 {
		t.Fatalf("acquires = %+v, want 2", outer.Acquires)
	}
	first, second := outer.Acquires[0], outer.Acquires[1]
	if first.Class != "p.a.mu" || len(first.Held) != 0 {
		t.Errorf("first acquire = %+v, want p.a.mu with nothing held", first)
	}
	if second.Class != "p.b.mu" || !second.Read {
		t.Errorf("second acquire = %+v, want read-lock of p.b.mu", second)
	}
	// The deferred Unlock keeps x.mu held, so the RLock happens under it.
	if len(second.Held) != 1 || second.Held[0] != "p.a.mu" {
		t.Errorf("second acquire held = %v, want [p.a.mu]", second.Held)
	}
}

func TestGoAndDeferEdges(t *testing.T) {
	g := buildSrc(t, `package p
import "sync"
type s struct{ mu sync.Mutex }
func (v *s) run() {
	v.mu.Lock()
	go spawned()
	defer cleanup()
	v.mu.Unlock()
}
func spawned() {}
func cleanup() {}
`)
	run := nodeByName(t, g, "(*p.s).run")
	wantEdge(t, run, "go:p.spawned")
	wantEdge(t, run, "defer:p.cleanup")
	if len(run.Spawns) != 1 {
		t.Fatalf("spawns = %d, want 1", len(run.Spawns))
	}
	for _, e := range run.Out {
		// Neither a spawned nor a deferred callee inherits held locks.
		if len(e.Held) != 0 {
			t.Errorf("%s edge carries held set %v", e.Ctx, e.Held)
		}
		if e.Ctx == Go && e.GoStmt == nil {
			t.Errorf("go edge lost its GoStmt")
		}
	}
}

func TestTransitiveAcquires(t *testing.T) {
	g := buildSrc(t, `package p
import "sync"
var gmu sync.Mutex
type s struct{ mu sync.Mutex }
func leaf() { gmu.Lock(); gmu.Unlock() }
func mid(v *s) { v.mu.Lock(); defer v.mu.Unlock(); leaf() }
func top(v *s) { mid(v) }
`)
	acq := g.TransitiveAcquires()
	top := nodeByName(t, g, "p.top")
	want := []string{"p.gmu", "p.s.mu"}
	got := acq[top]
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("top transitively acquires %v, want %v", got, want)
	}
}

func TestReachable(t *testing.T) {
	g := buildSrc(t, `package p
func root() { a(); go b() }
func a() {}
func b() { c() }
func c() {}
func island() {}
`)
	root := nodeByName(t, g, "p.root")
	all := g.Reachable([]*Node{root}, nil)
	for _, name := range []string{"p.root", "p.a", "p.b", "p.c"} {
		if !all[nodeByName(t, g, name)] {
			t.Errorf("%s not reachable", name)
		}
	}
	if all[nodeByName(t, g, "p.island")] {
		t.Errorf("island falsely reachable")
	}
	// Following only synchronous calls must stop at the go statement.
	sync := g.Reachable([]*Node{root}, func(e *Edge) bool { return e.Ctx == Call })
	if sync[nodeByName(t, g, "p.b")] {
		t.Errorf("spawned callee reachable through Call-only filter")
	}
}

func TestPackageLevelMutexClass(t *testing.T) {
	g := buildSrc(t, `package p
import "sync"
var mu sync.Mutex
func f() { mu.Lock(); mu.Unlock() }
`)
	f := nodeByName(t, g, "p.f")
	if len(f.Acquires) != 1 || f.Acquires[0].Class != "p.mu" {
		t.Errorf("acquires = %+v, want package-level class p.mu", f.Acquires)
	}
}
