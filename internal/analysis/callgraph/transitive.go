package callgraph

// Transitive composition of the per-function summaries. Both helpers are
// deterministic: nodes are visited in Graph.Nodes order and every returned
// set is sorted.

import "sort"

// TransitiveAcquires returns, per node, the sorted set of lock classes the
// node or anything it transitively calls may acquire. Every edge context
// counts — a deferred or spawned callee still takes its locks eventually,
// and for deadlock purposes "eventually" is enough.
func (g *Graph) TransitiveAcquires() map[*Node][]string {
	sets := make(map[*Node]map[string]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		s := make(map[string]bool, len(n.Acquires))
		for _, a := range n.Acquires {
			s[a.Class] = true
		}
		sets[n] = s
	}
	// Fixpoint over the (cyclic, in general) call graph: iterate until no
	// set grows. The sets only grow and are bounded by the class universe,
	// so this terminates.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			s := sets[n]
			for _, e := range n.Out {
				for class := range sets[e.Callee] {
					if !s[class] {
						s[class] = true
						changed = true
					}
				}
			}
		}
	}
	out := make(map[*Node][]string, len(g.Nodes))
	for n, s := range sets {
		out[n] = sortedKeys(s)
	}
	return out
}

// Reachable returns the nodes reachable from roots through edges admitted
// by follow (nil admits every edge). Roots themselves are included.
func (g *Graph) Reachable(roots []*Node, follow func(*Edge) bool) map[*Node]bool {
	seen := make(map[*Node]bool)
	var queue []*Node
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if follow != nil && !follow(e) {
				continue
			}
			if !seen[e.Callee] {
				seen[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	return seen
}

// SortNodes orders a node slice by qualified name (stable tie-break on
// position) — handy for deterministic iteration over map keys.
func SortNodes(nodes []*Node) {
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Name != nodes[j].Name {
			return nodes[i].Name < nodes[j].Name
		}
		return nodes[i].Pos() < nodes[j].Pos()
	})
}
