package callgraph

// The body walker. One pass per function builds both halves of the node:
// outgoing edges (static calls, CHA-resolved interface calls, function
// values) and the lock summary (acquisitions with held sets, held sets on
// call edges). Held-set tracking follows the sendunderlock model: locks are
// interpreted sequentially through the statement list, nested control flow
// gets a copy of the set, a deferred Unlock keeps the lock held to the end
// of the body, and go/defer bodies inherit nothing.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

type walker struct {
	g    *Graph
	node *Node
	pkg  *analysis.Package
	// curGo is the go statement being scanned, attached to Go-context
	// edges so spawncheck can pair spawn and join evidence.
	curGo *ast.GoStmt
}

func walkBody(g *Graph, n *Node) {
	w := &walker{g: g, node: n, pkg: n.Pkg}
	w.stmts(n.Body().List, map[string]bool{})
}

// walkLit walks a function literal as its own node with an empty held set.
// Each literal is reached exactly once: here from its lexically enclosing
// body, never via ast.Inspect from further out.
func (w *walker) walkLit(lit *ast.FuncLit) {
	ln := w.g.byLit[lit]
	if ln == nil {
		return
	}
	lw := &walker{g: w.g, node: ln, pkg: w.pkg}
	lw.stmts(lit.Body.List, map[string]bool{})
}

func (w *walker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *walker) stmt(stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case nil:
	case *ast.ExprStmt:
		if op, class, ok := w.lockOp(s.X); ok {
			switch op {
			case "Lock", "RLock":
				w.node.Acquires = append(w.node.Acquires, Acquire{
					Class: class,
					Read:  op == "RLock",
					Held:  sortedKeys(held),
					Pos:   s.X.Pos(),
				})
				held[class] = true
			default:
				delete(held, class)
			}
			return
		}
		w.scanExpr(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock runs at return: the lock stays held for the
		// rest of the body. Any other deferred call runs outside the
		// body's lock pairing, so its edge carries an empty held set; its
		// arguments, though, are evaluated right now.
		if op, _, ok := w.lockOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return
		}
		w.scanCall(s.Call, held, Defer)
	case *ast.GoStmt:
		w.node.Spawns = append(w.node.Spawns, s)
		w.curGo = s
		w.scanCall(s.Call, held, Go)
		w.curGo = nil
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scanExpr(e, held)
					}
				}
			}
		}
	case *ast.IfStmt:
		w.stmt(s.Init, held)
		w.scanExpr(s.Cond, held)
		w.stmts(s.Body.List, copyOf(held))
		if s.Else != nil {
			w.stmt(s.Else, copyOf(held))
		}
	case *ast.ForStmt:
		w.stmt(s.Init, held)
		w.scanExpr(s.Cond, held)
		inner := copyOf(held)
		w.stmts(s.Body.List, inner)
		w.stmt(s.Post, inner)
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		w.stmts(s.Body.List, copyOf(held))
	case *ast.SwitchStmt:
		w.stmt(s.Init, held)
		w.scanExpr(s.Tag, held)
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CaseClause)
			for _, e := range clause.List {
				w.scanExpr(e, held)
			}
			w.stmts(clause.Body, copyOf(held))
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held)
		w.stmt(s.Assign, held)
		for _, cc := range s.Body.List {
			w.stmts(cc.(*ast.CaseClause).Body, copyOf(held))
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			inner := copyOf(held)
			w.stmt(clause.Comm, inner)
			w.stmts(clause.Body, inner)
		}
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, held)
		}
	case *ast.SendStmt:
		w.scanExpr(s.Chan, held)
		w.scanExpr(s.Value, held)
	case *ast.IncDecStmt:
		w.scanExpr(s.X, held)
	}
}

// scanExpr finds calls, literals, and function values inside an arbitrary
// expression.
func (w *walker) scanExpr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			w.scanCall(x, held, Call)
			return false
		case *ast.FuncLit:
			w.addEdge(w.g.byLit[x], Ref, false, x.Pos())
			w.walkLit(x)
			return false
		case *ast.Ident:
			w.refIdent(x)
		case *ast.SelectorExpr:
			if w.refSelector(x) {
				w.scanExpr(x.X, held)
				return false
			}
		}
		return true
	})
}

// scanCall resolves one call expression into edges and scans its operands.
// ctx is Call for ordinary calls, Go/Defer when the call is the operand of
// a go or defer statement (arguments still evaluate immediately, under the
// current held set).
func (w *walker) scanCall(call *ast.CallExpr, held map[string]bool, ctx Context) {
	info := w.pkg.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// A conversion, not a call.
		for _, a := range call.Args {
			w.scanExpr(a, held)
		}
		return
	}
	fun := unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.FuncLit:
		w.edgeWithHeld(w.g.byLit[f], ctx, false, call.Pos(), held)
		w.walkLit(f)
	case *ast.Ident:
		if obj, ok := info.Uses[f].(*types.Func); ok {
			w.edgeWithHeld(w.g.byObj[obj], ctx, false, call.Pos(), held)
		}
		// A plain func-valued variable: dynamic, unresolved.
	case *ast.SelectorExpr:
		w.selectorCall(f, call, held, ctx)
		w.scanExpr(f.X, held)
	default:
		// f()(), m[k](), ... — scan for the inner calls/values.
		w.scanExpr(fun, held)
	}
	for _, a := range call.Args {
		w.scanExpr(a, held)
	}
}

// selectorCall resolves x.M(...) / pkg.F(...) call sites.
func (w *walker) selectorCall(sel *ast.SelectorExpr, call *ast.CallExpr, held map[string]bool, ctx Context) {
	info := w.pkg.TypesInfo
	if selection, ok := info.Selections[sel]; ok {
		switch selection.Kind() {
		case types.MethodVal:
			method, ok := selection.Obj().(*types.Func)
			if !ok {
				return
			}
			if iface, ok := selection.Recv().Underlying().(*types.Interface); ok {
				for _, target := range w.g.implementers(iface, method) {
					w.edgeWithHeld(target, ctx, true, call.Pos(), held)
				}
				return
			}
			w.edgeWithHeld(w.g.byObj[method], ctx, false, call.Pos(), held)
		case types.MethodExpr:
			if method, ok := selection.Obj().(*types.Func); ok {
				w.edgeWithHeld(w.g.byObj[method], ctx, false, call.Pos(), held)
			}
		case types.FieldVal:
			// Calling a func-typed field: dynamic, unresolved.
		}
		return
	}
	// Qualified identifier: pkg.F(...).
	if obj, ok := info.Uses[sel.Sel].(*types.Func); ok {
		w.edgeWithHeld(w.g.byObj[obj], ctx, false, call.Pos(), held)
	}
}

// refIdent records a Ref edge for a function named in value position.
func (w *walker) refIdent(id *ast.Ident) {
	if obj, ok := w.pkg.TypesInfo.Uses[id].(*types.Func); ok {
		w.addEdge(w.g.byObj[obj], Ref, false, id.Pos())
	}
}

// refSelector records a Ref edge for a method value or qualified function
// in value position, reporting whether sel named a function.
func (w *walker) refSelector(sel *ast.SelectorExpr) bool {
	info := w.pkg.TypesInfo
	if selection, ok := info.Selections[sel]; ok {
		if selection.Kind() != types.MethodVal && selection.Kind() != types.MethodExpr {
			return false
		}
		method, ok := selection.Obj().(*types.Func)
		if !ok {
			return false
		}
		if iface, ok := selection.Recv().Underlying().(*types.Interface); ok {
			for _, target := range w.g.implementers(iface, method) {
				w.addEdge(target, Ref, true, sel.Pos())
			}
			return true
		}
		w.addEdge(w.g.byObj[method], Ref, false, sel.Pos())
		return true
	}
	if obj, ok := info.Uses[sel.Sel].(*types.Func); ok {
		w.addEdge(w.g.byObj[obj], Ref, false, sel.Pos())
		return true
	}
	return false
}

func (w *walker) edgeWithHeld(callee *Node, ctx Context, dynamic bool, pos token.Pos, held map[string]bool) {
	e := w.addEdge(callee, ctx, dynamic, pos)
	if e != nil && ctx == Call {
		e.Held = sortedKeys(held)
	}
}

func (w *walker) addEdge(callee *Node, ctx Context, dynamic bool, pos token.Pos) *Edge {
	if callee == nil {
		return nil
	}
	e := &Edge{Caller: w.node, Callee: callee, Pos: pos, Ctx: ctx, Dynamic: dynamic}
	if ctx == Go {
		e.GoStmt = w.curGo
	}
	w.node.Out = append(w.node.Out, e)
	return e
}

// ---------------------------------------------------------------------------
// Lock recognition

// lockOp recognizes x.mu.Lock()/RLock()/Unlock()/RUnlock() on sync.Mutex /
// sync.RWMutex values (directly or through an embedded field) and returns
// the operation and the canonical lock class.
func (w *walker) lockOp(e ast.Expr) (op, class string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	info := w.pkg.TypesInfo
	if tv, found := info.Types[sel.X]; found && isSyncLock(tv.Type) {
		return sel.Sel.Name, w.lockClass(sel.X), true
	}
	// Embedded mutex: s.Lock() where the Mutex is an embedded field of
	// s's type. The selection's method is sync's, the receiver is not.
	if selection, found := info.Selections[sel]; found && selection.Kind() == types.MethodVal {
		if m, isFn := selection.Obj().(*types.Func); isFn &&
			m.Pkg() != nil && m.Pkg().Path() == "sync" {
			if named := namedOf(selection.Recv()); named != nil {
				return sel.Sel.Name, fullTypeName(named) + ".(embedded)", true
			}
		}
	}
	return "", "", false
}

// lockClass derives the program-wide class of a mutex expression:
//
//   - a field of a named struct -> "pkgpath.Type.field" (every instance of
//     the type shares the class — lock order is a property of the type);
//   - a package-level variable -> "pkgpath.var";
//   - anything else (locals, parameters) -> "<enclosing func>.expr".
func (w *walker) lockClass(e ast.Expr) string {
	info := w.pkg.TypesInfo
	switch x := unparen(e).(type) {
	case *ast.SelectorExpr:
		if selection, ok := info.Selections[x]; ok && selection.Kind() == types.FieldVal {
			if named := namedOf(selection.Recv()); named != nil {
				return fullTypeName(named) + "." + x.Sel.Name
			}
		}
		// Qualified package-level variable: otherpkg.mu.
		if obj, ok := info.Uses[x.Sel].(*types.Var); ok && obj.Pkg() != nil &&
			obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	case *ast.Ident:
		if obj, ok := info.Uses[x].(*types.Var); ok {
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + obj.Name()
			}
			return w.node.Name + "." + obj.Name()
		}
	}
	return w.node.Name + "." + types.ExprString(e)
}

func isSyncLock(t types.Type) bool {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func namedOf(t types.Type) *types.Named {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func copyOf(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
