// Package detclock forbids wall-clock time and global (unseeded) process
// randomness in the repository's deterministic packages.
//
// The paper's reproducibility claims — byte-identical serial/parallel
// suites, the rtds-bench -check regression gate, same-seed churn runs —
// hold only if nothing on a DES path reads a clock the simulation does not
// own or a random stream the seed does not own. time.Now and friends read
// the operating system; package-level math/rand functions share one
// process-global, lock-contended, unseedable-by-experiment source. Both
// are banned; seeded *rand.Rand values (rand.New(rand.NewSource(seed)))
// are the sanctioned randomness and pass untouched.
//
// Live/TCP code that legitimately lives in a deterministic package (the
// wall-clock transport half of internal/simnet, wall-time measurement in
// the experiment harness) escapes with
//
//	//lint:allow wallclock -- <justification>
//
// or a file-scoped //lint:file-allow for files that are wholly on the live
// side.
package detclock

import (
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the detclock check.
var Analyzer = &analysis.Analyzer{
	Name:   "detclock",
	Escape: "wallclock",
	Doc: "forbid wall-clock time (time.Now/Since/After/...) and global math/rand " +
		"in deterministic packages; seeded *rand.Rand sources are allowed",
	Run: run,
}

// forbiddenTime lists the package-level time functions that read or wait on
// the wall clock. Pure constructors and arithmetic (time.Unix, time.Date,
// Duration conversions) are deterministic and stay legal.
var forbiddenTime = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"Sleep":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// allowedRand lists the package-level math/rand functions that construct
// seeded sources instead of drawing from the global one.
var allowedRand = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes an explicit *rand.Rand
}

func run(pass *analysis.Pass) error {
	for ident, obj := range pass.TypesInfo.Uses {
		pkg := obj.Pkg()
		if pkg == nil {
			continue
		}
		switch pkg.Path() {
		case "time":
			fn, ok := obj.(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() != nil {
				continue
			}
			if forbiddenTime[fn.Name()] {
				pass.Reportf(ident.Pos(),
					"wall-clock time.%s in a deterministic package: derive time from the simulation engine (Transport.Now/After)",
					fn.Name())
			}
		case "math/rand", "math/rand/v2":
			fn, ok := obj.(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() != nil {
				continue // methods on *rand.Rand are seeded-source draws
			}
			if !allowedRand[fn.Name()] {
				pass.Reportf(ident.Pos(),
					"global rand.%s in a deterministic package: draw from a seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
					fn.Name())
			}
		case "crypto/rand":
			// Everything in crypto/rand is OS entropy; even the package
			// variables (rand.Reader) are forbidden.
			pass.Reportf(ident.Pos(),
				"crypto/rand.%s in a deterministic package: OS entropy can never be replayed from a seed", obj.Name())
		}
	}
	return nil
}
