package detclock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detclock"
)

func TestDetclock(t *testing.T) {
	analysistest.Run(t, detclock.Analyzer, analysistest.Dir("detclock"))
}
