// Package detclock is the analyzer's fixture: every construct the check
// must catch, next to the sanctioned forms it must stay silent on.
package detclock

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()          // want `wall-clock time.Now in a deterministic package`
	<-time.After(time.Second)    // want `wall-clock time.After in a deterministic package`
	time.Sleep(time.Millisecond) // want `wall-clock time.Sleep in a deterministic package`
	return time.Since(start)     // want `wall-clock time.Since in a deterministic package`
}

func deterministicTime() time.Time {
	// Pure construction and arithmetic never read the clock: legal.
	t := time.Unix(0, 0)
	return t.Add(3 * time.Second)
}

func globalRand() int {
	return rand.Intn(10) // want `global rand.Intn in a deterministic package`
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // constructors are the sanctioned form
	return rng.Intn(10)                   // method on *rand.Rand: seeded draw, legal
}

func osEntropy(b []byte) {
	crand.Read(b) // want `crypto/rand.Read in a deterministic package`
}

func escaped() time.Time {
	//lint:allow wallclock -- fixture: measurement-only timestamp, never enters simulation state
	return time.Now()
}

func escapedSameLine() time.Time {
	return time.Now() //lint:allow wallclock -- fixture: measurement-only timestamp, never enters simulation state
}
