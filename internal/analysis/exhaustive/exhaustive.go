// Package exhaustive checks that switches over the repository's protocol
// enums cover every constant.
//
// The wire codec, the transaction state machine, and the reject-stage
// accounting all dispatch on small named-type constant sets (wire.Kind,
// txn.Phase, core.RejectStage). When a new message kind or phase is added,
// every switch that silently falls through becomes a protocol bug that no
// test exercises until two differently-versioned binaries meet. This
// analyzer turns that omission into a CI failure.
//
// A switch is in scope when its tag has a named type with at least two
// package-level constants of exactly that type declared in the type's
// package. Such a switch must either:
//
//   - enumerate every constant of the type (no default needed — this is
//     the preferred dispatch form, because adding a constant then breaks
//     the build's lint step at every dispatch site), or
//   - carry a default case with a non-empty body that rejects the
//     unexpected value (return an error, panic, count a metric). An empty
//     default is a silent swallow and is flagged.
//
// Intentionally partial switches carry
// //lint:allow exhaustive -- <justification>.
package exhaustive

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the exhaustive check.
var Analyzer = &analysis.Analyzer{
	Name:   "exhaustive",
	Escape: "exhaustive",
	Doc: "switches over protocol enum types (named types with package-level " +
		"constant sets) must cover every constant or reject via a non-empty default",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	consts := enumConstants(named)
	if len(consts) < 2 {
		return // not an enum-like type
	}

	covered := map[string]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			if v := pass.TypesInfo.Types[e].Value; v != nil {
				covered[v.ExactString()] = true
			}
		}
	}

	typeName := named.Obj().Name()
	if pkg := named.Obj().Pkg(); pkg != nil && pkg != pass.Pkg {
		typeName = pkg.Name() + "." + typeName
	}

	if defaultClause != nil {
		if len(defaultClause.Body) == 0 {
			pass.Reportf(defaultClause.Case,
				"switch over %s has an empty default: silently swallowing unknown values hides protocol drift — reject explicitly or enumerate all constants",
				typeName)
		}
		return // a non-empty default handles future constants
	}

	var missing []string
	for _, c := range consts {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(sw.Switch,
			"switch over %s is not exhaustive: missing %s (add the cases or a rejecting default)",
			typeName, strings.Join(missing, ", "))
	}
}

// enumConstants returns the package-level constants declared in the named
// type's own package whose type is exactly that named type, deduplicated by
// value is NOT applied — aliases like kindMax = kindJoinAck count once per
// distinct value during coverage checking anyway.
func enumConstants(named *types.Named) []*types.Const {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil // builtin (error, comparable) — never an enum
	}
	scope := pkg.Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	return out
}
