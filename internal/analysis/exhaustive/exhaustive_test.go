package exhaustive_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/exhaustive"
)

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, exhaustive.Analyzer, analysistest.Dir("exhaustive"))
}
