// Package exhaustive is the analyzer's fixture: enum switches that must be
// flagged as partial or silently-swallowing, next to the two legal forms.
package exhaustive

import "fmt"

type kind byte

const (
	kindHello kind = iota
	kindData
	kindAck
)

type mode string

const (
	modeFast mode = "fast"
	modeSafe mode = "safe"
)

// Missing kindAck and no default: flagged, names the gap.
func partial(k kind) string {
	switch k { // want `switch over kind is not exhaustive: missing kindAck`
	case kindHello:
		return "hello"
	case kindData:
		return "data"
	}
	return ""
}

// An empty default swallows unknown values silently: flagged.
func swallow(k kind) string {
	switch k {
	case kindHello:
		return "hello"
	case kindData:
		return "data"
	case kindAck:
		return "ack"
	default: // want `switch over kind has an empty default`
	}
	return ""
}

// Full enumeration with no default is the preferred dispatch form: adding
// a constant breaks lint at this site. Legal.
func full(k kind) string {
	switch k {
	case kindHello:
		return "hello"
	case kindData:
		return "data"
	case kindAck:
		return "ack"
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

// A rejecting default also covers future constants. Legal.
func rejecting(k kind) (string, error) {
	switch k {
	case kindHello:
		return "hello", nil
	default:
		return "", fmt.Errorf("unexpected kind %d", byte(k))
	}
}

// String-valued enums are in scope too.
func stringEnum(m mode) int {
	switch m { // want `switch over mode is not exhaustive: missing modeSafe`
	case modeFast:
		return 0
	}
	return 1
}

// A switch over a non-enum named type (one constant) is out of scope.
type lone int

const onlyOne lone = 1

func loneSwitch(v lone) bool {
	switch v {
	case onlyOne:
		return true
	}
	return false
}

// Escapes suppress intentionally partial switches.
func escaped(k kind) bool {
	//lint:allow exhaustive -- fixture: only hello matters on this path
	switch k {
	case kindHello:
		return true
	}
	return false
}
