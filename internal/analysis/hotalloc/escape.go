package hotalloc

// The compiler half of the cross-check: run `go build -gcflags=-m` over
// the scoped packages and index its escape-analysis messages by file and
// line. The go command replays cached compiler diagnostics, so repeated
// lint runs don't pay for recompilation.

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// lineKey addresses one source line by absolute path.
type lineKey struct {
	file string
	line int
}

// escapeMark aggregates the compiler's verdicts for one line.
type escapeMark struct {
	// heap: at least one operand on the line escapes to (or is moved to)
	// the heap.
	heap bool
	// msg is the first heap message, for diagnostics.
	msg string
}

// escapeRe matches one compiler diagnostic line: file:line:col: message.
var escapeRe = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.*)$`)

// escapeFacts builds the per-line escape index for the program's packages.
func escapeFacts(prog *analysis.Program) (map[lineKey]escapeMark, error) {
	args := []string{"build", "-gcflags=-m"}
	var pats []string
	for _, pkg := range prog.Packages {
		if pkg.Dir == "" {
			// A standalone fixture package (analysistest): the program
			// directory is the package directory.
			pats = []string{"."}
			break
		}
		pats = append(pats, pkg.Dir)
	}
	cmd := exec.Command("go", append(args, pats...)...)
	cmd.Dir = prog.Dir
	// The compiler prints -m diagnostics on stderr, mixed with package
	// headers ("# repro/internal/wire") and inlining notes.
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out)
	}
	facts := make(map[lineKey]escapeMark)
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[3]
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		if strings.Contains(msg, "does not escape") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(prog.Dir, file)
		}
		if abs, absErr := filepath.Abs(file); absErr == nil {
			file = abs
		}
		n, _ := strconv.Atoi(m[2])
		key := lineKey{file: filepath.Clean(file), line: n}
		mark := facts[key]
		if !mark.heap {
			mark.heap = true
			mark.msg = msg
		}
		facts[key] = mark
	}
	return facts, nil
}
