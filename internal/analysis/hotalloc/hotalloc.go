// Package hotalloc forbids heap allocations on the declared hot paths —
// the code the ROADMAP's "zero-allocation wire path / 10x events/sec" item
// lives or dies by: the wire codec, the DES event kernel, and the
// reservation-plan admit path.
//
// Roots are declared in the source, next to the functions they name, with
//
//	//lint:hotpath -- <why this function must stay allocation-free>
//
// on (or directly above) the declaration. The analyzer builds the call
// graph of the scoped packages, walks everything reachable from the roots
// through ordinary and deferred calls (a goroutine spawned from a hot path
// is not the per-operation cost; a deferred call is), and classifies
// allocation candidates: make, new, composite literals, func literals,
// string/[]byte conversions, interface boxing at call arguments, appends
// into provably-fresh slices, and fmt calls.
//
// Classification alone would drown in false positives — a `make` with
// constant size that stays local never touches the heap — so the AST view
// is cross-checked against the compiler's own escape analysis
// (`go build -gcflags=-m`), and the two views must agree:
//
//   - a candidate the compiler confirms ("escapes to heap" / "moved to
//     heap" on the same line) is reported;
//   - a candidate the compiler clears is silent — it lives on the stack;
//   - a compiler-reported heap allocation with no candidate on its line is
//     reported as a classifier gap, so the AST view cannot quietly go
//     blind;
//   - appends into fresh slices and fmt calls allocate by construction
//     (growth and argument boxing don't show up as escape messages), so
//     they skip the cross-check and are reported outright.
//
// Error construction is exempt by convention: fmt.Errorf, errors.New, and
// panic arguments run on failure paths, not in the steady state the hot
// path is measured on. A justified exception elsewhere carries
// //lint:allow hotalloc -- <why>.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name:   "hotalloc",
	Escape: "hotalloc",
	Doc: "forbid heap allocations reachable from //lint:hotpath roots, " +
		"cross-checked against go build -gcflags=-m escape analysis",
	RunProgram: run,
}

// A candidate is one potential allocation site found in hot code.
type candidate struct {
	pos  token.Pos
	kind string
	// confirm: true means the candidate only allocates if the compiler's
	// escape analysis agrees; false means it allocates by construction.
	confirm bool
}

func run(pass *analysis.ProgramPass) error {
	prog := pass.Prog
	g := callgraph.Build(prog.Fset, prog.Packages)

	roots := hotpathRoots(g, prog)
	if len(roots) == 0 {
		return nil
	}

	// Root attribution: BFS per root (sorted), first root wins.
	rootOf := make(map[*callgraph.Node]string)
	follow := func(e *callgraph.Edge) bool {
		return e.Ctx == callgraph.Call || e.Ctx == callgraph.Defer
	}
	for _, r := range roots {
		for n := range g.Reachable([]*callgraph.Node{r}, follow) {
			if _, ok := rootOf[n]; !ok {
				rootOf[n] = r.Name
			}
		}
	}
	// Deterministic hot-node order.
	var hot []*callgraph.Node
	for n := range rootOf {
		hot = append(hot, n)
	}
	callgraph.SortNodes(hot)

	escapes, err := escapeFacts(prog)
	if err != nil {
		return fmt.Errorf("escape-analysis cross-check: %v", err)
	}

	for _, n := range hot {
		root := rootOf[n]
		cands, exempt := collect(n)
		lines := make(map[int]bool)
		// Error-construction calls are exempt by convention, but the compiler
		// still reports their argument boxing; cover their lines so the gap
		// check below does not re-surface what the exemption waived.
		for _, span := range exempt {
			from := position(prog.Fset, span.from).Line
			to := position(prog.Fset, span.to).Line
			for line := from; line <= to; line++ {
				lines[line] = true
			}
		}
		for _, c := range cands {
			p := position(prog.Fset, c.pos)
			lines[p.Line] = true
			marks := escapes[lineKey{p.Filename, p.Line}]
			switch {
			case !c.confirm:
				pass.Reportf(c.pos,
					"hot-path allocation (%s) reachable from %s — allocates on every call; reuse a buffer or move it off the hot path",
					c.kind, root)
			case marks.heap:
				pass.Reportf(c.pos,
					"hot-path allocation (%s) reachable from %s — escape analysis confirms it reaches the heap; hoist or reuse",
					c.kind, root)
			}
			// confirm-candidates the compiler clears are stack: silent.
		}
		// The reverse direction: compiler-reported heap allocations in
		// this body that no candidate covers are classifier gaps.
		body := n.Body()
		if body == nil {
			continue
		}
		start := position(prog.Fset, body.Pos())
		end := position(prog.Fset, body.End())
		var gapLines []int
		for key, mark := range escapes {
			if !mark.heap || key.file != start.Filename {
				continue
			}
			if key.line < start.Line || key.line > end.Line || lines[key.line] {
				continue
			}
			gapLines = append(gapLines, key.line)
		}
		sort.Ints(gapLines)
		for _, line := range gapLines {
			mark := escapes[lineKey{start.Filename, line}]
			pass.Reportf(posOnLine(prog.Fset, body, line),
				"compiler reports %q on the hot path (reachable from %s) but hotalloc has no allocation candidate here — the two views must agree",
				mark.msg, root)
		}
	}
	return nil
}

// hotpathRoots maps //lint:hotpath-marked declarations to graph nodes.
func hotpathRoots(g *callgraph.Graph, prog *analysis.Program) []*callgraph.Node {
	var roots []*callgraph.Node
	for _, pkg := range prog.Packages {
		for _, fd := range analysis.HotpathFuncs(pkg.Fset, pkg.Files) {
			if obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				if n := g.NodeOf(obj); n != nil {
					roots = append(roots, n)
				}
			}
		}
	}
	callgraph.SortNodes(roots)
	return roots
}

// An exemptSpan is the source range of an error-construction call
// (panic, errors.New, fmt.Errorf) whose allocations are waived.
type exemptSpan struct {
	from, to token.Pos
}

// collect classifies the allocation candidates of one function body.
// Nested function literals are their own nodes and are skipped (their
// creation is itself a candidate; their bodies are visited when reachable).
func collect(n *callgraph.Node) ([]candidate, []exemptSpan) {
	info := n.Pkg.TypesInfo
	var out []candidate
	var exempt []exemptSpan
	add := func(pos token.Pos, kind string, confirm bool) {
		out = append(out, candidate{pos: pos, kind: kind, confirm: confirm})
	}
	waive := func(e ast.Expr) {
		exempt = append(exempt, exemptSpan{from: e.Pos(), to: e.End()})
	}
	body := n.Body()
	if body == nil {
		return nil, nil
	}
	ast.Inspect(body, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			if e.Pos() != n.Pos() { // not this node itself
				add(e.Pos(), "func literal", true)
				return false
			}
		case *ast.CompositeLit:
			add(e.Pos(), "composite literal", true)
		case *ast.CallExpr:
			return collectCall(info, e, add, waive)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out, exempt
}

// collectCall classifies one call expression; the return value says
// whether to descend into the call's children. Exempt error-construction
// calls are recorded via waive so the escape-analysis cross-check knows
// their lines are intentionally uncovered.
func collectCall(info *types.Info, call *ast.CallExpr, add func(token.Pos, string, bool), waive func(ast.Expr)) bool {
	// Conversions: string<->[]byte/[]rune copy; anything else is free.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if isStringBytesConv(tv.Type, info, call) {
			add(call.Pos(), "string conversion copy", true)
		}
		return true
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make "+typeString(info, call), true)
				return true
			case "new":
				add(call.Pos(), "new", true)
				return true
			case "append":
				if len(call.Args) > 0 && freshSlice(info, call.Args[0]) {
					add(call.Pos(), "append to fresh slice", false)
				}
				// Growth of a reused buffer is amortized away in steady
				// state — the whole point of the Append* codec shape.
				boxedArgs(info, call, add)
				return true
			case "panic":
				waive(call)
				return false // failure path: exempt, don't descend
			}
		}
	case *ast.SelectorExpr:
		if pkgName, ok := pkgOf(info, fun); ok {
			switch {
			case pkgName == "errors" && fun.Sel.Name == "New":
				waive(call)
				return false // error construction: exempt
			case pkgName == "fmt" && fun.Sel.Name == "Errorf":
				waive(call)
				return false // error construction: exempt
			case pkgName == "fmt":
				add(call.Pos(), "fmt."+fun.Sel.Name, false)
				return true
			}
		}
	}
	boxedArgs(info, call, add)
	return true
}

// boxedArgs flags concrete values passed where the callee takes an
// interface — each such argument is boxed, which allocates if it escapes
// (so these are confirm-candidates).
func boxedArgs(info *types.Info, call *ast.CallExpr, add func(token.Pos, string, bool)) {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.Type == nil || types.IsInterface(at.Type) {
			continue
		}
		if at.IsNil() || isUntypedConst(at) {
			continue
		}
		add(arg.Pos(), "interface boxing", true)
	}
}

func isUntypedConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Info()&types.IsUntyped != 0
}

// freshSlice reports whether the append destination is provably a brand
// new slice: a composite literal or a []T(nil) conversion.
func freshSlice(info *types.Info, e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			if av, ok := info.Types[x.Args[0]]; ok && av.IsNil() {
				return true
			}
		}
	}
	return false
}

func isStringBytesConv(target types.Type, info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	at, ok := info.Types[call.Args[0]]
	if !ok {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
	}
	return (isStr(target) && isByteSlice(at.Type)) || (isByteSlice(target) && isStr(at.Type))
}

func pkgOf(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

func typeString(info *types.Info, call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	if tv, ok := info.Types[call.Args[0]]; ok && tv.Type != nil {
		return types.TypeString(tv.Type, func(p *types.Package) string { return p.Name() })
	}
	return ""
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// position returns the absolute-path position of pos.
func position(fset *token.FileSet, pos token.Pos) token.Position {
	p := fset.Position(pos)
	if abs, err := filepath.Abs(p.Filename); err == nil {
		p.Filename = abs
	}
	return p
}

// posOnLine finds a position on the given line inside body for anchoring a
// gap diagnostic (the body start if nothing closer is found).
func posOnLine(fset *token.FileSet, body *ast.BlockStmt, line int) token.Pos {
	var best token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if fset.Position(n.Pos()).Line == line && (!best.IsValid() || n.Pos() < best) {
			best = n.Pos()
		}
		return true
	})
	if !best.IsValid() {
		return body.Pos()
	}
	return best
}
