package hotalloc

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestHotalloc(t *testing.T) {
	analysistest.RunProgram(t, Analyzer, analysistest.Dir("hot"))
}

func TestAllowSilences(t *testing.T) {
	analysistest.RunProgram(t, Analyzer, analysistest.Dir("allowhot"))
}
