// The seeded allocations again, silenced by justified escapes.
package allowhot

//lint:hotpath -- fixture: justified allocations stay silent
func encode(v uint64, n int) []byte {
	//lint:allow hotalloc -- fixture: grows once at startup, measured and accepted
	buf := make([]byte, n)
	buf[0] = byte(v)
	return buf
}
