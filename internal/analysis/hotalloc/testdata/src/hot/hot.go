// Seeded hot-path allocations: one per classifier direction, plus the
// negatives (stack allocation, unreachable code) that must stay silent.
package hot

import "fmt"

var sink string

//lint:hotpath -- fixture: the encode loop must stay allocation-free
func encode(v uint64, n int) []byte {
	buf := make([]byte, n) // want `hot-path allocation \(make \[\]byte\) reachable from hot\.encode`
	for i := range buf {
		buf[i] = byte(v >> (8 * uint(i%8)))
	}
	helper(buf)
	return buf
}

// helper is hot only because encode calls it: the finding is
// interprocedural.
func helper(b []byte) {
	_ = append([]byte{}, b...) // want `hot-path allocation \(append to fresh slice\) reachable from hot\.encode`
}

// cold allocates the same way but is reachable from no root: silent.
func cold(b []byte) []byte {
	return append([]byte{}, b...)
}

//lint:hotpath -- fixture: formatting is never allocation-free
func render(v uint64) {
	sink = fmt.Sprintf("%d", v) // want `hot-path allocation \(fmt\.Sprintf\) reachable from hot\.render`
}

//lint:hotpath -- fixture: constant-size locals stay on the stack
func stackOnly() int {
	tmp := make([]byte, 8) // compiler clears it: silent
	tmp[0] = 1
	return int(tmp[0])
}

//lint:hotpath -- fixture: the classifier-gap direction must fire too
func concat(a, b string) {
	sink = a + b // want `compiler reports .* but hotalloc has no allocation candidate`
}
