package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPkg mirrors the `go list -json` fields the loader consumes.
type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	Error      *struct{ Err string }
}

// goList runs `go list -json` with the given arguments in dir and decodes
// the package stream.
func goList(dir string, args ...string) ([]*listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load resolves the patterns with the go tool, type-checks every matched
// package from source (dependencies are read from compiled export data, so
// one `go list -deps -export` both plans the build and produces it), and
// returns the packages in deterministic import-path order.
//
// Test files are not loaded: the invariants rtds-lint enforces are about
// the production protocol and simulation paths, and tests legitimately use
// wall-clock deadlines and ad-hoc iteration.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, append([]string{"-e", "-deps", "-export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported by rtds-lint", p.ImportPath)
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var out []*Package
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := typecheck(fset, imp, t.ImportPath, files)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		pkg.Dir = t.Dir
		out = append(out, pkg)
	}
	return out, nil
}

// ListExports resolves export-data files for the given import paths (and
// their dependencies — export data references them) with one
// `go list -deps -export` run. Used by the analysistest harness to
// type-check testdata packages against real std/module packages.
func ListExports(dir string, paths []string) (map[string]string, error) {
	listed, err := goList(dir, append([]string{"-e", "-deps", "-export"}, paths...)...)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out, nil
}

// TypecheckStandalone type-checks pre-parsed files as one package whose
// imports resolve through the given export map. The import path is taken
// from the package clause; it only matters for error messages.
func TypecheckStandalone(fset *token.FileSet, files []*ast.File, exports map[string]string) (*Package, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("no files")
	}
	imp := exportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	return typecheckFiles(fset, imp, files[0].Name.Name, files)
}

// exportImporter builds a types.Importer that reads gc export data located
// by the lookup function. One importer is shared across all packages of a
// load so each dependency is decoded once.
func exportImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// typecheck parses the named files and type-checks them as one package.
func typecheck(fset *token.FileSet, imp types.Importer, importPath string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return typecheckFiles(fset, imp, importPath, files)
}

// typecheckFiles type-checks already-parsed files as one package.
func typecheckFiles(fset *token.FileSet, imp types.Importer, importPath string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if firstErr != nil {
		return nil, firstErr
	}
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		TypesInfo:  info,
	}, nil
}
