package lockorder

// DocumentedHierarchy is the canonical lock hierarchy of the repository's
// lock-using packages (internal/core, internal/simnet, internal/wire), as
// derived by Hierarchy and verified against the derivation by
// TestDocumentedHierarchyMatchesDerived — editing one without the other
// fails the build's test leg.
//
// It is currently EMPTY, and that is the interesting fact: the repository's
// lock discipline is flat. No mutex is acquired — directly or through any
// chain of calls — while another mutex is held. The code achieves this by
// snapshotting under a lock and working on the snapshot after release:
// simnet.Live.Send drops Live.mu before pushing into the per-link and
// per-node fifo queues (whose own mu is taken push/pop-local), the
// wire.NetTransport accessors hand out field pointers without locking, and
// core.Cluster calls only lock-free accessors (Transport.Stats,
// Transport.Now, payload Kind/SizeBytes) under Cluster.mu.
//
// A flat discipline cannot deadlock on mutexes at all, which is a stronger
// property than any ordering. If a future change nests acquisitions, the
// lockorder analyzer starts ordering the classes involved, this list stops
// matching the derivation, and the agreement test forces the new hierarchy
// to be recorded — and thought about — here.
var DocumentedHierarchy []string
