// Package lockorder reports lock-order cycles: pairs of mutex classes the
// program acquires in both orders, the classic recipe for an AB/BA
// deadlock between two goroutines.
//
// The analysis is whole-program. It builds the call graph of the scoped
// packages (internal/core, internal/simnet, internal/wire — the heaviest
// lock users), composes each function's lock summary transitively, and
// records an ordered pair A -> B whenever some execution acquires class B
// while class A is held — directly in one body, or because a call made
// under A reaches a function that acquires B. A cycle among the ordered
// pairs is a potential deadlock and is reported at each acquisition (or
// call) site that contributes an edge to the cycle.
//
// Locks are abstracted to classes, not instances: every s.mu of one struct
// type is the same class, because a consistent acquisition ORDER is a
// property of the type. The abstraction has one deliberate blind spot:
// self-edges (A -> A, two instances of the same class locked together) are
// not reported, since the class graph cannot tell instance-ordered
// acquisition — the paper's protocol locks at most one instance of a class
// per goroutine, so the precision loss is free today.
//
// The same machinery derives the canonical lock hierarchy — the
// topological order of the acquisition graph — surfaced by
// `rtds-lint -hierarchy` and recorded in this file's doc so the tool and
// the humans agree on it (a doc test keeps the two in sync).
//
// A justified exception carries //lint:allow lockorder -- <why> on the
// acquisition (or call) line that completes the cycle.
package lockorder

import (
	"fmt"
	"go/token"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name:   "lockorder",
	Escape: "lockorder",
	Doc: "report mutex classes acquired in inconsistent order across the " +
		"whole program (potential AB/BA deadlock) and derive the canonical " +
		"lock hierarchy",
	RunProgram: run,
}

// An orderEdge is one ordered acquisition pair with its first witness.
type orderEdge struct {
	from, to string
	// pos is the earliest site that acquires `to` while holding `from`.
	pos token.Pos
	// via describes the witness for the diagnostic: "" for a direct
	// acquisition, else the callee whose transitive acquires contribute.
	via string
}

func run(pass *analysis.ProgramPass) error {
	g := callgraph.Build(pass.Prog.Fset, pass.Prog.Packages)
	edges := orderEdges(g)
	for _, e := range cycleEdges(edges) {
		cycle := e.from + " -> " + e.to
		detail := ""
		if e.via != "" {
			detail = fmt.Sprintf(" (via call to %s)", e.via)
		}
		pass.Reportf(e.pos,
			"acquiring %s while holding %s%s completes a lock-order cycle (%s also acquired in the reverse order) — potential deadlock; acquire in hierarchy order",
			e.to, e.from, detail, cycle)
	}
	return nil
}

// orderEdges builds the ordered-acquisition graph with one witness per
// edge (the earliest, for stable diagnostics).
func orderEdges(g *callgraph.Graph) []orderEdge {
	trans := g.TransitiveAcquires()
	index := make(map[[2]string]int)
	var edges []orderEdge
	add := func(from, to string, pos token.Pos, via string) {
		if from == to {
			return // class self-edge: see the package comment
		}
		key := [2]string{from, to}
		if i, ok := index[key]; ok {
			if pos < edges[i].pos {
				edges[i].pos, edges[i].via = pos, via
			}
			return
		}
		index[key] = len(edges)
		edges = append(edges, orderEdge{from: from, to: to, pos: pos, via: via})
	}
	for _, n := range g.Nodes {
		for _, a := range n.Acquires {
			for _, h := range a.Held {
				add(h, a.Class, a.Pos, "")
			}
		}
		for _, e := range n.Out {
			if e.Ctx != callgraph.Call || len(e.Held) == 0 {
				continue
			}
			for _, acquired := range trans[e.Callee] {
				for _, h := range e.Held {
					add(h, acquired, e.Pos, e.Callee.Name)
				}
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	return edges
}

// cycleEdges returns the edges that lie inside a strongly connected
// component of two or more classes — exactly the edges whose removal
// would restore a consistent hierarchy.
func cycleEdges(edges []orderEdge) []orderEdge {
	comp := sccs(edges)
	var bad []orderEdge
	for _, e := range edges {
		if comp[e.from] != 0 && comp[e.from] == comp[e.to] {
			bad = append(bad, e)
		}
	}
	return bad
}

// sccs runs Tarjan over the class graph and returns a component id per
// class — 0 for classes in singleton components without a self-loop (none
// exist: self-edges are dropped at construction), so a nonzero shared id
// means "on a cycle".
func sccs(edges []orderEdge) map[string]int {
	succ := make(map[string][]string)
	var classes []string
	seen := make(map[string]bool)
	note := func(c string) {
		if !seen[c] {
			seen[c] = true
			classes = append(classes, c)
		}
	}
	for _, e := range edges {
		note(e.from)
		note(e.to)
		succ[e.from] = append(succ[e.from], e.to)
	}
	sort.Strings(classes)

	index := make(map[string]int, len(classes))
	low := make(map[string]int, len(classes))
	onStack := make(map[string]bool)
	comp := make(map[string]int, len(classes))
	var stack []string
	next, compID := 1, 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if index[w] == 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) > 1 {
				compID++
				for _, m := range members {
					comp[m] = compID
				}
			}
		}
	}
	for _, c := range classes {
		if index[c] == 0 {
			strongconnect(c)
		}
	}
	return comp
}

// Hierarchy computes the canonical lock hierarchy of the given packages:
// every lock class that participates in at least one ordered pair, in
// topological acquisition order (a lock earlier in the list is acquired
// before — never after — any lock later in it). Classes on a cycle are
// listed at the end under a "CYCLE:" marker; the lockorder analyzer
// reports those separately.
func Hierarchy(fset *token.FileSet, pkgs []*analysis.Package) []string {
	g := callgraph.Build(fset, pkgs)
	edges := orderEdges(g)
	comp := sccs(edges)

	indeg := make(map[string]int)
	succ := make(map[string][]string)
	var classes []string
	seen := make(map[string]bool)
	note := func(c string) {
		if !seen[c] {
			seen[c] = true
			classes = append(classes, c)
			indeg[c] = 0
		}
	}
	for _, e := range edges {
		// Leave cyclic classes out of the topological order entirely;
		// they are appended under the CYCLE marker below.
		if comp[e.from] != 0 || comp[e.to] != 0 {
			continue
		}
		note(e.from)
		note(e.to)
		succ[e.from] = append(succ[e.from], e.to)
		indeg[e.to]++
	}
	sort.Strings(classes)

	var out []string
	remaining := len(classes)
	for remaining > 0 {
		picked := ""
		for _, c := range classes {
			if indeg[c] == 0 {
				picked = c
				break
			}
		}
		if picked == "" {
			break // unreachable once cyclic edges are excluded
		}
		out = append(out, picked)
		indeg[picked] = -1 // never pick again
		remaining--
		for _, w := range succ[picked] {
			indeg[w]--
		}
	}

	var cyc []string
	for c, id := range comp {
		if id != 0 {
			cyc = append(cyc, c)
		}
	}
	sort.Strings(cyc)
	for _, c := range cyc {
		out = append(out, "CYCLE: "+c)
	}
	return out
}
