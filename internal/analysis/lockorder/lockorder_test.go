package lockorder

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.RunProgram(t, Analyzer, analysistest.Dir("a"))
}

func TestAllowSilences(t *testing.T) {
	analysistest.RunProgram(t, Analyzer, analysistest.Dir("allow"))
}

func TestHierarchy(t *testing.T) {
	const src = `package h
import "sync"
type Outer struct{ mu sync.Mutex }
type Mid struct{ mu sync.Mutex }
type Inner struct{ mu sync.Mutex }
func a(o *Outer, m *Mid) { o.mu.Lock(); defer o.mu.Unlock(); m.mu.Lock(); m.mu.Unlock() }
func b(m *Mid, i *Inner) { m.mu.Lock(); defer m.mu.Unlock(); i.mu.Lock(); i.mu.Unlock() }
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "h.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	exports, err := analysis.ListExports(".", []string{"sync"})
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.TypecheckStandalone(fset, []*ast.File{f}, exports)
	if err != nil {
		t.Fatal(err)
	}
	got := Hierarchy(fset, []*analysis.Package{pkg})
	want := []string{"h.Outer.mu", "h.Mid.mu", "h.Inner.mu"}
	if len(got) != len(want) {
		t.Fatalf("hierarchy = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hierarchy = %v, want %v", got, want)
		}
	}
}

// TestDocumentedHierarchyMatchesDerived keeps DocumentedHierarchy (doc.go)
// in agreement with the hierarchy derived from the real repository: the
// documentation of the lock discipline is executable, not aspirational.
func TestDocumentedHierarchyMatchesDerived(t *testing.T) {
	pkgs, err := analysis.Load("../../../", []string{
		"./internal/core/...", "./internal/simnet/...", "./internal/wire/...",
	})
	if err != nil {
		t.Fatalf("loading repository packages: %v", err)
	}
	got := Hierarchy(pkgs[0].Fset, pkgs)
	if len(got) != len(DocumentedHierarchy) {
		t.Fatalf("derived hierarchy %v does not match DocumentedHierarchy %v — update doc.go to record the new locking discipline",
			got, DocumentedHierarchy)
	}
	for i := range got {
		if got[i] != DocumentedHierarchy[i] {
			t.Fatalf("derived hierarchy %v does not match DocumentedHierarchy %v — update doc.go to record the new locking discipline",
				got, DocumentedHierarchy)
		}
	}
}
