// Seeded lock-order cycle fixtures: the direct AB/BA shape and the
// interprocedural one (the inversion hides behind a call).
package a

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// ab acquires A then B.
func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `acquiring a\.B\.mu while holding a\.A\.mu .*lock-order cycle`
	b.mu.Unlock()
	a.mu.Unlock()
}

// ba acquires B then A: together with ab this is the classic deadlock.
func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `acquiring a\.A\.mu while holding a\.B\.mu .*lock-order cycle`
	a.mu.Unlock()
	b.mu.Unlock()
}

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

// cd acquires D under C directly.
func cd(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock() // want `acquiring a\.D\.mu while holding a\.C\.mu .*lock-order cycle`
	d.mu.Unlock()
}

// dThenC inverts the order interprocedurally: lockC acquires C while the
// caller holds D, so the cycle edge is witnessed at the call site.
func dThenC(c *C, d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	lockC(c) // want `acquiring a\.C\.mu while holding a\.D\.mu \(via call to a\.lockC\)`
}

func lockC(c *C) {
	c.mu.Lock()
	c.mu.Unlock()
}

type E struct{ mu sync.Mutex }

type F struct{ mu sync.Mutex }

// consistent always acquires E before F: one order, no cycle, no report.
func consistent(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

func consistentToo(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	lockF(f)
}

func lockF(f *F) {
	f.mu.Lock()
	f.mu.Unlock()
}

// sameClass locks two instances of one class; the class graph cannot
// order instances, so no self-edge is reported (see package comment).
func sameClass(x, y *E) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}
