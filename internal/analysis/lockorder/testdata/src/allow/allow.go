// The same seeded cycle as fixture a, silenced by justified escapes: a
// //lint:allow lockorder on every site that contributes a cycle edge.
package allow

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func ab(a *A, b *B) {
	a.mu.Lock()
	//lint:allow lockorder -- fixture: documents the escape-hatch grammar for this check
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() //lint:allow lockorder -- fixture: reverse order is guarded by a tryLock protocol in real code
	a.mu.Unlock()
	b.mu.Unlock()
}
