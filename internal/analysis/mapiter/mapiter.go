// Package mapiter flags range-over-map loops whose bodies reach an
// order-sensitive sink.
//
// Go randomizes map iteration order on purpose. That is harmless when the
// loop is order-independent (counting, copying into another map, deleting,
// taking a max) and catastrophic when the loop order leaks into observable
// state: appending to a slice that is later flooded or encoded, folding
// floats (addition does not commute in IEEE 754), or calling into the
// transport. The repository's byte-identical-replay guarantee dies at the
// first such loop.
//
// The analyzer therefore flags a range over a map only when the loop body
// contains one of the recognized sinks:
//
//   - append assigned to a plain variable (building an ordered slice);
//     appends keyed back into a map (m[k] = append(m[k], ...)) are
//     order-independent and pass
//   - compound assignment (+=, -=, *=, /=) onto a float
//   - a call whose name is on the message-path list (Send, Broadcast,
//     Flood, Encode, Enqueue and their lowercase forms)
//
// The fix is to iterate determinism.SortedKeys(m) (or OrderedRange), which
// ranges over a slice and so never triggers the check. Loops that are
// genuinely order-independent despite a textual sink can carry
// //lint:allow mapiter -- <justification>.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the mapiter check.
var Analyzer = &analysis.Analyzer{
	Name:   "mapiter",
	Escape: "mapiter",
	Doc: "flag range-over-map loops whose bodies append to slices, accumulate " +
		"floats, or call into the message path; iterate determinism.SortedKeys instead",
	Run: run,
}

// messagePathNames are function/method names treated as order-sensitive
// sinks: anything that serializes or transmits observes call order.
var messagePathNames = map[string]bool{
	"Send": true, "send": true,
	"Broadcast": true, "broadcast": true,
	"Flood": true, "flood": true,
	"Encode": true, "encode": true,
	"Enqueue": true, "enqueue": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink := findSink(pass, rs.Body); sink != "" {
				pass.Reportf(rs.For,
					"range over map reaches order-sensitive sink (%s): iterate determinism.SortedKeys / OrderedRange for a stable order",
					sink)
			}
			return true
		})
	}
	return nil
}

// findSink walks a range body and names the first order-sensitive sink it
// finds, or returns "".
func findSink(pass *analysis.Pass, body *ast.BlockStmt) (sink string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if s := assignSink(pass, n); s != "" {
				sink = s
				return false
			}
		case *ast.CallExpr:
			if name := calleeName(n); messagePathNames[name] {
				sink = "call to " + name
				return false
			}
		}
		return true
	})
	return sink
}

func assignSink(pass *analysis.Pass, as *ast.AssignStmt) string {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			if isFloat(pass, lhs) {
				return "float accumulation"
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) {
				continue
			}
			// m[k] = append(m[k], ...) distributes by key and is
			// order-independent; only appends landing in a plain slice
			// variable build an iteration-ordered sequence.
			if i < len(as.Lhs) {
				if _, keyed := as.Lhs[i].(*ast.IndexExpr); keyed {
					continue
				}
			}
			return "append to slice"
		}
	}
	return ""
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
