package mapiter_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/mapiter"
)

func TestMapiter(t *testing.T) {
	analysistest.Run(t, mapiter.Analyzer, analysistest.Dir("mapiter"))
}
