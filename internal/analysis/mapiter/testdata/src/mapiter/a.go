// Package mapiter is the analyzer's fixture: ordered-sink loops it must
// flag, order-independent loops it must pass.
package mapiter

type payload struct{ v int }

type transport struct{}

func (transport) Send(to int, p payload)  {}
func (transport) Flood(p payload)         {}
func (transport) handleMessage(p payload) {}

func appendSink(m map[int]string) []int {
	var keys []int
	for k := range m { // want `range over map reaches order-sensitive sink \(append to slice\)`
		keys = append(keys, k)
	}
	return keys
}

func floatSink(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `range over map reaches order-sensitive sink \(float accumulation\)`
		sum += v
	}
	return sum
}

func sendSink(m map[int]payload, tr transport) {
	for to, p := range m { // want `range over map reaches order-sensitive sink \(call to Send\)`
		tr.Send(to, p)
	}
}

func floodSink(m map[int]payload, tr transport) {
	for _, p := range m { // want `range over map reaches order-sensitive sink \(call to Flood\)`
		tr.Flood(p)
	}
}

// Counting is commutative: no sink, no diagnostic.
func countLoop(m map[int]string) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Copying into another map is keyed, not ordered: legal.
func cloneLoop(m map[int]string) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Appending back under the same key distributes by key: legal.
func keyedAppend(m map[int][]string, extra map[int]string) {
	for k, v := range extra {
		m[k] = append(m[k], v)
	}
}

// Integer accumulation commutes exactly: legal.
func intSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Max over values is order-independent: legal.
func maxLoop(m map[int]float64) float64 {
	best := -1.0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// The sorted-keys shape itself: ranging a slice is always fine.
func sortedFix(m map[int]string, sortedKeys func(map[int]string) []int) []string {
	var out []string
	for _, k := range sortedKeys(m) {
		out = append(out, m[k])
	}
	return out
}

func escapedLoop(m map[int]string) []int {
	var keys []int
	//lint:allow mapiter -- fixture: output is re-sorted by the caller before use
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
