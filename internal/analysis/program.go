package analysis

// Whole-program analysis support. PR 6's analyzers were strictly
// per-package: each Pass saw one type-checked package and nothing else.
// The second-generation analyzers (lockorder, hotalloc, spawncheck) reason
// about invariants no single package exhibits — lock acquisition order
// across the core/simnet/wire message chain, allocations reachable from a
// hot-path root set — so the framework also supports analyzers that run
// once over every loaded package at a time, with a shared call graph built
// on top (internal/analysis/callgraph).
//
// A program analyzer sets Analyzer.RunProgram instead of Analyzer.Run. The
// standalone runner (RunPackages, i.e. `rtds-lint ./...`) executes program
// analyzers after the per-package ones, over the subset of packages the
// scoping function admits. The `go vet -vettool` path schedules one
// package per process invocation and therefore cannot drive whole-program
// analyzers; they are skipped there, which the rtds-lint command
// documentation calls out.

import (
	"fmt"
	"go/ast"
	"go/token"
)

// A Program is every package of one load, presented to a program analyzer
// at once. Packages share one FileSet and are sorted by import path (Load
// guarantees both).
type Program struct {
	// Dir is the directory the load ran in (the module root for
	// `rtds-lint ./...`); analyzers that shell out to the go tool (the
	// hotalloc escape-analysis cross-check) run it there.
	Dir      string
	Fset     *token.FileSet
	Packages []*Package
}

// Files returns every file of every package, in package order.
func (p *Program) Files() []*ast.File {
	var out []*ast.File
	for _, pkg := range p.Packages {
		out = append(out, pkg.Files...)
	}
	return out
}

// A ProgramPass provides one program analyzer run with the whole program
// and collects its diagnostics. Escape comments (//lint:allow and
// //lint:file-allow) suppress diagnostics exactly as they do for
// per-package passes.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diagnostics []Diagnostic
	allows      *allowIndex
}

// Reportf records a diagnostic at pos unless an escape comment allows it.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Allowed(pos) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Allowed reports whether an escape comment suppresses diagnostics of this
// pass's analyzer at pos.
func (p *ProgramPass) Allowed(pos token.Pos) bool {
	if p.allows == nil {
		p.allows = indexAllows(p.Prog.Fset, p.Prog.Files())
	}
	return p.allows.allowed(p.Prog.Fset, pos, p.Analyzer.EscapeToken())
}

// runOneProgram executes a single program analyzer over the packages the
// scoping function admits and returns its diagnostics.
func runOneProgram(a *Analyzer, dir string, pkgs []*Package, appliesTo func(*Analyzer, string) bool) ([]Diagnostic, error) {
	var scoped []*Package
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		if appliesTo != nil && !appliesTo(a, pkg.ImportPath) {
			continue
		}
		scoped = append(scoped, pkg)
	}
	if len(scoped) == 0 {
		return nil, nil
	}
	pass := &ProgramPass{
		Analyzer: a,
		Prog:     &Program{Dir: dir, Fset: fset, Packages: scoped},
	}
	if err := a.RunProgram(pass); err != nil {
		return nil, fmt.Errorf("%s: %v", a.Name, err)
	}
	return pass.diagnostics, nil
}

// RunProgramForTest executes one program analyzer over one package treated
// as a whole program; the analysistest harness drives it directly.
func RunProgramForTest(a *Analyzer, dir string, pkg *Package) ([]Diagnostic, error) {
	diags, err := runOneProgram(a, dir, []*Package{pkg}, nil)
	if err != nil {
		return nil, err
	}
	SortDiagnostics(pkg.Fset, diags)
	return diags, nil
}
