// Package rtdslint assembles the project's analyzers into the suite the
// rtds-lint binary (and CI) runs, and defines which packages each analyzer
// polices. It lives apart from package analysis so the framework does not
// import its own analyzers.
package rtdslint

import (
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/detclock"
	"repro/internal/analysis/exhaustive"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/mapiter"
	"repro/internal/analysis/sendunderlock"
	"repro/internal/analysis/spawncheck"
)

// Suite returns the analyzers in the order they run (and the order their
// names appear in documentation). The first four are per-package; the last
// three are whole-program (they run once over their scoped package set and
// are skipped under `go vet -vettool`, which schedules per package).
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detclock.Analyzer,
		mapiter.Analyzer,
		exhaustive.Analyzer,
		sendunderlock.Analyzer,
		lockorder.Analyzer,
		hotalloc.Analyzer,
		spawncheck.Analyzer,
	}
}

// deterministicPkgs are the import-path prefixes whose code runs under the
// discrete-event simulation and must never read wall-clock time or the
// global rand source. internal/simnet is included even though its live/TCP
// half is wall-clock by nature; those files carry //lint:file-allow
// wallclock with a justification, which keeps the boundary explicit in the
// source instead of implicit in linter configuration.
var deterministicPkgs = []string{
	"repro/internal/sim",
	"repro/internal/core",
	"repro/internal/routing",
	"repro/internal/schedule",
	"repro/internal/experiments",
	"repro/internal/simnet",
}

// AppliesTo reports whether an analyzer runs on the package with the given
// import path. Scoping policy:
//
//   - detclock: deterministic packages only (see deterministicPkgs)
//   - mapiter, sendunderlock: all internal packages except the linter's own
//     implementation (its testdata fixtures intentionally violate the rules)
//   - lockorder: the heavy lock users (core, simnet, wire) — the packages
//     whose mutexes interleave across the message chain
//   - hotalloc: the declared hot-path packages (wire, sim, schedule); the
//     //lint:hotpath roots live there and the call graph stays within them
//   - spawncheck: every package that spawns goroutines, i.e. all module
//     code outside the linter itself
//   - exhaustive: the whole module
func AppliesTo(a *analysis.Analyzer, importPath string) bool {
	if hasPrefix(importPath, "repro/internal/analysis") ||
		hasPrefix(importPath, "repro/internal/determinism") {
		// The framework ranges over types.Info maps (sorted afterwards) and
		// the determinism package *is* the sorted-iteration helper.
		return false
	}
	switch a.Name {
	case "detclock":
		for _, p := range deterministicPkgs {
			if hasPrefix(importPath, p) {
				return true
			}
		}
		return false
	case "mapiter", "sendunderlock":
		return hasPrefix(importPath, "repro/internal")
	case "lockorder":
		return hasPrefix(importPath, "repro/internal/core") ||
			hasPrefix(importPath, "repro/internal/simnet") ||
			hasPrefix(importPath, "repro/internal/wire")
	case "hotalloc":
		return hasPrefix(importPath, "repro/internal/wire") ||
			hasPrefix(importPath, "repro/internal/sim") ||
			hasPrefix(importPath, "repro/internal/schedule")
	default: // exhaustive, spawncheck, future module-wide checks
		return hasPrefix(importPath, "repro")
	}
}

// hasPrefix matches whole import-path elements: "repro/internal/sim" covers
// itself and "repro/internal/sim/...", not "repro/internal/simnet".
func hasPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}
