package rtdslint

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestAppliesToScoping(t *testing.T) {
	byName := map[string]string{}
	for _, a := range Suite() {
		byName[a.Name] = a.Name
	}
	for _, name := range []string{"detclock", "mapiter", "exhaustive", "sendunderlock"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("suite is missing analyzer %q", name)
		}
	}

	cases := []struct {
		analyzer string
		pkg      string
		want     bool
	}{
		{"detclock", "repro/internal/sim", true},
		// The parallel kernel is simulation state of the strictest kind —
		// its event order must be a pure function of the seed — so it must
		// inherit the full deterministic-package policing.
		{"detclock", "repro/internal/sim/par", true},
		{"detclock", "repro/internal/core/txn", true},
		{"detclock", "repro/internal/simnet", true},
		{"detclock", "repro/internal/wire", false}, // live TCP layer
		{"detclock", "repro/internal/baseline", false},
		{"mapiter", "repro/internal/sim/par", true},
		{"hotalloc", "repro/internal/sim/par", true},
		{"mapiter", "repro/internal/wire", true},
		{"mapiter", "repro/internal/baseline", true},
		{"mapiter", "repro/cmd/rtds-sim", false},
		{"sendunderlock", "repro/internal/simnet", true},
		{"exhaustive", "repro/cmd/rtds-sim", true},
		{"exhaustive", "repro/internal/wire", true},
		// The linter's own packages are exempt from everything.
		{"mapiter", "repro/internal/analysis/mapiter", false},
		{"detclock", "repro/internal/determinism", false},
	}
	suite := map[string]int{}
	for i, a := range Suite() {
		suite[a.Name] = i
	}
	for _, c := range cases {
		a := Suite()[suite[c.analyzer]]
		if got := AppliesTo(a, c.pkg); got != c.want {
			t.Errorf("AppliesTo(%s, %s) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}

// TestVettoolIntegration builds the rtds-lint binary and drives it both
// standalone and through `go vet -vettool` over a package that must be
// clean, proving the unitchecker protocol end to end.
func TestVettoolIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet: skipped in -short")
	}
	moduleRoot, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "rtds-lint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/rtds-lint")
	build.Dir = moduleRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rtds-lint: %v\n%s", err, out)
	}

	// Standalone over a known-clean package.
	standalone := exec.Command(bin, "./internal/determinism/...")
	standalone.Dir = moduleRoot
	if out, err := standalone.CombinedOutput(); err != nil {
		t.Fatalf("standalone rtds-lint reported problems: %v\n%s", err, out)
	}

	// The -V=full probe must print a stable version line (the go command
	// uses it as a cache key).
	probe := exec.Command(bin, "-V=full")
	out, err := probe.Output()
	if err != nil || !strings.HasPrefix(string(out), "rtds-lint version") {
		t.Fatalf("-V=full probe: %v, output %q", err, out)
	}

	// Full protocol: go vet -vettool over the same package.
	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/determinism/...")
	vet.Dir = moduleRoot
	vet.Env = append(os.Environ(), "GOFLAGS=")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}
