package analysis

import (
	"fmt"
	"go/token"
	"io"
	"sort"
)

// runOne executes a single analyzer over a loaded package and returns its
// diagnostics (escape-suppressed ones excluded).
func runOne(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
	}
	return pass.diagnostics, nil
}

// RunForTest executes one analyzer over one package; the analysistest
// harness drives it directly, bypassing package scoping.
func RunForTest(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	diags, err := runOne(a, pkg)
	if err != nil {
		return nil, err
	}
	SortDiagnostics(pkg.Fset, diags)
	return diags, nil
}

// RunPackages applies every applicable analyzer (per appliesTo) to every
// package, validates escape comments, and returns all diagnostics sorted
// by position. Per-package analyzers run package by package; program
// analyzers (Analyzer.RunProgram) run once afterwards over the packages
// their scope admits, loaded from dir. The loop is deterministic by
// construction — Load sorts packages, analyzers run in slice order, and
// the final sort breaks any remaining ties — so rtds-lint's output is
// byte-stable.
func RunPackages(analyzers []*Analyzer, appliesTo func(*Analyzer, string) bool, dir string, pkgs []*Package) ([]Diagnostic, *token.FileSet, error) {
	var tokens []string
	for _, a := range analyzers {
		tokens = append(tokens, a.EscapeToken())
	}
	var diags []Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		diags = append(diags, CheckEscapes(pkg.Fset, pkg.Files, tokens)...)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if appliesTo != nil && !appliesTo(a, pkg.ImportPath) {
				continue
			}
			ds, err := runOne(a, pkg)
			if err != nil {
				return nil, nil, err
			}
			diags = append(diags, ds...)
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		ds, err := runOneProgram(a, dir, pkgs, appliesTo)
		if err != nil {
			return nil, nil, err
		}
		diags = append(diags, ds...)
	}
	SortDiagnostics(fset, diags)
	return diags, fset, nil
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer,
// message — a total order, so output never depends on map iteration or
// scheduling (the linter polices determinism; it had better exhibit it).
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	pos := func(d Diagnostic) token.Position {
		if fset == nil || !d.Pos.IsValid() {
			return token.Position{}
		}
		return fset.Position(d.Pos)
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pos(diags[i]), pos(diags[j])
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}

// PrintDiagnostics writes diagnostics in the conventional
// file:line:col: message [analyzer] form.
func PrintDiagnostics(w io.Writer, fset *token.FileSet, diags []Diagnostic) {
	for _, d := range diags {
		if fset != nil && d.Pos.IsValid() {
			fmt.Fprintf(w, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		} else {
			fmt.Fprintf(w, "%s [%s]\n", d.Message, d.Analyzer)
		}
	}
}
