// Package sendunderlock reports transport sends and handler invocations
// made while a mutex is held.
//
// The repository's transports deliver synchronously in the simulated
// (in-process) configuration: site A's Send can run site B's handler on the
// same goroutine, and B's reply can re-enter A before Send returns. A send
// under a site or manager mutex is therefore a latent self-deadlock — the
// exact shape of the lock-cycle bug fixed in the dynamic-membership PR by
// deferring notifications through transport.After. This analyzer keeps
// that class of bug from coming back.
//
// The analysis is intra-procedural and deliberately simple: it tracks
// Lock/RLock calls on sync.Mutex / sync.RWMutex values sequentially
// through each function body (a deferred Unlock keeps the lock held to the
// end), and flags any call named Send, Broadcast, Flood, Deliver, or
// Handle made while at least one lock is held. Function literals are NOT
// walked under the outer lock set: the sanctioned fix is precisely to move
// the send into a closure that runs after the lock is released
// (transport.After, event-queue callbacks), so closures are judged as
// separate, lock-free bodies.
//
// Sends that are provably safe under a lock carry
// //lint:allow sendunderlock -- <justification>.
package sendunderlock

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the sendunderlock check.
var Analyzer = &analysis.Analyzer{
	Name:   "sendunderlock",
	Escape: "sendunderlock",
	Doc: "report Transport.Send / handler calls made while a sync.Mutex or " +
		"sync.RWMutex is held; synchronous delivery makes them deadlocks",
	Run: run,
}

// sinkNames are callee names that (re)enter the message path.
var sinkNames = map[string]bool{
	"Send": true, "Broadcast": true, "Flood": true,
	"Deliver": true, "Handle": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkStmts(pass, fd.Body.List, map[string]bool{})
			// Each function literal is its own body with an empty lock set —
			// see the package comment for why.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					walkStmts(pass, fl.Body.List, map[string]bool{})
				}
				return true // keep descending: nested literals get their own walk
			})
		}
	}
	return nil
}

// walkStmts interprets a statement list sequentially, maintaining the set
// of held lock expressions (keyed by their printed receiver, e.g. "s.mu").
// Nested control flow is walked with a copy of the set: a lock taken or
// released inside one branch is not assumed on the code that follows.
func walkStmts(pass *analysis.Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock runs at return: the lock stays held for the
			// rest of the body. Any other deferred call is checked against
			// the locks we know survive to function exit — conservatively,
			// none (defers run after non-deferred unlocks too), so skip.
			continue
		case *ast.GoStmt:
			// The spawned goroutine does not inherit the caller's locks.
			continue
		case *ast.ExprStmt:
			if name, key, isLock := lockOp(pass, s.X); isLock {
				if name == "Lock" || name == "RLock" {
					held[key] = true
				} else {
					delete(held, key)
				}
				continue
			}
			checkExpr(pass, s.X, held)
		case *ast.BlockStmt:
			walkStmts(pass, s.List, held)
		case *ast.IfStmt:
			checkExpr(pass, s.Cond, held)
			walkStmts(pass, s.Body.List, copyOf(held))
			if s.Else != nil {
				walkStmts(pass, []ast.Stmt{s.Else}, copyOf(held))
			}
		case *ast.ForStmt:
			walkStmts(pass, s.Body.List, copyOf(held))
		case *ast.RangeStmt:
			checkExpr(pass, s.X, held)
			walkStmts(pass, s.Body.List, copyOf(held))
		case *ast.SwitchStmt:
			if s.Tag != nil {
				checkExpr(pass, s.Tag, held)
			}
			for _, cc := range s.Body.List {
				walkStmts(pass, cc.(*ast.CaseClause).Body, copyOf(held))
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range s.Body.List {
				walkStmts(pass, cc.(*ast.CaseClause).Body, copyOf(held))
			}
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				walkStmts(pass, cc.(*ast.CommClause).Body, copyOf(held))
			}
		case *ast.LabeledStmt:
			walkStmts(pass, []ast.Stmt{s.Stmt}, held)
		case *ast.AssignStmt:
			for _, e := range s.Rhs {
				checkExpr(pass, e, held)
			}
		case *ast.ReturnStmt:
			for _, e := range s.Results {
				checkExpr(pass, e, held)
			}
		}
	}
}

func copyOf(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// checkExpr reports every sink call inside e that executes while a lock is
// held. Function literals are skipped (see package comment).
func checkExpr(pass *analysis.Pass, e ast.Expr, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if !sinkNames[name] {
			return true
		}
		// sync.Cond.Broadcast/Signal are synchronization, not messaging —
		// holding the associated mutex there is the documented idiom.
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
			if tv, found := pass.TypesInfo.Types[sel.X]; found && isSyncType(tv.Type) {
				return true
			}
		}
		pass.Reportf(call.Pos(),
			"call to %s while %s held: synchronous delivery can re-enter this site and deadlock — release the lock first or defer via transport.After",
			name, heldList(held))
		return true
	})
}

// lockOp recognizes x.mu.Lock()/RLock()/Unlock()/RUnlock() calls whose
// receiver is a sync.Mutex or sync.RWMutex and returns the operation name
// and a stable key for the lock expression.
func lockOp(pass *analysis.Pass, e ast.Expr) (op, key string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	tv, found := pass.TypesInfo.Types[sel.X]
	if !found || !isSyncLock(tv.Type) {
		return "", "", false
	}
	return sel.Sel.Name, types.ExprString(sel.X), true
}

func isSyncLock(t types.Type) bool {
	name, ok := syncTypeName(t)
	return ok && (name == "Mutex" || name == "RWMutex")
}

// isSyncType reports whether t is (a pointer to) any type declared in
// package sync.
func isSyncType(t types.Type) bool {
	_, ok := syncTypeName(t)
	return ok
}

func syncTypeName(t types.Type) (string, bool) {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false
	}
	return obj.Name(), true
}

func heldList(held map[string]bool) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	// Deterministic diagnostic text regardless of map order.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	s := keys[0]
	for _, k := range keys[1:] {
		s += ", " + k
	}
	return s
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
