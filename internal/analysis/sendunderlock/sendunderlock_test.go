package sendunderlock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/sendunderlock"
)

func TestSendUnderLock(t *testing.T) {
	analysistest.Run(t, sendunderlock.Analyzer, analysistest.Dir("sendunderlock"))
}
