// Package sendunderlock is the analyzer's fixture: sends under held
// mutexes it must flag, and the sanctioned unlock-first / closure-deferred
// shapes it must pass.
package sendunderlock

import "sync"

type payload struct{ v int }

type transport struct{}

func (transport) Send(to int, p payload) {}
func (transport) Broadcast(p payload)    {}

type site struct {
	mu    sync.Mutex
	state int
	tr    transport
	after func(func())
}

func sendUnderLock(s *site) {
	s.mu.Lock()
	s.state++
	s.tr.Send(1, payload{s.state}) // want `call to Send while s.mu held`
	s.mu.Unlock()
}

func sendUnderDeferredLock(s *site) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tr.Broadcast(payload{s.state}) // want `call to Broadcast while s.mu held`
}

func sendUnderRLock(s *struct {
	mu sync.RWMutex
	tr transport
}) {
	s.mu.RLock()
	s.tr.Send(1, payload{}) // want `call to Send while s.mu held`
	s.mu.RUnlock()
}

func sendInBranchUnderLock(s *site, urgent bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if urgent {
		s.tr.Send(0, payload{}) // want `call to Send while s.mu held`
	}
}

// Unlock-first is the straightforward fix: legal.
func unlockThenSend(s *site) {
	s.mu.Lock()
	p := payload{s.state}
	s.mu.Unlock()
	s.tr.Send(1, p)
}

// The transport.After idiom: the closure runs after the lock is released,
// so a send inside it is legal even though it is written under the lock.
func deferViaClosure(s *site) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := payload{s.state}
	s.after(func() {
		s.tr.Send(1, p)
	})
}

// A goroutine does not inherit the caller's locks: legal.
func sendInGoroutine(s *site) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.tr.Broadcast(payload{})
}

// cond.Broadcast under the associated mutex is the documented sync idiom,
// not a message send: legal.
func condBroadcast(mu *sync.Mutex, cond *sync.Cond) {
	mu.Lock()
	defer mu.Unlock()
	cond.Broadcast()
}

// Locks released before the call in straight-line code: legal even with a
// second lock cycle afterwards.
func relock(s *site) {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
	s.tr.Send(0, payload{})
	s.mu.Lock()
	s.state--
	s.mu.Unlock()
}

func escapedSend(s *site) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow sendunderlock -- fixture: loopback transport delivers on a queue, never synchronously
	s.tr.Send(0, payload{})
}
