// Package spawncheck requires every go statement to come with provable
// teardown, so the live transport (and everything else) cannot leak
// goroutines: a leaked reader keeps its connection and buffers alive
// forever, and a thousand-run experiment suite multiplies that by a
// thousand.
//
// Accepted evidence, checked on the spawned function's body via the call
// graph (function literals are graph nodes of their own):
//
//   - WaitGroup join: the spawned body calls Done (usually deferred) on a
//     sync.WaitGroup, and the spawning function calls Add on the same
//     expression — the t.wg.Add(1) / defer t.wg.Done() idiom every
//     transport goroutine in this repo uses;
//   - close-guarded loop: the spawned body ranges over a channel (the loop
//     ends when the channel closes), or selects on a receive whose case
//     returns — the done-channel idiom.
//
// A spawn of a dynamic function value cannot be checked and is reported
// as such. Goroutines that intentionally live for the process (the
// rtds-node HTTP listener) carry //lint:allow spawncheck -- <why>.
package spawncheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the spawncheck check.
var Analyzer = &analysis.Analyzer{
	Name:   "spawncheck",
	Escape: "spawncheck",
	Doc: "require every go statement to have a provable join or teardown " +
		"path (WaitGroup, close-guarded loop) so goroutines cannot leak",
	RunProgram: run,
}

func run(pass *analysis.ProgramPass) error {
	g := callgraph.Build(pass.Prog.Fset, pass.Prog.Packages)
	for _, n := range g.Nodes {
		spawnEdges := make(map[*ast.GoStmt][]*callgraph.Edge)
		for _, e := range n.Out {
			if e.Ctx == callgraph.Go && e.GoStmt != nil {
				spawnEdges[e.GoStmt] = append(spawnEdges[e.GoStmt], e)
			}
		}
		for _, gs := range n.Spawns {
			edges := spawnEdges[gs]
			if len(edges) == 0 {
				pass.Reportf(gs.Pos(),
					"goroutine target is a dynamic function value spawncheck cannot resolve — spawn a named function or justify with //lint:allow spawncheck")
				continue
			}
			// Every possible callee (CHA can yield several) needs evidence.
			for _, e := range edges {
				if !joined(n, e.Callee) {
					pass.Reportf(gs.Pos(),
						"goroutine (%s) has no provable join or teardown — no WaitGroup Done with a matching Add, no close-guarded receive loop; goroutine leak risk: add one or justify with //lint:allow spawncheck",
						e.Callee.Name)
				}
			}
		}
	}
	return nil
}

// joined reports whether the spawned callee's body carries teardown
// evidence (relative to the spawning function, which must supply the
// matching WaitGroup Add).
func joined(spawner, callee *callgraph.Node) bool {
	body := callee.Body()
	if body == nil {
		return false
	}
	info := callee.Pkg.TypesInfo
	ok := false
	ast.Inspect(body, func(x ast.Node) bool {
		if ok {
			return false
		}
		switch s := x.(type) {
		case *ast.CallExpr:
			if expr, found := waitGroupCall(info, s, "Done"); found && hasAdd(spawner, expr) {
				ok = true
			}
		case *ast.RangeStmt:
			if tv, found := info.Types[s.X]; found {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					ok = true
				}
			}
		case *ast.CommClause:
			if isReceive(s.Comm) && hasReturn(s.Body) {
				ok = true
			}
		}
		return !ok
	})
	return ok
}

// waitGroupCall recognizes X.<method>() on a sync.WaitGroup and returns
// X's printed form as the pairing key.
func waitGroupCall(info *types.Info, call *ast.CallExpr, method string) (string, bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != method {
		return "", false
	}
	tv, found := info.Types[sel.X]
	if !found || !isWaitGroup(tv.Type) {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// hasAdd reports whether the spawning function calls Add on the same
// WaitGroup expression.
func hasAdd(spawner *callgraph.Node, expr string) bool {
	body := spawner.Body()
	if body == nil {
		return false
	}
	info := spawner.Pkg.TypesInfo
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		if call, isCall := x.(*ast.CallExpr); isCall {
			if e, isWG := waitGroupCall(info, call, "Add"); isWG && e == expr {
				found = true
			}
		}
		return !found
	})
	return found
}

func isWaitGroup(t types.Type) bool {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isReceive reports whether a select communication is a channel receive.
func isReceive(comm ast.Stmt) bool {
	switch s := comm.(type) {
	case *ast.ExprStmt:
		u, isU := s.X.(*ast.UnaryExpr)
		return isU && u.Op.String() == "<-"
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			u, isU := s.Rhs[0].(*ast.UnaryExpr)
			return isU && u.Op.String() == "<-"
		}
	}
	return false
}

func hasReturn(stmts []ast.Stmt) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(x ast.Node) bool {
			switch x.(type) {
			case *ast.ReturnStmt:
				found = true
			case *ast.FuncLit:
				return false
			}
			return !found
		})
	}
	return found
}
