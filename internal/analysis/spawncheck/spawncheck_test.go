package spawncheck

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestSpawncheck(t *testing.T) {
	analysistest.RunProgram(t, Analyzer, analysistest.Dir("spawn"))
}

func TestAllowSilences(t *testing.T) {
	analysistest.RunProgram(t, Analyzer, analysistest.Dir("allowspawn"))
}
