// The seeded leaks again, silenced by justified escapes.
package allowspawn

func leaky(ch chan int) {
	//lint:allow spawncheck -- fixture: lives for the process by design, like the rtds-node HTTP listener
	go func() {
		for {
			ch <- 1
		}
	}()
}

func dynamic(f func()) {
	go f() //lint:allow spawncheck -- fixture: callback contract requires callees to terminate
}
