// Spawn fixtures: each accepted teardown shape, the seeded leaks, and the
// unresolvable dynamic spawn.
package spawn

import "sync"

// joined: the canonical Add/Done pairing.
func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// closeGuarded: ranging over a channel ends when the channel closes.
func closeGuarded(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// selectGuarded: a done-channel receive whose case returns.
func selectGuarded(ch, done chan struct{}) {
	go func() {
		for {
			select {
			case <-ch:
			case <-done:
				return
			}
		}
	}()
}

// leaky spins forever with no way to stop it.
func leaky(ch chan int) {
	go func() { // want `no provable join or teardown`
		for {
			ch <- 1
		}
	}()
}

// noAdd has a Done but the spawner never Adds: the join is not provable.
func noAdd() {
	var wg sync.WaitGroup
	go func() { // want `no provable join or teardown`
		defer wg.Done()
	}()
}

// dynamic spawns a function value the analyzer cannot see into.
func dynamic(f func()) {
	go f() // want `dynamic function value`
}

type worker struct{ wg sync.WaitGroup }

func (w *worker) loop() { defer w.wg.Done() }

func (w *worker) bare() {}

// namedJoined: evidence across functions — Done lives in the named
// callee, Add in the spawner.
func namedJoined(w *worker) {
	w.wg.Add(1)
	go w.loop()
	w.wg.Wait()
}

// namedLeaky: the named callee carries no evidence at all.
func namedLeaky(w *worker) {
	go w.bare() // want `no provable join or teardown`
}
