package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the vet "unit checker" protocol, so the rtds-lint
// binary can be driven by the go command:
//
//	go vet -vettool=$(which rtds-lint) ./...
//
// The go command probes the tool with -V=full (a stable version string for
// build caching) and -flags (the JSON flag schema it may pass through),
// then invokes it once per package with the path to a *.cfg file that
// describes one compilation unit: source files, the import map, and the
// export-data file of every dependency. The tool type-checks the unit,
// runs its analyzers, writes the (empty — rtds-lint has no cross-package
// facts) .vetx facts file, and reports diagnostics on stderr with a
// non-zero exit. The protocol is the same one x/tools' unitchecker speaks;
// reimplementing it here keeps the binary dependency-free.

// vetConfig mirrors the fields of the go command's vet.cfg that the unit
// checker consumes. Unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// UnitcheckerMain implements the vettool side of the protocol. It never
// returns: it exits 0 on success (or when the unit is skipped), non-zero
// on diagnostics or errors. appliesTo has the same meaning as in
// RunPackages.
func UnitcheckerMain(progname string, analyzers []*Analyzer, appliesTo func(*Analyzer, string) bool, args []string) {
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			fmt.Printf("%s version devel buildID=%s\n", progname, selfHash())
			os.Exit(0)
		case args[0] == "-flags":
			// rtds-lint accepts no pass-through vet flags; an empty schema
			// tells the go command to reject any it is given.
			fmt.Println("[]")
			os.Exit(0)
		case strings.HasSuffix(args[0], ".cfg"):
			if err := unitcheck(args[0], analyzers, appliesTo); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			os.Exit(0)
		}
	}
	fmt.Fprintf(os.Stderr, "%s (vettool mode): want -V=full, -flags, or a single vet.cfg path, got %q\n", progname, args)
	os.Exit(2)
}

// selfHash fingerprints the running executable; the go command caches vet
// results keyed on this string, so it must change whenever the binary does.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

func unitcheck(cfgPath string, analyzers []*Analyzer, appliesTo func(*Analyzer, string) bool) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("%s: parsing vet config: %v", cfgPath, err)
	}
	// The go command requires the facts file to exist afterwards, even
	// though rtds-lint records no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		return nil
	}
	// Test compilation units re-lint the same production sources the base
	// unit already covered (plus _test.go files, which rtds-lint exempts by
	// design), so they are skipped outright: "repro/pkg [repro/pkg.test]",
	// "repro/pkg.test", "repro/pkg_test [...]".
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		return nil
	}
	if strings.HasSuffix(importPath, ".test") {
		return nil
	}
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		goFiles = append(goFiles, f)
	}
	if len(goFiles) == 0 {
		return nil
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	pkg, err := typecheck(fset, imp, importPath, goFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return fmt.Errorf("%s: typecheck: %v", importPath, err)
	}
	// Vet schedules one package per process, so whole-program analyzers
	// (Analyzer.RunProgram) cannot run here; keep only the per-package ones.
	// `rtds-lint ./...` is the path that runs everything.
	var perPkg []*Analyzer
	for _, a := range analyzers {
		if a.Run != nil {
			perPkg = append(perPkg, a)
		}
	}
	diags, _, err := RunPackages(perPkg, appliesTo, cfg.Dir, []*Package{pkg})
	if err != nil {
		return err
	}
	if len(diags) > 0 {
		PrintDiagnostics(os.Stderr, fset, diags)
		os.Exit(2)
	}
	return nil
}
