// Package baseline implements the comparison schemes RTDS is evaluated
// against:
//
//   - LocalOnly — handled by core.Config.LocalOnly: jobs failing the local
//     test are rejected outright;
//   - BroadcastSphere — handled by running RTDS with a sphere radius at
//     least the network hop diameter (helpers in internal/experiments);
//   - FocusedBidding (this file) — a reconstruction of the focused
//     addressing + bidding scheme of Cheng–Stankovic–Ramamritham [4] and
//     the flexible algorithms of [10, 12, 5], which the paper's §3
//     describes as periodically broadcasting every site's surplus over all
//     the network. The paper could not compare against [4] for lack of
//     detail; we reconstruct the *communication pattern* it criticizes so
//     experiment E2 can quantify the claim.
//
// FocusedBidding semantics (documented in DESIGN.md §5): on local failure
// the origin sends the whole job to the known-best-surplus site (the
// focused site) and requests bids from the next-best sites; bids go to the
// focused site, which keeps the job if it can guarantee it locally and
// otherwise awards it to the best bidder. Jobs are never split across
// sites, which is the functional gap to RTDS; surplus dissemination floods
// the entire network periodically, which is the communication gap.
//
// Routing tables are given to sites for free (no bootstrap cost is
// charged), which biases the comparison against RTDS — conservatively.
package baseline

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/determinism"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Config tunes the focused addressing + bidding scheme.
type Config struct {
	// SurplusPeriod is the interval between network-wide surplus floods.
	SurplusPeriod float64
	// SurplusWindow is the observational window of the surplus measure.
	SurplusWindow float64
	// NumBidders is how many next-best sites receive a request for bid.
	NumBidders int
	// BidSlack pads the focused site's bid-collection timeout beyond the
	// network round trip.
	BidSlack float64
	// Horizon bounds the periodic flooding (floods stop after it); set it to
	// at least the workload horizon.
	Horizon float64
	// Faults arms transport fault injection (see simnet.FaultPlan). The
	// baseline has no bootstrap phase, so plan times are relative to 0 and
	// loss also hits the surplus floods — which is fair: the flooding
	// traffic the paper criticizes runs on the same faulty network. A job
	// whose offer, bid, award or verdict is lost stays undecided, which
	// counts against the guarantee ratio.
	Faults *simnet.FaultPlan
}

// DefaultConfig mirrors core.DefaultConfig's spirit.
func DefaultConfig(horizon float64) Config {
	return Config{
		SurplusPeriod: 25,
		SurplusWindow: 200,
		NumBidders:    3,
		BidSlack:      1e-3,
		Horizon:       horizon,
	}
}

// surplusMsg floods one site's surplus over the whole network.
type surplusMsg struct {
	Origin  graph.NodeID
	Seq     int
	Surplus float64
}

func (surplusMsg) Kind() string   { return "fab.surplus" }
func (surplusMsg) SizeBytes() int { return 24 + 12 }

// offerMsg hands the whole job to the focused site.
type offerMsg struct {
	Job     *core.Job
	Origin  graph.NodeID
	Bidders []graph.NodeID
}

func (offerMsg) Kind() string     { return "fab.offer" }
func (m offerMsg) SizeBytes() int { return 24 + 64 + m.Job.Graph.Len()*32 + 8*len(m.Bidders) }

// rfbMsg requests a bid for a job.
type rfbMsg struct {
	JobID   string
	Focused graph.NodeID
	Work    float64 // total complexity, for the bidder's estimate
}

func (rfbMsg) Kind() string   { return "fab.rfb" }
func (rfbMsg) SizeBytes() int { return 24 + 16 }

// bidMsg is a bidder's answer to the focused site.
type bidMsg struct {
	JobID   string
	Bidder  graph.NodeID
	Surplus float64
}

func (bidMsg) Kind() string   { return "fab.bid" }
func (bidMsg) SizeBytes() int { return 24 + 12 }

// awardMsg forwards the job from the focused site to the winning bidder.
type awardMsg struct {
	Job    *core.Job
	Origin graph.NodeID
}

func (awardMsg) Kind() string     { return "fab.award" }
func (m awardMsg) SizeBytes() int { return 24 + 64 + m.Job.Graph.Len()*32 }

// verdictMsg reports accept/reject back to the origin.
type verdictMsg struct {
	JobID    string
	Accepted bool
	Where    graph.NodeID
}

func (verdictMsg) Kind() string   { return "fab.verdict" }
func (verdictMsg) SizeBytes() int { return 24 + 9 }

// routedMsg is the hop-by-hop envelope (same accounting as core.Routed).
type routedMsg struct {
	Src, Dest graph.NodeID
	TTL       int
	Inner     simnet.Payload
}

func (r routedMsg) Kind() string   { return r.Inner.Kind() }
func (r routedMsg) SizeBytes() int { return 8 + r.Inner.SizeBytes() }

// Cluster runs the focused addressing + bidding scheme on a DES transport.
type Cluster struct {
	cfg    Config
	topo   *graph.Graph
	engine *sim.Engine
	tr     *simnet.DES
	sites  []*site

	mu       sync.Mutex
	jobs     []*core.Job
	jobIndex map[string]*core.Job
	jobSeq   int
}

type site struct {
	id      graph.NodeID
	c       *Cluster
	plan    *schedule.NonPreemptivePlan
	table   *routing.Table
	surplus map[graph.NodeID]float64
	seen    map[graph.NodeID]int // flood dedup: highest seq per origin
	seq     int

	pending map[string]*pendingJob // focused-site state per job
	execEnd map[string]float64     // job -> last completion time here
}

type pendingJob struct {
	job     *core.Job
	origin  graph.NodeID
	bids    map[graph.NodeID]float64
	waiting int
	timer   simnet.CancelFunc
	decided bool
}

// NewCluster builds the baseline cluster. Routing tables are computed
// centrally and handed to the sites at no message cost.
func NewCluster(topo *graph.Graph, cfg Config) (*Cluster, error) {
	if !topo.Connected() {
		return nil, fmt.Errorf("baseline: topology not connected")
	}
	if cfg.SurplusPeriod <= 0 || cfg.SurplusWindow <= 0 || cfg.Horizon <= 0 {
		return nil, fmt.Errorf("baseline: invalid config %+v", cfg)
	}
	engine := sim.New()
	engine.SetEventLimit(200_000_000)
	c := &Cluster{
		cfg:      cfg,
		topo:     topo,
		engine:   engine,
		tr:       simnet.NewDES(engine, topo),
		jobIndex: make(map[string]*core.Job),
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(topo.Len()); err != nil {
			return nil, err
		}
		if cfg.Faults.Enabled() {
			c.tr.SetFaults(*cfg.Faults, 0)
		}
	}
	// One synchronous-flow simulation yields every site's table; building
	// them per site would redo the O(n)-round computation n times.
	tables := routing.CentralTables(topo, topo.Len()-1)
	for id := graph.NodeID(0); int(id) < topo.Len(); id++ {
		s := &site{
			id:      id,
			c:       c,
			plan:    schedule.NewNonPreemptive(),
			table:   tables[id],
			surplus: make(map[graph.NodeID]float64),
			seen:    make(map[graph.NodeID]int),
			pending: make(map[string]*pendingJob),
			execEnd: make(map[string]float64),
		}
		c.sites = append(c.sites, s)
		c.tr.Attach(id, s.handle)
	}
	// Periodic network-wide surplus floods, the §3 pattern under critique.
	for _, s := range c.sites {
		s := s
		var announce func()
		announce = func() {
			s.floodSurplus()
			if engine.Now()+cfg.SurplusPeriod <= cfg.Horizon {
				engine.AfterFixed(cfg.SurplusPeriod, announce)
			}
		}
		engine.AtFixed(0, announce)
	}
	return c, nil
}

// Submit schedules a job arrival (times are absolute: the baseline has no
// bootstrap epoch).
func (c *Cluster) Submit(at float64, origin graph.NodeID, g *dag.Graph, relDeadline float64) (*core.Job, error) {
	if at < 0 || relDeadline <= 0 {
		return nil, fmt.Errorf("baseline: invalid submission at=%v d=%v", at, relDeadline)
	}
	if int(origin) < 0 || int(origin) >= len(c.sites) {
		return nil, fmt.Errorf("baseline: origin %d out of range", origin)
	}
	c.mu.Lock()
	c.jobSeq++
	job := &core.Job{
		ID:          fmt.Sprintf("fab%d@%d", c.jobSeq, origin),
		Graph:       g,
		Origin:      origin,
		Arrival:     at,
		AbsDeadline: at + relDeadline,
	}
	c.jobs = append(c.jobs, job)
	c.jobIndex[job.ID] = job
	c.mu.Unlock()
	s := c.sites[origin]
	c.engine.AtFixed(at, func() { s.jobArrives(job) })
	return job, nil
}

// Run drains the simulation.
func (c *Cluster) Run() error { return c.engine.Run() }

// Jobs lists submitted jobs.
func (c *Cluster) Jobs() []*core.Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*core.Job(nil), c.jobs...)
}

// Stats exposes communication counters.
func (c *Cluster) Stats() *simnet.Stats { return c.tr.Stats() }

// EventsProcessed reports how many discrete events the engine has fired.
func (c *Cluster) EventsProcessed() int64 { return c.engine.Processed() }

// GuaranteeRatio is accepted / submitted.
func (c *Cluster) GuaranteeRatio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.jobs) == 0 {
		return 0
	}
	acc := 0
	for _, j := range c.jobs {
		if j.Accepted() {
			acc++
		}
	}
	return float64(acc) / float64(len(c.jobs))
}

func (c *Cluster) decide(job *core.Job, outcome core.Outcome, stage core.RejectStage, at float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if job.Outcome != core.Pending {
		return
	}
	job.Outcome = outcome
	job.RejectStage = stage
	job.DecisionAt = at
}

// ---------------------------------------------------------------------------
// site behaviour

func (s *site) now() float64 { return s.c.engine.Now() }

func (s *site) handle(from graph.NodeID, p simnet.Payload) {
	switch m := p.(type) {
	case surplusMsg:
		s.onSurplus(from, m)
	case routedMsg:
		if m.Dest != s.id {
			s.forward(m)
			return
		}
		s.dispatch(m.Inner)
	default:
		panic(fmt.Sprintf("baseline: unexpected payload %q", p.Kind()))
	}
}

func (s *site) dispatch(p simnet.Payload) {
	switch m := p.(type) {
	case offerMsg:
		s.onOffer(m)
	case rfbMsg:
		s.onRFB(m)
	case bidMsg:
		s.onBid(m)
	case awardMsg:
		s.onAward(m)
	case verdictMsg:
		s.c.decide(s.c.jobByID(m.JobID), outcomeOf(m), stageOf(m), s.now())
	default:
		panic(fmt.Sprintf("baseline: unexpected routed payload %q", p.Kind()))
	}
}

func outcomeOf(m verdictMsg) core.Outcome {
	if m.Accepted {
		return core.AcceptedDistributed
	}
	return core.Rejected
}

func stageOf(m verdictMsg) core.RejectStage {
	if m.Accepted {
		return ""
	}
	return "bidding"
}

func (c *Cluster) jobByID(id string) *core.Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobIndex[id]
}

func (s *site) sendTo(dest graph.NodeID, p simnet.Payload) {
	if dest == s.id {
		s.dispatch(p)
		return
	}
	s.forward(routedMsg{Src: s.id, Dest: dest, TTL: s.c.topo.Len() + 4, Inner: p})
}

func (s *site) forward(m routedMsg) {
	if m.TTL <= 0 {
		panic("baseline: TTL exhausted")
	}
	m.TTL--
	nh, ok := s.table.NextHop(m.Dest)
	if !ok {
		panic(fmt.Sprintf("baseline: no route from %d to %d", s.id, m.Dest))
	}
	if err := s.c.tr.Send(s.id, nh, m); err != nil {
		panic(err)
	}
}

// floodSurplus broadcasts this site's surplus to the entire network.
func (s *site) floodSurplus() {
	s.seq++
	msg := surplusMsg{Origin: s.id, Seq: s.seq, Surplus: s.plan.Surplus(s.now(), s.c.cfg.SurplusWindow)}
	s.surplus[s.id] = msg.Surplus
	s.seen[s.id] = s.seq
	for _, e := range s.c.topo.Neighbors(s.id) {
		if err := s.c.tr.Send(s.id, e.To, msg); err != nil {
			panic(err)
		}
	}
}

func (s *site) onSurplus(from graph.NodeID, m surplusMsg) {
	if s.seen[m.Origin] >= m.Seq {
		return // already flooded
	}
	s.seen[m.Origin] = m.Seq
	s.surplus[m.Origin] = m.Surplus
	for _, e := range s.c.topo.Neighbors(s.id) {
		if e.To == from {
			continue
		}
		if err := s.c.tr.Send(s.id, e.To, m); err != nil {
			panic(err)
		}
	}
}

// localTest inserts the whole DAG into this site's plan (same semantics as
// the RTDS local test: §5) and commits on success.
func (s *site) localTest(job *core.Job) bool {
	sess := s.plan.NewSession(s.now())
	g := job.Graph
	for _, id := range g.PriorityOrder() {
		rel := job.Arrival
		if n := s.now(); n > rel {
			rel = n
		}
		for _, p := range g.Predecessors(id) {
			if c, ok := sess.Completion(int(p)); ok && c > rel {
				rel = c
			}
		}
		req := schedule.Request{
			Job: job.ID, Task: int(id),
			Release: rel, Deadline: job.AbsDeadline, Duration: g.Complexity(id),
		}
		if _, ok := sess.Place(req); !ok {
			return false
		}
	}
	tk := sess.Ticket()
	if err := s.plan.Commit(tk); err != nil {
		return false
	}
	end := 0.0
	for _, pl := range tk.Placements {
		if pl.End > end {
			end = pl.End
		}
	}
	s.execEnd[job.ID] = end
	s.c.engine.At(end, func() { s.completeJob(job, end) })
	return true
}

func (s *site) completeJob(job *core.Job, at float64) {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	job.Done = true
	if at > job.CompletedAt {
		job.CompletedAt = at
	}
}

// jobArrives runs the origin-side logic: local first, then focused
// addressing + bidding.
func (s *site) jobArrives(job *core.Job) {
	if s.localTest(job) {
		s.c.decide(job, core.AcceptedLocal, "", s.now())
		return
	}
	// Rank known sites by surplus (descending), self excluded.
	type cand struct {
		id graph.NodeID
		v  float64
	}
	var cands []cand
	for _, id := range determinism.SortedKeys(s.surplus) {
		if id != s.id {
			cands = append(cands, cand{id, s.surplus[id]})
		}
	}
	if len(cands) == 0 {
		s.c.decide(job, core.Rejected, "no-candidates", s.now())
		return
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].v != cands[j].v {
			return cands[i].v > cands[j].v
		}
		return cands[i].id < cands[j].id
	})
	focused := cands[0].id
	var bidders []graph.NodeID
	for _, c := range cands[1:] {
		if len(bidders) == s.c.cfg.NumBidders {
			break
		}
		bidders = append(bidders, c.id)
	}
	s.sendTo(focused, offerMsg{Job: job, Origin: s.id, Bidders: bidders})
	for _, b := range bidders {
		s.sendTo(b, rfbMsg{JobID: job.ID, Focused: focused, Work: job.Graph.TotalComplexity()})
	}
}

// onOffer runs at the focused site.
func (s *site) onOffer(m offerMsg) {
	if s.localTest(m.Job) {
		s.sendTo(m.Origin, verdictMsg{JobID: m.Job.ID, Accepted: true, Where: s.id})
		return
	}
	if len(m.Bidders) == 0 {
		s.sendTo(m.Origin, verdictMsg{JobID: m.Job.ID, Accepted: false})
		return
	}
	p := &pendingJob{
		job:     m.Job,
		origin:  m.Origin,
		bids:    make(map[graph.NodeID]float64),
		waiting: len(m.Bidders),
	}
	s.pending[m.Job.ID] = p
	timeout := 2*s.c.topo.DelayDiameter() + s.c.cfg.BidSlack
	p.timer = s.c.tr.After(s.id, timeout, func() { s.awardOrReject(p) })
}

// onRFB runs at a bidder: report current surplus to the focused site.
func (s *site) onRFB(m rfbMsg) {
	s.sendTo(m.Focused, bidMsg{
		JobID:   m.JobID,
		Bidder:  s.id,
		Surplus: s.plan.Surplus(s.now(), s.c.cfg.SurplusWindow),
	})
}

func (s *site) onBid(m bidMsg) {
	p, ok := s.pending[m.JobID]
	if !ok || p.decided {
		return
	}
	p.bids[m.Bidder] = m.Surplus
	if len(p.bids) >= p.waiting {
		if p.timer != nil {
			p.timer()
		}
		s.awardOrReject(p)
	}
}

func (s *site) awardOrReject(p *pendingJob) {
	if p.decided {
		return
	}
	p.decided = true
	delete(s.pending, p.job.ID)
	best := graph.NodeID(-1)
	bestV := -1.0
	ids := determinism.SortedKeys(p.bids)
	for _, id := range ids {
		if v := p.bids[id]; v > bestV {
			best, bestV = id, v
		}
	}
	if best < 0 {
		s.sendTo(p.origin, verdictMsg{JobID: p.job.ID, Accepted: false})
		return
	}
	s.sendTo(best, awardMsg{Job: p.job, Origin: p.origin})
}

// onAward runs at the winning bidder: last chance to guarantee the job.
func (s *site) onAward(m awardMsg) {
	ok := s.localTest(m.Job)
	s.sendTo(m.Origin, verdictMsg{JobID: m.Job.ID, Accepted: ok, Where: s.id})
}
