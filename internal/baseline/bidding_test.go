package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/graph"
)

func fastLine(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), 0.05)
	}
	return g
}

func chainJob(t testing.TB, n int, dur float64) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("chain")
	for i := 1; i <= n; i++ {
		b.AddTask(dag.TaskID(i), dur)
		if i > 1 {
			b.AddEdge(dag.TaskID(i-1), dag.TaskID(i))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func parJob(t testing.TB, n int, dur float64) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("par")
	for i := 1; i <= n; i++ {
		b.AddTask(dag.TaskID(i), dur)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLocalAcceptanceNoJobTraffic(t *testing.T) {
	c, err := NewCluster(fastLine(3), DefaultConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.Submit(1, 1, chainJob(t, 2, 5), 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if job.Outcome != core.AcceptedLocal {
		t.Fatalf("outcome %v, want accepted-local", job.Outcome)
	}
	if !job.Done || job.CompletedAt > job.AbsDeadline {
		t.Fatalf("completion: done=%v at %v", job.Done, job.CompletedAt)
	}
	kinds := c.Stats().ByKind()
	if kinds["fab.offer"] != 0 || kinds["fab.rfb"] != 0 {
		t.Fatalf("local job generated bidding traffic: %v", kinds)
	}
	// Periodic surplus floods must exist regardless.
	if kinds["fab.surplus"] == 0 {
		t.Fatal("no surplus floods observed")
	}
}

func TestMigrationToIdleSite(t *testing.T) {
	c, err := NewCluster(fastLine(3), DefaultConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	// Saturate site 0 with a long job, then offer a second job that cannot
	// fit locally: it must migrate whole to another site and be accepted.
	j1, _ := c.Submit(1, 0, chainJob(t, 1, 90), 100)
	j2, _ := c.Submit(30, 0, chainJob(t, 1, 60), 75)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if j1.Outcome != core.AcceptedLocal {
		t.Fatalf("j1 outcome %v", j1.Outcome)
	}
	if j2.Outcome != core.AcceptedDistributed {
		t.Fatalf("j2 outcome %v (stage %q), want migrated acceptance", j2.Outcome, j2.RejectStage)
	}
	kinds := c.Stats().ByKind()
	if kinds["fab.offer"] == 0 || kinds["fab.verdict"] == 0 {
		t.Fatalf("expected offer/verdict traffic: %v", kinds)
	}
}

func TestCannotSplitParallelJob(t *testing.T) {
	// The functional gap to RTDS: two independent 10-unit tasks with
	// deadline 16 fit nowhere as a whole, so focused addressing + bidding
	// rejects even though two sites together could run them.
	c, err := NewCluster(fastLine(3), DefaultConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	job, _ := c.Submit(1, 0, parJob(t, 2, 10), 16)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if job.Outcome != core.Rejected {
		t.Fatalf("outcome %v, want rejected (whole-job migration cannot split)", job.Outcome)
	}
}

func TestSurplusFloodCount(t *testing.T) {
	// Each flood from one site traverses every edge at least once and at
	// most twice (classic flooding bounds on general graphs).
	topo := fastLine(5)
	cfg := DefaultConfig(10)
	cfg.SurplusPeriod = 100 // single round at t=0
	c, err := NewCluster(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	got := c.Stats().ByKind()["fab.surplus"]
	n := int64(topo.Len())
	e := int64(topo.NumEdges())
	if got < n*e || got > 2*n*e {
		t.Fatalf("surplus messages %d outside [%d, %d]", got, n*e, 2*n*e)
	}
}

func TestFloodCostGrowsWithNetwork(t *testing.T) {
	var prev int64
	for _, n := range []int{4, 8, 16} {
		cfg := DefaultConfig(50)
		cfg.SurplusPeriod = 10
		c, err := NewCluster(fastLine(n), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		got := c.Stats().Messages()
		if got <= prev {
			t.Fatalf("n=%d: flood traffic %d did not grow (prev %d)", n, got, prev)
		}
		prev = got
	}
}

func TestAllJobsDecided(t *testing.T) {
	c, err := NewCluster(fastLine(6), DefaultConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		g := chainJob(t, 1+i%4, 8)
		if _, err := c.Submit(float64(i)*20, graph.NodeID(i%6), g, 40+float64(i%3)*20); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for _, j := range c.Jobs() {
		if j.Outcome == core.Pending {
			t.Fatalf("job %s undecided", j.ID)
		}
		if j.Accepted() && (!j.Done || j.CompletedAt > j.AbsDeadline+1e-9) {
			t.Fatalf("accepted job %s missed deadline (done=%v at %v, d=%v)",
				j.ID, j.Done, j.CompletedAt, j.AbsDeadline)
		}
	}
	if r := c.GuaranteeRatio(); r <= 0 || r > 1 {
		t.Fatalf("guarantee ratio %v", r)
	}
}

func TestBaselineDeterministic(t *testing.T) {
	run := func() (float64, int64) {
		c, err := NewCluster(fastLine(6), DefaultConfig(300))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 15; i++ {
			g := chainJob(t, 1+i%3, 10)
			if _, err := c.Submit(float64(i)*15, graph.NodeID(i%6), g, 35); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return c.GuaranteeRatio(), c.Stats().Messages()
	}
	r1, m1 := run()
	r2, m2 := run()
	if r1 != r2 || m1 != m2 {
		t.Fatalf("nondeterministic baseline: (%v,%d) vs (%v,%d)", r1, m1, r2, m2)
	}
}
