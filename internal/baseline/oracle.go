package baseline

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/determinism"
	"repro/internal/graph"
)

// Oracle is the centralized upper-bound scheduler: a clairvoyant admission
// controller with a global view of every site's exact reservations, zero
// protocol latency, zero message cost and exact (not ω-over-estimated)
// inter-site delays. No distributed algorithm can beat it by more than its
// greedy slack, so it bounds how much of RTDS's rejection rate is inherent
// to the workload versus caused by distribution overheads.
//
// Admission is the same greedy family as the paper's mapper: tasks in
// critical-path priority order, earliest-finishing placement over all
// sites' exact idle gaps, precedence enforced with true shortest-path
// delays. Placements commit atomically per job (all tasks or none).
type Oracle struct {
	topo  *graph.Graph
	dist  [][]float64
	sites []oracleSite
	jobs  []*core.Job
}

type oracleSite struct {
	busy []interval // sorted, disjoint
}

type interval struct {
	start, end float64
	job        string
}

// NewOracle builds the centralized scheduler over the topology.
func NewOracle(topo *graph.Graph) *Oracle {
	o := &Oracle{topo: topo, sites: make([]oracleSite, topo.Len())}
	o.dist = make([][]float64, topo.Len())
	for u := 0; u < topo.Len(); u++ {
		res := topo.Dijkstra(graph.NodeID(u))
		o.dist[u] = make([]float64, topo.Len())
		for v := 0; v < topo.Len(); v++ {
			o.dist[u][v] = res[v].Dist
		}
	}
	return o
}

// Submit processes one arrival. Arrivals must be submitted in
// non-decreasing time order (the oracle is still an on-line scheduler: it
// cannot revisit past decisions, only see the present perfectly).
func (o *Oracle) Submit(at float64, origin graph.NodeID, g *dag.Graph, relDeadline float64) *core.Job {
	job := &core.Job{
		ID:          fmt.Sprintf("oracle%d", len(o.jobs)+1),
		Graph:       g,
		Origin:      origin,
		Arrival:     at,
		AbsDeadline: at + relDeadline,
	}
	o.jobs = append(o.jobs, job)
	if o.place(job) {
		job.Outcome = core.AcceptedDistributed
		job.Done = true
	} else {
		job.Outcome = core.Rejected
		job.RejectStage = "oracle"
	}
	job.DecisionAt = at
	return job
}

type tentative struct {
	site       int
	start, end float64
}

func (o *Oracle) place(job *core.Job) bool {
	g := job.Graph
	placed := make(map[dag.TaskID]tentative, g.Len())
	for _, id := range g.PriorityOrder() {
		best := tentative{site: -1}
		for site := 0; site < o.topo.Len(); site++ {
			release := job.Arrival
			for _, p := range g.Predecessors(id) {
				pp := placed[p]
				arrival := pp.end + o.dist[pp.site][site]
				if arrival > release {
					release = arrival
				}
			}
			start, ok := o.earliestGap(site, release, job.AbsDeadline, g.Complexity(id), placed)
			if !ok {
				continue
			}
			if best.site < 0 || start+g.Complexity(id) < best.end {
				best = tentative{site: site, start: start, end: start + g.Complexity(id)}
			}
		}
		if best.site < 0 {
			return false // atomic: nothing committed yet
		}
		placed[id] = best
	}
	for _, id := range orderedKeys(placed) {
		tv := placed[id]
		o.sites[tv.site].insert(interval{start: tv.start, end: tv.end, job: job.ID})
		if tv.end > job.CompletedAt {
			job.CompletedAt = tv.end
		}
	}
	return true
}

func orderedKeys(m map[dag.TaskID]tentative) []dag.TaskID {
	return determinism.SortedKeys(m)
}

// earliestGap finds the earliest start >= release such that
// [start, start+dur] fits in site's committed gaps plus this job's own
// tentative placements on the same site, and ends by deadline.
func (o *Oracle) earliestGap(site int, release, deadline, dur float64, placedSoFar map[dag.TaskID]tentative) (float64, bool) {
	occ := append([]interval(nil), o.sites[site].busy...)
	for _, k := range determinism.SortedKeys(placedSoFar) {
		if tv := placedSoFar[k]; tv.site == site {
			occ = append(occ, interval{start: tv.start, end: tv.end})
		}
	}
	sort.Slice(occ, func(i, j int) bool { return occ[i].start < occ[j].start })
	start := release
	for _, iv := range occ {
		if iv.end <= start+1e-9 {
			continue
		}
		if iv.start >= start+dur-1e-9 {
			break
		}
		start = iv.end
	}
	if start+dur <= deadline+1e-9 {
		return start, true
	}
	return 0, false
}

func (s *oracleSite) insert(iv interval) {
	i := sort.Search(len(s.busy), func(i int) bool { return s.busy[i].start >= iv.start })
	s.busy = append(s.busy, interval{})
	copy(s.busy[i+1:], s.busy[i:])
	s.busy[i] = iv
}

// Jobs lists submitted jobs.
func (o *Oracle) Jobs() []*core.Job { return o.jobs }

// GuaranteeRatio is accepted / submitted.
func (o *Oracle) GuaranteeRatio() float64 {
	if len(o.jobs) == 0 {
		return 0
	}
	acc := 0
	for _, j := range o.jobs {
		if j.Accepted() {
			acc++
		}
	}
	return float64(acc) / float64(len(o.jobs))
}
