package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/daggen"
	"repro/internal/graph"
	"repro/internal/workload"
)

func TestOracleAcceptsTrivially(t *testing.T) {
	o := NewOracle(fastLine(3))
	j := o.Submit(0, 0, chainJob(t, 2, 5), 50)
	if j.Outcome != core.AcceptedDistributed || j.CompletedAt != 10 {
		t.Fatalf("outcome %v completed %v", j.Outcome, j.CompletedAt)
	}
	if o.GuaranteeRatio() != 1 {
		t.Fatalf("ratio %v", o.GuaranteeRatio())
	}
}

func TestOracleSplitsParallelWork(t *testing.T) {
	// The case focused-addressing cannot handle: two 10-unit independent
	// tasks, deadline 16 — the oracle splits them across sites.
	o := NewOracle(fastLine(3))
	j := o.Submit(0, 0, parJob(t, 2, 10), 16)
	if j.Outcome != core.AcceptedDistributed {
		t.Fatalf("outcome %v", j.Outcome)
	}
}

func TestOracleRespectsPrecedenceDelays(t *testing.T) {
	// Chain of two 5-unit tasks on a 2-site topology with delay 3: if the
	// only way to fit is to split the chain across sites, the transfer
	// delay must be charged. Saturate site 0 after t=5 so task 2 must move.
	topo := graph.New(2)
	topo.MustAddEdge(0, 1, 3)
	o := NewOracle(topo)
	// Filler occupies site 0 [5, 100] and site 1 [0, 5].
	f1 := o.Submit(0, 0, chainJob(t, 1, 95), 1000)
	if !f1.Accepted() {
		t.Fatal("filler rejected")
	}
	// Chain 2x5 with deadline 14: t1 in site0's gap [0,5]; t2 cannot start
	// on site 1 before 5+3=8 → ends 13 <= 14: accepted. With deadline 12 it
	// must be rejected (t2 nowhere before 12; site0 busy until 100).
	ok := o.Submit(0, 0, chainJob(t, 2, 5), 14)
	if !ok.Accepted() {
		t.Fatalf("feasible chain rejected: %v", ok.Outcome)
	}
	bad := o.Submit(0, 0, chainJob(t, 2, 5), 12)
	if bad.Accepted() {
		t.Fatal("oracle ignored the transfer delay")
	}
}

func TestOracleRejectsAtomically(t *testing.T) {
	o := NewOracle(fastLine(2))
	// Impossible job: leaves no residue behind.
	j := o.Submit(0, 0, parJob(t, 5, 10), 12)
	if j.Accepted() {
		t.Fatal("impossible job accepted")
	}
	// Both sites must still be completely free.
	ok := o.Submit(1, 0, parJob(t, 2, 10), 11)
	if !ok.Accepted() {
		t.Fatalf("free capacity lost after rejection: %v", ok.Outcome)
	}
}

// TestOracleUpperBoundsRTDS: on the same workload the clairvoyant
// centralized scheduler must accept at least as much as the distributed
// protocol (it has strictly more information and zero overhead).
func TestOracleUpperBoundsRTDS(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		topo := graph.RandomConnected(12, 3, graph.DelayRange{Min: 0.05, Max: 0.3}, seed)
		spec := workload.Spec{
			Sites:       12,
			Horizon:     150,
			RatePerSite: 0.03,
			TaskSize:    8,
			Params:      daggen.Params{MinComplexity: 0.5, MaxComplexity: 5},
			Tightness:   2,
			Seed:        seed,
		}
		arrivals, err := workload.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := core.NewCluster(topo, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		o := NewOracle(topo)
		for _, a := range arrivals {
			if _, err := cl.Submit(a.At, a.Origin, a.Graph, a.Deadline); err != nil {
				t.Fatal(err)
			}
			o.Submit(a.At, a.Origin, a.Graph, a.Deadline)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		rtds := cl.Summarize().GuaranteeRatio
		oracle := o.GuaranteeRatio()
		if oracle < rtds-0.02 {
			t.Fatalf("seed %d: oracle %.3f below rtds %.3f", seed, oracle, rtds)
		}
	}
}

func TestOracleDeterministic(t *testing.T) {
	run := func() float64 {
		o := NewOracle(fastLine(4))
		rng := rand.New(rand.NewSource(5))
		at := 0.0
		for i := 0; i < 30; i++ {
			at += rng.Float64() * 5
			o.Submit(at, graph.NodeID(rng.Intn(4)), parJob(t, 1+rng.Intn(3), 5), 12)
		}
		return o.GuaranteeRatio()
	}
	if run() != run() {
		t.Fatal("oracle nondeterministic")
	}
}
