package core

import (
	"fmt"
	"sync"

	"repro/internal/core/membership"
	"repro/internal/dag"
	"repro/internal/determinism"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/routing/hier"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/sim/par"
	"repro/internal/simnet"
)

// Cluster is a network of RTDS sites on a deterministic discrete-event
// transport. Construction runs the PCS bootstrap (§7) to completion; jobs
// are then submitted at times relative to the post-bootstrap epoch.
type Cluster struct {
	cfg    Config
	mcfg   membership.Config // resolved membership configuration
	topo   *graph.Graph
	lay    *hier.Layout    // region/landmark structure; nil on flat clusters
	engine *sim.Engine     // serial kernel; nil on parallel and live clusters
	par    *par.Engine     // parallel kernel; nil on serial and live clusters
	ptr    *simnet.PartDES // set iff par is (for per-site clock reads)
	tr     simnet.Transport
	sites  []*Site

	epoch             float64 // virtual time when bootstrap finished
	bootstrapMessages int64
	bootstrapBytes    int64

	// nodeMode marks a single-site cluster (see Node): c.sites holds one
	// non-nil entry, peers live in other processes, and member-side state
	// for remotely-initiated jobs is reconstructed from protocol messages.
	nodeMode bool

	mu          sync.Mutex // guards records (needed on the live transport)
	jobs        []*Job
	jobIndex    map[string]*Job
	violations  []string
	events      []Event
	jobSeq      int
	disruptions int // fault-attributed anomalies (see protocolDrop, recordViolation)
}

// faultsOn reports whether this cluster runs with transport fault injection,
// which also arms the protocol's defensive machinery (lock leases,
// retransmitted aborts) and reclassifies violations as fault disruptions.
func (c *Cluster) faultsOn() bool {
	return c.cfg.Faults != nil && c.cfg.Faults.Enabled()
}

// membershipOn reports whether the membership layer (heartbeats, flooded
// notices, epoch-tagged repairs, runtime join) runs on this cluster.
func (c *Cluster) membershipOn() bool { return c.mcfg.Enabled }

// resilient reports whether the cluster runs under injected adversity —
// transport faults or membership churn. Resilient clusters arm the
// protocol's defensive machinery (member lock leases, retransmitted
// aborts, eager straggler unlocks) and account graceful-degradation drops
// as disruptions instead of violations: a message lost against a dead or
// mid-repair site is an expected consequence of churn, not a protocol bug.
func (c *Cluster) resilient() bool { return c.faultsOn() || c.membershipOn() }

// armFaults activates the configured fault plan once the bootstrap is done;
// plan times are relative to the epoch. Failure *detection* is no longer
// scripted here: the membership layer's heartbeats and suspicion timeouts
// (armMembership) discover crashes through the protocol itself.
func (c *Cluster) armFaults() {
	if !c.faultsOn() {
		return
	}
	c.tr.SetFaults(*c.cfg.Faults, c.epoch)
}

// armMembership starts each owned site's membership manager inside that
// site's execution context. Shared by the DES and live constructors and by
// Node.Seal.
func (c *Cluster) armMembership() {
	if !c.membershipOn() {
		return
	}
	for _, s := range c.sites {
		if s == nil || s.member == nil {
			continue
		}
		m := s.member
		if m.Started() || m.Joining() {
			continue // the join path started it during the handshake
		}
		c.tr.After(s.id, 0, m.Start)
	}
}

// MembershipSnapshots reports each owned site's membership view. Only safe
// once the cluster has quiesced (sites own their managers); experiments
// and tests call it after Run.
func (c *Cluster) MembershipSnapshots() []membership.Snapshot {
	var out []membership.Snapshot
	for _, s := range c.sites {
		if s != nil && s.member != nil {
			out = append(out, s.member.Snapshot())
		}
	}
	return out
}

// protocolDrop reports an anomaly on a graceful-degradation path (a dropped
// un-routable message, a refused commit of an unknown job, lost plan
// fragments). On a faulty cluster these are expected consequences of the
// injected faults and only counted; on a faultless cluster they indicate a
// protocol bug and are reported as violations so tests fail loudly.
func (c *Cluster) protocolDrop(site graph.NodeID, msg string) {
	if !c.resilient() {
		c.recordViolation(msg)
		return
	}
	c.mu.Lock()
	c.disruptions++
	c.mu.Unlock()
	c.event(site, "", EvMsgDropped, msg)
}

// FaultDisruptions reports how many anomalies were attributed to injected
// faults (dropped protocol messages, causality misses from lost results,
// torn-down executions). Always 0 on a faultless cluster.
func (c *Cluster) FaultDisruptions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disruptions
}

// eventLimit is the livelock backstop on discrete-event clusters.
const eventLimit = 200_000_000

// NewCluster builds a DES-backed cluster and runs the PCS construction.
// Config.KernelWorkers selects the kernel: 0 the serial reference engine,
// >= 1 the conservative parallel kernel (same event order, same tables).
func NewCluster(topo *graph.Graph, cfg Config) (*Cluster, error) {
	if err := cfg.validate(topo.Len()); err != nil {
		return nil, err
	}
	if !topo.Connected() {
		return nil, fmt.Errorf("core: topology is not connected")
	}
	mcfg := cfg.membershipConfig()
	if mcfg.Enabled && mcfg.Horizon <= 0 {
		return nil, fmt.Errorf("core: membership on a discrete-event cluster needs " +
			"Config.Membership.Horizon, or the heartbeat timers keep the event queue alive forever")
	}
	c := &Cluster{
		cfg:      cfg,
		mcfg:     mcfg,
		topo:     topo,
		jobIndex: make(map[string]*Job),
	}
	if cfg.Hier {
		lay, err := hier.NewLayout(topo)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		c.lay = lay
	}
	if cfg.KernelWorkers > 0 {
		workers := cfg.KernelWorkers
		if cfg.Faults != nil && (cfg.Faults.Loss > 0 || cfg.Faults.MaxJitter > 0) {
			// Loss/jitter draws come from one sequential random source in
			// global send order; only a single partition reproduces it.
			// Crash-only plans are pure in (site, time) and parallelize.
			workers = 1
		}
		if workers > topo.Len() {
			workers = topo.Len()
		}
		part := topo.Partition(workers)
		pe, err := par.New(part, topo.MinCrossDelay(part))
		if err != nil {
			return nil, fmt.Errorf("core: parallel kernel: %w", err)
		}
		pe.SetEventLimit(eventLimit)
		c.par = pe
		c.ptr = simnet.NewPartDES(pe, topo, part)
		c.tr = c.ptr
	} else {
		engine := sim.New()
		engine.SetEventLimit(eventLimit)
		c.engine = engine
		c.tr = simnet.NewDES(engine, topo)
	}
	if c.lay != nil {
		// Count traversals that cross a region boundary: the headline claim
		// of the hierarchy is that region-local work generates none.
		assign := c.lay.Assign
		c.tr.Stats().SetBoundary(func(from, to graph.NodeID) bool {
			return assign[from] != assign[to]
		})
	}
	c.sites = make([]*Site, topo.Len())
	for id := graph.NodeID(0); int(id) < topo.Len(); id++ {
		s := newSite(id, c)
		c.sites[id] = s
		c.tr.Attach(id, s.handle)
	}
	for _, s := range c.sites {
		if s.boot != nil {
			s.boot.Start()
		} else {
			s.rnode.Start()
		}
	}
	if err := c.Run(); err != nil {
		return nil, fmt.Errorf("core: PCS bootstrap: %w", err)
	}
	for _, s := range c.sites {
		if s.boot != nil {
			if !s.boot.Done() {
				return nil, fmt.Errorf("core: site %d never finished hierarchical bootstrap (missing regions %v)",
					s.id, s.boot.MissingRegions())
			}
			s.adoptHier(s.boot.Finish())
		}
		if s.table == nil {
			return nil, fmt.Errorf("core: site %d never finished PCS construction", s.id)
		}
	}
	c.epoch = c.tr.Now()
	c.bootstrapMessages = c.tr.Stats().Messages()
	c.bootstrapBytes = c.tr.Stats().Bytes()
	c.tr.Stats().Reset()
	c.armFaults()
	c.armMembership()
	return c, nil
}

// Submit schedules a job arrival `at` time units after the epoch. The
// deadline is relative to arrival. Returns the job record, which is filled
// in as the simulation runs.
func (c *Cluster) Submit(at float64, origin graph.NodeID, g *dag.Graph, relDeadline float64) (*Job, error) {
	if at < 0 {
		return nil, fmt.Errorf("core: negative submission time %v", at)
	}
	if int(origin) < 0 || int(origin) >= len(c.sites) {
		return nil, fmt.Errorf("core: origin site %d out of range", origin)
	}
	if relDeadline <= 0 {
		return nil, fmt.Errorf("core: non-positive relative deadline %v", relDeadline)
	}
	c.mu.Lock()
	c.jobSeq++
	job := &Job{
		ID:          fmt.Sprintf("j%d@%d", c.jobSeq, origin),
		Graph:       g,
		Origin:      origin,
		Arrival:     c.epoch + at,
		AbsDeadline: c.epoch + at + relDeadline,
		remaining:   make(map[dag.TaskID]bool, g.Len()),
	}
	for _, id := range g.TaskIDs() {
		job.remaining[id] = true
	}
	c.jobs = append(c.jobs, job)
	c.jobIndex[job.ID] = job
	c.mu.Unlock()
	site := c.sites[origin]
	if c.par != nil {
		c.par.Schedule(int(origin), int(origin), job.Arrival, func() { site.jobArrives(job) })
	} else {
		c.engine.AtFixed(job.Arrival, func() { site.jobArrives(job) })
	}
	return job, nil
}

// Run processes all pending events (arrivals, protocol traffic, execution).
func (c *Cluster) Run() error {
	if c.par != nil {
		return c.par.Run()
	}
	return c.engine.Run()
}

// RunUntil advances the simulation to epoch-relative time t.
func (c *Cluster) RunUntil(t float64) error {
	if c.par != nil {
		return c.par.RunUntil(c.epoch + t)
	}
	return c.engine.RunUntil(c.epoch + t)
}

// Now reports the current epoch-relative time.
func (c *Cluster) Now() float64 { return c.tr.Now() - c.epoch }

// nowFor reports the virtual time site id's execution context observes. On
// the serial and live transports that is the transport-wide clock; on the
// parallel kernel it is the site's partition clock — the only clock an
// event closure may consult while partitions run concurrently.
func (c *Cluster) nowFor(id graph.NodeID) float64 {
	if c.ptr != nil {
		return c.ptr.NowFor(id)
	}
	return c.tr.Now()
}

// virtualTime reports whether the cluster runs on a discrete-event kernel
// (serial or parallel), as opposed to a wall-clock transport.
func (c *Cluster) virtualTime() bool { return c.engine != nil || c.par != nil }

// Jobs returns all submitted job records in submission order.
func (c *Cluster) Jobs() []*Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Job(nil), c.jobs...)
}

// JobStatus is a synchronized snapshot of one job's decision state — safe
// to read while the cluster is still running, unlike the live Job record,
// whose fields are written by initiator goroutines on wall-clock
// transports. The node control API and the load harness poll these.
type JobStatus struct {
	ID          string       `json:"id"`
	Origin      graph.NodeID `json:"origin"`
	Arrival     float64      `json:"arrival"`
	AbsDeadline float64      `json:"abs_deadline"`
	Outcome     Outcome      `json:"-"`
	OutcomeName string       `json:"outcome"`
	RejectStage RejectStage  `json:"reject_stage,omitempty"`
	DecisionAt  float64      `json:"decision_at"`
	Done        bool         `json:"done"`
	CompletedAt float64      `json:"completed_at"`
	ACSSize     int          `json:"acs_size"`
	NumProcs    int          `json:"num_procs"`
}

// JobStatuses snapshots every locally-submitted job under the cluster
// lock, in submission order.
func (c *Cluster) JobStatuses() []JobStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]JobStatus, len(c.jobs))
	for i, j := range c.jobs {
		out[i] = JobStatus{
			ID:          j.ID,
			Origin:      j.Origin,
			Arrival:     j.Arrival,
			AbsDeadline: j.AbsDeadline,
			Outcome:     j.Outcome,
			OutcomeName: j.Outcome.String(),
			RejectStage: j.RejectStage,
			DecisionAt:  j.DecisionAt,
			Done:        j.Done,
			CompletedAt: j.CompletedAt,
			ACSSize:     j.ACSSize,
			NumProcs:    j.NumProcs,
		}
	}
	return out
}

// Stats exposes the post-bootstrap communication counters.
func (c *Cluster) Stats() *simnet.Stats { return c.tr.Stats() }

// BootstrapCost reports the messages and bytes spent constructing the PCS.
func (c *Cluster) BootstrapCost() (messages, bytes int64) {
	return c.bootstrapMessages, c.bootstrapBytes
}

// routedTTL bounds the hop count of one routed protocol message. Flat
// clusters derive it from the sphere radius (protocol traffic stays inside
// spheres); hierarchical clusters route across regions along landmark
// gradients whose length is bounded by the network, not the radius, so the
// bound is the loop guard 4n+8 — gradient routing is loop-free, the TTL
// only catches a corrupted table.
func (c *Cluster) routedTTL() int {
	if c.lay != nil {
		return 4*c.topo.Len() + 8
	}
	return 4*c.cfg.Radius + 8
}

// Layout exposes the region/landmark structure (nil on flat clusters).
func (c *Cluster) Layout() *hier.Layout { return c.lay }

// BootstrapRounds reports the interruption bound the routing bootstrap ran
// under: the flat protocol's global round count, or the largest per-region
// round count of the hierarchy.
func (c *Cluster) BootstrapRounds() int {
	if c.lay != nil {
		return c.lay.MaxRounds()
	}
	return routing.RoundsForRadius(c.cfg.Radius)
}

// RoutingState reports the largest per-site routing-state footprint across
// the cluster's sites — the hierarchy's O(√n) headline versus the flat
// table's O(n). Only safe once the cluster has quiesced.
func (c *Cluster) RoutingState() (maxBytes, maxEntries int) {
	for _, s := range c.sites {
		if s == nil || s.table == nil {
			continue
		}
		if b := s.table.StateBytes(); b > maxBytes {
			maxBytes = b
		}
		if e := s.table.StateEntries(); e > maxEntries {
			maxEntries = e
		}
	}
	return maxBytes, maxEntries
}

// RemoteRegionViews reports the cross-region liveness digests a landmark
// has received from its adjacent peers (tests and observability; empty for
// non-landmarks and flat clusters).
func (c *Cluster) RemoteRegionViews(id graph.NodeID) map[int][]membership.Entry {
	out := make(map[int][]membership.Entry)
	s := c.sites[id]
	if s == nil {
		return out
	}
	for _, r := range determinism.SortedKeys(s.remoteRegions) {
		out[r] = append([]membership.Entry(nil), s.remoteRegions[r]...)
	}
	return out
}

// EventsProcessed reports how many discrete events the underlying engine has
// fired (0 on the live transport, which has no event queue). The experiment
// harness aggregates this into its events/sec throughput metric.
func (c *Cluster) EventsProcessed() int64 {
	if c.par != nil {
		return c.par.Processed()
	}
	if c.engine == nil {
		return 0
	}
	return c.engine.Processed()
}

// Violations lists causality violations detected during execution. A sound
// run has none; tests assert emptiness.
func (c *Cluster) Violations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.violations...)
}

// AllIdle reports whether every site has released its lock, drained its
// deferred queue and closed its transactions — the expected state once the
// event queue is empty. Tests assert it. This reads site state directly and
// is only safe on the single-threaded DES transport; LiveCluster shadows it
// with a probe routed through each site's execution context.
func (c *Cluster) AllIdle() bool {
	for _, s := range c.sites {
		if s == nil { // node mode: only the owned site is local
			continue
		}
		if s.locked() || len(s.deferred) > 0 || len(s.txns) > 0 {
			return false
		}
	}
	return true
}

// SiteSphere exposes a site's PCS (for tests and experiments).
func (c *Cluster) SiteSphere(id graph.NodeID) []graph.NodeID {
	s := c.sites[id]
	return append([]graph.NodeID(nil), s.pcs...)
}

// SitePlanReservations exposes a site's committed reservations (for tests).
func (c *Cluster) SitePlanReservations(id graph.NodeID) []schedule.Reservation {
	return c.sites[id].plan.Reservations()
}

// TaskExecution describes one task's realized execution: which site ran it
// and the bounds of its execution (a contiguous slot on the non-preemptive
// plan, the first/last fragment on the preemptive plan).
type TaskExecution struct {
	Job   *Job
	Task  dag.TaskID
	Site  graph.NodeID
	Start float64
	End   float64
}

// Executions reports every realized task execution across all sites, in a
// deterministic order. Used by the internal/verify oracle and tests.
func (c *Cluster) Executions() []TaskExecution {
	var out []TaskExecution
	for _, s := range c.sites {
		if s == nil { // node mode: only the owned site is local
			continue
		}
		// Preemptive bounds come from the plan's fragments.
		type bounds struct{ start, end float64 }
		var fragBounds map[string]map[int]bounds
		if s.plan.Preemptive() {
			fragBounds = make(map[string]map[int]bounds)
			for _, f := range s.plan.Reservations() {
				byTask := fragBounds[f.Job]
				if byTask == nil {
					byTask = make(map[int]bounds)
					fragBounds[f.Job] = byTask
				}
				b, ok := byTask[f.Task]
				if !ok {
					b = bounds{start: f.Start, end: f.End}
				} else {
					if f.Start < b.start {
						b.start = f.Start
					}
					if f.End > b.end {
						b.end = f.End
					}
				}
				byTask[f.Task] = b
			}
		}
		for _, jobID := range determinism.SortedKeys(s.exec) {
			e := s.exec[jobID]
			if e.cancelled {
				continue
			}
			for _, id := range determinism.SortedKeys(e.reservations) {
				ti := int(id)
				te := TaskExecution{Job: e.job, Task: id, Site: s.id}
				if s.plan.Preemptive() {
					b := fragBounds[jobID][ti]
					te.Start, te.End = b.start, b.end
				} else {
					r := e.reservations[id]
					te.Start, te.End = r.Start, r.End
				}
				out = append(out, te)
			}
		}
	}
	return out
}

func (c *Cluster) jobByID(id string) *Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobIndex[id]
}

// noteJobACS and noteJobProcs record a job's mapping shape under the
// record lock: on wall-clock transports these fields are written by the
// initiator's goroutine while status snapshots read them concurrently.
func (c *Cluster) noteJobACS(job *Job, n int) {
	c.mu.Lock()
	job.ACSSize = n
	c.mu.Unlock()
}

func (c *Cluster) noteJobProcs(job *Job, n int) {
	c.mu.Lock()
	job.NumProcs = n
	c.mu.Unlock()
}

func (c *Cluster) recordDecision(job *Job, outcome Outcome, stage RejectStage, at float64) {
	c.mu.Lock()
	if job.Outcome != Pending {
		c.mu.Unlock()
		panic(fmt.Sprintf("core: job %s decided twice (%v then %v)", job.ID, job.Outcome, outcome))
	}
	job.Outcome = outcome
	job.RejectStage = stage
	job.DecisionAt = at
	c.mu.Unlock()
	detail := outcome.String()
	if stage != "" {
		detail += "/" + string(stage)
	}
	c.event(job.Origin, job.ID, EvDecided, detail)
}

func (c *Cluster) recordTaskDone(job *Job, task dag.TaskID, at float64) {
	c.mu.Lock()
	if !job.remaining[task] {
		c.mu.Unlock()
		return
	}
	delete(job.remaining, task)
	if at > job.CompletedAt {
		job.CompletedAt = at
	}
	done := len(job.remaining) == 0
	if done {
		job.Done = true
	}
	c.mu.Unlock()
	c.event(job.Origin, job.ID, EvTaskDone, fmt.Sprintf("t%d at %.3f", task, at))
	if done {
		c.event(job.Origin, job.ID, EvJobDone, fmt.Sprintf("completed %.3f", job.CompletedAt))
	}
}

func (c *Cluster) recordViolation(msg string) {
	if c.resilient() {
		// Under injected faults or membership churn a causality miss (a
		// slot firing without its lost inputs) is an expected disruption,
		// not a protocol bug; keep Violations reserved for genuine
		// correctness failures so faulty experiment runs remain checkable.
		c.mu.Lock()
		c.disruptions++
		c.mu.Unlock()
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.violations = append(c.violations, msg)
}

// Summary aggregates a run's outcomes.
type Summary struct {
	Submitted            int
	AcceptedLocal        int
	AcceptedDistributed  int
	Rejected             int
	Undecided            int // still Pending after the run (initiator died mid-transaction)
	RejectedByStage      map[RejectStage]int
	CompletedOnTime      int
	CompletedLate        int
	AcceptedNotCompleted int
	GuaranteeRatio       float64 // accepted / submitted
	MeanDecisionLatency  float64 // over decided jobs
	MeanACSSize          float64 // over distributed attempts
	Messages             int64
	Bytes                int64
	MessagesPerJob       float64 // per-job protocol traffic (control excluded)
	ControlMessages      int64   // membership + route-repair traversals (included in Messages)
	ControlBytes         int64
	Dropped              int64 // traversals discarded by the fault injector
	Disruptions          int   // fault-attributed protocol anomalies
	// Routing-state footprint (largest per-site table) and cross-region
	// traffic. CrossRegionMessages is counted only on hierarchical clusters
	// (flat clusters install no region boundary) and is always 0 when every
	// submitted job resolved inside its origin's region.
	RoutingTableBytes   int
	RoutingEntries      int
	CrossRegionMessages int64
}

// Summarize computes the run summary. Call it after Run has drained.
func (c *Cluster) Summarize() Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Summary{RejectedByStage: make(map[RejectStage]int)}
	var latencySum float64
	var latencyN int
	var acsSum, acsN float64
	for _, j := range c.jobs {
		s.Submitted++
		switch j.Outcome {
		case AcceptedLocal:
			s.AcceptedLocal++
		case AcceptedDistributed:
			s.AcceptedDistributed++
		case Rejected:
			s.Rejected++
			s.RejectedByStage[j.RejectStage]++
		case Pending:
			s.Undecided++
		}
		if j.Outcome != Pending {
			latencySum += j.DecisionAt - j.Arrival
			latencyN++
		}
		if j.ACSSize > 0 {
			acsSum += float64(j.ACSSize)
			acsN++
		}
		if j.Accepted() {
			switch {
			case j.MetDeadline():
				s.CompletedOnTime++
			case j.Done:
				s.CompletedLate++
			default:
				s.AcceptedNotCompleted++
			}
		}
	}
	if s.Submitted > 0 {
		s.GuaranteeRatio = float64(s.AcceptedLocal+s.AcceptedDistributed) / float64(s.Submitted)
		// Per-job cost excludes control-plane traffic: heartbeats scale with
		// time and topology, not with jobs, and folding them in would let a
		// quiet cluster look expensive per job.
		s.MessagesPerJob = float64(c.tr.Stats().Messages()-c.tr.Stats().ControlMessages()) /
			float64(s.Submitted)
	}
	if latencyN > 0 {
		s.MeanDecisionLatency = latencySum / float64(latencyN)
	}
	if acsN > 0 {
		s.MeanACSSize = acsSum / acsN
	}
	s.Messages = c.tr.Stats().Messages()
	s.Bytes = c.tr.Stats().Bytes()
	s.ControlMessages = c.tr.Stats().ControlMessages()
	s.ControlBytes = c.tr.Stats().ControlBytes()
	s.Dropped = c.tr.Stats().Dropped()
	s.Disruptions = c.disruptions
	s.CrossRegionMessages = c.tr.Stats().CrossMessages()
	for _, site := range c.sites {
		if site == nil || site.table == nil {
			continue
		}
		if b := site.table.StateBytes(); b > s.RoutingTableBytes {
			s.RoutingTableBytes = b
		}
		if e := site.table.StateEntries(); e > s.RoutingEntries {
			s.RoutingEntries = e
		}
	}
	return s
}

// String renders the summary as a compact report.
func (s Summary) String() string {
	stages := determinism.SortedKeys(s.RejectedByStage)
	out := fmt.Sprintf(
		"jobs=%d accepted=%d (local=%d dist=%d) rejected=%d ratio=%.3f ontime=%d late=%d msgs=%d bytes=%d msgs/job=%.1f",
		s.Submitted, s.AcceptedLocal+s.AcceptedDistributed, s.AcceptedLocal,
		s.AcceptedDistributed, s.Rejected, s.GuaranteeRatio,
		s.CompletedOnTime, s.CompletedLate, s.Messages, s.Bytes, s.MessagesPerJob)
	if s.Undecided > 0 {
		out += fmt.Sprintf(" undecided=%d", s.Undecided)
	}
	if s.ControlMessages > 0 {
		out += fmt.Sprintf(" control=%d", s.ControlMessages)
	}
	if s.Dropped > 0 {
		out += fmt.Sprintf(" dropped=%d", s.Dropped)
	}
	if s.CrossRegionMessages > 0 {
		out += fmt.Sprintf(" xregion=%d", s.CrossRegionMessages)
	}
	if s.Disruptions > 0 {
		out += fmt.Sprintf(" disruptions=%d", s.Disruptions)
	}
	for _, st := range stages {
		out += fmt.Sprintf(" reject[%s]=%d", st, s.RejectedByStage[st])
	}
	return out
}
