package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/schedule"
)

// finishValidation computes the maximum coupling between ACS members and
// logical processors (§10); a perfect matching on the processors yields the
// permutation that executes the job (§11).
func (s *Site) finishValidation(t *txn) {
	members := append([]graph.NodeID{s.id}, t.acs...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

	b := matching.NewBipartite(len(members), t.tm.NumProcs())
	for li, m := range members {
		for _, proc := range t.endorse[m] {
			if proc >= 0 && proc < t.tm.NumProcs() {
				b.AddEdge(li, proc)
			}
		}
	}
	res := b.MaximumMatching()
	s.cluster.event(s.id, t.job.ID, EvValidated,
		fmt.Sprintf("coupling=%d/%d", res.Size, t.tm.NumProcs()))
	if !res.PerfectOnRight() {
		s.finishTxn(t, Rejected, StageMatching)
		return
	}

	t.phase = phaseCommitting
	t.assignment = make(map[int]graph.NodeID, t.tm.NumProcs())
	procOf := make(map[graph.NodeID]int, len(members))
	for _, m := range members {
		procOf[m] = -1
	}
	for proc, li := range res.RightAssignment() {
		t.assignment[proc] = members[li]
		procOf[members[li]] = proc
	}
	taskSites := make(map[dag.TaskID]graph.NodeID, t.job.Graph.Len())
	for _, id := range t.job.Graph.TaskIDs() {
		taskSites[id] = t.assignment[t.tm.Assign[id].Proc]
	}

	// The initiator endorses its share first: if even the local insertion
	// fails there is no point dispatching code.
	t.selfOK = true
	if myProc := procOf[s.id]; myProc >= 0 {
		t.selfOK = s.commitShare(t.job, myProc, t.job.Graph, taskSites)
	} else {
		delete(s.memberTickets, t.job.ID)
	}
	if !t.selfOK {
		s.finishTxn(t, Rejected, StageCommit)
		return
	}

	t.commitWait = make(map[graph.NodeID]bool)
	for _, m := range t.acs {
		proc := procOf[m]
		msg := commitMsg{Job: t.job.ID, Initiator: s.id, Proc: proc}
		if proc >= 0 {
			n := len(t.tm.Tasks(t.job.Graph, proc))
			msg.Graph = t.job.Graph
			msg.TaskSites = taskSites
			msg.CodeBytes = n * s.cluster.cfg.CodeBytesPerTask
			t.commitWait[m] = true
		}
		s.sendTo(m, msg)
	}
	t.commitsSent = true
	s.cluster.event(s.id, t.job.ID, EvCommit, fmt.Sprintf("executing=%d", len(t.commitWait)+1))
	if len(t.commitWait) == 0 {
		s.commitResolved(t)
		return
	}
	// Commit timeout, mirroring the enrollment window: a lost commit or
	// commitAck resolves the transaction as a failed commit (abort
	// everywhere) instead of wedging the initiator's lock forever.
	t.cancelTimer = s.cluster.tr.After(s.id, 2*t.omega+s.cluster.cfg.EnrollSlack,
		func() { s.commitTimeout(t) })
}

// commitTimeout resolves the commit phase when executing members went
// silent. The silent members may or may not have committed their shares;
// aborting everywhere is the only safe resolution, and on faulty clusters
// the abort unlocks are retransmitted until acknowledged.
func (s *Site) commitTimeout(t *txn) {
	if t.phase != phaseCommitting {
		return
	}
	t.cancelTimer = nil
	if len(t.commitWait) == 0 {
		return
	}
	t.comTimeout = true
	t.commitFail = true
	s.cluster.event(s.id, t.job.ID, EvPhaseTimeout,
		fmt.Sprintf("commit missing=%d", len(t.commitWait)))
	s.commitResolved(t)
}

// commitShare commits this site's cached ticket for a logical processor and
// starts execution. It reports false when the validated slots are no longer
// honourable (time has passed them).
func (s *Site) commitShare(job *Job, proc int, g *dag.Graph, taskSites map[dag.TaskID]graph.NodeID) bool {
	tickets := s.memberTickets[job.ID]
	delete(s.memberTickets, job.ID)
	tk := tickets[proc]
	if tk == nil {
		return false
	}
	now := s.now()
	for _, r := range tk.Requests {
		// A slot that should already have started cannot be honoured; the
		// release padding (§13) makes this rare, not impossible.
		if r.Release < now-1e-9 && !s.plan.Preemptive() {
			if pl := placementFor(tk, r.Task); pl != nil && pl.Start < now-1e-9 {
				return false
			}
		}
	}
	if err := s.plan.Commit(tk); err != nil {
		return false
	}
	s.beginExecution(job, taskSites, tk)
	return true
}

func placementFor(tk *schedule.Ticket, task int) *schedule.Reservation {
	for i := range tk.Placements {
		if tk.Placements[i].Task == task {
			return &tk.Placements[i]
		}
	}
	return nil
}

// onCommit handles the permutation at an ACS member (§11): endorse the
// assigned logical processor (or be released), then unlock — "the lock of j
// is immediately released after the insertion of all tasks of Ti".
func (s *Site) onCommit(m commitMsg) {
	if s.lockedBy != m.Initiator || s.lockJob != m.Job {
		// Defensive: refuse rather than stay silent so the initiator's
		// commit phase always resolves.
		if m.Proc >= 0 {
			s.sendTo(m.Initiator, commitAck{Job: m.Job, Member: s.id, OK: false})
		}
		return
	}
	if m.Proc < 0 {
		delete(s.memberTickets, m.Job)
		s.unlock()
		return
	}
	job := s.cluster.jobByID(m.Job)
	if job == nil {
		// The job record is gone (possible only under injected faults, when
		// messages survive their transaction). Refuse instead of crashing.
		s.cluster.protocolDrop(s.id, fmt.Sprintf(
			"site %d: commit for unknown job %s", s.id, m.Job))
		s.sendTo(m.Initiator, commitAck{Job: m.Job, Member: s.id, OK: false})
		s.unlock()
		return
	}
	ok := s.commitShare(job, m.Proc, m.Graph, m.TaskSites)
	s.sendTo(m.Initiator, commitAck{Job: m.Job, Member: s.id, OK: ok})
	s.unlock()
}

// onCommitAck finalizes the transaction at the initiator once every
// executing member confirmed (or refused) its insertion.
func (s *Site) onCommitAck(m commitAck) {
	t, ok := s.txns[m.Job]
	if !ok || t.phase != phaseCommitting || !t.commitWait[m.Member] {
		return
	}
	delete(t.commitWait, m.Member)
	if !m.OK {
		t.commitFail = true
	}
	if len(t.commitWait) == 0 {
		if t.cancelTimer != nil {
			t.cancelTimer()
			t.cancelTimer = nil
		}
		s.commitResolved(t)
	}
}

func (s *Site) commitResolved(t *txn) {
	if t.commitFail {
		// Abort everywhere: members cancel any reservations of the job.
		for _, m := range t.acs {
			s.sendTo(m, unlockMsg{Job: t.job.ID, From: s.id, Abort: true})
		}
		if s.cluster.faultsOn() {
			s.trackAbort(t)
		}
		s.cancelExecution(t.job.ID)
		s.plan.CancelJob(t.job.ID)
		stage := StageCommit
		if t.comTimeout {
			stage = StageCommitTimeout
		}
		s.finishTxn(t, Rejected, stage)
		return
	}
	s.finishTxn(t, AcceptedDistributed, "")
}

// trackAbort records which executing members must acknowledge the abort
// unlock just sent, and arms the retransmission timer. Only members that
// were dispatched a real share can hold reservations; release-only members
// need no acknowledgement (their lock lease is backstop enough).
func (s *Site) trackAbort(t *txn) {
	var executing []graph.NodeID
	for _, m := range t.acs {
		if t.assignment != nil {
			for _, site := range t.assignment {
				if site == m {
					executing = append(executing, m)
					break
				}
			}
		}
	}
	if len(executing) == 0 {
		return
	}
	ar := &abortRetry{members: executing}
	s.aborts[t.job.ID] = ar
	s.scheduleAbortRetry(t.job.ID, ar)
}

func (s *Site) scheduleAbortRetry(job string, ar *abortRetry) {
	interval := 4*s.sphereDiam + s.cluster.cfg.EnrollSlack
	if f := s.cluster.cfg.Faults; f != nil {
		interval += 2 * f.MaxJitter
	}
	ar.cancel = s.cluster.tr.After(s.id, interval, func() { s.abortRetryFire(job, ar) })
}

// abortRetryFire retransmits the abort unlock to members that have not
// acknowledged it. Retries are bounded so runs with permanently dead
// members still terminate; giving up is traced.
func (s *Site) abortRetryFire(job string, ar *abortRetry) {
	ar.cancel = nil
	if len(ar.members) == 0 {
		delete(s.aborts, job)
		return
	}
	ar.tries++
	if ar.tries > maxAbortTries {
		s.cluster.event(s.id, job, EvAbortRetry,
			fmt.Sprintf("gave up on %d members after %d tries", len(ar.members), maxAbortTries))
		delete(s.aborts, job)
		return
	}
	s.cluster.event(s.id, job, EvAbortRetry,
		fmt.Sprintf("try %d to %d members", ar.tries, len(ar.members)))
	for _, m := range ar.members {
		s.sendTo(m, unlockMsg{Job: job, From: s.id, Abort: true})
	}
	s.scheduleAbortRetry(job, ar)
}

// onUnlockAck clears one member from an abort's retransmission set.
func (s *Site) onUnlockAck(m unlockAck) {
	ar := s.aborts[m.Job]
	if ar == nil {
		return
	}
	for i, member := range ar.members {
		if member == m.Member {
			ar.members = append(ar.members[:i], ar.members[i+1:]...)
			break
		}
	}
	if len(ar.members) == 0 {
		if ar.cancel != nil {
			ar.cancel()
		}
		delete(s.aborts, m.Job)
	}
}

// finishTxn records the decision, unlocks the ACS when the members have not
// yet received their commit/release messages, unlocks the initiator, and
// replays deferred work.
func (s *Site) finishTxn(t *txn, outcome Outcome, stage string) {
	if t.phase == phaseDone {
		return
	}
	t.phase = phaseDone
	if t.cancelTimer != nil {
		t.cancelTimer()
		t.cancelTimer = nil
	}
	delete(s.txns, t.job.ID)
	if outcome == Rejected && !t.commitsSent {
		// "the DAG is rejected and ACS members are unlocked" (§10). This
		// also covers a commit that failed at the initiator itself before
		// anything was dispatched.
		for _, m := range t.acs {
			s.sendTo(m, unlockMsg{Job: t.job.ID, From: s.id})
		}
		delete(s.memberTickets, t.job.ID)
	}
	s.cluster.recordDecision(t.job, outcome, stage, s.now())
	s.unlock()
}

// onUnlock releases a member (rejection path) or aborts a committed share.
// On faulty clusters aborts are acknowledged so the initiator can stop
// retransmitting; the handler is idempotent, so duplicates are harmless.
func (s *Site) onUnlock(m unlockMsg) {
	if m.Abort {
		s.cancelExecution(m.Job)
		s.plan.CancelJob(m.Job)
		if s.cluster.faultsOn() {
			s.sendTo(m.From, unlockAck{Job: m.Job, Member: s.id})
		}
	}
	delete(s.memberTickets, m.Job)
	if s.locked() && s.lockJob == m.Job {
		s.unlock()
	}
}

// ---------------------------------------------------------------------------
// Distributed execution (§11) with the §13 communication-delay realism:
// results travel between sites and tasks must not start before their inputs.

// beginExecution registers this site's share of a job and schedules its
// execution timers.
func (s *Site) beginExecution(job *Job, taskSites map[dag.TaskID]graph.NodeID, tk *schedule.Ticket) {
	e := s.exec[job.ID]
	if e == nil {
		e = &execJob{
			job:          job,
			g:            job.Graph,
			taskSites:    taskSites,
			reservations: make(map[dag.TaskID]schedule.Reservation),
			arrived:      make(map[[2]dag.TaskID]bool),
			completed:    make(map[dag.TaskID]bool),
		}
		s.exec[job.ID] = e
	}
	if s.plan.Preemptive() {
		for _, r := range tk.Requests {
			e.reservations[dag.TaskID(r.Task)] = schedule.Reservation{Job: job.ID, Task: r.Task}
		}
		s.rescheduleAllExec()
		return
	}
	now := s.now()
	for _, pl := range tk.Placements {
		pl := pl
		id := dag.TaskID(pl.Task)
		e.reservations[id] = pl
		startDelay := math.Max(0, pl.Start-now)
		e.timers = append(e.timers,
			s.cluster.tr.After(s.id, startDelay, func() { s.onTaskStart(e, id, false) }),
			s.cluster.tr.After(s.id, math.Max(0, pl.End-now), func() { s.onTaskComplete(e, id, pl.End) }),
		)
	}
}

// rescheduleAllExec recomputes completion timers from the preemptive plan's
// current EDF schedule. New admissions can only postpone completions, never
// rewrite the executed past (releases are never earlier than commit time),
// so cancelling and re-deriving all pending timers is safe.
func (s *Site) rescheduleAllExec() {
	for _, e := range s.exec {
		for _, c := range e.timers {
			c()
		}
		e.timers = nil
	}
	completion := make(map[string]map[int]float64)
	for _, frag := range s.plan.Reservations() {
		byTask := completion[frag.Job]
		if byTask == nil {
			byTask = make(map[int]float64)
			completion[frag.Job] = byTask
		}
		if frag.End > byTask[frag.Task] {
			byTask[frag.Task] = frag.End
		}
	}
	now := s.now()
	jobIDs := make([]string, 0, len(s.exec))
	for id := range s.exec {
		jobIDs = append(jobIDs, id)
	}
	sort.Strings(jobIDs)
	var lost []string
	for _, jobID := range jobIDs {
		e := s.exec[jobID]
		taskIDs := make([]int, 0, len(e.reservations))
		for t := range e.reservations {
			taskIDs = append(taskIDs, int(t))
		}
		sort.Ints(taskIDs)
		for _, ti := range taskIDs {
			id := dag.TaskID(ti)
			if e.completed[id] {
				continue
			}
			end, ok := completion[jobID][ti]
			if !ok {
				// The plan no longer holds this job's fragments (a stale
				// abort crossed a commit under faults). Tear the execution
				// down instead of crashing the cluster; on a faultless run
				// this is still reported as a violation.
				s.cluster.protocolDrop(s.id, fmt.Sprintf(
					"site %d lost fragments of %s/t%d", s.id, jobID, ti))
				s.cluster.event(s.id, jobID, EvExecAborted,
					fmt.Sprintf("t%d fragments missing", ti))
				lost = append(lost, jobID)
				break
			}
			e.timers = append(e.timers,
				s.cluster.tr.After(s.id, math.Max(0, end-now), func() { s.onTaskComplete(e, id, end) }))
		}
	}
	for _, jobID := range lost {
		s.cancelExecution(jobID)
		s.plan.CancelJob(jobID)
	}
}

// onTaskStart asserts that every predecessor's data is available when a
// reserved slot begins — the end-to-end check that ω over-estimation plus
// the adjusted windows make distributed execution causally sound. A result
// arriving at exactly the start instant is delivered first by re-checking
// after a zero-delay hop.
func (s *Site) onTaskStart(e *execJob, id dag.TaskID, rechecked bool) {
	if e.cancelled || e.completed[id] {
		return
	}
	missing := s.missingInputs(e, id)
	if len(missing) == 0 {
		return
	}
	if !rechecked {
		e.timers = append(e.timers,
			s.cluster.tr.After(s.id, 0, func() { s.onTaskStart(e, id, true) }))
		return
	}
	s.cluster.recordViolation(fmt.Sprintf(
		"site %d: job %s task %d started at %v without inputs from %v",
		s.id, e.job.ID, id, s.now(), missing))
}

func (s *Site) missingInputs(e *execJob, id dag.TaskID) []dag.TaskID {
	var missing []dag.TaskID
	for _, p := range e.g.Predecessors(id) {
		if e.taskSites[p] == s.id {
			if !e.completed[p] {
				missing = append(missing, p)
			}
		} else if !e.arrived[[2]dag.TaskID{p, id}] {
			missing = append(missing, p)
		}
	}
	return missing
}

// onTaskComplete fires when a task's reserved slot (or EDF completion) ends:
// results are sent to the sites of successor tasks (§13) and completion is
// reported to the initiator.
func (s *Site) onTaskComplete(e *execJob, id dag.TaskID, at float64) {
	if e.cancelled || e.completed[id] {
		return
	}
	if s.plan.Preemptive() {
		// In preemptive mode the start assertion runs here (slots move).
		if missing := s.missingInputs(e, id); len(missing) > 0 {
			s.cluster.recordViolation(fmt.Sprintf(
				"site %d: job %s task %d completed at %v without inputs from %v",
				s.id, e.job.ID, id, s.now(), missing))
		}
	}
	e.completed[id] = true
	sent := make(map[graph.NodeID]bool)
	for _, succ := range e.g.Successors(id) {
		succ := succ
		dest := e.taskSites[succ]
		if dest == s.id {
			continue
		}
		vol := e.g.EdgeVolume(id, succ)
		th := s.cluster.cfg.Throughput
		if vol == 0 || th <= 0 {
			// Pure control dependency (or volumes disabled): one result
			// message serves every consumer on the destination site.
			if !sent[dest] {
				sent[dest] = true
				s.sendTo(dest, resultMsg{Job: e.job.ID, Task: id, Bytes: s.cluster.cfg.ResultBytes})
			}
			continue
		}
		// §13 data volumes: each edge's transfer is serialized for
		// volume/throughput before it travels, and is addressed to its
		// consumer since volumes differ per edge.
		msg := resultMsg{Job: e.job.ID, Task: id, For: succ,
			Bytes: s.cluster.cfg.ResultBytes + int(vol)}
		e.timers = append(e.timers, s.cluster.tr.After(s.id, vol/th, func() {
			if !e.cancelled {
				s.sendTo(dest, msg)
			}
		}))
	}
	if e.job.Origin == s.id {
		s.cluster.recordTaskDone(e.job, id, at)
	} else {
		s.sendTo(e.job.Origin, doneMsg{Job: e.job.ID, Task: id, At: at})
	}
}

// onResult records an incoming predecessor result (§13).
func (s *Site) onResult(m resultMsg) {
	e, ok := s.exec[m.Job]
	if !ok || e.cancelled {
		return
	}
	if m.For != 0 {
		e.arrived[[2]dag.TaskID{m.Task, m.For}] = true
		return
	}
	// Broadcast result: serves every successor hosted on this site.
	for _, succ := range e.g.Successors(m.Task) {
		if e.taskSites[succ] == s.id {
			e.arrived[[2]dag.TaskID{m.Task, succ}] = true
		}
	}
}

// onDone records a remote task completion at the job's initiator.
func (s *Site) onDone(m doneMsg) {
	if j := s.cluster.jobByID(m.Job); j != nil {
		s.cluster.recordTaskDone(j, m.Task, m.At)
	}
}

// cancelExecution tears down a job's execution state after an abort.
func (s *Site) cancelExecution(jobID string) {
	e, ok := s.exec[jobID]
	if !ok {
		return
	}
	e.cancelled = true
	for _, c := range e.timers {
		c()
	}
	delete(s.exec, jobID)
}
