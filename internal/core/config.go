package core

import (
	"fmt"

	"repro/internal/core/membership"
	"repro/internal/core/policy"
	"repro/internal/mapper"
	"repro/internal/routing"
	"repro/internal/simnet"
)

// Config controls a cluster of RTDS sites.
type Config struct {
	// Radius is h, the hop radius of the Potential Computing Sphere (§6).
	Radius int
	// SurplusWindow is the observational window over which a site's surplus
	// is measured (§2).
	SurplusWindow float64
	// Preemptive selects the §13 preemptive local scheduler.
	Preemptive bool
	// LocalOnly disables distribution entirely: jobs that fail the local
	// test are rejected (the baseline RTDS is compared against).
	LocalOnly bool
	// Heuristic and LaxityMode configure the mapper (§9, §12, §13).
	Heuristic  mapper.Heuristic
	LaxityMode mapper.LaxityMode
	// EnrollSlack is added to the enrollment timeout beyond the round-trip
	// bound 2·ω(PCS); it lets acks that tie with the timer win.
	EnrollSlack float64
	// ReleasePadFactor scales the protocol-latency padding of the job
	// release used by the mapper (§13 "Communication Delays"): the effective
	// release is now + ReleasePadFactor·ω(ACS). It covers the validation
	// round trip plus the dispatch of task codes.
	ReleasePadFactor float64
	// CodeBytesPerTask is the accounted size of one task's code when
	// dispatched to an executing site (§11).
	CodeBytesPerTask int
	// ResultBytes is the accounted size of one task-result message sent from
	// a predecessor's site to a successor's site during execution.
	ResultBytes int
	// Throughput enables the §13 data-volume model: DAG edges decorated
	// with data volumes add volume/Throughput to the cross-site
	// communication estimate, and result transmission is delayed by the
	// same amount. Zero ignores volumes (the base model).
	Throughput float64
	// Powers optionally assigns per-site computing powers (uniform machines,
	// §13). Empty means identical machines (power 1).
	Powers []float64
	// TraceEvents records a protocol timeline (Cluster.Events); off by
	// default to keep long experiment runs lean.
	TraceEvents bool
	// UseLocalKnowledge implements the §13 "local knowledge of k"
	// refinement: the initiator estimates its own availability over the
	// job's actual window instead of the fixed observational window, since
	// it can inspect its own idle intervals exactly.
	UseLocalKnowledge bool
	// Faults arms transport fault injection (message loss, delay jitter,
	// site crashes) after the PCS bootstrap; times in the plan are relative
	// to the post-bootstrap epoch. A faulty cluster additionally arms the
	// protocol's defensive machinery: member lock leases and retransmitted
	// abort unlocks (the validation/commit phase timeouts are always on).
	// Nil (or a plan injecting nothing) runs the faultless paper model.
	Faults *simnet.FaultPlan
	// Policies selects the protocol's pluggable decision points: enrollment
	// fan-out (Sphere), the local guarantee test (Acceptance), case-(iii)
	// laxity scattering (Dispatch) and the trial-mapping heuristic (Mapper).
	// Nil fields resolve to the paper defaults — FullSphere, EDF, and
	// wrappers over the legacy LaxityMode/Heuristic knobs — which replay
	// the hard-wired behavior event for event.
	Policies policy.Set
	// KernelWorkers selects the discrete-event kernel backing a simulated
	// cluster. 0 (the default) runs the serial internal/sim engine — the
	// reference semantics. >= 1 runs the conservative parallel kernel
	// (internal/sim/par) with min(KernelWorkers, sites) partitions: sites
	// are sharded across per-core event heaps by a topology-aware
	// partitioner and synchronized with lookahead windows derived from the
	// minimum cross-partition link delay. The parallel kernel reproduces
	// the serial event order — experiment tables and event counts are
	// byte-identical for the same seed at every worker count. Fault plans
	// drawing loss or jitter consume one sequential random stream in global
	// send order, so such plans collapse to a single partition (still the
	// parallel code path, just P=1); crash-only plans parallelize fully.
	// Ignored by wall-clock transports (live, wire).
	KernelWorkers int
	// Hier arms two-level region/landmark routing (internal/routing/hier):
	// the topology is partitioned into ~√n connected regions, each site
	// bootstraps an exact table of its own region plus a constant-size
	// landmark vector toward every other region, and per-site routing state
	// drops from O(n) to O(√n). Commit spheres become region-first — the PCS
	// is confined to the initiator's region — and an enrollment window that
	// closes empty escalates once to the adjacent regions' landmarks before
	// rejecting. Membership heartbeats and repair floods are scoped to the
	// region; landmarks exchange cross-region liveness digests. Requires the
	// in-process cluster (node mode runs one site and cannot finalize the
	// cluster-wide hierarchy), and a connected topology like the flat
	// bootstrap.
	Hier bool
	// Membership arms the distributed membership layer: per-site heartbeats
	// with suspicion timeouts, flooded death/resurrection notices,
	// epoch-tagged routing re-floods and the runtime join handshake. When
	// not explicitly enabled but the fault plan injects crashes, a
	// configuration is derived from the plan (SuspectAfter from the legacy
	// DetectDelay, a horizon covering every planned crash) so failure
	// detection happens through the protocol instead of the old scripted
	// oracle. Disabled clusters run the faultless paper model untouched.
	Membership membership.Config
}

// DefaultConfig returns the configuration used by the experiments unless a
// sweep overrides a field.
func DefaultConfig() Config {
	return Config{
		Radius:           3,
		SurplusWindow:    200,
		EnrollSlack:      1e-3,
		ReleasePadFactor: 3,
		CodeBytesPerTask: 256,
		ResultBytes:      64,
	}
}

func (c Config) validate(n int) error {
	if c.Radius < 0 {
		return fmt.Errorf("core: negative sphere radius %d", c.Radius)
	}
	if c.SurplusWindow <= 0 {
		return fmt.Errorf("core: non-positive surplus window %v", c.SurplusWindow)
	}
	if c.ReleasePadFactor < 0 {
		return fmt.Errorf("core: negative release pad factor %v", c.ReleasePadFactor)
	}
	if len(c.Powers) != 0 && len(c.Powers) != n {
		return fmt.Errorf("core: %d powers for %d sites", len(c.Powers), n)
	}
	for i, p := range c.Powers {
		if p <= 0 {
			return fmt.Errorf("core: site %d has non-positive power %v", i, p)
		}
	}
	if c.KernelWorkers < 0 {
		return fmt.Errorf("core: negative kernel workers %d", c.KernelWorkers)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(n); err != nil {
			return err
		}
	}
	if err := c.Membership.Validate(); err != nil {
		return err
	}
	return nil
}

// membershipConfig resolves the effective membership configuration: the
// explicit Config.Membership when enabled, otherwise a configuration
// derived from a crash-injecting fault plan — heartbeat and suspicion
// timing from the plan's DetectDelay, the flood budget from the sphere
// radius (the repair re-flood obeys the same interruption bound as the
// bootstrap), and a horizon that covers detecting every planned crash and
// recovery, so discrete-event runs drain once the last repair settles.
func (c Config) membershipConfig() membership.Config {
	m := c.Membership
	if !m.Enabled {
		if c.Faults == nil || len(c.Faults.Crashes) == 0 {
			return membership.Config{}
		}
		m = membership.Config{Enabled: true}
		if d := c.Faults.DetectDelay; d > 0 {
			m.SuspectAfter = d
			m.HeartbeatEvery = d / 3
		}
	}
	if m.FloodRounds == 0 {
		if r := routing.RoundsForRadius(c.Radius); r > 0 {
			m.FloodRounds = r
		}
	}
	if m.Horizon == 0 && c.Faults != nil && len(c.Faults.Crashes) > 0 {
		// Heartbeats must outlive the last planned crash (or recovery) long
		// enough to detect it and settle the repair.
		var last float64
		for _, cr := range c.Faults.Crashes {
			end := cr.At
			if !cr.Permanent() {
				end += cr.For
			}
			if end > last {
				last = end
			}
		}
		hb := m.HeartbeatEvery
		if hb <= 0 {
			hb = 1
		}
		suspect := m.SuspectAfter
		if suspect <= 0 {
			suspect = 3 * hb
		}
		m.Horizon = last + suspect + 10*hb
	}
	return m
}

func (c Config) power(site int) float64 {
	if len(c.Powers) == 0 {
		return 1
	}
	return c.Powers[site]
}

// The policy resolvers fill nil Policies fields with the paper defaults.
// Dispatch and Mapper fall back to wrappers over the legacy LaxityMode and
// Heuristic knobs so existing sweeps (E5, E8) keep working unchanged.

func (c Config) spherePolicy() policy.Sphere {
	if c.Policies.Sphere != nil {
		return c.Policies.Sphere
	}
	if c.Hier {
		return policy.HierSphere{}
	}
	return policy.FullSphere{}
}

func (c Config) acceptancePolicy() policy.Acceptance {
	if c.Policies.Acceptance != nil {
		return c.Policies.Acceptance
	}
	return policy.EDF{}
}

func (c Config) dispatchPolicy() policy.Dispatch {
	if c.Policies.Dispatch != nil {
		return c.Policies.Dispatch
	}
	return policy.FromLaxityMode(c.LaxityMode)
}

func (c Config) mapperPolicy() policy.Mapper {
	if c.Policies.Mapper != nil {
		return c.Policies.Mapper
	}
	return policy.FromHeuristic(c.Heuristic)
}
