// Package core implements the RTDS protocol itself (paper §4–§11): per-site
// local scheduling, PCS bootstrap, ACS enrollment with locking, trial-mapping
// construction and validation, maximum-coupling permutation selection, and
// distributed execution with result messages.
//
// Every site runs the same state machine (there is no centralized control);
// sites communicate only over topology links, forwarding multi-hop traffic
// along their routing tables' next hops, so communication cost is accounted
// per link traversal exactly as the paper argues.
//
// The package is layered:
//
//   - internal/core/txn holds the initiator-side transaction state machine —
//     enroll → validate → commit as named phases with guarded transitions,
//     the phase timers and the abort retransmission state;
//   - internal/core/policy names the protocol's decision points (enrollment
//     fan-out, local acceptance, laxity dispatching, mapper heuristic) as
//     interfaces, resolved from Config.Policies with paper defaults;
//   - internal/core/membership owns liveness: per-site heartbeats with
//     suspicion timeouts, incarnation-guarded death/resurrection notices,
//     epoch-tagged routing re-floods that repair tables after churn, and
//     the runtime join handshake — armed via Config.Membership (or
//     automatically by a crash-injecting fault plan);
//   - this package owns the I/O: transports, routing, locks, plans and the
//     member-side handlers, split by role across site.go (transport entry,
//     locking, arrival), initiator.go (txn driving), member.go (enrollment,
//     endorsement, commit handling) and exec.go (distributed execution).
package core
