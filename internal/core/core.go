package core
