package core

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/daggen"
	"repro/internal/graph"
)

// fastLine builds an n-site line with very small link delays so protocol
// latency is negligible next to task durations.
func fastLine(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), 0.05)
	}
	return g
}

func chainJob(t testing.TB, n int, dur float64) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("chain")
	for i := 1; i <= n; i++ {
		b.AddTask(dag.TaskID(i), dur)
		if i > 1 {
			b.AddEdge(dag.TaskID(i-1), dag.TaskID(i))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func parJob(t testing.TB, n int, dur float64) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("par")
	for i := 1; i <= n; i++ {
		b.AddTask(dag.TaskID(i), dur)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustCluster(t testing.TB, topo *graph.Graph, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runAll(t testing.TB, c *Cluster) {
	t.Helper()
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("causality violations: %v", v)
	}
	if !c.AllIdle() {
		t.Fatal("sites not idle after drain (stuck locks or transactions)")
	}
}

func TestLocalAcceptance(t *testing.T) {
	c := mustCluster(t, fastLine(3), DefaultConfig())
	job, err := c.Submit(0, 1, chainJob(t, 3, 5), 100)
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	if job.Outcome != AcceptedLocal {
		t.Fatalf("outcome = %v (stage %q), want accepted-local", job.Outcome, job.RejectStage)
	}
	if !job.MetDeadline() {
		t.Fatalf("job did not complete on time: done=%v at %v, deadline %v",
			job.Done, job.CompletedAt, job.AbsDeadline)
	}
	// A fully local job exchanges no protocol messages at all.
	if got := c.Stats().Messages(); got != 0 {
		t.Fatalf("local job sent %d messages", got)
	}
}

func TestDistributedAcceptance(t *testing.T) {
	// Two independent 10-unit tasks with deadline 16: serial execution needs
	// 20 > 16, so the local test fails; two sites in parallel fit easily.
	c := mustCluster(t, fastLine(3), DefaultConfig())
	job, err := c.Submit(0, 0, parJob(t, 2, 10), 16)
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	if job.Outcome != AcceptedDistributed {
		t.Fatalf("outcome = %v (stage %q), want accepted-distributed", job.Outcome, job.RejectStage)
	}
	if job.NumProcs != 2 {
		t.Fatalf("|U| = %d, want 2", job.NumProcs)
	}
	if job.ACSSize < 2 {
		t.Fatalf("ACS size %d, want >= 2", job.ACSSize)
	}
	if !job.MetDeadline() {
		t.Fatalf("distributed job missed deadline: done=%v at %v (deadline %v)",
			job.Done, job.CompletedAt, job.AbsDeadline)
	}
	kinds := c.Stats().ByKind()
	for _, k := range []string{"rtds.enroll", "rtds.enroll-ack", "rtds.validate",
		"rtds.validate-ack", "rtds.commit", "rtds.commit-ack", "rtds.done"} {
		if kinds[k] == 0 {
			t.Errorf("no %s messages observed: %v", k, kinds)
		}
	}
}

func TestImpossibleDeadlineRejected(t *testing.T) {
	// Critical path 30 but deadline 5: even at full speed nothing fits.
	c := mustCluster(t, fastLine(3), DefaultConfig())
	job, err := c.Submit(0, 1, chainJob(t, 3, 10), 5)
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	if job.Outcome != Rejected {
		t.Fatalf("outcome = %v, want rejected", job.Outcome)
	}
	if job.RejectStage != StageMapper {
		t.Fatalf("stage = %q, want %q", job.RejectStage, StageMapper)
	}
}

func TestLocalOnlyBaseline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LocalOnly = true
	c := mustCluster(t, fastLine(3), cfg)
	job, err := c.Submit(0, 0, parJob(t, 2, 10), 16)
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	if job.Outcome != Rejected || job.RejectStage != StageLocalOnly {
		t.Fatalf("outcome = %v stage %q, want rejected/local-only", job.Outcome, job.RejectStage)
	}
	if got := c.Stats().Messages(); got != 0 {
		t.Fatalf("local-only cluster sent %d messages", got)
	}
}

func TestRadiusZeroNoSphere(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Radius = 0
	c := mustCluster(t, fastLine(3), cfg)
	job, err := c.Submit(0, 0, parJob(t, 2, 10), 16)
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	if job.Outcome != Rejected || job.RejectStage != StageNoSphere {
		t.Fatalf("outcome = %v stage %q, want rejected/no-sphere", job.Outcome, job.RejectStage)
	}
}

func TestSphereScopesEnrollment(t *testing.T) {
	// On a 9-site line with h=2, an initiator in the middle should enroll at
	// most 4 members — never the whole network.
	cfg := DefaultConfig()
	cfg.Radius = 2
	c := mustCluster(t, fastLine(9), cfg)
	if got := len(c.SiteSphere(4)); got != 4 {
		t.Fatalf("sphere of middle site has %d members, want 4", got)
	}
	if got := len(c.SiteSphere(0)); got != 2 {
		t.Fatalf("sphere of edge site has %d members, want 2", got)
	}
	job, err := c.Submit(0, 4, parJob(t, 3, 10), 22)
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	if !job.Accepted() {
		t.Fatalf("job not accepted: %v/%s", job.Outcome, job.RejectStage)
	}
	if job.ACSSize > 5 {
		t.Fatalf("ACS size %d exceeds sphere+self", job.ACSSize)
	}
}

func TestLockingDefersSecondJob(t *testing.T) {
	// Two distributed-needing jobs hit the same initiator back to back. The
	// second must wait for the first transaction's locks, and both must be
	// decided by the end.
	c := mustCluster(t, fastLine(3), DefaultConfig())
	j1, err := c.Submit(0, 0, parJob(t, 2, 10), 16)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := c.Submit(0.01, 0, parJob(t, 2, 10), 40)
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	if j1.Outcome == Pending || j2.Outcome == Pending {
		t.Fatalf("undecided jobs: %v %v", j1.Outcome, j2.Outcome)
	}
	if !j1.Accepted() {
		t.Fatalf("first job rejected: %s", j1.RejectStage)
	}
	// The second job was deferred during j1's transaction, so its decision
	// must come later than its arrival by at least the deferral.
	if j2.Accepted() && j2.DecisionAt < j1.DecisionAt {
		t.Fatalf("second job decided (%v) before first (%v) despite lock",
			j2.DecisionAt, j1.DecisionAt)
	}
}

func TestConcurrentInitiatorsDisjointSpheres(t *testing.T) {
	// Sites 0 and 8 on a 9-line with h=1: spheres {1} and {7} — fully
	// disjoint transactions run concurrently.
	cfg := DefaultConfig()
	cfg.Radius = 1
	c := mustCluster(t, fastLine(9), cfg)
	j1, _ := c.Submit(0, 0, parJob(t, 2, 10), 16)
	j2, _ := c.Submit(0, 8, parJob(t, 2, 10), 16)
	runAll(t, c)
	if !j1.Accepted() || !j2.Accepted() {
		t.Fatalf("outcomes %v/%s and %v/%s, want both accepted",
			j1.Outcome, j1.RejectStage, j2.Outcome, j2.RejectStage)
	}
}

func TestConcurrentInitiatorsOverlappingSpheres(t *testing.T) {
	// Both endpoints of a 3-line want the middle site at once; locking must
	// serialize, and every job must still be decided.
	c := mustCluster(t, fastLine(3), DefaultConfig())
	j1, _ := c.Submit(0, 0, parJob(t, 2, 10), 30)
	j2, _ := c.Submit(0.001, 2, parJob(t, 2, 10), 30)
	runAll(t, c)
	if j1.Outcome == Pending || j2.Outcome == Pending {
		t.Fatal("a job was never decided")
	}
	if !j1.Accepted() {
		t.Fatalf("first job: %v/%s", j1.Outcome, j1.RejectStage)
	}
}

func TestPreemptiveMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Preemptive = true
	c := mustCluster(t, fastLine(3), cfg)
	j1, _ := c.Submit(0, 1, chainJob(t, 2, 5), 100)
	j2, _ := c.Submit(0, 0, parJob(t, 2, 10), 16)
	runAll(t, c)
	if !j1.Accepted() || !j2.Accepted() {
		t.Fatalf("outcomes %v/%s and %v/%s", j1.Outcome, j1.RejectStage, j2.Outcome, j2.RejectStage)
	}
	if !j1.MetDeadline() || !j2.MetDeadline() {
		t.Fatal("preemptive jobs missed deadlines")
	}
}

func TestUniformMachines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Powers = []float64{1, 4, 1} // site 1 is 4x faster
	c := mustCluster(t, fastLine(3), cfg)
	// 12-unit chain with deadline 5 can only run on the fast site (12/4 = 3).
	job, _ := c.Submit(0, 1, chainJob(t, 1, 12), 5)
	runAll(t, c)
	if job.Outcome != AcceptedLocal {
		t.Fatalf("outcome %v/%s, want accepted-local on fast site", job.Outcome, job.RejectStage)
	}
}

func TestSurplusReflectsLoad(t *testing.T) {
	c := mustCluster(t, fastLine(2), DefaultConfig())
	s := c.sites[0]
	if got := s.plan.Surplus(c.engine.Now(), 100); got != 1 {
		t.Fatalf("idle surplus %v, want 1", got)
	}
	job, _ := c.Submit(0, 0, chainJob(t, 1, 50), 200)
	runAll(t, c)
	if !job.Accepted() {
		t.Fatal("load job rejected")
	}
	// Re-query surplus right after epoch: one 50-unit task in a 100 window.
	got := s.plan.Surplus(job.Arrival, 100)
	if got > 0.55 || got < 0.45 {
		t.Fatalf("loaded surplus %v, want ~0.5", got)
	}
}

func TestBootstrapCostScalesWithRadius(t *testing.T) {
	topo := fastLine(9)
	var prev int64
	for _, h := range []int{1, 2, 3} {
		cfg := DefaultConfig()
		cfg.Radius = h
		c := mustCluster(t, topo, cfg)
		msgs, bytes := c.BootstrapCost()
		want := int64((2*h - 1) * 2 * topo.NumEdges())
		if msgs != want {
			t.Fatalf("h=%d: bootstrap messages %d, want %d", h, msgs, want)
		}
		if bytes <= prev {
			t.Fatalf("h=%d: bootstrap bytes %d did not grow (prev %d)", h, bytes, prev)
		}
		prev = bytes
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Summary, []string) {
		c := mustCluster(t, graph.RandomConnected(12, 3, graph.DelayRange{Min: 0.05, Max: 0.2}, 7), DefaultConfig())
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 30; i++ {
			g, err := daggen.Generate(daggen.AllKinds[i%len(daggen.AllKinds)], 6,
				daggen.Params{MinComplexity: 1, MaxComplexity: 4}, int64(i))
			if err != nil {
				t.Fatal(err)
			}
			origin := graph.NodeID(rng.Intn(12))
			at := rng.Float64() * 100
			dl := g.CriticalPathLength() * (1.5 + rng.Float64()*2)
			if _, err := c.Submit(at, origin, g, dl); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		var outcomes []string
		for _, j := range c.Jobs() {
			outcomes = append(outcomes, j.ID+":"+j.Outcome.String()+":"+string(j.RejectStage))
		}
		return c.Summarize(), outcomes
	}
	s1, o1 := run()
	s2, o2 := run()
	if s1.String() != s2.String() {
		t.Fatalf("summaries differ:\n%s\n%s", s1, s2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("outcome %d differs: %s vs %s", i, o1[i], o2[i])
		}
	}
}

// TestStressRandomWorkload is the big soak: random topologies, mixed DAG
// shapes, varied deadline tightness. Invariants: every job decided, no
// causality violations, accepted jobs complete on time, all locks released.
func TestStressRandomWorkload(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(12)
		topo := graph.RandomConnected(n, 3, graph.DelayRange{Min: 0.05, Max: 0.3}, seed)
		cfg := DefaultConfig()
		cfg.Radius = 1 + rng.Intn(3)
		cfg.Preemptive = seed%2 == 1
		c := mustCluster(t, topo, cfg)
		for i := 0; i < 40; i++ {
			kind := daggen.AllKinds[rng.Intn(len(daggen.AllKinds))]
			g, err := daggen.Generate(kind, 3+rng.Intn(10),
				daggen.Params{MinComplexity: 0.5, MaxComplexity: 5}, rng.Int63())
			if err != nil {
				t.Fatal(err)
			}
			dl := g.CriticalPathLength() * (1.0 + rng.Float64()*4)
			if _, err := c.Submit(rng.Float64()*300, graph.NodeID(rng.Intn(n)), g, dl); err != nil {
				t.Fatal(err)
			}
		}
		runAll(t, c)
		sum := c.Summarize()
		if sum.Submitted != 40 {
			t.Fatalf("seed %d: %d jobs recorded", seed, sum.Submitted)
		}
		for _, j := range c.Jobs() {
			if j.Outcome == Pending {
				t.Fatalf("seed %d: job %s undecided", seed, j.ID)
			}
			if j.Accepted() && !j.MetDeadline() {
				t.Fatalf("seed %d: accepted job %s missed its deadline (done=%v at %v, d=%v)",
					seed, j.ID, j.Done, j.CompletedAt, j.AbsDeadline)
			}
		}
		// Structural cross-check used by the independent oracle
		// (internal/verify runs the full Check; avoid the import cycle here
		// by asserting the execution records directly): every accepted
		// job's tasks executed exactly once, inside the job window.
		counts := make(map[string]int)
		for _, te := range c.Executions() {
			counts[te.Job.ID]++
			if te.Start < te.Job.Arrival-1e-6 || te.End > te.Job.AbsDeadline+1e-6 {
				t.Fatalf("seed %d: execution %v outside job window", seed, te)
			}
		}
		for _, j := range c.Jobs() {
			want := 0
			if j.Accepted() {
				want = j.Graph.Len()
			}
			if counts[j.ID] != want {
				t.Fatalf("seed %d: job %s has %d executions, want %d", seed, j.ID, counts[j.ID], want)
			}
		}
	}
}

func TestSummaryString(t *testing.T) {
	c := mustCluster(t, fastLine(3), DefaultConfig())
	c.Submit(0, 1, chainJob(t, 3, 5), 100)
	runAll(t, c)
	s := c.Summarize()
	if s.Submitted != 1 || s.AcceptedLocal != 1 || s.GuaranteeRatio != 1 {
		t.Fatalf("summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func BenchmarkClusterThroughput(b *testing.B) {
	topo := graph.RandomConnected(16, 3, graph.DelayRange{Min: 0.05, Max: 0.2}, 1)
	for i := 0; i < b.N; i++ {
		c, err := NewCluster(topo, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(i)))
		for j := 0; j < 50; j++ {
			g := daggen.Layered(4, 3, 0.2, daggen.Params{MinComplexity: 1, MaxComplexity: 4}, int64(j))
			dl := g.CriticalPathLength() * 2.5
			if _, err := c.Submit(rng.Float64()*200, graph.NodeID(rng.Intn(16)), g, dl); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
