package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// EventKind labels a protocol lifecycle event.
type EventKind string

// Protocol event kinds, in rough lifecycle order.
const (
	EvArrival   EventKind = "arrival"      // job arrived at its origin site
	EvDeferred  EventKind = "deferred"     // processing deferred (site locked)
	EvLocalOK   EventKind = "local-accept" // whole DAG guaranteed locally
	EvEnroll    EventKind = "enroll"       // ACS enrollment started
	EvEscalate  EventKind = "escalate"     // empty window reopened toward adjacent regions' landmarks
	EvACSFixed  EventKind = "acs-fixed"    // enrollment window closed
	EvMapped    EventKind = "mapped"       // trial mapping built
	EvValidated EventKind = "validated"    // all endorsements collected
	EvCommit    EventKind = "commit"       // permutation dispatched
	EvDecided   EventKind = "decided"      // final accept/reject decision
	EvTaskDone  EventKind = "task-done"    // one task completed
	EvJobDone   EventKind = "job-done"     // all tasks completed

	// Fault-handling events (only emitted on clusters with fault injection
	// or on the graceful-degradation paths that replaced hard panics).
	EvPhaseTimeout EventKind = "phase-timeout" // validation/commit window expired
	EvLeaseExpired EventKind = "lease-expired" // member lock lease fired (silent initiator)
	EvMsgDropped   EventKind = "msg-dropped"   // protocol layer dropped a message (no route / TTL)
	EvExecAborted  EventKind = "exec-aborted"  // execution torn down outside the normal abort path
	EvAbortRetry   EventKind = "abort-retry"   // abort unlock retransmitted (or given up)

	// Membership events (only on clusters with the membership layer armed).
	// The kind strings match what the membership manager emits.
	EvRouteRepair   EventKind = "route-repair"   // table rebuilt/merged after a membership change
	EvRepairSettled EventKind = "repair-settled" // re-flood quiesced; deferred enrollments resume
	EvMemberDead    EventKind = "member-dead"    // a site declared (or learned) dead
	EvMemberAlive   EventKind = "member-alive"   // a site resurrected
	EvMemberRefute  EventKind = "member-refute"  // this site refuted its own death notice
	EvMemberJoin    EventKind = "member-join"    // a joiner admitted by this site
	EvJoined        EventKind = "joined"         // this site completed its join handshake
	EvJoinFailed    EventKind = "join-failed"    // the join handshake ran out of retries
)

// Event is one timeline entry. Events are recorded only when
// Config.TraceEvents is set.
type Event struct {
	At     float64
	Site   graph.NodeID
	Job    string
	Kind   EventKind
	Detail string
}

// String renders one line of the timeline.
func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%10.3f site=%-3d %-12s %s", e.At, e.Site, e.Kind, e.Job)
	}
	return fmt.Sprintf("%10.3f site=%-3d %-12s %s (%s)", e.At, e.Site, e.Kind, e.Job, e.Detail)
}

func (c *Cluster) event(site graph.NodeID, job string, kind EventKind, detail string) {
	if !c.cfg.TraceEvents {
		return
	}
	c.mu.Lock()
	c.events = append(c.events, Event{
		At: c.nowFor(site), Site: site, Job: job, Kind: kind, Detail: detail,
	})
	c.mu.Unlock()
}

// Events returns the recorded timeline in chronological order (stable for
// simultaneous events). Empty unless Config.TraceEvents is set.
func (c *Cluster) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]Event(nil), c.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// JobEvents filters the timeline to one job.
func (c *Cluster) JobEvents(jobID string) []Event {
	var out []Event
	for _, e := range c.Events() {
		if e.Job == jobID {
			out = append(out, e)
		}
	}
	return out
}
