package core

import (
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/determinism"
	"repro/internal/graph"
	"repro/internal/schedule"
	"repro/internal/simnet"
)

// Distributed execution (§11) with the §13 communication-delay realism:
// results travel between sites and tasks must not start before their inputs.

// execJob tracks the execution of one job's tasks on this site (§11).
type execJob struct {
	job       *Job
	g         *dag.Graph
	taskSites map[dag.TaskID]graph.NodeID
	// reservations holds this site's slots (non-preemptive) or the current
	// completion estimates (preemptive).
	reservations map[dag.TaskID]schedule.Reservation
	// arrived marks received cross-site results per (predecessor, consumer)
	// edge: with data volumes, each edge's transfer completes separately.
	arrived   map[[2]dag.TaskID]bool
	completed map[dag.TaskID]bool
	timers    []simnet.CancelFunc
	cancelled bool
}

// beginExecution registers this site's share of a job and schedules its
// execution timers.
func (s *Site) beginExecution(job *Job, taskSites map[dag.TaskID]graph.NodeID, tk *schedule.Ticket) {
	e := s.exec[job.ID]
	if e == nil {
		e = &execJob{
			job:          job,
			g:            job.Graph,
			taskSites:    taskSites,
			reservations: make(map[dag.TaskID]schedule.Reservation),
			arrived:      make(map[[2]dag.TaskID]bool),
			completed:    make(map[dag.TaskID]bool),
		}
		s.exec[job.ID] = e
	}
	if s.plan.Preemptive() {
		for _, r := range tk.Requests {
			e.reservations[dag.TaskID(r.Task)] = schedule.Reservation{Job: job.ID, Task: r.Task}
		}
		s.rescheduleAllExec()
		return
	}
	now := s.now()
	for _, pl := range tk.Placements {
		pl := pl
		id := dag.TaskID(pl.Task)
		e.reservations[id] = pl
		startDelay := math.Max(0, pl.Start-now)
		e.timers = append(e.timers,
			s.after(startDelay, func() { s.onTaskStart(e, id, 0) }),
			s.after(math.Max(0, pl.End-now), func() { s.onTaskComplete(e, id, pl.End) }),
		)
	}
}

// rescheduleAllExec recomputes completion timers from the preemptive plan's
// current EDF schedule. New admissions can only postpone completions, never
// rewrite the executed past (releases are never earlier than commit time),
// so cancelling and re-deriving all pending timers is safe.
func (s *Site) rescheduleAllExec() {
	for _, e := range s.exec {
		for _, c := range e.timers {
			c()
		}
		e.timers = nil
	}
	completion := make(map[string]map[int]float64)
	for _, frag := range s.plan.Reservations() {
		byTask := completion[frag.Job]
		if byTask == nil {
			byTask = make(map[int]float64)
			completion[frag.Job] = byTask
		}
		if frag.End > byTask[frag.Task] {
			byTask[frag.Task] = frag.End
		}
	}
	now := s.now()
	var lost []string
	for _, jobID := range determinism.SortedKeys(s.exec) {
		e := s.exec[jobID]
		for _, id := range determinism.SortedKeys(e.reservations) {
			ti := int(id)
			if e.completed[id] {
				continue
			}
			end, ok := completion[jobID][ti]
			if !ok {
				// The plan no longer holds this job's fragments (a stale
				// abort crossed a commit under faults). Tear the execution
				// down instead of crashing the cluster; on a faultless run
				// this is still reported as a violation.
				s.cluster.protocolDrop(s.id, fmt.Sprintf(
					"site %d lost fragments of %s/t%d", s.id, jobID, ti))
				s.cluster.event(s.id, jobID, EvExecAborted,
					fmt.Sprintf("t%d fragments missing", ti))
				lost = append(lost, jobID)
				break
			}
			e.timers = append(e.timers,
				s.after(math.Max(0, end-now), func() { s.onTaskComplete(e, id, end) }))
		}
	}
	for _, jobID := range lost {
		s.cancelExecution(jobID)
		s.plan.CancelJob(jobID)
	}
}

// Wall-clock transports (live goroutines, TCP) fire same-deadline timers
// with runtime scheduling skew: a predecessor's completion timer and its
// successor's start timer share an instant, and either may win. The
// causality assertion therefore retries for up to one virtual time unit
// before declaring a violation on those transports; a genuinely missing
// input (a result that was never produced) persists past every retry and
// is still reported. The DES keeps the single zero-delay recheck: its
// event order is deterministic, so one hop resolves legitimate ties and
// anything else is a real protocol bug.
const (
	startRecheckDelay = 0.05
	startRecheckMax   = 20
)

// onTaskStart asserts that every predecessor's data is available when a
// reserved slot begins — the end-to-end check that ω over-estimation plus
// the adjusted windows make distributed execution causally sound. A result
// arriving at exactly the start instant is delivered first by re-checking
// after a zero-delay hop.
func (s *Site) onTaskStart(e *execJob, id dag.TaskID, tries int) {
	if e.cancelled || e.completed[id] {
		return
	}
	missing := s.missingInputs(e, id)
	if len(missing) == 0 {
		return
	}
	if tries == 0 {
		e.timers = append(e.timers,
			s.after(0, func() { s.onTaskStart(e, id, 1) }))
		return
	}
	if !s.cluster.virtualTime() && tries < startRecheckMax {
		e.timers = append(e.timers,
			s.after(startRecheckDelay, func() { s.onTaskStart(e, id, tries+1) }))
		return
	}
	s.cluster.recordViolation(fmt.Sprintf(
		"site %d: job %s task %d started at %v without inputs from %v",
		s.id, e.job.ID, id, s.now(), missing))
}

func (s *Site) missingInputs(e *execJob, id dag.TaskID) []dag.TaskID {
	var missing []dag.TaskID
	for _, p := range e.g.Predecessors(id) {
		if e.taskSites[p] == s.id {
			if !e.completed[p] {
				missing = append(missing, p)
			}
		} else if !e.arrived[[2]dag.TaskID{p, id}] {
			missing = append(missing, p)
		}
	}
	return missing
}

// onTaskComplete fires when a task's reserved slot (or EDF completion) ends:
// results are sent to the sites of successor tasks (§13) and completion is
// reported to the initiator.
func (s *Site) onTaskComplete(e *execJob, id dag.TaskID, at float64) {
	if e.cancelled || e.completed[id] {
		return
	}
	if s.plan.Preemptive() {
		// In preemptive mode the start assertion runs here (slots move).
		if missing := s.missingInputs(e, id); len(missing) > 0 {
			s.cluster.recordViolation(fmt.Sprintf(
				"site %d: job %s task %d completed at %v without inputs from %v",
				s.id, e.job.ID, id, s.now(), missing))
		}
	}
	e.completed[id] = true
	sent := make(map[graph.NodeID]bool)
	for _, succ := range e.g.Successors(id) {
		succ := succ
		dest := e.taskSites[succ]
		if dest == s.id {
			continue
		}
		vol := e.g.EdgeVolume(id, succ)
		th := s.cluster.cfg.Throughput
		if vol == 0 || th <= 0 {
			// Pure control dependency (or volumes disabled): one result
			// message serves every consumer on the destination site.
			if !sent[dest] {
				sent[dest] = true
				s.sendTo(dest, ResultMsg{Job: e.job.ID, Task: id, Bytes: s.cluster.cfg.ResultBytes})
			}
			continue
		}
		// §13 data volumes: each edge's transfer is serialized for
		// volume/throughput before it travels, and is addressed to its
		// consumer since volumes differ per edge.
		msg := ResultMsg{Job: e.job.ID, Task: id, For: succ,
			Bytes: s.cluster.cfg.ResultBytes + int(vol)}
		e.timers = append(e.timers, s.after(vol/th, func() {
			if !e.cancelled {
				s.sendTo(dest, msg)
			}
		}))
	}
	if e.job.Origin == s.id {
		s.cluster.recordTaskDone(e.job, id, at)
	} else {
		s.sendTo(e.job.Origin, DoneMsg{Job: e.job.ID, Task: id, At: at})
	}
}

// onResult records an incoming predecessor result (§13).
func (s *Site) onResult(m ResultMsg) {
	e, ok := s.exec[m.Job]
	if !ok || e.cancelled {
		return
	}
	if m.For != 0 {
		e.arrived[[2]dag.TaskID{m.Task, m.For}] = true
		return
	}
	// Broadcast result: serves every successor hosted on this site.
	for _, succ := range e.g.Successors(m.Task) {
		if e.taskSites[succ] == s.id {
			e.arrived[[2]dag.TaskID{m.Task, succ}] = true
		}
	}
}

// onDone records a remote task completion at the job's initiator.
func (s *Site) onDone(m DoneMsg) {
	if j := s.cluster.jobByID(m.Job); j != nil {
		s.cluster.recordTaskDone(j, m.Task, m.At)
	}
}

// cancelExecution tears down a job's execution state after an abort.
func (s *Site) cancelExecution(jobID string) {
	e, ok := s.exec[jobID]
	if !ok {
		return
	}
	e.cancelled = true
	for _, c := range e.timers {
		c()
	}
	delete(s.exec, jobID)
}
