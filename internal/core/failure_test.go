package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/schedule"
)

// slowLine builds a line whose link delays are comparable to task durations,
// so protocol latency genuinely competes with the deadline.
func slowLine(n int, delay float64) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), delay)
	}
	return g
}

// TestCommitFailureAborts removes the §13 release padding so validated
// slots can lie in the past by the time the commit arrives: the affected
// member must refuse, the initiator must abort everywhere, and no residue
// may survive. This exercises StageCommit and the abort path end to end.
func TestCommitFailureAborts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReleasePadFactor = 0 // validated slots start "immediately"
	cfg.EnrollSlack = 0.001
	topo := slowLine(3, 2.0) // commit takes ~2 units to arrive
	c := mustCluster(t, topo, cfg)

	sawCommitStage := false
	for i := 0; i < 24; i++ {
		// Three 10-unit tasks: serial needs 30, so deadlines in [22, 29.5)
		// force three-way distribution; without padding the validated slots
		// (starting at each member's validation instant) are already stale
		// when the commit arrives one extra round trip later.
		at := c.Now() + 1
		job, err := c.Submit(at, 0, parJob(t, 3, 10), 22+float64(i)*0.3)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		if job.Outcome == Pending {
			t.Fatalf("job %s undecided", job.ID)
		}
		if job.Outcome == Rejected && job.RejectStage == StageCommit {
			sawCommitStage = true
		}
		if job.Accepted() && !job.MetDeadline() {
			t.Fatalf("accepted job %s missed deadline", job.ID)
		}
	}
	if !sawCommitStage {
		t.Skip("no commit failure triggered under this timing; path covered elsewhere")
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("violations after aborts: %v", v)
	}
	if !c.AllIdle() {
		t.Fatal("stuck locks after aborts")
	}
	// No rejected job may leave reservations behind.
	for _, j := range c.Jobs() {
		if j.Accepted() {
			continue
		}
		for _, te := range c.Executions() {
			if te.Job.ID == j.ID {
				t.Fatalf("rejected job %s left execution %v", j.ID, te)
			}
		}
	}
}

// TestMatchingRejectionUnlocksEveryone drives many competing jobs onto a
// tiny saturated network so validation fails often; afterwards every site
// must be unlocked with no stranded tickets.
func TestMatchingRejectionUnlocksEveryone(t *testing.T) {
	c := mustCluster(t, fastLine(3), DefaultConfig())
	// Saturate all three sites, then burst impossible parallel jobs while
	// they are busy; all submissions precede the single Run.
	var saturation []*Job
	for site := 0; site < 3; site++ {
		j, err := c.Submit(0, graph.NodeID(site), chainJob(t, 1, 90), 100)
		if err != nil {
			t.Fatal(err)
		}
		saturation = append(saturation, j)
	}
	var burst []*Job
	for i := 0; i < 10; i++ {
		j, err := c.Submit(5+float64(i), 1, parJob(t, 3, 30), 40)
		if err != nil {
			t.Fatal(err)
		}
		burst = append(burst, j)
	}
	runAll(t, c) // asserts no violations + all idle
	for _, j := range saturation {
		if !j.Accepted() {
			t.Fatalf("saturation job %s rejected", j.ID)
		}
	}
	rejected := 0
	for _, j := range burst {
		if j.Outcome == Rejected {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("expected rejections on a saturated network")
	}
}

// TestDeferredJobEventuallyDecided: a job arriving while its site is locked
// by a remote initiator must be processed after the unlock.
func TestDeferredJobEventuallyDecided(t *testing.T) {
	c := mustCluster(t, fastLine(3), DefaultConfig())
	// Job A from site 0 will enroll site 1 (and 2).
	jA, _ := c.Submit(0, 0, parJob(t, 2, 10), 16)
	// Job B arrives at site 1 while site 1 is locked for A's transaction.
	jB, _ := c.Submit(0.12, 1, chainJob(t, 1, 3), 50)
	runAll(t, c)
	if !jA.Accepted() {
		t.Fatalf("job A: %v/%s", jA.Outcome, jA.RejectStage)
	}
	if jB.Outcome != AcceptedLocal {
		t.Fatalf("deferred job B: %v/%s, want accepted-local", jB.Outcome, jB.RejectStage)
	}
	if jB.DecisionAt <= jB.Arrival {
		t.Fatalf("job B decided at %v, arrival %v — was it really deferred?", jB.DecisionAt, jB.Arrival)
	}
}

// TestLocalKnowledgeSharpensSelfEstimate (§13 "Local knowledge of k"): a
// site whose only commitment lies far beyond the job's deadline reports a
// pessimistic fixed-window surplus, so the mapper cannot use it and the job
// dies in case (i); measuring the initiator over the job window instead
// admits the job.
func TestLocalKnowledgeSharpensSelfEstimate(t *testing.T) {
	build := func(localKnowledge bool) *Job {
		cfg := DefaultConfig()
		cfg.UseLocalKnowledge = localKnowledge
		c := mustCluster(t, fastLine(2), cfg)
		// Reserve [100, 200] on the initiator: half of the 200-unit fixed
		// window, entirely outside the job's 18-unit window.
		tk, ok := c.sites[0].plan.Admit(0, []schedule.Request{{
			Job: "filler", Task: 1, Release: 100, Deadline: 200, Duration: 100,
		}})
		if !ok {
			t.Fatal("filler admit failed")
		}
		if err := c.sites[0].plan.Commit(tk); err != nil {
			t.Fatal(err)
		}
		// Two 10-unit tasks, deadline 18: the local test fails (serial 20),
		// so both sites must carry one task each — which requires trusting
		// the initiator's availability.
		job, err := c.Submit(0, 0, parJob(t, 2, 10), 18)
		if err != nil {
			t.Fatal(err)
		}
		runAll(t, c)
		return job
	}
	base := build(false)
	if base.Outcome != Rejected {
		t.Fatalf("fixed-window run: %v/%s, want rejected (self surplus 0.5 inflates durations)",
			base.Outcome, base.RejectStage)
	}
	sharp := build(true)
	if sharp.Outcome != AcceptedDistributed {
		t.Fatalf("local-knowledge run: %v/%s, want accepted-distributed",
			sharp.Outcome, sharp.RejectStage)
	}
	if !sharp.MetDeadline() {
		t.Fatal("local-knowledge job missed its deadline")
	}
}

// TestLocalKnowledgeWindowedSurplus pins the surplus numbers directly.
func TestLocalKnowledgeWindowedSurplus(t *testing.T) {
	cfg := DefaultConfig()
	c := mustCluster(t, fastLine(2), cfg)
	s := c.sites[0]
	// Reserve [100, 200] on site 0: inside the 200-unit fixed window but
	// outside a 50-unit job window.
	tk, ok := s.plan.Admit(0, []schedule.Request{{
		Job: "filler", Task: 1, Release: 100, Deadline: 200, Duration: 100,
	}})
	if !ok {
		t.Fatal("filler admit failed")
	}
	if err := s.plan.Commit(tk); err != nil {
		t.Fatal(err)
	}
	fixed := s.plan.Surplus(0, cfg.SurplusWindow)
	windowed := s.plan.Surplus(0, 50)
	if fixed > 0.55 {
		t.Fatalf("fixed-window surplus %v, want ~0.5", fixed)
	}
	if windowed != 1 {
		t.Fatalf("job-window surplus %v, want 1 (reservation lies beyond)", windowed)
	}
}

// TestEventTimeline: with tracing on, a distributed job leaves a complete,
// ordered lifecycle trail.
func TestEventTimeline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceEvents = true
	c := mustCluster(t, fastLine(3), cfg)
	job, err := c.Submit(0, 0, parJob(t, 2, 10), 16)
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	if job.Outcome != AcceptedDistributed {
		t.Fatalf("outcome %v", job.Outcome)
	}
	events := c.JobEvents(job.ID)
	wantOrder := []EventKind{EvArrival, EvEnroll, EvACSFixed, EvMapped,
		EvValidated, EvCommit, EvDecided, EvTaskDone, EvJobDone}
	pos := 0
	for _, e := range events {
		if pos < len(wantOrder) && e.Kind == wantOrder[pos] {
			pos++
		}
	}
	if pos != len(wantOrder) {
		var got []string
		for _, e := range events {
			got = append(got, string(e.Kind))
		}
		t.Fatalf("lifecycle incomplete: matched %d/%d of %v in %v",
			pos, len(wantOrder), wantOrder, got)
	}
	// Chronological order and non-empty rendering.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("events out of order")
		}
	}
	if events[0].String() == "" {
		t.Fatal("empty event rendering")
	}
}

// TestEventsOffByDefault: no tracing unless asked.
func TestEventsOffByDefault(t *testing.T) {
	c := mustCluster(t, fastLine(3), DefaultConfig())
	c.Submit(0, 0, parJob(t, 2, 10), 16)
	runAll(t, c)
	if len(c.Events()) != 0 {
		t.Fatalf("events recorded without TraceEvents: %d", len(c.Events()))
	}
}
