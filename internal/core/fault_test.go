package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core/txn"
	"repro/internal/graph"
	"repro/internal/simnet"
)

// ring5 is a 5-cycle: every pair of sites has two disjoint paths, so a dead
// site can be routed around.
func ring5() *graph.Graph {
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID((i+1)%5), 0.05)
	}
	return g
}

// TestEnrollTimeoutTieRace forces the enrollment expiry timer and the final
// EnrollAck onto the same instant, in both orders, and requires that the
// enrollment window closes exactly once either way (regression for the
// double-enrollDone race: the ack path must cancel the timer and both paths
// must guard on the phase).
//
// On fastLine(4) the farthest member's ack round trip is exactly
// 2*sphereDiam: with EnrollSlack=0 the timer (scheduled first, hence lower
// sequence number) wins the tie and the straggler ack hits a post-enrollment
// transaction; with a positive slack the ack wins and the cancelled timer
// must stay silent.
func TestEnrollTimeoutTieRace(t *testing.T) {
	for _, slack := range []float64{0, 1e-3} {
		t.Run(fmt.Sprintf("slack=%v", slack), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.EnrollSlack = slack
			cfg.TraceEvents = true
			c := mustCluster(t, fastLine(4), cfg)
			job, err := c.Submit(0, 0, parJob(t, 2, 10), 16)
			if err != nil {
				t.Fatal(err)
			}
			runAll(t, c) // asserts no violations, all idle (so site 3 is unlocked)
			if job.Outcome == Pending {
				t.Fatal("job never decided")
			}
			acsFixed, decided := 0, 0
			for _, e := range c.JobEvents(job.ID) {
				switch e.Kind {
				case EvACSFixed:
					acsFixed++
				case EvDecided:
					decided++
				}
			}
			if acsFixed != 1 {
				t.Fatalf("enrollment window closed %d times, want exactly 1", acsFixed)
			}
			if decided != 1 {
				t.Fatalf("job decided %d times, want exactly 1", decided)
			}
		})
	}
}

// TestSurplusOrderingBelowClampFloor: the clamp that keeps surpluses inside
// the mapper's (0, 1] domain must not erase the §9 ranking among saturated
// sites — ordering follows the true surplus even below the floor.
func TestSurplusOrderingBelowClampFloor(t *testing.T) {
	c := mustCluster(t, fastLine(4), DefaultConfig())
	s := c.sites[0]
	tx := &activeTxn{Txn: txn.New("x", []graph.NodeID{1, 2, 3}), job: &Job{ID: "x", AbsDeadline: 100}}
	tx.RecordEnrollment(1, txn.Enrollment{Surplus: 1e-5, Power: 1})
	tx.RecordEnrollment(2, txn.Enrollment{Surplus: 8e-4, Power: 1})
	tx.RecordEnrollment(3, txn.Enrollment{Surplus: 1e-6, Power: 1})
	tx.FixACS()
	procs := s.acsProcs(tx)
	var order []graph.NodeID
	for _, p := range procs {
		order = append(order, p.Site)
	}
	// Initiator is idle (surplus 1); the members rank by raw surplus
	// 8e-4 > 1e-5 > 1e-6 even though all three clamp to the same floor.
	want := []graph.NodeID{0, 2, 1, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("proc order %v, want %v (raw-surplus tie-break lost)", order, want)
		}
	}
	for _, p := range procs[1:] {
		if p.Surplus != 1e-3 {
			t.Fatalf("member surplus %v escaped the clamp floor", p.Surplus)
		}
	}
	if clampSurplus(2) != 1 {
		t.Fatal("clamp ceiling broken")
	}
	if clampSurplus(-5) != 1e-3 {
		t.Fatal("clamp floor broken")
	}
}

// TestLossyClusterTerminatesWithoutLeaks is the acceptance scenario: a
// 32-site cluster under a 10% message-loss (plus jitter) fault plan must
// decide every job, release every lock, keep no reservation of any rejected
// job anywhere, and behave identically when re-run with the same seed.
func TestLossyClusterTerminatesWithoutLeaks(t *testing.T) {
	run := func() (*Cluster, Summary) {
		cfg := DefaultConfig()
		cfg.Faults = &simnet.FaultPlan{Seed: 99, Loss: 0.1, MaxJitter: 0.05}
		topo := graph.RandomConnected(32, 3, graph.DelayRange{Min: 0.05, Max: 0.3}, 7)
		c := mustCluster(t, topo, cfg)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 150; i++ {
			at := rng.Float64() * 60
			origin := graph.NodeID(rng.Intn(32))
			width := 2 + rng.Intn(3)         // 2-4 parallel tasks
			deadline := 12 + rng.Float64()*8 // serial needs 16-32: most must distribute
			if _, err := c.Submit(at, origin, parJob(t, width, 8), deadline); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Run(); err != nil {
			t.Fatalf("run did not terminate cleanly: %v", err)
		}
		return c, c.Summarize()
	}

	c, sum := run()
	if !c.AllIdle() {
		t.Fatal("wedged locks or open transactions after drain")
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("genuine violations leaked through fault accounting: %v", v)
	}
	if sum.Undecided != 0 {
		t.Fatalf("%d jobs never decided", sum.Undecided)
	}
	if sum.Dropped == 0 {
		t.Fatal("fault plan injected no loss — test is vacuous")
	}
	if sum.Rejected == 0 {
		t.Fatal("no rejections under 10% loss — test is vacuous")
	}
	// No site may retain reservations of a rejected job.
	outcome := make(map[string]Outcome)
	for _, j := range c.Jobs() {
		outcome[j.ID] = j.Outcome
	}
	for id := 0; id < 32; id++ {
		for _, r := range c.SitePlanReservations(graph.NodeID(id)) {
			res := fmt.Sprintf("%v", r)
			for jobID, o := range outcome {
				if o == Rejected && containsJob(res, jobID) {
					t.Fatalf("site %d retains reservation of rejected job %s: %v", id, jobID, r)
				}
			}
		}
	}

	// Byte-identical repeat: the fault plan is seeded and the DES is
	// deterministic, so the whole faulty run must reproduce.
	_, sum2 := run()
	if fmt.Sprintf("%v", sum) != fmt.Sprintf("%v", sum2) {
		t.Fatalf("same seed diverged:\n%v\n%v", sum, sum2)
	}
}

// containsJob matches a reservation rendering against a job ID exactly
// (job IDs like j1@2 and j11@2 share prefixes, so substring is not enough).
func containsJob(res, jobID string) bool {
	return len(res) > 0 && (res == jobID ||
		// Reservation renders as {jN@M task start end}; the job ID is the
		// first space-delimited field after the brace.
		len(res) > len(jobID)+1 && res[1:len(jobID)+1] == jobID && res[len(jobID)+1] == ' ')
}

// TestCrashedInitiatorLeaseUnlocksMembers: the initiator dies right after
// its enrollment requests went out; its members' acks are lost against the
// dead site and so are the eventual unlocks. Without the lock lease both
// members would stay locked forever (the seed's silent-hang failure mode);
// with it the cluster drains, every site unlocks and no residue survives.
func TestCrashedInitiatorLeaseUnlocksMembers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = &simnet.FaultPlan{
		Crashes: []simnet.Crash{{Site: 0, At: 0.06}}, // permanent, mid-enrollment
	}
	cfg.TraceEvents = true
	c := mustCluster(t, fastLine(3), cfg)
	job, err := c.Submit(0, 0, parJob(t, 2, 10), 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.AllIdle() {
		t.Fatal("members stayed locked: lock lease never fired")
	}
	if job.Outcome != Rejected || job.RejectStage != StageEmptyACS {
		t.Fatalf("job outcome %v/%s, want rejected/%s (all acks lost)",
			job.Outcome, job.RejectStage, StageEmptyACS)
	}
	for id := 0; id < 3; id++ {
		if res := c.SitePlanReservations(graph.NodeID(id)); len(res) != 0 {
			t.Fatalf("site %d retains reservations %v after aborted enrollment", id, res)
		}
	}
	leases := 0
	for _, e := range c.Events() {
		if e.Kind == EvLeaseExpired {
			leases++
		}
	}
	if leases != 2 {
		t.Fatalf("%d lease expiries, want 2 (both enrolled members)", leases)
	}
}

// TestCrashedSiteRoutedAround: after a permanent crash is detected, the
// survivors repair their routing tables and later jobs enroll and route
// around the dead site.
func TestCrashedSiteRoutedAround(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = &simnet.FaultPlan{
		Crashes:     []simnet.Crash{{Site: 1, At: 5}},
		DetectDelay: 1,
	}
	c := mustCluster(t, ring5(), cfg)
	// Before the repair the sphere of site 0 includes its neighbor 1.
	preSphere := c.SiteSphere(0)
	found := false
	for _, m := range preSphere {
		if m == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("pre-crash sphere of site 0 misses neighbor 1: %v", preSphere)
	}
	// Submitted well after detection (t=5+1): must be served by the repaired
	// topology.
	job, err := c.Submit(10, 0, parJob(t, 2, 10), 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.AllIdle() {
		t.Fatal("cluster not idle after drain")
	}
	for _, m := range c.SiteSphere(0) {
		if m == 1 {
			t.Fatalf("dead site 1 still in site 0's sphere: %v", c.SiteSphere(0))
		}
	}
	if job.Outcome != AcceptedDistributed {
		t.Fatalf("post-repair job outcome %v/%s, want accepted-distributed via the surviving arc",
			job.Outcome, job.RejectStage)
	}
	if !job.MetDeadline() {
		t.Fatal("post-repair job missed its deadline")
	}
}

// TestFaultsOffByDefault: a nil (or empty) fault plan leaves the faultless
// paper model untouched — no leases, no retransmissions, no drops.
func TestFaultsOffByDefault(t *testing.T) {
	c := mustCluster(t, fastLine(3), DefaultConfig())
	if c.faultsOn() {
		t.Fatal("faults on without a plan")
	}
	cfg := DefaultConfig()
	cfg.Faults = &simnet.FaultPlan{} // present but inert
	c2 := mustCluster(t, fastLine(3), cfg)
	if c2.faultsOn() {
		t.Fatal("empty plan armed the fault machinery")
	}
	job, _ := c2.Submit(0, 0, parJob(t, 2, 10), 16)
	runAll(t, c2)
	if job.Outcome != AcceptedDistributed {
		t.Fatalf("outcome %v, want accepted-distributed", job.Outcome)
	}
	if d := c2.Stats().Dropped(); d != 0 {
		t.Fatalf("%d drops on a faultless cluster", d)
	}
}
