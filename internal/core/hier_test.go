package core

import (
	"math"
	"testing"

	"repro/internal/core/membership"
	"repro/internal/graph"
	"repro/internal/simnet"
)

func hierTopo(n int, seed int64) *graph.Graph {
	return graph.RandomConnected(n, 4, graph.DelayRange{Min: 0.05, Max: 0.3}, seed)
}

// TestHierClusterRegionLocalJobs: a hierarchical cluster bootstraps, resolves
// distributed jobs inside their origin's region, and generates ZERO
// cross-region protocol traffic while doing so — the headline property the
// regional commit spheres buy.
func TestHierClusterRegionLocalJobs(t *testing.T) {
	topo := hierTopo(64, 9)
	cfg := DefaultConfig()
	cfg.Hier = true
	c := mustCluster(t, topo, cfg)

	lay := c.Layout()
	if lay == nil {
		t.Fatal("hier cluster has no layout")
	}
	// Per-site routing state must be sub-linear: under √n regions every site
	// holds its region's table plus one landmark line per region.
	_, entries := c.RoutingState()
	if entries >= topo.Len() {
		t.Fatalf("per-site routing state %d entries at n=%d, want sub-linear", entries, topo.Len())
	}

	// The sphere of every site stays inside its region.
	for id := graph.NodeID(0); int(id) < topo.Len(); id++ {
		for _, m := range c.SiteSphere(id) {
			if !lay.SameRegion(id, m) {
				t.Fatalf("site %d sphere member %d is outside its region", id, m)
			}
		}
	}

	// Pick an origin with a non-trivial region sphere and submit a job that
	// must distribute (two 10-unit tasks, deadline 16).
	origin := graph.NodeID(-1)
	for id := graph.NodeID(0); int(id) < topo.Len(); id++ {
		if len(c.SiteSphere(id)) >= 2 {
			origin = id
			break
		}
	}
	if origin < 0 {
		t.Fatal("no site with a region-local sphere of >= 2")
	}
	job, err := c.Submit(0, origin, parJob(t, 2, 10), 16)
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	if job.Outcome != AcceptedDistributed {
		t.Fatalf("outcome = %v (stage %q), want accepted-distributed", job.Outcome, job.RejectStage)
	}
	if got := c.Stats().CrossMessages(); got != 0 {
		t.Fatalf("region-local job crossed region boundaries %d times", got)
	}
}

// TestHierEscalation: a region too small to hold any sphere member escalates
// its empty enrollment window to the adjacent region's landmark instead of
// rejecting — and the resulting ACS genuinely crosses the region border.
func TestHierEscalation(t *testing.T) {
	// Two sites, one link: two regions of one site each. Site 0's regional
	// sphere is empty, so any distributed job must escalate to site 1.
	topo := graph.New(2)
	topo.MustAddEdge(0, 1, 0.05)
	cfg := DefaultConfig()
	cfg.Hier = true
	cfg.TraceEvents = true
	c := mustCluster(t, topo, cfg)

	job, err := c.Submit(0, 0, parJob(t, 2, 10), 16)
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	if job.Outcome != AcceptedDistributed {
		t.Fatalf("outcome = %v (stage %q), want accepted-distributed via escalation",
			job.Outcome, job.RejectStage)
	}
	escalated := false
	for _, e := range c.Events() {
		if e.Kind == EvEscalate {
			escalated = true
		}
	}
	if !escalated {
		t.Fatal("no escalate event recorded")
	}
	if got := c.Stats().CrossMessages(); got == 0 {
		t.Fatal("escalated job crossed no region boundary")
	}
}

// TestHierDeterministic: two hierarchical clusters over the same topology
// produce identical summaries, and the landmark structure is a pure
// function of the graph.
func TestHierDeterministic(t *testing.T) {
	run := func() (Summary, []graph.NodeID) {
		topo := hierTopo(48, 3)
		cfg := DefaultConfig()
		cfg.Hier = true
		c := mustCluster(t, topo, cfg)
		for i := 0; i < 6; i++ {
			if _, err := c.Submit(float64(i)*5, graph.NodeID(i*7%48), parJob(t, 2, 10), 16); err != nil {
				t.Fatal(err)
			}
		}
		runAll(t, c)
		return c.Summarize(), append([]graph.NodeID(nil), c.Layout().Landmarks...)
	}
	a, la := run()
	b, lb := run()
	if a.String() != b.String() {
		t.Fatalf("summaries differ:\n%s\n%s", a.String(), b.String())
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("landmark %d differs across runs: %d vs %d", i, la[i], lb[i])
		}
	}
}

// TestHierMembershipRegionScoped: with membership armed on a hierarchical
// cluster, a crash inside one region is detected and repaired by the
// region's own heartbeats, the survivors keep routing, and the region's
// landmark shares a liveness digest with its adjacent peers.
func TestHierMembershipRegionScoped(t *testing.T) {
	topo := hierTopo(32, 5)
	cfg := DefaultConfig()
	cfg.Hier = true
	cfg.Membership = membership.Config{
		Enabled: true, HeartbeatEvery: 1, SuspectAfter: 3, Horizon: 40,
	}
	lay := mustLayout(t, topo)
	// Crash a non-landmark site whose region has at least 3 members, so the
	// region stays connected enough to detect and repair.
	victim := graph.NodeID(-1)
	for id := graph.NodeID(0); int(id) < topo.Len(); id++ {
		r := lay.Region(id)
		if lay.Landmarks[r] != id && len(lay.Members[r]) >= 3 {
			victim = id
			break
		}
	}
	if victim < 0 {
		t.Fatal("no suitable victim")
	}
	cfg.Faults = &simnet.FaultPlan{Crashes: []simnet.Crash{{Site: victim, At: 2}}}
	c := mustCluster(t, topo, cfg)
	runAll(t, c)

	vr := lay.Region(victim)
	sawDigest := false
	for _, snap := range c.MembershipSnapshots() {
		if snap.Self == victim {
			continue
		}
		if lay.Region(snap.Self) == vr {
			// Region mates must have detected the death.
			if snap.Deaths == 0 {
				t.Fatalf("region mate %d of crashed %d saw no death", snap.Self, victim)
			}
		} else if snap.Deaths != 0 {
			// Membership gossip is region-scoped: other regions never learn.
			t.Fatalf("site %d outside region %d learned of the death via gossip", snap.Self, vr)
		}
	}
	// Adjacent landmarks learned through the landmark digest channel instead.
	for _, r := range lay.Adjacent[vr] {
		views := c.RemoteRegionViews(lay.Landmarks[r])
		for _, e := range views[vr] {
			if e.Site == victim && e.Dead {
				sawDigest = true
			}
		}
	}
	if !sawDigest {
		t.Fatalf("no adjacent landmark received region %d's death digest", vr)
	}
}

// mustLayout mirrors the cluster's own layout derivation for test setup.
func mustLayout(t *testing.T, topo *graph.Graph) *layoutView {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Hier = true
	c, err := NewCluster(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := c.Layout()
	return &layoutView{
		Landmarks: l.Landmarks,
		Members:   l.Members,
		Adjacent:  l.Adjacent,
		assign:    l.Assign,
	}
}

type layoutView struct {
	Landmarks []graph.NodeID
	Members   [][]graph.NodeID
	Adjacent  [][]int
	assign    []int
}

func (v *layoutView) Region(id graph.NodeID) int { return v.assign[id] }

// TestHierNodeModeRejected: the hierarchy needs the in-process cluster.
func TestHierNodeModeRejected(t *testing.T) {
	topo := fastLine(3)
	cfg := DefaultConfig()
	cfg.Hier = true
	tr := simnet.NewDES(nil, topo)
	if _, err := NewNode(topo, cfg, tr, 0); err == nil {
		t.Fatal("NewNode accepted Hier")
	}
}

// TestHierDistancesFinite: the ω computation must see finite distances to
// every escalation landmark from every site.
func TestHierDistancesFinite(t *testing.T) {
	topo := hierTopo(48, 7)
	cfg := DefaultConfig()
	cfg.Hier = true
	c := mustCluster(t, topo, cfg)
	lay := c.Layout()
	for id := graph.NodeID(0); int(id) < topo.Len(); id++ {
		s := c.sites[id]
		for _, lm := range s.hierTable.EscalationLandmarks() {
			if d := s.table.Dist(lm); math.IsInf(d, 1) {
				t.Fatalf("site %d has infinite distance to escalation landmark %d", id, lm)
			}
		}
		_ = lay
	}
}
