package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core/txn"
	"repro/internal/dag"
	"repro/internal/graph"
	"repro/internal/mapper"
	"repro/internal/matching"
)

// This file is the initiator's half of the protocol: it drives one txn
// state machine per distributed job through enroll → validate → commit,
// translating each guarded transition into the sends, mapper invocations
// and plan commits of §8–§11. Member-side handlers live in member.go,
// execution in exec.go.

// ---------------------------------------------------------------------------
// Enrollment (§8)

// startTxn opens a transaction: the sphere policy's precomputed enrollment
// fan-out (cached per table adoption, see adoptTable) is locked-by-request
// and the window timer is armed.
func (s *Site) startTxn(job *Job) {
	expected := s.enrollSet
	s.cluster.event(s.id, job.ID, EvEnroll, fmt.Sprintf("pcs=%d", len(expected)))
	s.lock(s.id, job.ID)
	t := &activeTxn{Txn: txn.New(job.ID, expected), job: job}
	s.txns[job.ID] = t
	timeout := 2*s.enrollDiam + s.cluster.cfg.EnrollSlack
	for _, m := range expected {
		s.sendTo(m, EnrollReq{Job: job.ID, Initiator: s.id, Window: timeout})
	}
	t.SetTimer(s.after(timeout, func() { s.enrollDone(t) }))
}

// onEnrollAck collects members at the initiator. Acks for finished
// transactions (stragglers that were deferred past the enrollment window)
// get an immediate unlock so the member is not stranded.
func (s *Site) onEnrollAck(m EnrollAck) {
	t, ok := s.txns[m.Job]
	if !ok || t.Phase() != txn.Enrolling {
		s.sendTo(m.Member, UnlockMsg{Job: m.Job, From: s.id})
		return
	}
	if t.RecordEnrollment(m.Member, txn.Enrollment{Surplus: m.Surplus, Power: m.Power, Dists: m.Dists}) {
		// Cancel before closing the window: if the expiry timer fires at
		// the same instant as this ack (or has already been queued on the
		// live transport), the nil-ed handle plus enrollDone's phase guard
		// keep the window from being closed twice.
		t.StopTimer()
		s.enrollDone(t)
	}
}

// enrollDone closes the enrollment window: the ACS is fixed (§8) and the
// mapper runs (§9, §12). It is reachable from both the final EnrollAck and
// the expiry timer; the txn phase guard makes the second entry a no-op
// whichever path wins the race.
func (s *Site) enrollDone(t *activeTxn) {
	if !t.CloseEnrollment() {
		return
	}
	job := t.job

	// On a resilient cluster an expected member may be locked for us while
	// its ack was lost in transit: release the stragglers eagerly (their
	// lock lease is the backstop if this unlock is lost too). Faultless
	// clusters skip this — a missing ack there only means the member
	// deferred, and the existing straggler path unlocks it when the late
	// ack arrives.
	if s.cluster.resilient() && t.Enrollments() < len(t.Expected) {
		for _, m := range t.MissingEnrollments() {
			s.sendTo(m, UnlockMsg{Job: job.ID, From: s.id})
		}
	}

	if t.Enrollments() == 0 {
		// Nobody enrolled before the window closed (§8). On a hierarchical
		// cluster the sphere was region-local, so before rejecting the
		// initiator escalates once: the window reopens toward the adjacent
		// regions' landmarks — the ACS-underflow widening of the regional
		// commit sphere. Flat clusters (and a second underflow) reject
		// without attempting an initiator-only mapping — the local test
		// already failed, and the paper distributes or rejects.
		if s.escalateEnrollment(t) {
			return
		}
		s.cluster.event(s.id, job.ID, EvACSFixed, "acs=1 (nobody enrolled)")
		s.finishTxn(t, Rejected, StageEmptyACS)
		return
	}

	acs := t.FixACS()
	s.cluster.noteJobACS(job, len(acs)+1) // initiator included
	s.cluster.event(s.id, job.ID, EvACSFixed, fmt.Sprintf("acs=%d", job.ACSSize))

	omega := s.acsDiameter(t)
	t.Omega = omega
	procs := s.acsProcs(t)
	rEff := s.now() + s.cluster.cfg.ReleasePadFactor*omega
	tm, err := mapper.Build(job.Graph, procs, omega, rEff, job.AbsDeadline, mapper.Options{
		Heuristic:  s.mapperPol.Heuristic(),
		LaxityMode: s.dispatchPol.LaxityMode(),
		Throughput: s.cluster.cfg.Throughput,
	})
	if err != nil {
		s.finishTxn(t, Rejected, StageMapper)
		return
	}
	t.TM = tm
	s.cluster.noteJobProcs(job, tm.NumProcs())
	s.cluster.event(s.id, job.ID, EvMapped,
		fmt.Sprintf("procs=%d case=%s M=%.3g M*=%.3g", tm.NumProcs(), tm.Case, tm.Makespan, tm.IdealMakespan))

	// Broadcast M in the ACS (§10); endorse locally in place.
	windows := make([][]mapper.TaskWindow, tm.NumProcs())
	for i := range windows {
		windows[i] = tm.Tasks(job.Graph, i)
	}
	t.BeginValidation()
	for _, m := range acs {
		t.ExpectEndorsement(m)
		s.sendTo(m, ValidateReq{Job: job.ID, Initiator: s.id, NumProcs: tm.NumProcs(), Windows: windows})
	}
	t.SetEndorsement(s.id, s.endorsable(job.ID, windows))
	if t.Awaiting() == 0 {
		s.finishValidation(t)
		return
	}
	// Validation timeout, mirroring the enrollment window: the round trip
	// inside the ACS is bounded by 2ω, so on a faultless cluster this timer
	// is always cancelled; a lost ValidateReq or ack turns into a reject
	// instead of a wedged initiator.
	t.SetTimer(s.after(2*omega+s.cluster.cfg.EnrollSlack, func() { s.validateTimeout(t) }))
}

// escalateEnrollment reopens an enrollment window that closed empty, once,
// toward the adjacent regions' landmarks (hierarchical clusters only): the
// regional commit sphere underflowed, so the transaction widens its fan-out
// beyond the region border — to exactly the sites the landmark vector can
// reach deterministically — instead of rejecting. Returns false when there
// is nothing to escalate to (flat cluster, already escalated, or no
// reachable adjacent landmark), leaving the reject path to the caller.
func (s *Site) escalateEnrollment(t *activeTxn) bool {
	if s.hierTable == nil || t.Escalated {
		return false
	}
	already := make(map[graph.NodeID]bool, len(t.Expected))
	for _, m := range t.Expected {
		already[m] = true
	}
	var extra []graph.NodeID
	var diam float64
	for _, lm := range s.hierTable.EscalationLandmarks() {
		if lm == s.id || already[lm] {
			continue
		}
		extra = append(extra, lm)
		if d := s.table.Dist(lm); !math.IsInf(d, 1) && d > diam {
			diam = d
		}
	}
	if len(extra) == 0 {
		return false
	}
	t.Reopen(extra)
	timeout := 2*diam + s.cluster.cfg.EnrollSlack
	s.cluster.event(s.id, t.job.ID, EvEscalate,
		fmt.Sprintf("landmarks=%d window=%.3g", len(extra), timeout))
	for _, m := range extra {
		s.sendTo(m, EnrollReq{Job: t.job.ID, Initiator: s.id, Window: timeout})
	}
	t.SetTimer(s.after(timeout, func() { s.enrollDone(t) }))
	return true
}

// validateTimeout closes the validation phase when members went silent:
// missing answers count as empty endorsements and the coupling runs on what
// arrived, which typically rejects the job and unlocks everyone.
func (s *Site) validateTimeout(t *activeTxn) {
	missing, fired := t.TimeoutValidation()
	if !fired {
		return
	}
	s.cluster.event(s.id, t.job.ID, EvPhaseTimeout,
		fmt.Sprintf("validate missing=%d", missing))
	s.finishValidation(t)
}

// acsDiameter computes ω: the largest pairwise known delay among ACS
// members (initiator included), from the initiator's own table plus the
// enrollees' distance vectors (DESIGN.md §6.3).
func (s *Site) acsDiameter(t *activeTxn) float64 {
	members := append([]graph.NodeID{s.id}, t.ACS...)
	inACS := make(map[graph.NodeID]bool, len(members))
	for _, m := range members {
		inACS[m] = true
	}
	var omega float64
	consider := func(d float64) {
		if !math.IsInf(d, 1) && d > omega {
			omega = d
		}
	}
	for _, m := range t.ACS {
		consider(s.table.Dist(m))
		for _, e := range t.Enrollment(m).Dists {
			if inACS[e.Dest] {
				consider(e.Dist)
			}
		}
	}
	return omega
}

// acsProcs builds the mapper input: ACS members with surpluses in
// descending order (§9). The initiator contributes its own current surplus;
// with UseLocalKnowledge it measures itself over the job's actual window
// (§13), which its own plan lets it do exactly. Ordering uses the *raw*
// surpluses: the clamp that keeps the mapper's domain sane collapses every
// saturated site onto the same floor, and sorting the clamped values would
// reduce the §9 surplus ranking to a site-ID lottery among exactly the
// sites where the ranking matters most.
func (s *Site) acsProcs(t *activeTxn) []mapper.ProcInfo {
	selfWindow := s.cluster.cfg.SurplusWindow
	if s.cluster.cfg.UseLocalKnowledge {
		if w := t.job.AbsDeadline - s.now(); w > 1e-6 {
			selfWindow = w
		}
	}
	type rankedProc struct {
		info mapper.ProcInfo
		raw  float64
	}
	selfRaw := s.plan.Surplus(s.now(), selfWindow)
	ranked := make([]rankedProc, 0, len(t.ACS)+1)
	ranked = append(ranked, rankedProc{
		info: mapper.ProcInfo{Site: s.id, Surplus: clampSurplus(selfRaw), Power: s.power},
		raw:  selfRaw,
	})
	for _, m := range t.ACS {
		a := t.Enrollment(m)
		ranked = append(ranked, rankedProc{
			info: mapper.ProcInfo{Site: m, Surplus: clampSurplus(a.Surplus), Power: a.Power},
			raw:  a.Surplus,
		})
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].raw != ranked[j].raw {
			return ranked[i].raw > ranked[j].raw
		}
		return ranked[i].info.Site < ranked[j].info.Site
	})
	procs := make([]mapper.ProcInfo, len(ranked))
	for i, r := range ranked {
		procs[i] = r.info
	}
	return procs
}

// clampSurplus keeps a measured surplus inside the mapper's (0, 1] domain:
// a fully booked site still has an arbitrarily small surplus, not zero.
func clampSurplus(v float64) float64 {
	const floor = 1e-3
	if v < floor {
		return floor
	}
	if v > 1 {
		return 1
	}
	return v
}

// ---------------------------------------------------------------------------
// Validation (§10)

// onValidateAck collects endorsements at the initiator; when all ACS members
// have answered it computes the maximum coupling (§10).
func (s *Site) onValidateAck(m ValidateAck) {
	t, ok := s.txns[m.Job]
	if !ok {
		return
	}
	counted, complete := t.RecordEndorsement(m.Member, m.Endorsable)
	if !counted {
		return
	}
	if complete {
		t.StopTimer()
		s.finishValidation(t)
	}
}

// finishValidation computes the maximum coupling between ACS members and
// logical processors (§10); a perfect matching on the processors yields the
// permutation that executes the job (§11).
func (s *Site) finishValidation(t *activeTxn) {
	members := append([]graph.NodeID{s.id}, t.ACS...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

	b := matching.NewBipartite(len(members), t.TM.NumProcs())
	for li, m := range members {
		for _, proc := range t.Endorse[m] {
			if proc >= 0 && proc < t.TM.NumProcs() {
				b.AddEdge(li, proc)
			}
		}
	}
	res := b.MaximumMatching()
	s.cluster.event(s.id, t.job.ID, EvValidated,
		fmt.Sprintf("coupling=%d/%d", res.Size, t.TM.NumProcs()))
	if !res.PerfectOnRight() {
		s.finishTxn(t, Rejected, StageMatching)
		return
	}

	t.BeginCommit()
	t.Assignment = make(map[int]graph.NodeID, t.TM.NumProcs())
	procOf := make(map[graph.NodeID]int, len(members))
	for _, m := range members {
		procOf[m] = -1
	}
	for proc, li := range res.RightAssignment() {
		t.Assignment[proc] = members[li]
		procOf[members[li]] = proc
	}
	taskSites := make(map[dag.TaskID]graph.NodeID, t.job.Graph.Len())
	for _, id := range t.job.Graph.TaskIDs() {
		taskSites[id] = t.Assignment[t.TM.Assign[id].Proc]
	}

	// The initiator endorses its share first: if even the local insertion
	// fails there is no point dispatching code.
	t.SelfOK = true
	if myProc := procOf[s.id]; myProc >= 0 {
		t.SelfOK = s.commitShare(t.job, myProc, t.job.Graph, taskSites)
	} else {
		delete(s.memberTickets, t.job.ID)
	}
	if !t.SelfOK {
		s.finishTxn(t, Rejected, StageCommit)
		return
	}

	for _, m := range t.ACS {
		proc := procOf[m]
		msg := CommitMsg{Job: t.job.ID, Initiator: s.id, Proc: proc}
		if proc >= 0 {
			n := len(t.TM.Tasks(t.job.Graph, proc))
			msg.Graph = t.job.Graph
			msg.TaskSites = taskSites
			msg.CodeBytes = n * s.cluster.cfg.CodeBytesPerTask
			t.ExpectCommitAck(m)
		}
		s.sendTo(m, msg)
	}
	t.CommitsSent = true
	s.cluster.event(s.id, t.job.ID, EvCommit, fmt.Sprintf("executing=%d", t.CommitsOutstanding()+1))
	if t.CommitsOutstanding() == 0 {
		s.commitResolved(t)
		return
	}
	// Commit timeout, mirroring the enrollment window: a lost commit or
	// CommitAck resolves the transaction as a failed commit (abort
	// everywhere) instead of wedging the initiator's lock forever.
	t.SetTimer(s.after(2*t.Omega+s.cluster.cfg.EnrollSlack, func() { s.commitTimeout(t) }))
}

// ---------------------------------------------------------------------------
// Commit resolution (§11)

// commitTimeout resolves the commit phase when executing members went
// silent. The silent members may or may not have committed their shares;
// aborting everywhere is the only safe resolution, and on faulty clusters
// the abort unlocks are retransmitted until acknowledged.
func (s *Site) commitTimeout(t *activeTxn) {
	missing, fired := t.TimeoutCommit()
	if !fired {
		return
	}
	s.cluster.event(s.id, t.job.ID, EvPhaseTimeout,
		fmt.Sprintf("commit missing=%d", missing))
	s.commitResolved(t)
}

// onCommitAck finalizes the transaction at the initiator once every
// executing member confirmed (or refused) its insertion.
func (s *Site) onCommitAck(m CommitAck) {
	t, ok := s.txns[m.Job]
	if !ok {
		return
	}
	counted, complete := t.RecordCommitAck(m.Member, m.OK)
	if !counted {
		return
	}
	if complete {
		t.StopTimer()
		s.commitResolved(t)
	}
}

func (s *Site) commitResolved(t *activeTxn) {
	if t.CommitFail {
		// Abort everywhere: members cancel any reservations of the job.
		for _, m := range t.ACS {
			s.sendTo(m, UnlockMsg{Job: t.job.ID, From: s.id, Abort: true})
		}
		if s.cluster.resilient() {
			s.trackAbort(t)
		}
		s.cancelExecution(t.job.ID)
		s.plan.CancelJob(t.job.ID)
		stage := StageCommit
		if t.ComTimedOut {
			stage = StageCommitTimeout
		}
		s.finishTxn(t, Rejected, stage)
		return
	}
	s.finishTxn(t, AcceptedDistributed, "")
}

// trackAbort records which executing members must acknowledge the abort
// unlock just sent, and arms the retransmission timer. Only members that
// were dispatched a real share can hold reservations; release-only members
// need no acknowledgement (their lock lease is backstop enough).
func (s *Site) trackAbort(t *activeTxn) {
	var executing []graph.NodeID
	for _, m := range t.ACS {
		if t.Assignment != nil {
			//lint:allow mapiter -- membership test: appends at most once per ACS member then breaks, so iteration order cannot reach the output
			for _, site := range t.Assignment {
				if site == m {
					executing = append(executing, m)
					break
				}
			}
		}
	}
	if len(executing) == 0 {
		return
	}
	ar := txn.NewAbortRetry(executing)
	s.aborts[t.job.ID] = ar
	s.scheduleAbortRetry(t.job.ID, ar)
}

func (s *Site) scheduleAbortRetry(job string, ar *txn.AbortRetry) {
	interval := 4*s.sphereDiam + s.cluster.cfg.EnrollSlack
	if f := s.cluster.cfg.Faults; f != nil {
		interval += 2 * f.MaxJitter
	}
	ar.Arm(s.after(interval, func() { s.abortRetryFire(job, ar) }))
}

// abortRetryFire retransmits the abort unlock to members that have not
// acknowledged it. Retries are bounded so runs with permanently dead
// members still terminate; giving up is traced.
func (s *Site) abortRetryFire(job string, ar *txn.AbortRetry) {
	ar.TimerFired()
	if len(ar.Members) == 0 {
		delete(s.aborts, job)
		return
	}
	if !ar.NextTry() {
		s.cluster.event(s.id, job, EvAbortRetry,
			fmt.Sprintf("gave up on %d members after %d tries", len(ar.Members), txn.MaxAbortTries))
		delete(s.aborts, job)
		return
	}
	s.cluster.event(s.id, job, EvAbortRetry,
		fmt.Sprintf("try %d to %d members", ar.Tries, len(ar.Members)))
	for _, m := range ar.Members {
		s.sendTo(m, UnlockMsg{Job: job, From: s.id, Abort: true})
	}
	s.scheduleAbortRetry(job, ar)
}

// onUnlockAck clears one member from an abort's retransmission set.
func (s *Site) onUnlockAck(m UnlockAck) {
	ar := s.aborts[m.Job]
	if ar == nil {
		return
	}
	if ar.Ack(m.Member) {
		ar.Stop()
		delete(s.aborts, m.Job)
	}
}

// finishTxn records the decision, unlocks the ACS when the members have not
// yet received their commit/release messages, unlocks the initiator, and
// replays deferred work.
func (s *Site) finishTxn(t *activeTxn, outcome Outcome, stage RejectStage) {
	if !t.Finish() {
		return
	}
	delete(s.txns, t.job.ID)
	if outcome == Rejected && !t.CommitsSent {
		// "the DAG is rejected and ACS members are unlocked" (§10). This
		// also covers a commit that failed at the initiator itself before
		// anything was dispatched.
		for _, m := range t.ACS {
			s.sendTo(m, UnlockMsg{Job: t.job.ID, From: s.id})
		}
		delete(s.memberTickets, t.job.ID)
	}
	s.cluster.recordDecision(t.job, outcome, stage, s.now())
	s.unlock()
}
