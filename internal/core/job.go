package core

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/graph"
)

// Outcome is the final fate of a submitted job.
type Outcome int

const (
	// Pending: no decision yet.
	Pending Outcome = iota
	// AcceptedLocal: the whole DAG was guaranteed on the arrival site (§5).
	AcceptedLocal
	// AcceptedDistributed: guaranteed across the ACS via trial mapping,
	// validation and the coupling permutation (§9–§11).
	AcceptedDistributed
	// Rejected: the system could not guarantee the deadline.
	Rejected
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Pending:
		return "pending"
	case AcceptedLocal:
		return "accepted-local"
	case AcceptedDistributed:
		return "accepted-distributed"
	case Rejected:
		return "rejected"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// RejectStage names the protocol stage at which a job was turned away. It
// is a named type so switches over it fall under the exhaustive analyzer
// and so a stage can't be confused with an arbitrary string; schemes
// outside the RTDS protocol may still mint their own values (it is an open
// string enum, e.g. the baselines' "no-candidates").
type RejectStage string

// Rejection stages, recorded for diagnosis and the experiment breakdowns.
const (
	StageLocalOnly RejectStage = "local-only" // local test failed and distribution is off
	StageNoSphere  RejectStage = "no-sphere"  // PCS is empty (radius 0 or isolated site)
	StageEmptyACS  RejectStage = "empty-acs"  // nobody enrolled before the window closed
	StageMapper    RejectStage = "mapper"     // case (i) or inconsistent windows
	StageMatching  RejectStage = "matching"   // maximum coupling smaller than |U|
	StageCommit    RejectStage = "commit"     // a site could not honour its validated slots

	// Timeout stages: the phase window expired before every answer arrived
	// (lost messages, crashed members or excessive delay).
	StageValidateTimeout RejectStage = "validate-timeout"
	StageCommitTimeout   RejectStage = "commit-timeout"
)

// Job is one sporadic real-time job: a DAG with an arrival site, arrival
// time and absolute deadline. The zero value is not valid; Cluster.Submit
// creates jobs.
type Job struct {
	ID          string
	Graph       *dag.Graph
	Origin      graph.NodeID
	Arrival     float64 // absolute virtual time
	AbsDeadline float64

	Outcome     Outcome
	RejectStage RejectStage
	DecisionAt  float64 // when the accept/reject decision was made
	CompletedAt float64 // when the last task finished (accepted jobs)
	Done        bool    // all tasks completed

	ACSSize  int // members enrolled (initiator included), 0 if never distributed
	NumProcs int // |U| of the accepted mapping

	remaining map[dag.TaskID]bool // tasks not yet completed (initiator's view)
}

// Window is the job's relative deadline d − r.
func (j *Job) Window() float64 { return j.AbsDeadline - j.Arrival }

// Accepted reports whether the job was guaranteed.
func (j *Job) Accepted() bool {
	return j.Outcome == AcceptedLocal || j.Outcome == AcceptedDistributed
}

// MetDeadline reports whether the job completed within its deadline.
func (j *Job) MetDeadline() bool {
	return j.Done && j.CompletedAt <= j.AbsDeadline+1e-9
}
