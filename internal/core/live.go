package core

import (
	"fmt"
	"time"

	"repro/internal/dag"
	"repro/internal/graph"
	"repro/internal/simnet"
)

// LiveCluster runs the same Site state machines on the goroutine-backed
// live transport: one goroutine per site, real (scaled) time, genuine
// concurrency. It exists for demonstration and for the DES-equivalence
// tests; experiments use the deterministic Cluster.
type LiveCluster struct {
	*Cluster
	live *simnet.Live
}

// NewLiveCluster builds the cluster, starts the transport and runs the PCS
// bootstrap, blocking until it quiesces. scale is the wall-clock duration of
// one virtual time unit.
func NewLiveCluster(topo *graph.Graph, cfg Config, scale time.Duration) (*LiveCluster, error) {
	if err := cfg.validate(topo.Len()); err != nil {
		return nil, err
	}
	if !topo.Connected() {
		return nil, fmt.Errorf("core: topology is not connected")
	}
	live := simnet.NewLive(topo, scale)
	c := &Cluster{
		cfg:      cfg,
		mcfg:     cfg.membershipConfig(),
		topo:     topo,
		tr:       live,
		jobIndex: make(map[string]*Job),
	}
	lc := &LiveCluster{Cluster: c, live: live}
	c.sites = make([]*Site, topo.Len())
	for id := graph.NodeID(0); int(id) < topo.Len(); id++ {
		s := newSite(id, c)
		c.sites[id] = s
		live.Attach(id, s.handle)
	}
	live.Start()
	// Kick the bootstrap from each site's own execution context.
	for _, s := range c.sites {
		s := s
		live.After(s.id, 0, func() { s.rnode.Start() })
	}
	if !live.WaitIdle(30 * time.Second) {
		live.Close()
		return nil, fmt.Errorf("core: live PCS bootstrap did not quiesce")
	}
	for _, s := range c.sites {
		if s.table == nil {
			live.Close()
			return nil, fmt.Errorf("core: site %d never finished live PCS construction", s.id)
		}
	}
	c.epoch = live.Now()
	c.bootstrapMessages = live.Stats().Messages()
	c.bootstrapBytes = live.Stats().Bytes()
	live.Stats().Reset()
	c.armFaults()
	c.armMembership()
	return lc, nil
}

// Submit injects a job arrival `at` virtual time units after the epoch
// (0 = as soon as possible) through the origin site's execution context.
// Validation matches the DES Cluster.Submit exactly so the two transports
// keep equivalent APIs; the only live-specific adjustment is clamping an
// arrival the wall clock has already passed up to now.
func (lc *LiveCluster) Submit(at float64, origin graph.NodeID, g *dag.Graph, relDeadline float64) (*Job, error) {
	if at < 0 {
		return nil, fmt.Errorf("core: negative submission time %v", at)
	}
	if int(origin) < 0 || int(origin) >= len(lc.sites) {
		return nil, fmt.Errorf("core: origin site %d out of range", origin)
	}
	if relDeadline <= 0 {
		return nil, fmt.Errorf("core: non-positive relative deadline %v", relDeadline)
	}
	lc.mu.Lock()
	lc.jobSeq++
	arrival := lc.epoch + at
	if now := lc.live.Now(); arrival < now {
		arrival = now
	}
	job := &Job{
		ID:          fmt.Sprintf("j%d@%d", lc.jobSeq, origin),
		Graph:       g,
		Origin:      origin,
		Arrival:     arrival,
		AbsDeadline: arrival + relDeadline,
		remaining:   make(map[dag.TaskID]bool, g.Len()),
	}
	for _, id := range g.TaskIDs() {
		job.remaining[id] = true
	}
	lc.jobs = append(lc.jobs, job)
	lc.jobIndex[job.ID] = job
	lc.mu.Unlock()
	site := lc.sites[origin]
	delay := arrival - lc.live.Now()
	if delay < 0 {
		delay = 0
	}
	lc.live.After(origin, delay, func() { site.jobArrives(job) })
	return job, nil
}

// Wait blocks until the cluster quiesces (all decisions made, executions
// scheduled) or the timeout elapses.
func (lc *LiveCluster) Wait(timeout time.Duration) bool {
	return lc.live.WaitIdle(timeout)
}

// AllIdle reports whether every site has released its lock, drained its
// deferred queue and closed its transactions. Unlike the DES cluster's
// check, site state here is owned by per-site goroutines, so each probe is
// routed through its site's execution context instead of reading the fields
// from the caller's goroutine (which would race with message handlers).
// Must not be called after Close.
func (lc *LiveCluster) AllIdle() bool {
	results := make(chan bool, len(lc.sites))
	for _, s := range lc.sites {
		s := s
		lc.live.After(s.id, 0, func() {
			results <- !s.locked() && len(s.deferred) == 0 && len(s.txns) == 0
		})
	}
	idle := true
	for range lc.sites {
		if !<-results {
			idle = false
		}
	}
	return idle
}

// ReservationJobIDs reports, per site, the distinct job IDs with committed
// reservations in that site's plan. Like AllIdle, each probe is routed
// through its site's execution context so the read does not race with
// message handlers; call it only after the cluster has quiesced enough for
// the answer to be meaningful. Must not be called after Close.
func (lc *LiveCluster) ReservationJobIDs() map[graph.NodeID][]string {
	type probe struct {
		site graph.NodeID
		jobs []string
	}
	results := make(chan probe, len(lc.sites))
	for _, s := range lc.sites {
		s := s
		lc.live.After(s.id, 0, func() {
			seen := make(map[string]bool)
			var jobs []string
			for _, r := range s.plan.Reservations() {
				if !seen[r.Job] {
					seen[r.Job] = true
					jobs = append(jobs, r.Job)
				}
			}
			results <- probe{s.id, jobs}
		})
	}
	out := make(map[graph.NodeID][]string, len(lc.sites))
	for range lc.sites {
		p := <-results
		if len(p.jobs) > 0 {
			out[p.site] = p.jobs
		}
	}
	return out
}

// Close shuts down the transport goroutines.
func (lc *LiveCluster) Close() { lc.live.Close() }
