package core

import (
	"sync"
	"testing"
	"time"
)

// TestLiveClusterCloseIdempotent exercises the shutdown ordering the node
// binary depends on: Close must be safe to call repeatedly and from several
// goroutines at once, must let in-flight protocol traffic drain instead of
// panicking mid-cascade, and must leave the process able to build and run a
// fresh cluster afterwards. Run under -race in CI.
func TestLiveClusterCloseIdempotent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnrollSlack = 2
	cfg.ReleasePadFactor = 30
	lc, err := NewLiveCluster(fastLine(4), cfg, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	// Submit jobs and close immediately: the transactions are mid-flight
	// when teardown starts, which is exactly the reuse hazard.
	for i := 0; i < 3; i++ {
		if _, err := lc.Submit(0, 0, parJob(t, 3, 5), 1000); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lc.Close()
		}()
	}
	wg.Wait()
	lc.Close() // and once more after everything returned

	// The process must remain healthy: a fresh cluster on the same topology
	// bootstraps and decides jobs after the old one was torn down.
	lc2, err := NewLiveCluster(fastLine(4), cfg, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	defer lc2.Close()
	job, err := lc2.Submit(0, 1, chainJob(t, 2, 1), 500)
	if err != nil {
		t.Fatal(err)
	}
	if !lc2.Wait(30 * time.Second) {
		t.Fatal("fresh cluster did not quiesce")
	}
	if job.Outcome == Pending {
		t.Fatal("fresh cluster left the job undecided")
	}
	if v := lc2.Violations(); len(v) != 0 {
		t.Fatalf("violations on fresh cluster: %v", v)
	}
}
