package core

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/simnet"
)

// TestLiveMatchesDESDecisions runs the same single-job scenarios on the
// deterministic DES transport and the goroutine-backed live transport and
// requires identical admission decisions (experiment E10).
func TestLiveMatchesDESDecisions(t *testing.T) {
	type scenario struct {
		name string
		par  int     // independent tasks
		dur  float64 // per-task duration
		dl   float64 // relative deadline
		want Outcome
	}
	scenarios := []scenario{
		{"local", 1, 5, 50, AcceptedLocal},
		// Deadline 19 < 20 (serial) forces distribution while leaving ~4
		// virtual units of margin over protocol latency and real jitter.
		{"distributed", 2, 10, 19, AcceptedDistributed},
		{"impossible", 2, 10, 3, Rejected},
	}
	// On the live transport message handling takes real time that the
	// DES models as zero, so the timeouts derived from link delays alone
	// (enrollment window, release padding) need real slack. The same config
	// drives both transports; the DES outcome is insensitive to the extra
	// slack because every site answers immediately in virtual time.
	cfg := DefaultConfig()
	cfg.EnrollSlack = 2
	cfg.ReleasePadFactor = 25
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			topo := fastLine(3)
			des := mustCluster(t, topo, cfg)
			dj, err := des.Submit(0, 0, parJob(t, sc.par, sc.dur), sc.dl)
			if err != nil {
				t.Fatal(err)
			}
			runAll(t, des)
			if dj.Outcome != sc.want {
				t.Fatalf("DES outcome %v, want %v", dj.Outcome, sc.want)
			}

			// The live clock is wall-clock-driven: the scale must dwarf Go
			// scheduling jitter or real latency eats the virtual deadline.
			live, err := NewLiveCluster(topo, cfg, 10*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			defer live.Close()
			lj, err := live.Submit(0, 0, parJob(t, sc.par, sc.dur), sc.dl)
			if err != nil {
				t.Fatal(err)
			}
			if !live.Wait(30 * time.Second) {
				t.Fatal("live cluster did not quiesce")
			}
			if lj.Outcome != dj.Outcome {
				t.Fatalf("live outcome %v != DES outcome %v", lj.Outcome, dj.Outcome)
			}
			if v := live.Violations(); len(v) != 0 {
				t.Fatalf("live violations: %v", v)
			}
		})
	}
}

// TestLiveAllIdleDuringTraffic calls AllIdle concurrently with protocol
// activity. The probe is routed through each site's execution context, so
// under -race this test proves the check no longer reads site state from a
// foreign goroutine (the seed's Cluster.AllIdle raced with handlers here).
func TestLiveAllIdleDuringTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnrollSlack = 2
	cfg.ReleasePadFactor = 25
	topo := fastLine(3)
	live, err := NewLiveCluster(topo, cfg, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	// Distribution-forcing deadline (as in TestLiveMatchesDESDecisions) keeps
	// lock/transaction traffic flowing between the sites while we probe.
	job, err := live.Submit(0, 0, parJob(t, 2, 10), 19)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			live.AllIdle() // value irrelevant mid-run; must not race
			time.Sleep(time.Millisecond)
		}
	}()
	<-done
	if !live.Wait(30 * time.Second) {
		t.Fatal("live cluster did not quiesce")
	}
	if job.Outcome != AcceptedDistributed {
		t.Fatalf("outcome %v, want %v", job.Outcome, AcceptedDistributed)
	}
	if !live.AllIdle() {
		t.Fatal("cluster not idle after quiescence")
	}
}

// TestLiveSubmitValidatesLikeDES: the live transport must reject the same
// invalid submissions the DES transport rejects, instead of silently
// clamping negative arrival times.
func TestLiveSubmitValidatesLikeDES(t *testing.T) {
	topo := fastLine(2)
	live, err := NewLiveCluster(topo, DefaultConfig(), 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	g := parJob(t, 1, 5)
	if _, err := live.Submit(-1, 0, g, 50); err == nil {
		t.Error("negative submission time accepted")
	}
	if _, err := live.Submit(0, 99, g, 50); err == nil {
		t.Error("out-of-range origin accepted")
	}
	if _, err := live.Submit(0, 0, g, 0); err == nil {
		t.Error("non-positive deadline accepted")
	}
}

func TestLiveClusterBootstrap(t *testing.T) {
	topo := fastLine(4)
	live, err := NewLiveCluster(topo, DefaultConfig(), 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	msgs, _ := live.BootstrapCost()
	// Same bootstrap cost formula as the DES cluster.
	want := int64((2*DefaultConfig().Radius - 1) * 2 * topo.NumEdges())
	if msgs != want {
		t.Fatalf("live bootstrap messages %d, want %d", msgs, want)
	}
	for id := 0; id < 4; id++ {
		if len(live.SiteSphere(graph.NodeID(id))) == 0 {
			t.Fatalf("site %d has empty sphere", id)
		}
	}
}

// TestLiveClusterUnderLossAndJitter runs the live (goroutine-backed)
// transport with injected message loss, delay jitter and a transient site
// outage: whatever is lost, Wait must reach quiescence (no wedged locks —
// the phase timeouts and lock leases must fire), every job must be decided,
// and no site may end holding reservations of a rejected job. Run under
// -race in CI, this also exercises the injector from concurrent senders.
func TestLiveClusterUnderLossAndJitter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnrollSlack = 2
	cfg.ReleasePadFactor = 25
	cfg.Faults = &simnet.FaultPlan{
		Seed:      7,
		Loss:      0.25,
		MaxJitter: 0.5,
		Crashes:   []simnet.Crash{{Site: 2, At: 6, For: 6}},
	}
	topo := fastLine(4)
	live, err := NewLiveCluster(topo, cfg, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	var jobs []*Job
	for i := 0; i < 10; i++ {
		// Serial needs 20 > deadline 19: every job must try to distribute,
		// crossing the lossy links in every protocol phase.
		j, err := live.Submit(float64(i)*2, graph.NodeID(i%4), parJob(t, 2, 10), 19)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if !live.Wait(60 * time.Second) {
		t.Fatal("live cluster did not quiesce under faults: wedged lock or timer")
	}
	if !live.AllIdle() {
		t.Fatal("sites hold locks or open transactions after quiescence")
	}
	rejected := make(map[string]bool)
	for _, j := range jobs {
		if j.Outcome == Pending {
			t.Errorf("job %s never decided", j.ID)
		}
		if j.Outcome == Rejected {
			rejected[j.ID] = true
		}
	}
	for site, jobIDs := range live.ReservationJobIDs() {
		for _, id := range jobIDs {
			if rejected[id] {
				t.Errorf("site %d retains reservations of rejected job %s", site, id)
			}
		}
	}
}
