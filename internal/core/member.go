package core

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/graph"
	"repro/internal/mapper"
	"repro/internal/schedule"
)

// This file is the member's half of the protocol: answering enrollment,
// endorsing trial mappings, committing dispatched shares, and the lock
// lease that protects a member from a silent initiator.

// onEnroll handles an enrollment request at a member (§8): lock for the
// initiator and report surplus, power and the distance vector; defer if
// already locked.
func (s *Site) onEnroll(src graph.NodeID, m EnrollReq) {
	if s.locked() {
		s.deferWork(func() { s.onEnroll(src, m) })
		return
	}
	s.lock(m.Initiator, m.Job)
	if s.cluster.resilient() {
		s.startLockLease(m)
	}
	s.sendTo(m.Initiator, EnrollAck{
		Job:     m.Job,
		Member:  s.id,
		Surplus: s.plan.Surplus(s.now(), s.cluster.cfg.SurplusWindow),
		Power:   s.power,
		Dists:   s.distVec,
	})
}

// startLockLease arms the member-side backstop on resilient clusters: if the
// transaction has not released this lock by the time every fault-free
// protocol schedule would have (enrollment window plus the validation and
// commit round trips, with jitter headroom), the initiator is presumed dead
// and the lock is released unilaterally. The lease is deliberately generous
// — firing early only converts one admission into a conservative rejection,
// but it must still be bounded so faulty runs terminate.
func (s *Site) startLockLease(m EnrollReq) {
	jitter := 0.0
	if f := s.cluster.cfg.Faults; f != nil {
		jitter = f.MaxJitter
	}
	lease := 6*m.Window + 12*jitter + 4*s.cluster.cfg.EnrollSlack
	job, initiator := m.Job, m.Initiator
	s.lockLease = s.after(lease, func() { s.leaseExpired(job, initiator) })
}

// leaseExpired releases a lock whose transaction went silent: the member
// withdraws (drops its cached tickets) and resumes deferred work. Any later
// message of the withdrawn transaction hits the defensive lock-mismatch
// paths and is refused, which at worst turns the job into a rejection.
func (s *Site) leaseExpired(job string, initiator graph.NodeID) {
	s.lockLease = nil
	if !s.locked() || s.lockJob != job || s.lockedBy != initiator {
		return
	}
	s.cluster.event(s.id, job, EvLeaseExpired, fmt.Sprintf("initiator %d silent", initiator))
	delete(s.memberTickets, job)
	s.unlock()
}

// endorsable computes which logical processors this site can endorse (§10)
// and caches the admission tickets for a later commit.
func (s *Site) endorsable(jobID string, windows [][]mapper.TaskWindow) []int {
	tickets := make(map[int]*schedule.Ticket)
	var ok []int
	for i, wins := range windows {
		reqs := make([]schedule.Request, len(wins))
		for k, w := range wins {
			reqs[k] = schedule.Request{
				Job:      jobID,
				Task:     int(w.Task),
				Release:  w.Release,
				Deadline: w.Deadline,
				Duration: w.Complexity / s.power,
			}
		}
		if tk, admitted := s.plan.Admit(s.now(), reqs); admitted {
			tickets[i] = tk
			ok = append(ok, i)
		}
	}
	s.memberTickets[jobID] = tickets
	return ok
}

// onValidate handles the mapping broadcast at a member (§10).
func (s *Site) onValidate(m ValidateReq) {
	if s.lockedBy != m.Initiator || s.lockJob != m.Job {
		// Defensive: the lock should always match (validation is only sent
		// to enrolled members), but an empty endorsement keeps the initiator
		// from waiting forever if it ever does not.
		s.sendTo(m.Initiator, ValidateAck{Job: m.Job, Member: s.id})
		return
	}
	end := s.endorsable(m.Job, m.Windows)
	s.sendTo(m.Initiator, ValidateAck{Job: m.Job, Member: s.id, Endorsable: end})
}

// commitShare commits this site's cached ticket for a logical processor and
// starts execution. It reports false when the validated slots are no longer
// honourable (time has passed them).
func (s *Site) commitShare(job *Job, proc int, g *dag.Graph, taskSites map[dag.TaskID]graph.NodeID) bool {
	tickets := s.memberTickets[job.ID]
	delete(s.memberTickets, job.ID)
	tk := tickets[proc]
	if tk == nil {
		return false
	}
	now := s.now()
	for _, r := range tk.Requests {
		// A slot that should already have started cannot be honoured; the
		// release padding (§13) makes this rare, not impossible.
		if r.Release < now-1e-9 && !s.plan.Preemptive() {
			if pl := placementFor(tk, r.Task); pl != nil && pl.Start < now-1e-9 {
				return false
			}
		}
	}
	if err := s.plan.Commit(tk); err != nil {
		return false
	}
	s.beginExecution(job, taskSites, tk)
	return true
}

func placementFor(tk *schedule.Ticket, task int) *schedule.Reservation {
	for i := range tk.Placements {
		if tk.Placements[i].Task == task {
			return &tk.Placements[i]
		}
	}
	return nil
}

// onCommit handles the permutation at an ACS member (§11): endorse the
// assigned logical processor (or be released), then unlock — "the lock of j
// is immediately released after the insertion of all tasks of Ti".
func (s *Site) onCommit(m CommitMsg) {
	if s.lockedBy != m.Initiator || s.lockJob != m.Job {
		// Defensive: refuse rather than stay silent so the initiator's
		// commit phase always resolves.
		if m.Proc >= 0 {
			s.sendTo(m.Initiator, CommitAck{Job: m.Job, Member: s.id, OK: false})
		}
		return
	}
	if m.Proc < 0 {
		delete(s.memberTickets, m.Job)
		s.unlock()
		return
	}
	job := s.cluster.jobByID(m.Job)
	if job == nil && s.cluster.nodeMode && m.Graph != nil {
		// Multi-process deployment: the initiator's record lives in another
		// process, so reconstruct the member's view from the message itself.
		job = s.cluster.adoptRemoteJob(m.Job, m.Graph, m.Initiator)
	}
	if job == nil {
		// The job record is gone (possible only under injected faults, when
		// messages survive their transaction). Refuse instead of crashing.
		s.cluster.protocolDrop(s.id, fmt.Sprintf(
			"site %d: commit for unknown job %s", s.id, m.Job))
		s.sendTo(m.Initiator, CommitAck{Job: m.Job, Member: s.id, OK: false})
		s.unlock()
		return
	}
	ok := s.commitShare(job, m.Proc, m.Graph, m.TaskSites)
	s.sendTo(m.Initiator, CommitAck{Job: m.Job, Member: s.id, OK: ok})
	s.unlock()
}

// onUnlock releases a member (rejection path) or aborts a committed share.
// On faulty clusters aborts are acknowledged so the initiator can stop
// retransmitting; the handler is idempotent, so duplicates are harmless.
func (s *Site) onUnlock(m UnlockMsg) {
	if m.Abort {
		s.cancelExecution(m.Job)
		s.plan.CancelJob(m.Job)
		if s.cluster.resilient() {
			s.sendTo(m.From, UnlockAck{Job: m.Job, Member: s.id})
		}
	}
	delete(s.memberTickets, m.Job)
	if s.locked() && s.lockJob == m.Job {
		s.unlock()
	}
}
