package membership

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// FuzzMembershipDigest checks the view's CRDT laws: any permutation (and
// duplication) of the same membership events converges every site to the
// same view, the same digest, and — because the epoch is an XOR of
// per-entry hashes — the same epoch, which must also equal a from-scratch
// recomputation over the final view. Route repair consistency across sites
// rests on exactly this: two sites that learned the same facts in
// different orders must agree on the epoch tag of their tables.
func FuzzMembershipDigest(f *testing.F) {
	f.Add([]byte{1, 1, 0, 2, 1, 1, 1, 2, 0, 2, 2, 1}, uint64(7))
	f.Add([]byte{3, 9, 1, 3, 9, 0, 3, 8, 1}, uint64(42))
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		events := decodeEvents(data)
		a := New(0, nil, Config{}, Hooks{})
		for _, e := range events {
			a.apply(e)
		}

		b := New(0, nil, Config{}, Hooks{})
		rng := rand.New(rand.NewSource(int64(seed)))
		for _, i := range rng.Perm(len(events)) {
			b.apply(events[i])
		}
		// Replay a random half once more: applies must be idempotent.
		for _, i := range rng.Perm(len(events))[:len(events)/2] {
			b.apply(events[i])
		}

		if a.Epoch() != b.Epoch() {
			t.Fatalf("epoch diverged under permutation: %x vs %x", a.Epoch(), b.Epoch())
		}
		da, db := a.digest(), b.digest()
		if len(da) != len(db) {
			t.Fatalf("digest length diverged: %d vs %d", len(da), len(db))
		}
		for i := range da {
			if da[i] != db[i] {
				t.Fatalf("digest entry %d diverged: %+v vs %+v", i, da[i], db[i])
			}
		}
		var recomputed uint64
		for site, st := range a.view {
			recomputed ^= stateMix(site, st)
		}
		if recomputed != a.Epoch() {
			t.Fatalf("incremental epoch %x != recomputed %x", a.Epoch(), recomputed)
		}
	})
}

// decodeEvents turns fuzz bytes into membership events: 3 bytes each,
// (site, inc, dead), over a handful of sites so collisions are common.
func decodeEvents(data []byte) []Entry {
	const maxEvents = 64
	var out []Entry
	for i := 0; i+2 < len(data) && len(out) < maxEvents; i += 3 {
		out = append(out, Entry{
			Site: graph.NodeID(data[i] % 8),
			Inc:  uint64(data[i+1] % 8),
			Dead: data[i+2]&1 == 1,
		})
	}
	return out
}
