package membership

import (
	"fmt"
	"sort"

	"repro/internal/determinism"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/simnet"
)

// Hooks is how the Manager reaches its site: everything it does — timers,
// direct-neighbor sends, table adoption, tracing — goes through the owner,
// so the manager itself never touches a transport or a lock. All hooks are
// invoked from the site's execution context.
type Hooks struct {
	// Now reports the current virtual time.
	Now func() float64
	// After schedules fn in the site's execution context.
	After func(d float64, fn func()) simnet.CancelFunc
	// Send delivers a payload to a direct topology neighbor.
	Send func(to graph.NodeID, p simnet.Payload)
	// Adopt installs a repaired routing table into the site. The manager
	// retains and mutates the table between adoptions; every mutation is
	// followed by an Adopt in the same event, so the site's derived state
	// is never stale across events.
	Adopt func(t *routing.Table)
	// Current returns the site's current routing table (nil before the
	// bootstrap finishes). The first additive repair seeds from it instead
	// of discarding the bootstrap's knowledge, and join acks carry its
	// snapshot so a joiner starts from a full view of the network.
	Current func() *routing.Table
	// Event traces a membership event (optional).
	Event func(kind, detail string)
}

// siteState is one entry of the membership view. Sites absent from the map
// are in the default state: alive at incarnation 0.
type siteState struct {
	inc  uint64
	dead bool
}

// stateMix is the entry's contribution to the route epoch: a splitmix64
// hash of the packed (site, inc, dead) state. The epoch is the XOR of all
// entries' contributions, so it is order-independent, incrementally
// updatable, and depends only on the current view — sites that skipped
// intermediate states (a digest after a partition) still converge to the
// same epoch, and two DIFFERENT views sharing an epoch (which would let
// tables computed under inconsistent membership merge) needs a 64-bit
// hash collision rather than a mere count coincidence. Default entries
// contribute 0, so the all-alive bootstrap view has epoch 0 — reserved
// for bootstrap-phase table messages.
func stateMix(site graph.NodeID, st siteState) uint64 {
	if st == (siteState{}) {
		return 0
	}
	x := uint64(site)<<33 ^ st.inc<<1 ^ b2u(st.dead)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Manager runs one site's membership protocol. It is not safe for
// concurrent use: every method must be called from the site's execution
// context, like the site itself.
type Manager struct {
	self  graph.NodeID
	cfg   Config
	hooks Hooks

	nbrs      []graph.Edge // direct links, sorted by neighbor ID (graph.Neighbors order)
	linkDelay map[graph.NodeID]float64

	view      map[graph.NodeID]siteState // non-default entries only (self included once bumped)
	epoch     uint64
	lastHeard map[graph.NodeID]float64

	table     *routing.Table // repair table; nil until the first repair or join
	sendsLeft int            // re-broadcast budget for the current epoch

	repairing bool
	settle    simnet.CancelFunc
	onSettled []func()

	started bool
	startAt float64

	joining   bool
	joinTries int

	// Counters for observability (nodeapi, experiments).
	deaths, resurrections, floodsSent, staleTables int
}

// New builds a manager for one site over its direct links. Call Start (an
// established site, post-bootstrap) or StartJoin (a joiner) once the
// transport is running.
func New(self graph.NodeID, neighbors []graph.Edge, cfg Config, hooks Hooks) *Manager {
	cfg = cfg.withDefaults()
	delays := make(map[graph.NodeID]float64, len(neighbors))
	for _, e := range neighbors {
		delays[e.To] = e.Delay
	}
	return &Manager{
		self:      self,
		cfg:       cfg,
		hooks:     hooks,
		nbrs:      neighbors,
		linkDelay: delays,
		view:      make(map[graph.NodeID]siteState),
		lastHeard: make(map[graph.NodeID]float64),
	}
}

// Start begins heartbeating and suspicion checks. Established sites call it
// once their bootstrap table is sealed; the joiner path calls it internally
// after the handshake.
func (m *Manager) Start() {
	if m.started {
		return
	}
	m.started = true
	m.startAt = m.hooks.Now()
	for _, e := range m.nbrs {
		m.lastHeard[e.To] = m.startAt
	}
	m.tick()
}

// Started reports whether the manager is running (heartbeats armed).
func (m *Manager) Started() bool { return m.started }

// state reads a site's view entry (default: alive at incarnation 0).
func (m *Manager) state(site graph.NodeID) siteState { return m.view[site] }

// setState writes a view entry and keeps the epoch in sync.
func (m *Manager) setState(site graph.NodeID, st siteState) {
	m.epoch ^= stateMix(site, m.view[site]) ^ stateMix(site, st)
	m.view[site] = st
}

// Epoch reports the current route epoch.
func (m *Manager) Epoch() uint64 { return m.epoch }

// SelfInc reports this site's own incarnation.
func (m *Manager) SelfInc() uint64 { return m.state(m.self).inc }

// Alive reports whether the view holds site as alive.
func (m *Manager) Alive(site graph.NodeID) bool { return !m.state(site).dead }

// Deaths and Resurrections report how many membership transitions this
// site has applied (including re-learned ones from digests).
func (m *Manager) Deaths() int        { return m.deaths }
func (m *Manager) Resurrections() int { return m.resurrections }

// ---------------------------------------------------------------------------
// Heartbeats and suspicion

// tick sends one heartbeat round and runs the suspicion check, then
// re-arms itself until the horizon.
func (m *Manager) tick() {
	now := m.hooks.Now()
	if m.cfg.Horizon > 0 && now-m.startAt >= m.cfg.Horizon-1e-9 {
		return // horizon reached: no further beacons or suspicion checks
	}
	hb := Heartbeat{Inc: m.state(m.self).inc, Digest: m.digest()}
	for _, e := range m.nbrs {
		// Heartbeat every topology neighbor, dead-believed or not: the
		// beacon is what lets a recovered (or wrongly suspected) neighbor
		// be resurrected, and what lets it resurrect us.
		m.hooks.Send(e.To, hb)
	}
	for _, e := range m.nbrs {
		n := e.To
		if !m.state(n).dead && now-m.lastHeard[n] > m.cfg.SuspectAfter {
			m.declareDead(n)
		}
	}
	m.hooks.After(m.cfg.HeartbeatEvery, m.tick)
}

// Digest exposes the manager's current view digest (every non-default
// entry, sorted by site) — the payload a hierarchical landmark shares with
// its adjacent peers.
func (m *Manager) Digest() []Entry { return m.digest() }

// digest lists every non-default view entry, self included, sorted by site
// for determinism.
func (m *Manager) digest() []Entry {
	if len(m.view) == 0 {
		return nil
	}
	out := make([]Entry, 0, len(m.view))
	for _, site := range determinism.SortedKeys(m.view) {
		st := m.view[site]
		out = append(out, Entry{Site: site, Inc: st.inc, Dead: st.dead})
	}
	return out
}

// declareDead is the local failure detector's verdict on a silent neighbor.
func (m *Manager) declareDead(n graph.NodeID) {
	inc := m.state(n).inc
	if !m.apply(Entry{Site: n, Inc: inc, Dead: true}) {
		return
	}
	m.event("member-dead", fmt.Sprintf("site %d silent for %.3g, declared dead (inc %d)",
		n, m.cfg.SuspectAfter, inc))
	m.flood(DeadNotice{Site: n, Inc: inc})
	m.repair(true)
}

// HandleHeartbeat processes a neighbor's beacon.
func (m *Manager) HandleHeartbeat(from graph.NodeID, hb Heartbeat) {
	if !m.started {
		return
	}
	m.lastHeard[from] = m.hooks.Now()
	changed, died := false, false
	st := m.state(from)
	if st.dead {
		// Direct evidence of life from a dead-believed site: resurrect it
		// at a strictly newer incarnation and flood the news. The site
		// itself cannot know it was declared dead (fail-silent crashes are
		// partitions), so the observer mints the incarnation.
		inc := max(hb.Inc, st.inc) + 1
		if m.apply(Entry{Site: from, Inc: inc, Dead: false}) {
			m.event("member-alive", fmt.Sprintf("site %d heartbeating again, resurrected (inc %d)", from, inc))
			m.flood(AliveNotice{Site: from, Inc: inc})
			changed = true
		}
	} else if hb.Inc > st.inc {
		// Quiet incarnation refresh (the site refuted an old death we
		// never learned of). Epoch moves with it, so repair.
		if m.apply(Entry{Site: from, Inc: hb.Inc, Dead: false}) {
			m.flood(AliveNotice{Site: from, Inc: hb.Inc})
			changed = true
		}
	}
	if c, d := m.applyDigest(hb.Digest); c {
		changed, died = true, died || d
	}
	if changed {
		m.repair(died)
	}
}

// HandleDead processes a flooded death notice.
func (m *Manager) HandleDead(from graph.NodeID, n DeadNotice) {
	if !m.started {
		return
	}
	if n.Site == m.self {
		m.refute(n.Inc)
		return
	}
	if !m.apply(Entry{Site: n.Site, Inc: n.Inc, Dead: true}) {
		return
	}
	m.event("member-dead", fmt.Sprintf("death of site %d (inc %d) learned from %d", n.Site, n.Inc, from))
	m.flood(DeadNotice{Site: n.Site, Inc: n.Inc})
	m.repair(true)
}

// HandleAlive processes a flooded resurrection notice.
func (m *Manager) HandleAlive(from graph.NodeID, n AliveNotice) {
	if !m.started {
		return
	}
	if n.Site == m.self {
		// News about ourselves: adopt a higher incarnation quietly (our own
		// admission echoing back); we are obviously alive.
		st := m.state(m.self)
		if n.Inc > st.inc {
			m.setState(m.self, siteState{inc: n.Inc})
			m.repair(false)
		}
		return
	}
	if !m.apply(Entry{Site: n.Site, Inc: n.Inc, Dead: false}) {
		return
	}
	m.event("member-alive", fmt.Sprintf("resurrection of site %d (inc %d) learned from %d", n.Site, n.Inc, from))
	m.flood(AliveNotice{Site: n.Site, Inc: n.Inc})
	m.repair(false)
}

// refute answers a death notice about ourselves: bump past the incarnation
// we were declared dead at and flood the correction.
func (m *Manager) refute(deadInc uint64) {
	st := m.state(m.self)
	if st.inc > deadInc {
		return // already refuted
	}
	inc := deadInc + 1
	m.setState(m.self, siteState{inc: inc})
	m.event("member-refute", fmt.Sprintf("declared dead at inc %d, refuting with inc %d", deadInc, inc))
	m.flood(AliveNotice{Site: m.self, Inc: inc})
	m.repair(false)
}

// apply runs one guarded view transition; it reports whether the view
// changed. Dead wins ties at equal incarnations; alive needs a strictly
// newer one.
func (m *Manager) apply(e Entry) bool {
	st := m.state(e.Site)
	switch {
	case e.Inc > st.inc:
	case e.Inc == st.inc && e.Dead && !st.dead:
	default:
		return false
	}
	if e.Dead && !st.dead {
		m.deaths++
	}
	if !e.Dead && st.dead {
		m.resurrections++
	}
	m.setState(e.Site, siteState{inc: e.Inc, dead: e.Dead})
	return true
}

// applyDigest folds a peer's digest into the view. It reports whether
// anything changed and whether any change was a death (which forces a
// table reset).
func (m *Manager) applyDigest(digest []Entry) (changed, died bool) {
	for _, e := range digest {
		if e.Site == m.self {
			if e.Dead {
				m.refute(e.Inc)
			} else if e.Inc > m.state(m.self).inc {
				m.setState(m.self, siteState{inc: e.Inc})
				changed = true
			}
			continue
		}
		wasDead := m.state(e.Site).dead
		if m.apply(e) {
			changed = true
			if e.Dead && !wasDead {
				died = true
			}
		}
	}
	return changed, died
}

// flood sends a notice to every alive-believed direct neighbor. Combined
// with apply's idempotence this is a standard flood: each site forwards a
// notice exactly once, the first time it applies.
func (m *Manager) flood(p simnet.Payload) {
	for _, e := range m.nbrs {
		if !m.state(e.To).dead {
			m.hooks.Send(e.To, p)
		}
	}
}

// ---------------------------------------------------------------------------
// Epoch-tagged table repair

// repair reacts to a view change: the epoch already moved (setState), so
// rebuild or keep the table, reset the flood budget and re-flood. reset
// forces a rebuild from the start condition — required after a death, when
// routes through the corpse must not survive; additive changes (joins,
// resurrections, incarnation refreshes) keep the table and let the flood
// merge the new member's routes in.
func (m *Manager) repair(reset bool) {
	if reset {
		m.table = routing.NewTable(m.self, m.aliveNeighborEdges())
	} else if m.table == nil {
		// First repair is additive (a join, a refutation): take ownership
		// of the site's bootstrap table rather than throwing its multi-hop
		// knowledge away — nothing died, every route in it is still sound.
		if m.hooks.Current != nil {
			m.table = m.hooks.Current()
		}
		if m.table == nil {
			m.table = routing.NewTable(m.self, m.aliveNeighborEdges())
		}
	}
	m.sendsLeft = m.cfg.FloodRounds
	m.hooks.Adopt(m.table)
	m.event("route-repair", fmt.Sprintf("epoch %#x, reset=%v", m.epoch, reset))
	m.broadcastTable()
	m.beginSettle()
}

func (m *Manager) aliveNeighborEdges() []graph.Edge {
	out := make([]graph.Edge, 0, len(m.nbrs))
	for _, e := range m.nbrs {
		if !m.state(e.To).dead {
			out = append(out, e)
		}
	}
	return out
}

// broadcastTable spends one unit of the epoch's flood budget.
func (m *Manager) broadcastTable() {
	if m.sendsLeft <= 0 {
		return
	}
	m.sendsLeft--
	m.floodsSent++
	msg := routing.TableMsg{Epoch: m.epoch, Entries: m.table.Snapshot()}
	for _, e := range m.nbrs {
		if !m.state(e.To).dead {
			m.hooks.Send(e.To, msg)
		}
	}
}

// HandleTable offers an incoming routing table message to the repair
// layer. It reports whether the message was consumed: epoch-0 messages
// belong to the §7 bootstrap and are left to the caller's routing.Node.
func (m *Manager) HandleTable(from graph.NodeID, msg routing.TableMsg) bool {
	if msg.Epoch == 0 {
		return false
	}
	if !m.started || msg.Epoch != m.epoch {
		// Stale (or ahead of a notice still in flight): mixing routes
		// across membership views is exactly what epochs exist to prevent.
		m.staleTables++
		return true
	}
	delay, ok := m.linkDelay[from]
	if !ok {
		return true // not a direct neighbor; cannot weigh the merge
	}
	if m.table == nil {
		m.table = routing.NewTable(m.self, m.aliveNeighborEdges())
	}
	if m.table.Merge(from, delay, msg.Entries) {
		m.hooks.Adopt(m.table)
		m.broadcastTable()
		m.beginSettle()
	}
	return true
}

// ---------------------------------------------------------------------------
// Repair settling

// Repairing reports whether a route repair is still settling. Initiators
// defer starting distributed enrollments while true: enrolling against a
// half-repaired table wastes a transaction on routes that are about to
// change.
func (m *Manager) Repairing() bool { return m.repairing }

// WhenSettled runs fn now if no repair is settling, or once the current
// repair settles.
func (m *Manager) WhenSettled(fn func()) {
	if !m.repairing {
		fn()
		return
	}
	m.onSettled = append(m.onSettled, fn)
}

// beginSettle (re)arms the settle timer: the repair is considered settled
// after RepairSettle without table or view changes.
func (m *Manager) beginSettle() {
	m.repairing = true
	if m.settle != nil {
		m.settle()
	}
	m.settle = m.hooks.After(m.cfg.RepairSettle, m.settled)
}

func (m *Manager) settled() {
	m.settle = nil
	m.repairing = false
	m.event("repair-settled", fmt.Sprintf("epoch %#x", m.epoch))
	pending := m.onSettled
	m.onSettled = nil
	for _, fn := range pending {
		fn()
	}
}

// ---------------------------------------------------------------------------
// Join handshake

// StartJoin begins the joiner's handshake: ask every topology neighbor for
// admission, retrying each heartbeat period until an ack arrives or the
// retry budget runs out. The site has no table until the first ack.
func (m *Manager) StartJoin() {
	if m.started || m.joining {
		return
	}
	m.joining = true
	m.startAt = m.hooks.Now()
	m.joinTry()
}

// Joining reports whether the handshake is still in flight.
func (m *Manager) Joining() bool { return m.joining }

func (m *Manager) joinTry() {
	if !m.joining {
		return
	}
	if m.joinTries >= m.cfg.JoinRetries {
		m.joining = false
		m.event("join-failed", fmt.Sprintf("no JoinAck after %d tries", m.joinTries))
		return
	}
	m.joinTries++
	req := JoinReq{Inc: m.state(m.self).inc}
	for _, e := range m.nbrs {
		m.hooks.Send(e.To, req)
	}
	m.hooks.After(m.cfg.HeartbeatEvery, m.joinTry)
}

// HandleJoinReq admits a joining neighbor (at an established site): grant
// a fresh incarnation — strictly above anything it was declared dead at,
// and above the stale one a fast-restarted process re-presents — flood
// the admission, repair additively and answer with the full view plus the
// current table, so the joiner is routable and routing from its first ack
// even if nobody ever noticed the old process die.
func (m *Manager) HandleJoinReq(from graph.NodeID, req JoinReq) {
	if !m.started {
		return
	}
	m.lastHeard[from] = m.hooks.Now()
	st := m.state(from)
	if st.dead || req.Inc >= st.inc {
		inc := max(req.Inc, st.inc) + 1
		if m.apply(Entry{Site: from, Inc: inc, Dead: false}) {
			m.event("member-join", fmt.Sprintf("admitted site %d at inc %d", from, inc))
			m.flood(AliveNotice{Site: from, Inc: inc})
			m.repair(false)
		}
	}
	// Retries racing the first ack (req.Inc now below the minted
	// incarnation) answer with the current view — the handshake is
	// idempotent.
	ack := JoinAck{Inc: m.state(from).inc, Epoch: m.epoch, Digest: m.digest()}
	var snap []routing.WireRoute
	if m.table != nil {
		snap = m.table.Snapshot()
	} else if m.hooks.Current != nil {
		if t := m.hooks.Current(); t != nil {
			snap = t.Snapshot()
		}
	}
	if len(snap) <= MaxAckRoutes {
		ack.Table = snap
		m.hooks.Send(from, ack)
		return
	}
	// Chunk an oversized snapshot: the ack carries the head, the remainder
	// follows as epoch-tagged TableChunks the joiner merges like repair
	// floods. Links are order-preserving, but a lost chunk only costs
	// routes the re-flood re-delivers anyway.
	rest := snap[MaxAckRoutes:]
	total := (len(rest) + MaxAckRoutes - 1) / MaxAckRoutes
	ack.Table = snap[:MaxAckRoutes]
	ack.TableChunks = total
	m.hooks.Send(from, ack)
	for i := 0; i < total; i++ {
		hi := (i + 1) * MaxAckRoutes
		if hi > len(rest) {
			hi = len(rest)
		}
		m.hooks.Send(from, TableChunk{Epoch: m.epoch, Seq: i + 1, Total: total,
			Entries: rest[i*MaxAckRoutes : hi]})
	}
}

// HandleTableChunk merges one continuation chunk of a chunked JoinAck
// snapshot. Chunks are valid only at the epoch they were cut at — a stale
// chunk is dropped exactly like a stale repair flood.
func (m *Manager) HandleTableChunk(from graph.NodeID, c TableChunk) {
	if !m.started || c.Epoch != m.epoch {
		m.staleTables++
		return
	}
	delay, ok := m.linkDelay[from]
	if !ok || m.table == nil {
		return
	}
	if m.table.Merge(from, delay, c.Entries) {
		m.hooks.Adopt(m.table)
		m.broadcastTable()
		m.beginSettle()
	}
}

// HandleJoinAck completes the joiner's handshake: adopt the acker's view
// (arriving at the same epoch), install the start-condition table seeded
// with the acker's full table snapshot, enter the epoch's flood and start
// normal heartbeating. Later acks from other neighbors fold in
// idempotently.
func (m *Manager) HandleJoinAck(from graph.NodeID, ack JoinAck) {
	if m.joining {
		m.joining = false
		m.started = true
		for _, e := range m.nbrs {
			m.lastHeard[e.To] = m.hooks.Now()
		}
		if ack.Inc > m.state(m.self).inc {
			m.setState(m.self, siteState{inc: ack.Inc})
		}
		m.applyDigest(ack.Digest)
		m.event("joined", fmt.Sprintf("admitted by %d at inc %d, epoch %#x", from, m.state(m.self).inc, m.epoch))
		m.repair(true) // builds the start table and floods it
		m.mergeAckTable(from, ack)
		m.hooks.After(m.cfg.HeartbeatEvery, m.tick)
		return
	}
	if !m.started {
		return
	}
	// A straggler ack after the join completed: treat its digest as
	// gossip, and its table like any same-epoch flood.
	if changed, died := m.applyDigest(ack.Digest); changed {
		m.repair(died)
	}
	if ack.Epoch == m.epoch {
		m.mergeAckTable(from, ack)
	}
}

// mergeAckTable folds the admitting site's table snapshot into the
// joiner's: one merge hands over everything the acker can route to, so
// the joiner serves with a full table even before the re-flood reaches it.
func (m *Manager) mergeAckTable(from graph.NodeID, ack JoinAck) {
	delay, ok := m.linkDelay[from]
	if !ok || len(ack.Table) == 0 || m.table == nil {
		return
	}
	if m.table.Merge(from, delay, ack.Table) {
		m.hooks.Adopt(m.table)
		m.broadcastTable()
		m.beginSettle()
	}
}

// ---------------------------------------------------------------------------
// Observability

// SiteStatus is one row of a membership snapshot.
type SiteStatus struct {
	Site      graph.NodeID `json:"site"`
	Inc       uint64       `json:"inc"`
	Dead      bool         `json:"dead"`
	Neighbor  bool         `json:"neighbor"`
	LastHeard float64      `json:"last_heard,omitempty"` // neighbors only
}

// Snapshot is the manager's observable state (the /membership endpoint).
type Snapshot struct {
	Self          graph.NodeID `json:"self"`
	Inc           uint64       `json:"inc"`
	Epoch         uint64       `json:"epoch"`
	Started       bool         `json:"started"`
	Joining       bool         `json:"joining"`
	Repairing     bool         `json:"repairing"`
	Deaths        int          `json:"deaths"`
	Resurrections int          `json:"resurrections"`
	FloodsSent    int          `json:"floods_sent"`
	StaleTables   int          `json:"stale_tables"`
	Sites         []SiteStatus `json:"sites,omitempty"`
}

// Snapshot captures the manager's state. Like every other method it must
// run in the site's execution context.
func (m *Manager) Snapshot() Snapshot {
	s := Snapshot{
		Self:          m.self,
		Inc:           m.state(m.self).inc,
		Epoch:         m.epoch,
		Started:       m.started,
		Joining:       m.joining,
		Repairing:     m.repairing,
		Deaths:        m.deaths,
		Resurrections: m.resurrections,
		FloodsSent:    m.floodsSent,
		StaleTables:   m.staleTables,
	}
	seen := make(map[graph.NodeID]bool)
	for _, e := range m.digest() {
		if e.Site == m.self {
			continue
		}
		seen[e.Site] = true
		s.Sites = append(s.Sites, SiteStatus{Site: e.Site, Inc: e.Inc, Dead: e.Dead})
	}
	for _, e := range m.nbrs {
		if !seen[e.To] {
			s.Sites = append(s.Sites, SiteStatus{Site: e.To, Neighbor: true, LastHeard: m.lastHeard[e.To]})
		}
	}
	sort.Slice(s.Sites, func(i, j int) bool { return s.Sites[i].Site < s.Sites[j].Site })
	for i := range s.Sites {
		if _, ok := m.linkDelay[s.Sites[i].Site]; ok {
			s.Sites[i].Neighbor = true
			s.Sites[i].LastHeard = m.lastHeard[s.Sites[i].Site]
		}
	}
	return s
}

func (m *Manager) event(kind, detail string) {
	if m.hooks.Event != nil {
		m.hooks.Event(kind, detail)
	}
}
