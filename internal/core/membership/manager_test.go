package membership

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// harness runs one manager per site over the deterministic DES transport —
// the same execution model the cluster uses, without the protocol core.
// Managers are held behind an indirection so a test can replace one
// mid-run (the joiner scenario).
type harness struct {
	t      *testing.T
	topo   *graph.Graph
	engine *sim.Engine
	tr     *simnet.DES
	mgrs   []*Manager
	tables []*routing.Table
	adopts []int
}

func ring(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID((i+1)%n), 0.05)
	}
	return g
}

func newHarness(t *testing.T, topo *graph.Graph, cfg Config) *harness {
	t.Helper()
	h := &harness{
		t:      t,
		topo:   topo,
		engine: sim.New(),
		mgrs:   make([]*Manager, topo.Len()),
		tables: make([]*routing.Table, topo.Len()),
		adopts: make([]int, topo.Len()),
	}
	h.tr = simnet.NewDES(h.engine, topo)
	for id := graph.NodeID(0); int(id) < topo.Len(); id++ {
		id := id
		h.mgrs[id] = h.newManager(id, cfg)
		h.tr.Attach(id, func(from graph.NodeID, p simnet.Payload) {
			h.dispatch(id, from, p)
		})
	}
	return h
}

func (h *harness) newManager(id graph.NodeID, cfg Config) *Manager {
	idx := int(id)
	return New(id, h.topo.Neighbors(id), cfg, Hooks{
		Now:   h.tr.Now,
		After: func(d float64, fn func()) simnet.CancelFunc { return h.tr.After(id, d, fn) },
		Send: func(to graph.NodeID, p simnet.Payload) {
			if err := h.tr.Send(id, to, p); err != nil {
				h.t.Fatalf("send from %d to %d: %v", id, to, err)
			}
		},
		Adopt: func(tb *routing.Table) {
			h.tables[idx] = tb
			h.adopts[idx]++
		},
	})
}

func (h *harness) dispatch(id, from graph.NodeID, p simnet.Payload) {
	m := h.mgrs[id]
	switch msg := p.(type) {
	case Heartbeat:
		m.HandleHeartbeat(from, msg)
	case DeadNotice:
		m.HandleDead(from, msg)
	case AliveNotice:
		m.HandleAlive(from, msg)
	case JoinReq:
		m.HandleJoinReq(from, msg)
	case JoinAck:
		m.HandleJoinAck(from, msg)
	case routing.TableMsg:
		if !m.HandleTable(from, msg) {
			h.t.Fatalf("site %d refused table msg with epoch %d", id, msg.Epoch)
		}
	default:
		h.t.Fatalf("site %d got unexpected payload %q", id, p.Kind())
	}
}

func (h *harness) startAll() {
	for _, m := range h.mgrs {
		m.Start()
	}
}

func (h *harness) run() {
	h.t.Helper()
	if err := h.engine.Run(); err != nil {
		h.t.Fatal(err)
	}
}

// cfg30 is the tests' standard timing: 1-unit heartbeats, 3-unit suspicion,
// a 30-unit horizon so the DES drains.
func cfg30() Config {
	return Config{Enabled: true, HeartbeatEvery: 1, SuspectAfter: 3, Horizon: 30, FloodRounds: 5}
}

// TestDetectDeadAndRepair: a permanently crashed site is declared dead by
// its neighbors, the death floods, every survivor converges to the same
// epoch and repairs a table that routes around the corpse.
func TestDetectDeadAndRepair(t *testing.T) {
	h := newHarness(t, ring(5), cfg30())
	h.tr.SetFaults(simnet.FaultPlan{Crashes: []simnet.Crash{{Site: 1, At: 5}}}, 0)
	h.startAll()
	h.run()

	for _, id := range []int{0, 2, 3, 4} {
		m := h.mgrs[id]
		if m.Alive(1) {
			t.Fatalf("survivor %d still believes site 1 alive", id)
		}
		if got, want := m.Epoch(), h.mgrs[0].Epoch(); got != want {
			t.Fatalf("survivor %d at epoch %d, survivor 0 at %d", id, got, want)
		}
		if m.Deaths() != 1 {
			t.Fatalf("survivor %d applied %d deaths, want 1", id, m.Deaths())
		}
		if m.Repairing() {
			t.Fatalf("survivor %d still repairing after drain", id)
		}
	}
	// The dead site's view is its own: it heard nothing and declared both
	// neighbors dead — consistent fail-silent behavior.
	if h.mgrs[1].Alive(0) || h.mgrs[1].Alive(2) {
		t.Fatal("partitioned site kept its neighbors alive despite total silence")
	}
	// Survivor 0 reaches 2 the long way round (0-4-3-2).
	t0 := h.tables[0]
	if t0 == nil {
		t.Fatal("survivor 0 never adopted a repaired table")
	}
	if nh, ok := t0.NextHop(2); !ok || nh != 4 {
		t.Fatalf("survivor 0 next hop to 2 = %v (ok=%v), want 4", nh, ok)
	}
	if _, ok := t0.Route(1); ok {
		t.Fatal("repaired table still routes to the dead site")
	}
}

// TestDuplicateDeathIsIdempotent: re-delivering an already-applied death
// notice must not bump the epoch or rebuild the table — the guard-by-epoch
// fix for the old repairAfterCrashes duplicate work.
func TestDuplicateDeathIsIdempotent(t *testing.T) {
	h := newHarness(t, ring(5), cfg30())
	h.tr.SetFaults(simnet.FaultPlan{Crashes: []simnet.Crash{{Site: 1, At: 5}}}, 0)
	h.startAll()
	h.run()

	m := h.mgrs[0]
	epoch, adopts := m.Epoch(), h.adopts[0]
	m.HandleDead(4, DeadNotice{Site: 1, Inc: 0})
	m.HandleDead(2, DeadNotice{Site: 1, Inc: 0})
	if m.Epoch() != epoch {
		t.Fatalf("duplicate death moved the epoch %d -> %d", epoch, m.Epoch())
	}
	if h.adopts[0] != adopts {
		t.Fatal("duplicate death rebuilt an already-correct table")
	}
	if m.Deaths() != 1 {
		t.Fatalf("duplicate death double-counted: %d", m.Deaths())
	}
}

// TestRecoveryResurrects: a temporary partition ends, heartbeats resume,
// and every site resurrects the victim at a fresh incarnation — symmetric:
// the victim also resurrects the neighbors it had declared dead.
func TestRecoveryResurrects(t *testing.T) {
	h := newHarness(t, ring(5), cfg30())
	h.tr.SetFaults(simnet.FaultPlan{Crashes: []simnet.Crash{{Site: 1, At: 5, For: 10}}}, 0)
	h.startAll()
	h.run()

	for id := 0; id < 5; id++ {
		m := h.mgrs[id]
		for peer := graph.NodeID(0); peer < 5; peer++ {
			if !m.Alive(peer) {
				t.Fatalf("site %d still believes %d dead after recovery", id, peer)
			}
		}
		if got, want := m.Epoch(), h.mgrs[0].Epoch(); got != want {
			t.Fatalf("site %d at epoch %d, site 0 at %d", id, got, want)
		}
		tb := h.tables[id]
		if tb == nil {
			t.Fatalf("site %d never repaired", id)
		}
		if tb.Len() != 5 {
			t.Fatalf("site %d repaired table knows %d destinations, want 5", id, tb.Len())
		}
	}
	if h.mgrs[0].Resurrections() == 0 {
		t.Fatal("no resurrection recorded despite recovery")
	}
}

// TestFalseDeathRefuted: a forged death notice about a live site is
// refuted — the victim bumps its incarnation, floods the correction, and
// every site converges back to an all-alive view at the same epoch.
func TestFalseDeathRefuted(t *testing.T) {
	h := newHarness(t, ring(5), cfg30())
	h.startAll()
	h.engine.At(2, func() {
		h.mgrs[2].HandleDead(3, DeadNotice{Site: 0, Inc: 0})
	})
	h.run()

	for id := 0; id < 5; id++ {
		m := h.mgrs[id]
		if !m.Alive(0) {
			t.Fatalf("site %d still believes the refuted death of 0", id)
		}
		if got, want := m.Epoch(), h.mgrs[0].Epoch(); got != want {
			t.Fatalf("site %d at epoch %d, site 0 at %d", id, got, want)
		}
	}
	if h.mgrs[0].SelfInc() != 1 {
		t.Fatalf("refuting site at incarnation %d, want 1", h.mgrs[0].SelfInc())
	}
}

// TestJoinHandshake: a replacement manager for a dead site joins through
// JoinReq/JoinAck, converges to the survivors' epoch and learns a full
// table; survivors learn routes back to it.
func TestJoinHandshake(t *testing.T) {
	h := newHarness(t, ring(5), cfg30())
	// Site 1's process dies at t=5 and is replaced at t=20: model the gap
	// as a crash window (the old process's traffic vanishes) and swap in a
	// fresh manager when the window ends.
	h.tr.SetFaults(simnet.FaultPlan{Crashes: []simnet.Crash{{Site: 1, At: 5, For: 15}}}, 0)
	h.startAll()
	h.engine.At(20, func() {
		h.mgrs[1] = h.newManager(1, cfg30())
		h.mgrs[1].StartJoin()
	})
	h.run()

	joiner := h.mgrs[1]
	if joiner.Joining() || !joiner.Started() {
		t.Fatalf("joiner state: joining=%v started=%v", joiner.Joining(), joiner.Started())
	}
	if joiner.SelfInc() == 0 {
		t.Fatal("joiner kept incarnation 0 — the admission did not mint a fresh one")
	}
	for _, id := range []int{0, 2, 3, 4} {
		m := h.mgrs[id]
		if !m.Alive(1) {
			t.Fatalf("survivor %d did not admit the joiner", id)
		}
		if got, want := m.Epoch(), joiner.Epoch(); got != want {
			t.Fatalf("survivor %d at epoch %d, joiner at %d", id, got, want)
		}
		if _, ok := h.tables[id].Route(1); !ok {
			t.Fatalf("survivor %d has no route back to the joiner", id)
		}
	}
	if tb := h.tables[1]; tb == nil || tb.Len() != 5 {
		t.Fatalf("joiner table covers %v destinations, want all 5", tb)
	}
}

// TestJoinFastRestart: a replacement process joins BEFORE any survivor's
// suspicion timeout noticed the old one die — the admitting sites still
// believe the site alive. The admission must mint a fresh incarnation
// anyway (bumping the epoch everywhere) and the ack's table snapshot must
// hand the joiner a full routing view, or it would be stranded flooding
// epoch-0 tables that every receiver routes to the finished bootstrap.
func TestJoinFastRestart(t *testing.T) {
	h := newHarness(t, ring(5), cfg30())
	h.startAll()
	h.engine.At(10, func() {
		h.mgrs[1] = h.newManager(1, cfg30())
		h.mgrs[1].StartJoin()
	})
	h.run()

	joiner := h.mgrs[1]
	if joiner.Joining() || !joiner.Started() {
		t.Fatalf("joiner state: joining=%v started=%v", joiner.Joining(), joiner.Started())
	}
	if joiner.SelfInc() == 0 {
		t.Fatal("fast-restart join kept incarnation 0: the admission minted nothing")
	}
	for id := 0; id < 5; id++ {
		if got, want := h.mgrs[id].Epoch(), joiner.Epoch(); got != want {
			t.Fatalf("site %d at epoch %#x, joiner at %#x", id, got, want)
		}
		if h.mgrs[id].Epoch() == 0 {
			t.Fatalf("site %d still at the bootstrap epoch after the join", id)
		}
	}
	if tb := h.tables[1]; tb == nil || tb.Len() != 5 {
		t.Fatalf("joiner table covers %v, want all 5 destinations", tb)
	}
}

// TestWhenSettledDefersDuringRepair: callbacks registered mid-repair run
// only after the settle window; outside a repair they run inline.
func TestWhenSettledDefersDuringRepair(t *testing.T) {
	h := newHarness(t, ring(3), cfg30())
	h.startAll()
	ran := false
	h.mgrs[0].WhenSettled(func() { ran = true })
	if !ran {
		t.Fatal("settled callback did not run inline on a quiet manager")
	}
	var order []string
	h.engine.At(2, func() {
		h.mgrs[0].HandleDead(2, DeadNotice{Site: 1, Inc: 0})
		if !h.mgrs[0].Repairing() {
			t.Fatal("death did not start a repair")
		}
		h.mgrs[0].WhenSettled(func() { order = append(order, "deferred") })
		order = append(order, "registered")
	})
	h.run()
	if len(order) != 2 || order[0] != "registered" || order[1] != "deferred" {
		t.Fatalf("settle ordering %v, want [registered deferred]", order)
	}
}

// TestStaleEpochTableRejected: a table message from another epoch is
// consumed but never merged or adopted.
func TestStaleEpochTableRejected(t *testing.T) {
	h := newHarness(t, ring(3), cfg30())
	h.startAll()
	h.engine.At(2, func() {
		m := h.mgrs[0]
		adopts := h.adopts[0]
		if !m.HandleTable(1, routing.TableMsg{Epoch: 42, Entries: nil}) {
			t.Fatal("epoch-tagged table not consumed by the membership layer")
		}
		if h.adopts[0] != adopts {
			t.Fatal("stale-epoch table was adopted")
		}
		if m.HandleTable(1, routing.TableMsg{Epoch: 0}) {
			t.Fatal("bootstrap (epoch 0) table claimed by the membership layer")
		}
		if m.Snapshot().StaleTables != 1 {
			t.Fatalf("stale table counter %d, want 1", m.Snapshot().StaleTables)
		}
	})
	h.run()
}

// TestEpochIsViewDeterministic: the epoch depends only on the view, not on
// the order events were learned in.
func TestEpochIsViewDeterministic(t *testing.T) {
	topo := ring(4)
	mk := func() *Manager {
		return New(0, topo.Neighbors(0), cfg30(), Hooks{
			Now:   func() float64 { return 0 },
			After: func(float64, func()) simnet.CancelFunc { return func() bool { return false } },
			Send:  func(graph.NodeID, simnet.Payload) {},
			Adopt: func(*routing.Table) {},
		})
	}
	a, b := mk(), mk()
	// a learns: 1 died, 2 died, 1 came back at inc 1.
	a.apply(Entry{Site: 1, Inc: 0, Dead: true})
	a.apply(Entry{Site: 2, Inc: 0, Dead: true})
	a.apply(Entry{Site: 1, Inc: 1, Dead: false})
	// b learns the final states directly, in the opposite order.
	b.apply(Entry{Site: 1, Inc: 1, Dead: false})
	b.apply(Entry{Site: 2, Inc: 0, Dead: true})
	if a.Epoch() != b.Epoch() {
		t.Fatalf("order-dependent epochs: %d vs %d", a.Epoch(), b.Epoch())
	}
	// Replays of older states are no-ops.
	if b.apply(Entry{Site: 1, Inc: 0, Dead: true}) {
		t.Fatal("stale death applied over a newer incarnation")
	}
	if b.apply(Entry{Site: 1, Inc: 1, Dead: true}) != true {
		t.Fatal("dead must win a tie at equal incarnation")
	}
	if b.apply(Entry{Site: 1, Inc: 1, Dead: false}) {
		t.Fatal("alive overrode dead at equal incarnation")
	}
}

// TestHeartbeatDigestConvergesLostNotice: nobody floods a death notice
// (suspicion is disabled and the seed below bypasses HandleDead), yet the
// whole ring converges on the death through the digest piggybacked on
// heartbeats.
func TestHeartbeatDigestConvergesLostNotice(t *testing.T) {
	cfg := cfg30()
	cfg.SuspectAfter = 100 // beyond the horizon: no natural detection
	h := newHarness(t, ring(5), cfg)
	// Site 1 is genuinely silent for the whole run, so no resurrection
	// evidence can refute the seeded death.
	h.tr.SetFaults(simnet.FaultPlan{Crashes: []simnet.Crash{{Site: 1, At: 0}}}, 0)
	h.startAll()
	// Inject the death knowledge at site 3 only, without flooding: the
	// apply below bypasses HandleDead (no forward), so only heartbeat
	// digests can carry it to the rest of the ring.
	h.engine.At(2, func() {
		m := h.mgrs[3]
		if !m.apply(Entry{Site: 1, Inc: 7, Dead: true}) {
			t.Fatal("seed apply failed")
		}
		m.repair(true)
	})
	h.run()
	for _, id := range []int{0, 2, 4} {
		if h.mgrs[id].Alive(1) {
			t.Fatalf("site %d never learned the death via digests", id)
		}
		if got, want := h.mgrs[id].Epoch(), h.mgrs[3].Epoch(); got != want {
			t.Fatalf("site %d epoch %d, want %d", id, got, want)
		}
	}
}

// TestHorizonStopsHeartbeats: the manager's timers stop at the horizon so
// a discrete-event run drains.
func TestHorizonStopsHeartbeats(t *testing.T) {
	cfg := cfg30()
	cfg.Horizon = 10
	h := newHarness(t, ring(3), cfg)
	h.startAll()
	h.run() // would never return if ticks re-armed forever
	if now := h.tr.Now(); now > 11 {
		t.Fatalf("engine ran to %v, expected to drain shortly after the 10-unit horizon", now)
	}
}

func ExampleManager() {
	// Two sites on a line watch each other; the example just shows the
	// construction shape — see the package tests for full scenarios.
	topo := graph.New(2)
	topo.MustAddEdge(0, 1, 0.1)
	m := New(0, topo.Neighbors(0), Config{Enabled: true, Horizon: 5}, Hooks{
		Now:   func() float64 { return 0 },
		After: func(float64, func()) simnet.CancelFunc { return func() bool { return false } },
		Send:  func(graph.NodeID, simnet.Payload) {},
		Adopt: func(*routing.Table) {},
	})
	fmt.Println(m.Epoch(), m.Alive(1))
	// Output: 0 true
}

// TestJoinAckChunked: an admitting site whose table snapshot exceeds
// MaxAckRoutes splits the handover — head inline in the ack, remainder as
// epoch-tagged TableChunks — and the joiner reassembles the full view from
// the pieces. Hand-driven (no transport) so the re-flood path cannot mask
// a broken chunk merge.
func TestJoinAckChunked(t *testing.T) {
	topo := graph.New(2)
	topo.MustAddEdge(0, 1, 0.05)
	noop := Hooks{
		Now:   func() float64 { return 0 },
		After: func(float64, func()) simnet.CancelFunc { return func() bool { return false } },
		Adopt: func(*routing.Table) {},
	}

	var sent []simnet.Payload
	ah := noop
	ah.Send = func(to graph.NodeID, p simnet.Payload) {
		if to == 1 {
			sent = append(sent, p)
		}
	}
	acker := New(0, topo.Neighbors(0), cfg30(), ah)
	acker.Start()

	// Hand the acker a table far beyond the inline cap: 1300 synthetic
	// destinations learned through its one neighbor.
	const extra = 1300
	big := routing.NewTable(0, topo.Neighbors(0))
	routes := make([]routing.WireRoute, extra)
	for i := range routes {
		routes[i] = routing.WireRoute{
			Dest: graph.NodeID(2 + i), Dist: 0.1 * float64(i+1),
			PathHops: 2, MinHops: 2,
		}
	}
	if !big.Merge(1, 0.05, routes) {
		t.Fatal("seeding the oversized table changed nothing")
	}
	acker.table = big
	snapLen := len(big.Snapshot())
	if snapLen <= MaxAckRoutes {
		t.Fatalf("test table of %d routes does not exceed MaxAckRoutes", snapLen)
	}

	acker.HandleJoinReq(1, JoinReq{})
	var ack JoinAck
	var chunks []TableChunk
	gotAck := false
	for _, p := range sent {
		switch m := p.(type) {
		case JoinAck:
			ack, gotAck = m, true
		case TableChunk:
			chunks = append(chunks, m)
		case AliveNotice, routing.TableMsg, Heartbeat:
			// Admission flood, table re-flood and heartbeats ride along;
			// not under test.
		default:
			t.Fatalf("unexpected payload %q in join answer", p.Kind())
		}
	}
	if !gotAck {
		t.Fatal("no JoinAck sent")
	}
	if len(ack.Table) != MaxAckRoutes {
		t.Fatalf("inline head carries %d routes, want exactly %d", len(ack.Table), MaxAckRoutes)
	}
	wantChunks := (snapLen - MaxAckRoutes + MaxAckRoutes - 1) / MaxAckRoutes
	if ack.TableChunks != wantChunks || len(chunks) != wantChunks {
		t.Fatalf("announced %d chunks, sent %d, want %d", ack.TableChunks, len(chunks), wantChunks)
	}
	covered := len(ack.Table)
	for i, c := range chunks {
		if c.Seq != i+1 || c.Total != wantChunks || c.Epoch != acker.Epoch() {
			t.Fatalf("chunk %d has seq=%d total=%d epoch=%#x, want seq=%d total=%d epoch=%#x",
				i, c.Seq, c.Total, c.Epoch, i+1, wantChunks, acker.Epoch())
		}
		if len(c.Entries) == 0 || len(c.Entries) > MaxAckRoutes {
			t.Fatalf("chunk %d carries %d routes, want 1..%d", i, len(c.Entries), MaxAckRoutes)
		}
		covered += len(c.Entries)
	}
	if covered != snapLen {
		t.Fatalf("handover covers %d of %d snapshot routes", covered, snapLen)
	}

	// The joiner reassembles: ack first (links preserve order), then every
	// chunk; the adopted table must cover the whole snapshot.
	var adopted *routing.Table
	jh := noop
	jh.Send = func(graph.NodeID, simnet.Payload) {}
	jh.Adopt = func(tb *routing.Table) { adopted = tb }
	joiner := New(1, topo.Neighbors(1), cfg30(), jh)
	joiner.StartJoin()
	joiner.HandleJoinAck(0, ack)
	for _, c := range chunks {
		joiner.HandleTableChunk(0, c)
	}
	if joiner.Joining() || !joiner.Started() {
		t.Fatalf("joiner state: joining=%v started=%v", joiner.Joining(), joiner.Started())
	}
	if adopted == nil {
		t.Fatal("joiner never adopted a table")
	}
	for _, r := range routes {
		if _, ok := adopted.Route(r.Dest); !ok {
			t.Fatalf("joiner table missing destination %d after chunked handover", r.Dest)
		}
	}
	// A chunk cut at a dead epoch must be refused like a stale flood.
	stale := chunks[0]
	stale.Epoch = chunks[0].Epoch + 1
	before := adopted.Len()
	joiner.HandleTableChunk(0, stale)
	if adopted.Len() != before {
		t.Fatal("stale-epoch chunk mutated the joiner's table")
	}
}
