// Package membership turns failure handling from a test-harness oracle into
// a protocol: per-site heartbeat/liveness tracking with suspicion timeouts,
// flooded incarnation-guarded death and resurrection notices, epoch-tagged
// incremental routing re-floods so survivors repair their own tables
// locally, and a JoinReq/JoinAck handshake that lets a site (re)enter a
// running cluster and start serving enrollments.
//
// The package is transport-agnostic: one Manager runs per site inside that
// site's execution context (the DES event loop, the live transport's
// per-site goroutine, or the TCP transport's inbox goroutine), driven
// entirely through the Hooks it is constructed with. It therefore behaves
// identically — and deterministically — on all three transports.
//
// # The membership view and its epoch
//
// Every site keeps a view: per site, an incarnation number and a dead flag.
// All sites start alive at incarnation 0 (the PCS bootstrap requires a
// healthy network, §7). Transitions are guarded by incarnation so the view
// is a state-based CRDT: a death notice applies at an incarnation at least
// as new as the known one, a resurrection only at a strictly newer one, and
// "dead" wins ties. Applying the same notice twice — or learning a state
// through any interleaving of notices, heartbeat digests and join acks —
// converges to the same view.
//
// The route epoch is a deterministic fingerprint of the view (the XOR of
// a 64-bit hash of every non-default entry), so two sites with identical
// views agree on the epoch without any coordination, whatever order they
// learned the events in — and two different views share an epoch only on
// a 64-bit hash collision, not a mere count coincidence. Repair floods tag
// their routing.TableMsg with the sender's epoch; a receiver on a
// different epoch discards the message, which is what keeps routes
// computed under different membership views from mixing (the stale-epoch
// rejection of the routing layer).
//
// # Failure detection and repair
//
// Sites heartbeat their direct topology neighbors every HeartbeatEvery and
// declare a neighbor dead after SuspectAfter of silence — replacing the
// scripted FaultPlan.DetectDelay oracle. A detected death is flooded as an
// incarnation-tagged notice; each site that applies it bumps its epoch,
// rebuilds its table from the start condition over its alive neighbors
// (stale routes *through* the corpse cannot survive a reset, which is what
// the central RebuildAlive pass used to guarantee) and re-floods the table
// to its alive neighbors with a bounded per-epoch budget (FloodRounds, the
// same interruption bound as the §7 bootstrap). Merging a same-epoch table
// that changes the local table re-adopts and re-broadcasts, so the flood
// quiesces at a fixed point within the budget.
//
// Heartbeats piggyback a digest of every non-default view entry, so a site
// that missed a flooded notice (message loss, its own partition) still
// converges: digests apply through the same guarded transitions.
//
// # Joining
//
// A joiner (a replacement process for a crashed site, or a site re-entering
// after a partition) sends JoinReq to its topology neighbors. An alive
// neighbor resurrects it at a fresh incarnation, floods the resurrection,
// and answers JoinAck carrying its full view digest. The joiner adopts the
// digest (computing the same epoch as the acker), installs its start-
// condition table and enters the epoch's re-flood, learning routes — and
// becoming routable — within the flood budget. Join repairs are additive:
// survivors keep their tables and merge the joiner's flood instead of
// resetting, since nothing died.
package membership

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/routing"
)

// Config tunes one site's membership manager. The zero value (Enabled
// false) disables membership entirely — the faultless paper model.
type Config struct {
	// Enabled turns the manager on. Clusters with a crash fault plan enable
	// membership automatically (see core.Config); everything else is opt-in.
	Enabled bool
	// HeartbeatEvery is the heartbeat period in virtual time units.
	// Default 1.
	HeartbeatEvery float64
	// SuspectAfter is how long a neighbor may stay silent before it is
	// declared dead. Must exceed HeartbeatEvery by at least the link delay
	// plus jitter headroom. Default 3·HeartbeatEvery.
	SuspectAfter float64
	// RepairSettle is the quiet period after the last repair-table change
	// before the repair is considered settled and deferred enrollments
	// resume. Default HeartbeatEvery.
	RepairSettle float64
	// FloodRounds bounds how many times one site re-broadcasts its table
	// per epoch — the repair flood's interruption bound, normally
	// routing.RoundsForRadius(h) like the bootstrap. Default 5.
	FloodRounds int
	// Horizon stops the heartbeat/suspicion timers this long after Start.
	// 0 means forever (wall-clock deployments); discrete-event clusters set
	// it so their event queues drain once the workload is done.
	Horizon float64
	// JoinRetries bounds how many JoinReq rounds a joiner attempts before
	// giving up (one round per HeartbeatEvery). Default 60.
	JoinRetries int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 1
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * c.HeartbeatEvery
	}
	if c.RepairSettle <= 0 {
		c.RepairSettle = c.HeartbeatEvery
	}
	if c.FloodRounds <= 0 {
		c.FloodRounds = 5
	}
	if c.JoinRetries <= 0 {
		c.JoinRetries = 60
	}
	return c
}

// Validate rejects nonsensical parameter combinations.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.HeartbeatEvery < 0 || c.SuspectAfter < 0 || c.RepairSettle < 0 || c.Horizon < 0 {
		return fmt.Errorf("membership: negative timing parameter in %+v", c)
	}
	if c.SuspectAfter > 0 && c.HeartbeatEvery > 0 && c.SuspectAfter <= c.HeartbeatEvery {
		return fmt.Errorf("membership: SuspectAfter %v must exceed HeartbeatEvery %v",
			c.SuspectAfter, c.HeartbeatEvery)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Wire messages. All kinds share the "member." prefix, which the transport
// statistics use to account control-plane traffic separately from the
// per-job protocol cost.

// msgHeader approximates the fixed wire overhead of a membership message.
const msgHeader = 16

// Heartbeat is the periodic liveness beacon a site sends to every direct
// topology neighbor. It carries the sender's incarnation and a digest of
// every non-default membership state the sender knows, so views converge
// even when flooded notices are lost.
type Heartbeat struct {
	Inc    uint64
	Digest []Entry
}

// Kind implements simnet.Payload.
func (Heartbeat) Kind() string { return "member.hb" }

// SizeBytes implements simnet.Payload.
func (h Heartbeat) SizeBytes() int { return msgHeader + 10*len(h.Digest) }

// Entry is one site's state in a digest: its incarnation and liveness.
type Entry struct {
	Site graph.NodeID
	Inc  uint64
	Dead bool
}

// DeadNotice floods a detected death: Site stopped responding at
// incarnation Inc.
type DeadNotice struct {
	Site graph.NodeID
	Inc  uint64
}

// Kind implements simnet.Payload.
func (DeadNotice) Kind() string { return "member.dead" }

// SizeBytes implements simnet.Payload.
func (DeadNotice) SizeBytes() int { return msgHeader + 8 }

// AliveNotice floods a resurrection or admission: Site is alive at
// incarnation Inc (strictly newer than any incarnation it was declared
// dead at).
type AliveNotice struct {
	Site graph.NodeID
	Inc  uint64
}

// Kind implements simnet.Payload.
func (AliveNotice) Kind() string { return "member.alive" }

// SizeBytes implements simnet.Payload.
func (AliveNotice) SizeBytes() int { return msgHeader + 8 }

// JoinReq asks a direct neighbor to admit the sender into the running
// cluster. Inc is the joiner's proposed incarnation; the admitting side
// raises it above any incarnation the site was previously declared dead at.
type JoinReq struct {
	Inc uint64
}

// Kind implements simnet.Payload.
func (JoinReq) Kind() string { return "member.join" }

// SizeBytes implements simnet.Payload.
func (JoinReq) SizeBytes() int { return msgHeader }

// JoinAck admits a joiner: it carries the granted incarnation, the acker's
// route epoch, its full non-default view digest — from which the joiner
// reconstructs the same view (and therefore the same epoch) — and the head
// of a snapshot of the acker's routing table, so the joiner can route from
// its very first ack instead of waiting for the re-flood to reach it. A
// snapshot larger than MaxAckRoutes is split: the ack carries the first
// chunk and TableChunks records how many TableChunk messages follow, so one
// admission on a wide network never serializes an O(n) table into a single
// unbounded frame.
type JoinAck struct {
	Inc         uint64
	Epoch       uint64
	Digest      []Entry
	Table       []routing.WireRoute
	TableChunks int // TableChunk messages following this ack (0 = none)
}

// Kind implements simnet.Payload.
func (JoinAck) Kind() string { return "member.join-ack" }

// SizeBytes implements simnet.Payload.
func (a JoinAck) SizeBytes() int { return msgHeader + 20 + 10*len(a.Digest) + 16*len(a.Table) }

// MaxAckRoutes caps the table snapshot carried inline by one JoinAck (and
// one TableChunk): a 512-route chunk stays around 8 KiB on the wire, far
// under the codec's frame cap, whatever the network size.
const MaxAckRoutes = 512

// TableChunk is one continuation frame of a chunked JoinAck table snapshot:
// chunk Seq of Total (1-based; chunk 0 travels inline in the ack itself),
// valid at the carried epoch. Receivers merge each chunk like a same-epoch
// repair flood, so loss of a chunk degrades to the re-flood path instead of
// corrupting the table.
type TableChunk struct {
	Epoch   uint64
	Seq     int
	Total   int
	Entries []routing.WireRoute
}

// Kind implements simnet.Payload.
func (TableChunk) Kind() string { return "member.chunk" }

// SizeBytes implements simnet.Payload.
func (c TableChunk) SizeBytes() int { return msgHeader + 16 + 16*len(c.Entries) }

// RegionDigest is a landmark's liveness summary of its own region, routed
// to the adjacent regions' landmarks under hierarchical routing: membership
// gossip is region-scoped there, and the landmark digest is the only
// cross-region liveness channel. Observational — it never feeds routing.
type RegionDigest struct {
	Region int
	Digest []Entry
}

// Kind implements simnet.Payload.
func (RegionDigest) Kind() string { return "member.region" }

// SizeBytes implements simnet.Payload.
func (d RegionDigest) SizeBytes() int { return msgHeader + 4 + 10*len(d.Digest) }
