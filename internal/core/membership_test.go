package core

import (
	"strings"
	"testing"

	"repro/internal/core/membership"
	"repro/internal/simnet"
)

// TestMembershipOffByDefault: the faultless paper model carries no
// membership machinery and no control traffic.
func TestMembershipOffByDefault(t *testing.T) {
	c := mustCluster(t, fastLine(3), DefaultConfig())
	if c.membershipOn() || c.resilient() {
		t.Fatal("membership armed without a crash plan or explicit config")
	}
	for _, s := range c.sites {
		if s.member != nil {
			t.Fatalf("site %d has a membership manager on a faultless cluster", s.id)
		}
	}
	job, _ := c.Submit(0, 0, parJob(t, 2, 10), 16)
	runAll(t, c)
	if job.Outcome != AcceptedDistributed {
		t.Fatalf("outcome %v", job.Outcome)
	}
	if sum := c.Summarize(); sum.ControlMessages != 0 {
		t.Fatalf("%d control messages on a membership-less cluster", sum.ControlMessages)
	}
}

// TestMembershipRequiresHorizonOnDES: heartbeats without a horizon would
// keep the event queue alive forever, so the DES constructor refuses.
func TestMembershipRequiresHorizonOnDES(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Membership = membership.Config{Enabled: true}
	if _, err := NewCluster(fastLine(3), cfg); err == nil {
		t.Fatal("DES cluster accepted membership without a horizon")
	}
	cfg.Membership.Horizon = 50
	if _, err := NewCluster(fastLine(3), cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRejoinResurrects: a temporary fail-silent window is detected by
// the heartbeat layer, the victim is routed around, and once its beacons
// resume every site resurrects it at a fresh incarnation — after which a
// job enrolls it again. The scripted DetectDelay oracle is gone; all of
// this flows through the wire protocol.
func TestCrashRejoinResurrects(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceEvents = true
	cfg.Faults = &simnet.FaultPlan{
		Crashes: []simnet.Crash{{Site: 1, At: 5, For: 10}}, // recovers at 15
	}
	c := mustCluster(t, ring5(), cfg)
	if !c.membershipOn() {
		t.Fatal("crash plan did not auto-enable membership")
	}
	// Submitted well after recovery and resurrection: must be served by the
	// healed topology, with site 1 enrollable again.
	job, err := c.Submit(25, 0, parJob(t, 2, 10), 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.AllIdle() {
		t.Fatal("cluster not idle after drain")
	}
	if job.Outcome != AcceptedDistributed {
		t.Fatalf("post-recovery job outcome %v/%s, want accepted-distributed", job.Outcome, job.RejectStage)
	}
	found := false
	for _, m := range c.SiteSphere(0) {
		if m == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("recovered site 1 missing from site 0's sphere: %v", c.SiteSphere(0))
	}
	snaps := c.MembershipSnapshots()
	if len(snaps) != 5 {
		t.Fatalf("%d membership snapshots, want 5", len(snaps))
	}
	resurrections := 0
	for _, s := range snaps {
		if s.Epoch != snaps[0].Epoch {
			t.Fatalf("views diverged: site %d at epoch %d, site %d at %d",
				s.Self, s.Epoch, snaps[0].Self, snaps[0].Epoch)
		}
		for _, st := range s.Sites {
			if st.Dead {
				t.Fatalf("site %d still believes %d dead after recovery", s.Self, st.Site)
			}
		}
		resurrections += s.Resurrections
	}
	if resurrections == 0 {
		t.Fatal("no resurrection applied anywhere despite the recovery")
	}
	if sum := c.Summarize(); sum.ControlMessages == 0 {
		t.Fatal("membership ran without any accounted control traffic")
	}
}

// TestRepairDefersEnrollment: a job that needs distribution while a route
// repair is settling is deferred until the flood quiesces, then decided
// against the repaired sphere.
func TestRepairDefersEnrollment(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceEvents = true
	cfg.Membership = membership.Config{
		Enabled: true, HeartbeatEvery: 1, SuspectAfter: 3, RepairSettle: 1, Horizon: 40,
	}
	cfg.Faults = &simnet.FaultPlan{Crashes: []simnet.Crash{{Site: 1, At: 2}}}
	c := mustCluster(t, ring5(), cfg)
	// Site 1 goes permanently silent at t=2; its last beacon leaves at the
	// t=2 tick but is dropped. Site 0 declares it dead at the t=5 tick
	// (silence > 3) and the repair settles about a unit after the flood
	// quiesces — so a distribution-needing job arriving at 5.5 lands in
	// the settling window and must be deferred, not enrolled against the
	// half-repaired table.
	job, err := c.Submit(5.5, 0, parJob(t, 2, 10), 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.AllIdle() {
		t.Fatal("cluster not idle after drain")
	}
	if job.Outcome == Pending {
		t.Fatal("deferred job never decided")
	}
	deferred := false
	for _, e := range c.JobEvents(job.ID) {
		if e.Kind == EvDeferred && strings.Contains(e.Detail, "repair") {
			deferred = true
		}
	}
	if !deferred {
		t.Fatalf("job was not deferred by the settling repair; events: %v", c.JobEvents(job.ID))
	}
	if job.Accepted() {
		// Whatever the outcome, the ACS must not contain the dead site.
		for _, te := range c.Executions() {
			if te.Job.ID == job.ID && te.Site == 1 {
				t.Fatal("deferred job executed on the dead site")
			}
		}
	}
	settleSeen := false
	for _, e := range c.Events() {
		if e.Kind == EvRepairSettled {
			settleSeen = true
		}
	}
	if !settleSeen {
		t.Fatal("no repair-settled event recorded")
	}
}
