package core

import (
	"repro/internal/core/txn"
	"repro/internal/dag"
	"repro/internal/graph"
	"repro/internal/mapper"
	"repro/internal/simnet"
)

// msgHeader approximates the fixed wire overhead of every protocol message:
// source, destination, job identifier, kind tag.
const msgHeader = 24

// Routed wraps a protocol payload for hop-by-hop forwarding: sites relay it
// along their routing tables' next hops until it reaches Dest. Each link
// traversal is a separate accounted message, which is exactly how the paper
// counts communication ("a limited number of sites and communication
// links").
type Routed struct {
	Src   graph.NodeID
	Dest  graph.NodeID
	TTL   int
	Inner simnet.Payload
}

// Kind implements simnet.Payload.
func (r Routed) Kind() string { return r.Inner.Kind() }

// SizeBytes implements simnet.Payload: inner payload plus routing header.
func (r Routed) SizeBytes() int { return 8 + r.Inner.SizeBytes() }

// EnrollReq asks a PCS member to join the ACS for a job (§8). Window is the
// initiator's enrollment window; members use it to size the lock lease they
// arm on faulty clusters (the initiator's sphere diameter, which the window
// encodes, bounds every later phase's round trip).
type EnrollReq struct {
	Job       string
	Initiator graph.NodeID
	Window    float64
}

func (EnrollReq) Kind() string     { return "rtds.enroll" }
func (e EnrollReq) SizeBytes() int { return msgHeader + 8 }

// DistEntry is one line of the distance vector an enrollee reports, letting
// the initiator compute the exact ACS delay diameter (DESIGN.md §6.3). It
// aliases the txn package's representation so enrollment reports flow into
// the state machine without conversion.
type DistEntry = txn.DistEntry

// EnrollAck accepts enrollment: the member is now locked for the initiator
// and reports its surplus (§8) plus its distance vector and computing power.
type EnrollAck struct {
	Job     string
	Member  graph.NodeID
	Surplus float64
	Power   float64
	Dists   []DistEntry
}

func (EnrollAck) Kind() string     { return "rtds.enroll-ack" }
func (a EnrollAck) SizeBytes() int { return msgHeader + 16 + 12*len(a.Dists) }

// ValidateReq broadcasts the trial mapping M in the ACS (§10). Every member
// receives all logical processors' task windows and tries to endorse each.
type ValidateReq struct {
	Job       string
	Initiator graph.NodeID
	NumProcs  int
	Windows   [][]mapper.TaskWindow // indexed by logical processor
}

func (ValidateReq) Kind() string { return "rtds.validate" }
func (v ValidateReq) SizeBytes() int {
	n := 0
	for _, w := range v.Windows {
		n += len(w)
	}
	// Per task window: id (4), complexity/release/deadline (24).
	return msgHeader + 4 + 28*n
}

// ValidateAck reports the logical processors the sender could endorse.
type ValidateAck struct {
	Job        string
	Member     graph.NodeID
	Endorsable []int
}

func (ValidateAck) Kind() string     { return "rtds.validate-ack" }
func (a ValidateAck) SizeBytes() int { return msgHeader + 4*len(a.Endorsable) }

// CommitMsg carries the §11 permutation outcome to one ACS member. Proc < 0
// releases the member without work; otherwise the member endorses logical
// processor Proc and receives the task codes, the precedence structure and
// the task→site map it needs to send results during execution.
type CommitMsg struct {
	Job       string
	Initiator graph.NodeID
	Proc      int
	Graph     *dag.Graph                  // task codes + precedence (size accounted below)
	TaskSites map[dag.TaskID]graph.NodeID // where every task of the job runs
	CodeBytes int                         // accounted size of the shipped task codes
}

func (CommitMsg) Kind() string { return "rtds.commit" }
func (c CommitMsg) SizeBytes() int {
	if c.Proc < 0 {
		return msgHeader
	}
	return msgHeader + c.CodeBytes + 8*len(c.TaskSites)
}

// CommitAck confirms (or refuses) the insertion of Ti into the member's
// scheduling plan.
type CommitAck struct {
	Job    string
	Member graph.NodeID
	OK     bool
}

func (CommitAck) Kind() string   { return "rtds.commit-ack" }
func (CommitAck) SizeBytes() int { return msgHeader + 1 }

// UnlockMsg releases an ACS member after a rejection (§10) or aborts an
// already-committed job after a commit failure. From identifies the
// initiator so abort receipts can be acknowledged when the cluster runs
// with fault injection (the initiator retransmits unacknowledged aborts —
// a lost abort must not leave reservations of a rejected job behind).
type UnlockMsg struct {
	Job   string
	From  graph.NodeID
	Abort bool // also cancel any reservations of Job
}

func (UnlockMsg) Kind() string   { return "rtds.unlock" }
func (UnlockMsg) SizeBytes() int { return msgHeader + 4 + 1 } // initiator id + abort flag

// UnlockAck acknowledges an abort unlock; only sent on faulty clusters.
type UnlockAck struct {
	Job    string
	Member graph.NodeID
}

func (UnlockAck) Kind() string   { return "rtds.unlock-ack" }
func (UnlockAck) SizeBytes() int { return msgHeader }

// ResultMsg models a predecessor task's result travelling to the site of a
// successor task during distributed execution (§13 "Communication Delays").
// For identifies the consuming task when edges carry distinct data volumes;
// 0 means the result serves every local successor of Task.
type ResultMsg struct {
	Job   string
	Task  dag.TaskID
	For   dag.TaskID
	Bytes int
}

func (ResultMsg) Kind() string     { return "rtds.result" }
func (m ResultMsg) SizeBytes() int { return msgHeader + m.Bytes }

// DoneMsg reports a completed task to the job's initiator so it can record
// end-to-end completion.
type DoneMsg struct {
	Job  string
	Task dag.TaskID
	At   float64
}

func (DoneMsg) Kind() string   { return "rtds.done" }
func (DoneMsg) SizeBytes() int { return msgHeader + 12 }
