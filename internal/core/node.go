package core

//lint:file-allow wallclock -- a Node is the live multi-process deployment unit: readiness polling, control deadlines and graceful shutdown are wall-clock by nature and never feed the DES

import (
	"fmt"
	"time"

	"repro/internal/core/membership"
	"repro/internal/dag"
	"repro/internal/graph"
	"repro/internal/simnet"
)

// Node is one RTDS site running alone in its own process over an injected
// transport — the unit of the multi-process deployment (cmd/rtds-node). The
// in-process Cluster owns every site of the topology and shares job records
// between them through memory; a Node owns exactly one site, every other
// site is a peer reachable only through the transport, and the job records
// of remotely-initiated work are reconstructed from the protocol messages
// themselves (see adoptRemoteJob).
//
// Lifecycle: NewNode (attach to the transport) → transport start →
// StartBootstrap → WaitReady → Seal → Submit/serve until shutdown. The
// transport is owned by the caller and must outlive the node.
//
// Job records (local submissions and adopted remote shares) are retained
// for the node's lifetime: summaries, the /jobs control endpoint and the
// load harness's leak checks all read the full history. A node is
// therefore sized for bounded load campaigns, not unbounded daemon
// uptime; decided-job eviction is deliberate future work.
type Node struct {
	c    *Cluster
	site *Site
}

// NewNode builds a single-site cluster at `self` over the injected
// transport. The transport must not have been started yet: the node attaches
// its message handler here, and transports require every Attach to precede
// their start.
func NewNode(topo *graph.Graph, cfg Config, tr simnet.Transport, self graph.NodeID) (*Node, error) {
	if err := cfg.validate(topo.Len()); err != nil {
		return nil, err
	}
	if cfg.Hier {
		// The hierarchical bootstrap is finalized cluster-wide after the
		// event queue drains; a single-site node has no such barrier.
		return nil, fmt.Errorf("core: hierarchical routing requires the in-process cluster")
	}
	if !topo.Connected() {
		return nil, fmt.Errorf("core: topology is not connected")
	}
	if int(self) < 0 || int(self) >= topo.Len() {
		return nil, fmt.Errorf("core: node id %d out of range [0,%d)", self, topo.Len())
	}
	c := &Cluster{
		cfg:      cfg,
		mcfg:     cfg.membershipConfig(),
		topo:     topo,
		tr:       tr,
		jobIndex: make(map[string]*Job),
		nodeMode: true,
	}
	c.sites = make([]*Site, topo.Len())
	s := newSite(self, c)
	c.sites[self] = s
	tr.Attach(self, s.handle)
	return &Node{c: c, site: s}, nil
}

// Self reports the site this node runs.
func (n *Node) Self() graph.NodeID { return n.site.id }

// StartBootstrap kicks the §7 PCS construction from the site's execution
// context. Call after the transport has been started; peers each run their
// own bootstrap, and the rounds complete once the neighbors' table messages
// have been exchanged.
func (n *Node) StartBootstrap() {
	n.c.tr.After(n.site.id, 0, func() { n.site.rnode.Start() })
}

// StartJoin enters a RUNNING cluster instead of bootstrapping with it: the
// membership layer's JoinReq/JoinAck handshake admits this site at a fresh
// incarnation, installs its start-condition table and re-floods routes, so
// a replacement process for a crashed site becomes schedulable without
// restarting the cluster. Requires membership to be enabled in the config.
// WaitReady reports success exactly as for the bootstrap path.
func (n *Node) StartJoin() error {
	if n.site.member == nil {
		return fmt.Errorf("core: join requires Config.Membership.Enabled")
	}
	n.c.tr.After(n.site.id, 0, n.site.member.StartJoin)
	return nil
}

// Membership probes the site's membership view through its execution
// context. Returns the zero snapshot when membership is disabled or the
// transport is closed.
func (n *Node) Membership() membership.Snapshot {
	s := n.site
	if s.member == nil {
		return membership.Snapshot{}
	}
	done := make(chan membership.Snapshot, 1)
	n.c.tr.After(s.id, 0, func() { done <- s.member.Snapshot() })
	select {
	case v := <-done:
		return v
	case <-time.After(probeTimeout):
		return membership.Snapshot{}
	}
}

// probeTimeout bounds every execution-context probe: on a closed
// transport the probe callback is silently dropped (there is no execution
// context left to run it), so an unbounded receive would hang forever.
const probeTimeout = 5 * time.Second

// Ready probes (through the site's execution context, so without racing the
// message handlers) whether the PCS bootstrap has completed at this node.
// Reports false when the transport is closed or unresponsive.
func (n *Node) Ready() bool {
	done := make(chan bool, 1)
	n.c.tr.After(n.site.id, 0, func() { done <- n.site.table != nil })
	select {
	case v := <-done:
		return v
	case <-time.After(probeTimeout):
		return false
	}
}

// RoutingState probes the site's routing-table footprint (bytes and
// entries) through its execution context — the values behind the node's
// routing-state gauges. Zero before the bootstrap completes or when the
// transport is closed.
func (n *Node) RoutingState() (bytes, entries int) {
	done := make(chan [2]int, 1)
	s := n.site
	n.c.tr.After(s.id, 0, func() {
		if s.table == nil {
			done <- [2]int{}
			return
		}
		done <- [2]int{s.table.StateBytes(), s.table.StateEntries()}
	})
	select {
	case v := <-done:
		return v[0], v[1]
	case <-time.After(probeTimeout):
		return 0, 0
	}
}

// WaitReady polls Ready until the bootstrap completes or the timeout
// elapses, reporting success.
func (n *Node) WaitReady(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if n.Ready() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return n.Ready()
}

// Seal marks the end of the bootstrap phase: the epoch is fixed, the
// bootstrap communication cost is recorded, the per-job counters are
// zeroed, the configured fault plan is armed and the membership layer
// starts heartbeating. Call once, after WaitReady — on the join path the
// membership manager is already running and is left alone.
func (n *Node) Seal() {
	c := n.c
	c.epoch = c.tr.Now()
	c.bootstrapMessages = c.tr.Stats().Messages()
	c.bootstrapBytes = c.tr.Stats().Bytes()
	c.tr.Stats().Reset()
	c.armFaults()
	c.armMembership()
}

// Submit injects a job arriving at this site `at` virtual time units after
// the epoch (clamped to now when the wall clock has already passed it, like
// the live cluster). The job's origin is always the node's own site: remote
// origins belong to the remote nodes.
func (n *Node) Submit(at float64, g *dag.Graph, relDeadline float64) (*Job, error) {
	if at < 0 {
		return nil, fmt.Errorf("core: negative submission time %v", at)
	}
	if relDeadline <= 0 {
		return nil, fmt.Errorf("core: non-positive relative deadline %v", relDeadline)
	}
	c := n.c
	c.mu.Lock()
	c.jobSeq++
	arrival := c.epoch + at
	if now := c.tr.Now(); arrival < now {
		arrival = now
	}
	job := &Job{
		ID:          fmt.Sprintf("j%d@%d", c.jobSeq, n.site.id),
		Graph:       g,
		Origin:      n.site.id,
		Arrival:     arrival,
		AbsDeadline: arrival + relDeadline,
		remaining:   make(map[dag.TaskID]bool, g.Len()),
	}
	for _, id := range g.TaskIDs() {
		job.remaining[id] = true
	}
	c.jobs = append(c.jobs, job)
	c.jobIndex[job.ID] = job
	c.mu.Unlock()
	delay := arrival - c.tr.Now()
	if delay < 0 {
		delay = 0
	}
	c.tr.After(n.site.id, delay, func() { n.site.jobArrives(job) })
	return job, nil
}

// Idle probes whether the site has released its lock, drained its deferred
// queue and closed its transactions. Routed through the site's execution
// context like the live cluster's probe; reports false when the transport
// is closed or unresponsive.
func (n *Node) Idle() bool {
	done := make(chan bool, 1)
	s := n.site
	n.c.tr.After(s.id, 0, func() {
		done <- !s.locked() && len(s.deferred) == 0 && len(s.txns) == 0
	})
	select {
	case v := <-done:
		return v
	case <-time.After(probeTimeout):
		return false
	}
}

// ReservationJobIDs reports the distinct job IDs with committed
// reservations in this site's plan (leak detection for the load harness).
// Returns nil when the transport is closed or unresponsive.
func (n *Node) ReservationJobIDs() []string {
	done := make(chan []string, 1)
	s := n.site
	n.c.tr.After(s.id, 0, func() {
		seen := make(map[string]bool)
		var jobs []string
		for _, r := range s.plan.Reservations() {
			if !seen[r.Job] {
				seen[r.Job] = true
				jobs = append(jobs, r.Job)
			}
		}
		done <- jobs
	})
	select {
	case v := <-done:
		return v
	case <-time.After(probeTimeout):
		return nil
	}
}

// Jobs lists the locally-submitted job records in submission order.
func (n *Node) Jobs() []*Job { return n.c.Jobs() }

// JobStatuses snapshots the locally-submitted jobs' decision state under
// the cluster lock (safe while the protocol is still running).
func (n *Node) JobStatuses() []JobStatus { return n.c.JobStatuses() }

// Summarize aggregates the locally-submitted jobs' outcomes. Message
// counters are this node's share of the cluster traffic.
func (n *Node) Summarize() Summary { return n.c.Summarize() }

// Stats exposes the post-Seal communication counters of this node.
func (n *Node) Stats() *simnet.Stats { return n.c.Stats() }

// BootstrapCost reports this node's share of the PCS construction traffic.
func (n *Node) BootstrapCost() (messages, bytes int64) { return n.c.BootstrapCost() }

// Violations lists causality violations detected at this node.
func (n *Node) Violations() []string { return n.c.Violations() }

// FaultDisruptions reports fault-attributed anomalies observed at this node.
func (n *Node) FaultDisruptions() int { return n.c.FaultDisruptions() }

// adoptRemoteJob reconstructs a member-side job record from a commit
// message: in node mode the initiator's record lives in another process, so
// the graph, origin and identity carried by the protocol itself are all the
// member knows — and all it needs (deadline accounting happens at the
// origin). Idempotent: retransmitted commits reuse the first record.
func (c *Cluster) adoptRemoteJob(id string, g *dag.Graph, origin graph.NodeID) *Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	if j := c.jobIndex[id]; j != nil {
		return j
	}
	j := &Job{ID: id, Graph: g, Origin: origin}
	// Deliberately not appended to c.jobs: Summarize counts locally
	// submitted jobs only, and a remote share is not a local submission.
	c.jobIndex[id] = j
	return j
}
