package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core/policy"
	"repro/internal/graph"
	"repro/internal/mapper"
)

// policyWorkload drives a cluster with a mixed workload that produces both
// local and distributed admissions, and returns the summary.
func policyWorkload(t *testing.T, cfg Config) Summary {
	t.Helper()
	topo := graph.RandomConnected(12, 3, graph.DelayRange{Min: 0.05, Max: 0.2}, 42)
	c := mustCluster(t, topo, cfg)
	rng := rand.New(rand.NewSource(7))
	at := 0.0
	for i := 0; i < 40; i++ {
		at += rng.ExpFloat64() * 2
		g := chainJob(t, 2+rng.Intn(3), 2+3*rng.Float64())
		if _, err := c.Submit(at, graph.NodeID(rng.Intn(12)), g, g.CriticalPathLength()*2); err != nil {
			t.Fatal(err)
		}
	}
	runAll(t, c)
	return c.Summarize()
}

// TestDefaultPoliciesBitExact: a cluster with an explicitly spelled-out
// default policy set must replay the zero-Set run exactly — the contract
// that makes the policy layer a safe refactoring seam.
func TestDefaultPoliciesBitExact(t *testing.T) {
	implicit := policyWorkload(t, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Policies = policy.Set{
		Sphere:     policy.FullSphere{},
		Acceptance: policy.EDF{},
		Dispatch:   policy.UniformDispatch{},
		Mapper:     policy.HeuristicMapper{H: mapper.HeuristicCPEFT},
	}
	explicit := policyWorkload(t, cfg)
	if fmt.Sprintf("%v", implicit) != fmt.Sprintf("%v", explicit) {
		t.Fatalf("explicit defaults diverged from the zero Set:\n%v\n%v", implicit, explicit)
	}
}

// TestKRedundantCapsEnrollment: the k-redundant sphere policy bounds every
// transaction's ACS (k members + initiator) and with it the per-job message
// cost, while the protocol still decides every job cleanly.
func TestKRedundantCapsEnrollment(t *testing.T) {
	full := policyWorkload(t, DefaultConfig())

	cfg := DefaultConfig()
	cfg.Policies.Sphere = policy.KRedundant{K: 3}
	capped := policyWorkload(t, cfg)

	if capped.Submitted != full.Submitted || capped.Undecided != 0 {
		t.Fatalf("capped run incomplete: %v", capped)
	}
	if capped.MeanACSSize > 4+1e-9 {
		t.Fatalf("mean ACS %.2f exceeds k+1=4", capped.MeanACSSize)
	}
	if full.MeanACSSize <= 4 {
		t.Fatalf("control run's spheres too small (%.2f) for the cap to mean anything", full.MeanACSSize)
	}
	if capped.Messages >= full.Messages {
		t.Fatalf("k-redundant enrollment did not reduce traffic: %d vs %d messages",
			capped.Messages, full.Messages)
	}
}

// TestLaxityThresholdShiftsAdmissions: a strict laxity threshold refuses
// borderline local fits, so local admissions can only fall relative to EDF
// and distributed attempts can only grow; every job is still decided.
func TestLaxityThresholdShiftsAdmissions(t *testing.T) {
	edf := policyWorkload(t, DefaultConfig())

	cfg := DefaultConfig()
	cfg.Policies.Acceptance = policy.LaxityThreshold{Theta: 0.5}
	strict := policyWorkload(t, cfg)

	if strict.Undecided != 0 {
		t.Fatalf("threshold run left %d jobs undecided", strict.Undecided)
	}
	if strict.AcceptedLocal >= edf.AcceptedLocal {
		t.Fatalf("strict threshold did not reduce local admissions: %d vs %d",
			strict.AcceptedLocal, edf.AcceptedLocal)
	}
	distAttempts := strict.Submitted - strict.AcceptedLocal
	if distAttempts <= edf.Submitted-edf.AcceptedLocal {
		t.Fatalf("refused local fits did not go to distribution: %d vs %d attempts",
			distAttempts, edf.Submitted-edf.AcceptedLocal)
	}
}
