// Package policy defines the pluggable decision points of the RTDS
// protocol core. The paper fixes one choice per axis (enroll the whole
// sphere, accept on a plain EDF insertion test, scatter laxity uniformly,
// map with CP-EFT); this package names each axis as an interface so
// alternatives — communication-aware placement, admission thresholds,
// bounded enrollment redundancy — can be swept without editing the
// protocol state machine.
//
// Four axes are defined:
//
//   - Sphere: which sphere members an initiator enrolls (fan-out and
//     redundancy of the ACS construction, §8);
//   - Acceptance: the local guarantee test run before distribution (§5);
//   - Dispatch: how case-(iii) laxity is scattered over the trial mapping
//     (§12.2 and the §13 generalization);
//   - Mapper: the list-scheduling heuristic of the trial mapping (§9).
//
// The zero Set resolves to the paper's defaults, and the defaults are
// bit-exact with the historical hard-wired behavior: a cluster built with
// an empty Set replays the same protocol schedule event for event.
package policy

import (
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/graph"
	"repro/internal/mapper"
	"repro/internal/schedule"
)

// Set bundles one concrete choice per policy axis. Nil fields select the
// paper defaults (FullSphere, EDF, and the mapper knobs from the legacy
// Config fields).
type Set struct {
	Sphere     Sphere
	Acceptance Acceptance
	Dispatch   Dispatch
	Mapper     Mapper
}

// ---------------------------------------------------------------------------
// Sphere: enrollment fan-out (§8)

// Sphere decides the enrollment fan-out of a new transaction: which members
// of the initiator's Potential Computing Sphere receive an enrollment
// request. The sphere itself (its radius, hence its growth) is fixed by
// Config.Radius at bootstrap; this axis controls how much of it one
// transaction tries to lock.
type Sphere interface {
	Name() string
	// EnrollSet selects the members to enroll. pcs is the site's
	// precomputed sphere in ascending site order (self excluded); dist
	// reports the known delay to a member. Implementations must not mutate
	// pcs; returning it unchanged keeps the paper's full-sphere behavior.
	//
	// EnrollSet is invoked once per routing-table adoption (bootstrap and
	// route repair), not once per job — the site caches the result for the
	// enrollment hot path — so it must be a pure function of (pcs, dist).
	EnrollSet(pcs []graph.NodeID, dist func(graph.NodeID) float64) []graph.NodeID
}

// FullSphere is the paper's behavior: every sphere member is enrolled.
type FullSphere struct{}

// Name implements Sphere.
func (FullSphere) Name() string { return "full-sphere" }

// EnrollSet implements Sphere: the sphere, unchanged.
func (FullSphere) EnrollSet(pcs []graph.NodeID, _ func(graph.NodeID) float64) []graph.NodeID {
	return pcs
}

// KRedundant caps the enrollment fan-out at the K nearest sphere members —
// K is the degree of redundancy the initiator pays for: enough candidate
// processors to survive refusals, without locking (and messaging) a whole
// wide sphere for every job. With K at or above the sphere size it
// degenerates to FullSphere.
type KRedundant struct{ K int }

// Name implements Sphere.
func (p KRedundant) Name() string { return fmt.Sprintf("k-redundant-%d", p.K) }

// EnrollSet implements Sphere: the K delay-nearest members, returned in
// ascending site order so the enrollment sends stay deterministic.
func (p KRedundant) EnrollSet(pcs []graph.NodeID, dist func(graph.NodeID) float64) []graph.NodeID {
	if p.K <= 0 || len(pcs) <= p.K {
		return pcs
	}
	nearest := append([]graph.NodeID(nil), pcs...)
	sort.SliceStable(nearest, func(i, j int) bool {
		di, dj := dist(nearest[i]), dist(nearest[j])
		if di != dj {
			return di < dj
		}
		return nearest[i] < nearest[j]
	})
	set := nearest[:p.K]
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	return set
}

// HierSphere is the region-first enrollment of the hierarchical routing
// hierarchy: the precomputed sphere is enrolled unchanged — under two-level
// routing the sphere is already confined to the initiator's region, because
// the hierarchical table's Sphere() walks intra-region routes only — and the
// widening to adjacent regions happens outside this axis, as the initiator's
// ACS-underflow escalation to the neighboring regions' landmarks. The policy
// therefore exists to *name* the regional behavior in reports and sweeps;
// its EnrollSet is deliberately identical to FullSphere's.
type HierSphere struct{}

// Name implements Sphere.
func (HierSphere) Name() string { return "hier-region" }

// EnrollSet implements Sphere: the (region-scoped) sphere, unchanged.
func (HierSphere) EnrollSet(pcs []graph.NodeID, _ func(graph.NodeID) float64) []graph.NodeID {
	return pcs
}

// ---------------------------------------------------------------------------
// Acceptance: the local guarantee test (§5)

// Acceptance is the local guarantee test: can the whole DAG be scheduled on
// this site's plan before the deadline? A successful test returns the
// admission ticket to commit; a failed test sends the job to distribution.
type Acceptance interface {
	Name() string
	// LocalTest tries to place the whole DAG in the gaps of plan. now is
	// the current virtual time, jobID stamps the requests (the plan cancels
	// reservations by job), arrival and deadline are the job's absolute
	// window, power the site's computing power.
	LocalTest(plan schedule.Plan, now float64, jobID string, g *dag.Graph, arrival, deadline, power float64) (*schedule.Ticket, bool)
}

// EDF is the paper's local test: schedule the entire DAG in the gaps of the
// site's plan before the job deadline, placing tasks in the §12 priority
// order and deriving each release from its predecessors' completions.
type EDF struct{}

// Name implements Acceptance.
func (EDF) Name() string { return "edf" }

// LocalTest implements Acceptance.
func (EDF) LocalTest(plan schedule.Plan, now float64, jobID string, g *dag.Graph, arrival, deadline, power float64) (*schedule.Ticket, bool) {
	sess, _, ok := edfPlace(plan, now, jobID, g, arrival, deadline, power)
	if !ok {
		return nil, false
	}
	return sess.Ticket(), true
}

// edfPlace runs the §12-priority-order insertion and reports the session
// and the DAG's completion time. Shared by EDF and LaxityThreshold.
func edfPlace(plan schedule.Plan, now float64, jobID string, g *dag.Graph, arrival, deadline, power float64) (schedule.PlacementSession, float64, bool) {
	sess := plan.NewSession(now)
	var finish float64
	for _, id := range g.PriorityOrder() {
		rel := arrival
		if now > rel {
			rel = now
		}
		for _, p := range g.Predecessors(id) {
			c, ok := sess.Completion(int(p))
			if !ok {
				panic("policy: predecessor not placed before successor")
			}
			if c > rel {
				rel = c
			}
		}
		req := schedule.Request{
			Job:      jobID,
			Task:     int(id),
			Release:  rel,
			Deadline: deadline,
			Duration: g.Complexity(id) / power,
		}
		if _, ok := sess.Place(req); !ok {
			return nil, 0, false
		}
		if c, ok := sess.Completion(int(id)); ok && c > finish {
			finish = c
		}
	}
	return sess, finish, true
}

// LaxityThreshold accepts a local guarantee only when it leaves at least
// Theta of the job's window as end-to-end laxity. Borderline jobs — ones
// EDF would wedge against their deadline on an already busy site — are
// pushed to the sphere instead, where the mapper can spread them; it
// promotes the laxity lens of experiment E5 from a mapper diagnostic to an
// admission policy. Theta 0 degenerates to EDF.
type LaxityThreshold struct{ Theta float64 }

// Name implements Acceptance.
func (p LaxityThreshold) Name() string { return fmt.Sprintf("laxity-%.2f", p.Theta) }

// LocalTest implements Acceptance.
func (p LaxityThreshold) LocalTest(plan schedule.Plan, now float64, jobID string, g *dag.Graph, arrival, deadline, power float64) (*schedule.Ticket, bool) {
	sess, finish, ok := edfPlace(plan, now, jobID, g, arrival, deadline, power)
	if !ok {
		return nil, false
	}
	if deadline-finish < p.Theta*(deadline-arrival) {
		return nil, false
	}
	return sess.Ticket(), true
}

// ---------------------------------------------------------------------------
// Dispatch: case-(iii) laxity scattering (§12.2, §13)

// Dispatch selects how the extra laxity of adjustment case (iii) is
// scattered over the trial mapping's task windows.
type Dispatch interface {
	Name() string
	LaxityMode() mapper.LaxityMode
}

// UniformDispatch is §12.2's constant ℓ = (d − r − M*)/η.
type UniformDispatch struct{}

// Name implements Dispatch.
func (UniformDispatch) Name() string { return "uniform" }

// LaxityMode implements Dispatch.
func (UniformDispatch) LaxityMode() mapper.LaxityMode { return mapper.LaxityUniform }

// WeightedDispatch is the §13 busyness-weighted generalization: tasks on
// busy processors receive proportionally more laxity.
type WeightedDispatch struct{}

// Name implements Dispatch.
func (WeightedDispatch) Name() string { return "busyness-weighted" }

// LaxityMode implements Dispatch.
func (WeightedDispatch) LaxityMode() mapper.LaxityMode { return mapper.LaxityBusynessWeighted }

// FromLaxityMode wraps a legacy Config.LaxityMode value as a Dispatch.
func FromLaxityMode(m mapper.LaxityMode) Dispatch {
	if m == mapper.LaxityBusynessWeighted {
		return WeightedDispatch{}
	}
	return UniformDispatch{}
}

// ---------------------------------------------------------------------------
// Mapper: the trial-mapping heuristic (§9)

// Mapper wraps the internal/mapper heuristic choice: §9 notes "almost any
// heuristic can be adapted to our purpose", and this axis is where an
// alternative plugs in.
type Mapper interface {
	Name() string
	Heuristic() mapper.Heuristic
}

// HeuristicMapper selects a fixed internal/mapper heuristic.
type HeuristicMapper struct{ H mapper.Heuristic }

// Name implements Mapper.
func (m HeuristicMapper) Name() string { return m.H.String() }

// Heuristic implements Mapper.
func (m HeuristicMapper) Heuristic() mapper.Heuristic { return m.H }

// FromHeuristic wraps a legacy Config.Heuristic value as a Mapper.
func FromHeuristic(h mapper.Heuristic) Mapper { return HeuristicMapper{H: h} }
