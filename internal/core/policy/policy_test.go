package policy

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/graph"
	"repro/internal/mapper"
	"repro/internal/schedule"
)

func chain(t *testing.T, n int, dur float64) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("chain")
	for i := 1; i <= n; i++ {
		b.AddTask(dag.TaskID(i), dur)
		if i > 1 {
			b.AddEdge(dag.TaskID(i-1), dag.TaskID(i))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFullSphereReturnsSphereUnchanged(t *testing.T) {
	pcs := []graph.NodeID{3, 1, 7}
	got := FullSphere{}.EnrollSet(pcs, func(graph.NodeID) float64 { return 1 })
	if len(got) != 3 || &got[0] != &pcs[0] {
		t.Fatalf("FullSphere copied or changed the sphere: %v", got)
	}
	if (FullSphere{}).Name() != "full-sphere" {
		t.Fatalf("name %q", FullSphere{}.Name())
	}
}

func TestKRedundantPicksNearest(t *testing.T) {
	pcs := []graph.NodeID{1, 2, 3, 4, 5}
	dist := func(m graph.NodeID) float64 {
		return map[graph.NodeID]float64{1: 5, 2: 1, 3: 4, 4: 2, 5: 3}[m]
	}
	got := KRedundant{K: 3}.EnrollSet(pcs, dist)
	want := []graph.NodeID{2, 4, 5} // nearest three, ascending site order
	if len(got) != len(want) {
		t.Fatalf("enroll set %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("enroll set %v, want %v", got, want)
		}
	}
	// Degenerate cases keep the full sphere.
	if got := (KRedundant{K: 9}).EnrollSet(pcs, dist); len(got) != len(pcs) {
		t.Fatalf("K above sphere size restricted the set: %v", got)
	}
	if got := (KRedundant{K: 0}).EnrollSet(pcs, dist); len(got) != len(pcs) {
		t.Fatalf("K=0 restricted the set: %v", got)
	}
	if (KRedundant{K: 3}).Name() != "k-redundant-3" {
		t.Fatalf("name %q", (KRedundant{K: 3}).Name())
	}
}

func TestKRedundantDistanceTieBreaksBySite(t *testing.T) {
	pcs := []graph.NodeID{9, 4, 6}
	got := KRedundant{K: 2}.EnrollSet(pcs, func(graph.NodeID) float64 { return 1 })
	if len(got) != 2 || got[0] != 4 || got[1] != 6 {
		t.Fatalf("tie-break set %v, want [4 6] (equal distances fall back to site order)", got)
	}
}

func TestEDFRespectsPrecedenceAndDeadline(t *testing.T) {
	plan := schedule.NewNonPreemptive()
	g := chain(t, 3, 5)
	tk, ok := EDF{}.LocalTest(plan, 0, "j", g, 0, 15.0, 1)
	if !ok {
		t.Fatal("EDF refused a feasible chain (3x5 in window 15)")
	}
	// Placements run back to back in precedence order.
	byTask := map[int]schedule.Reservation{}
	for _, pl := range tk.Placements {
		byTask[pl.Task] = pl
	}
	for i := 2; i <= 3; i++ {
		if byTask[i].Start < byTask[i-1].End-1e-9 {
			t.Fatalf("task %d starts %v before predecessor ends %v", i, byTask[i].Start, byTask[i-1].End)
		}
	}
	if _, ok := (EDF{}).LocalTest(plan, 0, "j", g, 0, 14.9, 1); ok {
		t.Fatal("EDF accepted an infeasible window")
	}
	// Power scales durations: at power 2 the chain fits in half the window.
	if _, ok := (EDF{}).LocalTest(plan, 0, "j", g, 0, 7.6, 2); !ok {
		t.Fatal("EDF ignored computing power")
	}
}

func TestLaxityThresholdRejectsTightFits(t *testing.T) {
	plan := schedule.NewNonPreemptive()
	g := chain(t, 3, 5) // finishes at 15 on an empty plan
	// Window 20: laxity 5 = 25% of the window.
	if _, ok := (LaxityThreshold{Theta: 0.2}).LocalTest(plan, 0, "j", g, 0, 20, 1); !ok {
		t.Fatal("threshold 0.2 rejected a 25%-laxity fit")
	}
	if _, ok := (LaxityThreshold{Theta: 0.3}).LocalTest(plan, 0, "j", g, 0, 20, 1); ok {
		t.Fatal("threshold 0.3 accepted a 25%-laxity fit")
	}
	// Theta 0 degenerates to EDF.
	if _, ok := (LaxityThreshold{}).LocalTest(plan, 0, "j", g, 0, 15, 1); !ok {
		t.Fatal("theta 0 diverged from EDF")
	}
	if (LaxityThreshold{Theta: 0.25}).Name() != "laxity-0.25" {
		t.Fatalf("name %q", (LaxityThreshold{Theta: 0.25}).Name())
	}
}

func TestLegacyKnobWrappers(t *testing.T) {
	if FromLaxityMode(mapper.LaxityUniform).LaxityMode() != mapper.LaxityUniform {
		t.Fatal("uniform wrapper changed the mode")
	}
	if FromLaxityMode(mapper.LaxityBusynessWeighted).LaxityMode() != mapper.LaxityBusynessWeighted {
		t.Fatal("weighted wrapper changed the mode")
	}
	if FromHeuristic(mapper.HeuristicMinMin).Heuristic() != mapper.HeuristicMinMin {
		t.Fatal("heuristic wrapper changed the heuristic")
	}
	if FromHeuristic(mapper.HeuristicCPEFT).Name() != "cp-eft" {
		t.Fatalf("name %q", FromHeuristic(mapper.HeuristicCPEFT).Name())
	}
}
