package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/graph"
	"repro/internal/mapper"
	"repro/internal/routing"
	"repro/internal/schedule"
	"repro/internal/simnet"
)

const noLock = graph.NodeID(-1)

// Site is one network node running the RTDS state machine. A site's methods
// are only invoked from its transport execution context (the DES event loop
// or the site's goroutine on the live transport), so no internal locking is
// needed.
type Site struct {
	id      graph.NodeID
	cluster *Cluster
	plan    schedule.Plan
	power   float64

	// PCS bootstrap (§7)
	rnode      *routing.Node
	table      *routing.Table
	pcs        []graph.NodeID // sphere members, self excluded
	sphereDiam float64        // max known delay to a sphere member
	// distVec is the site's distance vector, precomputed once when the
	// (immutable after bootstrap) table is final. It is shared by reference
	// in every enrollAck this site sends; receivers treat Dists as
	// read-only, so rebuilding/sorting it per enrollment would only burn
	// the protocol's hottest path.
	distVec []distEntry

	// Lock (§8): while locked the site defers all other scheduling activity.
	lockedBy graph.NodeID
	lockJob  string
	deferred []func()
	// lockLease is the member-side backstop on faulty clusters: if the
	// initiator goes silent (crash, lost unlock) the lease releases the
	// lock so the site is never wedged forever. Nil when not armed.
	lockLease simnet.CancelFunc

	// Member-side validation state: job -> logical proc -> admitted ticket.
	memberTickets map[string]map[int]*schedule.Ticket

	// Initiator-side transactions.
	txns map[string]*txn

	// Initiator-side abort retransmission state (faulty clusters only):
	// job -> members whose abort unlock has not been acknowledged yet.
	aborts map[string]*abortRetry

	// Execution state for jobs with tasks on this site.
	exec map[string]*execJob
}

// txn is the initiator's state for one distributed job (§4 steps 2–5).
type txn struct {
	job      *Job
	phase    txnPhase
	expected []graph.NodeID // PCS members the enrollment was sent to
	acks     map[graph.NodeID]enrollAck
	// cancelTimer cancels the current phase's expiry timer: the enrollment
	// window first, then the validation and commit timers that mirror it.
	// Every path that closes a phase cancels and nils it before advancing.
	cancelTimer simnet.CancelFunc

	tm          *mapper.TrialMapping
	acs         []graph.NodeID // enrolled members (self excluded), sorted
	omega       float64        // ACS delay diameter, sizes the phase timers
	endorse     map[graph.NodeID][]int
	awaitAcks   map[graph.NodeID]bool
	assignment  map[int]graph.NodeID // logical proc -> executing site
	commitWait  map[graph.NodeID]bool
	commitFail  bool
	commitsSent bool // commit/release messages have reached the ACS
	selfOK      bool // initiator committed its own share successfully
	valTimeout  bool // validation closed by its timer with acks missing
	comTimeout  bool // commit resolved by its timer with acks missing
}

// abortRetry tracks one aborted job's unacknowledged abort unlocks at the
// initiator (faulty clusters only). Members is kept sorted so retransmission
// order is deterministic.
type abortRetry struct {
	members []graph.NodeID
	tries   int
	cancel  simnet.CancelFunc
}

// maxAbortTries bounds abort retransmission so runs terminate even when a
// member is permanently unreachable. At 10% loss, 8 rounds leave a 1e-8
// chance of an alive member missing every copy.
const maxAbortTries = 8

type txnPhase int

const (
	phaseEnrolling txnPhase = iota
	phaseValidating
	phaseCommitting
	phaseDone
)

// execJob tracks the execution of one job's tasks on this site (§11).
type execJob struct {
	job       *Job
	g         *dag.Graph
	taskSites map[dag.TaskID]graph.NodeID
	// reservations holds this site's slots (non-preemptive) or the current
	// completion estimates (preemptive).
	reservations map[dag.TaskID]schedule.Reservation
	// arrived marks received cross-site results per (predecessor, consumer)
	// edge: with data volumes, each edge's transfer completes separately.
	arrived   map[[2]dag.TaskID]bool
	completed map[dag.TaskID]bool
	timers    []simnet.CancelFunc
	cancelled bool
}

func newSite(id graph.NodeID, c *Cluster) *Site {
	var plan schedule.Plan
	if c.cfg.Preemptive {
		plan = schedule.NewPreemptive()
	} else {
		plan = schedule.NewNonPreemptive()
	}
	s := &Site{
		id:            id,
		cluster:       c,
		plan:          plan,
		power:         c.cfg.power(int(id)),
		lockedBy:      noLock,
		memberTickets: make(map[string]map[int]*schedule.Ticket),
		txns:          make(map[string]*txn),
		aborts:        make(map[string]*abortRetry),
		exec:          make(map[string]*execJob),
	}
	rounds := routing.RoundsForRadius(c.cfg.Radius)
	s.rnode = routing.NewNode(id, c.topo.Neighbors(id), rounds,
		func(to graph.NodeID, p simnet.Payload) {
			if err := c.tr.Send(id, to, p); err != nil {
				panic(err)
			}
		},
		s.adoptTable,
	)
	return s
}

// adoptTable installs a routing table — the PCS bootstrap result, or a
// repaired table after a site death — and rebuilds the derived state: sphere
// membership, sphere delay diameter and the distance vector. Fresh slices
// are allocated every time because the previous ones may still be referenced
// by in-flight enrollAcks (receivers treat Dists as read-only).
func (s *Site) adoptTable(t *routing.Table) {
	s.table = t
	radius := s.cluster.cfg.Radius
	s.pcs = nil
	for _, m := range t.Sphere(radius) {
		if m != s.id {
			s.pcs = append(s.pcs, m)
		}
	}
	s.sphereDiam = t.SphereDelayDiameter(radius)
	s.distVec = nil
	for _, dest := range t.Destinations() {
		if dest != s.id {
			s.distVec = append(s.distVec, distEntry{Dest: dest, Dist: t.Dist(dest)})
		}
	}
}

// pruneDeadSite is the local half of route repair: drop the dead site and
// every route through it, then rebuild the derived state. The DES cluster
// follows up with a RebuildAlive pass that re-learns detours; the live
// cluster runs only this local pruning (each site repairs inside its own
// execution context).
func (s *Site) pruneDeadSite(dead graph.NodeID) {
	removed := s.table.RemoveSite(dead)
	s.adoptTable(s.table)
	s.cluster.event(s.id, "", EvRouteRepair, fmt.Sprintf("site %d dead, %d routes dropped", dead, removed))
}

// handle is the single transport entry point.
func (s *Site) handle(from graph.NodeID, p simnet.Payload) {
	switch m := p.(type) {
	case routing.TableMsg:
		s.rnode.HandleTable(from, m)
	case Routed:
		if m.Dest != s.id {
			s.forward(m)
			return
		}
		s.dispatch(m.Src, m.Inner)
	default:
		panic(fmt.Sprintf("core: site %d got unwrapped payload %q", s.id, p.Kind()))
	}
}

func (s *Site) dispatch(src graph.NodeID, p simnet.Payload) {
	switch m := p.(type) {
	case enrollReq:
		s.onEnroll(src, m)
	case enrollAck:
		s.onEnrollAck(m)
	case validateReq:
		s.onValidate(m)
	case validateAck:
		s.onValidateAck(m)
	case commitMsg:
		s.onCommit(m)
	case commitAck:
		s.onCommitAck(m)
	case unlockMsg:
		s.onUnlock(m)
	case unlockAck:
		s.onUnlockAck(m)
	case resultMsg:
		s.onResult(m)
	case doneMsg:
		s.onDone(m)
	default:
		panic(fmt.Sprintf("core: site %d got unknown payload %q", s.id, p.Kind()))
	}
}

// sendTo routes a payload toward dest along next hops.
func (s *Site) sendTo(dest graph.NodeID, p simnet.Payload) {
	if dest == s.id {
		s.dispatch(s.id, p)
		return
	}
	s.forward(Routed{Src: s.id, Dest: dest, TTL: 4*s.cluster.cfg.Radius + 8, Inner: p})
}

// forward relays a routed payload one hop. An exhausted TTL or a missing
// route drops the message: on a faultless cluster that is a protocol bug and
// is reported as a violation, on a faulty one it is expected degradation
// (routes to dead sites are pruned) and only counted. The phase timeouts
// and lock leases guarantee the protocol recovers from the loss either way.
func (s *Site) forward(m Routed) {
	if m.TTL <= 0 {
		s.cluster.protocolDrop(s.id, fmt.Sprintf(
			"TTL exhausted forwarding %q from %d to %d at %d", m.Inner.Kind(), m.Src, m.Dest, s.id))
		return
	}
	m.TTL--
	nh, ok := s.table.NextHop(m.Dest)
	if !ok {
		s.cluster.protocolDrop(s.id, fmt.Sprintf(
			"site %d has no route to %d for %q", s.id, m.Dest, m.Inner.Kind()))
		return
	}
	if err := s.cluster.tr.Send(s.id, nh, m); err != nil {
		panic(err)
	}
}

func (s *Site) now() float64 { return s.cluster.tr.Now() }

// ---------------------------------------------------------------------------
// Locking (§8)

func (s *Site) locked() bool { return s.lockedBy != noLock }

func (s *Site) lock(owner graph.NodeID, job string) {
	if s.locked() {
		panic(fmt.Sprintf("core: site %d double lock (%d then %d)", s.id, s.lockedBy, owner))
	}
	s.lockedBy = owner
	s.lockJob = job
}

// unlock releases the lock and replays work deferred while locked. A single
// pass over a snapshot avoids livelock when replayed items defer themselves
// again.
func (s *Site) unlock() {
	if s.lockLease != nil {
		s.lockLease()
		s.lockLease = nil
	}
	s.lockedBy = noLock
	s.lockJob = ""
	pending := s.deferred
	s.deferred = nil
	for _, fn := range pending {
		fn()
	}
}

// startLockLease arms the member-side backstop on faulty clusters: if the
// transaction has not released this lock by the time every fault-free
// protocol schedule would have (enrollment window plus the validation and
// commit round trips, with jitter headroom), the initiator is presumed dead
// and the lock is released unilaterally. The lease is deliberately generous
// — firing early only converts one admission into a conservative rejection,
// but it must still be bounded so faulty runs terminate.
func (s *Site) startLockLease(m enrollReq) {
	jitter := 0.0
	if f := s.cluster.cfg.Faults; f != nil {
		jitter = f.MaxJitter
	}
	lease := 6*m.Window + 12*jitter + 4*s.cluster.cfg.EnrollSlack
	job, initiator := m.Job, m.Initiator
	s.lockLease = s.cluster.tr.After(s.id, lease, func() { s.leaseExpired(job, initiator) })
}

// leaseExpired releases a lock whose transaction went silent: the member
// withdraws (drops its cached tickets) and resumes deferred work. Any later
// message of the withdrawn transaction hits the defensive lock-mismatch
// paths and is refused, which at worst turns the job into a rejection.
func (s *Site) leaseExpired(job string, initiator graph.NodeID) {
	s.lockLease = nil
	if !s.locked() || s.lockJob != job || s.lockedBy != initiator {
		return
	}
	s.cluster.event(s.id, job, EvLeaseExpired, fmt.Sprintf("initiator %d silent", initiator))
	delete(s.memberTickets, job)
	s.unlock()
}

func (s *Site) deferWork(fn func()) { s.deferred = append(s.deferred, fn) }

// ---------------------------------------------------------------------------
// Job arrival and the local guarantee test (§5)

// jobArrives is the entry point for a job submitted at this site.
func (s *Site) jobArrives(job *Job) {
	if s.locked() {
		s.cluster.event(s.id, job.ID, EvDeferred, fmt.Sprintf("locked by %d", s.lockedBy))
		s.deferWork(func() { s.jobArrives(job) })
		return
	}
	s.cluster.event(s.id, job.ID, EvArrival, "")
	if tk, ok := s.localTest(job); ok {
		if err := s.plan.Commit(tk); err != nil {
			// The plan refused a ticket admitted an instant ago on an
			// unlocked site. This indicates an inconsistency, but crashing
			// the whole cluster over one job helps nobody: reject the job
			// with a trace and report it as a violation so faultless tests
			// still fail loudly.
			s.cluster.protocolDrop(s.id, fmt.Sprintf(
				"site %d: unlocked local commit of %s failed: %v", s.id, job.ID, err))
			s.cluster.recordDecision(job, Rejected, StageCommit, s.now())
			return
		}
		s.cluster.event(s.id, job.ID, EvLocalOK, "")
		s.cluster.recordDecision(job, AcceptedLocal, "", s.now())
		job.NumProcs = 1
		allLocal := make(map[dag.TaskID]graph.NodeID, job.Graph.Len())
		for _, id := range job.Graph.TaskIDs() {
			allLocal[id] = s.id
		}
		s.beginExecution(job, allLocal, tk)
		return
	}
	if s.cluster.cfg.LocalOnly {
		s.cluster.recordDecision(job, Rejected, StageLocalOnly, s.now())
		return
	}
	if len(s.pcs) == 0 {
		s.cluster.recordDecision(job, Rejected, StageNoSphere, s.now())
		return
	}
	s.startTxn(job)
}

// localTest tries to schedule the entire DAG in the gaps of this site's
// plan before the job deadline, placing tasks in the §12 priority order and
// deriving each release from its predecessors' completions.
func (s *Site) localTest(job *Job) (*schedule.Ticket, bool) {
	sess := s.plan.NewSession(s.now())
	g := job.Graph
	for _, id := range g.PriorityOrder() {
		rel := job.Arrival
		if n := s.now(); n > rel {
			rel = n
		}
		for _, p := range g.Predecessors(id) {
			c, ok := sess.Completion(int(p))
			if !ok {
				panic("core: predecessor not placed before successor")
			}
			if c > rel {
				rel = c
			}
		}
		req := schedule.Request{
			Job:      job.ID,
			Task:     int(id),
			Release:  rel,
			Deadline: job.AbsDeadline,
			Duration: g.Complexity(id) / s.power,
		}
		if _, ok := sess.Place(req); !ok {
			return nil, false
		}
	}
	return sess.Ticket(), true
}

// ---------------------------------------------------------------------------
// Initiator: enrollment (§8)

func (s *Site) startTxn(job *Job) {
	s.cluster.event(s.id, job.ID, EvEnroll, fmt.Sprintf("pcs=%d", len(s.pcs)))
	s.lock(s.id, job.ID)
	t := &txn{
		job:      job,
		phase:    phaseEnrolling,
		expected: s.pcs,
		acks:     make(map[graph.NodeID]enrollAck),
	}
	s.txns[job.ID] = t
	timeout := 2*s.sphereDiam + s.cluster.cfg.EnrollSlack
	for _, m := range s.pcs {
		s.sendTo(m, enrollReq{Job: job.ID, Initiator: s.id, Window: timeout})
	}
	t.cancelTimer = s.cluster.tr.After(s.id, timeout, func() { s.enrollDone(t) })
}

// onEnroll handles an enrollment request at a member (§8): lock for the
// initiator and report surplus, power and the distance vector; defer if
// already locked.
func (s *Site) onEnroll(src graph.NodeID, m enrollReq) {
	if s.locked() {
		s.deferWork(func() { s.onEnroll(src, m) })
		return
	}
	s.lock(m.Initiator, m.Job)
	if s.cluster.faultsOn() {
		s.startLockLease(m)
	}
	s.sendTo(m.Initiator, enrollAck{
		Job:     m.Job,
		Member:  s.id,
		Surplus: s.plan.Surplus(s.now(), s.cluster.cfg.SurplusWindow),
		Power:   s.power,
		Dists:   s.distVec,
	})
}

// onEnrollAck collects members at the initiator. Acks for finished
// transactions (stragglers that were deferred past the enrollment window)
// get an immediate unlock so the member is not stranded.
func (s *Site) onEnrollAck(m enrollAck) {
	t, ok := s.txns[m.Job]
	if !ok || t.phase != phaseEnrolling {
		s.sendTo(m.Member, unlockMsg{Job: m.Job, From: s.id})
		return
	}
	t.acks[m.Member] = m
	if len(t.acks) == len(t.expected) {
		// Cancel before closing the window: if the expiry timer fires at
		// the same instant as this ack (or has already been queued on the
		// live transport), the nil-ed handle plus enrollDone's phase guard
		// keep the window from being closed twice.
		if t.cancelTimer != nil {
			t.cancelTimer()
			t.cancelTimer = nil
		}
		s.enrollDone(t)
	}
}

// enrollDone closes the enrollment window: the ACS is fixed (§8) and the
// mapper runs (§9, §12). It is reachable from both the final enrollAck and
// the expiry timer; the phase guard makes the second entry a no-op whichever
// path wins the race.
func (s *Site) enrollDone(t *txn) {
	if t.phase != phaseEnrolling {
		return
	}
	if t.cancelTimer != nil {
		t.cancelTimer()
		t.cancelTimer = nil
	}
	t.phase = phaseValidating
	job := t.job

	// On a faulty cluster an expected member may be locked for us while its
	// ack was lost in transit: release the stragglers eagerly (their lock
	// lease is the backstop if this unlock is lost too). Faultless clusters
	// skip this — a missing ack there only means the member deferred, and
	// the existing straggler path unlocks it when the late ack arrives.
	if s.cluster.faultsOn() && len(t.acks) < len(t.expected) {
		for _, m := range t.expected {
			if _, ok := t.acks[m]; !ok {
				s.sendTo(m, unlockMsg{Job: job.ID, From: s.id})
			}
		}
	}

	if len(t.acks) == 0 {
		// Nobody enrolled before the window closed (§8): reject without
		// attempting an initiator-only mapping — the local test already
		// failed, and the paper distributes or rejects.
		s.cluster.event(s.id, job.ID, EvACSFixed, "acs=1 (nobody enrolled)")
		s.finishTxn(t, Rejected, StageEmptyACS)
		return
	}

	t.acs = make([]graph.NodeID, 0, len(t.acks))
	for m := range t.acks {
		t.acs = append(t.acs, m)
	}
	sort.Slice(t.acs, func(i, j int) bool { return t.acs[i] < t.acs[j] })
	job.ACSSize = len(t.acs) + 1 // initiator included
	s.cluster.event(s.id, job.ID, EvACSFixed, fmt.Sprintf("acs=%d", job.ACSSize))

	omega := s.acsDiameter(t)
	t.omega = omega
	procs := s.acsProcs(t)
	rEff := s.now() + s.cluster.cfg.ReleasePadFactor*omega
	tm, err := mapper.Build(job.Graph, procs, omega, rEff, job.AbsDeadline, mapper.Options{
		Heuristic:  s.cluster.cfg.Heuristic,
		LaxityMode: s.cluster.cfg.LaxityMode,
		Throughput: s.cluster.cfg.Throughput,
	})
	if err != nil {
		s.finishTxn(t, Rejected, StageMapper)
		return
	}
	t.tm = tm
	job.NumProcs = tm.NumProcs()
	s.cluster.event(s.id, job.ID, EvMapped,
		fmt.Sprintf("procs=%d case=%s M=%.3g M*=%.3g", tm.NumProcs(), tm.Case, tm.Makespan, tm.IdealMakespan))

	// Broadcast M in the ACS (§10); endorse locally in place.
	windows := make([][]mapper.TaskWindow, tm.NumProcs())
	for i := range windows {
		windows[i] = tm.Tasks(job.Graph, i)
	}
	t.endorse = make(map[graph.NodeID][]int)
	t.awaitAcks = make(map[graph.NodeID]bool)
	for _, m := range t.acs {
		t.awaitAcks[m] = true
		s.sendTo(m, validateReq{Job: job.ID, Initiator: s.id, NumProcs: tm.NumProcs(), Windows: windows})
	}
	t.endorse[s.id] = s.endorsable(job.ID, windows)
	if len(t.awaitAcks) == 0 {
		s.finishValidation(t)
		return
	}
	// Validation timeout, mirroring the enrollment window: the round trip
	// inside the ACS is bounded by 2ω, so on a faultless cluster this timer
	// is always cancelled; a lost validateReq or ack turns into a reject
	// instead of a wedged initiator.
	t.cancelTimer = s.cluster.tr.After(s.id, 2*omega+s.cluster.cfg.EnrollSlack,
		func() { s.validateTimeout(t) })
}

// validateTimeout closes the validation phase when members went silent:
// missing answers count as empty endorsements and the coupling runs on what
// arrived, which typically rejects the job and unlocks everyone.
func (s *Site) validateTimeout(t *txn) {
	if t.phase != phaseValidating {
		return
	}
	t.cancelTimer = nil
	if len(t.awaitAcks) == 0 {
		return
	}
	t.valTimeout = true
	s.cluster.event(s.id, t.job.ID, EvPhaseTimeout,
		fmt.Sprintf("validate missing=%d", len(t.awaitAcks)))
	missing := make([]graph.NodeID, 0, len(t.awaitAcks))
	for m := range t.awaitAcks {
		missing = append(missing, m)
	}
	for _, m := range missing {
		delete(t.awaitAcks, m)
		t.endorse[m] = nil
	}
	s.finishValidation(t)
}

// acsDiameter computes ω: the largest pairwise known delay among ACS
// members (initiator included), from the initiator's own table plus the
// enrollees' distance vectors (DESIGN.md §6.3).
func (s *Site) acsDiameter(t *txn) float64 {
	members := append([]graph.NodeID{s.id}, t.acs...)
	inACS := make(map[graph.NodeID]bool, len(members))
	for _, m := range members {
		inACS[m] = true
	}
	var omega float64
	consider := func(d float64) {
		if !math.IsInf(d, 1) && d > omega {
			omega = d
		}
	}
	for _, m := range t.acs {
		consider(s.table.Dist(m))
		for _, e := range t.acks[m].Dists {
			if inACS[e.Dest] {
				consider(e.Dist)
			}
		}
	}
	return omega
}

// acsProcs builds the mapper input: ACS members with surpluses in
// descending order (§9). The initiator contributes its own current surplus;
// with UseLocalKnowledge it measures itself over the job's actual window
// (§13), which its own plan lets it do exactly. Ordering uses the *raw*
// surpluses: the clamp that keeps the mapper's domain sane collapses every
// saturated site onto the same floor, and sorting the clamped values would
// reduce the §9 surplus ranking to a site-ID lottery among exactly the
// sites where the ranking matters most.
func (s *Site) acsProcs(t *txn) []mapper.ProcInfo {
	selfWindow := s.cluster.cfg.SurplusWindow
	if s.cluster.cfg.UseLocalKnowledge {
		if w := t.job.AbsDeadline - s.now(); w > 1e-6 {
			selfWindow = w
		}
	}
	type rankedProc struct {
		info mapper.ProcInfo
		raw  float64
	}
	selfRaw := s.plan.Surplus(s.now(), selfWindow)
	ranked := make([]rankedProc, 0, len(t.acs)+1)
	ranked = append(ranked, rankedProc{
		info: mapper.ProcInfo{Site: s.id, Surplus: clampSurplus(selfRaw), Power: s.power},
		raw:  selfRaw,
	})
	for _, m := range t.acs {
		a := t.acks[m]
		ranked = append(ranked, rankedProc{
			info: mapper.ProcInfo{Site: m, Surplus: clampSurplus(a.Surplus), Power: a.Power},
			raw:  a.Surplus,
		})
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].raw != ranked[j].raw {
			return ranked[i].raw > ranked[j].raw
		}
		return ranked[i].info.Site < ranked[j].info.Site
	})
	procs := make([]mapper.ProcInfo, len(ranked))
	for i, r := range ranked {
		procs[i] = r.info
	}
	return procs
}

// clampSurplus keeps a measured surplus inside the mapper's (0, 1] domain:
// a fully booked site still has an arbitrarily small surplus, not zero.
func clampSurplus(v float64) float64 {
	const floor = 1e-3
	if v < floor {
		return floor
	}
	if v > 1 {
		return 1
	}
	return v
}

// endorsable computes which logical processors this site can endorse (§10)
// and caches the admission tickets for a later commit.
func (s *Site) endorsable(jobID string, windows [][]mapper.TaskWindow) []int {
	tickets := make(map[int]*schedule.Ticket)
	var ok []int
	for i, wins := range windows {
		reqs := make([]schedule.Request, len(wins))
		for k, w := range wins {
			reqs[k] = schedule.Request{
				Job:      jobID,
				Task:     int(w.Task),
				Release:  w.Release,
				Deadline: w.Deadline,
				Duration: w.Complexity / s.power,
			}
		}
		if tk, admitted := s.plan.Admit(s.now(), reqs); admitted {
			tickets[i] = tk
			ok = append(ok, i)
		}
	}
	s.memberTickets[jobID] = tickets
	return ok
}

// onValidate handles the mapping broadcast at a member (§10).
func (s *Site) onValidate(m validateReq) {
	if s.lockedBy != m.Initiator || s.lockJob != m.Job {
		// Defensive: the lock should always match (validation is only sent
		// to enrolled members), but an empty endorsement keeps the initiator
		// from waiting forever if it ever does not.
		s.sendTo(m.Initiator, validateAck{Job: m.Job, Member: s.id})
		return
	}
	end := s.endorsable(m.Job, m.Windows)
	s.sendTo(m.Initiator, validateAck{Job: m.Job, Member: s.id, Endorsable: end})
}

// onValidateAck collects endorsements at the initiator; when all ACS members
// have answered it computes the maximum coupling (§10).
func (s *Site) onValidateAck(m validateAck) {
	t, ok := s.txns[m.Job]
	if !ok || t.phase != phaseValidating || !t.awaitAcks[m.Member] {
		return
	}
	delete(t.awaitAcks, m.Member)
	t.endorse[m.Member] = m.Endorsable
	if len(t.awaitAcks) == 0 {
		if t.cancelTimer != nil {
			t.cancelTimer()
			t.cancelTimer = nil
		}
		s.finishValidation(t)
	}
}
