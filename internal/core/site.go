package core

import (
	"fmt"
	"math"

	"repro/internal/core/membership"
	"repro/internal/core/policy"
	"repro/internal/core/txn"
	"repro/internal/dag"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/routing/hier"
	"repro/internal/schedule"
	"repro/internal/simnet"
)

const noLock = graph.NodeID(-1)

// Site is one network node running the RTDS state machine. A site's methods
// are only invoked from its transport execution context (the DES event loop
// or the site's goroutine on the live transport), so no internal locking is
// needed.
//
// The site is the protocol's I/O half: it owns the transport, the routing
// table, the scheduling plan and the member-side lock. The initiator-side
// phase progression of each distributed job lives in the txn package
// (enroll → validate → commit as guarded transitions), and the decision
// points — enrollment fan-out, local acceptance, laxity dispatching, the
// mapper heuristic — are delegated to the policy layer resolved at
// construction.
type Site struct {
	id      graph.NodeID
	cluster *Cluster
	plan    schedule.Plan
	power   float64

	// Policy layer (see internal/core/policy); resolved once from the
	// cluster config, defaults replay the paper's hard-wired behavior.
	spherePol   policy.Sphere
	acceptPol   policy.Acceptance
	dispatchPol policy.Dispatch
	mapperPol   policy.Mapper

	// Membership layer: heartbeats, suspicion, epoch-tagged route repair
	// and the join handshake. Nil when the cluster runs the faultless
	// paper model (membership disabled). On hierarchical clusters the
	// manager is scoped to the region: it heartbeats intra-region neighbors
	// only and repairs the intra-region half of the table.
	member *membership.Manager
	// Cross-region liveness, landmarks only: the latest digest received
	// from each adjacent region's landmark, and the last digest this
	// landmark shared (so repeats are suppressed).
	remoteRegions    map[int][]membership.Entry
	lastRegionDigest []membership.Entry

	// PCS bootstrap (§7). Exactly one of rnode (flat clusters) and boot
	// (hierarchical clusters) is non-nil; table is whichever router the
	// bootstrap produced — the flat *routing.Table, or the two-level
	// *hier.Table also held in hierTable for the hierarchy-specific calls
	// (escalation landmarks, intra-table repair).
	rnode      *routing.Node
	boot       *hier.Bootstrap
	table      routing.Router
	hierTable  *hier.Table
	pcs        []graph.NodeID // sphere members, self excluded
	sphereDiam float64        // max known delay to a sphere member
	// enrollSet / enrollDiam cache the sphere policy's fan-out choice and
	// its delay diameter. The sphere and its distances are immutable
	// between table adoptions, so paying the policy's selection (a sort,
	// for KRedundant) once per adoptTable instead of once per enrollment
	// keeps startTxn off the protocol's hottest path.
	enrollSet  []graph.NodeID
	enrollDiam float64
	// distVec is the site's distance vector, precomputed once when the
	// (immutable after bootstrap) table is final. It is shared by reference
	// in every EnrollAck this site sends; receivers treat Dists as
	// read-only, so rebuilding/sorting it per enrollment would only burn
	// the protocol's hottest path.
	distVec []DistEntry

	// Lock (§8): while locked the site defers all other scheduling activity.
	lockedBy graph.NodeID
	lockJob  string
	deferred []func()
	// lockLease is the member-side backstop on faulty clusters: if the
	// initiator goes silent (crash, lost unlock) the lease releases the
	// lock so the site is never wedged forever. Nil when not armed.
	lockLease simnet.CancelFunc

	// Member-side validation state: job -> logical proc -> admitted ticket.
	memberTickets map[string]map[int]*schedule.Ticket

	// Initiator-side transactions (the txn state machines plus their job
	// records).
	txns map[string]*activeTxn

	// Initiator-side abort retransmission state (faulty clusters only):
	// job -> members whose abort unlock has not been acknowledged yet.
	aborts map[string]*txn.AbortRetry

	// Execution state for jobs with tasks on this site.
	exec map[string]*execJob
}

// activeTxn pairs one txn state machine with the job record it decides: the
// machine tracks identifiers and phase bookkeeping only, the protocol needs
// the record for deadlines, graphs and the final decision.
type activeTxn struct {
	*txn.Txn
	job *Job
}

func newSite(id graph.NodeID, c *Cluster) *Site {
	var plan schedule.Plan
	if c.cfg.Preemptive {
		plan = schedule.NewPreemptive()
	} else {
		plan = schedule.NewNonPreemptive()
	}
	s := &Site{
		id:            id,
		cluster:       c,
		plan:          plan,
		power:         c.cfg.power(int(id)),
		spherePol:     c.cfg.spherePolicy(),
		acceptPol:     c.cfg.acceptancePolicy(),
		dispatchPol:   c.cfg.dispatchPolicy(),
		mapperPol:     c.cfg.mapperPolicy(),
		lockedBy:      noLock,
		memberTickets: make(map[string]map[int]*schedule.Ticket),
		txns:          make(map[string]*activeTxn),
		aborts:        make(map[string]*txn.AbortRetry),
		exec:          make(map[string]*execJob),
	}
	directSend := func(to graph.NodeID, p simnet.Payload) {
		if err := c.tr.Send(id, to, p); err != nil {
			panic(err)
		}
	}
	if c.lay != nil {
		s.boot = hier.NewBootstrap(id, c.topo.Neighbors(id), c.lay, directSend)
	} else {
		rounds := routing.RoundsForRadius(c.cfg.Radius)
		s.rnode = routing.NewNode(id, c.topo.Neighbors(id), rounds, directSend, s.adoptTable)
	}
	if c.mcfg.Enabled {
		// Region-scoped membership on hierarchical clusters: heartbeats,
		// suspicion and repair floods stay inside the region (the landmark
		// summarizes the region's liveness to its peers, see
		// shareRegionDigest); repairs rebuild the intra-region table only,
		// the landmark vector survives untouched.
		nbrs := c.topo.Neighbors(id)
		adopt := s.adoptTable
		current := func() *routing.Table {
			if t, ok := s.table.(*routing.Table); ok {
				return t
			}
			return nil
		}
		if c.lay != nil {
			var intra []graph.Edge
			for _, e := range nbrs {
				if c.lay.SameRegion(id, e.To) {
					intra = append(intra, e)
				}
			}
			nbrs = intra
			adopt = s.adoptIntra
			current = func() *routing.Table {
				if s.hierTable == nil {
					return nil
				}
				return s.hierTable.Intra()
			}
		}
		s.member = membership.New(id, nbrs, c.mcfg, membership.Hooks{
			Now:     s.now,
			After:   s.after,
			Send:    directSend,
			Adopt:   adopt,
			Current: current,
			Event:   func(kind, detail string) { c.event(s.id, "", EventKind(kind), detail) },
		})
	}
	return s
}

// adoptTable installs a flat routing table — the PCS bootstrap result, or a
// repaired table after a site death.
func (s *Site) adoptTable(t *routing.Table) { s.adoptRouter(t) }

// adoptHier installs the finished two-level table of the hierarchical
// bootstrap.
func (s *Site) adoptHier(t *hier.Table) {
	s.hierTable = t
	s.adoptRouter(t)
}

// adoptIntra installs a repaired intra-region table into the hierarchical
// table (membership route repair under hierarchy): the landmark vector is
// kept — nothing outside the region changed — and the derived state is
// rebuilt from the composite router. Landmarks then share the region's
// liveness digest with their adjacent peers.
func (s *Site) adoptIntra(t *routing.Table) {
	s.hierTable.SetIntra(t)
	s.adoptRouter(s.hierTable)
	s.shareRegionDigest()
}

// adoptRouter rebuilds the routing-derived state: sphere membership, sphere
// delay diameter and the distance vector. Fresh slices are allocated every
// time because the previous ones may still be referenced by in-flight
// enrollAcks (receivers treat Dists as read-only).
func (s *Site) adoptRouter(t routing.Router) {
	s.table = t
	radius := s.cluster.cfg.Radius
	s.pcs = nil
	for _, m := range t.Sphere(radius) {
		if m != s.id {
			s.pcs = append(s.pcs, m)
		}
	}
	s.sphereDiam = t.SphereDelayDiameter(radius)
	s.distVec = nil
	for _, dest := range t.Destinations() {
		if dest != s.id {
			s.distVec = append(s.distVec, DistEntry{Dest: dest, Dist: t.Dist(dest)})
		}
	}
	// Resolve the sphere policy's enrollment fan-out once per table. The
	// enrollment round trip is bounded by the precomputed sphere diameter
	// when the whole sphere is enrolled (the paper's case), by the chosen
	// set's own diameter when the policy restricted the fan-out.
	s.enrollSet = s.spherePol.EnrollSet(s.pcs, t.Dist)
	s.enrollDiam = s.sphereDiam
	if len(s.enrollSet) != len(s.pcs) {
		s.enrollDiam = 0
		for _, m := range s.enrollSet {
			if d := t.Dist(m); !math.IsInf(d, 1) && d > s.enrollDiam {
				s.enrollDiam = d
			}
		}
	}
}

// handle is the single transport entry point. Routing-table messages are
// offered to the membership layer first: epoch-tagged repair floods belong
// to it, the epoch-0 bootstrap to the §7 state machine. Membership beacons
// and notices travel unwrapped (they are strictly neighbor-to-neighbor,
// like bootstrap tables).
func (s *Site) handle(from graph.NodeID, p simnet.Payload) {
	switch m := p.(type) {
	case routing.TableMsg:
		if s.member != nil && s.member.HandleTable(from, m) {
			return
		}
		if s.boot != nil {
			s.boot.HandleTable(from, m)
			return
		}
		s.rnode.HandleTable(from, m)
	case hier.LandmarkAd:
		if s.boot == nil {
			panic(fmt.Sprintf("core: site %d got landmark ad on a flat cluster", s.id))
		}
		s.boot.HandleAd(from, m)
	case membership.Heartbeat:
		if s.member != nil {
			s.member.HandleHeartbeat(from, m)
		}
	case membership.DeadNotice:
		if s.member != nil {
			s.member.HandleDead(from, m)
		}
	case membership.AliveNotice:
		if s.member != nil {
			s.member.HandleAlive(from, m)
		}
	case membership.JoinReq:
		if s.member != nil {
			s.member.HandleJoinReq(from, m)
		}
	case membership.JoinAck:
		if s.member != nil {
			s.member.HandleJoinAck(from, m)
		}
	case membership.TableChunk:
		if s.member != nil {
			s.member.HandleTableChunk(from, m)
		}
	case Routed:
		if m.Dest != s.id {
			s.forward(m)
			return
		}
		s.dispatch(m.Src, m.Inner)
	default:
		panic(fmt.Sprintf("core: site %d got unwrapped payload %q", s.id, p.Kind()))
	}
}

func (s *Site) dispatch(src graph.NodeID, p simnet.Payload) {
	switch m := p.(type) {
	case EnrollReq:
		s.onEnroll(src, m)
	case EnrollAck:
		s.onEnrollAck(m)
	case ValidateReq:
		s.onValidate(m)
	case ValidateAck:
		s.onValidateAck(m)
	case CommitMsg:
		s.onCommit(m)
	case CommitAck:
		s.onCommitAck(m)
	case UnlockMsg:
		s.onUnlock(m)
	case UnlockAck:
		s.onUnlockAck(m)
	case ResultMsg:
		s.onResult(m)
	case DoneMsg:
		s.onDone(m)
	case membership.RegionDigest:
		s.onRegionDigest(m)
	default:
		panic(fmt.Sprintf("core: site %d got unknown payload %q", s.id, p.Kind()))
	}
}

// shareRegionDigest forwards this landmark's membership digest to the
// adjacent regions' landmarks — the cross-region liveness summary of the
// hierarchy. Non-landmarks and unchanged digests send nothing, so steady
// state is silent and region-local churn costs one routed message per
// adjacent region.
func (s *Site) shareRegionDigest() {
	if s.hierTable == nil || s.member == nil {
		return
	}
	lay := s.hierTable.Layout()
	if lay.Landmarks[lay.Region(s.id)] != s.id {
		return
	}
	d := s.member.Digest()
	if len(d) == len(s.lastRegionDigest) {
		same := true
		for i := range d {
			if d[i] != s.lastRegionDigest[i] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	s.lastRegionDigest = d
	msg := membership.RegionDigest{Region: lay.Region(s.id), Digest: d}
	for _, lm := range s.hierTable.EscalationLandmarks() {
		s.sendTo(lm, msg)
	}
}

// onRegionDigest records an adjacent region's liveness summary at this
// landmark. The digest is observational — it feeds the membership snapshot
// and the experiments' liveness accounting, not the routing layer: the
// landmark vector is a bootstrap artifact and intra-region repair is the
// region's own business.
func (s *Site) onRegionDigest(m membership.RegionDigest) {
	if s.remoteRegions == nil {
		s.remoteRegions = make(map[int][]membership.Entry)
	}
	s.remoteRegions[m.Region] = m.Digest
}

// sendTo routes a payload toward dest along next hops.
func (s *Site) sendTo(dest graph.NodeID, p simnet.Payload) {
	if dest == s.id {
		s.dispatch(s.id, p)
		return
	}
	s.forward(Routed{Src: s.id, Dest: dest, TTL: s.cluster.routedTTL(), Inner: p})
}

// forward relays a routed payload one hop. An exhausted TTL or a missing
// route drops the message: on a faultless cluster that is a protocol bug and
// is reported as a violation, on a faulty one it is expected degradation
// (routes to dead sites are pruned) and only counted. The phase timeouts
// and lock leases guarantee the protocol recovers from the loss either way.
func (s *Site) forward(m Routed) {
	if m.TTL <= 0 {
		s.cluster.protocolDrop(s.id, fmt.Sprintf(
			"TTL exhausted forwarding %q from %d to %d at %d", m.Inner.Kind(), m.Src, m.Dest, s.id))
		return
	}
	m.TTL--
	nh, ok := s.table.NextHop(m.Dest)
	if !ok {
		s.cluster.protocolDrop(s.id, fmt.Sprintf(
			"site %d has no route to %d for %q", s.id, m.Dest, m.Inner.Kind()))
		return
	}
	if err := s.cluster.tr.Send(s.id, nh, m); err != nil {
		panic(err)
	}
}

func (s *Site) now() float64 { return s.cluster.nowFor(s.id) }

// after schedules fn in this site's execution context after a virtual-time
// delay — the clock every phase timer, lease and execution timer runs on.
func (s *Site) after(d float64, fn func()) simnet.CancelFunc {
	return s.cluster.tr.After(s.id, d, fn)
}

// ---------------------------------------------------------------------------
// Locking (§8)

func (s *Site) locked() bool { return s.lockedBy != noLock }

func (s *Site) lock(owner graph.NodeID, job string) {
	if s.locked() {
		panic(fmt.Sprintf("core: site %d double lock (%d then %d)", s.id, s.lockedBy, owner))
	}
	s.lockedBy = owner
	s.lockJob = job
}

// unlock releases the lock and replays work deferred while locked. A single
// pass over a snapshot avoids livelock when replayed items defer themselves
// again.
func (s *Site) unlock() {
	if s.lockLease != nil {
		s.lockLease()
		s.lockLease = nil
	}
	s.lockedBy = noLock
	s.lockJob = ""
	pending := s.deferred
	s.deferred = nil
	for _, fn := range pending {
		fn()
	}
}

func (s *Site) deferWork(fn func()) { s.deferred = append(s.deferred, fn) }

// ---------------------------------------------------------------------------
// Job arrival and the local guarantee test (§5)

// jobArrives is the entry point for a job submitted at this site.
func (s *Site) jobArrives(job *Job) {
	if s.locked() {
		s.cluster.event(s.id, job.ID, EvDeferred, fmt.Sprintf("locked by %d", s.lockedBy))
		s.deferWork(func() { s.jobArrives(job) })
		return
	}
	s.cluster.event(s.id, job.ID, EvArrival, "")
	if tk, ok := s.acceptPol.LocalTest(s.plan, s.now(), job.ID, job.Graph, job.Arrival, job.AbsDeadline, s.power); ok {
		if err := s.plan.Commit(tk); err != nil {
			// The plan refused a ticket admitted an instant ago on an
			// unlocked site. This indicates an inconsistency, but crashing
			// the whole cluster over one job helps nobody: reject the job
			// with a trace and report it as a violation so faultless tests
			// still fail loudly.
			s.cluster.protocolDrop(s.id, fmt.Sprintf(
				"site %d: unlocked local commit of %s failed: %v", s.id, job.ID, err))
			s.cluster.recordDecision(job, Rejected, StageCommit, s.now())
			return
		}
		s.cluster.event(s.id, job.ID, EvLocalOK, "")
		s.cluster.recordDecision(job, AcceptedLocal, "", s.now())
		s.cluster.noteJobProcs(job, 1)
		allLocal := make(map[dag.TaskID]graph.NodeID, job.Graph.Len())
		for _, id := range job.Graph.TaskIDs() {
			allLocal[id] = s.id
		}
		s.beginExecution(job, allLocal, tk)
		return
	}
	if s.cluster.cfg.LocalOnly {
		s.cluster.recordDecision(job, Rejected, StageLocalOnly, s.now())
		return
	}
	if s.member != nil && s.member.Repairing() {
		// A route repair is still settling: enrolling against a
		// half-repaired table would fan out along routes that are about to
		// change. Re-run the arrival once the flood quiesces — by then the
		// sphere may have shrunk (a death) or grown back (a join), and the
		// local test gets a fresh chance too.
		s.cluster.event(s.id, job.ID, EvDeferred, "route repair settling")
		s.member.WhenSettled(func() { s.jobArrives(job) })
		return
	}
	if len(s.pcs) == 0 {
		// A hierarchical site whose region-local sphere is empty (a tiny
		// region) still has the escalation path: the transaction starts
		// with an empty fan-out, its window closes immediately and the
		// underflow escalates to the adjacent regions' landmarks.
		if s.hierTable == nil || len(s.hierTable.EscalationLandmarks()) == 0 {
			s.cluster.recordDecision(job, Rejected, StageNoSphere, s.now())
			return
		}
	}
	s.startTxn(job)
}
