package txn

import (
	"repro/internal/graph"
	"repro/internal/simnet"
)

// MaxAbortTries bounds abort retransmission so runs terminate even when a
// member is permanently unreachable. At 10% loss, 8 rounds leave a 1e-8
// chance of an alive member missing every copy.
const MaxAbortTries = 8

// AbortRetry tracks one aborted job's unacknowledged abort unlocks at the
// initiator (faulty clusters only): the abort edge of the state machine
// outlives the transaction itself, retransmitting until every executing
// member acknowledged or the retry budget is spent. Members is kept in the
// order the abort was issued, so retransmission order is deterministic.
type AbortRetry struct {
	Members []graph.NodeID
	Tries   int
	timer   simnet.CancelFunc
}

// NewAbortRetry starts tracking the executing members that must acknowledge
// an abort unlock.
func NewAbortRetry(members []graph.NodeID) *AbortRetry {
	return &AbortRetry{Members: members}
}

// Arm installs the retransmission timer handle.
func (a *AbortRetry) Arm(c simnet.CancelFunc) { a.timer = c }

// TimerFired clears the timer handle from inside the expiry callback.
func (a *AbortRetry) TimerFired() { a.timer = nil }

// Stop cancels a pending retransmission timer.
func (a *AbortRetry) Stop() {
	if a.timer != nil {
		a.timer()
		a.timer = nil
	}
}

// NextTry consumes one retry; it returns false when the budget is spent and
// the initiator should give up (the members' lock leases are the backstop).
func (a *AbortRetry) NextTry() bool {
	a.Tries++
	return a.Tries <= MaxAbortTries
}

// Ack removes one member from the retransmission set and reports whether
// every member has now acknowledged.
func (a *AbortRetry) Ack(m graph.NodeID) (done bool) {
	for i, member := range a.Members {
		if member == m {
			a.Members = append(a.Members[:i], a.Members[i+1:]...)
			break
		}
	}
	return len(a.Members) == 0
}
