// Package txn holds the initiator-side state machine of one distributed
// scheduling transaction: the enroll → validate → commit progression of
// paper §8–§11, with every phase's timer handle, acknowledgement
// bookkeeping and abort/retransmission state in one place.
//
// The package is deliberately free of protocol I/O: it never sends a
// message, never reads a routing table and never touches a scheduling plan.
// A Txn is pure bookkeeping with guarded transitions — the Site in
// internal/core drives it, translating each transition's outcome into the
// sends, mapper invocations and plan commits of the protocol. This split is
// what keeps the state graph auditable:
//
//	Enrolling ──(all acks | window timer)──▶ Validating
//	Validating ──(all endorsements | phase timer)──▶ Committing
//	Committing ──(all commit acks | phase timer)──▶ Done
//	    any ──(reject: empty ACS, mapper, matching, commit failure)──▶ Done
//
// Every transition is guarded by the current phase, so the races inherent
// to a timer-driven protocol (an expiry firing at the same instant as the
// final ack, a straggler ack after the window closed) collapse into no-ops
// instead of double transitions.
package txn

import (
	"fmt"

	"repro/internal/determinism"
	"repro/internal/graph"
	"repro/internal/mapper"
	"repro/internal/simnet"
)

// Phase names one state of the transaction state machine.
type Phase int

const (
	// Enrolling: enrollment requests are out; the window timer is armed.
	Enrolling Phase = iota
	// Validating: the ACS is fixed and the trial mapping is being endorsed.
	Validating
	// Committing: the coupling permutation is dispatched; executing members
	// confirm or refuse their insertions.
	Committing
	// Done: the transaction reached a decision (accept or reject).
	Done
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case Enrolling:
		return "enrolling"
	case Validating:
		return "validating"
	case Committing:
		return "committing"
	case Done:
		return "done"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// DistEntry is one line of a member's distance vector, reported at
// enrollment so the initiator can compute the exact ACS delay diameter.
type DistEntry struct {
	Dest graph.NodeID
	Dist float64
}

// Enrollment is one member's enrollment report: its surplus, computing
// power and distance vector.
type Enrollment struct {
	Surplus float64
	Power   float64
	Dists   []DistEntry
}

// Txn is the initiator-side record of one distributed job. Fields are
// grouped by the phase that populates them; collections that decide
// transition completion (acks, awaited endorsements, awaited commits) are
// unexported so every mutation goes through a guarded method.
type Txn struct {
	// Job is the transaction's job identifier.
	Job string

	phase Phase
	// timer cancels the current phase's expiry timer: the enrollment window
	// first, then the validation and commit timers that mirror it. Every
	// path that closes a phase cancels and nils it before advancing.
	timer simnet.CancelFunc

	// Enrollment (§8).
	Expected []graph.NodeID // members the enrollment was sent to
	acks     map[graph.NodeID]Enrollment
	// Escalated records that the enrollment was reopened once for a second
	// wave (the hierarchical ACS-underflow escalation); a transaction
	// escalates at most once.
	Escalated bool

	// Validation (§9–§10).
	ACS     []graph.NodeID // enrolled members (self excluded), sorted
	Omega   float64        // ACS delay diameter, sizes the phase timers
	TM      *mapper.TrialMapping
	Endorse map[graph.NodeID][]int
	await   map[graph.NodeID]bool
	// ValTimedOut records that validation closed by its timer with
	// endorsements missing.
	ValTimedOut bool

	// Commit (§11).
	Assignment map[int]graph.NodeID // logical proc -> executing site
	commitWait map[graph.NodeID]bool
	// CommitFail marks the transaction for an abort-everywhere resolution.
	CommitFail bool
	// CommitsSent records that commit/release messages reached the ACS, so
	// a later rejection must abort rather than merely unlock.
	CommitsSent bool
	// SelfOK records whether the initiator committed its own share.
	SelfOK bool
	// ComTimedOut records that the commit phase was resolved by its timer.
	ComTimedOut bool
}

// New starts a transaction in the Enrolling phase, expecting an enrollment
// answer from each of the given members.
func New(job string, expected []graph.NodeID) *Txn {
	return &Txn{
		Job:      job,
		phase:    Enrolling,
		Expected: expected,
		acks:     make(map[graph.NodeID]Enrollment),
	}
}

// Phase reports the current phase.
func (t *Txn) Phase() Phase { return t.phase }

// SetTimer installs the current phase's expiry timer handle, replacing any
// previous handle without cancelling it (the caller cancels via StopTimer).
func (t *Txn) SetTimer(c simnet.CancelFunc) { t.timer = c }

// StopTimer cancels and clears the armed phase timer. Cancelling before
// closing a phase is what makes the final-ack/expiry tie race safe: the
// nil-ed handle plus the phase guards keep a window from closing twice.
func (t *Txn) StopTimer() {
	if t.timer != nil {
		t.timer()
		t.timer = nil
	}
}

// TimerFired clears the timer handle without cancelling, for use inside
// the expiry callback itself (the transport already consumed the timer).
func (t *Txn) TimerFired() { t.timer = nil }

// ---------------------------------------------------------------------------
// Enrolling

// RecordEnrollment stores one member's enrollment and reports whether every
// expected member has now answered (the window can close early).
func (t *Txn) RecordEnrollment(m graph.NodeID, e Enrollment) (complete bool) {
	t.acks[m] = e
	return len(t.acks) == len(t.Expected)
}

// Enrollments reports how many members enrolled.
func (t *Txn) Enrollments() int { return len(t.acks) }

// Enrollment returns a member's stored enrollment report.
func (t *Txn) Enrollment(m graph.NodeID) Enrollment { return t.acks[m] }

// MissingEnrollments lists the expected members that never enrolled, in
// Expected order (deterministic for retransmission and unlocking).
func (t *Txn) MissingEnrollments() []graph.NodeID {
	var missing []graph.NodeID
	for _, m := range t.Expected {
		if _, ok := t.acks[m]; !ok {
			missing = append(missing, m)
		}
	}
	return missing
}

// CloseEnrollment transitions Enrolling → Validating. It is reachable from
// both the final enrollment ack and the window timer; the phase guard makes
// the second entry a no-op whichever path wins the race. Returns false when
// the window was already closed.
func (t *Txn) CloseEnrollment() bool {
	if t.phase != Enrolling {
		return false
	}
	t.StopTimer()
	t.phase = Validating
	return true
}

// FixACS freezes the Accepted Computing Sphere: the enrolled members in
// ascending site order (§8). Call once, after CloseEnrollment.
func (t *Txn) FixACS() []graph.NodeID {
	t.ACS = determinism.SortedKeys(t.acks)
	return t.ACS
}

// Reopen returns the transaction from Validating to Enrolling for one
// second enrollment wave over additional members — the hierarchical
// ACS-underflow escalation: when the region-local window closed empty, the
// initiator widens the fan-out to the adjacent regions' landmarks instead
// of rejecting outright. Call only right after a successful CloseEnrollment
// and at most once (Escalated guards the second attempt); the caller sends
// the new enrollment requests and re-arms the window timer.
func (t *Txn) Reopen(extra []graph.NodeID) {
	if t.phase != Validating {
		panic(fmt.Sprintf("txn: Reopen in phase %v", t.phase))
	}
	if t.Escalated {
		panic("txn: transaction escalated twice")
	}
	t.phase = Enrolling
	t.Escalated = true
	t.Expected = append(t.Expected, extra...)
}

// ---------------------------------------------------------------------------
// Validating

// BeginValidation initializes the endorsement bookkeeping.
func (t *Txn) BeginValidation() {
	t.Endorse = make(map[graph.NodeID][]int)
	t.await = make(map[graph.NodeID]bool)
}

// ExpectEndorsement marks one ACS member as owing a validation answer.
func (t *Txn) ExpectEndorsement(m graph.NodeID) { t.await[m] = true }

// SetEndorsement records an endorsement that needs no acknowledgement (the
// initiator's own, computed in place).
func (t *Txn) SetEndorsement(m graph.NodeID, procs []int) { t.Endorse[m] = procs }

// RecordEndorsement stores one member's validation answer. counted is false
// for answers that are stale (wrong phase) or unexpected; complete reports
// that every awaited member has now answered.
func (t *Txn) RecordEndorsement(m graph.NodeID, procs []int) (counted, complete bool) {
	if t.phase != Validating || !t.await[m] {
		return false, false
	}
	delete(t.await, m)
	t.Endorse[m] = procs
	return true, len(t.await) == 0
}

// Awaiting reports how many validation answers are still outstanding.
func (t *Txn) Awaiting() int { return len(t.await) }

// TimeoutValidation closes the validation phase from its expiry timer:
// members that never answered are given empty endorsements so the coupling
// runs on what arrived. Returns the number of silent members and false when
// the timeout lost the race against the final ack (nothing to do).
func (t *Txn) TimeoutValidation() (missing int, fired bool) {
	if t.phase != Validating {
		return 0, false
	}
	t.TimerFired()
	if len(t.await) == 0 {
		return 0, false
	}
	t.ValTimedOut = true
	missing = len(t.await)
	for m := range t.await {
		t.Endorse[m] = nil
	}
	t.await = make(map[graph.NodeID]bool)
	return missing, true
}

// ---------------------------------------------------------------------------
// Committing

// BeginCommit transitions Validating → Committing and initializes the
// commit-acknowledgement bookkeeping.
func (t *Txn) BeginCommit() {
	t.phase = Committing
	t.commitWait = make(map[graph.NodeID]bool)
}

// ExpectCommitAck marks one executing member as owing a commit answer.
func (t *Txn) ExpectCommitAck(m graph.NodeID) { t.commitWait[m] = true }

// CommitsOutstanding reports how many commit answers are still awaited.
func (t *Txn) CommitsOutstanding() int { return len(t.commitWait) }

// RecordCommitAck stores one executing member's commit confirmation or
// refusal. counted is false for stale or unexpected answers; complete
// reports that every executing member has now answered.
func (t *Txn) RecordCommitAck(m graph.NodeID, ok bool) (counted, complete bool) {
	if t.phase != Committing || !t.commitWait[m] {
		return false, false
	}
	delete(t.commitWait, m)
	if !ok {
		t.CommitFail = true
	}
	return true, len(t.commitWait) == 0
}

// TimeoutCommit resolves the commit phase from its expiry timer. The silent
// members may or may not have committed their shares, so the transaction is
// marked failed (abort everywhere is the only safe resolution). Returns the
// number of silent members and false when the timer lost the race.
func (t *Txn) TimeoutCommit() (missing int, fired bool) {
	if t.phase != Committing {
		return 0, false
	}
	t.TimerFired()
	if len(t.commitWait) == 0 {
		return 0, false
	}
	t.ComTimedOut = true
	t.CommitFail = true
	missing = len(t.commitWait)
	t.commitWait = make(map[graph.NodeID]bool)
	return missing, true
}

// ---------------------------------------------------------------------------
// Done

// Finish transitions any live phase → Done, stopping the armed timer.
// Returns false when the transaction already finished (duplicate decision
// paths collapse into one).
func (t *Txn) Finish() bool {
	if t.phase == Done {
		return false
	}
	t.phase = Done
	t.StopTimer()
	return true
}
