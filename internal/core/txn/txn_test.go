package txn

import (
	"testing"

	"repro/internal/graph"
)

func members(ids ...int) []graph.NodeID {
	out := make([]graph.NodeID, len(ids))
	for i, id := range ids {
		out[i] = graph.NodeID(id)
	}
	return out
}

func TestPhaseProgression(t *testing.T) {
	tx := New("j1", members(1, 2))
	if tx.Phase() != Enrolling {
		t.Fatalf("new txn in phase %v", tx.Phase())
	}
	if tx.RecordEnrollment(1, Enrollment{Surplus: 0.5}) {
		t.Fatal("complete after 1/2 enrollments")
	}
	if !tx.RecordEnrollment(2, Enrollment{Surplus: 0.7}) {
		t.Fatal("not complete after 2/2 enrollments")
	}
	if !tx.CloseEnrollment() {
		t.Fatal("first CloseEnrollment refused")
	}
	if tx.CloseEnrollment() {
		t.Fatal("second CloseEnrollment accepted (double transition)")
	}
	if tx.Phase() != Validating {
		t.Fatalf("phase %v after CloseEnrollment", tx.Phase())
	}
	acs := tx.FixACS()
	if len(acs) != 2 || acs[0] != 1 || acs[1] != 2 {
		t.Fatalf("ACS %v, want [1 2]", acs)
	}
	if e := tx.Enrollment(2); e.Surplus != 0.7 {
		t.Fatalf("enrollment 2 surplus %v", e.Surplus)
	}

	tx.BeginValidation()
	tx.ExpectEndorsement(1)
	tx.ExpectEndorsement(2)
	tx.SetEndorsement(0, []int{0})
	if counted, _ := tx.RecordEndorsement(3, nil); counted {
		t.Fatal("unexpected member's endorsement counted")
	}
	if counted, complete := tx.RecordEndorsement(1, []int{1}); !counted || complete {
		t.Fatalf("endorsement 1: counted=%v complete=%v", counted, complete)
	}
	if counted, complete := tx.RecordEndorsement(2, []int{0, 1}); !counted || !complete {
		t.Fatalf("endorsement 2: counted=%v complete=%v", counted, complete)
	}
	if counted, _ := tx.RecordEndorsement(2, nil); counted {
		t.Fatal("duplicate endorsement counted")
	}

	tx.BeginCommit()
	if tx.Phase() != Committing {
		t.Fatalf("phase %v after BeginCommit", tx.Phase())
	}
	tx.ExpectCommitAck(1)
	tx.ExpectCommitAck(2)
	if counted, complete := tx.RecordCommitAck(1, true); !counted || complete {
		t.Fatalf("commit ack 1: counted=%v complete=%v", counted, complete)
	}
	if counted, complete := tx.RecordCommitAck(2, false); !counted || !complete {
		t.Fatalf("commit ack 2: counted=%v complete=%v", counted, complete)
	}
	if !tx.CommitFail {
		t.Fatal("refused commit did not mark the transaction failed")
	}
	if !tx.Finish() {
		t.Fatal("first Finish refused")
	}
	if tx.Finish() {
		t.Fatal("second Finish accepted (double decision)")
	}
	if tx.Phase() != Done {
		t.Fatalf("phase %v after Finish", tx.Phase())
	}
}

func TestMissingEnrollmentsInExpectedOrder(t *testing.T) {
	tx := New("j", members(5, 3, 8, 1))
	tx.RecordEnrollment(3, Enrollment{})
	got := tx.MissingEnrollments()
	want := members(5, 8, 1)
	if len(got) != len(want) {
		t.Fatalf("missing %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("missing %v, want %v (Expected order)", got, want)
		}
	}
}

func TestTimerLifecycle(t *testing.T) {
	tx := New("j", members(1))
	cancelled := 0
	tx.SetTimer(func() bool { cancelled++; return true })
	tx.StopTimer()
	tx.StopTimer() // idempotent: handle is nil-ed
	if cancelled != 1 {
		t.Fatalf("timer cancelled %d times, want 1", cancelled)
	}
	// CloseEnrollment stops an armed window timer exactly once.
	tx.SetTimer(func() bool { cancelled++; return true })
	tx.CloseEnrollment()
	if cancelled != 2 {
		t.Fatalf("CloseEnrollment left the window timer armed (%d cancels)", cancelled)
	}
	// Finish stops the current phase timer.
	tx.SetTimer(func() bool { cancelled++; return true })
	tx.Finish()
	if cancelled != 3 {
		t.Fatalf("Finish left the phase timer armed (%d cancels)", cancelled)
	}
}

func TestValidationTimeoutRace(t *testing.T) {
	tx := New("j", members(1, 2))
	tx.RecordEnrollment(1, Enrollment{})
	tx.RecordEnrollment(2, Enrollment{})
	tx.CloseEnrollment()
	tx.FixACS()
	tx.BeginValidation()
	tx.ExpectEndorsement(1)
	tx.ExpectEndorsement(2)
	tx.RecordEndorsement(1, []int{0})

	missing, fired := tx.TimeoutValidation()
	if !fired || missing != 1 {
		t.Fatalf("timeout: missing=%d fired=%v, want 1/true", missing, fired)
	}
	if !tx.ValTimedOut {
		t.Fatal("ValTimedOut not recorded")
	}
	if got := tx.Endorse[2]; got != nil {
		t.Fatalf("silent member endorsement %v, want nil", got)
	}
	// The timeout emptied the await set: a second firing is a no-op, and a
	// straggler ack no longer counts.
	if _, fired := tx.TimeoutValidation(); fired {
		t.Fatal("second timeout fired")
	}
	if counted, _ := tx.RecordEndorsement(2, []int{1}); counted {
		t.Fatal("straggler endorsement counted after timeout")
	}
}

func TestCommitTimeoutMarksFailure(t *testing.T) {
	tx := New("j", members(1))
	tx.RecordEnrollment(1, Enrollment{})
	tx.CloseEnrollment()
	tx.FixACS()
	tx.BeginValidation()
	tx.BeginCommit()
	tx.ExpectCommitAck(1)
	missing, fired := tx.TimeoutCommit()
	if !fired || missing != 1 {
		t.Fatalf("commit timeout: missing=%d fired=%v", missing, fired)
	}
	if !tx.CommitFail || !tx.ComTimedOut {
		t.Fatalf("flags after commit timeout: fail=%v timedOut=%v", tx.CommitFail, tx.ComTimedOut)
	}
	// Late ack is stale.
	if counted, _ := tx.RecordCommitAck(1, true); counted {
		t.Fatal("stale commit ack counted after timeout")
	}
	if _, fired := tx.TimeoutCommit(); fired {
		t.Fatal("second commit timeout fired")
	}
}

func TestAbortRetry(t *testing.T) {
	ar := NewAbortRetry(members(2, 4))
	for i := 1; i <= MaxAbortTries; i++ {
		if !ar.NextTry() {
			t.Fatalf("try %d refused within budget", i)
		}
	}
	if ar.NextTry() {
		t.Fatalf("try %d accepted beyond MaxAbortTries", MaxAbortTries+1)
	}

	ar = NewAbortRetry(members(2, 4))
	if ar.Ack(4) {
		t.Fatal("done after 1/2 acks")
	}
	if ar.Ack(4) {
		t.Fatal("duplicate ack reported done")
	}
	if !ar.Ack(2) {
		t.Fatal("not done after all acks")
	}

	cancelled := 0
	ar = NewAbortRetry(members(1))
	ar.Arm(func() bool { cancelled++; return true })
	ar.Stop()
	ar.Stop()
	if cancelled != 1 {
		t.Fatalf("retry timer cancelled %d times, want 1", cancelled)
	}
}
