package core

import (
	"testing"

	"repro/internal/dag"
)

// volumeJob: two parallel producers feeding a consumer over heavy edges.
func volumeJob(t testing.TB, vol float64) *dag.Graph {
	t.Helper()
	g, err := dag.NewBuilder("vol").
		AddTask(1, 8).AddTask(2, 8).AddTask(3, 4).
		AddDataEdge(1, 3, vol).
		AddDataEdge(2, 3, vol).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestDataVolumesEndToEnd runs the §13 data-volume model through the whole
// protocol: distribution must still be causally sound (results now take
// volume/throughput longer) and accepted jobs must meet their deadlines.
func TestDataVolumesEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Throughput = 2 // volume 4 => 2 extra time units per transfer
	c := mustCluster(t, fastLine(3), cfg)
	// Serial work 20 > deadline 18 forces distribution; with transfers the
	// consumer needs pred finish + vol/th + path, all inside the window.
	job, err := c.Submit(0, 0, volumeJob(t, 4), 18)
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	if job.Outcome != AcceptedDistributed {
		t.Fatalf("outcome %v/%s, want accepted-distributed", job.Outcome, job.RejectStage)
	}
	if !job.MetDeadline() {
		t.Fatalf("job missed deadline: done=%v at %v (d=%v)", job.Done, job.CompletedAt, job.AbsDeadline)
	}
	// Result messages carry the volume in their size accounting.
	kinds := c.Stats().ByKind()
	if kinds["rtds.result"] == 0 {
		t.Fatal("no result messages despite cross-site edges")
	}
}

// TestDataVolumesTightenAdmission: the same job that fits with fast links
// must be rejected when transfers are slow enough to blow the window —
// the mapper's ω + vol/throughput over-estimate at work.
func TestDataVolumesTightenAdmission(t *testing.T) {
	fast := DefaultConfig()
	fast.Throughput = 100 // transfers nearly free
	cFast := mustCluster(t, fastLine(3), fast)
	jFast, _ := cFast.Submit(0, 0, volumeJob(t, 40), 18)
	runAll(t, cFast)
	if jFast.Outcome != AcceptedDistributed {
		t.Fatalf("fast-transfer job: %v/%s", jFast.Outcome, jFast.RejectStage)
	}

	slow := DefaultConfig()
	slow.Throughput = 0.5 // volume 40 => 80 extra units per transfer
	cSlow := mustCluster(t, fastLine(3), slow)
	jSlow, _ := cSlow.Submit(0, 0, volumeJob(t, 40), 18)
	runAll(t, cSlow)
	if jSlow.Outcome != Rejected {
		t.Fatalf("slow-transfer job: %v, want rejected", jSlow.Outcome)
	}
}

// TestVolumesIgnoredWithoutThroughput: with Throughput 0 the decorated DAG
// behaves exactly like the base model.
func TestVolumesIgnoredWithoutThroughput(t *testing.T) {
	c := mustCluster(t, fastLine(3), DefaultConfig())
	job, _ := c.Submit(0, 0, volumeJob(t, 1e9), 18)
	runAll(t, c)
	if job.Outcome != AcceptedDistributed {
		t.Fatalf("outcome %v/%s, want accepted (volumes off)", job.Outcome, job.RejectStage)
	}
}
