// Package dag models a real-time job: a Directed Acyclic Graph G = (T, E) of
// tasks with computational complexities, plus a job-level release r and hard
// deadline d (paper §2).
//
// Tasks are numbered 1..n to match the paper's examples; internally they are
// stored densely. The package provides the graph algorithms the mapper and
// local scheduler need: topological orders, critical-path (bottom-level)
// priorities, path queries, and structural validation.
package dag

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// TaskID identifies a task within one job. IDs are 1-based like the paper.
type TaskID int

// Task is one node of the precedence graph.
type Task struct {
	ID         TaskID
	Complexity float64 // c(t): execution time on an idle unit-power site
	Label      string  // optional human-readable name
}

// Graph is a job's precedence graph together with its real-time window.
// Build with NewBuilder; a built Graph is immutable and safe for concurrent
// readers.
type Graph struct {
	Name     string
	Release  float64 // r: job release time (absolute or 0 for "on arrival")
	Deadline float64 // d: job deadline, relative to Release when used by the mapper

	tasks []Task                // dense, index = int(ID)-1
	succ  [][]TaskID            // sorted adjacency
	pred  [][]TaskID            // sorted reverse adjacency
	index map[TaskID]int        // redundant with dense layout; kept for clarity
	topo  []TaskID              // cached topological order (Kahn, smallest-ID-first)
	blev  map[TaskID]float64    // cached bottom levels (node weights only)
	vol   map[[2]TaskID]float64 // optional per-edge data volumes (§13)
}

// Builder accumulates tasks and edges and validates the result.
type Builder struct {
	name     string
	release  float64
	deadline float64
	tasks    []Task
	edges    map[[2]TaskID]bool
	volumes  map[[2]TaskID]float64
	seen     map[TaskID]bool
	err      error
}

// NewBuilder starts a job graph. deadline is interpreted by the scheduler as
// relative to the job's arrival unless release is set explicitly.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:  name,
		edges: make(map[[2]TaskID]bool),
		seen:  make(map[TaskID]bool),
	}
}

// SetWindow records the job release and deadline.
func (b *Builder) SetWindow(release, deadline float64) *Builder {
	b.release, b.deadline = release, deadline
	return b
}

// AddTask declares a task. IDs must be unique and positive; complexity must
// be positive and finite (weights are non-negative throughout the paper; we
// require strictly positive so durations are meaningful).
func (b *Builder) AddTask(id TaskID, complexity float64) *Builder {
	return b.AddLabeledTask(id, complexity, "")
}

// AddLabeledTask is AddTask with a display label.
func (b *Builder) AddLabeledTask(id TaskID, complexity float64, label string) *Builder {
	if b.err != nil {
		return b
	}
	if id <= 0 {
		b.err = fmt.Errorf("dag: task ID %d must be positive", id)
		return b
	}
	if b.seen[id] {
		b.err = fmt.Errorf("dag: duplicate task %d", id)
		return b
	}
	if complexity <= 0 || math.IsNaN(complexity) || math.IsInf(complexity, 0) {
		b.err = fmt.Errorf("dag: task %d has invalid complexity %v", id, complexity)
		return b
	}
	b.seen[id] = true
	b.tasks = append(b.tasks, Task{ID: id, Complexity: complexity, Label: label})
	return b
}

// AddEdge declares a precedence constraint from -> to.
func (b *Builder) AddEdge(from, to TaskID) *Builder {
	return b.AddDataEdge(from, to, 0)
}

// AddDataEdge declares a precedence constraint that also transfers `volume`
// units of data from the predecessor's result to the successor (§13
// "Communication Delays": arcs of the DAG decorated with data volumes).
// A volume of 0 means negligible data (a pure control dependency).
func (b *Builder) AddDataEdge(from, to TaskID, volume float64) *Builder {
	if b.err != nil {
		return b
	}
	if from == to {
		b.err = fmt.Errorf("dag: self-loop at task %d", from)
		return b
	}
	if volume < 0 || math.IsNaN(volume) || math.IsInf(volume, 0) {
		b.err = fmt.Errorf("dag: invalid data volume %v on %d->%d", volume, from, to)
		return b
	}
	key := [2]TaskID{from, to}
	if b.edges[key] {
		b.err = fmt.Errorf("dag: duplicate edge %d->%d", from, to)
		return b
	}
	b.edges[key] = true
	if volume > 0 {
		if b.volumes == nil {
			b.volumes = make(map[[2]TaskID]float64)
		}
		b.volumes[key] = volume
	}
	return b
}

// Build validates and freezes the graph. It fails if any edge references an
// undeclared task, the graph has a cycle, or the task set is empty.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.tasks) == 0 {
		return nil, fmt.Errorf("dag: job %q has no tasks", b.name)
	}
	g := &Graph{
		Name:     b.name,
		Release:  b.release,
		Deadline: b.deadline,
		tasks:    append([]Task(nil), b.tasks...),
		index:    make(map[TaskID]int, len(b.tasks)),
	}
	sort.Slice(g.tasks, func(i, j int) bool { return g.tasks[i].ID < g.tasks[j].ID })
	for i, t := range g.tasks {
		g.index[t.ID] = i
	}
	g.succ = make([][]TaskID, len(g.tasks))
	g.pred = make([][]TaskID, len(g.tasks))
	for key := range b.edges {
		from, to := key[0], key[1]
		fi, ok := g.index[from]
		if !ok {
			return nil, fmt.Errorf("dag: edge %d->%d references unknown task %d", from, to, from)
		}
		ti, ok := g.index[to]
		if !ok {
			return nil, fmt.Errorf("dag: edge %d->%d references unknown task %d", from, to, to)
		}
		g.succ[fi] = append(g.succ[fi], to)
		g.pred[ti] = append(g.pred[ti], from)
	}
	for i := range g.succ {
		sort.Slice(g.succ[i], func(a, b int) bool { return g.succ[i][a] < g.succ[i][b] })
		sort.Slice(g.pred[i], func(a, b int) bool { return g.pred[i][a] < g.pred[i][b] })
	}
	if len(b.volumes) > 0 {
		g.vol = make(map[[2]TaskID]float64, len(b.volumes))
		for k, v := range b.volumes {
			g.vol[k] = v
		}
	}
	topo, err := g.computeTopo()
	if err != nil {
		return nil, err
	}
	g.topo = topo
	g.blev = g.computeBottomLevels()
	return g, nil
}

// MustBuild is Build but panics on error; for generators and tests.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Len reports the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// NumEdges reports the number of precedence constraints.
func (g *Graph) NumEdges() int {
	total := 0
	for _, s := range g.succ {
		total += len(s)
	}
	return total
}

// Tasks returns the tasks sorted by ID. The slice is owned by the graph.
func (g *Graph) Tasks() []Task { return g.tasks }

// TaskIDs returns all task IDs in increasing order.
func (g *Graph) TaskIDs() []TaskID {
	ids := make([]TaskID, len(g.tasks))
	for i, t := range g.tasks {
		ids[i] = t.ID
	}
	return ids
}

// Task returns the task with the given ID.
func (g *Graph) Task(id TaskID) (Task, bool) {
	i, ok := g.index[id]
	if !ok {
		return Task{}, false
	}
	return g.tasks[i], true
}

// Complexity returns c(t); it panics on unknown tasks (a programming error).
func (g *Graph) Complexity(id TaskID) float64 {
	i, ok := g.index[id]
	if !ok {
		panic(fmt.Sprintf("dag: unknown task %d", id))
	}
	return g.tasks[i].Complexity
}

// Successors returns Γ+(t) sorted by ID; the slice is owned by the graph.
func (g *Graph) Successors(id TaskID) []TaskID {
	i, ok := g.index[id]
	if !ok {
		panic(fmt.Sprintf("dag: unknown task %d", id))
	}
	return g.succ[i]
}

// Predecessors returns Γ-(t) sorted by ID; the slice is owned by the graph.
func (g *Graph) Predecessors(id TaskID) []TaskID {
	i, ok := g.index[id]
	if !ok {
		panic(fmt.Sprintf("dag: unknown task %d", id))
	}
	return g.pred[i]
}

// Sources returns tasks with no predecessors, sorted by ID.
func (g *Graph) Sources() []TaskID {
	var out []TaskID
	for i, t := range g.tasks {
		if len(g.pred[i]) == 0 {
			out = append(out, t.ID)
		}
	}
	return out
}

// Sinks returns tasks with no successors, sorted by ID.
func (g *Graph) Sinks() []TaskID {
	var out []TaskID
	for i, t := range g.tasks {
		if len(g.succ[i]) == 0 {
			out = append(out, t.ID)
		}
	}
	return out
}

// TotalComplexity returns Σ c(t), the job's total work.
func (g *Graph) TotalComplexity() float64 {
	var sum float64
	for _, t := range g.tasks {
		sum += t.Complexity
	}
	return sum
}

func (g *Graph) computeTopo() ([]TaskID, error) {
	indeg := make(map[TaskID]int, len(g.tasks))
	for _, t := range g.tasks {
		indeg[t.ID] = len(g.pred[g.index[t.ID]])
	}
	// Min-heap behaviour via sorted ready list keeps the order deterministic
	// (smallest ID first among ready tasks).
	var ready []TaskID
	for _, t := range g.tasks {
		if indeg[t.ID] == 0 {
			ready = append(ready, t.ID)
		}
	}
	var order []TaskID
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		for _, s := range g.Successors(id) {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != len(g.tasks) {
		return nil, fmt.Errorf("dag: job %q has a cycle", g.Name)
	}
	return order, nil
}

// TopologicalOrder returns a deterministic topological order (smallest ID
// first among ready tasks). The slice is owned by the graph.
func (g *Graph) TopologicalOrder() []TaskID { return g.topo }

func (g *Graph) computeBottomLevels() map[TaskID]float64 {
	bl := make(map[TaskID]float64, len(g.tasks))
	topo := g.topo
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		best := 0.0
		for _, s := range g.Successors(id) {
			if bl[s] > best {
				best = bl[s]
			}
		}
		bl[id] = best + g.Complexity(id)
	}
	return bl
}

// BottomLevel returns the length of the longest path (node weights only,
// task included) from t to a sink — the list-scheduling priority of paper
// §12: "the priority of a task ti is the length of the longest path from ti
// to a sink task in the graph".
func (g *Graph) BottomLevel(id TaskID) float64 {
	v, ok := g.blev[id]
	if !ok {
		panic(fmt.Sprintf("dag: unknown task %d", id))
	}
	return v
}

// CriticalPathLength is the longest node-weighted path in the graph: the
// minimum possible makespan on unlimited unit-power processors with free
// communication.
func (g *Graph) CriticalPathLength() float64 {
	var best float64
	for _, t := range g.tasks {
		if v := g.blev[t.ID]; v > best {
			best = v
		}
	}
	return best
}

// CriticalPath returns one longest node-weighted path, source to sink,
// deterministically (smallest IDs among ties).
func (g *Graph) CriticalPath() []TaskID {
	var start TaskID
	best := -1.0
	for _, t := range g.tasks {
		if v := g.blev[t.ID]; v > best || (v == best && t.ID < start) {
			best, start = v, t.ID
		}
	}
	// Only sources can start a maximal path, but a non-source with maximal
	// bottom level can't exist unless its predecessors have larger levels, so
	// picking the global max is safe.
	var path []TaskID
	cur := start
	for {
		path = append(path, cur)
		succ := g.Successors(cur)
		if len(succ) == 0 {
			return path
		}
		next := TaskID(-1)
		want := g.blev[cur] - g.Complexity(cur)
		for _, s := range succ {
			if math.Abs(g.blev[s]-want) < 1e-12 {
				next = s
				break // successors sorted by ID: first match is smallest
			}
		}
		if next < 0 {
			// Float drift fallback: take the successor with max bottom level.
			for _, s := range succ {
				if next < 0 || g.blev[s] > g.blev[next] {
					next = s
				}
			}
		}
		cur = next
	}
}

// EdgeVolume returns the data volume transferred along edge from -> to
// (0 when the edge carries no data or does not exist).
func (g *Graph) EdgeVolume(from, to TaskID) float64 {
	return g.vol[[2]TaskID{from, to}]
}

// MaxEdgeVolume returns the largest data volume on any edge.
func (g *Graph) MaxEdgeVolume() float64 {
	var m float64
	for _, v := range g.vol {
		if v > m {
			m = v
		}
	}
	return m
}

// PriorityOrder returns the list-scheduling order of paper §12: repeatedly
// pick, among free tasks (all predecessors already ordered), the one with
// the largest bottom-level priority, ties to the smallest ID. The result is
// a topological order.
func (g *Graph) PriorityOrder() []TaskID {
	remaining := make(map[TaskID]int, len(g.tasks))
	var free []TaskID
	for _, t := range g.tasks {
		remaining[t.ID] = len(g.Predecessors(t.ID))
		if remaining[t.ID] == 0 {
			free = append(free, t.ID)
		}
	}
	order := make([]TaskID, 0, len(g.tasks))
	for len(free) > 0 {
		sort.Slice(free, func(i, j int) bool {
			bi, bj := g.blev[free[i]], g.blev[free[j]]
			if bi != bj {
				return bi > bj
			}
			return free[i] < free[j]
		})
		id := free[0]
		free = free[1:]
		order = append(order, id)
		for _, s := range g.Successors(id) {
			remaining[s]--
			if remaining[s] == 0 {
				free = append(free, s)
			}
		}
	}
	return order
}

// HasPath reports whether there is a directed path from a to b.
func (g *Graph) HasPath(a, b TaskID) bool {
	if _, ok := g.index[a]; !ok {
		return false
	}
	if _, ok := g.index[b]; !ok {
		return false
	}
	if a == b {
		return true
	}
	seen := make(map[TaskID]bool)
	stack := []TaskID{a}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Successors(cur) {
			if s == b {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// Width returns the size of the largest antichain layer under the canonical
// longest-path layering — an upper bound on useful parallelism. (This is the
// layer width, not the true maximum antichain, which is what scheduling
// heuristics conventionally use.)
func (g *Graph) Width() int {
	depth := make(map[TaskID]int, len(g.tasks))
	counts := make(map[int]int)
	for _, id := range g.topo {
		d := 0
		for _, p := range g.Predecessors(id) {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[id] = d
		counts[d]++
	}
	w := 0
	for _, c := range counts {
		if c > w {
			w = c
		}
	}
	return w
}

// String renders a compact description for logs.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "dag %q: %d tasks, %d edges, work %.6g, cp %.6g",
		g.Name, g.Len(), g.NumEdges(), g.TotalComplexity(), g.CriticalPathLength())
	return sb.String()
}

// DOT renders the graph in Graphviz format.
func (g *Graph) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n", g.Name)
	for _, t := range g.tasks {
		label := t.Label
		if label == "" {
			label = fmt.Sprintf("t%d", t.ID)
		}
		fmt.Fprintf(&sb, "  %d [label=\"%s\\nc=%.4g\"];\n", t.ID, label, t.Complexity)
	}
	for _, t := range g.tasks {
		for _, s := range g.Successors(t.ID) {
			fmt.Fprintf(&sb, "  %d -> %d;\n", t.ID, s)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
