package dag

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// paperGraph builds the Fig. 2 example DAG reverse-engineered in DESIGN.md:
// edges {1->3, 2->3, 1->4, 3->5, 4->5}, c = (6, 4, 4, 2, 5).
func paperGraph(t testing.TB) *Graph {
	t.Helper()
	g, err := NewBuilder("fig2").
		SetWindow(0, 66).
		AddTask(1, 6).
		AddTask(2, 4).
		AddTask(3, 4).
		AddTask(4, 2).
		AddTask(5, 5).
		AddEdge(1, 3).
		AddEdge(2, 3).
		AddEdge(1, 4).
		AddEdge(3, 5).
		AddEdge(4, 5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Error("empty job accepted")
	}
	if _, err := NewBuilder("dup").AddTask(1, 1).AddTask(1, 2).Build(); err == nil {
		t.Error("duplicate task accepted")
	}
	if _, err := NewBuilder("neg").AddTask(1, -3).Build(); err == nil {
		t.Error("negative complexity accepted")
	}
	if _, err := NewBuilder("zero").AddTask(1, 0).Build(); err == nil {
		t.Error("zero complexity accepted")
	}
	if _, err := NewBuilder("badid").AddTask(0, 1).Build(); err == nil {
		t.Error("non-positive ID accepted")
	}
	if _, err := NewBuilder("loop").AddTask(1, 1).AddEdge(1, 1).Build(); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := NewBuilder("dangling").AddTask(1, 1).AddEdge(1, 9).Build(); err == nil {
		t.Error("edge to unknown task accepted")
	}
	if _, err := NewBuilder("dupedge").
		AddTask(1, 1).AddTask(2, 1).AddEdge(1, 2).AddEdge(1, 2).Build(); err == nil {
		t.Error("duplicate edge accepted")
	}
	if _, err := NewBuilder("cycle").
		AddTask(1, 1).AddTask(2, 1).AddTask(3, 1).
		AddEdge(1, 2).AddEdge(2, 3).AddEdge(3, 1).Build(); err == nil {
		t.Error("cycle accepted")
	}
}

func TestPaperGraphStructure(t *testing.T) {
	g := paperGraph(t)
	if g.Len() != 5 || g.NumEdges() != 5 {
		t.Fatalf("size = (%d tasks, %d edges), want (5, 5)", g.Len(), g.NumEdges())
	}
	wantSucc := map[TaskID][]TaskID{1: {3, 4}, 2: {3}, 3: {5}, 4: {5}, 5: {}}
	for id, want := range wantSucc {
		got := g.Successors(id)
		if len(got) != len(want) {
			t.Fatalf("succ(%d) = %v, want %v", id, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("succ(%d) = %v, want %v", id, got, want)
			}
		}
	}
	if got := g.Predecessors(5); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("pred(5) = %v, want [3 4]", got)
	}
	srcs := g.Sources()
	if len(srcs) != 2 || srcs[0] != 1 || srcs[1] != 2 {
		t.Fatalf("sources = %v, want [1 2]", srcs)
	}
	sinks := g.Sinks()
	if len(sinks) != 1 || sinks[0] != 5 {
		t.Fatalf("sinks = %v, want [5]", sinks)
	}
	if w := g.TotalComplexity(); w != 21 {
		t.Fatalf("total work = %v, want 21", w)
	}
}

func TestPaperGraphPriorities(t *testing.T) {
	g := paperGraph(t)
	// Longest node-weighted path from each task to a sink, task included:
	// t1: 6+4+5 = 15, t2: 4+4+5 = 13, t3: 4+5 = 9, t4: 2+5 = 7, t5: 5.
	want := map[TaskID]float64{1: 15, 2: 13, 3: 9, 4: 7, 5: 5}
	for id, w := range want {
		if got := g.BottomLevel(id); got != w {
			t.Errorf("BottomLevel(%d) = %v, want %v", id, got, w)
		}
	}
	if cp := g.CriticalPathLength(); cp != 15 {
		t.Fatalf("critical path length = %v, want 15", cp)
	}
	path := g.CriticalPath()
	want2 := []TaskID{1, 3, 5}
	if len(path) != 3 {
		t.Fatalf("critical path = %v, want %v", path, want2)
	}
	for i := range want2 {
		if path[i] != want2[i] {
			t.Fatalf("critical path = %v, want %v", path, want2)
		}
	}
}

func TestTopologicalOrderDeterministic(t *testing.T) {
	g := paperGraph(t)
	got := g.TopologicalOrder()
	want := []TaskID{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topo = %v, want %v", got, want)
		}
	}
}

func TestHasPath(t *testing.T) {
	g := paperGraph(t)
	cases := []struct {
		a, b TaskID
		want bool
	}{
		{1, 5, true}, {2, 5, true}, {1, 4, true}, {2, 4, false},
		{4, 2, false}, {5, 1, false}, {3, 3, true}, {1, 99, false},
	}
	for _, c := range cases {
		if got := g.HasPath(c.a, c.b); got != c.want {
			t.Errorf("HasPath(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestWidth(t *testing.T) {
	g := paperGraph(t)
	// Layers: {1,2} depth 0, {3,4} depth 1, {5} depth 2.
	if w := g.Width(); w != 2 {
		t.Fatalf("width = %d, want 2", w)
	}
}

func TestDOT(t *testing.T) {
	g := paperGraph(t)
	dot := g.DOT()
	for _, frag := range []string{"digraph", "1 -> 3", "4 -> 5", "c=6"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, dot)
		}
	}
}

// randomDAG builds a random layered DAG directly (without daggen, which sits
// above this package).
func randomDAG(rng *rand.Rand, n int) *Graph {
	b := NewBuilder("rand")
	for i := 1; i <= n; i++ {
		b.AddTask(TaskID(i), 1+rng.Float64()*9)
	}
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			if rng.Float64() < 0.25 {
				b.AddEdge(TaskID(i), TaskID(j))
			}
		}
	}
	return b.MustBuild()
}

// Property: every topological order places predecessors before successors.
func TestPropertyTopoOrderRespectsEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(20))
		pos := make(map[TaskID]int)
		for i, id := range g.TopologicalOrder() {
			pos[id] = i
		}
		if len(pos) != g.Len() {
			return false
		}
		for _, id := range g.TaskIDs() {
			for _, s := range g.Successors(id) {
				if pos[id] >= pos[s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: bottom level of a task exceeds that of all its successors by at
// least its own complexity, and equals complexity for sinks.
func TestPropertyBottomLevelRecurrence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(20))
		for _, id := range g.TaskIDs() {
			succ := g.Successors(id)
			best := 0.0
			for _, s := range succ {
				if g.BottomLevel(s) > best {
					best = g.BottomLevel(s)
				}
			}
			if math.Abs(g.BottomLevel(id)-(best+g.Complexity(id))) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: critical path is a real path whose node weights sum to the
// critical path length.
func TestPropertyCriticalPathConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(20))
		path := g.CriticalPath()
		var sum float64
		for i, id := range path {
			sum += g.Complexity(id)
			if i > 0 && !g.HasPath(path[i-1], id) {
				return false
			}
		}
		return math.Abs(sum-g.CriticalPathLength()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Sources and Sinks are consistent with predecessor/successor sets.
func TestPropertySourcesSinks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(20))
		for _, s := range g.Sources() {
			if len(g.Predecessors(s)) != 0 {
				return false
			}
		}
		for _, s := range g.Sinks() {
			if len(g.Successors(s)) != 0 {
				return false
			}
		}
		return len(g.Sources()) >= 1 && len(g.Sinks()) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		randomDAG(rng, 100)
	}
}
