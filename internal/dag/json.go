package dag

import (
	"encoding/json"
	"fmt"
)

// jsonGraph is the interchange form of a job graph.
type jsonGraph struct {
	Name     string     `json:"name"`
	Release  float64    `json:"release,omitempty"`
	Deadline float64    `json:"deadline,omitempty"`
	Tasks    []jsonTask `json:"tasks"`
	Edges    []jsonEdge `json:"edges"`
}

type jsonTask struct {
	ID         TaskID  `json:"id"`
	Complexity float64 `json:"complexity"`
	Label      string  `json:"label,omitempty"`
}

type jsonEdge struct {
	From   TaskID  `json:"from"`
	To     TaskID  `json:"to"`
	Volume float64 `json:"volume,omitempty"`
}

// MarshalJSON implements json.Marshaler with a stable, human-editable
// schema: tasks and edges in increasing ID order.
func (g *Graph) MarshalJSON() ([]byte, error) {
	out := jsonGraph{
		Name:     g.Name,
		Release:  g.Release,
		Deadline: g.Deadline,
	}
	for _, t := range g.tasks {
		out.Tasks = append(out.Tasks, jsonTask{ID: t.ID, Complexity: t.Complexity, Label: t.Label})
	}
	for _, t := range g.tasks {
		for _, s := range g.Successors(t.ID) {
			out.Edges = append(out.Edges, jsonEdge{
				From: t.ID, To: s, Volume: g.EdgeVolume(t.ID, s),
			})
		}
	}
	return json.Marshal(out)
}

// UnmarshalGraph parses the JSON form produced by MarshalJSON, running the
// full builder validation (acyclicity, duplicate detection, positive
// complexities).
func UnmarshalGraph(data []byte) (*Graph, error) {
	var in jsonGraph
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("dag: %w", err)
	}
	b := NewBuilder(in.Name).SetWindow(in.Release, in.Deadline)
	for _, t := range in.Tasks {
		b.AddLabeledTask(t.ID, t.Complexity, t.Label)
	}
	for _, e := range in.Edges {
		b.AddDataEdge(e.From, e.To, e.Volume)
	}
	return b.Build()
}
