package dag

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJSONRoundTrip(t *testing.T) {
	g := NewBuilder("rt").
		SetWindow(5, 99).
		AddLabeledTask(1, 6, "src").
		AddTask(2, 4).
		AddTask(3, 2.5).
		AddEdge(1, 2).
		AddDataEdge(2, 3, 7.5).
		MustBuild()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "rt" || back.Release != 5 || back.Deadline != 99 {
		t.Fatalf("metadata lost: %+v", back)
	}
	if back.Len() != 3 || back.NumEdges() != 2 {
		t.Fatalf("shape lost: %d tasks, %d edges", back.Len(), back.NumEdges())
	}
	if tk, _ := back.Task(1); tk.Label != "src" || tk.Complexity != 6 {
		t.Fatalf("task 1 lost: %+v", tk)
	}
	if v := back.EdgeVolume(2, 3); v != 7.5 {
		t.Fatalf("volume lost: %v", v)
	}
	if v := back.EdgeVolume(1, 2); v != 0 {
		t.Fatalf("phantom volume: %v", v)
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	cases := []string{
		`{not json`,
		`{"name":"x","tasks":[],"edges":[]}`, // empty job
		`{"name":"x","tasks":[{"id":1,"complexity":1}],"edges":[{"from":1,"to":1}]}`,                                           // self-loop
		`{"name":"x","tasks":[{"id":1,"complexity":-2}],"edges":[]}`,                                                           // bad complexity
		`{"name":"x","tasks":[{"id":1,"complexity":1},{"id":2,"complexity":1}],"edges":[{"from":1,"to":2},{"from":2,"to":1}]}`, // cycle
	}
	for i, c := range cases {
		if _, err := UnmarshalGraph([]byte(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

// Property: marshal→unmarshal preserves structure and priorities for random
// DAGs.
func TestPropertyJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(15))
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		back, err := UnmarshalGraph(data)
		if err != nil {
			return false
		}
		if back.Len() != g.Len() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for _, id := range g.TaskIDs() {
			if back.Complexity(id) != g.Complexity(id) {
				return false
			}
			if back.BottomLevel(id) != g.BottomLevel(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
