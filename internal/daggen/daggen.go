// Package daggen generates task graphs of the shapes conventionally used to
// evaluate DAG schedulers: random layered graphs, fork-join, in/out-trees,
// diamonds (stencils), series-parallel graphs, and the classic structured
// kernels (Gaussian elimination, FFT butterflies, LU decomposition).
//
// All generators are deterministic given their seed, so experiments are
// reproducible bit-for-bit.
package daggen

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
)

// Params controls task complexities.
type Params struct {
	MinComplexity float64 // default 1
	MaxComplexity float64 // default 10
}

func (p Params) normalized() Params {
	if p.MinComplexity <= 0 {
		p.MinComplexity = 1
	}
	if p.MaxComplexity < p.MinComplexity {
		p.MaxComplexity = p.MinComplexity
	}
	return p
}

func (p Params) draw(rng *rand.Rand) float64 {
	p = p.normalized()
	if p.MaxComplexity == p.MinComplexity {
		return p.MinComplexity
	}
	return p.MinComplexity + rng.Float64()*(p.MaxComplexity-p.MinComplexity)
}

// Layered generates the standard random layered DAG: `layers` layers with
// 1..maxWidth tasks each; every task has at least one predecessor in the
// previous layer (so depth is exactly `layers`), plus random extra edges to
// earlier layers with probability edgeProb.
func Layered(layers, maxWidth int, edgeProb float64, p Params, seed int64) *dag.Graph {
	if layers < 1 || maxWidth < 1 {
		panic("daggen: Layered needs layers, maxWidth >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder(fmt.Sprintf("layered-L%d-W%d-s%d", layers, maxWidth, seed))
	var layerTasks [][]dag.TaskID
	next := dag.TaskID(1)
	for l := 0; l < layers; l++ {
		width := 1 + rng.Intn(maxWidth)
		var ids []dag.TaskID
		for w := 0; w < width; w++ {
			b.AddTask(next, p.draw(rng))
			ids = append(ids, next)
			next++
		}
		layerTasks = append(layerTasks, ids)
	}
	for l := 1; l < layers; l++ {
		prev := layerTasks[l-1]
		for _, id := range layerTasks[l] {
			// Guaranteed predecessor keeps the depth tight.
			anchor := prev[rng.Intn(len(prev))]
			b.AddEdge(anchor, id)
			// Extra edges from any earlier layer.
			for e := 0; e < l; e++ {
				for _, from := range layerTasks[e] {
					if from == anchor {
						continue
					}
					if rng.Float64() < edgeProb {
						b.AddEdge(from, id)
					}
				}
			}
		}
	}
	return b.MustBuild()
}

// ForkJoin generates fanout parallel branches of `depth` chained tasks
// between a fork task and a join task.
func ForkJoin(fanout, depth int, p Params, seed int64) *dag.Graph {
	if fanout < 1 || depth < 1 {
		panic("daggen: ForkJoin needs fanout, depth >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder(fmt.Sprintf("forkjoin-F%d-D%d-s%d", fanout, depth, seed))
	fork := dag.TaskID(1)
	b.AddLabeledTask(fork, p.draw(rng), "fork")
	next := dag.TaskID(2)
	var lasts []dag.TaskID
	for f := 0; f < fanout; f++ {
		prev := fork
		for d := 0; d < depth; d++ {
			b.AddTask(next, p.draw(rng))
			b.AddEdge(prev, next)
			prev = next
			next++
		}
		lasts = append(lasts, prev)
	}
	join := next
	b.AddLabeledTask(join, p.draw(rng), "join")
	for _, l := range lasts {
		b.AddEdge(l, join)
	}
	return b.MustBuild()
}

// OutTree generates a complete `arity`-ary tree of the given depth with
// edges pointing away from the root (task 1). depth 0 is a single task.
func OutTree(arity, depth int, p Params, seed int64) *dag.Graph {
	return tree(arity, depth, p, seed, false)
}

// InTree is OutTree with all edges reversed: leaves feed a single sink.
// Typical of reductions.
func InTree(arity, depth int, p Params, seed int64) *dag.Graph {
	return tree(arity, depth, p, seed, true)
}

func tree(arity, depth int, p Params, seed int64, reversed bool) *dag.Graph {
	if arity < 2 || depth < 0 {
		panic("daggen: tree needs arity >= 2, depth >= 0")
	}
	rng := rand.New(rand.NewSource(seed))
	kind := "outtree"
	if reversed {
		kind = "intree"
	}
	b := dag.NewBuilder(fmt.Sprintf("%s-A%d-D%d-s%d", kind, arity, depth, seed))
	// Count nodes: (arity^(depth+1)-1)/(arity-1)
	total := 1
	pow := 1
	for d := 0; d < depth; d++ {
		pow *= arity
		total += pow
	}
	for i := 1; i <= total; i++ {
		b.AddTask(dag.TaskID(i), p.draw(rng))
	}
	// Heap-style indexing: children of node i are arity*(i-1)+2 .. arity*(i-1)+1+arity.
	for i := 1; i <= total; i++ {
		for c := 0; c < arity; c++ {
			child := arity*(i-1) + 2 + c
			if child > total {
				break
			}
			if reversed {
				b.AddEdge(dag.TaskID(child), dag.TaskID(i))
			} else {
				b.AddEdge(dag.TaskID(i), dag.TaskID(child))
			}
		}
	}
	return b.MustBuild()
}

// Diamond generates an n x n diamond (wavefront/stencil) DAG: task (i,j)
// precedes (i+1,j) and (i,j+1).
func Diamond(n int, p Params, seed int64) *dag.Graph {
	if n < 1 {
		panic("daggen: Diamond needs n >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder(fmt.Sprintf("diamond-%dx%d-s%d", n, n, seed))
	id := func(i, j int) dag.TaskID { return dag.TaskID(i*n + j + 1) }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.AddTask(id(i, j), p.draw(rng))
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i+1 < n {
				b.AddEdge(id(i, j), id(i+1, j))
			}
			if j+1 < n {
				b.AddEdge(id(i, j), id(i, j+1))
			}
		}
	}
	return b.MustBuild()
}

// GaussianElimination generates the task graph of Gaussian elimination on an
// n x n matrix: for each pivot k, a pivot task followed by update tasks for
// columns k+1..n-1, each feeding the next pivot round. This is the shape
// used throughout the DAG-scheduling literature (e.g. Sih & Lee).
func GaussianElimination(n int, p Params, seed int64) *dag.Graph {
	if n < 2 {
		panic("daggen: GaussianElimination needs n >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder(fmt.Sprintf("gauss-%d-s%d", n, seed))
	next := dag.TaskID(1)
	// pivot[k] task then updates u(k, j) for j in k+1..n-1.
	pivots := make([]dag.TaskID, n-1)
	updates := make([][]dag.TaskID, n-1)
	for k := 0; k < n-1; k++ {
		pivots[k] = next
		b.AddLabeledTask(next, p.draw(rng), fmt.Sprintf("piv%d", k))
		next++
		for j := k + 1; j < n; j++ {
			b.AddLabeledTask(next, p.draw(rng), fmt.Sprintf("upd%d_%d", k, j))
			updates[k] = append(updates[k], next)
			next++
		}
	}
	for k := 0; k < n-1; k++ {
		for _, u := range updates[k] {
			b.AddEdge(pivots[k], u)
		}
		if k+1 < n-1 {
			// Column k+1's update feeds the next pivot; all of round k's
			// updates feed the matching update of round k+1.
			b.AddEdge(updates[k][0], pivots[k+1])
			for idx := 1; idx < len(updates[k]); idx++ {
				b.AddEdge(updates[k][idx], updates[k+1][idx-1])
			}
		}
	}
	return b.MustBuild()
}

// FFT generates the m-point FFT butterfly graph (m must be a power of two):
// log2(m) ranks of m tasks, where task (r+1, i) depends on (r, i) and
// (r, i XOR 2^r), preceded by an input rank.
func FFT(m int, p Params, seed int64) *dag.Graph {
	if m < 2 || m&(m-1) != 0 {
		panic("daggen: FFT needs a power-of-two size >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder(fmt.Sprintf("fft-%d-s%d", m, seed))
	ranks := 0
	for s := m; s > 1; s >>= 1 {
		ranks++
	}
	id := func(r, i int) dag.TaskID { return dag.TaskID(r*m + i + 1) }
	for r := 0; r <= ranks; r++ {
		for i := 0; i < m; i++ {
			b.AddTask(id(r, i), p.draw(rng))
		}
	}
	for r := 0; r < ranks; r++ {
		for i := 0; i < m; i++ {
			b.AddEdge(id(r, i), id(r+1, i))
			b.AddEdge(id(r, i), id(r+1, i^(1<<r)))
		}
	}
	return b.MustBuild()
}

// SeriesParallel generates a random series-parallel DAG by recursive
// composition down to single tasks.
func SeriesParallel(size int, p Params, seed int64) *dag.Graph {
	if size < 1 {
		panic("daggen: SeriesParallel needs size >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder(fmt.Sprintf("sp-%d-s%d", size, seed))
	next := dag.TaskID(1)
	newTask := func() dag.TaskID {
		id := next
		b.AddTask(id, p.draw(rng))
		next++
		return id
	}
	// build returns (entry tasks, exit tasks) of a component of ~n tasks.
	var build func(n int) ([]dag.TaskID, []dag.TaskID)
	build = func(n int) ([]dag.TaskID, []dag.TaskID) {
		if n <= 1 {
			id := newTask()
			return []dag.TaskID{id}, []dag.TaskID{id}
		}
		left := 1 + rng.Intn(n-1)
		if rng.Intn(2) == 0 { // series
			e1, x1 := build(left)
			e2, x2 := build(n - left)
			for _, x := range x1 {
				for _, e := range e2 {
					b.AddEdge(x, e)
				}
			}
			return e1, x2
		}
		// parallel
		e1, x1 := build(left)
		e2, x2 := build(n - left)
		return append(e1, e2...), append(x1, x2...)
	}
	build(size)
	return b.MustBuild()
}

// Chain generates a linear chain of n tasks — the degenerate DAG with zero
// parallelism, useful as a boundary case.
func Chain(n int, p Params, seed int64) *dag.Graph {
	if n < 1 {
		panic("daggen: Chain needs n >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder(fmt.Sprintf("chain-%d-s%d", n, seed))
	for i := 1; i <= n; i++ {
		b.AddTask(dag.TaskID(i), p.draw(rng))
		if i > 1 {
			b.AddEdge(dag.TaskID(i-1), dag.TaskID(i))
		}
	}
	return b.MustBuild()
}

// Independent generates n tasks with no precedence at all — the workload of
// the earlier independent-task literature ([10], [5]); boundary case for the
// mapper.
func Independent(n int, p Params, seed int64) *dag.Graph {
	if n < 1 {
		panic("daggen: Independent needs n >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder(fmt.Sprintf("indep-%d-s%d", n, seed))
	for i := 1; i <= n; i++ {
		b.AddTask(dag.TaskID(i), p.draw(rng))
	}
	return b.MustBuild()
}

// Kind names a generator family for config-driven workloads.
type Kind string

const (
	KindLayered  Kind = "layered"
	KindForkJoin Kind = "forkjoin"
	KindOutTree  Kind = "outtree"
	KindInTree   Kind = "intree"
	KindDiamond  Kind = "diamond"
	KindGauss    Kind = "gauss"
	KindFFT      Kind = "fft"
	KindSP       Kind = "seriesparallel"
	KindChain    Kind = "chain"
	KindIndep    Kind = "independent"
)

// AllKinds lists every generator family, in a fixed order.
var AllKinds = []Kind{KindLayered, KindForkJoin, KindOutTree, KindInTree,
	KindDiamond, KindGauss, KindFFT, KindSP, KindChain, KindIndep}

// Generate builds a DAG of the given kind with roughly `size` tasks.
func Generate(kind Kind, size int, p Params, seed int64) (*dag.Graph, error) {
	if size < 1 {
		size = 1
	}
	switch kind {
	case KindLayered:
		layers := max(2, size/3)
		return Layered(layers, 3, 0.2, p, seed), nil
	case KindForkJoin:
		fan := max(2, (size-2)/2)
		return ForkJoin(fan, 2, p, seed), nil
	case KindOutTree:
		depth := 1
		for nodes := 3; nodes < size; nodes = nodes*2 + 1 {
			depth++
		}
		return OutTree(2, depth, p, seed), nil
	case KindInTree:
		depth := 1
		for nodes := 3; nodes < size; nodes = nodes*2 + 1 {
			depth++
		}
		return InTree(2, depth, p, seed), nil
	case KindDiamond:
		side := 2
		for side*side < size {
			side++
		}
		return Diamond(side, p, seed), nil
	case KindGauss:
		n := 2
		for n*n/2 < size {
			n++
		}
		return GaussianElimination(n, p, seed), nil
	case KindFFT:
		m := 2
		for (m*(log2(m)+1)) < size && m < 1<<16 {
			m *= 2
		}
		return FFT(m, p, seed), nil
	case KindSP:
		return SeriesParallel(size, p, seed), nil
	case KindChain:
		return Chain(size, p, seed), nil
	case KindIndep:
		return Independent(size, p, seed), nil
	default:
		return nil, fmt.Errorf("daggen: unknown kind %q", kind)
	}
}

func log2(m int) int {
	r := 0
	for m > 1 {
		m >>= 1
		r++
	}
	return r
}
