package daggen

import (
	"testing"
	"testing/quick"

	"repro/internal/dag"
)

func TestLayeredDepth(t *testing.T) {
	g := Layered(6, 4, 0.3, Params{}, 1)
	// Depth (longest chain in tasks) must be exactly the layer count because
	// every task in layer l has a predecessor in layer l-1.
	longest := make(map[dag.TaskID]int)
	depth := 0
	for _, id := range g.TopologicalOrder() {
		best := 0
		for _, p := range g.Predecessors(id) {
			if longest[p] > best {
				best = longest[p]
			}
		}
		longest[id] = best + 1
		if longest[id] > depth {
			depth = longest[id]
		}
	}
	if depth != 6 {
		t.Fatalf("layered depth %d, want 6", depth)
	}
}

func TestForkJoinShape(t *testing.T) {
	g := ForkJoin(4, 3, Params{}, 1)
	if g.Len() != 4*3+2 {
		t.Fatalf("size %d, want 14", g.Len())
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Fatalf("fork-join must have one source and one sink: %v %v", g.Sources(), g.Sinks())
	}
	if got := len(g.Successors(g.Sources()[0])); got != 4 {
		t.Fatalf("fork fanout %d, want 4", got)
	}
	if got := len(g.Predecessors(g.Sinks()[0])); got != 4 {
		t.Fatalf("join fanin %d, want 4", got)
	}
	if w := g.Width(); w != 4 {
		t.Fatalf("width %d, want 4", w)
	}
}

func TestTreeShapes(t *testing.T) {
	out := OutTree(2, 3, Params{}, 1)
	if out.Len() != 15 {
		t.Fatalf("binary out-tree depth 3: %d nodes, want 15", out.Len())
	}
	if len(out.Sources()) != 1 || len(out.Sinks()) != 8 {
		t.Fatalf("out-tree sources/sinks = %d/%d, want 1/8", len(out.Sources()), len(out.Sinks()))
	}
	in := InTree(2, 3, Params{}, 1)
	if len(in.Sources()) != 8 || len(in.Sinks()) != 1 {
		t.Fatalf("in-tree sources/sinks = %d/%d, want 8/1", len(in.Sources()), len(in.Sinks()))
	}
}

func TestDiamondShape(t *testing.T) {
	g := Diamond(4, Params{}, 1)
	if g.Len() != 16 {
		t.Fatalf("size %d, want 16", g.Len())
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Fatal("diamond must have single source and sink")
	}
	// Longest chain has 2n-1 tasks.
	path := g.CriticalPath()
	if len(path) != 7 {
		t.Fatalf("diamond critical path %d tasks, want 7", len(path))
	}
}

func TestGaussianEliminationShape(t *testing.T) {
	g := GaussianElimination(4, Params{}, 1)
	// pivots: 3; updates: 3+2+1 = 6 → 9 tasks.
	if g.Len() != 9 {
		t.Fatalf("size %d, want 9", g.Len())
	}
	// Sequential depth: piv0, upd0_1, piv1, upd1_2, piv2, upd2_3 → 6 tasks.
	if len(g.CriticalPath()) != 6 {
		t.Fatalf("critical path %d tasks, want 6", len(g.CriticalPath()))
	}
}

func TestFFTShape(t *testing.T) {
	g := FFT(8, Params{}, 1)
	// (log2(8)+1) ranks of 8 = 32 tasks; each non-final rank task has 2 succ.
	if g.Len() != 32 {
		t.Fatalf("size %d, want 32", g.Len())
	}
	if g.NumEdges() != 3*8*2 {
		t.Fatalf("edges %d, want 48", g.NumEdges())
	}
	if len(g.Sources()) != 8 || len(g.Sinks()) != 8 {
		t.Fatal("FFT must have m sources and m sinks")
	}
}

func TestChainAndIndependent(t *testing.T) {
	c := Chain(5, Params{}, 1)
	if c.Width() != 1 || len(c.CriticalPath()) != 5 {
		t.Fatalf("chain: width %d, cp %d", c.Width(), len(c.CriticalPath()))
	}
	ind := Independent(5, Params{}, 1)
	if ind.NumEdges() != 0 || ind.Width() != 5 {
		t.Fatalf("independent: edges %d, width %d", ind.NumEdges(), ind.Width())
	}
}

func TestSeriesParallel(t *testing.T) {
	g := SeriesParallel(20, Params{}, 3)
	if g.Len() != 20 {
		t.Fatalf("size %d, want 20", g.Len())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, k := range AllKinds {
		a, err := Generate(k, 25, Params{MinComplexity: 1, MaxComplexity: 9}, 11)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		b, err := Generate(k, 25, Params{MinComplexity: 1, MaxComplexity: 9}, 11)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if a.Len() != b.Len() || a.NumEdges() != b.NumEdges() {
			t.Fatalf("%s: same seed, different shape", k)
		}
		for _, id := range a.TaskIDs() {
			if a.Complexity(id) != b.Complexity(id) {
				t.Fatalf("%s: same seed, different complexity at %d", k, id)
			}
		}
	}
	if _, err := Generate("bogus", 10, Params{}, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// Property: every generator yields a valid DAG (builder enforces acyclicity)
// with complexities inside the configured range and roughly requested size.
func TestPropertyGeneratorsWellFormed(t *testing.T) {
	f := func(seed int64, pick uint8, rawSize uint8) bool {
		k := AllKinds[int(pick)%len(AllKinds)]
		size := 1 + int(rawSize)%40
		p := Params{MinComplexity: 2, MaxComplexity: 5}
		g, err := Generate(k, size, p, seed)
		if err != nil {
			return false
		}
		if g.Len() < 1 {
			return false
		}
		for _, task := range g.Tasks() {
			if task.Complexity < 2 || task.Complexity > 5 {
				return false
			}
		}
		// A valid topological order exists and covers all tasks.
		return len(g.TopologicalOrder()) == g.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: generated sizes are within a reasonable factor of the request
// for the size-controllable kinds.
func TestPropertySizesReasonable(t *testing.T) {
	for _, k := range []Kind{KindSP, KindChain, KindIndep} {
		for size := 1; size <= 64; size *= 2 {
			g, err := Generate(k, size, Params{}, 5)
			if err != nil {
				t.Fatal(err)
			}
			if g.Len() != size {
				t.Fatalf("%s size %d: got %d tasks", k, size, g.Len())
			}
		}
	}
}

var sinkGraph *dag.Graph

func BenchmarkGenerateLayered100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkGraph = Layered(33, 3, 0.2, Params{}, int64(i))
	}
}
