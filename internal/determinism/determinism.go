// Package determinism holds the map-iteration helpers demanded by the
// mapiter analyzer (internal/analysis/mapiter): Go map iteration order is
// deliberately randomized, so any loop that ranges over a map and feeds a
// protocol decision, a wire encoding, a flood, or a float accumulation is a
// reproducibility bug waiting to happen. Routing every such walk through
// SortedKeys or OrderedRange makes the pattern uniform — and, more
// importantly, machine-checkable: the analyzer flags raw map ranges with
// order-sensitive sinks, and the fix is always one of these two calls.
//
// The helpers sort by key with cmp.Less, so for a given map content the
// iteration order is a pure function of the keys — identical across runs,
// processes and architectures.
package determinism

import (
	"cmp"
	"sort"
)

// SortedKeys returns the map's keys in ascending order. It is the
// allocation-honest replacement for the repo's historical
// "append-keys-then-sort" idiom: same work, one name, lintable.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	if len(m) == 0 {
		return nil
	}
	keys := make([]K, 0, len(m))
	//lint:allow mapiter -- this is the sorted-keys helper itself; the append is ordered by the sort below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return cmp.Less(keys[i], keys[j]) })
	return keys
}

// OrderedRange calls fn for every map entry in ascending key order. Use it
// where the loop body wants the value too and a separate SortedKeys pass
// would read awkwardly.
func OrderedRange[K cmp.Ordered, V any](m map[K]V, fn func(K, V)) {
	for _, k := range SortedKeys(m) {
		fn(k, m[k])
	}
}
