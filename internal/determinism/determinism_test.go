package determinism

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestSortedKeysIsSortedAndComplete(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3, "": 4}
	got := SortedKeys(m)
	want := []string{"", "a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeys = %v, want %v", got, want)
	}
	if SortedKeys(map[int]int{}) != nil {
		t.Fatalf("SortedKeys of empty map should be nil")
	}
	var nilMap map[int]int
	if SortedKeys(nilMap) != nil {
		t.Fatalf("SortedKeys of nil map should be nil")
	}
}

func TestSortedKeysDeterministicAcrossInsertionOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := rng.Perm(200)
	a := make(map[int]string, len(keys))
	for _, k := range keys {
		a[k] = "x"
	}
	b := make(map[int]string, len(keys))
	for i := len(keys) - 1; i >= 0; i-- {
		b[keys[i]] = "x"
	}
	if !reflect.DeepEqual(SortedKeys(a), SortedKeys(b)) {
		t.Fatalf("key order depends on insertion order")
	}
}

func TestOrderedRange(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	var ks []int
	var vs []string
	OrderedRange(m, func(k int, v string) {
		ks = append(ks, k)
		vs = append(vs, v)
	})
	if !reflect.DeepEqual(ks, []int{1, 2, 3}) || !reflect.DeepEqual(vs, []string{"a", "b", "c"}) {
		t.Fatalf("OrderedRange visited %v/%v", ks, vs)
	}
}
