// Package docscheck ties the documentation tree to the code: the tests
// here fail when docs/metrics.md stops covering an exported metric
// family, so "document every metric" is a build invariant rather than a
// review convention. (Dead links and unformatted doc examples are the
// CI docs job's half, via scripts/linkcheck.)
package docscheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gateway"
	"repro/internal/nodeapi"
)

// docsPath resolves a file under the repository's docs/ tree from this
// package's directory.
func docsPath(name string) string {
	return filepath.Join("..", "..", "docs", name)
}

func TestDocsTreeExists(t *testing.T) {
	for _, name := range []string{
		"architecture.md", "operations.md", "metrics.md", "api.md",
	} {
		if _, err := os.Stat(docsPath(name)); err != nil {
			t.Errorf("docs/%s missing: %v", name, err)
		}
	}
}

// TestMetricsDocCoverage requires every metric family the gateway and
// the node export to appear in docs/metrics.md. The names come from the
// same registry constructors the live /metrics endpoints scrape, so the
// doc cannot drift from the code without failing here.
func TestMetricsDocCoverage(t *testing.T) {
	data, err := os.ReadFile(docsPath("metrics.md"))
	if err != nil {
		t.Fatalf("docs/metrics.md: %v", err)
	}
	doc := string(data)
	for _, group := range []struct {
		source string
		names  []string
	}{
		{"gateway.MetricNames", gateway.MetricNames()},
		{"nodeapi.MetricNames", nodeapi.MetricNames()},
	} {
		if len(group.names) == 0 {
			t.Fatalf("%s returned no names", group.source)
		}
		for _, name := range group.names {
			if !strings.Contains(doc, name) {
				t.Errorf("docs/metrics.md does not mention %s (from %s)", name, group.source)
			}
		}
	}
}
