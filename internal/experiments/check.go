package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/determinism"
)

// ratioTolerance bounds acceptable guarantee-ratio drift in the regression
// gate. The suite is deterministic — same code, same seed, same table — so
// anything beyond float formatting noise is a behavior change that must be
// accompanied by a regenerated baseline.
const ratioTolerance = 1e-9

// CompareReports checks a freshly-run suite report against the committed
// baseline (the cmd/rtds-bench -check gate):
//
//   - every baseline experiment must be present with the same row count;
//   - every per-experiment guarantee ratio must match to within float
//     formatting noise — the suite is seeded and deterministic, so drift
//     means the protocol's behavior changed and the baseline must be
//     regenerated deliberately;
//   - suite throughput (events/sec) must not regress by more than
//     evpsTolerance (0.25 = fail when more than 25% slower).
//
// All problems are reported together so one CI run shows the full damage.
func CompareReports(baseline, current BenchReport, evpsTolerance float64) error {
	var problems []string
	if baseline.Size != current.Size {
		problems = append(problems, fmt.Sprintf(
			"suite size %q does not match the baseline's %q", current.Size, baseline.Size))
	}
	cur := make(map[string]BenchExperiment, len(current.Experiments))
	for _, e := range current.Experiments {
		cur[fmt.Sprintf("%s@%d", e.Name, e.Seed)] = e
	}
	base := make(map[string]bool, len(baseline.Experiments))
	for _, b := range baseline.Experiments {
		base[fmt.Sprintf("%s@%d", b.Name, b.Seed)] = true
	}
	// Symmetric coverage: an experiment the run produced but the baseline
	// never pinned means the suite grew without regenerating the baseline —
	// exactly the change most likely to move ratios unguarded.
	for _, e := range current.Experiments {
		if key := fmt.Sprintf("%s@%d", e.Name, e.Seed); !base[key] {
			problems = append(problems, fmt.Sprintf(
				"experiment %s absent from the baseline (regenerate it)", key))
		}
	}
	for _, b := range baseline.Experiments {
		key := fmt.Sprintf("%s@%d", b.Name, b.Seed)
		c, ok := cur[key]
		if !ok {
			problems = append(problems, fmt.Sprintf("experiment %s missing from the run", key))
			continue
		}
		if c.Rows != b.Rows {
			problems = append(problems, fmt.Sprintf(
				"%s: %d table rows, baseline has %d", key, c.Rows, b.Rows))
		}
		for _, col := range determinism.SortedKeys(b.GuaranteeRatios) {
			want := b.GuaranteeRatios[col]
			got, ok := c.GuaranteeRatios[col]
			if !ok {
				problems = append(problems, fmt.Sprintf(
					"%s: ratio column %q missing from the run", key, col))
				continue
			}
			if math.Abs(got-want) > ratioTolerance {
				problems = append(problems, fmt.Sprintf(
					"%s: guarantee ratio %q drifted %+.6f (baseline %.6f, run %.6f)",
					key, col, got-want, want, got))
			}
		}
		for _, col := range determinism.SortedKeys(c.GuaranteeRatios) {
			if _, ok := b.GuaranteeRatios[col]; !ok {
				problems = append(problems, fmt.Sprintf(
					"%s: ratio column %q absent from the baseline (regenerate it)", key, col))
			}
		}
	}
	// Hot-path allocation budget: allocs/op is deterministic for a given Go
	// release, so a count above the baseline is a regression, full stop.
	// Going below the baseline passes (an improvement should prompt a
	// deliberate baseline regeneration, not block the PR that earned it).
	// ns/op and bytes/op are recorded but never gated — wall time is
	// hardware, and bytes/op follows allocs/op anyway.
	curMicro := make(map[string]MicroBench, len(current.Micro))
	for _, m := range current.Micro {
		curMicro[m.Name] = m
	}
	for _, b := range baseline.Micro {
		c, ok := curMicro[b.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf(
				"micro-benchmark %s missing from the run", b.Name))
			continue
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			problems = append(problems, fmt.Sprintf(
				"%s: %d allocs/op, baseline pins %d — hot-path allocation regression",
				b.Name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	if len(baseline.Micro) > 0 {
		base := make(map[string]bool, len(baseline.Micro))
		for _, b := range baseline.Micro {
			base[b.Name] = true
		}
		for _, m := range current.Micro {
			if !base[m.Name] {
				problems = append(problems, fmt.Sprintf(
					"micro-benchmark %s absent from the baseline (regenerate it)", m.Name))
			}
		}
	}
	// Kernel scaling curve. Two unconditional checks — the storm's event
	// count is deterministic and partition-count-independent, so any drift
	// is a kernel correctness bug, not noise. The speedup floor binds only
	// on machines with enough cores to express one: the committed baseline
	// may have been measured on fewer cores than the gate runs on (or vice
	// versa), so the floor reads the *current* machine's curve.
	if baseline.Kernel != nil {
		if current.Kernel == nil {
			problems = append(problems, "kernel benchmark section missing from the run")
		} else {
			k := current.Kernel
			for _, p := range k.Points[1:] {
				if p.Events != k.Points[0].Events {
					problems = append(problems, fmt.Sprintf(
						"kernel: %d workers processed %d events, 1 worker %d — partition-count determinism broken",
						p.Workers, p.Events, k.Points[0].Events))
				}
			}
			if b := baseline.Kernel; len(b.Points) > 0 && len(k.Points) > 0 &&
				k.Points[0].Events != b.Points[0].Events {
				problems = append(problems, fmt.Sprintf(
					"kernel: storm processed %d events, baseline pins %d — the workload changed (regenerate the baseline)",
					k.Points[0].Events, b.Points[0].Events))
			}
			if k.NumCPU >= kernelSpeedupCores {
				best := 0.0
				for _, p := range k.Points {
					if p.Workers >= kernelSpeedupCores && p.Speedup > best {
						best = p.Speedup
					}
				}
				if best < kernelSpeedupFloor {
					problems = append(problems, fmt.Sprintf(
						"kernel: best speedup %.2fx at >=%d workers on a %d-core machine, floor is %.1fx",
						best, kernelSpeedupCores, k.NumCPU, kernelSpeedupFloor))
				}
			}
		}
	} else if current.Kernel != nil {
		problems = append(problems,
			"kernel benchmark section absent from the baseline (regenerate it)")
	}
	// Gateway section: the workload shape is pinned exactly (a changed
	// job count or client concurrency is a different benchmark and needs
	// a regenerated baseline); the measurements themselves are wall-clock
	// and only sanity-checked — zero throughput or a zero-batch fsync
	// histogram means the bench silently broke, not that hardware got
	// slower.
	if baseline.Gateway != nil {
		if current.Gateway == nil {
			problems = append(problems, "gateway benchmark section missing from the run")
		} else {
			g := current.Gateway
			if g.Jobs != baseline.Gateway.Jobs || g.Workers != baseline.Gateway.Workers {
				problems = append(problems, fmt.Sprintf(
					"gateway: workload %d jobs / %d workers, baseline pins %d / %d — the benchmark changed (regenerate the baseline)",
					g.Jobs, g.Workers, baseline.Gateway.Jobs, baseline.Gateway.Workers))
			}
			if g.SubmissionsPerSec <= 0 || g.AcceptP99 <= 0 {
				problems = append(problems, fmt.Sprintf(
					"gateway: degenerate measurements (%.0f submissions/sec, p99 %.6fs)",
					g.SubmissionsPerSec, g.AcceptP99))
			}
			if g.FsyncBatches <= 0 {
				problems = append(problems,
					"gateway: no fsync batches recorded — the write-ahead log is not syncing")
			}
			if g.FsyncBatches >= g.Jobs {
				problems = append(problems, fmt.Sprintf(
					"gateway: %d fsync batches for %d jobs — group commit is not batching",
					g.FsyncBatches, g.Jobs))
			}
		}
	} else if current.Gateway != nil {
		problems = append(problems,
			"gateway benchmark section absent from the baseline (regenerate it)")
	}
	// Routing section: fully deterministic (seeded topology, seeded
	// workload, deterministic DES), so everything is gated exactly. Two
	// structural invariants bind regardless of the baseline: the per-site
	// table-bytes curve must grow sub-linearly in the site count — the
	// hierarchy's whole point — and msgs/job at the largest sweep point
	// must not exceed what the baseline pins (cheaper passes; regenerate
	// the baseline to bank an improvement).
	if baseline.Routing != nil {
		if current.Routing == nil {
			problems = append(problems, "routing benchmark section missing from the run")
		} else {
			r := current.Routing
			b := baseline.Routing
			if len(r.Points) != len(b.Points) {
				problems = append(problems, fmt.Sprintf(
					"routing: %d sweep points, baseline pins %d — the benchmark changed (regenerate the baseline)",
					len(r.Points), len(b.Points)))
			}
			for i := 1; i < len(r.Points); i++ {
				prev, cur := r.Points[i-1], r.Points[i]
				if prev.TableBytes <= 0 || prev.Sites <= 0 {
					problems = append(problems, fmt.Sprintf(
						"routing: degenerate point at %d sites (%d table bytes)", prev.Sites, prev.TableBytes))
					continue
				}
				growth := float64(cur.TableBytes) / float64(prev.TableBytes)
				linear := float64(cur.Sites) / float64(prev.Sites)
				if growth >= 0.75*linear {
					problems = append(problems, fmt.Sprintf(
						"routing: table bytes grew %.2fx from %d to %d sites (linear would be %.2fx) — per-site state is no longer sub-linear",
						growth, prev.Sites, cur.Sites, linear))
				}
			}
			for i := range b.Points {
				if i >= len(r.Points) {
					break
				}
				bp, cp := b.Points[i], r.Points[i]
				if cp.Sites != bp.Sites || r.Jobs != b.Jobs || r.Seed != b.Seed {
					problems = append(problems, fmt.Sprintf(
						"routing: point %d is %d sites (seed %d, %d jobs), baseline pins %d sites (seed %d, %d jobs) — regenerate the baseline",
						i, cp.Sites, r.Seed, r.Jobs, bp.Sites, b.Seed, b.Jobs))
					continue
				}
				if math.Abs(cp.GuaranteeRatio-bp.GuaranteeRatio) > ratioTolerance {
					problems = append(problems, fmt.Sprintf(
						"routing: guarantee ratio at %d sites drifted %+.6f (baseline %.6f, run %.6f)",
						cp.Sites, cp.GuaranteeRatio-bp.GuaranteeRatio, bp.GuaranteeRatio, cp.GuaranteeRatio))
				}
				if i == len(b.Points)-1 && cp.MsgsPerJob > bp.MsgsPerJob+ratioTolerance {
					problems = append(problems, fmt.Sprintf(
						"routing: msgs/job at %d sites regressed to %.3f (baseline %.3f)",
						cp.Sites, cp.MsgsPerJob, bp.MsgsPerJob))
				}
			}
		}
	} else if current.Routing != nil {
		problems = append(problems,
			"routing benchmark section absent from the baseline (regenerate it)")
	}
	if evpsTolerance > 0 && baseline.EventsPerSec > 0 && current.EventsPerSec > 0 {
		floor := baseline.EventsPerSec * (1 - evpsTolerance)
		if current.EventsPerSec < floor {
			problems = append(problems, fmt.Sprintf(
				"throughput regressed: %.0f events/sec vs baseline %.0f (floor %.0f at %.0f%% tolerance)",
				current.EventsPerSec, baseline.EventsPerSec, floor, evpsTolerance*100))
		}
	}
	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("benchmark regression gate failed:\n  %s", strings.Join(problems, "\n  "))
}
