package experiments

import (
	"strings"
	"testing"
)

func gateReports() (BenchReport, BenchReport) {
	base := BenchReport{
		Size:         "quick",
		EventsPerSec: 100000,
		Experiments: []BenchExperiment{
			{Name: "E1", Seed: 1, Rows: 6, GuaranteeRatios: map[string]float64{"rtds": 0.8, "oracle": 0.95}},
			{Name: "E2", Seed: 1, Rows: 4},
		},
	}
	cur := BenchReport{
		Size:         "quick",
		EventsPerSec: 98000,
		Experiments: []BenchExperiment{
			{Name: "E1", Seed: 1, Rows: 6, GuaranteeRatios: map[string]float64{"rtds": 0.8, "oracle": 0.95}},
			{Name: "E2", Seed: 1, Rows: 4},
		},
	}
	return base, cur
}

func TestCompareReportsPasses(t *testing.T) {
	base, cur := gateReports()
	if err := CompareReports(base, cur, 0.25); err != nil {
		t.Fatalf("identical reports failed the gate: %v", err)
	}
}

func TestCompareReportsCatchesRatioDrift(t *testing.T) {
	base, cur := gateReports()
	cur.Experiments[0].GuaranteeRatios["rtds"] = 0.79
	err := CompareReports(base, cur, 0.25)
	if err == nil || !strings.Contains(err.Error(), "drifted") {
		t.Fatalf("ratio drift not caught: %v", err)
	}
}

func TestCompareReportsCatchesMissingExperiment(t *testing.T) {
	base, cur := gateReports()
	cur.Experiments = cur.Experiments[:1]
	err := CompareReports(base, cur, 0.25)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing experiment not caught: %v", err)
	}
}

func TestCompareReportsCatchesRowCountChange(t *testing.T) {
	base, cur := gateReports()
	cur.Experiments[1].Rows = 5
	err := CompareReports(base, cur, 0.25)
	if err == nil || !strings.Contains(err.Error(), "rows") {
		t.Fatalf("row count change not caught: %v", err)
	}
}

func TestCompareReportsCatchesThroughputRegression(t *testing.T) {
	base, cur := gateReports()
	cur.EventsPerSec = 70000 // 30% below baseline, tolerance 25%
	err := CompareReports(base, cur, 0.25)
	if err == nil || !strings.Contains(err.Error(), "throughput") {
		t.Fatalf("throughput regression not caught: %v", err)
	}
	// Inside tolerance passes.
	cur.EventsPerSec = 80000
	if err := CompareReports(base, cur, 0.25); err != nil {
		t.Fatalf("25%% tolerance rejected a 20%% slowdown: %v", err)
	}
}

func TestCompareReportsCatchesNewRatioColumn(t *testing.T) {
	base, cur := gateReports()
	cur.Experiments[0].GuaranteeRatios["new-scheme"] = 0.5
	err := CompareReports(base, cur, 0.25)
	if err == nil || !strings.Contains(err.Error(), "absent from the baseline") {
		t.Fatalf("new ratio column not caught: %v", err)
	}
}

func TestCompareReportsCatchesNewExperiment(t *testing.T) {
	base, cur := gateReports()
	cur.Experiments = append(cur.Experiments, BenchExperiment{Name: "E99", Seed: 1, Rows: 2})
	err := CompareReports(base, cur, 0.25)
	if err == nil || !strings.Contains(err.Error(), "absent from the baseline") {
		t.Fatalf("unpinned new experiment not caught: %v", err)
	}
}

func TestCompareReportsSizeMismatch(t *testing.T) {
	base, cur := gateReports()
	cur.Size = "full"
	err := CompareReports(base, cur, 0.25)
	if err == nil || !strings.Contains(err.Error(), "size") {
		t.Fatalf("size mismatch not caught: %v", err)
	}
}
