package experiments

import (
	"strings"
	"testing"
)

func gateReports() (BenchReport, BenchReport) {
	base := BenchReport{
		Size:         "quick",
		EventsPerSec: 100000,
		Experiments: []BenchExperiment{
			{Name: "E1", Seed: 1, Rows: 6, GuaranteeRatios: map[string]float64{"rtds": 0.8, "oracle": 0.95}},
			{Name: "E2", Seed: 1, Rows: 4},
		},
	}
	cur := BenchReport{
		Size:         "quick",
		EventsPerSec: 98000,
		Experiments: []BenchExperiment{
			{Name: "E1", Seed: 1, Rows: 6, GuaranteeRatios: map[string]float64{"rtds": 0.8, "oracle": 0.95}},
			{Name: "E2", Seed: 1, Rows: 4},
		},
	}
	return base, cur
}

func TestCompareReportsPasses(t *testing.T) {
	base, cur := gateReports()
	if err := CompareReports(base, cur, 0.25); err != nil {
		t.Fatalf("identical reports failed the gate: %v", err)
	}
}

func TestCompareReportsCatchesRatioDrift(t *testing.T) {
	base, cur := gateReports()
	cur.Experiments[0].GuaranteeRatios["rtds"] = 0.79
	err := CompareReports(base, cur, 0.25)
	if err == nil || !strings.Contains(err.Error(), "drifted") {
		t.Fatalf("ratio drift not caught: %v", err)
	}
}

func TestCompareReportsCatchesMissingExperiment(t *testing.T) {
	base, cur := gateReports()
	cur.Experiments = cur.Experiments[:1]
	err := CompareReports(base, cur, 0.25)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing experiment not caught: %v", err)
	}
}

func TestCompareReportsCatchesRowCountChange(t *testing.T) {
	base, cur := gateReports()
	cur.Experiments[1].Rows = 5
	err := CompareReports(base, cur, 0.25)
	if err == nil || !strings.Contains(err.Error(), "rows") {
		t.Fatalf("row count change not caught: %v", err)
	}
}

func TestCompareReportsCatchesThroughputRegression(t *testing.T) {
	base, cur := gateReports()
	cur.EventsPerSec = 70000 // 30% below baseline, tolerance 25%
	err := CompareReports(base, cur, 0.25)
	if err == nil || !strings.Contains(err.Error(), "throughput") {
		t.Fatalf("throughput regression not caught: %v", err)
	}
	// Inside tolerance passes.
	cur.EventsPerSec = 80000
	if err := CompareReports(base, cur, 0.25); err != nil {
		t.Fatalf("25%% tolerance rejected a 20%% slowdown: %v", err)
	}
}

func TestCompareReportsCatchesNewRatioColumn(t *testing.T) {
	base, cur := gateReports()
	cur.Experiments[0].GuaranteeRatios["new-scheme"] = 0.5
	err := CompareReports(base, cur, 0.25)
	if err == nil || !strings.Contains(err.Error(), "absent from the baseline") {
		t.Fatalf("new ratio column not caught: %v", err)
	}
}

func TestCompareReportsCatchesNewExperiment(t *testing.T) {
	base, cur := gateReports()
	cur.Experiments = append(cur.Experiments, BenchExperiment{Name: "E99", Seed: 1, Rows: 2})
	err := CompareReports(base, cur, 0.25)
	if err == nil || !strings.Contains(err.Error(), "absent from the baseline") {
		t.Fatalf("unpinned new experiment not caught: %v", err)
	}
}

func TestCompareReportsSizeMismatch(t *testing.T) {
	base, cur := gateReports()
	cur.Size = "full"
	err := CompareReports(base, cur, 0.25)
	if err == nil || !strings.Contains(err.Error(), "size") {
		t.Fatalf("size mismatch not caught: %v", err)
	}
}

func microReports() (BenchReport, BenchReport) {
	base, cur := gateReports()
	base.Micro = []MicroBench{
		{Name: "wire/append-frame", AllocsPerOp: 0, NsPerOp: 25},
		{Name: "schedule/admit-reject", AllocsPerOp: 0, NsPerOp: 120},
	}
	cur.Micro = []MicroBench{
		{Name: "wire/append-frame", AllocsPerOp: 0, NsPerOp: 60},
		{Name: "schedule/admit-reject", AllocsPerOp: 0, NsPerOp: 300},
	}
	return base, cur
}

func TestCompareReportsMicroPasses(t *testing.T) {
	base, cur := microReports()
	if err := CompareReports(base, cur, 0.25); err != nil {
		t.Fatalf("matching micro-benchmarks failed the gate: %v", err)
	}
}

func TestCompareReportsCatchesAllocRegression(t *testing.T) {
	base, cur := microReports()
	cur.Micro[0].AllocsPerOp = 2
	err := CompareReports(base, cur, 0.25)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("allocs/op regression not caught: %v", err)
	}
}

func TestCompareReportsAllocImprovementPasses(t *testing.T) {
	base, cur := microReports()
	base.Micro[1].AllocsPerOp = 5 // current is better than the baseline
	if err := CompareReports(base, cur, 0.25); err != nil {
		t.Fatalf("allocs/op improvement failed the gate: %v", err)
	}
}

func TestCompareReportsNsPerOpNeverGated(t *testing.T) {
	base, cur := microReports()
	cur.Micro[0].NsPerOp = base.Micro[0].NsPerOp * 100
	if err := CompareReports(base, cur, 0.25); err != nil {
		t.Fatalf("ns/op drift must not gate: %v", err)
	}
}

func TestCompareReportsCatchesMissingMicro(t *testing.T) {
	base, cur := microReports()
	cur.Micro = cur.Micro[:1]
	err := CompareReports(base, cur, 0.25)
	if err == nil || !strings.Contains(err.Error(), "micro-benchmark") {
		t.Fatalf("missing micro-benchmark not caught: %v", err)
	}
}

func TestCompareReportsCatchesUnpinnedMicro(t *testing.T) {
	base, cur := microReports()
	cur.Micro = append(cur.Micro, MicroBench{Name: "sim/event-loop"})
	err := CompareReports(base, cur, 0.25)
	if err == nil || !strings.Contains(err.Error(), "absent from the baseline") {
		t.Fatalf("unpinned micro-benchmark not caught: %v", err)
	}
}

func TestCompareReportsBaselineWithoutMicroPasses(t *testing.T) {
	// A pre-micro baseline must keep gating experiments without demanding
	// micro rows (forward compatibility for locally pinned old baselines).
	base, cur := microReports()
	base.Micro = nil
	if err := CompareReports(base, cur, 0.25); err != nil {
		t.Fatalf("baseline without micro section failed the gate: %v", err)
	}
}
