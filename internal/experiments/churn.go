package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/core/membership"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/scheme"
	"repro/internal/simnet"
)

// e14ChurnCounts is the churn axis (one shard per point): how many sites
// crash during the run.
func e14ChurnCounts(size Size) []int {
	if size == Full {
		return []int{0, 1, 2}
	}
	return []int{0, 1}
}

func e14Shards(size Size) int { return len(e14ChurnCounts(size)) }

// e14Membership pins the membership timing for every E14 cell so the sweep
// measures churn, not parameter drift: 1-unit heartbeats, 3-unit suspicion,
// and a horizon that outlives the last possible recovery.
func e14Membership(size Size) membership.Config {
	return membership.Config{
		Enabled:        true,
		HeartbeatEvery: 1,
		SuspectAfter:   3,
		Horizon:        size.horizon() + 20,
	}
}

func e14Table(size Size) *metrics.Table {
	return metrics.NewTable(
		fmt.Sprintf("E14 — churn (%d sites, load 0.6): crash+rejoin via distributed membership", size.sites()),
		"crashes", "rejoin", "rtds", "broadcast", "fa-bidding", "undecided",
		"rej empty-acs", "rej validate-to", "rej commit-to",
		"views", "deaths", "resurrect", "control msgs", "disrupted")
}

// e14Plan derives one cell's deterministic churn plan: crash victims drawn
// from a cell-specific seed, crash times spread over the horizon. With
// rejoin each outage lasts a quarter horizon and the site then resumes
// heartbeating (the membership layer resurrects it); without, crashes are
// permanent. DetectDelay stays zero: detection latency is now a property
// of the membership timing, not of the plan.
func e14Plan(seed int64, churn int, rejoin bool, horizon float64, sites int) *simnet.FaultPlan {
	plan := &simnet.FaultPlan{Seed: seed*1000 + int64(churn)}
	if churn == 0 {
		return plan
	}
	rng := rand.New(rand.NewSource(plan.Seed + 1))
	victims := rng.Perm(sites)[:churn]
	for i, v := range victims {
		cr := simnet.Crash{
			Site: graph.NodeID(v),
			At:   horizon * float64(i+1) / float64(churn+1),
		}
		if rejoin {
			cr.For = horizon / 4
		}
		plan.Crashes = append(plan.Crashes, cr)
	}
	return plan
}

func e14Row(env *runEnv, size Size, seed int64, shard int) ([][]any, error) {
	churn := e14ChurnCounts(size)[shard]
	var rows [][]any
	// One topology and arrival sequence per churn level: within a shard the
	// rejoin column isolates the effect of recovery on identical traffic.
	topo := graph.RandomConnected(size.sites(), 3, StdDelays, seed)
	spec := StdSpec(size.sites(), size.horizon(), seed+int64(shard*100))
	arrivals, err := ArrivalsForLoad(spec, 0.6)
	if err != nil {
		return nil, err
	}
	mcfg := e14Membership(size)
	withMembership := func(c *core.Config) { c.Membership = mcfg }
	for _, rejoin := range []bool{false, true} {
		if churn == 0 && rejoin {
			continue // nothing to rejoin: the control row runs once
		}
		plan := e14Plan(seed, churn, rejoin, size.horizon(), size.sites())

		rtdsCluster, err := env.runCluster("rtds", topo,
			scheme.Config{Faults: plan, Tune: withMembership}, arrivals)
		if err != nil {
			return nil, err
		}
		rtds := rtdsCluster.Summarize()
		bcast, err := env.run("broadcast", topo,
			scheme.Config{Faults: plan, Tune: withMembership}, arrivals)
		if err != nil {
			return nil, err
		}
		fab, err := env.run("fab", topo,
			scheme.Config{Horizon: size.horizon(), Faults: plan}, arrivals)
		if err != nil {
			return nil, err
		}

		// Membership outcome of the RTDS run, measured over the SURVIVORS
		// (a permanently crashed site is partitioned: it declares its own
		// neighbors dead and its view legitimately diverges, so folding it
		// in would misreport convergence): the number of distinct route
		// epochs among survivors (1 = fully converged views), the deaths
		// each applied, and the resurrections cluster-wide (0 without
		// rejoin).
		permDead := make(map[graph.NodeID]bool)
		for _, cr := range plan.Crashes {
			if cr.Permanent() {
				permDead[cr.Site] = true
			}
		}
		views := make(map[uint64]bool)
		deaths, resurrect := 0, 0
		for _, s := range rtdsCluster.(scheme.CoreBacked).Core().MembershipSnapshots() {
			if permDead[s.Self] {
				continue
			}
			views[s.Epoch] = true
			if s.Deaths > deaths {
				deaths = s.Deaths
			}
			resurrect += s.Resurrections
		}

		rows = append(rows, []any{
			churn, rejoin, rtds.GuaranteeRatio, bcast.GuaranteeRatio, fab.GuaranteeRatio,
			rtds.Core.Undecided,
			rtds.Core.RejectedByStage[core.StageEmptyACS],
			rtds.Core.RejectedByStage[core.StageValidateTimeout],
			rtds.Core.RejectedByStage[core.StageCommitTimeout],
			len(views),
			deaths,
			resurrect,
			rtds.Core.ControlMessages,
			rtds.Core.Disruptions,
		})
	}
	return rows, nil
}

func e14Churn(env *runEnv, size Size, seed int64) (*metrics.Table, error) {
	return runShardsSerially(env, size, seed, e14Shards, e14Table, e14Row)
}

// E14Churn evaluates the dynamic-membership subsystem end to end: sites
// crash mid-run (and, in the rejoin rows, come back), and every repair —
// failure detection, epoch-tagged table re-floods, resurrection — happens
// through the wire protocol rather than the old scripted oracle. Per
// (crash count, rejoin) cell the sweep reports:
//
//   - the guarantee ratio of RTDS, the BroadcastSphere ablation and the
//     focused-addressing/bidding baseline on the same churning network;
//   - the abort-stage breakdown of jobs caught by the churn (enrollments
//     that closed empty against dead members, validations and commits
//     resolved by their timeouts);
//   - the membership outcome: the route epoch the survivors converged to,
//     the number of resurrections applied, and the control-plane traffic
//     (heartbeats, notices, repair floods) the protocol spent — the price
//     of owning failure knowledge instead of being handed it.
//
// Rejoin rows recover capacity: their late-run guarantee ratio reflects
// the resurrected sites serving enrollments again. Every run must drain
// with all locks released; like E12 the experiment doubles as a liveness
// stress, now for the repair and join paths.
func E14Churn(size Size, seed int64) (*metrics.Table, error) {
	return e14Churn(new(runEnv), size, seed)
}
