package experiments

import (
	"strconv"
	"testing"
)

func TestE14ChurnInvariants(t *testing.T) {
	tbl, err := E14Churn(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One control row (churn 0) plus two rows (permanent, rejoin) per
	// non-zero churn level.
	wantRows := 1 + 2*(len(e14ChurnCounts(Quick))-1)
	if tbl.NumRows() != wantRows {
		t.Fatalf("%d rows, want %d", tbl.NumRows(), wantRows)
	}
	col := map[string]int{}
	for i, h := range tbl.Headers {
		col[h] = i
	}
	cell := func(row int, name string) float64 {
		v, err := strconv.ParseFloat(tbl.Cell(row, col[name]), 64)
		if err != nil {
			t.Fatalf("row %d col %s: %v", row, name, err)
		}
		return v
	}
	for row := 0; row < tbl.NumRows(); row++ {
		for _, scheme := range []string{"rtds", "broadcast", "fa-bidding"} {
			if r := cell(row, scheme); r < 0 || r > 1 {
				t.Errorf("row %d: %s ratio %v outside [0,1]", row, scheme, r)
			}
		}
		// The liveness contract: churn must never wedge a decision. A
		// non-zero count means a timeout, lease or repair path failed.
		if u := cell(row, "undecided"); u != 0 {
			t.Errorf("row %d: %v undecided jobs under churn", row, u)
		}
		// Membership always runs in E14, so control traffic is never zero.
		if c := cell(row, "control msgs"); c == 0 {
			t.Errorf("row %d: no control traffic despite armed membership", row)
		}
		churn := cell(row, "crashes")
		rejoin := tbl.Cell(row, col["rejoin"]) == "true"
		// Survivors must always converge on one membership view (and hence
		// one route epoch) by the time the run drains.
		if v := cell(row, "views"); v != 1 {
			t.Errorf("row %d: %v distinct survivor views, want 1 (converged)", row, v)
		}
		if churn == 0 {
			if d := cell(row, "deaths"); d != 0 {
				t.Errorf("control row applied %v deaths", d)
			}
			if d := cell(row, "disrupted"); d != 0 {
				t.Errorf("control row recorded %v disruptions", d)
			}
		} else {
			if d := cell(row, "deaths"); d == 0 {
				t.Errorf("row %d: crashes were never detected", row)
			}
		}
		if rejoin && cell(row, "resurrect") == 0 {
			t.Errorf("row %d: rejoin run applied no resurrections", row)
		}
		if !rejoin && cell(row, "resurrect") != 0 {
			t.Errorf("row %d: permanent-crash run resurrected someone", row)
		}
	}
}
