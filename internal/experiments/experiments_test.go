package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestPaperExampleMatchesPaper(t *testing.T) {
	res, err := PaperExample()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPaperExample(res); err != nil {
		t.Fatalf("reproduction diverges from the paper: %v", err)
	}
	// Renderings exist and carry the right captions.
	if !strings.Contains(res.GanttS, "M = 33") {
		t.Errorf("Fig. 3 caption wrong:\n%s", res.GanttS)
	}
	if !strings.Contains(res.GanttSStar, "M* = 19") {
		t.Errorf("Fig. 4 caption wrong:\n%s", res.GanttSStar)
	}
	if res.Table1.NumRows() != 5 {
		t.Fatalf("Table 1 has %d rows", res.Table1.NumRows())
	}
	// The rendered Table 1 literally contains the paper's numbers.
	rendered := res.Table1.String()
	for _, v := range []string{"24", "20", "42", "40", "66", "43", "27"} {
		if !strings.Contains(rendered, v) {
			t.Errorf("Table 1 rendering missing %s:\n%s", v, rendered)
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	res, err := PaperExample()
	if err != nil {
		t.Fatal(err)
	}
	res.Mapping.Release[3] = 999
	if err := VerifyPaperExample(res); err == nil {
		t.Fatal("verification accepted corrupted release")
	}
}

// parse extracts the float in column `col` of row `row` from a rendered
// table (data rows start after header + separator).
func parse(t *testing.T, tbl interface{ String() string }, row, col int) float64 {
	t.Helper()
	lines := strings.Split(strings.TrimRight(tbl.String(), "\n"), "\n")
	fields := strings.Fields(lines[3+row])
	v, err := strconv.ParseFloat(fields[col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, fields[col], err)
	}
	return v
}

func TestE1QualitativeClaims(t *testing.T) {
	tbl, err := E1GuaranteeVsLoad(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 6 {
		t.Fatalf("rows %d", tbl.NumRows())
	}
	// The paper's claim: distribution "leads to an increase of the number
	// of accepted jobs". At every load RTDS must beat or match local-only,
	// and strictly beat it at moderate+ loads.
	strictlyBetter := 0
	for r := 0; r < 6; r++ {
		rtds := parse(t, tbl, r, 2)
		local := parse(t, tbl, r, 3)
		if rtds < local-0.02 {
			t.Errorf("row %d: rtds %.3f below local-only %.3f", r, rtds, local)
		}
		if rtds > local+0.02 {
			strictlyBetter++
		}
	}
	if strictlyBetter < 2 {
		t.Errorf("RTDS never strictly beats local-only:\n%s", tbl)
	}
	// FA/bidding cannot split DAGs: it must not dominate RTDS overall.
	var rtdsSum, fabSum float64
	for r := 0; r < 6; r++ {
		rtdsSum += parse(t, tbl, r, 2)
		fabSum += parse(t, tbl, r, 5)
	}
	if rtdsSum < fabSum {
		t.Errorf("fa-bidding dominates RTDS overall:\n%s", tbl)
	}
	// The clairvoyant oracle is an upper bound on every distributed scheme.
	for r := 0; r < 6; r++ {
		oracle := parse(t, tbl, r, 1)
		for col := 2; col <= 5; col++ {
			if v := parse(t, tbl, r, col); oracle < v-0.02 {
				t.Errorf("row %d col %d: oracle %.3f below %.3f:\n%s", r, col, oracle, v, tbl)
			}
		}
	}
}

func TestE2SphereBoundsTraffic(t *testing.T) {
	tbl, err := E2MessagesVsNetworkSize(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	// At the largest quick size (32 sites), sphere-limited RTDS must use
	// fewer messages per job than the whole-network broadcast variant, and
	// the FA/bidding flood must be the most expensive.
	last := tbl.NumRows() - 1
	rtds := parse(t, tbl, last, 1)
	bcast := parse(t, tbl, last, 2)
	fab := parse(t, tbl, last, 3)
	if rtds >= bcast {
		t.Errorf("rtds %.1f msgs/job not below broadcast %.1f:\n%s", rtds, bcast, tbl)
	}
	if fab <= rtds {
		t.Errorf("fa-bidding flood %.1f msgs/job not above rtds %.1f:\n%s", fab, rtds, tbl)
	}
	// RTDS traffic grows sublinearly: doubling sites from row 1 to the last
	// must less-than-double msgs/job... broadcast must grow faster.
	rtdsFirst := parse(t, tbl, 0, 1)
	bcastFirst := parse(t, tbl, 0, 2)
	rtdsGrowth := rtds / rtdsFirst
	bcastGrowth := bcast / bcastFirst
	if rtdsGrowth >= bcastGrowth {
		t.Errorf("rtds growth %.2fx not below broadcast growth %.2fx:\n%s",
			rtdsGrowth, bcastGrowth, tbl)
	}
}

func TestE3RadiusTradeoff(t *testing.T) {
	tbl, err := E3SphereRadius(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 5 {
		t.Fatalf("rows %d", tbl.NumRows())
	}
	// Larger spheres cannot shrink the mean ACS, and bootstrap cost must
	// grow strictly with h.
	for r := 1; r < 5; r++ {
		if parse(t, tbl, r, 3) < parse(t, tbl, r-1, 3)-0.5 {
			t.Errorf("mean ACS shrank noticeably with larger h:\n%s", tbl)
		}
		if parse(t, tbl, r, 4) <= parse(t, tbl, r-1, 4) {
			t.Errorf("bootstrap cost did not grow with h:\n%s", tbl)
		}
	}
}

func TestE4TightnessMonotoneTrend(t *testing.T) {
	tbl, err := E4DeadlineTightness(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Looser deadlines must not hurt: last row (tightness 6) must beat the
	// first row (1.2) for both algorithms.
	if parse(t, tbl, 5, 1) <= parse(t, tbl, 0, 1) {
		t.Errorf("rtds ratio did not improve with looser deadlines:\n%s", tbl)
	}
	if parse(t, tbl, 5, 2) <= parse(t, tbl, 0, 2) {
		t.Errorf("local-only ratio did not improve with looser deadlines:\n%s", tbl)
	}
}

func TestAblationExperimentsRun(t *testing.T) {
	runs := []struct {
		name string
		run  func(Size, int64) (*metrics.Table, error)
		rows int
	}{
		{"E5", E5LaxityDispatch, 2},
		{"E6", E6UniformMachines, 2},
		{"E7", E7Preemption, 2},
		{"E8", E8MapperHeuristics, 4},
		{"E11", E11DataVolumes, 5},
		{"E9", E9PCSConstruction, 8},
	}
	for _, c := range runs {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			tb, err := c.run(Quick, 1)
			if err != nil {
				t.Fatal(err)
			}
			if tb.NumRows() != c.rows {
				t.Errorf("%s: %d rows, want %d:\n%s", c.name, tb.NumRows(), c.rows, tb)
			}
		})
	}
}

// TestE12FaultToleranceDegradesGracefully checks the fault sweep's
// qualitative content at the quick size: the clean cell matches healthy
// behaviour, injected loss costs admission but never liveness (every job is
// decided in every cell), and the dropped-traversal column tracks the
// injected intensity.
func TestE12FaultToleranceDegradesGracefully(t *testing.T) {
	tbl, err := E12FaultTolerance(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.NumRows()
	if rows != len(e12Loss)*len(e12CrashCounts(Quick)) {
		t.Fatalf("%d rows, want %d", rows, len(e12Loss)*len(e12CrashCounts(Quick)))
	}
	col := map[string]int{}
	for i, h := range tbl.Headers {
		col[h] = i
	}
	cell := func(row int, name string) float64 {
		v, err := strconv.ParseFloat(tbl.Cell(row, col[name]), 64)
		if err != nil {
			t.Fatalf("row %d col %s: %v", row, name, err)
		}
		return v
	}
	for row := 0; row < rows; row++ {
		loss := cell(row, "loss")
		for _, scheme := range []string{"rtds", "broadcast", "fa-bidding"} {
			if r := cell(row, scheme); r < 0 || r > 1 {
				t.Errorf("row %d: %s ratio %v outside [0,1]", row, scheme, r)
			}
		}
		if u := cell(row, "undecided"); u != 0 {
			t.Errorf("row %d: %v undecided RTDS jobs — initiator-side timeouts failed", row, u)
		}
		if loss == 0 && cell(row, "crashes") == 0 {
			if d := cell(row, "dropped"); d != 0 {
				t.Errorf("clean cell dropped %v traversals", d)
			}
		}
		if loss >= 0.1 && cell(row, "dropped") == 0 {
			t.Errorf("row %d: loss %v dropped nothing — injector inert", row, loss)
		}
	}
	// Loss costs admission: the heaviest-loss cell cannot beat the clean
	// cell (deterministic for this seed; the margin is wide in practice).
	if clean, worst := cell(0, "rtds"), cell(rows-1, "rtds"); worst >= clean {
		t.Errorf("rtds ratio did not degrade: clean %v vs 20%% loss %v", clean, worst)
	}
}
