package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/scheme"
	"repro/internal/simnet"
)

// e12Loss is the loss-rate axis of the fault sweep (one shard per point).
var e12Loss = []float64{0, 0.05, 0.1, 0.2}

func e12CrashCounts(size Size) []int {
	if size == Full {
		return []int{0, 1, 2}
	}
	return []int{0, 1}
}

func e12Shards(Size) int { return len(e12Loss) }

func e12Table(size Size) *metrics.Table {
	return metrics.NewTable(
		fmt.Sprintf("E12 — fault tolerance (%d sites, load 0.6): guarantee ratio and abort stages vs loss/crashes", size.sites()),
		"loss", "crashes", "rtds", "broadcast", "fa-bidding", "undecided",
		"rej empty-acs", "rej validate-to", "rej commit-to", "rej commit", "dropped", "disrupted")
}

// e12Plan derives the deterministic fault plan of one sweep cell. Crash
// victims are drawn from a cell-specific seed and crash permanently at
// times spread over the horizon, so early jobs see a healthy network and
// late jobs must route around the dead sites after the detection delay.
// Lossy cells also carry delay jitter (a lossy network is a jittery one);
// the loss-free cells stay jitter-free so the (0, 0) cell is a true
// faultless control and the (0, k) column isolates pure crash effects.
func e12Plan(seed int64, shard, crashes int, loss, horizon float64, sites int) *simnet.FaultPlan {
	jitter := 0.0
	if loss > 0 {
		jitter = 0.05
	}
	plan := &simnet.FaultPlan{
		Seed:        seed*1000 + int64(shard*10+crashes),
		Loss:        loss,
		MaxJitter:   jitter,
		DetectDelay: 2,
	}
	if crashes > 0 {
		rng := rand.New(rand.NewSource(plan.Seed + 1))
		victims := rng.Perm(sites)[:crashes]
		for i, v := range victims {
			plan.Crashes = append(plan.Crashes, simnet.Crash{
				Site: graph.NodeID(v),
				At:   horizon * float64(i+1) / float64(crashes+1),
			})
		}
	}
	return plan
}

func e12Row(env *runEnv, size Size, seed int64, shard int) ([][]any, error) {
	loss := e12Loss[shard]
	var rows [][]any
	// One topology and arrival sequence per loss level: within a shard the
	// crash column isolates the effect of dead sites on identical traffic.
	topo := graph.RandomConnected(size.sites(), 3, StdDelays, seed)
	spec := StdSpec(size.sites(), size.horizon(), seed+int64(shard*100))
	arrivals, err := ArrivalsForLoad(spec, 0.6)
	if err != nil {
		return nil, err
	}
	for _, crashes := range e12CrashCounts(size) {
		plan := e12Plan(seed, shard, crashes, loss, size.horizon(), size.sites())

		rtds, err := env.run("rtds", topo, scheme.Config{Faults: plan}, arrivals)
		if err != nil {
			return nil, err
		}
		bcast, err := env.run("broadcast", topo, scheme.Config{Faults: plan}, arrivals)
		if err != nil {
			return nil, err
		}
		fab, err := env.run("fab", topo, scheme.Config{Horizon: size.horizon(), Faults: plan}, arrivals)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []any{
			loss, crashes, rtds.GuaranteeRatio, bcast.GuaranteeRatio, fab.GuaranteeRatio,
			rtds.Core.Undecided,
			rtds.Core.RejectedByStage[core.StageEmptyACS],
			rtds.Core.RejectedByStage[core.StageValidateTimeout],
			rtds.Core.RejectedByStage[core.StageCommitTimeout],
			rtds.Core.RejectedByStage[core.StageCommit],
			rtds.Core.Dropped,
			rtds.Core.Disruptions,
		})
	}
	return rows, nil
}

func e12FaultTolerance(env *runEnv, size Size, seed int64) (*metrics.Table, error) {
	return runShardsSerially(env, size, seed, e12Shards, e12Table, e12Row)
}

// E12FaultTolerance evaluates graceful degradation under adverse network
// conditions — the operational regime of an "arbitrary wide network" that
// the clean-run experiments never exercise. A seeded fault plan injects
// per-traversal message loss, delay jitter and permanent site crashes;
// the sweep measures, per (loss rate, crash count) cell:
//
//   - the guarantee ratio of RTDS, the BroadcastSphere baseline and the
//     focused-addressing/bidding baseline on the same faulty network;
//   - how many jobs end undecided (their initiator crashed mid-protocol);
//   - the abort-stage breakdown of the defensive machinery: enrollments
//     that closed empty, validations and commits resolved by their
//     timeouts, and ordinary commit refusals;
//   - the dropped-traversal and disruption counts, tying the degradation
//     back to the injected fault intensity.
//
// Every run must terminate with all locks released (the DES would otherwise
// never drain and the run would hit the event limit): the experiment doubles
// as a liveness stress for the timeout/lease/retransmission paths.
func E12FaultTolerance(size Size, seed int64) (*metrics.Table, error) {
	return e12FaultTolerance(new(runEnv), size, seed)
}
