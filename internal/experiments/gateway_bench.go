package experiments

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/gateway"
	"repro/internal/joblog"
	"repro/internal/metrics"
)

// GatewayBench is the BENCH_suite.json "gateway" section: throughput and
// tail latency of the job-submission front door with a real write-ahead
// log (fsync batching included) and an instant in-process cluster, so the
// numbers isolate the gateway's own cost — admission, validation,
// durability — from protocol decision time.
type GatewayBench struct {
	// Jobs is the fixed workload size; CompareReports pins it exactly
	// (a changed workload needs a regenerated baseline).
	Jobs int `json:"jobs"`
	// Workers is the client concurrency of the benchmark.
	Workers int `json:"workers"`
	// SubmissionsPerSec is accepted submissions per wall-clock second.
	SubmissionsPerSec float64 `json:"submissions_per_sec"`
	// AcceptP50/AcceptP99 are percentiles of the client-observed accept
	// latency (request start to durable 202), in seconds.
	AcceptP50 float64 `json:"accept_latency_p50_seconds"`
	AcceptP99 float64 `json:"accept_latency_p99_seconds"`
	// FsyncP99 is the p99 write-ahead-log fsync batch latency in
	// seconds, and FsyncBatches the number of batches — far fewer than
	// Jobs when group commit is doing its job.
	FsyncP99     float64 `json:"joblog_fsync_p99_seconds"`
	FsyncBatches int     `json:"joblog_fsync_batches"`
}

// benchGatewayBackend accepts every submission instantly: the cluster
// cost is out of scope here.
type benchGatewayBackend struct {
	mu   sync.Mutex
	next int
}

func (b *benchGatewayBackend) Submit(at, deadline float64, graph json.RawMessage) (string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.next++
	return fmt.Sprintf("j%d@0", b.next), nil
}

func (b *benchGatewayBackend) Decisions() (map[string]gateway.BackendDecision, error) {
	return map[string]gateway.BackendDecision{}, nil
}

func (b *benchGatewayBackend) Stats() (gateway.BackendStats, error) {
	return gateway.BackendStats{ReachableSites: 1}, nil
}

const gatewayBenchJobs = 2000
const gatewayBenchWorkers = 8

// RunGatewayBench drives gatewayBenchJobs submissions through a real
// gateway (write-ahead log on the local filesystem, fsync on) from
// gatewayBenchWorkers concurrent clients and reports throughput and tail
// latencies.
func RunGatewayBench() (*GatewayBench, error) {
	dir, err := os.MkdirTemp("", "rtds-gwbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var fsyncMu sync.Mutex
	var fsyncs metrics.Sample
	srv, err := gateway.New(gateway.Options{
		Tenants: map[string]gateway.Quota{"bench": {Rate: 1e9, Burst: 1e9}},
		Backend: &benchGatewayBackend{},
		LogPath: filepath.Join(dir, "gateway.wal"),
		Log: joblog.Options{OnSync: func(d time.Duration) {
			fsyncMu.Lock()
			fsyncs.Add(d.Seconds())
			fsyncMu.Unlock()
		}},
		PollInterval: time.Hour, // the poller is idle; this bench is the submit path
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	body := `{"tenant":"bench","deadline":1000,"graph":{"name":"b","tasks":[{"id":1,"complexity":5},{"id":2,"complexity":3}],"edges":[{"from":1,"to":2,"volume":1}]}}`
	perWorker := gatewayBenchJobs / gatewayBenchWorkers
	latencies := make([][]float64, gatewayBenchWorkers)
	errs := make([]error, gatewayBenchWorkers)
	var wg sync.WaitGroup
	start := time.Now() //lint:allow wallclock -- wall-time measurement of gateway throughput; never enters simulation state
	for w := 0; w < gatewayBenchWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
				rec := httptest.NewRecorder()
				t0 := time.Now() //lint:allow wallclock -- per-request latency sample
				srv.ServeHTTP(rec, req)
				latencies[w] = append(latencies[w], time.Since(t0).Seconds()) //lint:allow wallclock -- wall-time latency sample; never enters simulation state
				if rec.Code != 202 {
					errs[w] = fmt.Errorf("gateway bench: submit status %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start).Seconds() //lint:allow wallclock -- wall-time throughput denominator; never enters simulation state
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var all metrics.Sample
	for _, worker := range latencies {
		for _, v := range worker {
			all.Add(v)
		}
	}
	fsyncMu.Lock()
	defer fsyncMu.Unlock()
	return &GatewayBench{
		Jobs:              gatewayBenchJobs,
		Workers:           gatewayBenchWorkers,
		SubmissionsPerSec: float64(gatewayBenchJobs) / wall,
		AcceptP50:         all.Percentile(50),
		AcceptP99:         all.Percentile(99),
		FsyncP99:          fsyncs.Percentile(99),
		FsyncBatches:      fsyncs.N(),
	}, nil
}
