package experiments

import "testing"

func TestRunGatewayBench(t *testing.T) {
	if testing.Short() {
		t.Skip("gateway bench drives 2000 fsynced submissions")
	}
	g, err := RunGatewayBench()
	if err != nil {
		t.Fatal(err)
	}
	if g.Jobs != gatewayBenchJobs || g.Workers != gatewayBenchWorkers {
		t.Errorf("workload shape %d/%d, want %d/%d", g.Jobs, g.Workers, gatewayBenchJobs, gatewayBenchWorkers)
	}
	if g.SubmissionsPerSec <= 0 || g.AcceptP50 <= 0 || g.AcceptP99 < g.AcceptP50 {
		t.Errorf("degenerate latency profile: %+v", g)
	}
	if g.FsyncBatches <= 0 || g.FsyncBatches >= g.Jobs {
		t.Errorf("group commit not batching: %d batches for %d jobs", g.FsyncBatches, g.Jobs)
	}
	if g.FsyncP99 <= 0 {
		t.Errorf("fsync p99 = %v, want > 0", g.FsyncP99)
	}
}
