package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/graph"
	"repro/internal/sim/par"
)

// kernelWorkers, when nonzero, routes every RTDS-core cluster the suite
// builds onto the conservative parallel kernel with that many partitions
// (core.Config.KernelWorkers). Set it once before running; the produced
// tables are byte-identical to the serial kernel's — the setting trades
// wall-clock time only. The fab/oracle baselines have no DES core and are
// unaffected.
var kernelWorkers int

// SetKernelWorkers selects the simulation kernel for subsequent suite runs:
// 0 the serial reference engine, >= 1 the parallel kernel with that many
// partitions. Call before RunTasks/All, never concurrently with a run.
func SetKernelWorkers(workers int) { kernelWorkers = workers }

// KernelWorkers reports the current suite-wide kernel selection.
func KernelWorkers() int { return kernelWorkers }

// ---------------------------------------------------------------------------
// Kernel benchmark: single-run multicore scaling (the BENCH_suite.json
// "kernel" section)

// The storm is a PHOLD-style synthetic workload sized so one run dwarfs the
// per-window barrier cost: thousands of sites, thousands of concurrent
// tokens hopping along real topology edges with the suite's delay
// distribution. Unlike the experiment tables (whose single runs are small),
// this is the regime the parallel kernel exists for — one big simulation on
// many cores.
const (
	stormSites  = 2048
	stormDegree = 4
	stormTokens = 4096
	stormHops   = 250
	stormSeed   = 42
)

// The -check gate's speedup floor: on a machine with at least
// kernelSpeedupCores cores, some sweep point with that many workers must
// reach kernelSpeedupFloor times the serial throughput. Machines with fewer
// cores still run the sweep (determinism is checked everywhere) but cannot
// express the floor, so it does not bind there.
const (
	kernelSpeedupCores = 8
	kernelSpeedupFloor = 4.0
)

// KernelPoint is one partition-count measurement of the kernel benchmark.
type KernelPoint struct {
	Workers      int     `json:"workers"`
	WallSeconds  float64 `json:"wall_seconds"`
	Events       int64   `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Speedup is EventsPerSec relative to the Workers=1 point of the same
	// run. Wall-clock, so only comparable across runs on the same hardware.
	Speedup float64 `json:"speedup"`
}

// KernelBench is the BENCH_suite.json "kernel" section: the parallel
// kernel's single-run scaling curve. Events must be identical at every
// point — the storm is deterministic and the kernel's event order is
// partition-count-independent — and CompareReports enforces it. NumCPU
// records the machine the curve was measured on, so the speedup gate only
// binds where the hardware can express it.
type KernelBench struct {
	Sites     int           `json:"sites"`
	Tokens    int           `json:"tokens"`
	Hops      int           `json:"hops"`
	NumCPU    int           `json:"num_cpu"`
	Lookahead float64       `json:"lookahead"` // at the highest partition count
	CutEdges  int           `json:"cut_edges"` // at the highest partition count
	Points    []KernelPoint `json:"points"`
}

// kernelWorkerPoints is the partition-count sweep: powers of two from 1 up
// to max(8, NumCPU). The floor of 8 keeps the curve meaningful even on
// small machines — partitions beyond the core count cost little (smaller
// per-partition heaps roughly offset the barrier), the event counts they
// pin are machine-independent, and the top point's partition always has a
// real cut (finite lookahead).
func kernelWorkerPoints() []int {
	top := runtime.NumCPU()
	if top < 8 {
		top = 8
	}
	points := []int{1}
	for p := 2; p < top; p *= 2 {
		points = append(points, p)
	}
	return append(points, top)
}

// runStorm executes the token storm on a fresh kernel with the given
// partition count and reports the events processed and the wall time.
func runStorm(topo *graph.Graph, workers int) (int64, time.Duration, error) {
	part := topo.Partition(workers)
	eng, err := par.New(part, topo.MinCrossDelay(part))
	if err != nil {
		return 0, 0, err
	}
	n := topo.Len()
	// Per-site LCG state for neighbor choice: rand-free, partition-owned
	// (only site i's execution context touches state[i]), and independent of
	// the partition count — so the full event trajectory is too.
	state := make([]uint64, n)
	var deliver func(site, remaining int)
	forward := func(from, remaining int) {
		nbs := topo.Neighbors(graph.NodeID(from))
		state[from] = state[from]*6364136223846793005 + 1442695040888963407
		e := nbs[int(state[from]>>33)%len(nbs)]
		to := int(e.To)
		eng.Schedule(from, to, eng.NowOf(from)+e.Delay, func() { deliver(to, remaining) })
	}
	deliver = func(site, remaining int) {
		if remaining > 0 {
			forward(site, remaining-1)
		}
	}
	for i := 0; i < stormTokens; i++ {
		site := i % n
		hops := stormHops
		eng.Schedule(site, site, float64(i)*1e-4, func() { deliver(site, hops) })
	}
	start := time.Now() //lint:allow wallclock -- wall-time measurement of kernel throughput; never enters simulation state
	if err := eng.Run(); err != nil {
		return 0, 0, err
	}
	//lint:allow wallclock -- wall-time measurement of kernel throughput; never enters simulation state
	return eng.Processed(), time.Since(start), nil
}

// RunKernelBench measures the parallel kernel's single-run scaling curve:
// the token storm at every partition count of kernelWorkerPoints, with the
// serial point as the speedup baseline. It also asserts the determinism
// invariant directly — every point must process exactly the same number of
// events.
func RunKernelBench() (*KernelBench, error) {
	topo := graph.RandomConnected(stormSites, stormDegree, StdDelays, stormSeed)
	points := kernelWorkerPoints()
	maxP := points[len(points)-1]
	part := topo.Partition(maxP)
	kb := &KernelBench{
		Sites:     stormSites,
		Tokens:    stormTokens,
		Hops:      stormHops,
		NumCPU:    runtime.NumCPU(),
		Lookahead: topo.MinCrossDelay(part),
		CutEdges:  topo.CutEdges(part),
	}
	var baseEvps float64
	for _, w := range points {
		events, wall, err := runStorm(topo, w)
		if err != nil {
			return nil, fmt.Errorf("kernel bench at %d workers: %w", w, err)
		}
		p := KernelPoint{Workers: w, WallSeconds: wall.Seconds(), Events: events}
		if wall > 0 {
			p.EventsPerSec = float64(events) / wall.Seconds()
		}
		if w == 1 {
			baseEvps = p.EventsPerSec
		}
		if baseEvps > 0 {
			p.Speedup = p.EventsPerSec / baseEvps
		}
		if len(kb.Points) > 0 && events != kb.Points[0].Events {
			return nil, fmt.Errorf(
				"kernel bench: %d workers processed %d events, 1 worker processed %d — determinism broken",
				w, events, kb.Points[0].Events)
		}
		kb.Points = append(kb.Points, p)
	}
	return kb, nil
}
