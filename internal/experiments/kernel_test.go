package experiments

import (
	"testing"
)

// kernelIdentityExperiments is the property-test slice of the suite: the
// load sweep (the archetypal dense-traffic experiment), the fault-injection
// experiment (lossy plans must collapse to one partition and still match)
// and churn (crash-only plans run genuinely parallel, so under -race this
// test is also the kernel's data-race probe on real protocol traffic).
var kernelIdentityExperiments = []string{
	"E1-guarantee-vs-load",
	"E12-fault-tolerance",
	"E14-churn",
}

// TestKernelWorkersByteIdentity is the tentpole invariant, tested end to
// end: for every partition count the parallel kernel must reproduce the
// serial kernel's experiment tables byte for byte, with identical event
// counts, for every seed. The partition counts cross the interesting
// boundaries: 1 (the in-line serial fast path), small composites, 8 (the
// speedup target) and 17 (more partitions than some topologies have
// sites, exercising the clamp).
func TestKernelWorkersByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("replays three experiments at six kernel settings")
	}
	defer SetKernelWorkers(KernelWorkers())
	seeds := []int64{1, 2, 3}
	var tasks []Task
	for _, s := range seeds {
		for _, n := range Suite() {
			for _, want := range kernelIdentityExperiments {
				if n.Name == want {
					tasks = append(tasks, Task{Exp: n, Seed: s})
				}
			}
		}
	}
	if len(tasks) != len(seeds)*len(kernelIdentityExperiments) {
		t.Fatalf("resolved %d tasks, want %d — experiment names drifted",
			len(tasks), len(seeds)*len(kernelIdentityExperiments))
	}

	SetKernelWorkers(0)
	serial := RunTasks(Quick, tasks, 1)
	if err := FirstError(serial); err != nil {
		t.Fatalf("serial reference run: %v", err)
	}
	for _, p := range []int{1, 2, 3, 8, 17} {
		SetKernelWorkers(p)
		got := RunTasks(Quick, tasks, 1)
		if err := FirstError(got); err != nil {
			t.Fatalf("kernel-workers=%d: %v", p, err)
		}
		for i, r := range got {
			ref := serial[i]
			if r.Events != ref.Events {
				t.Errorf("kernel-workers=%d %s@%d: %d events, serial processed %d",
					p, r.Name, r.Seed, r.Events, ref.Events)
			}
			if r.Table.String() != ref.Table.String() {
				t.Errorf("kernel-workers=%d %s@%d: table diverged from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
					p, r.Name, r.Seed, ref.Table.String(), r.Table.String())
			}
		}
	}
}
