package experiments

import (
	"bytes"
	"io"
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/core/txn"
	"repro/internal/graph"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/sim/par"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// MicroBench is one micro-benchmark row of the suite report: the hot-path
// cost model the ROADMAP's zero-allocation item is tracked by. AllocsPerOp
// is deterministic for a given Go release and gated exactly by
// CompareReports; NsPerOp and BytesPerOp are recorded for trend reading but
// never gated (wall time is hardware).
type MicroBench struct {
	Name        string  `json:"name"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
}

// RunMicroBenches measures the declared hot paths — the wire codec, the
// DES event kernel, and the reservation-plan admit path — with the testing
// package's benchmark driver. The cases mirror the //lint:hotpath roots the
// hotalloc analyzer polices, so the static gate (no unjustified allocation
// reachable from a root) and the dynamic gate (allocs/op pinned in
// BENCH_suite.json) watch the same code.
func RunMicroBenches() []MicroBench {
	return []MicroBench{
		micro("wire/encode", benchWireEncode),
		micro("wire/encode-arena", benchWireEncodeArena),
		micro("wire/append-frame", benchWireAppendFrame),
		micro("wire/decode", benchWireDecode),
		micro("wire/read-frame", benchWireReadFrame),
		micro("wire/write-batch", benchWireWriteBatch),
		micro("graph/partition", benchGraphPartition),
		micro("sim/event-loop", benchSimEventLoop),
		micro("sim/par-event-loop", benchParEventLoop),
		micro("schedule/admit-reject", benchAdmitReject),
		micro("schedule/admit-accept", benchAdmitAccept),
	}
}

func micro(name string, fn func(*testing.B)) MicroBench {
	r := testing.Benchmark(fn)
	return MicroBench{
		Name:        name,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		NsPerOp:     float64(r.NsPerOp()),
	}
}

// microPayload is the codec benchmark's frame: the routed hop-wrapper
// around an enroll-ack, a realistic mid-size steady-state message. The
// interface return type matters: it boxes the payload once here rather
// than once per benchmarked op.
func microPayload() simnet.Payload {
	return core.Routed{Src: 1, Dest: 2, TTL: 20, Inner: core.EnrollAck{
		Job: "j3@7", Member: 2, Surplus: 0.875, Power: 2,
		Dists: []txn.DistEntry{{Dest: 0, Dist: 0.05}, {Dest: 9, Dist: 1.5}},
	}}
}

func benchWireEncode(b *testing.B) {
	p := microPayload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Encode(p); err != nil {
			b.Fatal(err)
		}
	}
}

func benchWireEncodeArena(b *testing.B) {
	p := microPayload()
	var a wire.EncodeArena
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Encode(p); err != nil {
			b.Fatal(err)
		}
	}
}

func benchWireAppendFrame(b *testing.B) {
	p := microPayload()
	buf, err := wire.Encode(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = wire.AppendFrame(buf[:0], p)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchWireDecode(b *testing.B) {
	frame, err := wire.Encode(microPayload())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWireReadFrame measures the transport's per-frame stream read: the
// length prefix plus the frame body into the connection's reusable arena.
// Steady state must be allocation-free — the arena grows once to the
// largest frame and is reused, which is the whole point of pooling it.
func benchWireReadFrame(b *testing.B) {
	frame, err := wire.Encode(microPayload())
	if err != nil {
		b.Fatal(err)
	}
	const repeat = 64
	stream := bytes.Repeat(frame, repeat)
	rd := bytes.NewReader(stream)
	fr := wire.NewFrameReader(rd)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fr.Next(); err != nil {
			b.Fatal(err)
		}
		if i%repeat == repeat-1 {
			rd.Reset(stream)
			fr.Reset(rd)
		}
	}
}

// benchWireWriteBatch measures the writer's vectored batch delivery: a
// same-tick batch of frames handed to one writev, net.Buffers scratch
// reused. Steady state must be allocation-free — no coalescing copy.
func benchWireWriteBatch(b *testing.B) {
	frame, err := wire.Encode(microPayload())
	if err != nil {
		b.Fatal(err)
	}
	batch := make([][]byte, 8)
	for i := range batch {
		batch[i] = frame
	}
	var scratch net.Buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wire.WriteBatch(io.Discard, &scratch, batch); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGraphPartition measures the contiguity-preserving partitioner the
// parallel kernel and the hierarchical region layout both build on: a
// 1,024-site random topology split 32 ways. Allocations are proportional
// to the graph alone (no per-iteration growth), so the pinned count guards
// the partitioner against accidental quadratic scratch.
func benchGraphPartition(b *testing.B) {
	topo := graph.RandomConnected(1024, 4, StdDelays, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topo.Partition(32)
	}
}

// benchSimEventLoop drives the kernel with a self-rescheduling tick: one
// event fired per op, pool-recycled nodes, a single closure. Steady state
// must be allocation-free.
func benchSimEventLoop(b *testing.B) {
	e := sim.New()
	var tick func()
	tick = func() { e.AfterFixed(1, tick) }
	e.AfterFixed(1, tick)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.RunUntil(float64(b.N)); err != nil {
		b.Fatal(err)
	}
}

// benchParEventLoop is benchSimEventLoop on the parallel kernel at one
// partition (the in-line serial fast path every partition's window loop
// shares). Steady state must be allocation-free — the pool-recycle and
// shrink logic mirror the serial engine's. A P=NumCPU point would not be
// machine-independent (allocs vary with worker count and core count), so
// multicore throughput is tracked by the report's kernel section instead.
func benchParEventLoop(b *testing.B) {
	e, err := par.New(make([]int, 4), 1)
	if err != nil {
		b.Fatal(err)
	}
	var tick func()
	tick = func() { e.Schedule(0, 0, e.NowOf(0)+1, tick) }
	e.Schedule(0, 0, 1, tick)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.RunUntil(float64(b.N)); err != nil {
		b.Fatal(err)
	}
}

// benchAdmitReject measures the admission control fast-fail: a warmed plan
// refusing an infeasible batch. This is the per-message cost of saying no
// and must be allocation-free.
func benchAdmitReject(b *testing.B) {
	p := schedule.NewNonPreemptive()
	full := []schedule.Request{{Job: "a", Task: 1, Release: 0, Deadline: 10, Duration: 10}}
	tk, ok := p.Admit(0, full)
	if !ok {
		b.Fatal("setup admission rejected")
	}
	if err := p.Commit(tk); err != nil {
		b.Fatal(err)
	}
	reqs := []schedule.Request{
		{Job: "b", Task: 1, Release: 0, Deadline: 10, Duration: 5},
		{Job: "b", Task: 2, Release: 0, Deadline: 10, Duration: 5},
	}
	if _, ok := p.Admit(0, reqs); ok {
		b.Fatal("infeasible batch admitted")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.Admit(0, reqs); ok {
			b.Fatal("infeasible batch admitted")
		}
	}
}

// benchAdmitAccept measures a successful admission (ticket handed out, not
// committed, so the plan stays in steady state). The accept path allocates
// exactly the ticket it returns.
func benchAdmitAccept(b *testing.B) {
	p := schedule.NewNonPreemptive()
	reqs := []schedule.Request{
		{Job: "b", Task: 1, Release: 0, Deadline: 100, Duration: 5},
		{Job: "b", Task: 2, Release: 0, Deadline: 100, Duration: 5},
	}
	if _, ok := p.Admit(0, reqs); !ok {
		b.Fatal("feasible batch rejected")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.Admit(0, reqs); !ok {
			b.Fatal("feasible batch rejected")
		}
	}
}
