// Package experiments contains one driver per artifact the repository
// reproduces: the paper's worked example (Fig. 2–4 and Table 1, the only
// quantitative artifacts in the paper) and the synthetic evaluation suite
// E1–E10 catalogued in DESIGN.md §4.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/mapper"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// PaperExampleDAG builds the Fig. 2 task graph as reverse-engineered in
// DESIGN.md §3: tasks 1..5 with c = (6, 4, 4, 2, 5) and edges
// {1→3, 2→3, 1→4, 3→5, 4→5}.
func PaperExampleDAG() *dag.Graph {
	return dag.NewBuilder("paper-fig2").
		SetWindow(0, 66).
		AddTask(1, 6).AddTask(2, 4).AddTask(3, 4).AddTask(4, 2).AddTask(5, 5).
		AddEdge(1, 3).AddEdge(2, 3).AddEdge(1, 4).AddEdge(3, 5).AddEdge(4, 5).
		MustBuild()
}

// PaperResult bundles the reproduction of the paper's §12 example.
type PaperResult struct {
	Graph      *dag.Graph
	Mapping    *mapper.TrialMapping
	GanttS     string // Fig. 3 rendering
	GanttSStar string // Fig. 4 rendering
	Table1     *metrics.Table
}

// PaperExample reproduces §12.1–12.2: the mapper runs on the Fig. 2 DAG
// with surpluses I1 = 0.5, I2 = 0.4, ACS delay diameter ω = 3, release 0
// and deadline 66.
func PaperExample() (*PaperResult, error) {
	g := PaperExampleDAG()
	procs := []mapper.ProcInfo{{Site: 1, Surplus: 0.5}, {Site: 2, Surplus: 0.4}}
	m, err := mapper.Build(g, procs, 3, 0, 66, mapper.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: paper example mapping failed: %w", err)
	}
	res := &PaperResult{Graph: g, Mapping: m}

	var spansS, spansStar []trace.Span
	for _, id := range g.TaskIDs() {
		a := m.Assign[id]
		row := fmt.Sprintf("p%d", a.Proc+1)
		label := fmt.Sprintf("t%d", id)
		spansS = append(spansS, trace.Span{Row: row, Label: label, Start: a.Start, End: a.Finish})
		spansStar = append(spansStar, trace.Span{Row: row, Label: label, Start: a.IdealStart, End: a.IdealFinish})
	}
	res.GanttS = trace.Gantt(fmt.Sprintf("Fig. 3 — schedule S computed by the Mapper (M = %g)", m.Makespan), spansS, 66)
	res.GanttSStar = trace.Gantt(fmt.Sprintf("Fig. 4 — schedule S* at 100%% surplus (M* = %g)", m.IdealMakespan), spansStar, 66)

	tbl := metrics.NewTable("Table 1 — adjusted r(ti) and d(ti)", "ti", "ri", "di", "r(ti)", "d(ti)")
	for _, id := range g.TaskIDs() {
		a := m.Assign[id]
		tbl.AddRow(int(id), a.Start, a.Finish, m.Release[id], m.Deadline[id])
	}
	res.Table1 = tbl
	return res, nil
}

// paperExpectations pins every number the paper reports for the example.
var paperExpectations = struct {
	s, sStar map[dag.TaskID][2]float64
	rd       map[dag.TaskID][2]float64
	m, mStar float64
}{
	s: map[dag.TaskID][2]float64{
		1: {0, 12}, 2: {0, 10}, 3: {13, 21}, 4: {15, 20}, 5: {23, 33},
	},
	sStar: map[dag.TaskID][2]float64{
		1: {0, 6}, 2: {0, 4}, 3: {7, 11}, 4: {9, 11}, 5: {14, 19},
	},
	rd: map[dag.TaskID][2]float64{
		1: {0, 24}, 2: {0, 20}, 3: {24, 42}, 4: {27, 40}, 5: {43, 66},
	},
	m: 33, mStar: 19,
}

// VerifyPaperExample checks the reproduction against the paper's published
// numbers (Figs. 3–4, Table 1, M = 33, M* = 19, scaling factor 2). It
// returns nil when every value matches exactly.
func VerifyPaperExample(r *PaperResult) error {
	const eps = 1e-9
	m := r.Mapping
	if math.Abs(m.Makespan-paperExpectations.m) > eps {
		return fmt.Errorf("M = %v, paper reports 33", m.Makespan)
	}
	if math.Abs(m.IdealMakespan-paperExpectations.mStar) > eps {
		return fmt.Errorf("M* = %v, paper reports 19", m.IdealMakespan)
	}
	if m.Case != mapper.CaseScale {
		return fmt.Errorf("adjustment case %v, paper's example is case (ii)", m.Case)
	}
	for id, w := range paperExpectations.s {
		a := m.Assign[id]
		if math.Abs(a.Start-w[0]) > eps || math.Abs(a.Finish-w[1]) > eps {
			return fmt.Errorf("S(t%d) = [%v,%v], paper reports [%v,%v]", id, a.Start, a.Finish, w[0], w[1])
		}
	}
	for id, w := range paperExpectations.sStar {
		a := m.Assign[id]
		if math.Abs(a.IdealStart-w[0]) > eps || math.Abs(a.IdealFinish-w[1]) > eps {
			return fmt.Errorf("S*(t%d) = [%v,%v], paper reports [%v,%v]", id, a.IdealStart, a.IdealFinish, w[0], w[1])
		}
	}
	for id, w := range paperExpectations.rd {
		if math.Abs(m.Release[id]-w[0]) > eps {
			return fmt.Errorf("r(t%d) = %v, Table 1 reports %v", id, m.Release[id], w[0])
		}
		if math.Abs(m.Deadline[id]-w[1]) > eps {
			return fmt.Errorf("d(t%d) = %v, Table 1 reports %v", id, m.Deadline[id], w[1])
		}
	}
	return nil
}
