package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/core/policy"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// E13PolicyMatrix sweeps the policy layer's axes — sphere growth (radius),
// local acceptance (EDF vs the laxity-threshold admission), and enrollment
// redundancy (full sphere vs k-redundant fan-out) — over the topology kinds
// graph.Generate supports but the random-graph suite never exercises:
// torus, hypercube and random-geometric. One shard per topology; every row
// derives all state from (seed, topology) alone, so serial and parallel
// runs are byte-identical.
//
// What to look for: on the regular topologies (torus, hypercube) a radius
// step changes the sphere size in large quanta, so the redundancy cap is
// what separates protocol cost from guarantee quality; the laxity-threshold
// acceptance trades local admissions for distributed ones, which pays only
// where the sphere has spare surplus.
var e13Topos = []graph.TopologyKind{graph.TopoTorus, graph.TopoHypercube, graph.TopoGeometric}

// e13Combo is one cell of the policy matrix.
type e13Combo struct {
	radius int
	accept policy.Acceptance
	sphere policy.Sphere
}

func e13Combos() []e13Combo {
	var combos []e13Combo
	for _, radius := range []int{2, 3} {
		for _, accept := range []policy.Acceptance{policy.EDF{}, policy.LaxityThreshold{Theta: 0.25}} {
			for _, sphere := range []policy.Sphere{policy.FullSphere{}, policy.KRedundant{K: 6}} {
				combos = append(combos, e13Combo{radius: radius, accept: accept, sphere: sphere})
			}
		}
	}
	return combos
}

func e13Shards(Size) int { return len(e13Topos) }

func e13Table(size Size) *metrics.Table {
	return metrics.NewTable(
		fmt.Sprintf("E13 — policy matrix (~%d sites, load 0.6): sphere growth × acceptance × redundancy over torus/hypercube/geometric", size.sites()),
		"topo", "h", "accept", "enroll", "ratio", "accepted-dist", "msgs/job", "mean ACS")
}

func e13Row(env *runEnv, size Size, seed int64, shard int) ([][]any, error) {
	kind := e13Topos[shard]
	topo, err := graph.Generate(kind, size.sites(), StdDelays, seed+int64(shard))
	if err != nil {
		return nil, err
	}
	// Generators round the node count (square sides, powers of two), so the
	// workload is drawn for the realized size.
	spec := StdSpec(topo.Len(), size.horizon(), seed+int64(shard*37))
	arrivals, err := ArrivalsForLoad(spec, 0.6)
	if err != nil {
		return nil, err
	}
	var rows [][]any
	for _, combo := range e13Combos() {
		combo := combo
		sum, err := env.run("rtds", topo, tuned(func(c *core.Config) {
			c.Radius = combo.radius
			c.Policies = policy.Set{Acceptance: combo.accept, Sphere: combo.sphere}
		}), arrivals)
		if err != nil {
			return nil, fmt.Errorf("%s h=%d %s/%s: %w",
				kind, combo.radius, combo.accept.Name(), combo.sphere.Name(), err)
		}
		rows = append(rows, []any{
			string(kind), combo.radius, combo.accept.Name(), combo.sphere.Name(),
			sum.GuaranteeRatio, sum.Core.AcceptedDistributed, sum.MessagesPerJob,
			sum.Core.MeanACSSize,
		})
	}
	return rows, nil
}

func e13PolicyMatrix(env *runEnv, size Size, seed int64) (*metrics.Table, error) {
	return runShardsSerially(env, size, seed, e13Shards, e13Table, e13Row)
}

// E13PolicyMatrix runs E13 standalone.
func E13PolicyMatrix(size Size, seed int64) (*metrics.Table, error) {
	return e13PolicyMatrix(new(runEnv), size, seed)
}
