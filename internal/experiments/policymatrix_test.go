package experiments

import (
	"strings"
	"testing"
)

// TestE13PolicyMatrixInvariants runs the quick policy matrix and checks the
// structural invariants of the sweep: full coverage of the combo grid over
// all three topologies, ratios inside [0, 1], and the hard cap the
// k-redundant enrollment policy puts on the mean ACS (k members plus the
// initiator).
func TestE13PolicyMatrixInvariants(t *testing.T) {
	tbl, err := E13PolicyMatrix(Quick, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(e13Topos) * len(e13Combos())
	if tbl.NumRows() != wantRows {
		t.Fatalf("%d rows, want %d (topologies × combos)", tbl.NumRows(), wantRows)
	}
	lines := strings.Split(strings.TrimRight(tbl.String(), "\n"), "\n")
	seenTopo := map[string]int{}
	for row := 0; row < tbl.NumRows(); row++ {
		fields := strings.Fields(lines[3+row])
		seenTopo[fields[0]]++
		ratio := parse(t, tbl, row, 4)
		if ratio < 0 || ratio > 1 {
			t.Fatalf("row %d: guarantee ratio %v outside [0,1]", row, ratio)
		}
		if enroll := fields[3]; strings.HasPrefix(enroll, "k-redundant-6") {
			if acs := parse(t, tbl, row, 7); acs > 7+1e-9 {
				t.Fatalf("row %d: mean ACS %v exceeds k+1=7 under %s", row, acs, enroll)
			}
		}
	}
	for _, topo := range e13Topos {
		if seenTopo[string(topo)] != len(e13Combos()) {
			t.Fatalf("topology %s has %d rows, want %d", topo, seenTopo[string(topo)], len(e13Combos()))
		}
	}
}
