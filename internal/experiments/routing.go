package experiments

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/scheme"
	"repro/internal/workload"
)

// E15Scale: the hierarchical routing sweep — per-site routing state,
// bootstrap rounds, message cost and guarantee ratio of rtds-hier against
// flat rtds as the network grows toward thousands of sites. The flat
// protocol's per-site table is exactly one line per destination (O(n)); the
// hierarchy holds the region's exact table plus one landmark line per
// region (O(√n)), and region-local jobs resolve without a single
// cross-region protocol message. Sharded per network size: the 4,096-site
// point dwarfs the rest.

// e15FlatCap bounds the flat-RTDS comparison runs: beyond it a flat
// cluster's O(n) tables at every one of n sites cost O(n²) memory and the
// comparison column is reported analytically instead (the flat table size
// is exactly 8+16n bytes by construction).
const e15FlatCap = 1024

func e15Sizes(size Size) []int {
	if size == Full {
		return []int{256, 1024, 4096}
	}
	return []int{64, 256}
}

// e15Jobs keeps the sweep's workload a fixed job budget rather than a
// per-site rate: at 4,096 sites the experiment measures routing state and
// locality, not throughput, and a rate-scaled workload would drown the
// point in jobs.
func e15Jobs(size Size) int {
	if size == Full {
		return 192
	}
	return 48
}

func e15Shards(size Size) int { return len(e15Sizes(size)) }

func e15Table(Size) *metrics.Table {
	return metrics.NewTable(
		"E15 — hierarchical scale sweep (√n regions, fixed job budget)",
		"sites", "regions", "hier ratio", "flat ratio", "hier msgs/job", "flat msgs/job",
		"hier table B", "flat table B", "boot rounds", "xregion msgs")
}

// e15Spec is the sweep's workload: a fixed total job budget spread
// uniformly over the sites and a short horizon, standard DAG shape.
func e15Spec(n, jobs int, seed int64) workload.Spec {
	spec := StdSpec(n, 120, seed)
	spec.RatePerSite = float64(jobs) / (float64(n) * spec.Horizon)
	return spec
}

func e15Row(env *runEnv, size Size, seed int64, shard int) ([][]any, error) {
	n := e15Sizes(size)[shard]
	topo := graph.RandomConnected(n, 4, StdDelays, seed+int64(n))
	arrivals, err := workload.Generate(e15Spec(n, e15Jobs(size), seed+int64(n)))
	if err != nil {
		return nil, err
	}
	hc, err := env.runCluster("rtds-hier", topo, scheme.Config{}, arrivals)
	if err != nil {
		return nil, fmt.Errorf("rtds-hier at %d sites: %w", n, err)
	}
	hier := hc.Summarize()
	cluster := hc.(scheme.CoreBacked).Core()
	regions := cluster.Layout().Regions
	rounds := cluster.BootstrapRounds()

	// The flat comparison point: a real run below the cap, the analytic
	// table size above it (see e15FlatCap).
	flatRatio, flatMsgs := any("-"), any("-")
	flatBytes := 8 + 16*n
	if n <= e15FlatCap {
		flat, err := env.run("rtds", topo, scheme.Config{}, arrivals)
		if err != nil {
			return nil, fmt.Errorf("rtds at %d sites: %w", n, err)
		}
		flatRatio, flatMsgs = flat.GuaranteeRatio, flat.MessagesPerJob
		flatBytes = flat.Core.RoutingTableBytes
	}
	return [][]any{{n, regions, hier.GuaranteeRatio, flatRatio,
		hier.MessagesPerJob, flatMsgs,
		hier.Core.RoutingTableBytes, flatBytes, rounds,
		hier.Core.CrossRegionMessages}}, nil
}

func e15Scale(env *runEnv, size Size, seed int64) (*metrics.Table, error) {
	return runShardsSerially(env, size, seed, e15Shards, e15Table, e15Row)
}

// E15Scale runs E15 standalone.
func E15Scale(size Size, seed int64) (*metrics.Table, error) {
	return e15Scale(new(runEnv), size, seed)
}

// ---------------------------------------------------------------------------
// Routing benchmark: the BENCH_suite.json "routing" section

// routingBenchSizes are the section's fixed sweep points. Small enough for
// the PR gate to re-run, large enough that linear-vs-sublinear state growth
// is unambiguous between consecutive points.
var routingBenchSizes = []int{256, 1024}

// routingBenchSeed pins the section's topology and workload; the produced
// numbers are fully deterministic, so the gate compares them exactly.
const routingBenchSeed = 1

// RoutingPoint is one network-size measurement of the routing benchmark.
type RoutingPoint struct {
	Sites   int `json:"sites"`
	Regions int `json:"regions"`
	// TableBytes/TableEntries are the largest per-site routing-state
	// footprint across the hierarchical cluster's sites.
	TableBytes   int `json:"table_bytes"`
	TableEntries int `json:"table_entries"`
	// FlatTableBytes is the flat protocol's per-site table at the same
	// size: exactly one 16-byte line per destination plus the header.
	FlatTableBytes  int     `json:"flat_table_bytes"`
	BootstrapRounds int     `json:"bootstrap_rounds"`
	MsgsPerJob      float64 `json:"msgs_per_job"`
	GuaranteeRatio  float64 `json:"guarantee_ratio"`
	// CrossRegionMessages counts protocol messages that crossed a region
	// boundary during the run (escalations and their ACS traffic only —
	// region-local jobs contribute zero).
	CrossRegionMessages int64 `json:"cross_region_messages"`
}

// RoutingBench is the BENCH_suite.json "routing" section: the hierarchical
// routing sweep CompareReports gates — the per-site table-bytes curve must
// stay sub-linear in the site count, and msgs/job at the largest point must
// not regress against the committed baseline.
type RoutingBench struct {
	Seed   int64          `json:"seed"`
	Jobs   int            `json:"jobs_per_point"`
	Points []RoutingPoint `json:"points"`
}

// RunRoutingBench measures the rtds-hier scheme at the section's fixed
// sweep points with a fixed job budget.
func RunRoutingBench() (*RoutingBench, error) {
	const jobs = 96
	rb := &RoutingBench{Seed: routingBenchSeed, Jobs: jobs}
	env := new(runEnv)
	for _, n := range routingBenchSizes {
		topo := graph.RandomConnected(n, 4, StdDelays, routingBenchSeed+int64(n))
		arrivals, err := workload.Generate(e15Spec(n, jobs, routingBenchSeed+int64(n)))
		if err != nil {
			return nil, err
		}
		c, err := env.runCluster("rtds-hier", topo, scheme.Config{}, arrivals)
		if err != nil {
			return nil, fmt.Errorf("routing bench at %d sites: %w", n, err)
		}
		sum := c.Summarize()
		cluster := c.(scheme.CoreBacked).Core()
		rb.Points = append(rb.Points, RoutingPoint{
			Sites:               n,
			Regions:             cluster.Layout().Regions,
			TableBytes:          sum.Core.RoutingTableBytes,
			TableEntries:        sum.Core.RoutingEntries,
			FlatTableBytes:      8 + 16*n,
			BootstrapRounds:     cluster.BootstrapRounds(),
			MsgsPerJob:          sum.MessagesPerJob,
			GuaranteeRatio:      sum.GuaranteeRatio,
			CrossRegionMessages: sum.Core.CrossRegionMessages,
		})
	}
	return rb, nil
}
