package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// runEnv carries per-task instrumentation through one experiment run. Every
// cluster an experiment drives reports its discrete-event count and compute
// time here, so the suite can attribute simulation throughput (events/sec)
// to individual experiments even when many clusters run concurrently —
// busy time sums each cluster's own elapsed time, so overlapping runs
// (e.g. E2's three schemes) do not inflate the throughput metric.
type runEnv struct {
	events atomic.Int64
	busyNS atomic.Int64
}

// note accumulates one cluster run's processed-event count and elapsed time.
func (e *runEnv) note(n int64, elapsed time.Duration) {
	e.events.Add(n)
	e.busyNS.Add(int64(elapsed))
}

// Named pairs an experiment with its stable report name. Sweep experiments
// additionally describe row-level shards: independent units of work whose
// row blocks, concatenated in shard order, form exactly the table the
// whole-experiment run produces. Shards are what let the worker pool
// balance a suite whose largest experiment dwarfs the rest.
type Named struct {
	Name string
	run  func(*runEnv, Size, int64) (*metrics.Table, error)

	// Sharding; nil shards means the experiment is indivisible.
	shards    func(Size) int
	newTable  func(Size) *metrics.Table
	shardRows func(*runEnv, Size, int64, int) ([][]any, error)
}

// runShardsSerially assembles a sharded experiment's table by computing
// every shard in order — the serial reference path and the body of the
// sharded experiments' whole-run functions.
func runShardsSerially(env *runEnv, size Size, seed int64,
	shards func(Size) int, newTable func(Size) *metrics.Table,
	rows func(*runEnv, Size, int64, int) ([][]any, error)) (*metrics.Table, error) {
	tbl := newTable(size)
	for s := 0; s < shards(size); s++ {
		rs, err := rows(env, size, seed, s)
		if err != nil {
			return nil, err
		}
		for _, r := range rs {
			tbl.AddRow(r...)
		}
	}
	return tbl, nil
}

// Suite lists the full experiment suite, paper example first, in the stable
// order every report uses.
func Suite() []Named {
	return []Named{
		{Name: "paper", run: runPaperExample},
		{Name: "E1-guarantee-vs-load", run: e1GuaranteeVsLoad,
			shards: e1Shards, newTable: e1Table, shardRows: e1Row},
		{Name: "E2-messages-vs-size", run: e2MessagesVsNetworkSize,
			shards: e2Shards, newTable: e2Table, shardRows: e2Row},
		{Name: "E3-sphere-radius", run: e3SphereRadius},
		{Name: "E4-deadline-tightness", run: e4DeadlineTightness,
			shards: e4Shards, newTable: e4Table, shardRows: e4Row},
		{Name: "E5-laxity-dispatch", run: e5LaxityDispatch},
		{Name: "E6-uniform-machines", run: e6UniformMachines},
		{Name: "E7-preemption", run: e7Preemption},
		{Name: "E8-mapper-heuristics", run: e8MapperHeuristics},
		{Name: "E9-pcs-construction", run: e9PCSConstruction,
			shards: e9Shards, newTable: e9Table, shardRows: e9Row},
		{Name: "E11-data-volumes", run: e11DataVolumes,
			shards: e11Shards, newTable: e11Table, shardRows: e11Row},
		{Name: "E12-fault-tolerance", run: e12FaultTolerance,
			shards: e12Shards, newTable: e12Table, shardRows: e12Row},
		{Name: "E13-policy-matrix", run: e13PolicyMatrix,
			shards: e13Shards, newTable: e13Table, shardRows: e13Row},
		{Name: "E14-churn", run: e14Churn,
			shards: e14Shards, newTable: e14Table, shardRows: e14Row},
		{Name: "E15-scale", run: e15Scale,
			shards: e15Shards, newTable: e15Table, shardRows: e15Row},
	}
}

// runPaperExample wraps the paper's worked example (Figs. 2-4, Table 1) as a
// suite task: it recomputes the example, verifies it against the paper's
// numbers and reports Table 1.
func runPaperExample(_ *runEnv, _ Size, _ int64) (*metrics.Table, error) {
	paper, err := PaperExample()
	if err != nil {
		return nil, err
	}
	if err := VerifyPaperExample(paper); err != nil {
		return nil, fmt.Errorf("paper example mismatch: %w", err)
	}
	return paper.Table1, nil
}

// Task is one experiment×seed cell of a suite run.
type Task struct {
	Exp  Named
	Seed int64
}

// Result is one completed suite task. Results are returned in task order
// regardless of which worker finished first, so merges are deterministic.
// For sharded experiments Wall sums the task's shard walls, which can
// exceed the suite's wall clock; Busy sums each cluster simulation's own
// elapsed time, so it stays meaningful even when an experiment overlaps
// cluster runs internally (E2 drives its three schemes concurrently).
type Result struct {
	Name   string
	Seed   int64
	Table  *metrics.Table
	Wall   time.Duration
	Busy   time.Duration // summed per-cluster simulation time
	Events int64         // discrete events processed by this task's simulations
	Err    error
}

// RunTasks fans the tasks out over a worker pool and returns one Result per
// task, in task order. Sharded experiments are split into one pool unit per
// shard, so one expensive sweep point (E2 at 128 sites) does not serialize
// the suite. Every experiment draws all of its randomness from its own seed
// (per-task rand sources, no shared globals) and shard row blocks are
// merged in shard order, so the produced tables are byte-identical to a
// serial run whatever the worker count. workers <= 0 selects GOMAXPROCS.
func RunTasks(size Size, tasks []Task, workers int) []Result {
	type unit struct {
		task  int // index into tasks
		shard int // -1: run the whole experiment
	}
	var units []unit
	for ti, t := range tasks {
		if t.Exp.shards != nil && t.Exp.shards(size) > 1 {
			for s := 0; s < t.Exp.shards(size); s++ {
				units = append(units, unit{ti, s})
			}
		} else {
			units = append(units, unit{ti, -1})
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}
	type unitResult struct {
		table  *metrics.Table // whole-experiment units
		rows   [][]any        // shard units
		wall   time.Duration
		busy   time.Duration
		events int64
		err    error
	}
	uresults := make([]unitResult, len(units))
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(units) {
					return
				}
				if failed.Load() {
					// A unit already failed: don't burn minutes finishing a
					// suite whose result set is unusable anyway.
					uresults[i] = unitResult{err: errSuiteAborted}
					continue
				}
				u := units[i]
				t := tasks[u.task]
				env := new(runEnv)
				start := time.Now() //lint:allow wallclock -- wall-time measurement of suite throughput; never enters simulation state
				ur := unitResult{}
				if u.shard < 0 {
					ur.table, ur.err = t.Exp.run(env, size, t.Seed)
				} else {
					ur.rows, ur.err = t.Exp.shardRows(env, size, t.Seed, u.shard)
				}
				if ur.err != nil {
					failed.Store(true)
				}
				ur.wall = time.Since(start) //lint:allow wallclock -- wall-time measurement of suite throughput; never enters simulation state
				ur.busy = time.Duration(env.busyNS.Load())
				ur.events = env.events.Load()
				uresults[i] = ur
			}
		}()
	}
	wg.Wait()

	// Fold units back into per-task results. Units were emitted task-major
	// with ascending shard indices, so walking them in order reassembles
	// each sharded table deterministically.
	results := make([]Result, len(tasks))
	for i, t := range tasks {
		results[i] = Result{Name: t.Exp.Name, Seed: t.Seed}
		if t.Exp.shards != nil && t.Exp.shards(size) > 1 {
			results[i].Table = t.Exp.newTable(size)
		}
	}
	for ui, u := range units {
		r := &results[u.task]
		ur := uresults[ui]
		r.Wall += ur.wall
		r.Busy += ur.busy
		r.Events += ur.events
		if ur.err != nil {
			if r.Err == nil {
				r.Err = ur.err
			}
			continue
		}
		if u.shard < 0 {
			r.Table = ur.table
		} else if r.Err == nil {
			for _, row := range ur.rows {
				r.Table.AddRow(row...)
			}
		}
	}
	return results
}

// errSuiteAborted marks units skipped because an earlier unit failed. The
// underlying failure carries the diagnostic; FirstError skips these.
var errSuiteAborted = errors.New("experiments: aborted after an earlier failure")

// FirstError returns the first real failure in a result set (skipping the
// aborted-suite sentinel on units that never ran), or nil.
func FirstError(results []Result) error {
	var aborted error
	for _, r := range results {
		if r.Err == nil {
			continue
		}
		if errors.Is(r.Err, errSuiteAborted) {
			if aborted == nil {
				aborted = fmt.Errorf("%s (seed %d): %w", r.Name, r.Seed, r.Err)
			}
			continue
		}
		return fmt.Errorf("%s (seed %d): %w", r.Name, r.Seed, r.Err)
	}
	return aborted
}

// RunAll runs the entire suite for one seed on a worker pool and returns the
// tables in the same stable order All produces. workers <= 0 selects
// GOMAXPROCS; workers == 1 degenerates to a serial run.
func RunAll(size Size, seed int64, workers int) ([]*metrics.Table, error) {
	suite := Suite()
	tasks := make([]Task, len(suite))
	for i, n := range suite {
		tasks[i] = Task{Exp: n, Seed: seed}
	}
	results := RunTasks(size, tasks, workers)
	if err := FirstError(results); err != nil {
		return nil, err
	}
	tables := make([]*metrics.Table, len(results))
	for i, r := range results {
		tables[i] = r.Table
	}
	return tables, nil
}

// All runs the entire suite serially (no worker pool) and returns the tables
// in a stable order. It is the reference the parallel runner's determinism
// tests compare against; cmd/rtds-bench uses RunAll.
func All(size Size, seed int64) ([]*metrics.Table, error) {
	var tables []*metrics.Table
	for _, n := range Suite() {
		t, err := n.run(new(runEnv), size, seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", n.Name, err)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// ---------------------------------------------------------------------------
// Suite benchmark report (cmd/rtds-bench -json)

// BenchExperiment is one experiment's row in the suite benchmark report.
// WallSeconds sums the experiment's pool-unit walls; BusySeconds sums its
// cluster simulations' own elapsed times, and is the denominator of
// EventsPerSec so internally-overlapped cluster runs do not inflate the
// throughput number.
type BenchExperiment struct {
	Name            string             `json:"name"`
	Seed            int64              `json:"seed"`
	WallSeconds     float64            `json:"wall_seconds"`
	BusySeconds     float64            `json:"busy_seconds"`
	Events          int64              `json:"events"`
	EventsPerSec    float64            `json:"events_per_sec"`
	Rows            int                `json:"rows"`
	GuaranteeRatios map[string]float64 `json:"guarantee_ratios,omitempty"`
}

// BenchReport is the BENCH_suite.json schema: suite-level wall time and
// simulation throughput plus one entry per experiment×seed, in run order.
type BenchReport struct {
	Size         string            `json:"size"`
	Seeds        []int64           `json:"seeds"`
	Workers      int               `json:"workers"`
	WallSeconds  float64           `json:"wall_seconds"`
	TotalEvents  int64             `json:"total_events"`
	EventsPerSec float64           `json:"events_per_sec"`
	Experiments  []BenchExperiment `json:"experiments"`
	// Micro pins the hot-path allocation budget (see RunMicroBenches);
	// CompareReports gates allocs/op exactly, never ns/op.
	Micro []MicroBench `json:"micro,omitempty"`
	// Kernel records the parallel kernel's single-run scaling curve
	// (events/sec vs partition count on the token storm). CompareReports
	// checks its determinism invariant everywhere and its speedup floor on
	// machines with enough cores to express one.
	Kernel *KernelBench `json:"kernel,omitempty"`
	// Gateway records the submission front door's throughput and tail
	// latency (see RunGatewayBench). CompareReports pins the workload
	// shape and sanity-checks the measurements; absolute numbers are
	// hardware and never gated.
	Gateway *GatewayBench `json:"gateway,omitempty"`
	// Routing records the hierarchical routing sweep (see RunRoutingBench).
	// CompareReports requires the per-site table-bytes curve to stay
	// sub-linear in the site count and msgs/job at the largest point not to
	// regress; both are deterministic.
	Routing *RoutingBench `json:"routing,omitempty"`
}

// NewBenchReport summarizes a RunTasks result set into the JSON report.
// suiteWall is the wall-clock time of the whole run (less than the sum of
// per-task walls when workers > 1).
func NewBenchReport(size Size, seeds []int64, workers int, suiteWall time.Duration, results []Result) BenchReport {
	name := "full"
	if size == Quick {
		name = "quick"
	}
	rep := BenchReport{
		Size:        name,
		Seeds:       seeds,
		Workers:     workers,
		WallSeconds: suiteWall.Seconds(),
	}
	for _, r := range results {
		e := BenchExperiment{
			Name:        r.Name,
			Seed:        r.Seed,
			WallSeconds: r.Wall.Seconds(),
			BusySeconds: r.Busy.Seconds(),
			Events:      r.Events,
		}
		if r.Busy > 0 {
			e.EventsPerSec = float64(r.Events) / r.Busy.Seconds()
		}
		if r.Table != nil {
			e.Rows = r.Table.NumRows()
			e.GuaranteeRatios = guaranteeRatios(r.Table)
		}
		rep.TotalEvents += r.Events
		rep.Experiments = append(rep.Experiments, e)
	}
	if suiteWall > 0 {
		rep.EventsPerSec = float64(rep.TotalEvents) / suiteWall.Seconds()
	}
	return rep
}

// ratioColumns are the table headers that report guarantee ratios under
// algorithm names rather than a literal "ratio" column (E1, E4).
var ratioColumns = map[string]bool{
	"oracle": true, "rtds": true, "local-only": true,
	"broadcast": true, "fa-bidding": true,
}

// guaranteeRatios extracts the mean of every guarantee-ratio column of a
// table, keyed by column header. Tables without ratio columns yield nil.
func guaranteeRatios(t *metrics.Table) map[string]float64 {
	var out map[string]float64
	for col, h := range t.Headers {
		lower := strings.ToLower(h)
		if !ratioColumns[lower] && !strings.Contains(lower, "ratio") {
			continue
		}
		sum, n := 0.0, 0
		for row := 0; row < t.NumRows(); row++ {
			v, err := strconv.ParseFloat(t.Cell(row, col), 64)
			if err != nil {
				continue
			}
			sum += v
			n++
		}
		if n == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]float64)
		}
		out[h] = sum / float64(n)
	}
	return out
}
