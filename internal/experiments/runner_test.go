package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// renderAll flattens a table list into one string, the byte-identity unit
// the determinism tests compare.
func renderAll(tables []*metrics.Table) string {
	var sb strings.Builder
	for _, t := range tables {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestParallelSuiteDeterministicMerge: for identical seeds, the parallel
// runner must produce byte-identical tables to the serial reference,
// whatever the worker count.
func TestParallelSuiteDeterministicMerge(t *testing.T) {
	serial, err := All(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(serial)
	for _, workers := range []int{1, 8} {
		par, err := RunAll(Quick, 1, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := renderAll(par); got != want {
			t.Errorf("workers=%d: parallel tables diverge from serial run\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, want, got)
		}
	}
}

// TestRunTasksOrderAndInstrumentation: results come back in task order with
// wall time and event counts filled in for simulation-driving experiments.
func TestRunTasksOrderAndInstrumentation(t *testing.T) {
	suite := Suite()
	byName := map[string]Named{}
	for _, n := range suite {
		byName[n.Name] = n
	}
	tasks := []Task{
		{Exp: byName["E9-pcs-construction"], Seed: 1},
		{Exp: byName["paper"], Seed: 2},
		{Exp: byName["E9-pcs-construction"], Seed: 3},
	}
	results := RunTasks(Quick, tasks, 4)
	if len(results) != len(tasks) {
		t.Fatalf("%d results for %d tasks", len(results), len(tasks))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("task %d (%s): %v", i, r.Name, r.Err)
		}
		if r.Name != tasks[i].Exp.Name || r.Seed != tasks[i].Seed {
			t.Errorf("result %d is %s/seed %d, want %s/seed %d",
				i, r.Name, r.Seed, tasks[i].Exp.Name, tasks[i].Seed)
		}
		if r.Table == nil || r.Wall <= 0 {
			t.Errorf("result %d missing table or wall time: %+v", i, r)
		}
	}
	// The PCS construction experiment runs bootstrap simulations: its event
	// count must be attributed to its own task, not the neighbors.
	if results[0].Events == 0 || results[2].Events == 0 {
		t.Errorf("E9 tasks report zero events: %d, %d", results[0].Events, results[2].Events)
	}
	if results[1].Events != 0 {
		t.Errorf("paper example reports %d events, want 0 (no DES run)", results[1].Events)
	}
	// Same experiment, different seeds: identical seeds would be a wiring bug.
	if results[0].Table.String() == results[2].Table.String() {
		t.Error("different seeds produced identical E9 tables")
	}
}

// TestSameSeedSameTableAcrossWorkers re-runs one experiment concurrently
// with itself and checks the outputs are identical — the per-task rand
// sources must not interfere.
func TestSameSeedSameTableAcrossWorkers(t *testing.T) {
	e9 := Named{}
	for _, n := range Suite() {
		if n.Name == "E9-pcs-construction" {
			e9 = n
		}
	}
	tasks := []Task{{Exp: e9, Seed: 7}, {Exp: e9, Seed: 7}, {Exp: e9, Seed: 7}}
	results := RunTasks(Quick, tasks, 3)
	for i := 1; i < len(results); i++ {
		if results[i].Err != nil {
			t.Fatal(results[i].Err)
		}
		if results[i].Table.String() != results[0].Table.String() {
			t.Errorf("concurrent same-seed runs diverged:\n%s\n%s",
				results[0].Table, results[i].Table)
		}
	}
}

func TestBenchReportAggregation(t *testing.T) {
	tbl := metrics.NewTable("t", "load", "rtds", "msgs/job")
	tbl.AddRow(0.5, 0.8, 12.0)
	tbl.AddRow(1.0, 0.6, 14.0)
	results := []Result{
		{Name: "E1", Seed: 1, Table: tbl, Wall: time.Second, Busy: time.Second, Events: 1000},
		{Name: "E5", Seed: 1, Table: metrics.NewTable("x", "mode"), Wall: time.Second, Events: 0},
	}
	rep := NewBenchReport(Quick, []int64{1}, 4, 2*time.Second, results)
	if rep.Size != "quick" || rep.Workers != 4 {
		t.Fatalf("report header %+v", rep)
	}
	if rep.TotalEvents != 1000 || rep.EventsPerSec != 500 {
		t.Fatalf("events %d at %f/s, want 1000 at 500/s", rep.TotalEvents, rep.EventsPerSec)
	}
	if len(rep.Experiments) != 2 {
		t.Fatalf("%d experiments", len(rep.Experiments))
	}
	e1 := rep.Experiments[0]
	if e1.EventsPerSec != 1000 || e1.Rows != 2 {
		t.Fatalf("e1 %+v", e1)
	}
	// "rtds" is a guarantee-ratio column; "load" and "msgs/job" are not.
	if got, want := e1.GuaranteeRatios["rtds"], 0.7; got != want {
		t.Fatalf("rtds ratio %v, want %v (map %v)", got, want, e1.GuaranteeRatios)
	}
	if _, ok := e1.GuaranteeRatios["load"]; ok {
		t.Fatal("load column misclassified as guarantee ratio")
	}
	if _, ok := e1.GuaranteeRatios["msgs/job"]; ok {
		t.Fatal("msgs/job column misclassified as guarantee ratio")
	}
}
