package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/daggen"
	"repro/internal/graph"
	"repro/internal/mapper"
	"repro/internal/metrics"
	"repro/internal/scheme"
	"repro/internal/workload"
)

// Size selects experiment scale: quick sizes for tests, full sizes for the
// benchmark harness and cmd/rtds-bench.
type Size int

const (
	// Quick shrinks networks and horizons so the whole suite runs in
	// seconds; trends remain visible but noisier.
	Quick Size = iota
	// Full is the EXPERIMENTS.md configuration.
	Full
)

func (s Size) sites() int {
	if s == Quick {
		return 16
	}
	return 32
}

func (s Size) horizon() float64 {
	if s == Quick {
		return 150
	}
	return 400
}

// StdDelays are the link delays used throughout the suite: small relative
// to task durations (0.5–5), as in a loosely coupled LAN/WAN where protocol
// latency matters but does not dominate execution. Exported so the CLIs
// draw the same workload shape instead of re-hardcoding it.
var StdDelays = graph.DelayRange{Min: 0.05, Max: 0.3}

// StdSpec is the suite's common workload shape; callers override
// rate/tightness (the CLIs reuse it so “the suite's workload” means one
// thing).
func StdSpec(sites int, horizon float64, seed int64) workload.Spec {
	return workload.Spec{
		Sites:       sites,
		Horizon:     horizon,
		RatePerSite: 0.02,
		TaskSize:    8,
		Params:      daggen.Params{MinComplexity: 0.5, MaxComplexity: 5},
		Tightness:   2.5,
		Seed:        seed,
	}
}

// runCluster builds a named scheme from the registry, drives a full run
// over an arrival sequence and records the simulation's event count against
// the enclosing suite task. The cluster is returned for experiments that
// read scheme-specific metrics (bootstrap cost, sphere sizes).
func (env *runEnv) runCluster(name string, topo *graph.Graph, cfg scheme.Config, arrivals []workload.Arrival) (scheme.Cluster, error) {
	if cfg.KernelWorkers == 0 {
		// Suite-wide kernel selection (SetKernelWorkers): every RTDS-core
		// cluster runs on the parallel kernel, byte-identical tables.
		cfg.KernelWorkers = kernelWorkers
	}
	start := time.Now() //lint:allow wallclock -- events/sec accounting for the CI bench gate; never enters simulation state
	c, err := scheme.MustGet(name).Build(topo, cfg)
	if err != nil {
		return nil, err
	}
	for _, a := range arrivals {
		if err := c.Submit(a.At, a.Origin, a.Graph, a.Deadline); err != nil {
			return nil, err
		}
	}
	err = c.Run()
	//lint:allow wallclock -- events/sec accounting for the CI bench gate; never enters simulation state
	env.note(c.EventsProcessed(), time.Since(start))
	if err != nil {
		return nil, err
	}
	return c, nil
}

// run is runCluster plus the summary — the shape most experiments need.
func (env *runEnv) run(name string, topo *graph.Graph, cfg scheme.Config, arrivals []workload.Arrival) (scheme.Result, error) {
	c, err := env.runCluster(name, topo, cfg, arrivals)
	if err != nil {
		return scheme.Result{}, err
	}
	return c.Summarize(), nil
}

// tuned is shorthand for a scheme.Config that only overrides the core
// configuration (the common case in sweeps).
func tuned(tune func(*core.Config)) scheme.Config {
	return scheme.Config{Tune: tune}
}

// ArrivalsForLoad draws a workload whose offered load approximates `load`.
func ArrivalsForLoad(spec workload.Spec, load float64) ([]workload.Arrival, error) {
	work := workload.ExpectedWorkPerJob(spec, 200)
	spec.RatePerSite = workload.RateForLoad(load, work)
	return workload.Generate(spec)
}

// E1GuaranteeVsLoad: guarantee ratio as offered load grows, RTDS vs
// LocalOnly vs BroadcastSphere vs Focused-Addressing/Bidding. Sharded per
// load point: every row derives all state from (seed, load) alone.
var e1Loads = []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2}

func e1Shards(Size) int { return len(e1Loads) }

func e1Table(size Size) *metrics.Table {
	return metrics.NewTable(
		fmt.Sprintf("E1 — guarantee ratio vs offered load (%d sites, h=3, tightness 2.5)", size.sites()),
		"load", "oracle", "rtds", "local-only", "broadcast", "fa-bidding")
}

func e1Row(env *runEnv, size Size, seed int64, shard int) ([][]any, error) {
	load := e1Loads[shard]
	topo := graph.RandomConnected(size.sites(), 3, StdDelays, seed)
	spec := StdSpec(size.sites(), size.horizon(), seed+int64(load*100))
	arrivals, err := ArrivalsForLoad(spec, load)
	if err != nil {
		return nil, err
	}
	rtds, err := env.run("rtds", topo, scheme.Config{}, arrivals)
	if err != nil {
		return nil, err
	}
	local, err := env.run("local", topo, scheme.Config{}, arrivals)
	if err != nil {
		return nil, err
	}
	bcast, err := env.run("broadcast", topo, scheme.Config{}, arrivals)
	if err != nil {
		return nil, err
	}
	fab, err := env.run("fab", topo, scheme.Config{Horizon: size.horizon()}, arrivals)
	if err != nil {
		return nil, err
	}
	oracle, err := env.run("oracle", topo, scheme.Config{}, arrivals)
	if err != nil {
		return nil, err
	}
	return [][]any{{load, oracle.GuaranteeRatio, rtds.GuaranteeRatio,
		local.GuaranteeRatio, bcast.GuaranteeRatio, fab.GuaranteeRatio}}, nil
}

func e1GuaranteeVsLoad(env *runEnv, size Size, seed int64) (*metrics.Table, error) {
	return runShardsSerially(env, size, seed, e1Shards, e1Table, e1Row)
}

// E2MessagesVsNetworkSize: communication cost per job as the network grows —
// the paper's central claim: spheres keep traffic bounded while broadcast
// schemes scale with N. Sharded per network size — the 128-site point costs
// orders of magnitude more than the 8-site point, so row-level fan-out is
// what lets the pool balance the suite.
func e2Sizes(size Size) []int {
	if size == Full {
		return []int{8, 16, 32, 64, 128}
	}
	return []int{8, 16, 32}
}

func e2Shards(size Size) int { return len(e2Sizes(size)) }

func e2Table(Size) *metrics.Table {
	return metrics.NewTable(
		"E2 — messages per job vs network size (load 0.6, h=2)",
		"sites", "rtds msgs/job", "broadcast msgs/job", "fa-bidding msgs/job", "rtds ratio", "broadcast ratio")
}

func e2Row(env *runEnv, size Size, seed int64, shard int) ([][]any, error) {
	n := e2Sizes(size)[shard]
	topo := graph.RandomConnected(n, 3, StdDelays, seed+int64(n))
	spec := StdSpec(n, size.horizon(), seed+int64(n))
	arrivals, err := ArrivalsForLoad(spec, 0.6)
	if err != nil {
		return nil, err
	}
	// The three schemes are independent simulations over the same arrival
	// sequence; at 128 sites the broadcast run alone costs seconds, so run
	// them concurrently instead of back to back — otherwise this one shard
	// bounds the whole suite's parallel wall time.
	var rtds, bcast, fab scheme.Result
	errs := make([]error, 3)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		// h=2 keeps the sphere well below the network size at every point
		// of the sweep, which is the regime the paper's locality argument
		// addresses.
		rtds, errs[0] = env.run("rtds", topo, tuned(func(c *core.Config) { c.Radius = 2 }), arrivals)
	}()
	go func() {
		defer wg.Done()
		bcast, errs[1] = env.run("broadcast", topo, scheme.Config{}, arrivals)
	}()
	go func() {
		defer wg.Done()
		fab, errs[2] = env.run("fab", topo, scheme.Config{Horizon: size.horizon()}, arrivals)
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return [][]any{{n, rtds.MessagesPerJob, bcast.MessagesPerJob, fab.MessagesPerJob,
		rtds.GuaranteeRatio, bcast.GuaranteeRatio}}, nil
}

func e2MessagesVsNetworkSize(env *runEnv, size Size, seed int64) (*metrics.Table, error) {
	return runShardsSerially(env, size, seed, e2Shards, e2Table, e2Row)
}

// E3SphereRadius: the locality trade-off of the Computing Sphere concept.
func e3SphereRadius(env *runEnv, size Size, seed int64) (*metrics.Table, error) {
	topo := graph.RandomConnected(size.sites(), 3, StdDelays, seed)
	spec := StdSpec(size.sites(), size.horizon(), seed)
	arrivals, err := ArrivalsForLoad(spec, 0.8)
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable(
		fmt.Sprintf("E3 — sphere radius trade-off (%d sites, load 0.8)", size.sites()),
		"h", "ratio", "msgs/job", "mean ACS", "bootstrap msgs")
	for h := 1; h <= 5; h++ {
		h := h
		c, err := env.runCluster("rtds", topo, tuned(func(cc *core.Config) { cc.Radius = h }), arrivals)
		if err != nil {
			return nil, fmt.Errorf("h=%d: %w", h, err)
		}
		sum := c.Summarize()
		bootMsgs, _ := c.(scheme.Bootstrapper).BootstrapCost()
		tbl.AddRow(h, sum.GuaranteeRatio, sum.MessagesPerJob, sum.Core.MeanACSSize, bootMsgs)
	}
	return tbl, nil
}

// E4DeadlineTightness: admission quality of the window adjustment
// (eqs. 3–5) as deadlines tighten. Sharded per tightness point.
var e4Tightness = []float64{1.2, 1.5, 2, 3, 4, 6}

func e4Shards(Size) int { return len(e4Tightness) }

func e4Table(size Size) *metrics.Table {
	return metrics.NewTable(
		fmt.Sprintf("E4 — guarantee ratio vs deadline tightness (%d sites, load 0.6)", size.sites()),
		"tightness", "rtds", "local-only")
}

func e4Row(env *runEnv, size Size, seed int64, shard int) ([][]any, error) {
	tight := e4Tightness[shard]
	topo := graph.RandomConnected(size.sites(), 3, StdDelays, seed)
	spec := StdSpec(size.sites(), size.horizon(), seed+int64(tight*10))
	spec.Tightness = tight
	arrivals, err := ArrivalsForLoad(spec, 0.6)
	if err != nil {
		return nil, err
	}
	rtds, err := env.run("rtds", topo, scheme.Config{}, arrivals)
	if err != nil {
		return nil, err
	}
	local, err := env.run("local", topo, scheme.Config{}, arrivals)
	if err != nil {
		return nil, err
	}
	return [][]any{{tight, rtds.GuaranteeRatio, local.GuaranteeRatio}}, nil
}

func e4DeadlineTightness(env *runEnv, size Size, seed int64) (*metrics.Table, error) {
	return runShardsSerially(env, size, seed, e4Shards, e4Table, e4Row)
}

// E5LaxityDispatch: §13's busyness-weighted laxity scattering vs the
// uniform ℓ of §12.2. The policy only acts in case (iii), so this
// experiment drives the mapper directly on windows forced between M* and M
// and measures (a) how often the adjusted windows stay self-consistent and
// (b) how much slack tasks on the busiest processor receive — the quantity
// the weighted variant is designed to increase.
func e5LaxityDispatch(env *runEnv, size Size, seed int64) (*metrics.Table, error) {
	trials := 300
	if size == Full {
		trials = 2000
	}
	procs := []mapper.ProcInfo{
		{Site: 0, Surplus: 0.9},
		{Site: 1, Surplus: 0.6},
		{Site: 2, Surplus: 0.25},
	}
	busiest := 2 // index of the lowest-surplus processor
	tbl := metrics.NewTable(
		fmt.Sprintf("E5 — laxity dispatching in case (iii), %d random DAGs", trials),
		"mode", "case-iii", "consistent", "busy-proc slack", "idle-proc slack")
	for _, mode := range []mapper.LaxityMode{mapper.LaxityUniform, mapper.LaxityBusynessWeighted} {
		caseIII, consistent := 0, 0
		var busySlack, idleSlack metrics.Sample
		for trial := 0; trial < trials; trial++ {
			g := daggen.Layered(4+trial%4, 3, 0.25,
				daggen.Params{MinComplexity: 1, MaxComplexity: 6}, seed+int64(trial))
			// Probe with a loose window to learn M and M*.
			probe, err := mapper.Build(g, procs, 1, 0, 1e9, mapper.Options{LaxityMode: mode})
			if err != nil {
				continue
			}
			if probe.Makespan <= probe.IdealMakespan+1e-9 {
				continue // cases (ii) and (iii) coincide, nothing to measure
			}
			// Force case (iii): window strictly between M* and M.
			d := probe.IdealMakespan + 0.6*(probe.Makespan-probe.IdealMakespan)
			m, err := mapper.Build(g, procs, 1, 0, d, mapper.Options{LaxityMode: mode})
			if err != nil {
				if err == mapper.ErrInconsistentWindows {
					caseIII++
				}
				continue
			}
			if m.Case != mapper.CaseLaxity {
				continue
			}
			caseIII++
			consistent++
			for _, id := range g.TaskIDs() {
				a := m.Assign[id]
				slack := (m.Deadline[id] - m.Release[id]) - (a.IdealFinish - a.IdealStart)
				if m.Procs[a.Proc].Site == procs[busiest].Site {
					busySlack.Add(slack)
				} else {
					idleSlack.Add(slack)
				}
			}
		}
		rate := 0.0
		if caseIII > 0 {
			rate = float64(consistent) / float64(caseIII)
		}
		tbl.AddRow(mode.String(), caseIII, rate, busySlack.Mean(), idleSlack.Mean())
	}
	return tbl, nil
}

// E6UniformMachines: the §13 related-machines extension — heterogeneous
// computing powers with the same aggregate capacity.
func e6UniformMachines(env *runEnv, size Size, seed int64) (*metrics.Table, error) {
	topo := graph.RandomConnected(size.sites(), 3, StdDelays, seed)
	spec := StdSpec(size.sites(), size.horizon(), seed)
	arrivals, err := ArrivalsForLoad(spec, 0.7)
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable(
		"E6 — identical vs uniform (related) machines, equal aggregate capacity",
		"machines", "ratio", "accepted-dist")

	identical, err := env.run("rtds", topo, scheme.Config{}, arrivals)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("identical", identical.GuaranteeRatio, identical.Core.AcceptedDistributed)

	// Heterogeneous powers in [0.5, 1.5], normalized to mean 1.
	rng := rand.New(rand.NewSource(seed + 7))
	powers := make([]float64, size.sites())
	var sum float64
	for i := range powers {
		powers[i] = 0.5 + rng.Float64()
		sum += powers[i]
	}
	for i := range powers {
		powers[i] *= float64(len(powers)) / sum
	}
	hetero, err := env.run("rtds", topo, tuned(func(c *core.Config) { c.Powers = powers }), arrivals)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("uniform(0.5-1.5x)", hetero.GuaranteeRatio, hetero.Core.AcceptedDistributed)
	return tbl, nil
}

// E7Preemption: the §13 preemptive case against the non-preemptive default.
func e7Preemption(env *runEnv, size Size, seed int64) (*metrics.Table, error) {
	topo := graph.RandomConnected(size.sites(), 3, StdDelays, seed)
	spec := StdSpec(size.sites(), size.horizon(), seed)
	spec.Tightness = 1.8
	arrivals, err := ArrivalsForLoad(spec, 0.8)
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable(
		"E7 — preemptive vs non-preemptive local scheduler (tightness 1.8, load 0.8)",
		"scheduler", "ratio", "accepted-local", "accepted-dist")
	for _, pre := range []bool{false, true} {
		pre := pre
		sum, err := env.run("rtds", topo, tuned(func(c *core.Config) { c.Preemptive = pre }), arrivals)
		if err != nil {
			return nil, err
		}
		name := "non-preemptive"
		if pre {
			name = "preemptive-EDF"
		}
		tbl.AddRow(name, sum.GuaranteeRatio, sum.Core.AcceptedLocal, sum.Core.AcceptedDistributed)
	}
	return tbl, nil
}

// E8MapperHeuristics: §9 says "almost any heuristic can be adapted"; this
// ablation compares the paper's CP-EFT instance with two naive selectors.
func e8MapperHeuristics(env *runEnv, size Size, seed int64) (*metrics.Table, error) {
	topo := graph.RandomConnected(size.sites(), 3, StdDelays, seed)
	spec := StdSpec(size.sites(), size.horizon(), seed)
	arrivals, err := ArrivalsForLoad(spec, 0.8)
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable(
		"E8 — mapper heuristic ablation (load 0.8)",
		"heuristic", "ratio", "accepted-dist", "msgs/job")
	for _, h := range []mapper.Heuristic{mapper.HeuristicCPEFT, mapper.HeuristicMinMin,
		mapper.HeuristicBestSurplus, mapper.HeuristicRoundRobin} {
		h := h
		sum, err := env.run("rtds", topo, tuned(func(c *core.Config) { c.Heuristic = h }), arrivals)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(h.String(), sum.GuaranteeRatio, sum.Core.AcceptedDistributed, sum.MessagesPerJob)
	}
	return tbl, nil
}

// E11DataVolumes: the §13 data-volume extension — guarantee ratio as
// transfers become more expensive relative to computation. Every DAG edge
// carries a volume; the x axis is the mean transfer time vol/throughput in
// units of mean task duration. Sharded per CCR point.
var e11CCRs = []float64{0, 0.25, 0.5, 1, 2}

func e11Shards(Size) int { return len(e11CCRs) }

func e11Table(size Size) *metrics.Table {
	return metrics.NewTable(
		fmt.Sprintf("E11 — data volumes (%d sites, load 0.6): transfer cost vs guarantee ratio", size.sites()),
		"transfer/compute", "ratio", "accepted-dist", "bytes/job")
}

func e11Row(env *runEnv, size Size, seed int64, shard int) ([][]any, error) {
	ccr := e11CCRs[shard]
	topo := graph.RandomConnected(size.sites(), 3, StdDelays, seed)
	spec := StdSpec(size.sites(), size.horizon(), seed+int64(ccr*100))
	arrivals, err := ArrivalsForLoad(spec, 0.6)
	if err != nil {
		return nil, err
	}
	// Decorate every job's edges with volumes so that, at throughput 1,
	// the mean transfer time is ccr x the mean task complexity.
	meanC := (spec.Params.MinComplexity + spec.Params.MaxComplexity) / 2
	decorated := make([]workload.Arrival, len(arrivals))
	for i, a := range arrivals {
		decorated[i] = a
		decorated[i].Graph = withVolumes(a.Graph, ccr*meanC, seed+int64(i))
	}
	sum, err := env.run("rtds", topo, tuned(func(c *core.Config) {
		if ccr > 0 {
			c.Throughput = 1
		}
	}), decorated)
	if err != nil {
		return nil, err
	}
	bytesPerJob := 0.0
	if sum.Jobs > 0 {
		bytesPerJob = float64(sum.Bytes) / float64(sum.Jobs)
	}
	return [][]any{{ccr, sum.GuaranteeRatio, sum.Core.AcceptedDistributed, bytesPerJob}}, nil
}

func e11DataVolumes(env *runEnv, size Size, seed int64) (*metrics.Table, error) {
	return runShardsSerially(env, size, seed, e11Shards, e11Table, e11Row)
}

// withVolumes rebuilds a DAG with every edge carrying a volume drawn
// uniformly from [0.5, 1.5] x meanVol.
func withVolumes(g *dag.Graph, meanVol float64, seed int64) *dag.Graph {
	if meanVol <= 0 {
		return g
	}
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder(g.Name + "+vol")
	for _, t := range g.Tasks() {
		b.AddLabeledTask(t.ID, t.Complexity, t.Label)
	}
	for _, id := range g.TaskIDs() {
		for _, s := range g.Successors(id) {
			b.AddDataEdge(id, s, meanVol*(0.5+rng.Float64()))
		}
	}
	return b.MustBuild()
}

// E9PCSConstruction: the one-time cost of the interrupted distance-vector
// bootstrap (§7) as a function of radius and network size. Sharded per
// network size; each shard contributes the four radius rows of its size.
func e9Sizes(size Size) []int {
	if size == Full {
		return []int{16, 32, 64, 128}
	}
	return []int{16, 32}
}

func e9Shards(size Size) int { return len(e9Sizes(size)) }

func e9Table(Size) *metrics.Table {
	return metrics.NewTable(
		"E9 — PCS construction cost (messages = rounds × 2|E|)",
		"sites", "h", "rounds", "messages", "bytes", "mean sphere")
}

func e9Row(env *runEnv, size Size, seed int64, shard int) ([][]any, error) {
	n := e9Sizes(size)[shard]
	topo := graph.RandomConnected(n, 3, StdDelays, seed+int64(n))
	var rows [][]any
	for _, h := range []int{1, 2, 3, 4} {
		h := h
		// No arrivals: the experiment measures the bootstrap alone.
		c, err := env.runCluster("rtds", topo, tuned(func(cc *core.Config) { cc.Radius = h }), nil)
		if err != nil {
			return nil, err
		}
		msgs, bytes := c.(scheme.Bootstrapper).BootstrapCost()
		cluster := c.(scheme.CoreBacked).Core()
		var sphereSum float64
		for id := 0; id < n; id++ {
			sphereSum += float64(len(cluster.SiteSphere(graph.NodeID(id))))
		}
		rows = append(rows, []any{n, h, 2*h - 1, msgs, bytes, sphereSum / float64(n)})
	}
	return rows, nil
}

func e9PCSConstruction(env *runEnv, size Size, seed int64) (*metrics.Table, error) {
	return runShardsSerially(env, size, seed, e9Shards, e9Table, e9Row)
}

// ---------------------------------------------------------------------------
// Exported experiment entry points. Each wrapper runs the experiment with
// fresh instrumentation; the suite runner invokes the env-taking variants
// directly so it can attribute events/sec per task.

// E1GuaranteeVsLoad runs E1 standalone.
func E1GuaranteeVsLoad(size Size, seed int64) (*metrics.Table, error) {
	return e1GuaranteeVsLoad(new(runEnv), size, seed)
}

// E2MessagesVsNetworkSize runs E2 standalone.
func E2MessagesVsNetworkSize(size Size, seed int64) (*metrics.Table, error) {
	return e2MessagesVsNetworkSize(new(runEnv), size, seed)
}

// E3SphereRadius runs E3 standalone.
func E3SphereRadius(size Size, seed int64) (*metrics.Table, error) {
	return e3SphereRadius(new(runEnv), size, seed)
}

// E4DeadlineTightness runs E4 standalone.
func E4DeadlineTightness(size Size, seed int64) (*metrics.Table, error) {
	return e4DeadlineTightness(new(runEnv), size, seed)
}

// E5LaxityDispatch runs E5 standalone.
func E5LaxityDispatch(size Size, seed int64) (*metrics.Table, error) {
	return e5LaxityDispatch(new(runEnv), size, seed)
}

// E6UniformMachines runs E6 standalone.
func E6UniformMachines(size Size, seed int64) (*metrics.Table, error) {
	return e6UniformMachines(new(runEnv), size, seed)
}

// E7Preemption runs E7 standalone.
func E7Preemption(size Size, seed int64) (*metrics.Table, error) {
	return e7Preemption(new(runEnv), size, seed)
}

// E8MapperHeuristics runs E8 standalone.
func E8MapperHeuristics(size Size, seed int64) (*metrics.Table, error) {
	return e8MapperHeuristics(new(runEnv), size, seed)
}

// E9PCSConstruction runs E9 standalone.
func E9PCSConstruction(size Size, seed int64) (*metrics.Table, error) {
	return e9PCSConstruction(new(runEnv), size, seed)
}

// E11DataVolumes runs E11 standalone.
func E11DataVolumes(size Size, seed int64) (*metrics.Table, error) {
	return e11DataVolumes(new(runEnv), size, seed)
}
