package gateway

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/determinism"
)

// Quota is one tenant's admission envelope: a token-bucket rate limit on
// submissions plus a cap on jobs in flight (accepted by the gateway but
// not yet decided by the cluster).
type Quota struct {
	// Rate is the sustained submission rate in jobs/second refilling the
	// token bucket.
	Rate float64 `json:"rate"`
	// Burst is the bucket capacity: how many submissions can arrive
	// back-to-back before the rate limit bites.
	Burst float64 `json:"burst"`
	// MaxInflight caps concurrently undecided jobs; 0 means unlimited.
	MaxInflight int `json:"max_inflight"`
}

// Validate rejects quotas the token bucket cannot operate on.
func (q Quota) Validate() error {
	if q.Rate <= 0 {
		return fmt.Errorf("rate must be > 0, got %v", q.Rate)
	}
	if q.Burst < 1 {
		return fmt.Errorf("burst must be >= 1, got %v", q.Burst)
	}
	if q.MaxInflight < 0 {
		return fmt.Errorf("inflight must be >= 0, got %d", q.MaxInflight)
	}
	return nil
}

// ParseTenants parses the -tenants flag: semicolon-separated tenant
// clauses, each "name:rate=R,burst=B,inflight=N". Burst defaults to
// max(rate, 1) and inflight to unlimited when omitted:
//
//	acme:rate=50,burst=100,inflight=200;zeta:rate=10
func ParseTenants(spec string) (map[string]Quota, error) {
	out := make(map[string]Quota)
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, params, found := strings.Cut(clause, ":")
		name = strings.TrimSpace(name)
		if !found || name == "" {
			return nil, fmt.Errorf("tenant clause %q is not name:rate=...", clause)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("tenant %q declared twice", name)
		}
		var q Quota
		for _, kv := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("tenant %q: parameter %q is not key=value", name, kv)
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("tenant %q: parameter %q: %v", name, kv, err)
			}
			switch key {
			case "rate":
				q.Rate = f
			case "burst":
				q.Burst = f
			case "inflight":
				q.MaxInflight = int(f)
			default:
				return nil, fmt.Errorf("tenant %q: unknown parameter %q", name, key)
			}
		}
		if q.Burst == 0 {
			q.Burst = math.Max(q.Rate, 1)
		}
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("tenant %q: %v", name, err)
		}
		out[name] = q
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tenant spec %q declares no tenants", spec)
	}
	return out, nil
}

// Decision is the outcome of one admission check.
type Decision struct {
	// OK reports whether the submission may proceed.
	OK bool
	// Reason labels the rejection for metrics and the error body:
	// "rate", "quota" or "laxity". Empty when OK.
	Reason string
	// RetryAfter is the client back-off hint behind the Retry-After
	// header: for rate rejections the time until a token refills, for
	// laxity rejections the observed p99 decision latency (the earliest
	// moment a retry could plausibly meet its deadline).
	RetryAfter time.Duration
}

// tenantState is one tenant's live admission state. Tokens refill lazily
// on each check from the elapsed wall time, so there is no refill ticker.
type tenantState struct {
	quota    Quota
	tokens   float64
	last     time.Time
	inflight int
}

// Admitter applies per-tenant quotas and the cluster-laxity gate. It is
// safe for concurrent use by HTTP handlers.
type Admitter struct {
	mu      sync.Mutex
	tenants map[string]*tenantState
	now     func() time.Time // injectable for tests

	// p99 is the cluster's observed decision latency in seconds, fed by
	// the decision poller. A submission whose relative deadline is below
	// laxityFactor×p99 is refused: the protocol would spend the job's
	// whole laxity deciding, and the surplus-based offer phase would
	// reject it anyway after burning cluster messages.
	p99          float64
	laxityFactor float64
}

// NewAdmitter builds an admitter over the given tenant quotas. The clock
// defaults to time.Now; tests override it via SetClock.
func NewAdmitter(quotas map[string]Quota) *Admitter {
	a := &Admitter{
		tenants:      make(map[string]*tenantState, len(quotas)),
		now:          time.Now,
		laxityFactor: 1.0,
	}
	for name, q := range quotas {
		a.tenants[name] = &tenantState{quota: q, tokens: q.Burst}
	}
	return a
}

// SetClock replaces the wall clock (tests only).
func (a *Admitter) SetClock(now func() time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.now = now
	for _, t := range a.tenants {
		t.last = time.Time{} // restart lazy refill under the new clock
	}
}

// ObserveDecisionLatency feeds the laxity gate with the cluster's current
// p99 decision latency in seconds.
func (a *Admitter) ObserveDecisionLatency(p99 float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.p99 = p99
}

// Known reports whether the tenant has a declared quota.
func (a *Admitter) Known(tenant string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.tenants[tenant]
	return ok
}

// Tenants lists the declared tenant names in sorted order.
func (a *Admitter) Tenants() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return determinism.SortedKeys(a.tenants)
}

// Quota returns the tenant's declared quota (zero value when unknown).
func (a *Admitter) Quota(tenant string) Quota {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t, ok := a.tenants[tenant]; ok {
		return t.quota
	}
	return Quota{}
}

// Inflight reports the tenant's current undecided-job count.
func (a *Admitter) Inflight(tenant string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t, ok := a.tenants[tenant]; ok {
		return t.inflight
	}
	return 0
}

// Admit checks one submission with relative deadline deadline (seconds)
// against the tenant's token bucket, its inflight cap and the cluster
// laxity gate. On success a token and an inflight slot are consumed; the
// caller must Release the slot once the job is decided (or was never
// durably accepted).
func (a *Admitter) Admit(tenant string, deadline float64) Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.tenants[tenant]
	if !ok {
		return Decision{Reason: "unknown"}
	}

	// Laxity gate first: it does not depend on this tenant's budget, and
	// refusing here must not burn a token the client will need when the
	// cluster drains.
	if a.p99 > 0 && deadline < a.laxityFactor*a.p99 {
		return Decision{Reason: "laxity", RetryAfter: secondsToDuration(a.p99)}
	}

	now := a.now()
	if !t.last.IsZero() {
		t.tokens = math.Min(t.quota.Burst, t.tokens+now.Sub(t.last).Seconds()*t.quota.Rate)
	}
	t.last = now

	if t.quota.MaxInflight > 0 && t.inflight >= t.quota.MaxInflight {
		// Inflight drains on cluster decisions; the observed p99 is the
		// best available estimate of when a slot frees up.
		wait := a.p99
		if wait <= 0 {
			wait = 1
		}
		return Decision{Reason: "quota", RetryAfter: secondsToDuration(wait)}
	}
	if t.tokens < 1 {
		wait := (1 - t.tokens) / t.quota.Rate
		return Decision{Reason: "rate", RetryAfter: secondsToDuration(wait)}
	}
	t.tokens--
	t.inflight++
	return Decision{OK: true}
}

// Release frees one inflight slot, after a decision or a failed accept.
func (a *Admitter) Release(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t, ok := a.tenants[tenant]; ok && t.inflight > 0 {
		t.inflight--
	}
}

// Restore re-occupies an inflight slot without consuming a token, used
// when replaying undecided jobs from the write-ahead log after a restart.
func (a *Admitter) Restore(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t, ok := a.tenants[tenant]; ok {
		t.inflight++
	}
}

// secondsToDuration converts a seconds value to a Duration, rounding up
// to 1s so Retry-After (an integer-seconds header) never says "0".
func secondsToDuration(s float64) time.Duration {
	d := time.Duration(s * float64(time.Second))
	if d < time.Second {
		return time.Second
	}
	return d
}
