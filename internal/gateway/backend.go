package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Backend is the gateway's view of the RTDS cluster: submit a job, poll
// decisions, read scheduling statistics. The production implementation is
// HTTPBackend over the rtds-node control API; tests substitute fakes.
type Backend interface {
	// Submit forwards one job and returns the cluster-assigned job ID
	// (e.g. "j3@7" — the @site suffix names the owning site).
	Submit(at, deadline float64, graph json.RawMessage) (clusterID string, err error)
	// Decisions reports the decision state of every cluster job, keyed by
	// cluster job ID.
	Decisions() (map[string]BackendDecision, error)
	// Stats aggregates scheduling statistics across the reachable sites.
	Stats() (BackendStats, error)
}

// BackendDecision is one cluster job's decision state.
type BackendDecision struct {
	// Outcome is the cluster outcome name: "pending", "accepted-local",
	// "accepted-distributed" or "rejected".
	Outcome string
	// Latency is the decision latency in virtual seconds (decision time
	// minus arrival); 0 while pending.
	Latency float64
}

// Decided reports whether the cluster has reached a verdict.
func (d BackendDecision) Decided() bool {
	return d.Outcome != "" && d.Outcome != "pending"
}

// Accepted reports whether the verdict guarantees the deadline.
func (d BackendDecision) Accepted() bool {
	return strings.HasPrefix(d.Outcome, "accepted")
}

// BackendStats is the slice of cluster statistics the gateway's
// backpressure logic consumes.
type BackendStats struct {
	// DecisionLatencyP99 is the worst observed p99 decision latency
	// across sites, in virtual seconds. Feeds the laxity gate.
	DecisionLatencyP99 float64
	// ReachableSites counts sites that answered the stats poll.
	ReachableSites int
}

// HTTPBackend talks to a set of rtds-node control APIs, round-robining
// submissions and failing over to the next site when one is unreachable.
type HTTPBackend struct {
	bases  []string // site base URLs, e.g. "http://127.0.0.1:8400"
	client *http.Client
	next   atomic.Int64
}

// NewHTTPBackend builds a backend over the given node control-API base
// URLs (scheme://host:port, no trailing slash).
func NewHTTPBackend(bases []string, timeout time.Duration) (*HTTPBackend, error) {
	if len(bases) == 0 {
		return nil, fmt.Errorf("gateway: no backend nodes configured")
	}
	cleaned := make([]string, len(bases))
	for i, b := range bases {
		b = strings.TrimRight(strings.TrimSpace(b), "/")
		if !strings.Contains(b, "://") {
			b = "http://" + b
		}
		cleaned[i] = b
	}
	return &HTTPBackend{bases: cleaned, client: &http.Client{Timeout: timeout}}, nil
}

// Submit implements Backend: POST /submit on the next healthy site.
func (b *HTTPBackend) Submit(at, deadline float64, graph json.RawMessage) (string, error) {
	body, err := json.Marshal(map[string]any{"at": at, "deadline": deadline, "graph": graph})
	if err != nil {
		return "", err
	}
	var lastErr error
	for range b.bases {
		base := b.bases[int(b.next.Add(1)-1)%len(b.bases)]
		resp, err := b.client.Post(base+"/submit", "application/json", strings.NewReader(string(body)))
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("%s/submit: %s: %s", base, resp.Status, strings.TrimSpace(string(data)))
			// 400s are payload errors every site will agree on; only
			// availability errors (503 bootstrapping, timeouts) fail over.
			if resp.StatusCode == http.StatusBadRequest {
				return "", lastErr
			}
			continue
		}
		var reply struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(data, &reply); err != nil || reply.ID == "" {
			lastErr = fmt.Errorf("%s/submit: malformed reply %q", base, data)
			continue
		}
		return reply.ID, nil
	}
	return "", fmt.Errorf("gateway: all %d sites failed, last: %w", len(b.bases), lastErr)
}

// Decisions implements Backend: merge GET /jobs across all sites. Cluster
// job IDs carry an @site suffix, so the merged map has no collisions. A
// site that is down contributes nothing; an error is returned only when
// no site answered.
func (b *HTTPBackend) Decisions() (map[string]BackendDecision, error) {
	out := make(map[string]BackendDecision)
	reached := 0
	var lastErr error
	for _, base := range b.bases {
		var reply struct {
			Jobs []struct {
				ID         string  `json:"id"`
				Outcome    string  `json:"outcome"`
				Arrival    float64 `json:"arrival"`
				DecisionAt float64 `json:"decision_at"`
			} `json:"jobs"`
		}
		if err := b.getJSON(base+"/jobs", &reply); err != nil {
			lastErr = err
			continue
		}
		reached++
		for _, j := range reply.Jobs {
			d := BackendDecision{Outcome: j.Outcome}
			if d.Decided() {
				d.Latency = j.DecisionAt - j.Arrival
			}
			out[j.ID] = d
		}
	}
	if reached == 0 {
		return nil, fmt.Errorf("gateway: no site answered /jobs: %w", lastErr)
	}
	return out, nil
}

// Stats implements Backend: max p99 across reachable sites.
func (b *HTTPBackend) Stats() (BackendStats, error) {
	var out BackendStats
	var lastErr error
	for _, base := range b.bases {
		var reply struct {
			P99 float64 `json:"decision_latency_p99"`
		}
		if err := b.getJSON(base+"/stats", &reply); err != nil {
			lastErr = err
			continue
		}
		out.ReachableSites++
		if reply.P99 > out.DecisionLatencyP99 {
			out.DecisionLatencyP99 = reply.P99
		}
	}
	if out.ReachableSites == 0 {
		return out, fmt.Errorf("gateway: no site answered /stats: %w", lastErr)
	}
	return out, nil
}

func (b *HTTPBackend) getJSON(url string, v any) error {
	resp, err := b.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(v)
}
