// Package gateway is the cluster's production front door: an HTTP job
// submission API (cmd/rtds-gateway) in front of the rtds-node control
// planes.
//
// A submission (POST /v1/jobs) passes four gates before it is acked:
//
//  1. payload validation — the DAG must parse (dag JSON schema) and must
//     survive the wire codec (a job too large for wire.MaxFrame is
//     refused at the door, not deep inside the commit phase);
//  2. tenant admission — a per-tenant token bucket (rate/burst) and an
//     inflight cap, configured by -tenants;
//  3. laxity backpressure — when the job's relative deadline is below
//     the cluster's observed p99 decision latency the gateway answers
//     429 with Retry-After, because the protocol's surplus-based offer
//     phase would reject the job anyway after burning cluster messages;
//  4. durability — the submission is appended to a write-ahead job log
//     (internal/joblog) and fsynced before the 202 ack leaves.
//
// Once acked, a job survives gateway crashes: on restart the log is
// replayed, undecided jobs re-enter the cluster, and clients can keep
// polling GET /v1/jobs/{id}. Forwarding is at-least-once — a crash
// between the cluster accepting a submission and the Forwarded record
// reaching disk makes the job run twice in the cluster; clients that
// need exactly-once semantics supply a client_key, which dedupes retries
// of the same logical job at the gateway.
package gateway

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/determinism"
	"repro/internal/joblog"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// Job states, exposed in the /v1/jobs/{id} reply.
const (
	// StateQueued means the job is durable in the log but not yet in the
	// cluster (the forward failed; the poller retries).
	StateQueued = "queued"
	// StateForwarded means the cluster holds the job and the gateway is
	// polling for its decision.
	StateForwarded = "forwarded"
	// StateDecided means the cluster reached a verdict (see Outcome).
	StateDecided = "decided"
)

// SubmitRequest is the body of POST /v1/jobs.
type SubmitRequest struct {
	// Tenant names the quota bucket; must be declared in -tenants.
	Tenant string `json:"tenant"`
	// ClientKey is an optional idempotency key: retries of the same
	// (tenant, client_key) return the original job instead of submitting
	// a duplicate.
	ClientKey string `json:"client_key,omitempty"`
	// At is the virtual arrival time (0 = now), forwarded to the node.
	At float64 `json:"at,omitempty"`
	// Deadline is the relative deadline in virtual seconds.
	Deadline float64 `json:"deadline"`
	// Graph is the job DAG in the dag package's JSON schema.
	Graph json.RawMessage `json:"graph"`
}

// Job is the gateway's record of one accepted submission, returned by
// POST /v1/jobs and GET /v1/jobs/{id}.
type Job struct {
	// ID is the gateway-assigned durable ID ("g17"), stable across
	// restarts.
	ID string `json:"id"`
	// Tenant is the submitting tenant.
	Tenant string `json:"tenant"`
	// ClusterID is the cluster-assigned job ID ("j3@7"), empty while
	// queued.
	ClusterID string `json:"cluster_id,omitempty"`
	// State is StateQueued, StateForwarded or StateDecided.
	State string `json:"state"`
	// Outcome is the cluster verdict once decided ("accepted-local",
	// "accepted-distributed", "rejected").
	Outcome string `json:"outcome,omitempty"`
	// Deadline echoes the submission's relative deadline.
	Deadline float64 `json:"deadline"`
	// DecisionLatency is the cluster-reported decision latency in
	// virtual seconds, once decided.
	DecisionLatency float64 `json:"decision_latency,omitempty"`

	clientKey  string
	graph      json.RawMessage
	at         float64
	acceptedAt time.Time
}

// TenantStats is the GET /v1/tenants/{t}/stats reply.
type TenantStats struct {
	// Tenant is the tenant name.
	Tenant string `json:"tenant"`
	// Quota echoes the configured admission envelope.
	Quota Quota `json:"quota"`
	// Inflight is the current number of undecided jobs.
	Inflight int `json:"inflight"`
	// Submitted counts durably accepted submissions (incl. replays).
	Submitted int `json:"submitted"`
	// Accepted counts cluster-accepted decisions.
	Accepted int `json:"accepted"`
	// Rejected counts cluster-rejected decisions.
	Rejected int `json:"rejected"`
	// RateLimited counts 429s from the token bucket.
	RateLimited int `json:"rate_limited"`
	// QuotaLimited counts 429s from the inflight cap.
	QuotaLimited int `json:"quota_limited"`
	// LaxityLimited counts 429s from the laxity gate.
	LaxityLimited int `json:"laxity_limited"`
	// Duplicates counts idempotent client_key replays.
	Duplicates int `json:"duplicates"`
}

// Options configures a gateway Server.
type Options struct {
	// Tenants maps tenant name to admission quota; required, see
	// ParseTenants.
	Tenants map[string]Quota
	// Backend is the cluster connection; required.
	Backend Backend
	// LogPath is the write-ahead job log file; required. The file is
	// created if absent and replayed if present.
	LogPath string
	// Log tunes the write-ahead log (fsync batching, failpoints).
	Log joblog.Options
	// PollInterval is the decision/stats poll period (default 200ms).
	PollInterval time.Duration
}

// Server is the gateway HTTP front door. Create with New, serve via
// ServeHTTP, stop with Close.
type Server struct {
	backend Backend
	adm     *Admitter
	log     *joblog.Log
	m       *gwMetrics
	mux     *http.ServeMux
	poll    time.Duration

	mu          sync.Mutex
	jobs        map[string]*Job   // by gateway ID
	byClientKey map[string]string // tenant+"\x00"+key -> gateway ID
	byClusterID map[string]string // cluster ID -> gateway ID
	tstats      map[string]*TenantStats
	seq         uint64

	stop chan struct{}
	done sync.WaitGroup
}

// New opens (and replays) the write-ahead log, restores undecided jobs
// and starts the decision poller. Callers must Close the server to stop
// the poller and release the log.
func New(opts Options) (*Server, error) {
	if len(opts.Tenants) == 0 {
		return nil, fmt.Errorf("gateway: no tenants configured")
	}
	if opts.Backend == nil {
		return nil, fmt.Errorf("gateway: no backend configured")
	}
	if opts.LogPath == "" {
		return nil, fmt.Errorf("gateway: no job-log path configured")
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 200 * time.Millisecond
	}

	s := &Server{
		backend:     opts.Backend,
		adm:         NewAdmitter(opts.Tenants),
		m:           newGWMetrics(),
		poll:        opts.PollInterval,
		jobs:        make(map[string]*Job),
		byClientKey: make(map[string]string),
		byClusterID: make(map[string]string),
		tstats:      make(map[string]*TenantStats),
		stop:        make(chan struct{}),
	}
	for name, q := range opts.Tenants {
		s.tstats[name] = &TenantStats{Tenant: name, Quota: q}
	}

	logOpts := opts.Log
	userOnSync := logOpts.OnSync
	logOpts.OnSync = func(d time.Duration) {
		s.m.fsyncLatency.Observe(d.Seconds())
		if userOnSync != nil {
			userOnSync(d)
		}
	}
	l, records, err := joblog.Open(opts.LogPath, logOpts)
	if err != nil {
		return nil, fmt.Errorf("gateway: open job log: %w", err)
	}
	s.log = l
	s.restore(records)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ready")
	})
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/stats", s.handleTenantStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)

	s.done.Add(1)
	go s.pollLoop()
	return s, nil
}

// restore rebuilds in-memory state from the replayed log records.
// Undecided jobs re-occupy their tenant's inflight slot and are pushed
// back toward the cluster by the poller (queued jobs are re-submitted;
// forwarded jobs are re-polled).
func (s *Server) restore(records []joblog.Record) {
	rep := joblog.Summarize(records)
	s.seq = rep.NextSeq
	for _, rj := range rep.Jobs {
		sub := rj.Submitted
		j := &Job{
			ID:        sub.ID,
			Tenant:    sub.Tenant,
			ClusterID: rj.ClusterID,
			Deadline:  sub.Deadline,
			clientKey: sub.ClientKey,
			graph:     sub.Graph,
			at:        sub.At,
		}
		switch {
		case rj.Outcome != "":
			j.State = StateDecided
			j.Outcome = rj.Outcome
		case rj.ClusterID != "":
			j.State = StateForwarded
		default:
			j.State = StateQueued
		}
		s.jobs[j.ID] = j
		if j.clientKey != "" {
			s.byClientKey[clientKeyIndex(j.Tenant, j.clientKey)] = j.ID
		}
		if j.ClusterID != "" {
			s.byClusterID[j.ClusterID] = j.ID
		}
		ts := s.tenantStats(j.Tenant)
		ts.Submitted++
		switch {
		case j.State != StateDecided:
			s.adm.Restore(j.Tenant)
			s.m.inflight.With(j.Tenant).Inc()
			s.m.replayed.Inc()
		case isAccepted(j.Outcome):
			ts.Accepted++
		default:
			ts.Rejected++
		}
	}
}

// tenantStats returns (creating if needed) the per-tenant counters.
// Callers hold s.mu or run before the server is shared.
func (s *Server) tenantStats(tenant string) *TenantStats {
	ts, ok := s.tstats[tenant]
	if !ok {
		ts = &TenantStats{Tenant: tenant, Quota: s.adm.Quota(tenant)}
		s.tstats[tenant] = ts
	}
	return ts
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the poller and closes the write-ahead log. The final log
// flush is synchronous: a clean shutdown loses nothing.
func (s *Server) Close() error {
	close(s.stop)
	s.done.Wait()
	return s.log.Close()
}

// MetricsText renders the current /metrics exposition (tests, debugging).
func (s *Server) MetricsText() string { return s.m.reg.Expose() }

// ---------------------------------------------------------------------------
// handlers

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.reject(w, req.Tenant, "invalid", http.StatusBadRequest, "bad request body: "+err.Error(), 0)
		return
	}
	if !s.adm.Known(req.Tenant) {
		s.reject(w, req.Tenant, "unknown", http.StatusForbidden,
			fmt.Sprintf("unknown tenant %q", req.Tenant), 0)
		return
	}
	if req.Deadline <= 0 {
		s.reject(w, req.Tenant, "invalid", http.StatusBadRequest, "deadline must be > 0", 0)
		return
	}

	// Validate the DAG against both codecs at the door: the dag JSON
	// schema (what the node API re-parses) and the wire codec (what the
	// commit phase ships between sites — a job that cannot fit in a
	// wire frame must not enter the cluster).
	g, err := dag.UnmarshalGraph(req.Graph)
	if err != nil {
		s.reject(w, req.Tenant, "invalid", http.StatusBadRequest, "bad graph: "+err.Error(), 0)
		return
	}
	if _, err := wire.Encode(core.CommitMsg{Job: "probe", Graph: g}); err != nil {
		s.reject(w, req.Tenant, "invalid", http.StatusRequestEntityTooLarge,
			"graph exceeds wire limits: "+err.Error(), 0)
		return
	}

	// Idempotent retry: same (tenant, client_key) returns the original.
	if req.ClientKey != "" {
		s.mu.Lock()
		if id, ok := s.byClientKey[clientKeyIndex(req.Tenant, req.ClientKey)]; ok {
			j := *s.jobs[id]
			s.tenantStats(req.Tenant).Duplicates++
			s.mu.Unlock()
			s.m.submissions.With(req.Tenant, "duplicate").Inc()
			writeJSON(w, http.StatusOK, j)
			return
		}
		s.mu.Unlock()
	}

	dec := s.adm.Admit(req.Tenant, req.Deadline)
	if !dec.OK {
		s.countLimited(req.Tenant, dec.Reason)
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(dec.RetryAfter.Seconds()))))
		s.reject(w, req.Tenant, "rejected_"+dec.Reason, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q over %s limit", req.Tenant, dec.Reason), dec.RetryAfter.Seconds())
		return
	}

	s.mu.Lock()
	s.seq++
	j := &Job{
		ID:        fmt.Sprintf("g%d", s.seq),
		Tenant:    req.Tenant,
		State:     StateQueued,
		Deadline:  req.Deadline,
		clientKey: req.ClientKey,
		graph:     req.Graph,
		at:        req.At,
	}
	rec := joblog.Record{
		Type:      joblog.TypeSubmitted,
		ID:        j.ID,
		Seq:       s.seq,
		Tenant:    j.Tenant,
		ClientKey: j.clientKey,
		At:        j.at,
		Deadline:  j.Deadline,
		Graph:     j.graph,
	}
	s.mu.Unlock()

	// Durability gate: the 202 ack must not leave before the Submitted
	// record is fsynced. Append group-commits, so concurrent submissions
	// share one fsync.
	if err := s.log.Append(rec); err != nil {
		s.adm.Release(req.Tenant)
		s.reject(w, req.Tenant, "error", http.StatusInternalServerError,
			"job log write failed: "+err.Error(), 0)
		return
	}
	s.m.joblogRecords.Inc()

	s.mu.Lock()
	s.jobs[j.ID] = j
	if j.clientKey != "" {
		s.byClientKey[clientKeyIndex(j.Tenant, j.clientKey)] = j.ID
	}
	s.tenantStats(j.Tenant).Submitted++
	s.mu.Unlock()
	s.m.inflight.With(j.Tenant).Inc()
	s.m.submissions.With(j.Tenant, "accepted").Inc()

	// Forward inline; a failure leaves the job queued for the poller.
	if clusterID, err := s.backend.Submit(j.at, j.Deadline, j.graph); err != nil {
		s.m.backendErrors.Inc()
	} else {
		s.recordForwarded(j.ID, clusterID)
	}

	s.mu.Lock()
	reply := *s.jobs[j.ID]
	s.jobs[j.ID].acceptedAt = start
	s.mu.Unlock()
	s.m.acceptLatency.Observe(time.Since(start).Seconds())
	writeJSON(w, http.StatusAccepted, reply)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var reply Job
	if ok {
		reply = *j
	}
	s.mu.Unlock()
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

func (s *Server) handleTenantStats(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	if !s.adm.Known(tenant) {
		http.Error(w, "no such tenant", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	reply := *s.tenantStats(tenant)
	s.mu.Unlock()
	reply.Inflight = s.adm.Inflight(tenant)
	writeJSON(w, http.StatusOK, reply)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.ContentType)
	s.m.reg.WriteTo(w)
}

// reject writes an error reply and counts it against the tenant's
// submissions metric (unknown tenants land on the "unknown" label).
func (s *Server) reject(w http.ResponseWriter, tenant, result string, code int, msg string, retryAfter float64) {
	label := tenant
	if !s.adm.Known(tenant) {
		label = "unknown"
	}
	s.m.submissions.With(label, result).Inc()
	body := map[string]any{"error": msg, "result": result}
	if retryAfter > 0 {
		body["retry_after_seconds"] = math.Ceil(retryAfter)
	}
	writeJSON(w, code, body)
}

func (s *Server) countLimited(tenant, reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenantStats(tenant)
	switch reason {
	case "rate":
		ts.RateLimited++
	case "quota":
		ts.QuotaLimited++
	case "laxity":
		ts.LaxityLimited++
	}
}

// ---------------------------------------------------------------------------
// forwarding and decision polling

// recordForwarded marks a job as held by the cluster and logs the
// Forwarded record. The log append is after the cluster accepted the
// submission — a crash in between replays the submission (at-least-once,
// see the package comment).
func (s *Server) recordForwarded(gatewayID, clusterID string) {
	s.mu.Lock()
	j, ok := s.jobs[gatewayID]
	if !ok || j.State != StateQueued {
		s.mu.Unlock()
		return
	}
	j.State = StateForwarded
	j.ClusterID = clusterID
	s.byClusterID[clusterID] = gatewayID
	s.mu.Unlock()
	if err := s.log.Append(joblog.Record{
		Type: joblog.TypeForwarded, ID: gatewayID, Tenant: j.Tenant, ClusterID: clusterID,
	}); err == nil {
		s.m.joblogRecords.Inc()
	}
}

// pollLoop drives everything asynchronous: re-submitting queued jobs,
// harvesting cluster decisions and refreshing the laxity gate.
func (s *Server) pollLoop() {
	defer s.done.Done()
	ticker := time.NewTicker(s.poll)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.pollOnce()
		}
	}
}

// pollOnce runs one poller iteration; exported to tests via PollNow.
func (s *Server) pollOnce() {
	if st, err := s.backend.Stats(); err == nil {
		s.adm.ObserveDecisionLatency(st.DecisionLatencyP99)
		s.m.clusterLaxity.Set(st.DecisionLatencyP99)
	} else {
		s.m.backendErrors.Inc()
	}

	// Re-submit queued jobs (failed forwards, replayed submissions).
	s.mu.Lock()
	var queued []*Job
	for _, id := range determinism.SortedKeys(s.jobs) {
		if j := s.jobs[id]; j.State == StateQueued {
			queued = append(queued, j)
		}
	}
	s.mu.Unlock()
	for _, j := range queued {
		if clusterID, err := s.backend.Submit(j.at, j.Deadline, j.graph); err != nil {
			s.m.backendErrors.Inc()
		} else {
			s.recordForwarded(j.ID, clusterID)
		}
	}

	decisions, err := s.backend.Decisions()
	if err != nil {
		s.m.backendErrors.Inc()
		return
	}
	s.mu.Lock()
	var decided []*Job
	for _, clusterID := range determinism.SortedKeys(s.byClusterID) {
		j := s.jobs[s.byClusterID[clusterID]]
		if j.State != StateForwarded {
			continue
		}
		d, ok := decisions[clusterID]
		if !ok || !d.Decided() {
			continue
		}
		j.State = StateDecided
		j.Outcome = d.Outcome
		j.DecisionLatency = d.Latency
		ts := s.tenantStats(j.Tenant)
		if isAccepted(d.Outcome) {
			ts.Accepted++
		} else {
			ts.Rejected++
		}
		decided = append(decided, j)
	}
	s.mu.Unlock()
	for _, j := range decided {
		s.adm.Release(j.Tenant)
		s.m.inflight.With(j.Tenant).Dec()
		s.m.decisions.With(j.Tenant, j.Outcome).Inc()
		if !j.acceptedAt.IsZero() {
			s.m.decideLatency.Observe(time.Since(j.acceptedAt).Seconds())
		}
		if err := s.log.Append(joblog.Record{
			Type: joblog.TypeDecided, ID: j.ID, Tenant: j.Tenant,
			ClusterID: j.ClusterID, Outcome: j.Outcome, DecisionLatency: j.DecisionLatency,
		}); err == nil {
			s.m.joblogRecords.Inc()
		}
	}
}

// PollNow runs one synchronous poller iteration (tests and shutdown
// drains); the background loop keeps its own cadence.
func (s *Server) PollNow() { s.pollOnce() }

func isAccepted(outcome string) bool {
	return outcome == "accepted-local" || outcome == "accepted-distributed"
}

func clientKeyIndex(tenant, key string) string { return tenant + "\x00" + key }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
