package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/joblog"
	"repro/internal/metrics"
)

// fakeBackend is an in-memory cluster: submissions are assigned cluster
// IDs, decisions are scripted by the test.
type fakeBackend struct {
	mu        sync.Mutex
	next      int
	jobs      map[string]BackendDecision
	failNext  int // Submit errors for this many calls
	p99       float64
	submitted int
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{jobs: make(map[string]BackendDecision)}
}

func (f *fakeBackend) Submit(at, deadline float64, graph json.RawMessage) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failNext > 0 {
		f.failNext--
		return "", fmt.Errorf("cluster down")
	}
	f.next++
	f.submitted++
	id := fmt.Sprintf("j%d@0", f.next)
	f.jobs[id] = BackendDecision{Outcome: "pending"}
	return id, nil
}

func (f *fakeBackend) Decisions() (map[string]BackendDecision, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]BackendDecision, len(f.jobs))
	for k, v := range f.jobs {
		out[k] = v
	}
	return out, nil
}

func (f *fakeBackend) Stats() (BackendStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return BackendStats{DecisionLatencyP99: f.p99, ReachableSites: 1}, nil
}

func (f *fakeBackend) decideAll(outcome string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for k := range f.jobs {
		f.jobs[k] = BackendDecision{Outcome: outcome, Latency: 2.5}
	}
}

const testGraph = `{"name":"t","tasks":[{"id":1,"complexity":5}],"edges":[]}`

func newTestServer(t *testing.T, backend Backend, quotas map[string]Quota, logPath string) *Server {
	t.Helper()
	if quotas == nil {
		quotas = map[string]Quota{"acme": {Rate: 1000, Burst: 1000, MaxInflight: 0}}
	}
	if logPath == "" {
		logPath = filepath.Join(t.TempDir(), "gateway.wal")
	}
	s, err := New(Options{
		Tenants: quotas, Backend: backend, LogPath: logPath,
		Log:          joblog.Options{BatchDelay: 100 * time.Microsecond},
		PollInterval: time.Hour, // tests drive the poller with PollNow
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func submit(t *testing.T, s *Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	resp := w.Result()
	var reply map[string]any
	json.NewDecoder(resp.Body).Decode(&reply)
	return resp, reply
}

func TestSubmitLifecycle(t *testing.T) {
	fb := newFakeBackend()
	s := newTestServer(t, fb, nil, "")

	resp, reply := submit(t, s, `{"tenant":"acme","deadline":40,"graph":`+testGraph+`}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %v %v", resp.Status, reply)
	}
	id := reply["id"].(string)
	if reply["state"] != StateForwarded {
		t.Fatalf("state = %v, want forwarded", reply["state"])
	}

	fb.decideAll("accepted-distributed")
	s.PollNow()

	req := httptest.NewRequest("GET", "/v1/jobs/"+id, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	var j Job
	json.NewDecoder(w.Result().Body).Decode(&j)
	if j.State != StateDecided || j.Outcome != "accepted-distributed" {
		t.Fatalf("after decision: %+v", j)
	}
	if j.DecisionLatency != 2.5 {
		t.Errorf("decision latency = %v, want 2.5", j.DecisionLatency)
	}

	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/v1/tenants/acme/stats", nil))
	var ts TenantStats
	json.NewDecoder(w.Result().Body).Decode(&ts)
	if ts.Submitted != 1 || ts.Accepted != 1 || ts.Inflight != 0 {
		t.Errorf("tenant stats: %+v", ts)
	}
}

// The admission table: each row is one scripted request against a gateway
// whose tenant budget and cluster state are pinned, asserting status code,
// rejection reason and Retry-After presence.
func TestAdmissionTable(t *testing.T) {
	cases := []struct {
		name       string
		quotas     map[string]Quota
		p99        float64 // cluster decision latency fed to the laxity gate
		prime      int     // accepted submissions before the probe
		body       string
		wantStatus int
		wantResult string
		wantRetry  bool
	}{
		{
			name:       "accepted",
			body:       `{"tenant":"acme","deadline":40,"graph":` + testGraph + `}`,
			wantStatus: http.StatusAccepted,
		},
		{
			name:       "unknown tenant",
			body:       `{"tenant":"ghost","deadline":40,"graph":` + testGraph + `}`,
			wantStatus: http.StatusForbidden,
			wantResult: "unknown",
		},
		{
			name:       "missing deadline",
			body:       `{"tenant":"acme","graph":` + testGraph + `}`,
			wantStatus: http.StatusBadRequest,
			wantResult: "invalid",
		},
		{
			name:       "malformed graph",
			body:       `{"tenant":"acme","deadline":40,"graph":{"tasks":"nope"}}`,
			wantStatus: http.StatusBadRequest,
			wantResult: "invalid",
		},
		{
			name:       "rate limited",
			quotas:     map[string]Quota{"acme": {Rate: 0.001, Burst: 2}},
			prime:      2, // drains the burst
			body:       `{"tenant":"acme","deadline":40,"graph":` + testGraph + `}`,
			wantStatus: http.StatusTooManyRequests,
			wantResult: "rejected_rate",
			wantRetry:  true,
		},
		{
			name:       "inflight quota",
			quotas:     map[string]Quota{"acme": {Rate: 1000, Burst: 1000, MaxInflight: 3}},
			prime:      3, // undecided, so they occupy the cap
			body:       `{"tenant":"acme","deadline":40,"graph":` + testGraph + `}`,
			wantStatus: http.StatusTooManyRequests,
			wantResult: "rejected_quota",
			wantRetry:  true,
		},
		{
			name:       "laxity backpressure",
			p99:        50, // cluster takes ~50 virtual units to decide
			body:       `{"tenant":"acme","deadline":10,"graph":` + testGraph + `}`,
			wantStatus: http.StatusTooManyRequests,
			wantResult: "rejected_laxity",
			wantRetry:  true,
		},
		{
			name:       "ample laxity passes the gate",
			p99:        50,
			body:       `{"tenant":"acme","deadline":200,"graph":` + testGraph + `}`,
			wantStatus: http.StatusAccepted,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fb := newFakeBackend()
			fb.p99 = tc.p99
			s := newTestServer(t, fb, tc.quotas, "")
			if tc.p99 > 0 {
				s.PollNow() // feed the laxity gate
			}
			for i := 0; i < tc.prime; i++ {
				resp, reply := submit(t, s, `{"tenant":"acme","deadline":40,"graph":`+testGraph+`}`)
				if resp.StatusCode != http.StatusAccepted {
					t.Fatalf("prime %d: %v %v", i, resp.Status, reply)
				}
			}
			resp, reply := submit(t, s, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %v, want %d (%v)", resp.Status, tc.wantStatus, reply)
			}
			if tc.wantResult != "" && reply["result"] != tc.wantResult {
				t.Errorf("result = %v, want %v", reply["result"], tc.wantResult)
			}
			if tc.wantRetry && resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		})
	}
}

func TestClientKeyIdempotence(t *testing.T) {
	fb := newFakeBackend()
	s := newTestServer(t, fb, nil, "")
	body := `{"tenant":"acme","client_key":"order-77","deadline":40,"graph":` + testGraph + `}`

	resp1, r1 := submit(t, s, body)
	resp2, r2 := submit(t, s, body)
	if resp1.StatusCode != http.StatusAccepted || resp2.StatusCode != http.StatusOK {
		t.Fatalf("statuses: %v then %v", resp1.Status, resp2.Status)
	}
	if r1["id"] != r2["id"] {
		t.Errorf("retry minted a new job: %v vs %v", r1["id"], r2["id"])
	}
	if fb.submitted != 1 {
		t.Errorf("cluster saw %d submissions, want 1", fb.submitted)
	}
}

// A SIGKILL between the ack and the cluster decision must lose nothing:
// reopening the same log replays the undecided jobs into the cluster.
func TestRestartReplaysUndecided(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "gateway.wal")
	fb := newFakeBackend()
	fb.failNext = 1000 // cluster unreachable: everything stays queued

	s := newTestServer(t, fb, nil, logPath)
	var ids []string
	for i := 0; i < 5; i++ {
		resp, reply := submit(t, s, `{"tenant":"acme","deadline":40,"graph":`+testGraph+`}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %v", i, resp.Status)
		}
		ids = append(ids, reply["id"].(string))
	}
	// "SIGKILL": drop the server without Close — the log file already
	// holds the fsynced Submitted records.

	fb2 := newFakeBackend()
	s2 := newTestServer(t, fb2, nil, logPath)
	s2.PollNow() // re-submits the queued replays
	fb2.decideAll("accepted-local")
	s2.PollNow()

	for _, id := range ids {
		w := httptest.NewRecorder()
		s2.ServeHTTP(w, httptest.NewRequest("GET", "/v1/jobs/"+id, nil))
		if w.Code != http.StatusOK {
			t.Fatalf("job %s lost across restart", id)
		}
		var j Job
		json.NewDecoder(w.Result().Body).Decode(&j)
		if j.State != StateDecided || j.Outcome != "accepted-local" {
			t.Errorf("job %s after replay: %+v", id, j)
		}
	}
	if fb2.submitted != len(ids) {
		t.Errorf("cluster saw %d replayed submissions, want %d", fb2.submitted, len(ids))
	}

	// New submissions must not reuse replayed IDs.
	_, reply := submit(t, s2, `{"tenant":"acme","deadline":40,"graph":`+testGraph+`}`)
	for _, id := range ids {
		if reply["id"] == id {
			t.Fatalf("id %s reused after restart", id)
		}
	}
}

// A restart where some jobs were already forwarded must re-poll them, not
// re-submit them (no duplicate cluster jobs for the forwarded ones).
func TestRestartRepollsForwarded(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "gateway.wal")
	fb := newFakeBackend()
	s1 := newTestServer(t, fb, nil, logPath)
	resp, reply := submit(t, s1, `{"tenant":"acme","deadline":40,"graph":`+testGraph+`}`)
	if resp.StatusCode != http.StatusAccepted || reply["state"] != StateForwarded {
		t.Fatalf("submit: %v %v", resp.Status, reply)
	}
	id := reply["id"].(string)
	before := fb.submitted

	s2 := newTestServer(t, fb, nil, logPath) // restart against the same cluster
	fb.decideAll("accepted-local")
	s2.PollNow()

	if fb.submitted != before {
		t.Errorf("restart re-submitted a forwarded job: %d -> %d", before, fb.submitted)
	}
	w := httptest.NewRecorder()
	s2.ServeHTTP(w, httptest.NewRequest("GET", "/v1/jobs/"+id, nil))
	var j Job
	json.NewDecoder(w.Result().Body).Decode(&j)
	if j.State != StateDecided {
		t.Errorf("forwarded job not re-polled after restart: %+v", j)
	}
}

func TestMetricsEndpointIsValidPrometheus(t *testing.T) {
	fb := newFakeBackend()
	s := newTestServer(t, fb, nil, "")
	submit(t, s, `{"tenant":"acme","deadline":40,"graph":`+testGraph+`}`)
	submit(t, s, `{"tenant":"ghost","deadline":40,"graph":`+testGraph+`}`)

	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if ct := w.Result().Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Errorf("content type = %q", ct)
	}
	body := w.Body.Bytes()
	if err := metrics.ValidateText(body); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	for _, want := range []string{
		`rtds_gateway_submissions_total{tenant="acme",result="accepted"} 1`,
		`rtds_gateway_submissions_total{tenant="unknown",result="unknown"} 1`,
		"rtds_gateway_joblog_fsync_seconds_count",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestParseTenants(t *testing.T) {
	quotas, err := ParseTenants("acme:rate=50,burst=100,inflight=200;zeta:rate=10")
	if err != nil {
		t.Fatal(err)
	}
	if q := quotas["acme"]; q != (Quota{Rate: 50, Burst: 100, MaxInflight: 200}) {
		t.Errorf("acme = %+v", q)
	}
	if q := quotas["zeta"]; q != (Quota{Rate: 10, Burst: 10}) {
		t.Errorf("zeta = %+v (burst should default to rate)", q)
	}
	for _, bad := range []string{"", "noparams", "x:rate=0", "x:rate=5;x:rate=6", "x:speed=9"} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("ParseTenants(%q) accepted", bad)
		}
	}
}

func TestTokenBucketRefill(t *testing.T) {
	a := NewAdmitter(map[string]Quota{"t": {Rate: 10, Burst: 2}})
	now := time.Unix(1000, 0)
	a.SetClock(func() time.Time { return now })

	for i := 0; i < 2; i++ {
		if d := a.Admit("t", 100); !d.OK {
			t.Fatalf("burst admit %d refused: %+v", i, d)
		}
	}
	if d := a.Admit("t", 100); d.OK || d.Reason != "rate" {
		t.Fatalf("empty bucket admitted: %+v", d)
	}
	now = now.Add(100 * time.Millisecond) // refills one token at rate=10
	if d := a.Admit("t", 100); !d.OK {
		t.Fatalf("refilled token refused: %+v", d)
	}
}
