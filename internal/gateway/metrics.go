package gateway

import "repro/internal/metrics"

// gwMetrics bundles the gateway's Prometheus instruments. Every family
// here must be documented in docs/metrics.md; the docs coverage test
// (internal/docscheck) enforces that via MetricNames.
type gwMetrics struct {
	reg *metrics.Registry

	submissions   *metrics.CounterVec // rtds_gateway_submissions_total{tenant,result}
	decisions     *metrics.CounterVec // rtds_gateway_decisions_total{tenant,outcome}
	inflight      *metrics.GaugeVec   // rtds_gateway_jobs_inflight{tenant}
	acceptLatency *metrics.Histogram  // rtds_gateway_accept_latency_seconds
	decideLatency *metrics.Histogram  // rtds_gateway_decision_latency_seconds
	fsyncLatency  *metrics.Histogram  // rtds_gateway_joblog_fsync_seconds
	replayed      *metrics.Counter    // rtds_gateway_replayed_total
	backendErrors *metrics.Counter    // rtds_gateway_backend_errors_total
	clusterLaxity *metrics.Gauge      // rtds_gateway_cluster_decision_p99_seconds
	joblogRecords *metrics.Counter    // rtds_gateway_joblog_records_total
}

func newGWMetrics() *gwMetrics {
	r := metrics.NewRegistry()
	return &gwMetrics{
		reg: r,
		submissions: r.NewCounterVec("rtds_gateway_submissions_total",
			"Job submissions by tenant and result (accepted, duplicate, rejected_rate, rejected_quota, rejected_laxity, invalid, error).",
			"tenant", "result"),
		decisions: r.NewCounterVec("rtds_gateway_decisions_total",
			"Cluster decisions observed by the poller, by tenant and outcome.",
			"tenant", "outcome"),
		inflight: r.NewGaugeVec("rtds_gateway_jobs_inflight",
			"Jobs accepted by the gateway and not yet decided by the cluster.",
			"tenant"),
		acceptLatency: r.NewHistogram("rtds_gateway_accept_latency_seconds",
			"Wall time from request arrival to the durable 202 ack (includes the joblog fsync).",
			metrics.DefaultLatencyBuckets),
		decideLatency: r.NewHistogram("rtds_gateway_decision_latency_seconds",
			"Wall time from durable accept to the observed cluster decision.",
			metrics.DefaultLatencyBuckets),
		fsyncLatency: r.NewHistogram("rtds_gateway_joblog_fsync_seconds",
			"Write-ahead job-log fsync batch latency.",
			metrics.DefaultLatencyBuckets),
		replayed: r.NewCounter("rtds_gateway_replayed_total",
			"Undecided jobs replayed from the write-ahead log after a restart."),
		backendErrors: r.NewCounter("rtds_gateway_backend_errors_total",
			"Failed backend calls (submit, decision poll or stats poll)."),
		clusterLaxity: r.NewGauge("rtds_gateway_cluster_decision_p99_seconds",
			"Cluster p99 decision latency feeding the laxity admission gate."),
		joblogRecords: r.NewCounter("rtds_gateway_joblog_records_total",
			"Records appended to the write-ahead job log."),
	}
}

// MetricNames lists every metric family the gateway exports, for the
// docs/metrics.md coverage test.
func MetricNames() []string {
	return newGWMetrics().reg.Names()
}
