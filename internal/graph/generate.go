package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// DelayRange describes how link delays are drawn by the generators.
type DelayRange struct {
	Min, Max float64
}

// Uniform draws a delay uniformly from [Min, Max].
func (r DelayRange) draw(rng *rand.Rand) float64 {
	if r.Min <= 0 {
		r.Min = 1
	}
	if r.Max < r.Min {
		r.Max = r.Min
	}
	if r.Max == r.Min {
		return r.Min
	}
	return r.Min + rng.Float64()*(r.Max-r.Min)
}

// UnitDelay assigns delay 1 to every link.
var UnitDelay = DelayRange{Min: 1, Max: 1}

// Ring returns a cycle of n >= 3 nodes.
func Ring(n int, delays DelayRange, seed int64) *Graph {
	if n < 3 {
		panic("graph: Ring needs n >= 3")
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(NodeID(i), NodeID((i+1)%n), delays.draw(rng))
	}
	return g
}

// Line returns a path of n >= 2 nodes.
func Line(n int, delays DelayRange, seed int64) *Graph {
	if n < 2 {
		panic("graph: Line needs n >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+1), delays.draw(rng))
	}
	return g
}

// Star returns a star with node 0 at the center.
func Star(n int, delays DelayRange, seed int64) *Graph {
	if n < 2 {
		panic("graph: Star needs n >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, NodeID(i), delays.draw(rng))
	}
	return g
}

// Clique returns the complete graph on n nodes.
func Clique(n int, delays DelayRange, seed int64) *Graph {
	if n < 2 {
		panic("graph: Clique needs n >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(NodeID(i), NodeID(j), delays.draw(rng))
		}
	}
	return g
}

// Grid returns a rows x cols mesh.
func Grid(rows, cols int, delays DelayRange, seed int64) *Graph {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic("graph: Grid needs at least 2 nodes")
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1), delays.draw(rng))
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c), delays.draw(rng))
			}
		}
	}
	return g
}

// Torus returns a rows x cols mesh with wraparound links. Needs rows,
// cols >= 3 so wrap edges do not duplicate mesh edges.
func Torus(rows, cols int, delays DelayRange, seed int64) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: Torus needs rows, cols >= 3")
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.MustAddEdge(id(r, c), id(r, (c+1)%cols), delays.draw(rng))
			g.MustAddEdge(id(r, c), id((r+1)%rows, c), delays.draw(rng))
		}
	}
	return g
}

// Hypercube returns the dim-dimensional hypercube (2^dim nodes).
func Hypercube(dim int, delays DelayRange, seed int64) *Graph {
	if dim < 1 || dim > 20 {
		panic("graph: Hypercube dimension out of range [1,20]")
	}
	rng := rand.New(rand.NewSource(seed))
	n := 1 << dim
	g := New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < dim; b++ {
			v := u ^ (1 << b)
			if u < v {
				g.MustAddEdge(NodeID(u), NodeID(v), delays.draw(rng))
			}
		}
	}
	return g
}

// RandomTree returns a uniformly random labelled tree (random attachment).
func RandomTree(n int, delays DelayRange, seed int64) *Graph {
	if n < 2 {
		panic("graph: RandomTree needs n >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 1; i < n; i++ {
		parent := NodeID(rng.Intn(i))
		g.MustAddEdge(parent, NodeID(i), delays.draw(rng))
	}
	return g
}

// RandomConnected returns a connected random graph: a random spanning tree
// plus extra random edges until the requested average degree is reached.
// avgDegree must be >= 2*(n-1)/n (the tree's average degree).
func RandomConnected(n int, avgDegree float64, delays DelayRange, seed int64) *Graph {
	if n < 2 {
		panic("graph: RandomConnected needs n >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	// Spanning tree by random attachment over a random permutation, so node 0
	// is not biased toward the center.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := NodeID(perm[i])
		v := NodeID(perm[rng.Intn(i)])
		g.MustAddEdge(u, v, delays.draw(rng))
	}
	wantEdges := int(math.Round(avgDegree * float64(n) / 2))
	maxEdges := n * (n - 1) / 2
	if wantEdges > maxEdges {
		wantEdges = maxEdges
	}
	for g.NumEdges() < wantEdges {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, delays.draw(rng))
	}
	return g
}

// RandomGeometric places n nodes uniformly in the unit square and links
// pairs closer than radius; delay is Euclidean distance scaled into the
// delay range. If the result is disconnected, nearest components are joined,
// so the graph is always connected.
func RandomGeometric(n int, radius float64, delays DelayRange, seed int64) *Graph {
	if n < 2 {
		panic("graph: RandomGeometric needs n >= 2")
	}
	if radius <= 0 {
		panic("graph: RandomGeometric needs radius > 0")
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist := func(i, j int) float64 {
		dx, dy := xs[i]-xs[j], ys[i]-ys[j]
		return math.Hypot(dx, dy)
	}
	scale := func(d float64) float64 {
		// map [0, sqrt2] distance into [Min, Max] delay
		lo, hi := delays.Min, delays.Max
		if lo <= 0 {
			lo = 1
		}
		if hi < lo {
			hi = lo
		}
		return lo + d/math.Sqrt2*(hi-lo)
	}
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := dist(i, j); d <= radius {
				g.MustAddEdge(NodeID(i), NodeID(j), scale(d))
			}
		}
	}
	// Join components through their closest pair of nodes.
	for !g.Connected() {
		comp := components(g)
		bestD := math.Inf(1)
		var bi, bj int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if comp[i] != comp[j] {
					if d := dist(i, j); d < bestD {
						bestD, bi, bj = d, i, j
					}
				}
			}
		}
		g.MustAddEdge(NodeID(bi), NodeID(bj), scale(bestD))
	}
	return g
}

func components(g *Graph) []int {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	c := 0
	for s := 0; s < g.n; s++ {
		if comp[s] >= 0 {
			continue
		}
		stack := []NodeID{NodeID(s)}
		comp[s] = c
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.adj[u] {
				if comp[e.To] < 0 {
					comp[e.To] = c
					stack = append(stack, e.To)
				}
			}
		}
		c++
	}
	return comp
}

// TopologyKind names a generator for config-driven experiment setup.
type TopologyKind string

const (
	TopoRing      TopologyKind = "ring"
	TopoLine      TopologyKind = "line"
	TopoStar      TopologyKind = "star"
	TopoClique    TopologyKind = "clique"
	TopoGrid      TopologyKind = "grid"
	TopoTorus     TopologyKind = "torus"
	TopoHypercube TopologyKind = "hypercube"
	TopoTree      TopologyKind = "tree"
	TopoRandom    TopologyKind = "random"
	TopoGeometric TopologyKind = "geometric"
)

// Generate builds a topology of the given kind with ~n nodes. Grid/torus use
// the nearest square; hypercube rounds n down to a power of two.
func Generate(kind TopologyKind, n int, delays DelayRange, seed int64) (*Graph, error) {
	switch kind {
	case TopoRing:
		return Ring(max(n, 3), delays, seed), nil
	case TopoLine:
		return Line(max(n, 2), delays, seed), nil
	case TopoStar:
		return Star(max(n, 2), delays, seed), nil
	case TopoClique:
		return Clique(max(n, 2), delays, seed), nil
	case TopoGrid:
		side := int(math.Max(2, math.Round(math.Sqrt(float64(n)))))
		return Grid(side, side, delays, seed), nil
	case TopoTorus:
		side := int(math.Max(3, math.Round(math.Sqrt(float64(n)))))
		return Torus(side, side, delays, seed), nil
	case TopoHypercube:
		dim := 1
		for (1 << (dim + 1)) <= n {
			dim++
		}
		return Hypercube(dim, delays, seed), nil
	case TopoTree:
		return RandomTree(max(n, 2), delays, seed), nil
	case TopoRandom:
		return RandomConnected(max(n, 2), 4, delays, seed), nil
	case TopoGeometric:
		return RandomGeometric(max(n, 2), 0.3, delays, seed), nil
	default:
		return nil, fmt.Errorf("graph: unknown topology kind %q", kind)
	}
}
