package graph

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

var allKinds = []TopologyKind{
	TopoRing, TopoLine, TopoStar, TopoClique, TopoGrid,
	TopoTorus, TopoHypercube, TopoTree, TopoRandom, TopoGeometric,
}

// edgeDump renders a graph's full edge set (with delays) in a canonical
// order, for determinism comparisons.
func edgeDump(g *Graph) string {
	var lines []string
	for u := 0; u < g.Len(); u++ {
		for _, e := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < e.To {
				lines = append(lines, fmt.Sprintf("%d-%d:%.12g", u, e.To, e.Delay))
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestGenerateEveryKind: every topology kind yields a connected graph with
// strictly positive, symmetric link delays at several requested sizes —
// including sizes the generators must round (squares, powers of two).
func TestGenerateEveryKind(t *testing.T) {
	delays := DelayRange{Min: 0.05, Max: 0.3}
	for _, kind := range allKinds {
		for _, n := range []int{8, 16, 33} {
			g, err := Generate(kind, n, delays, 7)
			if err != nil {
				t.Fatalf("%s n=%d: %v", kind, n, err)
			}
			if g.Len() < 2 {
				t.Fatalf("%s n=%d: only %d nodes", kind, n, g.Len())
			}
			if !g.Connected() {
				t.Fatalf("%s n=%d: disconnected", kind, n)
			}
			for u := 0; u < g.Len(); u++ {
				for _, e := range g.Neighbors(NodeID(u)) {
					if e.Delay <= 0 {
						t.Fatalf("%s n=%d: edge %d-%d has delay %v", kind, n, u, e.To, e.Delay)
					}
					back, err := g.EdgeDelay(e.To, NodeID(u))
					if err != nil || back != e.Delay {
						t.Fatalf("%s n=%d: edge %d-%d asymmetric (%v vs %v, %v)",
							kind, n, u, e.To, e.Delay, back, err)
					}
				}
			}
		}
	}
}

// TestGenerateSizeRounding: grid/torus use the nearest square and hypercube
// rounds down to a power of two; everything else honours n.
func TestGenerateSizeRounding(t *testing.T) {
	cases := []struct {
		kind TopologyKind
		n    int
		want int
	}{
		{TopoGrid, 16, 16},
		{TopoTorus, 16, 16},
		{TopoTorus, 11, 9},      // nearest square side 3
		{TopoHypercube, 33, 32}, // round down to 2^5
		{TopoHypercube, 16, 16}, // exact power of two
		{TopoRing, 17, 17},
		{TopoGeometric, 17, 17},
		{TopoRandom, 17, 17},
	}
	for _, c := range cases {
		g, err := Generate(c.kind, c.n, UnitDelay, 1)
		if err != nil {
			t.Fatalf("%s n=%d: %v", c.kind, c.n, err)
		}
		if g.Len() != c.want {
			t.Fatalf("%s n=%d: %d nodes, want %d", c.kind, c.n, g.Len(), c.want)
		}
	}
}

// TestGenerateDeterministicPerSeed: the same (kind, n, seed) triple must
// reproduce the identical graph — node count, edges and delays — and for
// the randomized kinds a different seed must change it.
func TestGenerateDeterministicPerSeed(t *testing.T) {
	delays := DelayRange{Min: 0.05, Max: 0.3}
	for _, kind := range allKinds {
		a, err := Generate(kind, 16, delays, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(kind, 16, delays, 5)
		if err != nil {
			t.Fatal(err)
		}
		if edgeDump(a) != edgeDump(b) {
			t.Fatalf("%s: same seed produced different graphs", kind)
		}
	}
	// Randomized structure or delays: a new seed must show up somewhere.
	for _, kind := range []TopologyKind{TopoTree, TopoRandom, TopoGeometric, TopoRing} {
		a, _ := Generate(kind, 16, delays, 5)
		c, _ := Generate(kind, 16, delays, 6)
		if edgeDump(a) == edgeDump(c) {
			t.Fatalf("%s: different seeds produced identical graphs", kind)
		}
	}
}

func TestGenerateUnknownKind(t *testing.T) {
	if _, err := Generate("moebius", 8, UnitDelay, 1); err == nil {
		t.Fatal("unknown topology kind accepted")
	}
}
