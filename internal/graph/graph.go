// Package graph models the communication network: an arbitrary connected
// undirected graph whose vertices are sites and whose edges are bidirectional
// communication links weighted by delay. Edge weights need not satisfy the
// triangle inequality (paper §2).
//
// The package also provides centralized shortest-path oracles (Dijkstra,
// hop-limited Bellman-Ford, BFS) used both by tests — as ground truth for the
// distributed routing layer — and by experiment setup code.
package graph

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a site. Sites are numbered 0..N-1.
type NodeID int

// Edge is one endpoint's view of an undirected link.
type Edge struct {
	To    NodeID
	Delay float64 // communication delay; must be > 0
}

// Graph is an undirected weighted graph. Construct with New and AddEdge; the
// adjacency lists are kept sorted by neighbor ID so iteration is
// deterministic.
type Graph struct {
	n   int
	adj [][]Edge
}

// New returns a graph with n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{n: n, adj: make([][]Edge, n)}
}

// Len reports the number of nodes.
func (g *Graph) Len() int { return g.n }

// NumEdges reports the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

func (g *Graph) check(id NodeID) {
	if id < 0 || int(id) >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", id, g.n))
	}
}

// AddEdge inserts an undirected link u—v with the given delay. Self-loops,
// duplicate edges and non-positive delays are rejected with an error.
func (g *Graph) AddEdge(u, v NodeID, delay float64) error {
	g.check(u)
	g.check(v)
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if delay <= 0 || math.IsNaN(delay) || math.IsInf(delay, 0) {
		return fmt.Errorf("graph: invalid delay %v on %d—%d", delay, u, v)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge %d—%d", u, v)
	}
	g.insert(u, Edge{To: v, Delay: delay})
	g.insert(v, Edge{To: u, Delay: delay})
	return nil
}

// MustAddEdge is AddEdge but panics on error; for tests and generators.
func (g *Graph) MustAddEdge(u, v NodeID, delay float64) {
	if err := g.AddEdge(u, v, delay); err != nil {
		panic(err)
	}
}

func (g *Graph) insert(u NodeID, e Edge) {
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i].To >= e.To })
	a = append(a, Edge{})
	copy(a[i+1:], a[i:])
	a[i] = e
	g.adj[u] = a
}

// HasEdge reports whether u and v are adjacent.
func (g *Graph) HasEdge(u, v NodeID) bool {
	g.check(u)
	g.check(v)
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i].To >= v })
	return i < len(a) && a[i].To == v
}

// EdgeDelay returns the delay of link u—v, or an error if absent.
func (g *Graph) EdgeDelay(u, v NodeID) (float64, error) {
	g.check(u)
	g.check(v)
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i].To >= v })
	if i < len(a) && a[i].To == v {
		return a[i].Delay, nil
	}
	return 0, fmt.Errorf("graph: no edge %d—%d", u, v)
}

// Neighbors returns u's adjacency list sorted by neighbor ID. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Neighbors(u NodeID) []Edge {
	g.check(u)
	return g.adj[u]
}

// Degree reports the number of links at u.
func (g *Graph) Degree(u NodeID) int {
	g.check(u)
	return len(g.adj[u])
}

// Connected reports whether the graph is connected (true for the empty and
// single-node graphs).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == g.n
}

// PathInfo is the result of a shortest-path query from a source.
type PathInfo struct {
	Dist float64 // total delay; +Inf if unreachable
	Hops int     // number of edges on the found path; -1 if unreachable
	Prev NodeID  // predecessor on the path; -1 at the source/unreachable
}

// Inf is the distance reported for unreachable nodes.
var Inf = math.Inf(1)

type dijkstraItem struct {
	node  NodeID
	dist  float64
	index int
}

type dijkstraHeap []*dijkstraItem

func (h dijkstraHeap) Len() int { return len(h) }
func (h dijkstraHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].node < h[j].node // deterministic tie-break
}
func (h dijkstraHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *dijkstraHeap) Push(x any) {
	it := x.(*dijkstraItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *dijkstraHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Dijkstra computes single-source shortest delay paths from src.
func (g *Graph) Dijkstra(src NodeID) []PathInfo {
	g.check(src)
	res := make([]PathInfo, g.n)
	for i := range res {
		res[i] = PathInfo{Dist: Inf, Hops: -1, Prev: -1}
	}
	res[src] = PathInfo{Dist: 0, Hops: 0, Prev: -1}
	items := make([]*dijkstraItem, g.n)
	h := make(dijkstraHeap, 0, g.n)
	items[src] = &dijkstraItem{node: src, dist: 0}
	heap.Push(&h, items[src])
	done := make([]bool, g.n)
	for h.Len() > 0 {
		it := heap.Pop(&h).(*dijkstraItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, e := range g.adj[u] {
			nd := res[u].Dist + e.Delay
			if nd < res[e.To].Dist {
				res[e.To] = PathInfo{Dist: nd, Hops: res[u].Hops + 1, Prev: u}
				if items[e.To] == nil || done[e.To] {
					items[e.To] = &dijkstraItem{node: e.To, dist: nd}
					heap.Push(&h, items[e.To])
				} else {
					items[e.To].dist = nd
					heap.Fix(&h, items[e.To].index)
				}
			}
		}
	}
	return res
}

// BoundedBellmanFord computes, for every node, the minimum delay over paths
// from src that use at most maxEdges edges (the classic phase property of
// Bellman-Ford). It is the centralized oracle for the distributed PCS
// construction of internal/routing.
func (g *Graph) BoundedBellmanFord(src NodeID, maxEdges int) []PathInfo {
	g.check(src)
	if maxEdges < 0 {
		maxEdges = 0
	}
	cur := make([]PathInfo, g.n)
	for i := range cur {
		cur[i] = PathInfo{Dist: Inf, Hops: -1, Prev: -1}
	}
	cur[src] = PathInfo{Dist: 0, Hops: 0, Prev: -1}
	for round := 0; round < maxEdges; round++ {
		next := make([]PathInfo, g.n)
		copy(next, cur)
		changed := false
		for u := NodeID(0); int(u) < g.n; u++ {
			if cur[u].Dist == Inf {
				continue
			}
			for _, e := range g.adj[u] {
				nd := cur[u].Dist + e.Delay
				if nd < next[e.To].Dist {
					next[e.To] = PathInfo{Dist: nd, Hops: cur[u].Hops + 1, Prev: u}
					changed = true
				}
			}
		}
		cur = next
		if !changed {
			break
		}
	}
	return cur
}

// HopDistances computes BFS hop counts from src, ignoring delays.
func (g *Graph) HopDistances(src NodeID) []int {
	g.check(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if dist[e.To] < 0 {
				dist[e.To] = dist[u] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return dist
}

// DelayDiameter returns the maximum finite pairwise shortest-path delay.
// It is O(N * Dijkstra); intended for setup and tests, not hot paths.
func (g *Graph) DelayDiameter() float64 {
	var diam float64
	for u := NodeID(0); int(u) < g.n; u++ {
		for _, pi := range g.Dijkstra(u) {
			if pi.Dist != Inf && pi.Dist > diam {
				diam = pi.Dist
			}
		}
	}
	return diam
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := NodeID(0); int(u) < g.n; u++ {
		c.adj[u] = append([]Edge(nil), g.adj[u]...)
	}
	return c
}
