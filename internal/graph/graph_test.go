package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 1, 0); err == nil {
		t.Error("zero delay accepted")
	}
	if err := g.AddEdge(0, 1, -2); err == nil {
		t.Error("negative delay accepted")
	}
	if err := g.AddEdge(0, 1, math.NaN()); err == nil {
		t.Error("NaN delay accepted")
	}
	if err := g.AddEdge(0, 1, 1.5); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := g.AddEdge(1, 0, 2); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
	d, err := g.EdgeDelay(1, 0)
	if err != nil || d != 1.5 {
		t.Errorf("EdgeDelay(1,0) = %v, %v; want 1.5", d, err)
	}
	if _, err := g.EdgeDelay(1, 2); err == nil {
		t.Error("EdgeDelay on missing edge did not error")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.MustAddEdge(2, 4, 1)
	g.MustAddEdge(2, 0, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(2, 1, 1)
	ns := g.Neighbors(2)
	for i := 1; i < len(ns); i++ {
		if ns[i-1].To >= ns[i].To {
			t.Fatalf("neighbors not sorted: %v", ns)
		}
	}
	if g.Degree(2) != 4 {
		t.Fatalf("degree = %d, want 4", g.Degree(2))
	}
}

func TestConnected(t *testing.T) {
	g := New(4)
	if g.Connected() {
		t.Error("4 isolated nodes reported connected")
	}
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	if g.Connected() {
		t.Error("two components reported connected")
	}
	g.MustAddEdge(1, 2, 1)
	if !g.Connected() {
		t.Error("path graph reported disconnected")
	}
	if !New(0).Connected() || !New(1).Connected() {
		t.Error("trivial graphs reported disconnected")
	}
}

func TestDijkstraTriangleViolation(t *testing.T) {
	// Direct edge 0—2 is more expensive than the two-hop path: the paper
	// explicitly allows triangle-inequality violations.
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 10)
	res := g.Dijkstra(0)
	if res[2].Dist != 2 {
		t.Fatalf("dist(0,2) = %v, want 2 via node 1", res[2].Dist)
	}
	if res[2].Hops != 2 || res[2].Prev != 1 {
		t.Fatalf("path info = %+v, want hops=2 prev=1", res[2])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	res := g.Dijkstra(0)
	if res[2].Dist != Inf || res[2].Hops != -1 {
		t.Fatalf("unreachable node: %+v", res[2])
	}
}

func TestBoundedBellmanFordHopLimit(t *testing.T) {
	// 0-1-2-3 line with delay 1 each, plus expensive shortcut 0—3.
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(0, 3, 5)
	r1 := g.BoundedBellmanFord(0, 1)
	if r1[3].Dist != 5 {
		t.Fatalf("1-edge dist(0,3) = %v, want 5 (shortcut)", r1[3].Dist)
	}
	if r1[2].Dist != Inf {
		t.Fatalf("1-edge dist(0,2) = %v, want Inf", r1[2].Dist)
	}
	r3 := g.BoundedBellmanFord(0, 3)
	if r3[3].Dist != 3 {
		t.Fatalf("3-edge dist(0,3) = %v, want 3 (line)", r3[3].Dist)
	}
}

// Property: BoundedBellmanFord with maxEdges >= n-1 equals Dijkstra on
// random connected graphs.
func TestPropertyBellmanFordConvergesToDijkstra(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		n := 4 + int(seed%12)
		g := RandomConnected(n, 3, DelayRange{Min: 1, Max: 9}, seed)
		for src := NodeID(0); int(src) < n; src++ {
			d := g.Dijkstra(src)
			bf := g.BoundedBellmanFord(src, n-1)
			for v := 0; v < n; v++ {
				if math.Abs(d[v].Dist-bf[v].Dist) > 1e-9 {
					t.Fatalf("seed %d src %d node %d: dijkstra %v vs bf %v",
						seed, src, v, d[v].Dist, bf[v].Dist)
				}
			}
		}
	}
}

// Property: hop counts from HopDistances match Dijkstra on unit-delay graphs.
func TestPropertyUnitDelayHopsEqualDistance(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := RandomConnected(10, 3, UnitDelay, seed)
		for src := NodeID(0); int(src) < g.Len(); src++ {
			hops := g.HopDistances(src)
			dij := g.Dijkstra(src)
			for v := 0; v < g.Len(); v++ {
				if float64(hops[v]) != dij[v].Dist {
					t.Fatalf("seed %d: hop %d vs dist %v at node %d", seed, hops[v], dij[v].Dist, v)
				}
			}
		}
	}
}

func TestGenerators(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Graph
		nodes int
		edges int // -1 to skip check
	}{
		{"ring", func() *Graph { return Ring(8, UnitDelay, 1) }, 8, 8},
		{"line", func() *Graph { return Line(8, UnitDelay, 1) }, 8, 7},
		{"star", func() *Graph { return Star(8, UnitDelay, 1) }, 8, 7},
		{"clique", func() *Graph { return Clique(6, UnitDelay, 1) }, 6, 15},
		{"grid", func() *Graph { return Grid(3, 4, UnitDelay, 1) }, 12, 17},
		{"torus", func() *Graph { return Torus(3, 3, UnitDelay, 1) }, 9, 18},
		{"hypercube", func() *Graph { return Hypercube(4, UnitDelay, 1) }, 16, 32},
		{"tree", func() *Graph { return RandomTree(20, UnitDelay, 1) }, 20, 19},
		{"random", func() *Graph { return RandomConnected(20, 4, UnitDelay, 1) }, 20, -1},
		{"geometric", func() *Graph { return RandomGeometric(20, 0.25, DelayRange{1, 5}, 1) }, 20, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			if g.Len() != tc.nodes {
				t.Fatalf("nodes = %d, want %d", g.Len(), tc.nodes)
			}
			if tc.edges >= 0 && g.NumEdges() != tc.edges {
				t.Fatalf("edges = %d, want %d", g.NumEdges(), tc.edges)
			}
			if !g.Connected() {
				t.Fatal("generator produced disconnected graph")
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RandomConnected(30, 4, DelayRange{1, 10}, 42)
	b := RandomConnected(30, 4, DelayRange{1, 10}, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	for u := NodeID(0); int(u) < a.Len(); u++ {
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			t.Fatalf("node %d: different degrees", u)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("node %d: adjacency differs", u)
			}
		}
	}
}

func TestGenerateDispatch(t *testing.T) {
	kinds := []TopologyKind{TopoRing, TopoLine, TopoStar, TopoClique, TopoGrid,
		TopoTorus, TopoHypercube, TopoTree, TopoRandom, TopoGeometric}
	for _, k := range kinds {
		g, err := Generate(k, 16, UnitDelay, 7)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if !g.Connected() {
			t.Fatalf("%s: disconnected", k)
		}
	}
	if _, err := Generate("nope", 16, UnitDelay, 7); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRandomConnectedAvgDegree(t *testing.T) {
	g := RandomConnected(100, 6, UnitDelay, 3)
	got := 2 * float64(g.NumEdges()) / 100
	if math.Abs(got-6) > 0.2 {
		t.Fatalf("avg degree %v, want ~6", got)
	}
}

// Property: all generated random graphs are connected and have positive
// delays on every edge.
func TestPropertyGeneratedGraphsWellFormed(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		kinds := []TopologyKind{TopoRing, TopoGrid, TopoTree, TopoRandom, TopoGeometric, TopoHypercube}
		k := kinds[int(pick)%len(kinds)]
		g, err := Generate(k, 12, DelayRange{1, 7}, seed)
		if err != nil || !g.Connected() {
			return false
		}
		for u := NodeID(0); int(u) < g.Len(); u++ {
			for _, e := range g.Neighbors(u) {
				if e.Delay <= 0 {
					return false
				}
				if !g.HasEdge(e.To, u) {
					return false // symmetry
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDelayDiameter(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 3)
	if d := g.DelayDiameter(); d != 5 {
		t.Fatalf("diameter %v, want 5", d)
	}
}

func TestClone(t *testing.T) {
	g := Ring(5, UnitDelay, 1)
	c := g.Clone()
	c.MustAddEdge(0, 2, 1)
	if g.HasEdge(0, 2) {
		t.Fatal("Clone shares adjacency storage")
	}
}

func BenchmarkDijkstraRandom256(b *testing.B) {
	g := RandomConnected(256, 6, DelayRange{1, 10}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Dijkstra(NodeID(rand.Intn(256)))
	}
}
