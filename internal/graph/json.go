package graph

import (
	"encoding/json"
	"fmt"
)

// jsonTopology is the interchange form of a network topology.
type jsonTopology struct {
	Nodes int        `json:"nodes"`
	Links []jsonLink `json:"links"`
}

type jsonLink struct {
	A     NodeID  `json:"a"`
	B     NodeID  `json:"b"`
	Delay float64 `json:"delay"`
}

// MarshalJSON implements json.Marshaler: each undirected link appears once
// (a < b), sorted.
func (g *Graph) MarshalJSON() ([]byte, error) {
	out := jsonTopology{Nodes: g.n}
	for u := NodeID(0); int(u) < g.n; u++ {
		for _, e := range g.adj[u] {
			if e.To > u {
				out.Links = append(out.Links, jsonLink{A: u, B: e.To, Delay: e.Delay})
			}
		}
	}
	return json.Marshal(out)
}

// UnmarshalTopology parses the JSON form produced by MarshalJSON with full
// validation (no self-loops, duplicates or non-positive delays).
func UnmarshalTopology(data []byte) (*Graph, error) {
	var in jsonTopology
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	if in.Nodes < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", in.Nodes)
	}
	g := New(in.Nodes)
	for _, l := range in.Links {
		if int(l.A) < 0 || int(l.A) >= in.Nodes || int(l.B) < 0 || int(l.B) >= in.Nodes {
			return nil, fmt.Errorf("graph: link %d—%d out of range", l.A, l.B)
		}
		if err := g.AddEdge(l.A, l.B, l.Delay); err != nil {
			return nil, err
		}
	}
	return g, nil
}
