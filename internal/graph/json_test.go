package graph

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestTopologyJSONRoundTrip(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1.5)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(0, 3, 0.25)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTopology(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 4 || back.NumEdges() != 3 {
		t.Fatalf("shape lost: %d nodes %d edges", back.Len(), back.NumEdges())
	}
	if d, _ := back.EdgeDelay(3, 0); d != 0.25 {
		t.Fatalf("delay lost: %v", d)
	}
}

func TestUnmarshalTopologyRejectsInvalid(t *testing.T) {
	cases := []string{
		`{oops`,
		`{"nodes":-1,"links":[]}`,
		`{"nodes":2,"links":[{"a":0,"b":5,"delay":1}]}`,
		`{"nodes":2,"links":[{"a":0,"b":1,"delay":0}]}`,
		`{"nodes":2,"links":[{"a":0,"b":0,"delay":1}]}`,
		`{"nodes":2,"links":[{"a":0,"b":1,"delay":1},{"a":1,"b":0,"delay":2}]}`,
	}
	for i, c := range cases {
		if _, err := UnmarshalTopology([]byte(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestPropertyTopologyJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomConnected(5+int(seed%10+10)%10, 3, DelayRange{Min: 1, Max: 9}, seed)
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		back, err := UnmarshalTopology(data)
		if err != nil {
			return false
		}
		if back.Len() != g.Len() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for u := NodeID(0); int(u) < g.Len(); u++ {
			na, nb := g.Neighbors(u), back.Neighbors(u)
			if len(na) != len(nb) {
				return false
			}
			for i := range na {
				if na[i] != nb[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
