package graph

import "math"

// Partition splits the nodes into nparts balanced, connected-ish regions for
// the parallel DES kernel: sites in one part share an event heap and an
// execution thread, so the partitioner's job is to keep chatty neighbors
// together (few cut edges ⇒ few barrier-crossing messages) while keeping the
// parts balanced (the slowest part paces every synchronization window).
//
// The algorithm is deterministic — a pure function of the graph and nparts,
// never of map order or randomness — because the kernel's event-ordering key
// includes the partition-independent origin site, but the *assignment* feeds
// the bench harness and must reproduce across runs:
//
//  1. seed one node per part by farthest-point sampling on hop distance
//     (ties to the lowest node ID);
//  2. grow all parts with a round-robin multi-source BFS under a capacity of
//     ceil(n/nparts), so parts are contiguous regions of comparable size;
//  3. refine: a few sweeps move boundary nodes to the neighboring part that
//     hosts most of their edges when that strictly reduces the number of cut
//     edges without emptying or overfilling a part;
//  4. repair: on a connected graph every part is made internally connected —
//     stray fragments (possible after the capacity-wall fallback of step 2 or
//     a refinement move) are merged into the neighboring part they touch the
//     most, then oversize parts shed connectivity-safe boundary nodes back
//     toward the capacity.
//
// Connectivity of every part is what the hierarchical routing layer
// (internal/routing/hier) builds on: a region's intra-region distance-vector
// bootstrap can only converge over paths that stay inside the region.
//
// The returned slice maps every node to its part in [0, nparts). nparts is
// clamped to n when larger (every node its own part) and must be >= 1.
func (g *Graph) Partition(nparts int) []int {
	if nparts < 1 {
		panic("graph: Partition needs nparts >= 1")
	}
	n := g.n
	if nparts > n {
		nparts = n
	}
	part := make([]int, n)
	if nparts <= 1 {
		return part
	}

	seeds := g.partitionSeeds(nparts)
	capPer := (n + nparts - 1) / nparts

	// Round-robin multi-source BFS growth. Each part keeps a FIFO frontier;
	// on its turn it claims the first unclaimed node of its frontier. A part
	// whose frontier runs dry while unclaimed nodes remain (disconnected
	// graphs, capacity walls) restarts from the lowest unclaimed node, so
	// every node is always assigned.
	for i := range part {
		part[i] = -1
	}
	frontiers := make([][]NodeID, nparts)
	size := make([]int, nparts)
	for p, s := range seeds {
		part[s] = p
		size[p] = 1
		frontiers[p] = append(frontiers[p], s)
	}
	assigned := nparts
	for assigned < n {
		progress := false
		for p := 0; p < nparts && assigned < n; p++ {
			if size[p] >= capPer {
				continue
			}
			claimed := false
			for len(frontiers[p]) > 0 && !claimed {
				u := frontiers[p][0]
				frontiers[p] = frontiers[p][1:]
				for _, e := range g.adj[u] {
					if part[e.To] >= 0 {
						continue
					}
					part[e.To] = p
					size[p]++
					assigned++
					frontiers[p] = append(frontiers[p], e.To)
					claimed = true
					progress = true
					break
				}
				if !claimed {
					continue
				}
				// Re-visit u next turn: it may have more unclaimed neighbors.
				frontiers[p] = append([]NodeID{u}, frontiers[p]...)
			}
		}
		if !progress {
			// Every frontier is dry or full. Keep parts contiguous: hand the
			// lowest unclaimed node that touches an assigned one to the
			// smallest adjacent part — preferring parts under capacity, but
			// overflowing an adjacent part rather than teleporting the node
			// into a disconnected region (shedOversize walks the overflow
			// back later). Only on a disconnected graph, where an unclaimed
			// node may touch nothing assigned, fall back to the smallest part
			// outright.
			u, best := NodeID(-1), -1
			for v := range part {
				if part[v] >= 0 {
					continue
				}
				underCap, any := -1, -1
				for _, e := range g.adj[NodeID(v)] {
					p := part[e.To]
					if p < 0 {
						continue
					}
					if any < 0 || size[p] < size[any] {
						any = p
					}
					if size[p] < capPer && (underCap < 0 || size[p] < size[underCap]) {
						underCap = p
					}
				}
				if underCap >= 0 {
					u, best = NodeID(v), underCap
					break
				}
				if any >= 0 && u < 0 {
					u, best = NodeID(v), any
					// Keep scanning: a later node may have an under-cap home.
				}
			}
			if u < 0 {
				for v := range part {
					if part[v] < 0 {
						u = NodeID(v)
						break
					}
				}
				best = 0
				for p := 1; p < nparts; p++ {
					if size[p] < size[best] {
						best = p
					}
				}
			}
			part[u] = best
			size[best]++
			assigned++
			frontiers[best] = append(frontiers[best], u)
		}
	}

	g.refinePartition(part, size, nparts, capPer)
	g.repairPartition(part, size, nparts, capPer)
	return part
}

// repairPartition makes every part internally connected (on a connected
// graph) and then walks oversize parts back toward the capacity without
// breaking what it just established.
//
// Fragment merging: a part's connected components are found in ascending
// node order; the largest component (ties to the one holding the lowest
// node) stays, every other fragment moves wholesale to the neighboring part
// it shares the most edges with (ties to the lowest part index). A moved
// fragment attaches to an existing component of its target, so the total
// number of (part, component) fragments strictly decreases and the loop
// terminates. Merges may overshoot capPer; the shed pass below recovers the
// bound where a connectivity-safe move exists, so callers get balance on
// real topologies and connectivity always.
func (g *Graph) repairPartition(part, size []int, nparts, capPer int) {
	if nparts <= 1 {
		return
	}
	degTo := make([]int, nparts)
	for {
		moved := false
		for p := 0; p < nparts; p++ {
			comps := g.partComponents(part, p)
			if len(comps) <= 1 {
				continue
			}
			keep := 0
			for i, c := range comps {
				if len(c) > len(comps[keep]) {
					keep = i
				}
			}
			for i, c := range comps {
				if i == keep {
					continue
				}
				for q := range degTo {
					degTo[q] = 0
				}
				for _, v := range c {
					for _, e := range g.adj[v] {
						if q := part[e.To]; q != p {
							degTo[q]++
						}
					}
				}
				best, bestDeg := -1, 0
				for q := 0; q < nparts; q++ {
					if q != p && degTo[q] > bestDeg {
						best, bestDeg = q, degTo[q]
					}
				}
				if best < 0 {
					continue // the fragment is a whole graph component; leave it
				}
				for _, v := range c {
					part[v] = best
				}
				size[p] -= len(c)
				size[best] += len(c)
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	g.shedOversize(part, size, nparts, capPer)
}

// shedOversize moves boundary nodes out of parts that exceed capPer into
// adjacent parts with room, but only when the source part stays connected
// without the node. Deterministic sweeps in ascending node order; stops when
// no oversize part can shed anything.
func (g *Graph) shedOversize(part, size []int, nparts, capPer int) {
	degTo := make([]int, nparts)
	for {
		moved := false
		for v := 0; v < g.n; v++ {
			home := part[v]
			if size[home] <= capPer || size[home] <= 1 {
				continue
			}
			for p := range degTo {
				degTo[p] = 0
			}
			for _, e := range g.adj[v] {
				degTo[part[e.To]]++
			}
			best, bestDeg := -1, 0
			for p := 0; p < nparts; p++ {
				if p != home && size[p] < capPer && degTo[p] > bestDeg {
					best, bestDeg = p, degTo[p]
				}
			}
			if best < 0 || !g.connectedWithout(part, home, NodeID(v)) {
				continue
			}
			part[v] = best
			size[home]--
			size[best]++
			moved = true
		}
		if !moved {
			return
		}
	}
}

// partComponents lists the connected components of part p's induced
// subgraph, discovered in ascending node order (each component's first node
// is its lowest).
func (g *Graph) partComponents(part []int, p int) [][]NodeID {
	var comps [][]NodeID
	seen := make([]bool, g.n)
	for v := 0; v < g.n; v++ {
		if part[v] != p || seen[v] {
			continue
		}
		comp := []NodeID{NodeID(v)}
		seen[v] = true
		for i := 0; i < len(comp); i++ {
			for _, e := range g.adj[comp[i]] {
				if part[e.To] == p && !seen[e.To] {
					seen[e.To] = true
					comp = append(comp, e.To)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// connectedWithout reports whether part p stays connected when node skip is
// removed from it.
func (g *Graph) connectedWithout(part []int, p int, skip NodeID) bool {
	start := NodeID(-1)
	total := 0
	for v := 0; v < g.n; v++ {
		if part[v] == p && NodeID(v) != skip {
			if start < 0 {
				start = NodeID(v)
			}
			total++
		}
	}
	if total <= 1 {
		return true
	}
	seen := make(map[NodeID]bool, total)
	seen[start] = true
	stack := []NodeID{start}
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if part[e.To] == p && e.To != skip && !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == total
}

// partitionSeeds picks nparts spread-out seed nodes by farthest-point
// sampling on hop distance: start from node 0, then repeatedly take the node
// maximizing its minimum hop distance to the chosen seeds (unreachable nodes
// count as farthest, so disconnected components get their own seeds first).
func (g *Graph) partitionSeeds(nparts int) []NodeID {
	seeds := []NodeID{0}
	minDist := g.HopDistances(0)
	for len(seeds) < nparts {
		best, bestDist := NodeID(-1), -1
		for v := 0; v < g.n; v++ {
			d := minDist[v]
			if d < 0 {
				d = g.n // unreachable: farther than any real path
			}
			if d > bestDist {
				best, bestDist = NodeID(v), d
			}
		}
		if bestDist == 0 {
			// Fewer distinct positions than parts; fall back to low IDs not
			// yet chosen (can only happen on degenerate tiny graphs).
			for v := 0; v < g.n; v++ {
				taken := false
				for _, s := range seeds {
					if s == NodeID(v) {
						taken = true
						break
					}
				}
				if !taken {
					best = NodeID(v)
					break
				}
			}
		}
		seeds = append(seeds, best)
		for v, d := range g.HopDistances(best) {
			if d >= 0 && (minDist[v] < 0 || d < minDist[v]) {
				minDist[v] = d
			}
		}
	}
	return seeds
}

// refinePartition runs a few deterministic boundary sweeps: in ascending
// node order, move a node to the adjacent part hosting the most of its edges
// when that strictly reduces cut edges, respects the capacity and does not
// empty the source part. Sweeps stop early once a full pass moves nothing.
func (g *Graph) refinePartition(part, size []int, nparts, capPer int) {
	degTo := make([]int, nparts)
	for sweep := 0; sweep < 4; sweep++ {
		moved := false
		for v := 0; v < g.n; v++ {
			home := part[v]
			if size[home] <= 1 {
				continue
			}
			for p := range degTo {
				degTo[p] = 0
			}
			for _, e := range g.adj[v] {
				degTo[part[e.To]]++
			}
			best, bestDeg := home, degTo[home]
			for p := 0; p < nparts; p++ {
				if p == home || size[p] >= capPer {
					continue
				}
				if degTo[p] > bestDeg {
					best, bestDeg = p, degTo[p]
				}
			}
			if best != home && g.connectedWithout(part, home, NodeID(v)) {
				part[v] = best
				size[home]--
				size[best]++
				moved = true
			}
		}
		if !moved {
			break
		}
	}
}

// MinCrossDelay reports the minimum delay over edges whose endpoints lie in
// different parts of the given assignment — the conservative lookahead of
// the parallel kernel: an event executing in one part cannot affect another
// part sooner than this. Returns +Inf when no edge crosses parts (nparts=1,
// or parts that coincide with connected components).
func (g *Graph) MinCrossDelay(part []int) float64 {
	min := math.Inf(1)
	for u := NodeID(0); int(u) < g.n; u++ {
		for _, e := range g.adj[u] {
			if part[u] != part[e.To] && e.Delay < min {
				min = e.Delay
			}
		}
	}
	return min
}

// CutEdges counts the undirected edges crossing parts under the assignment
// (each cut edge counted once). Exported for the partitioner's tests and the
// bench harness's partition diagnostics.
func (g *Graph) CutEdges(part []int) int {
	cut := 0
	for u := NodeID(0); int(u) < g.n; u++ {
		for _, e := range g.adj[u] {
			if u < e.To && part[u] != part[e.To] {
				cut++
			}
		}
	}
	return cut
}
