package graph

import (
	"math"
	"reflect"
	"testing"
)

func TestPartitionAssignsEveryNodeWithinCapacity(t *testing.T) {
	g := RandomConnected(64, 4, DelayRange{Min: 0.05, Max: 0.3}, 7)
	for _, nparts := range []int{1, 2, 3, 5, 8, 17} {
		part := g.Partition(nparts)
		if len(part) != 64 {
			t.Fatalf("nparts=%d: len=%d", nparts, len(part))
		}
		size := make([]int, nparts)
		for v, p := range part {
			if p < 0 || p >= nparts {
				t.Fatalf("nparts=%d: node %d assigned out-of-range part %d", nparts, v, p)
			}
			size[p]++
		}
		// Connectivity takes precedence over the strict capacity: a node
		// whose only assigned neighbors sit in full parts overflows one of
		// them rather than teleporting into a disconnected region, so the
		// balance bound carries one node of slack.
		capPer := (64 + nparts - 1) / nparts
		for p, s := range size {
			if s == 0 {
				t.Fatalf("nparts=%d: part %d empty", nparts, p)
			}
			if s > capPer+1 {
				t.Fatalf("nparts=%d: part %d holds %d nodes, capacity %d+1", nparts, p, s, capPer)
			}
		}
		for p := 0; p < nparts; p++ {
			if comps := g.partComponents(part, p); len(comps) > 1 {
				t.Fatalf("nparts=%d: part %d splits into %d components", nparts, p, len(comps))
			}
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	a := RandomConnected(48, 3, DelayRange{Min: 0.05, Max: 0.3}, 11)
	b := RandomConnected(48, 3, DelayRange{Min: 0.05, Max: 0.3}, 11)
	for _, nparts := range []int{2, 4, 7} {
		if !reflect.DeepEqual(a.Partition(nparts), b.Partition(nparts)) {
			t.Fatalf("nparts=%d: same graph, different assignments", nparts)
		}
	}
}

func TestPartitionClampsAndValidates(t *testing.T) {
	g := RandomConnected(5, 2, DelayRange{Min: 0.1, Max: 0.2}, 3)
	part := g.Partition(9) // clamped to n: every node its own part
	seen := map[int]bool{}
	for _, p := range part {
		if seen[p] {
			t.Fatalf("nparts>n: part %d reused in %v", p, part)
		}
		seen[p] = true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Partition(0) did not panic")
		}
	}()
	g.Partition(0)
}

func TestPartitionBeatsRoundRobinCut(t *testing.T) {
	// The BFS-grown, refined assignment should cut far fewer edges than the
	// worst-case striped assignment on a geometric-ish random topology.
	g := RandomConnected(96, 4, DelayRange{Min: 0.05, Max: 0.3}, 5)
	part := g.Partition(4)
	striped := make([]int, 96)
	for v := range striped {
		striped[v] = v % 4
	}
	if got, worst := g.CutEdges(part), g.CutEdges(striped); got >= worst {
		t.Fatalf("partitioner cut %d edges, striping cuts %d", got, worst)
	}
}

// TestPartitionAtScale is the property suite backing the hierarchical
// routing layer: at n ∈ {256, 1024, 4096} with ~√n parts, every region must
// be non-empty, internally connected (the intra-region distance-vector
// bootstrap only converges over paths that stay inside the region), balanced
// within 2·ceil(n/nparts), and the assignment must be a pure function of the
// graph.
func TestPartitionAtScale(t *testing.T) {
	for _, n := range []int{256, 1024, 4096} {
		nparts := 1
		for nparts*nparts < n {
			nparts++
		}
		for _, seed := range []int64{1, 42} {
			g := RandomConnected(n, 4, DelayRange{Min: 0.05, Max: 0.3}, seed)
			part := g.Partition(nparts)
			size := make([]int, nparts)
			for v, p := range part {
				if p < 0 || p >= nparts {
					t.Fatalf("n=%d seed=%d: node %d in out-of-range part %d", n, seed, v, p)
				}
				size[p]++
			}
			capPer := (n + nparts - 1) / nparts
			for p, s := range size {
				if s == 0 {
					t.Errorf("n=%d seed=%d: part %d empty", n, seed, p)
				}
				if s > 2*capPer {
					t.Errorf("n=%d seed=%d: part %d holds %d nodes, balance bound %d",
						n, seed, p, s, 2*capPer)
				}
			}
			for p := 0; p < nparts; p++ {
				if comps := g.partComponents(part, p); len(comps) > 1 {
					t.Errorf("n=%d seed=%d: part %d splits into %d components (sizes %d, %d, ...)",
						n, seed, p, len(comps), len(comps[0]), len(comps[1]))
				}
			}
			if again := g.Partition(nparts); !reflect.DeepEqual(part, again) {
				t.Errorf("n=%d seed=%d: two runs disagree", n, seed)
			}
		}
	}
}

func BenchmarkPartition(b *testing.B) {
	g := RandomConnected(1024, 4, DelayRange{Min: 0.05, Max: 0.3}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Partition(32)
	}
}

func TestMinCrossDelay(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(1, 2, 0.2)
	g.AddEdge(2, 3, 0.9)
	part := []int{0, 0, 1, 1}
	if got := g.MinCrossDelay(part); got != 0.2 {
		t.Fatalf("MinCrossDelay = %v, want 0.2 (the 1-2 cut edge)", got)
	}
	if got := g.CutEdges(part); got != 1 {
		t.Fatalf("CutEdges = %d, want 1", got)
	}
	all := []int{0, 0, 0, 0}
	if got := g.MinCrossDelay(all); !math.IsInf(got, 1) {
		t.Fatalf("MinCrossDelay with one part = %v, want +Inf", got)
	}
	if got := g.CutEdges(all); got != 0 {
		t.Fatalf("CutEdges with one part = %d, want 0", got)
	}
}
