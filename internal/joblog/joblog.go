// Package joblog is the gateway's write-ahead job log: the durability layer
// that makes an accepted submission survive a gateway crash.
//
// The log is a single append-only file of length-prefixed, CRC-framed
// records:
//
//	u32 length | u32 crc32c(body) | body
//
// where body is the JSON encoding of a Record (JSON for debuggability —
// the log is an operator artifact; the wire codec stays reserved for
// protocol traffic). Appends are fsync-BATCHED (group commit): every
// Append blocks until its record is durable, but concurrent appends share
// one fdatasync, so a burst of submissions costs one disk flush, not one
// per job. The batch window is bounded by Options.BatchDelay.
//
// Recovery (Open) replays the valid prefix of the file and is
// truncation-tolerant: a torn final record — the shape a crash mid-write
// leaves behind — is detected by its length/CRC frame and truncated away,
// never parsed. Corruption BEFORE the final record is refused loudly
// (ErrCorrupt): silent data loss in the middle of an acknowledged history
// must never look like a clean recovery.
package joblog

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// frameHeader is the per-record frame: u32 little-endian body length plus
// u32 CRC-32C (Castagnoli) of the body.
const frameHeader = 8

// MaxRecord bounds one record's body. It matches the wire codec's MaxFrame
// order of magnitude: a record larger than this is a corrupt length field,
// not a legitimate job.
const MaxRecord = 4 << 20

// castagnoli is the CRC-32C table; the same polynomial storage systems use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports corruption strictly before the final record — history
// that was acknowledged durable and then damaged. Open refuses to treat it
// as a clean recovery.
var ErrCorrupt = errors.New("joblog: corrupt record before the log tail")

// RecordType names the three events the gateway logs.
type RecordType string

// The record types, in the order a job's life emits them.
const (
	// TypeSubmitted is appended — and fsynced — BEFORE the client's
	// submission is acknowledged; it carries everything needed to replay
	// the job into the cluster.
	TypeSubmitted RecordType = "submitted"
	// TypeForwarded maps the gateway job id to the cluster job id the
	// backing node assigned; appended after the cluster accepted the
	// submission.
	TypeForwarded RecordType = "forwarded"
	// TypeDecided closes the job: the cluster reached a guarantee
	// decision (or the job was written off).
	TypeDecided RecordType = "decided"
)

// Record is one logged event. Fields are populated per type: Submitted
// fills Tenant/ClientKey/Deadline/Graph, Forwarded fills ClusterID,
// Decided fills Outcome and DecisionLatency.
type Record struct {
	Type RecordType `json:"type"`
	// ID is the gateway-assigned job id ("g17"), the key every later
	// record refers back to.
	ID string `json:"id"`
	// Seq is the numeric suffix of ID; recovery seeds the gateway's id
	// counter past the highest replayed Seq so restarts never reuse ids.
	Seq       uint64 `json:"seq,omitempty"`
	Tenant    string `json:"tenant,omitempty"`
	ClientKey string `json:"client_key,omitempty"`
	// At is the submission's virtual arrival time; Deadline is relative
	// to it. Both are replayed verbatim.
	At       float64 `json:"at,omitempty"`
	Deadline float64 `json:"deadline,omitempty"`
	// Graph is the submitted DAG in the dag package's JSON schema,
	// verbatim — replay re-submits exactly what was acknowledged.
	Graph           json.RawMessage `json:"graph,omitempty"`
	ClusterID       string          `json:"cluster_id,omitempty"`
	Outcome         string          `json:"outcome,omitempty"`
	DecisionLatency float64         `json:"decision_latency,omitempty"`
}

// Options tunes the fsync batching and recovery behavior.
type Options struct {
	// BatchDelay bounds how long an Append may wait for companions before
	// the batch is flushed anyway. 0 means DefaultBatchDelay. Smaller is
	// lower latency, larger is fewer fsyncs under load.
	BatchDelay time.Duration
	// NoSync disables fsync entirely (tests and benchmarks on tmpfs where
	// durability is moot). Appends still go through the batch writer so
	// the code path stays the same.
	NoSync bool
	// OnSync, when set, observes every fsync's wall-clock duration — the
	// gateway feeds its joblog fsync-latency histogram from it.
	OnSync func(d time.Duration)

	// failpoint, when set, wraps the file for fault-injection tests:
	// write/sync errors and crash-shaped torn writes are injected there.
	// In-package tests only.
	failpoint func(w syncWriter) syncWriter
}

// DefaultBatchDelay is the fsync batch window: long enough to coalesce a
// burst, short enough to stay invisible next to network latency.
const DefaultBatchDelay = 2 * time.Millisecond

// syncWriter is the slice of *os.File the log writes through; the
// failpoint writer wraps it to inject crashes at batch boundaries.
type syncWriter interface {
	io.Writer
	Sync() error
}

// Log is an open write-ahead job log. Safe for concurrent Append.
type Log struct {
	opts Options
	f    *os.File
	w    syncWriter

	mu      sync.Mutex
	closed  bool
	pending []chan error // appenders waiting for the running batch
	syncing bool
	err     error // sticky: a failed write or sync poisons the log
}

// Open replays the log at path (creating it if absent), truncates a torn
// tail, and returns the log opened for append plus the replayed records in
// order. Corruption before the tail returns ErrCorrupt.
func Open(path string, opts Options) (*Log, []Record, error) {
	if opts.BatchDelay <= 0 {
		opts.BatchDelay = DefaultBatchDelay
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	records, valid, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Truncate the torn tail (no-op when the file ends cleanly), then seek
	// to the end for appends.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	l := &Log{opts: opts, f: f, w: f}
	if opts.failpoint != nil {
		l.w = opts.failpoint(f)
	}
	return l, records, nil
}

// scan reads the valid record prefix of f, returning the records and the
// byte offset where validity ends. A bad frame at the tail (torn write) is
// fine — recovery truncates it; a bad frame followed by a GOOD frame means
// mid-file corruption and returns ErrCorrupt.
func scan(f *os.File) ([]Record, int64, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, err
	}
	var records []Record
	var offset int64
	for int64(len(data))-offset >= frameHeader {
		body, next, ok := frameAt(data, offset)
		if !ok {
			break
		}
		var rec Record
		if err := json.Unmarshal(body, &rec); err != nil {
			// The CRC matched but the body is not a record: that is not a
			// torn write, it is corruption (or a foreign file).
			return nil, 0, fmt.Errorf("%w: undecodable record at offset %d: %v", ErrCorrupt, offset, err)
		}
		records = append(records, rec)
		offset = next
	}
	// Anything after offset must be a torn tail: if another whole valid
	// frame exists further on, the damage is in the middle.
	rest := data[offset:]
	for probe := int64(1); probe+frameHeader <= int64(len(rest)); probe++ {
		if _, _, ok := frameAt(rest, probe); ok {
			return nil, 0, fmt.Errorf("%w: valid frame after damage at offset %d", ErrCorrupt, offset)
		}
	}
	return records, offset, nil
}

// frameAt decodes the frame starting at offset; ok is false when the frame
// is incomplete or fails its CRC.
func frameAt(data []byte, offset int64) (body []byte, next int64, ok bool) {
	if int64(len(data))-offset < frameHeader {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(data[offset:])
	crc := binary.LittleEndian.Uint32(data[offset+4:])
	if n == 0 || n > MaxRecord || offset+frameHeader+int64(n) > int64(len(data)) {
		return nil, 0, false
	}
	body = data[offset+frameHeader : offset+frameHeader+int64(n)]
	if crc32.Checksum(body, castagnoli) != crc {
		return nil, 0, false
	}
	return body, offset + frameHeader + int64(n), true
}

// Append frames, writes and durably flushes one record, blocking until the
// record's fsync batch completes. Concurrent appenders share a batch: the
// first one in becomes the syncer, waits BatchDelay for companions, then
// flushes once for everyone.
func (l *Log) Append(rec Record) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if len(body) > MaxRecord {
		return fmt.Errorf("joblog: record of %d bytes exceeds MaxRecord", len(body))
	}
	var frame [frameHeader]byte
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(body, castagnoli))

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("joblog: log is closed")
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if _, err := l.w.Write(frame[:]); err == nil {
		_, err = l.w.Write(body)
		if err != nil {
			l.err = err
		}
	} else {
		l.err = err
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	done := make(chan error, 1)
	l.pending = append(l.pending, done)
	lead := !l.syncing
	if lead {
		l.syncing = true
	}
	l.mu.Unlock()

	if lead {
		// Group commit: give companions the batch window, flush once, and
		// keep flushing while late joiners queued up during the fsync —
		// an appender that saw syncing=true relies on this loop.
		for {
			if l.opts.BatchDelay > 0 && !l.opts.NoSync {
				time.Sleep(l.opts.BatchDelay)
			}
			if !l.flushBatch() {
				break
			}
		}
	}
	return <-done
}

// flushBatch fsyncs the file once and releases every appender that joined
// the batch before the sync started. It reports whether new appenders
// queued during the fsync (the leader then flushes again for them).
func (l *Log) flushBatch() bool {
	l.mu.Lock()
	waiters := l.pending
	l.pending = nil
	l.mu.Unlock()

	var err error
	if !l.opts.NoSync {
		start := time.Now()
		err = l.w.Sync()
		if l.opts.OnSync != nil {
			l.opts.OnSync(time.Since(start))
		}
	}
	l.mu.Lock()
	if err != nil && l.err == nil {
		l.err = err
	}
	err = l.err
	more := len(l.pending) > 0
	if !more {
		l.syncing = false
	}
	l.mu.Unlock()
	for _, ch := range waiters {
		ch <- err
	}
	return more
}

// Sync forces an immediate fsync outside the batch path (Close and tests).
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed || l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()
	if l.opts.NoSync {
		return nil
	}
	return l.w.Sync()
}

// Close flushes and closes the file. Further Appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	var syncErr error
	if !l.opts.NoSync {
		syncErr = l.f.Sync()
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return syncErr
}

// Replay summarizes a recovered record stream into per-job state: the
// latest known stage of every gateway job id, in first-submission order.
type Replay struct {
	// Jobs holds one entry per submitted gateway job id.
	Jobs []*ReplayJob
	// NextSeq is one past the highest Seq seen; the gateway's id counter
	// resumes here.
	NextSeq uint64
	byID    map[string]*ReplayJob
}

// ReplayJob is one job's recovered state.
type ReplayJob struct {
	Submitted Record
	// ClusterID is set when a forwarded record was recovered: the job
	// reached the cluster under this id before the crash.
	ClusterID string
	// Outcome is set when a decided record was recovered; such jobs are
	// closed and need no replay.
	Outcome string
}

// Undecided reports whether the job still needs driving: submitted (and
// possibly forwarded) but never decided.
func (j *ReplayJob) Undecided() bool { return j.Outcome == "" }

// Summarize folds a recovered record stream into per-job replay state.
// Folding is idempotent by construction: duplicate records of any type
// collapse onto the same job entry, so replaying a log twice (or a log
// that was itself produced by a replay) yields identical state — the
// duplicate-replay test pins this.
func Summarize(records []Record) *Replay {
	r := &Replay{byID: make(map[string]*ReplayJob)}
	for _, rec := range records {
		if rec.Seq >= r.NextSeq {
			r.NextSeq = rec.Seq + 1
		}
		switch rec.Type {
		case TypeSubmitted:
			if _, dup := r.byID[rec.ID]; dup {
				continue // idempotent: same id resubmitted by a replayed log
			}
			j := &ReplayJob{Submitted: rec}
			r.byID[rec.ID] = j
			r.Jobs = append(r.Jobs, j)
		case TypeForwarded:
			if j := r.byID[rec.ID]; j != nil && j.ClusterID == "" {
				j.ClusterID = rec.ClusterID
			}
		case TypeDecided:
			if j := r.byID[rec.ID]; j != nil && j.Outcome == "" {
				j.Outcome = rec.Outcome
			}
		}
	}
	return r
}
