package joblog

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// testOpts keeps tests fast: tiny batch window, real fsync (tmp dirs are
// cheap and the sync path is exactly what the failpoint tests target).
func testOpts() Options { return Options{BatchDelay: 100 * time.Microsecond} }

func rec(t RecordType, id string, seq uint64) Record {
	return Record{Type: t, ID: id, Seq: seq, Tenant: "acme",
		Deadline: 40, Graph: json.RawMessage(`{"name":"g"}`)}
}

func openOrDie(t *testing.T, path string, opts Options) (*Log, []Record) {
	t.Helper()
	l, records, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, records
}

func TestAppendAndRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "joblog")
	l, records := openOrDie(t, path, testOpts())
	if len(records) != 0 {
		t.Fatalf("fresh log replayed %d records", len(records))
	}
	want := []Record{
		rec(TypeSubmitted, "g0", 0),
		{Type: TypeForwarded, ID: "g0", ClusterID: "j1@2"},
		rec(TypeSubmitted, "g1", 1),
		{Type: TypeDecided, ID: "g0", Outcome: "accepted-distributed"},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got := openOrDie(t, path, testOpts())
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].ID != want[i].ID {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	rep := Summarize(got)
	if len(rep.Jobs) != 2 {
		t.Fatalf("summarized %d jobs, want 2", len(rep.Jobs))
	}
	if rep.NextSeq != 2 {
		t.Errorf("NextSeq = %d, want 2", rep.NextSeq)
	}
	if j := rep.Jobs[0]; j.Undecided() || j.ClusterID != "j1@2" || j.Outcome != "accepted-distributed" {
		t.Errorf("job g0 state wrong: %+v", j)
	}
	if j := rep.Jobs[1]; !j.Undecided() || j.ClusterID != "" {
		t.Errorf("job g1 should be undecided and unforwarded: %+v", j)
	}
}

// A torn final record — the crash-mid-write shape — must be truncated away
// on recovery, and the log must keep working from the truncated offset.
func TestTornFinalRecordTruncated(t *testing.T) {
	for _, tear := range []struct {
		name string
		cut  func(data []byte) []byte
	}{
		{"half the header", func(d []byte) []byte { return d[:len(d)-3] }},
		{"header only", nil}, // filled below: cut back to last header
		{"half the body", func(d []byte) []byte { return d[:len(d)-10] }},
		{"corrupt tail crc", func(d []byte) []byte {
			d[len(d)-1] ^= 0xff
			return d
		}},
	} {
		t.Run(tear.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "joblog")
			l, _ := openOrDie(t, path, testOpts())
			for i := 0; i < 3; i++ {
				if err := l.Append(rec(TypeSubmitted, fmt.Sprintf("g%d", i), uint64(i))); err != nil {
					t.Fatal(err)
				}
			}
			l.Close()

			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if tear.cut != nil {
				data = tear.cut(data)
			} else {
				// Cut everything past the last record's frame header.
				_, valid, err := scanBytes(t, data[:len(data)-1])
				if err != nil {
					t.Fatal(err)
				}
				data = data[:valid+frameHeader]
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}

			l2, records := openOrDie(t, path, testOpts())
			if len(records) != 2 {
				t.Fatalf("replayed %d records after tear, want 2", len(records))
			}
			// The truncated log must accept appends cleanly…
			if err := l2.Append(rec(TypeSubmitted, "g9", 9)); err != nil {
				t.Fatal(err)
			}
			l2.Close()
			// …and a third recovery sees exactly the two survivors plus the
			// new record.
			l3, records := openOrDie(t, path, testOpts())
			defer l3.Close()
			if len(records) != 3 || records[2].ID != "g9" {
				t.Fatalf("post-tear append not recovered: %+v", records)
			}
		})
	}
}

// scanBytes runs the recovery scanner over an in-memory image via a temp
// file (scan takes the open *os.File Open hands it).
func scanBytes(t *testing.T, data []byte) ([]Record, int64, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scan")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	return scan(f)
}

// Damage strictly before the tail is corruption, not a torn write: the
// bytes were acknowledged durable. Recovery must refuse.
func TestMidFileCorruptionRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "joblog")
	l, _ := openOrDie(t, path, testOpts())
	for i := 0; i < 4; i++ {
		if err := l.Append(rec(TypeSubmitted, fmt.Sprintf("g%d", i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff // flip a bit in the middle of the history
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(path, testOpts())
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-file corruption recovered silently: err=%v", err)
	}
}

// Replaying the same history twice (a log written by a process that itself
// replayed) must fold to identical state: duplicate submitted/forwarded/
// decided records collapse onto one job entry.
func TestDuplicateReplayIdempotent(t *testing.T) {
	history := []Record{
		rec(TypeSubmitted, "g0", 0),
		{Type: TypeForwarded, ID: "g0", ClusterID: "j1@0"},
		rec(TypeSubmitted, "g1", 1),
		{Type: TypeDecided, ID: "g0", Outcome: "rejected"},
	}
	once := Summarize(history)
	twice := Summarize(append(append([]Record(nil), history...), history...))
	if len(once.Jobs) != len(twice.Jobs) {
		t.Fatalf("duplicate replay changed job count: %d vs %d", len(once.Jobs), len(twice.Jobs))
	}
	for i := range once.Jobs {
		a, b := once.Jobs[i], twice.Jobs[i]
		if a.Submitted.ID != b.Submitted.ID || a.ClusterID != b.ClusterID || a.Outcome != b.Outcome {
			t.Errorf("job %d diverged under duplicate replay: %+v vs %+v", i, a, b)
		}
	}
	if once.NextSeq != twice.NextSeq {
		t.Errorf("NextSeq diverged: %d vs %d", once.NextSeq, twice.NextSeq)
	}
	// A conflicting duplicate (same id, different outcome) must keep the
	// FIRST decision — the one that was acknowledged first.
	conflicted := append(append([]Record(nil), history...),
		Record{Type: TypeDecided, ID: "g0", Outcome: "accepted-local"})
	if got := Summarize(conflicted).Jobs[0].Outcome; got != "rejected" {
		t.Errorf("later conflicting decision overwrote the first: %q", got)
	}
}

// crashWriter is the failpoint writer: it passes writes through until the
// configured fsync boundary, then drops every byte written after the last
// completed sync — the shape a power cut at a batch boundary leaves when
// the page cache never reached the platter.
type crashWriter struct {
	mu          sync.Mutex
	synced      []byte // bytes guaranteed durable (made it to a completed Sync)
	buffered    []byte // bytes written since the last completed Sync
	crashOnSync int    // crash when this many syncs have completed
	syncs       int
	crashed     bool
}

var errCrashed = errors.New("joblog_test: injected crash")

func (c *crashWriter) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, errCrashed
	}
	c.buffered = append(c.buffered, p...)
	return len(p), nil
}

func (c *crashWriter) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return errCrashed
	}
	if c.syncs == c.crashOnSync {
		// The crash hits AT the batch boundary: everything buffered since
		// the last sync is lost, possibly mid-record.
		if tear := len(c.buffered) / 2; tear > 0 {
			c.synced = append(c.synced, c.buffered[:tear]...)
		}
		c.crashed = true
		return errCrashed
	}
	c.synced = append(c.synced, c.buffered...)
	c.buffered = nil
	c.syncs++
	return nil
}

// durableImage is what the disk holds after the "crash".
func (c *crashWriter) durableImage() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.synced...)
}

// TestFsyncBatchBoundaryCrash injects a crash at an fsync-batch boundary:
// records flushed by completed batches survive; the batch in flight is torn
// mid-record and must truncate away on recovery, leaving a log equal to
// exactly the acknowledged prefix.
func TestFsyncBatchBoundaryCrash(t *testing.T) {
	cw := &crashWriter{crashOnSync: 2}
	opts := testOpts()
	opts.failpoint = func(syncWriter) syncWriter { return cw }

	dir := t.TempDir()
	l, _ := openOrDie(t, filepath.Join(dir, "joblog-live"), opts)
	var acked []string
	for i := 0; ; i++ {
		if i > 100 {
			t.Fatal("crash never fired")
		}
		id := fmt.Sprintf("g%d", i)
		err := l.Append(rec(TypeSubmitted, id, uint64(i)))
		if err != nil {
			if !errors.Is(err, errCrashed) {
				t.Fatalf("unexpected append error: %v", err)
			}
			break
		}
		acked = append(acked, id)
	}
	// Every append after the crash fails fast: the log is poisoned, no
	// acknowledgment can follow a lost write.
	if err := l.Append(rec(TypeSubmitted, "late", 999)); !errors.Is(err, errCrashed) {
		t.Fatalf("append after crash returned %v, want the sticky crash error", err)
	}

	// "Reboot": recover from the bytes that actually reached the platter.
	image := filepath.Join(dir, "joblog-rebooted")
	if err := os.WriteFile(image, cw.durableImage(), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, records := openOrDie(t, image, testOpts())
	defer l2.Close()

	// The recovered set must be exactly a prefix of the acknowledged ids:
	// nothing acknowledged-then-lost is tolerated SILENTLY (the append
	// error above is the loud half), and nothing unacknowledged may
	// resurrect out of order.
	if len(records) > len(acked) {
		t.Fatalf("recovered %d records but only %d were acknowledged", len(records), len(acked))
	}
	for i, r := range records {
		if r.ID != acked[i] {
			t.Errorf("recovered record %d is %s, want %s", i, r.ID, acked[i])
		}
	}
	// And every record from a COMPLETED batch is there: the torn tail can
	// only eat the final, in-flight batch. With 2 completed syncs at least
	// 2 records must survive.
	if len(records) < 2 {
		t.Errorf("only %d records survived 2 completed fsync batches", len(records))
	}
}

// Concurrent appends share fsync batches and all land durably.
func TestConcurrentAppendsAllDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "joblog")
	syncs := 0
	opts := testOpts()
	opts.BatchDelay = 2 * time.Millisecond
	opts.OnSync = func(time.Duration) { syncs++ }
	l, _ := openOrDie(t, path, opts)

	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = l.Append(rec(TypeSubmitted, fmt.Sprintf("g%d", i), uint64(i)))
		}(i)
	}
	wg.Wait()
	l.Close()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if syncs >= n {
		t.Errorf("%d fsyncs for %d concurrent appends — batching is not happening", syncs, n)
	}
	l2, records := openOrDie(t, path, testOpts())
	defer l2.Close()
	if len(records) != n {
		t.Fatalf("recovered %d of %d concurrent appends", len(records), n)
	}
}
