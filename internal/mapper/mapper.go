// Package mapper implements the Trial-Mapping construction of the paper
// (§9, instantiated in §12): given a DAG, the ACS member sites with their
// surpluses (in descending order), and the ACS delay diameter ω, it
// list-schedules the tasks onto logical processors and derives per-task
// releases r(t) and deadlines d(t), adjusted to the job window by the
// paper's equations (1)–(5).
//
// The mapper instance of §12:
//
//   - task selection: list scheduling by critical-path priority — the
//     longest node-weighted path from the task to a sink (task included);
//     the list contains only free tasks;
//   - processor selection: greedy earliest finishing time;
//   - durations: c(t) divided by the processor's surplus I (paper eq. 1)
//     and, for the §13 uniform-machines extension, by its computing power;
//   - communication: ω between distinct logical processors, 0 within one.
//
// Alternative heuristics are provided for the ablation experiment E8, since
// §9 notes "almost any heuristic can be adapted to our purpose".
package mapper

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/graph"
)

// ProcInfo describes one candidate logical processor: an ACS member site
// with its reported surplus.
type ProcInfo struct {
	Site    graph.NodeID
	Surplus float64 // I ∈ (0, 1]
	Power   float64 // relative computing power; 0 means 1 (identical machines)
}

func (p ProcInfo) power() float64 {
	if p.Power <= 0 {
		return 1
	}
	return p.Power
}

// Heuristic selects the processor for each task during list scheduling.
type Heuristic int

const (
	// HeuristicCPEFT is the paper's instance: earliest finishing time.
	HeuristicCPEFT Heuristic = iota
	// HeuristicBestSurplus always picks the highest-surplus processor —
	// it concentrates work and serves as an ablation baseline.
	HeuristicBestSurplus
	// HeuristicRoundRobin cycles through processors, ignoring both load and
	// communication — the naive spread-everything baseline.
	HeuristicRoundRobin
	// HeuristicMinMin jointly selects the (free task, processor) pair with
	// the minimum earliest finishing time instead of ordering tasks by
	// critical-path priority — the classic min-min heuristic of the
	// heterogeneous-computing literature (cf. Iverson & Özgüner [7, 8]).
	HeuristicMinMin
)

// String implements fmt.Stringer.
func (h Heuristic) String() string {
	switch h {
	case HeuristicCPEFT:
		return "cp-eft"
	case HeuristicBestSurplus:
		return "best-surplus"
	case HeuristicRoundRobin:
		return "round-robin"
	case HeuristicMinMin:
		return "min-min"
	default:
		return fmt.Sprintf("heuristic(%d)", int(h))
	}
}

// LaxityMode selects how the extra laxity of case (iii) is scattered
// (paper §12.2 and the §13 "Laxity Dispatching" generalization).
type LaxityMode int

const (
	// LaxityUniform uses the constant ℓ = (d − r − M*)/η of §12.2.
	LaxityUniform LaxityMode = iota
	// LaxityBusynessWeighted gives tasks on busy processors more laxity:
	// ℓ(t) ∝ 1 − I(p(t)), normalized so no critical chain exceeds the
	// available laxity (§13).
	LaxityBusynessWeighted
)

// String implements fmt.Stringer.
func (m LaxityMode) String() string {
	if m == LaxityBusynessWeighted {
		return "busyness-weighted"
	}
	return "uniform"
}

// Options tunes the mapper.
type Options struct {
	Heuristic  Heuristic
	LaxityMode LaxityMode
	// Throughput enables the §13 data-volume model: the communication
	// delay between distinct logical processors for a DAG edge becomes
	// ω + volume/Throughput. Zero ignores data volumes (the base model).
	Throughput float64
}

// AdjustCase records which branch of §12.2 applied.
type AdjustCase int

const (
	// CaseRejected: M* > d − r, the job cannot fit even at full speed (i).
	CaseRejected AdjustCase = iota
	// CaseScale: M ≤ d − r, windows scaled by (d−r)/M (ii).
	CaseScale
	// CaseLaxity: M* ≤ d − r < M, windows rebuilt from S* with laxity (iii).
	CaseLaxity
)

// String implements fmt.Stringer.
func (c AdjustCase) String() string {
	switch c {
	case CaseRejected:
		return "rejected"
	case CaseScale:
		return "scale"
	case CaseLaxity:
		return "laxity"
	default:
		return fmt.Sprintf("case(%d)", int(c))
	}
}

// Assignment is one task's placement in the trial schedules.
type Assignment struct {
	Proc        int     // logical processor index into TrialMapping.Procs
	Start       float64 // start in S (the surplus-scaled schedule)
	Finish      float64 // finish in S: the paper's di
	IdealStart  float64 // start in S* (surpluses = 100%)
	IdealFinish float64 // finish in S*
}

// TaskWindow is the validated contract for one task: it must execute for
// Complexity/power time units inside [Release, Deadline] on whichever site
// endorses the logical processor.
type TaskWindow struct {
	Task       dag.TaskID
	Complexity float64
	Release    float64
	Deadline   float64
}

// TrialMapping is the mapper's output M = (S, r, d) of paper §9.
type TrialMapping struct {
	Procs    []ProcInfo // logical processors actually used
	Assign   map[dag.TaskID]Assignment
	Release  map[dag.TaskID]float64 // adjusted r(ti)
	Deadline map[dag.TaskID]float64 // adjusted d(ti)

	Makespan      float64 // M, measured from the job release
	IdealMakespan float64 // M*, lower bound of M for this mapping
	Case          AdjustCase
	Omega         float64
	Throughput    float64 // 0 when data volumes are ignored
	Eta           int     // η: only meaningful in CaseLaxity
	JobRelease    float64 // r
	JobDeadline   float64 // d (absolute)
}

// Tasks lists Ti — the windows of tasks assigned to logical processor i —
// sorted by task ID.
func (m *TrialMapping) Tasks(g *dag.Graph, proc int) []TaskWindow {
	var out []TaskWindow
	for _, id := range g.TaskIDs() {
		if a, ok := m.Assign[id]; ok && a.Proc == proc {
			out = append(out, TaskWindow{
				Task:       id,
				Complexity: g.Complexity(id),
				Release:    m.Release[id],
				Deadline:   m.Deadline[id],
			})
		}
	}
	return out
}

// Errors distinguishing rejection reasons.
var (
	ErrNoProcessors = errors.New("mapper: no candidate processors")
	// ErrWindowTooTight is case (i): M* > d − r.
	ErrWindowTooTight = errors.New("mapper: ideal makespan exceeds the job window (case i)")
	// ErrInconsistentWindows: the case-(iii) adjustment produced a task
	// whose window cannot hold its execution time.
	ErrInconsistentWindows = errors.New("mapper: adjusted windows cannot hold task executions")
)

const eps = 1e-9

// Build constructs and adjusts the trial mapping. procs must be the ACS
// members sorted by descending surplus (the paper's mapper input); r is the
// effective job release (arrival plus protocol latency allowance, see §13)
// and d the absolute job deadline.
func Build(g *dag.Graph, procs []ProcInfo, omega, r, d float64, opts Options) (*TrialMapping, error) {
	if len(procs) == 0 {
		return nil, ErrNoProcessors
	}
	for i, p := range procs {
		if p.Surplus <= 0 || p.Surplus > 1+eps {
			return nil, fmt.Errorf("mapper: processor %d has invalid surplus %v", i, p.Surplus)
		}
	}
	if omega < 0 || d <= r {
		return nil, fmt.Errorf("mapper: invalid window r=%v d=%v omega=%v", r, d, omega)
	}

	if opts.Throughput < 0 {
		return nil, fmt.Errorf("mapper: negative throughput %v", opts.Throughput)
	}
	sched := listSchedule(g, procs, omega, opts.Throughput, r, opts.Heuristic)
	ideal := idealize(g, procs, omega, opts.Throughput, r, sched)

	m := &TrialMapping{
		Assign:      make(map[dag.TaskID]Assignment, g.Len()),
		Release:     make(map[dag.TaskID]float64, g.Len()),
		Deadline:    make(map[dag.TaskID]float64, g.Len()),
		Omega:       omega,
		Throughput:  opts.Throughput,
		JobRelease:  r,
		JobDeadline: d,
	}
	var maxFin, maxIdeal float64
	for id, pl := range sched.place {
		ia := ideal[id]
		m.Assign[id] = Assignment{
			Proc: pl.proc, Start: pl.start, Finish: pl.finish,
			IdealStart: ia.start, IdealFinish: ia.finish,
		}
		maxFin = math.Max(maxFin, pl.finish)
		maxIdeal = math.Max(maxIdeal, ia.finish)
	}
	m.Makespan = maxFin - r
	m.IdealMakespan = maxIdeal - r

	window := d - r
	switch {
	case m.IdealMakespan > window+eps: // case (i)
		m.Case = CaseRejected
		return nil, ErrWindowTooTight
	case m.Makespan <= window+eps: // case (ii)
		m.Case = CaseScale
		m.adjustByScaling(g, procs)
	default: // case (iii)
		m.Case = CaseLaxity
		if err := m.adjustByLaxity(g, procs, opts.LaxityMode); err != nil {
			return nil, err
		}
	}
	m.trimProcs(procs)
	return m, nil
}

// CommDelay is the over-estimated communication delay from pred to succ
// across distinct logical processors: the ACS delay diameter ω plus, when
// the §13 data-volume model is on, the transfer time of the edge's data.
func CommDelay(g *dag.Graph, omega, throughput float64, pred, succ dag.TaskID) float64 {
	if throughput <= 0 {
		return omega
	}
	return omega + g.EdgeVolume(pred, succ)/throughput
}

// comm is CommDelay bound to a mapping's parameters.
func (m *TrialMapping) comm(g *dag.Graph, pred, succ dag.TaskID) float64 {
	return CommDelay(g, m.Omega, m.Throughput, pred, succ)
}

// placement is one task's slot during list scheduling.
type placement struct {
	proc          int
	start, finish float64
}

type builtSchedule struct {
	place     map[dag.TaskID]placement
	procOrder [][]dag.TaskID // per-processor task sequence, in start order
}

// listSchedule runs the §12 list-scheduling loop.
func listSchedule(g *dag.Graph, procs []ProcInfo, omega, throughput, r float64, h Heuristic) builtSchedule {
	place := make(map[dag.TaskID]placement, g.Len())
	procAvail := make([]float64, len(procs))
	for i := range procAvail {
		procAvail[i] = r
	}
	procOrder := make([][]dag.TaskID, len(procs))
	remainingPreds := make(map[dag.TaskID]int, g.Len())
	var free []dag.TaskID
	for _, id := range g.TaskIDs() {
		remainingPreds[id] = len(g.Predecessors(id))
		if remainingPreds[id] == 0 {
			free = append(free, id)
		}
	}
	rrNext := 0 // round-robin cursor

	startOn := func(id dag.TaskID, proc int) float64 {
		start := math.Max(procAvail[proc], r)
		for _, p := range g.Predecessors(id) {
			pp := place[p]
			comm := 0.0
			if pp.proc != proc {
				comm = CommDelay(g, omega, throughput, p, id)
			}
			if t := pp.finish + comm; t > start {
				start = t
			}
		}
		return start
	}
	duration := func(id dag.TaskID, proc int) float64 {
		return g.Complexity(id) / (procs[proc].Surplus * procs[proc].power())
	}

	for len(free) > 0 {
		var id dag.TaskID
		if h == HeuristicMinMin {
			// Joint (task, processor) selection: smallest achievable EFT
			// over all free tasks; ties by smaller task ID.
			sort.Slice(free, func(i, j int) bool { return free[i] < free[j] })
			bestIdx, bestProc := 0, 0
			bestFin := math.Inf(1)
			for i, cand := range free {
				for p := range procs {
					fin := startOn(cand, p) + duration(cand, p)
					if fin < bestFin-eps {
						bestFin = fin
						bestIdx, bestProc = i, p
					}
				}
			}
			id = free[bestIdx]
			free = append(free[:bestIdx], free[bestIdx+1:]...)
			start := startOn(id, bestProc)
			fin := start + duration(id, bestProc)
			place[id] = placement{proc: bestProc, start: start, finish: fin}
			procAvail[bestProc] = fin
			procOrder[bestProc] = append(procOrder[bestProc], id)
			for _, s := range g.Successors(id) {
				remainingPreds[s]--
				if remainingPreds[s] == 0 {
					free = append(free, s)
				}
			}
			continue
		}

		// Highest critical-path priority first; ties by smaller ID.
		sort.Slice(free, func(i, j int) bool {
			bi, bj := g.BottomLevel(free[i]), g.BottomLevel(free[j])
			if bi != bj {
				return bi > bj
			}
			return free[i] < free[j]
		})
		id = free[0]
		free = free[1:]

		proc := 0
		switch h {
		case HeuristicRoundRobin:
			proc = rrNext % len(procs)
			rrNext++
		case HeuristicBestSurplus:
			proc = 0 // procs are sorted by descending surplus
		default: // HeuristicCPEFT
			bestFinish := math.Inf(1)
			for p := range procs {
				fin := startOn(id, p) + duration(id, p)
				if fin < bestFinish-eps {
					bestFinish = fin
					proc = p
				}
			}
		}
		start := startOn(id, proc)
		fin := start + duration(id, proc)
		place[id] = placement{proc: proc, start: start, finish: fin}
		procAvail[proc] = fin
		procOrder[proc] = append(procOrder[proc], id)

		for _, s := range g.Successors(id) {
			remainingPreds[s]--
			if remainingPreds[s] == 0 {
				free = append(free, s)
			}
		}
	}
	return builtSchedule{place: place, procOrder: procOrder}
}

// idealize recomputes the schedule times with surpluses at 100% (schedule
// S* of §12.2), keeping the mapping and the per-processor task order of S.
func idealize(g *dag.Graph, procs []ProcInfo, omega, throughput, r float64, s builtSchedule) map[dag.TaskID]placement {
	ideal := make(map[dag.TaskID]placement, len(s.place))
	procAvail := make([]float64, len(procs))
	for i := range procAvail {
		procAvail[i] = r
	}
	cursor := make([]int, len(procs))
	placed := 0
	for placed < len(s.place) {
		progressed := false
		for p := range procs {
			for cursor[p] < len(s.procOrder[p]) {
				id := s.procOrder[p][cursor[p]]
				ready := true
				start := math.Max(procAvail[p], r)
				for _, pr := range g.Predecessors(id) {
					ia, ok := ideal[pr]
					if !ok {
						ready = false
						break
					}
					comm := 0.0
					if ia.proc != p {
						comm = CommDelay(g, omega, throughput, pr, id)
					}
					if t := ia.finish + comm; t > start {
						start = t
					}
				}
				if !ready {
					break
				}
				fin := start + g.Complexity(id)/procs[p].power()
				ideal[id] = placement{proc: p, start: start, finish: fin}
				procAvail[p] = fin
				cursor[p]++
				placed++
				progressed = true
			}
		}
		if !progressed {
			panic("mapper: S* reconstruction deadlocked (inconsistent schedule order)")
		}
	}
	return ideal
}

// adjustByScaling implements case (ii): eq. (3) for deadlines, eq. (5) for
// releases.
func (m *TrialMapping) adjustByScaling(g *dag.Graph, procs []ProcInfo) {
	r, d := m.JobRelease, m.JobDeadline
	factor := (d - r) / m.Makespan
	for id, a := range m.Assign {
		m.Deadline[id] = r + (a.Finish-r)*factor // eq. (3)
	}
	m.computeReleases(g) // eq. (5)
}

// adjustByLaxity implements case (iii): eq. (4) in reverse topological
// order, then eq. (5).
func (m *TrialMapping) adjustByLaxity(g *dag.Graph, procs []ProcInfo, mode LaxityMode) error {
	r, d := m.JobRelease, m.JobDeadline
	extra := (d - r) - m.IdealMakespan
	lax := m.laxityPerTask(g, procs, mode, extra)

	topo := g.TopologicalOrder()
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		succ := g.Successors(id)
		if len(succ) == 0 {
			m.Deadline[id] = d
			continue
		}
		dl := math.Inf(1)
		ai := m.Assign[id]
		for _, s := range succ {
			as := m.Assign[s]
			comm := 0.0
			if as.Proc != ai.Proc {
				comm = m.comm(g, id, s)
			}
			durStar := as.IdealFinish - as.IdealStart // c(tj) at full speed
			cand := m.Deadline[s] - lax[s] - durStar - comm
			if cand < dl {
				dl = cand
			}
		}
		m.Deadline[id] = dl
	}
	m.computeReleases(g)

	// The paper leaves case (iii) consistency implicit; we verify that every
	// window can hold its execution (at full speed) and reject otherwise —
	// validation at the sites would fail anyway, this fails fast.
	for id, a := range m.Assign {
		durStar := a.IdealFinish - a.IdealStart
		if m.Release[id]+durStar > m.Deadline[id]+eps {
			return ErrInconsistentWindows
		}
	}
	return nil
}

// laxityPerTask computes ℓ(t) for eq. (4).
func (m *TrialMapping) laxityPerTask(g *dag.Graph, procs []ProcInfo, mode LaxityMode, extra float64) map[dag.TaskID]float64 {
	eta, critical := m.criticalStructure(g)
	m.Eta = eta
	lax := make(map[dag.TaskID]float64, g.Len())
	switch mode {
	case LaxityBusynessWeighted:
		// ℓ(t) ∝ busyness of t's processor, normalized so the heaviest
		// critical chain receives exactly `extra` in total.
		busy := func(id dag.TaskID) float64 {
			b := 1 - procs[m.Assign[id].Proc].Surplus
			if b < 0.05 {
				b = 0.05 // keep every task with some share
			}
			return b
		}
		heaviest := m.heaviestCriticalChain(g, critical, busy)
		if heaviest <= eps {
			for _, id := range g.TaskIDs() {
				lax[id] = 0
			}
			return lax
		}
		for _, id := range g.TaskIDs() {
			lax[id] = extra * busy(id) / heaviest
		}
	default: // LaxityUniform: ℓ = (d − r − M*)/η for every task
		l := 0.0
		if eta > 0 {
			l = extra / float64(eta)
		}
		for _, id := range g.TaskIDs() {
			lax[id] = l
		}
	}
	return lax
}

// computeReleases applies eq. (5) in topological order.
func (m *TrialMapping) computeReleases(g *dag.Graph) {
	for _, id := range g.TopologicalOrder() {
		preds := g.Predecessors(id)
		if len(preds) == 0 {
			m.Release[id] = m.JobRelease
			continue
		}
		ai := m.Assign[id]
		rel := m.JobRelease
		for _, p := range preds {
			ap := m.Assign[p]
			comm := 0.0
			if ap.Proc != ai.Proc {
				comm = m.comm(g, p, id)
			}
			if t := m.Deadline[p] + comm; t > rel {
				rel = t
			}
		}
		m.Release[id] = rel
	}
}

// criticalStructure finds the tasks with zero slack in S* and returns η:
// the maximum number of tasks on any critical path of S* (paper §12.2).
// The schedule graph adds same-processor succession edges to the DAG edges.
func (m *TrialMapping) criticalStructure(g *dag.Graph) (int, map[dag.TaskID]bool) {
	makespanEnd := m.JobRelease + m.IdealMakespan
	// Backward pass for latest finish times over the schedule graph.
	type edge struct {
		to   dag.TaskID
		comm float64
	}
	out := make(map[dag.TaskID][]edge, g.Len())
	addEdge := func(a, b dag.TaskID, comm float64) {
		out[a] = append(out[a], edge{to: b, comm: comm})
	}
	// DAG edges with ω across processors.
	for _, id := range g.TaskIDs() {
		for _, s := range g.Successors(id) {
			comm := 0.0
			if m.Assign[s].Proc != m.Assign[id].Proc {
				comm = m.comm(g, id, s)
			}
			addEdge(id, s, comm)
		}
	}
	// Same-processor succession edges (zero comm): consecutive tasks in S*
	// start order.
	byProc := make(map[int][]dag.TaskID)
	for _, id := range g.TaskIDs() {
		a := m.Assign[id]
		byProc[a.Proc] = append(byProc[a.Proc], id)
	}
	for p := range byProc {
		ids := byProc[p]
		sort.Slice(ids, func(i, j int) bool {
			return m.Assign[ids[i]].IdealStart < m.Assign[ids[j]].IdealStart
		})
		for i := 1; i < len(ids); i++ {
			addEdge(ids[i-1], ids[i], 0)
		}
	}

	latestFinish := make(map[dag.TaskID]float64, g.Len())
	topo := g.TopologicalOrder()
	// The schedule graph's topological order: sort by S* start time (ties by
	// DAG topo position) — succession edges always go forward in start time.
	pos := make(map[dag.TaskID]int, len(topo))
	for i, id := range topo {
		pos[id] = i
	}
	order := append([]dag.TaskID(nil), topo...)
	sort.SliceStable(order, func(i, j int) bool {
		si, sj := m.Assign[order[i]].IdealStart, m.Assign[order[j]].IdealStart
		if si != sj {
			return si < sj
		}
		return pos[order[i]] < pos[order[j]]
	})
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		lf := makespanEnd
		for _, e := range out[id] {
			durSucc := m.Assign[e.to].IdealFinish - m.Assign[e.to].IdealStart
			cand := latestFinish[e.to] - durSucc - e.comm
			if cand < lf {
				lf = cand
			}
		}
		latestFinish[id] = lf
	}
	critical := make(map[dag.TaskID]bool, g.Len())
	for _, id := range g.TaskIDs() {
		if math.Abs(latestFinish[id]-m.Assign[id].IdealFinish) <= 1e-6 {
			critical[id] = true
		}
	}
	// η: longest chain (task count) through critical tasks along tight edges.
	chain := make(map[dag.TaskID]int, g.Len())
	eta := 0
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		if !critical[id] {
			continue
		}
		best := 0
		for _, e := range out[id] {
			if !critical[e.to] {
				continue
			}
			tight := math.Abs(m.Assign[e.to].IdealStart-(m.Assign[id].IdealFinish+e.comm)) <= 1e-6
			if tight && chain[e.to] > best {
				best = chain[e.to]
			}
		}
		chain[id] = best + 1
		if chain[id] > eta {
			eta = chain[id]
		}
	}
	if eta == 0 {
		eta = 1
	}
	return eta, critical
}

// heaviestCriticalChain finds the maximum sum of weight(t) over chains of
// critical tasks (used by busyness-weighted laxity normalization).
func (m *TrialMapping) heaviestCriticalChain(g *dag.Graph, critical map[dag.TaskID]bool, weight func(dag.TaskID) float64) float64 {
	topo := g.TopologicalOrder()
	best := make(map[dag.TaskID]float64, len(topo))
	var heaviest float64
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		if !critical[id] {
			continue
		}
		b := 0.0
		for _, s := range g.Successors(id) {
			if critical[s] && best[s] > b {
				b = best[s]
			}
		}
		best[id] = b + weight(id)
		if best[id] > heaviest {
			heaviest = best[id]
		}
	}
	return heaviest
}

// trimProcs drops unused logical processors and renumbers assignments so
// |U| counts only processors that actually received tasks.
func (m *TrialMapping) trimProcs(procs []ProcInfo) {
	used := make(map[int]bool)
	for _, a := range m.Assign {
		used[a.Proc] = true
	}
	remap := make(map[int]int, len(used))
	for i := range procs {
		if used[i] {
			remap[i] = len(m.Procs)
			m.Procs = append(m.Procs, procs[i])
		}
	}
	for id, a := range m.Assign {
		a.Proc = remap[a.Proc]
		m.Assign[id] = a
	}
}

// NumProcs reports |U|.
func (m *TrialMapping) NumProcs() int { return len(m.Procs) }
