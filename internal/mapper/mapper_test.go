package mapper

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/daggen"
)

// paperDAG is the Fig. 2 task graph (see DESIGN.md §3 for the
// reverse-engineering): c = (6, 4, 4, 2, 5), edges {1→3, 2→3, 1→4, 3→5, 4→5}.
func paperDAG(t testing.TB) *dag.Graph {
	t.Helper()
	g, err := dag.NewBuilder("fig2").
		AddTask(1, 6).AddTask(2, 4).AddTask(3, 4).AddTask(4, 2).AddTask(5, 5).
		AddEdge(1, 3).AddEdge(2, 3).AddEdge(1, 4).AddEdge(3, 5).AddEdge(4, 5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// paperProcs: I1 = 0.5, I2 = 0.4 (§12.1), identical machines.
func paperProcs() []ProcInfo {
	return []ProcInfo{{Site: 1, Surplus: 0.5}, {Site: 2, Surplus: 0.4}}
}

func buildPaper(t testing.TB) *TrialMapping {
	t.Helper()
	m, err := Build(paperDAG(t), paperProcs(), 3, 0, 66, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

// TestPaperScheduleS pins Fig. 3: the schedule S computed by the mapper.
func TestPaperScheduleS(t *testing.T) {
	m := buildPaper(t)
	want := map[dag.TaskID]struct {
		proc          int
		start, finish float64
	}{
		1: {0, 0, 12},  // p1: 6/0.5 = 12
		2: {1, 0, 10},  // p2: 4/0.4 = 10
		3: {0, 13, 21}, // p1: start max(12, d2+ω=13) = 13, dur 8
		4: {1, 15, 20}, // p2: start max(10, d1+ω=15) = 15, dur 5
		5: {0, 23, 33}, // p1: start max(21, d3+0=21, d4+ω=23), dur 10
	}
	for id, w := range want {
		a := m.Assign[id]
		if a.Proc != w.proc {
			t.Errorf("task %d on proc %d, want %d", id, a.Proc, w.proc)
		}
		if math.Abs(a.Start-w.start) > 1e-9 || math.Abs(a.Finish-w.finish) > 1e-9 {
			t.Errorf("task %d in S: [%v,%v], want [%v,%v]", id, a.Start, a.Finish, w.start, w.finish)
		}
	}
	if math.Abs(m.Makespan-33) > 1e-9 {
		t.Fatalf("M = %v, want 33", m.Makespan)
	}
	if m.NumProcs() != 2 {
		t.Fatalf("|U| = %d, want 2", m.NumProcs())
	}
}

// TestPaperScheduleSStar pins Fig. 4: S* (surpluses 100%, same mapping).
func TestPaperScheduleSStar(t *testing.T) {
	m := buildPaper(t)
	want := map[dag.TaskID][2]float64{
		1: {0, 6},   // p1
		2: {0, 4},   // p2
		3: {7, 11},  // p1: max(6, 4+3) = 7
		4: {9, 11},  // p2: max(4, 6+3) = 9
		5: {14, 19}, // p1: max(11, 11+0, 11+3) = 14
	}
	for id, w := range want {
		a := m.Assign[id]
		if math.Abs(a.IdealStart-w[0]) > 1e-9 || math.Abs(a.IdealFinish-w[1]) > 1e-9 {
			t.Errorf("task %d in S*: [%v,%v], want [%v,%v]", id, a.IdealStart, a.IdealFinish, w[0], w[1])
		}
	}
	if math.Abs(m.IdealMakespan-19) > 1e-9 {
		t.Fatalf("M* = %v, want 19", m.IdealMakespan)
	}
}

// TestPaperTable1 pins the adjusted r(ti), d(ti) of Table 1 (case ii,
// scaling factor (d−r)/M = 2).
func TestPaperTable1(t *testing.T) {
	m := buildPaper(t)
	if m.Case != CaseScale {
		t.Fatalf("case = %v, want scale (ii)", m.Case)
	}
	want := map[dag.TaskID][2]float64{ // {r(ti), d(ti)}
		1: {0, 24},
		2: {0, 20},
		3: {24, 42},
		4: {27, 40},
		5: {43, 66},
	}
	for id, w := range want {
		if got := m.Release[id]; math.Abs(got-w[0]) > 1e-9 {
			t.Errorf("r(t%d) = %v, want %v", id, got, w[0])
		}
		if got := m.Deadline[id]; math.Abs(got-w[1]) > 1e-9 {
			t.Errorf("d(t%d) = %v, want %v", id, got, w[1])
		}
	}
}

func TestPaperTaskWindows(t *testing.T) {
	g := paperDAG(t)
	m := buildPaper(t)
	t0 := m.Tasks(g, 0)
	if len(t0) != 3 || t0[0].Task != 1 || t0[1].Task != 3 || t0[2].Task != 5 {
		t.Fatalf("T0 = %+v, want tasks 1,3,5", t0)
	}
	t1 := m.Tasks(g, 1)
	if len(t1) != 2 || t1[0].Task != 2 || t1[1].Task != 4 {
		t.Fatalf("T1 = %+v, want tasks 2,4", t1)
	}
	if t0[0].Complexity != 6 {
		t.Fatalf("complexity carried wrong: %v", t0[0])
	}
}

// Case (i): the window cannot hold even the full-speed schedule.
func TestCaseIRejection(t *testing.T) {
	_, err := Build(paperDAG(t), paperProcs(), 3, 0, 18, Options{})
	if err != ErrWindowTooTight {
		t.Fatalf("err = %v, want ErrWindowTooTight (M* = 19 > 18)", err)
	}
	// Boundary: d − r = 19 = M* is accepted (case iii).
	m, err := Build(paperDAG(t), paperProcs(), 3, 0, 19, Options{})
	if err != nil {
		t.Fatalf("window exactly M*: %v", err)
	}
	if m.Case != CaseLaxity {
		t.Fatalf("case = %v, want laxity (iii)", m.Case)
	}
}

// Case (iii): M* ≤ d − r < M with the paper's example numbers: window 25.
func TestCaseIIILaxity(t *testing.T) {
	g := paperDAG(t)
	m, err := Build(g, paperProcs(), 3, 0, 25, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if m.Case != CaseLaxity {
		t.Fatalf("case = %v, want laxity", m.Case)
	}
	// Critical path of S* is 1 → 4 → 5 (6 + comm 3 + 2 + comm 3 + 5 = 19);
	// η = 3.
	if m.Eta != 3 {
		t.Fatalf("η = %d, want 3", m.Eta)
	}
	// ℓ = (25 − 19)/3 = 2. Deadlines by eq. (4), reverse topological order:
	// d(t5) = 25 (sink)
	// d(t4) = d(t5) − ℓ − c(t5) − ω = 25 − 2 − 5 − 3 = 15
	// d(t3) = 25 − 2 − 5 − 0 = 18 (same proc as t5)
	// d(t2) = d(t3) − 2 − 4 − 3 = 9 (cross proc)
	// d(t1) = min(d(t3) − 2 − 4 − ω13, d(t4) − 2 − 2 − ω14)
	//       = min(18 − 6 − 0, 15 − 4 − 3) = min(12, 8) = 8
	wantD := map[dag.TaskID]float64{5: 25, 4: 15, 3: 18, 2: 9, 1: 8}
	for id, w := range wantD {
		if got := m.Deadline[id]; math.Abs(got-w) > 1e-9 {
			t.Errorf("d(t%d) = %v, want %v", id, got, w)
		}
	}
	// Releases by eq. (5): r(t1) = r(t2) = 0,
	// r(t3) = max(d1 + 0, d2 + 3) = max(8, 12) = 12
	// r(t4) = d1 + 3 = 11
	// r(t5) = max(d3 + 0, d4 + 3) = max(18, 18) = 18
	wantR := map[dag.TaskID]float64{1: 0, 2: 0, 3: 12, 4: 11, 5: 18}
	for id, w := range wantR {
		if got := m.Release[id]; math.Abs(got-w) > 1e-9 {
			t.Errorf("r(t%d) = %v, want %v", id, got, w)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	g := paperDAG(t)
	if _, err := Build(g, nil, 3, 0, 66, Options{}); err != ErrNoProcessors {
		t.Errorf("no procs: %v", err)
	}
	if _, err := Build(g, []ProcInfo{{Surplus: 0}}, 3, 0, 66, Options{}); err == nil {
		t.Error("zero surplus accepted")
	}
	if _, err := Build(g, []ProcInfo{{Surplus: 1.5}}, 3, 0, 66, Options{}); err == nil {
		t.Error("surplus > 1 accepted")
	}
	if _, err := Build(g, paperProcs(), -1, 0, 66, Options{}); err == nil {
		t.Error("negative omega accepted")
	}
	if _, err := Build(g, paperProcs(), 3, 10, 10, Options{}); err == nil {
		t.Error("empty window accepted")
	}
}

func TestSingleProcessorMapping(t *testing.T) {
	g := paperDAG(t)
	// One processor at full surplus: schedule is the serial order, no comm.
	m, err := Build(g, []ProcInfo{{Site: 7, Surplus: 1}}, 3, 0, 66, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumProcs() != 1 {
		t.Fatalf("|U| = %d, want 1", m.NumProcs())
	}
	if math.Abs(m.Makespan-21) > 1e-9 { // Σc = 21 serial
		t.Fatalf("M = %v, want 21", m.Makespan)
	}
	if math.Abs(m.IdealMakespan-m.Makespan) > 1e-9 {
		t.Fatalf("M* = %v should equal M at surplus 1", m.IdealMakespan)
	}
}

func TestUniformMachinesPower(t *testing.T) {
	g := paperDAG(t)
	// Same surplus, double power → all durations halve, M halves.
	m1, err := Build(g, []ProcInfo{{Surplus: 1, Power: 1}}, 0, 0, 660, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Build(g, []ProcInfo{{Surplus: 1, Power: 2}}, 0, 0, 660, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m2.Makespan-m1.Makespan/2) > 1e-9 {
		t.Fatalf("power 2 makespan %v, want %v", m2.Makespan, m1.Makespan/2)
	}
}

func TestReleaseOffset(t *testing.T) {
	// Shifting the job release shifts the whole schedule rigidly.
	g := paperDAG(t)
	m0 := buildPaper(t)
	m50, err := Build(g, paperProcs(), 3, 50, 116, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range g.TaskIDs() {
		if math.Abs((m50.Assign[id].Start-50)-m0.Assign[id].Start) > 1e-9 {
			t.Fatalf("task %d: start %v, want %v+50", id, m50.Assign[id].Start, m0.Assign[id].Start)
		}
		if math.Abs((m50.Release[id]-50)-m0.Release[id]) > 1e-9 {
			t.Fatalf("task %d: release %v, want %v+50", id, m50.Release[id], m0.Release[id])
		}
		if math.Abs((m50.Deadline[id]-50)-m0.Deadline[id]) > 1e-9 {
			t.Fatalf("task %d: deadline %v, want %v+50", id, m50.Deadline[id], m0.Deadline[id])
		}
	}
}

func TestHeuristicVariantsProduceValidMappings(t *testing.T) {
	g := daggen.Layered(6, 3, 0.3, daggen.Params{MinComplexity: 2, MaxComplexity: 8}, 4)
	procs := []ProcInfo{{Site: 0, Surplus: 0.9}, {Site: 1, Surplus: 0.6}, {Site: 2, Surplus: 0.4}}
	for _, h := range []Heuristic{HeuristicCPEFT, HeuristicBestSurplus, HeuristicRoundRobin} {
		m, err := Build(g, procs, 2, 0, 10000, Options{Heuristic: h})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		checkMappingInvariants(t, g, m)
		if h == HeuristicBestSurplus && m.NumProcs() != 1 {
			t.Fatalf("best-surplus used %d procs, want 1", m.NumProcs())
		}
	}
}

// checkMappingInvariants verifies the structural soundness any mapping must
// satisfy, regardless of heuristic or adjustment case.
func checkMappingInvariants(t *testing.T, g *dag.Graph, m *TrialMapping) {
	t.Helper()
	for _, id := range g.TaskIDs() {
		a, ok := m.Assign[id]
		if !ok {
			t.Fatalf("task %d unassigned", id)
		}
		if a.Proc < 0 || a.Proc >= m.NumProcs() {
			t.Fatalf("task %d on proc %d outside [0,%d)", id, a.Proc, m.NumProcs())
		}
		// Window sanity: r(t) >= job release, d(t) <= job deadline,
		// window fits the full-speed duration.
		if m.Release[id] < m.JobRelease-1e-9 {
			t.Fatalf("task %d release %v before job release %v", id, m.Release[id], m.JobRelease)
		}
		if m.Deadline[id] > m.JobDeadline+1e-9 {
			t.Fatalf("task %d deadline %v after job deadline %v", id, m.Deadline[id], m.JobDeadline)
		}
		durStar := a.IdealFinish - a.IdealStart
		if m.Release[id]+durStar > m.Deadline[id]+1e-6 {
			t.Fatalf("task %d window [%v,%v] cannot hold %v", id, m.Release[id], m.Deadline[id], durStar)
		}
	}
	// Precedence: within the adjusted windows, a successor's release covers
	// its predecessors' deadlines plus cross-processor communication.
	for _, id := range g.TaskIDs() {
		for _, s := range g.Successors(id) {
			comm := m.Omega
			if m.Assign[s].Proc == m.Assign[id].Proc {
				comm = 0
			}
			if m.Release[s] < m.Deadline[id]+comm-1e-6 {
				t.Fatalf("edge %d->%d: release %v < deadline %v + comm %v",
					id, s, m.Release[s], m.Deadline[id], comm)
			}
		}
	}
	// S is a valid schedule: no overlap per processor, precedence + comm
	// respected.
	perProc := make(map[int][]Assignment)
	for _, id := range g.TaskIDs() {
		perProc[m.Assign[id].Proc] = append(perProc[m.Assign[id].Proc], m.Assign[id])
	}
	for _, list := range perProc {
		for i := range list {
			for j := i + 1; j < len(list); j++ {
				a, b := list[i], list[j]
				if a.Start < b.Finish-1e-9 && b.Start < a.Finish-1e-9 {
					t.Fatalf("overlapping tasks on proc %d: %+v %+v", a.Proc, a, b)
				}
			}
		}
	}
	for _, id := range g.TaskIDs() {
		for _, s := range g.Successors(id) {
			comm := m.Omega
			if m.Assign[s].Proc == m.Assign[id].Proc {
				comm = 0
			}
			if m.Assign[s].Start < m.Assign[id].Finish+comm-1e-9 {
				t.Fatalf("S violates precedence %d->%d", id, s)
			}
		}
	}
}

// Property: for random DAGs and processor sets, any mapping that Build
// returns satisfies the invariants; rejections only happen with the
// documented errors.
func TestPropertyMappingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kind := daggen.AllKinds[rng.Intn(len(daggen.AllKinds))]
		g, err := daggen.Generate(kind, 4+rng.Intn(20), daggen.Params{MinComplexity: 1, MaxComplexity: 6}, seed)
		if err != nil {
			return false
		}
		nProcs := 1 + rng.Intn(5)
		procs := make([]ProcInfo, nProcs)
		for i := range procs {
			procs[i] = ProcInfo{Site: 0, Surplus: 0.2 + 0.8*rng.Float64()}
		}
		sort.SliceStable(procs, func(a, b int) bool { return procs[a].Surplus > procs[b].Surplus })
		omega := rng.Float64() * 5
		tight := 1.0 + rng.Float64()*3
		d := g.CriticalPathLength() * tight * 2
		opts := Options{
			Heuristic:  Heuristic(rng.Intn(3)),
			LaxityMode: LaxityMode(rng.Intn(2)),
		}
		m, err := Build(g, procs, omega, 0, d, opts)
		if err != nil {
			return err == ErrWindowTooTight || err == ErrInconsistentWindows
		}
		sub := &testing.T{}
		checkMappingInvariants(sub, g, m)
		return !sub.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildPaperExample(b *testing.B) {
	g := paperDAG(b)
	procs := paperProcs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, procs, 3, 0, 66, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildLayered50On8(b *testing.B) {
	g := daggen.Layered(17, 3, 0.2, daggen.Params{MinComplexity: 1, MaxComplexity: 8}, 1)
	procs := make([]ProcInfo, 8)
	for i := range procs {
		procs[i] = ProcInfo{Surplus: 1 - float64(i)*0.1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, procs, 2, 0, 1e6, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDataVolumeComm: with the §13 data-volume model, cross-processor
// windows must account ω + volume/throughput per edge.
func TestDataVolumeComm(t *testing.T) {
	g, err := dag.NewBuilder("vol").
		AddTask(1, 4).AddTask(2, 4).AddTask(3, 2).
		AddDataEdge(1, 3, 10).
		AddDataEdge(2, 3, 20).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	procs := []ProcInfo{{Site: 0, Surplus: 1}, {Site: 1, Surplus: 1}}
	m, err := Build(g, procs, 1, 0, 1000, Options{Throughput: 10})
	if err != nil {
		t.Fatal(err)
	}
	// EFT with comm 1+10/10=2 and 1+20/10=3: t1 on p0 [0,4], t2 on p1
	// [0,4]; t3 earliest finish on p0: max(4, 4+0, 4+3)=7..9; on p1:
	// max(4, 4+2, 4+0)=6..8 — t3 lands on p1, start 6, finish 8.
	a3 := m.Assign[3]
	if a3.Proc != 1 || math.Abs(a3.Start-6) > 1e-9 || math.Abs(a3.Finish-8) > 1e-9 {
		t.Fatalf("t3 placement %+v, want proc 1 [6,8]", a3)
	}
	// Adjusted windows keep the per-edge comm: r(t3) >= d(t1) + 2 (cross)
	// and >= d(t2) + 0 (same proc).
	if m.Release[3] < m.Deadline[1]+2-1e-9 {
		t.Fatalf("r(t3)=%v < d(t1)+2=%v", m.Release[3], m.Deadline[1]+2)
	}
	// Throughput 0 falls back to plain ω everywhere.
	m0, err := Build(g, procs, 1, 0, 1000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m0.Assign[3].Start > 5+1e-9 {
		t.Fatalf("base model start %v, want <= 5 (ω only)", m0.Assign[3].Start)
	}
	if _, err := Build(g, procs, 1, 0, 1000, Options{Throughput: -1}); err == nil {
		t.Fatal("negative throughput accepted")
	}
}
