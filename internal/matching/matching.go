// Package matching implements maximum bipartite matching, used by the
// Trial-Mapping validation step (paper §10): sites of the ACS on one side,
// logical processors of the mapping on the other, an edge when the site
// reported it can endorse the logical processor. A matching of size |U|
// yields the permutation of sites that executes the job.
//
// The implementation is Hopcroft–Karp, O(E·sqrt(V)); an exhaustive
// augmenting-path oracle is used by the tests.
package matching

import "fmt"

// Bipartite is a bipartite graph between `left` nodes 0..L-1 and `right`
// nodes 0..R-1.
type Bipartite struct {
	left, right int
	adj         [][]int // adj[l] = sorted right-neighbours of l
}

// NewBipartite creates an empty bipartite graph.
func NewBipartite(left, right int) *Bipartite {
	if left < 0 || right < 0 {
		panic("matching: negative side size")
	}
	return &Bipartite{left: left, right: right, adj: make([][]int, left)}
}

// AddEdge links left node l to right node r. Duplicate edges are ignored.
func (b *Bipartite) AddEdge(l, r int) {
	if l < 0 || l >= b.left || r < 0 || r >= b.right {
		panic(fmt.Sprintf("matching: edge (%d,%d) out of range (%d,%d)", l, r, b.left, b.right))
	}
	for _, x := range b.adj[l] {
		if x == r {
			return
		}
	}
	b.adj[l] = append(b.adj[l], r)
}

// Left and Right report the side sizes.
func (b *Bipartite) Left() int  { return b.left }
func (b *Bipartite) Right() int { return b.right }

// Result is a maximum matching. MatchL[l] is the right node matched to l, or
// -1; MatchR is the inverse.
type Result struct {
	Size   int
	MatchL []int
	MatchR []int
}

const infDist = int(^uint(0) >> 1)

// MaximumMatching computes a maximum matching with Hopcroft–Karp.
func (b *Bipartite) MaximumMatching() Result {
	matchL := make([]int, b.left)
	matchR := make([]int, b.right)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, b.left)
	queue := make([]int, 0, b.left)

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < b.left; l++ {
			if matchL[l] == -1 {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = infDist
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, r := range b.adj[l] {
				nl := matchR[r]
				if nl == -1 {
					found = true
				} else if dist[nl] == infDist {
					dist[nl] = dist[l] + 1
					queue = append(queue, nl)
				}
			}
		}
		return found
	}

	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, r := range b.adj[l] {
			nl := matchR[r]
			if nl == -1 || (dist[nl] == dist[l]+1 && dfs(nl)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		dist[l] = infDist
		return false
	}

	size := 0
	for bfs() {
		for l := 0; l < b.left; l++ {
			if matchL[l] == -1 && dfs(l) {
				size++
			}
		}
	}
	return Result{Size: size, MatchL: matchL, MatchR: matchR}
}

// PerfectOnRight reports whether the matching saturates every right node —
// the paper's acceptance condition with right = logical processors |U|.
func (r Result) PerfectOnRight() bool {
	for _, l := range r.MatchR {
		if l == -1 {
			return false
		}
	}
	return true
}

// RightAssignment returns, for each right node, its matched left node.
// It panics if the matching does not saturate the right side; callers must
// check PerfectOnRight first.
func (r Result) RightAssignment() []int {
	out := make([]int, len(r.MatchR))
	for rt, l := range r.MatchR {
		if l == -1 {
			panic("matching: RightAssignment on non-perfect matching")
		}
		out[rt] = l
	}
	return out
}
