package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteMaximum computes the maximum matching size by exhaustive search over
// left-node assignments (exponential; fine for small graphs).
func bruteMaximum(b *Bipartite) int {
	usedR := make([]bool, b.right)
	var rec func(l int) int
	rec = func(l int) int {
		if l == b.left {
			return 0
		}
		best := rec(l + 1) // skip l
		for _, r := range b.adj[l] {
			if !usedR[r] {
				usedR[r] = true
				if v := 1 + rec(l+1); v > best {
					best = v
				}
				usedR[r] = false
			}
		}
		return best
	}
	return rec(0)
}

func TestEmptyGraph(t *testing.T) {
	b := NewBipartite(3, 3)
	res := b.MaximumMatching()
	if res.Size != 0 {
		t.Fatalf("size %d, want 0", res.Size)
	}
	if res.PerfectOnRight() {
		t.Fatal("empty matching reported perfect")
	}
	res0 := NewBipartite(0, 0).MaximumMatching()
	if res0.Size != 0 || !res0.PerfectOnRight() {
		t.Fatal("trivial 0x0 matching should be perfect with size 0")
	}
}

func TestSimplePerfect(t *testing.T) {
	b := NewBipartite(3, 3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(2, 2)
	res := b.MaximumMatching()
	if res.Size != 3 || !res.PerfectOnRight() {
		t.Fatalf("size %d perfect=%v, want 3 true", res.Size, res.PerfectOnRight())
	}
	asg := res.RightAssignment()
	if asg[0] != 1 || asg[1] != 0 || asg[2] != 2 {
		t.Fatalf("assignment %v", asg)
	}
}

func TestAugmentingPathNeeded(t *testing.T) {
	// Greedy would match 0-0 and leave 1 unmatched; HK must find the
	// augmenting path 1-0-0-1.
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	res := b.MaximumMatching()
	if res.Size != 2 {
		t.Fatalf("size %d, want 2", res.Size)
	}
}

func TestMoreSitesThanProcs(t *testing.T) {
	// Typical RTDS validation shape: 5 sites, 3 logical processors.
	b := NewBipartite(5, 3)
	b.AddEdge(0, 0)
	b.AddEdge(1, 0)
	b.AddEdge(2, 1)
	b.AddEdge(4, 2)
	res := b.MaximumMatching()
	if res.Size != 3 || !res.PerfectOnRight() {
		t.Fatalf("size %d perfect=%v, want 3 true", res.Size, res.PerfectOnRight())
	}
	asg := res.RightAssignment()
	for r, l := range asg {
		found := false
		for _, x := range b.adj[l] {
			if x == r {
				found = true
			}
		}
		if !found {
			t.Fatalf("assignment uses non-edge (%d,%d)", l, r)
		}
	}
}

func TestImperfect(t *testing.T) {
	// Two processors both endorsable only by the same single site.
	b := NewBipartite(1, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	res := b.MaximumMatching()
	if res.Size != 1 || res.PerfectOnRight() {
		t.Fatalf("size %d perfect=%v, want 1 false", res.Size, res.PerfectOnRight())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RightAssignment on imperfect matching did not panic")
		}
	}()
	res.RightAssignment()
}

func TestDuplicateEdgeIgnored(t *testing.T) {
	b := NewBipartite(1, 1)
	b.AddEdge(0, 0)
	b.AddEdge(0, 0)
	if len(b.adj[0]) != 1 {
		t.Fatalf("duplicate edge stored: %v", b.adj[0])
	}
}

// Property: Hopcroft–Karp matches the exhaustive oracle on random graphs.
func TestPropertyMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 1 + rng.Intn(7)
		r := 1 + rng.Intn(7)
		b := NewBipartite(l, r)
		for i := 0; i < l; i++ {
			for j := 0; j < r; j++ {
				if rng.Float64() < 0.35 {
					b.AddEdge(i, j)
				}
			}
		}
		return b.MaximumMatching().Size == bruteMaximum(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the returned matching is a valid matching (edges exist, no node
// reused) and MatchL/MatchR are mutually consistent.
func TestPropertyMatchingValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 1 + rng.Intn(15)
		r := 1 + rng.Intn(15)
		b := NewBipartite(l, r)
		for i := 0; i < l; i++ {
			for j := 0; j < r; j++ {
				if rng.Float64() < 0.25 {
					b.AddEdge(i, j)
				}
			}
		}
		res := b.MaximumMatching()
		count := 0
		for li, ri := range res.MatchL {
			if ri == -1 {
				continue
			}
			count++
			if res.MatchR[ri] != li {
				return false
			}
			found := false
			for _, x := range b.adj[li] {
				if x == ri {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return count == res.Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHopcroftKarp100x100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := NewBipartite(100, 100)
	for i := 0; i < 100; i++ {
		for j := 0; j < 100; j++ {
			if rng.Float64() < 0.05 {
				g.AddEdge(i, j)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MaximumMatching()
	}
}
