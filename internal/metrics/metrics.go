// Package metrics provides the repo's two measurement toolkits.
//
// The experiment half is sample accumulation (mean, standard deviation,
// confidence intervals, percentiles) and fixed-width text tables matching
// the rows EXPERIMENTS.md records.
//
// The observability half (prom.go) is a stdlib-only Prometheus metric
// registry — counters, gauges, fixed-bucket histograms and their label
// vectors — with deterministic text-format exposition (WriteTo) and a
// format validator (ValidateText). The gateway (internal/gateway) and the
// node control plane (internal/nodeapi) serve their GET /metrics endpoints
// from it; docs/metrics.md documents every exported family, enforced by
// test.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations of one quantity.
type Sample struct {
	values []float64
}

// Add appends an observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N reports the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the sample standard deviation (n−1 denominator).
func (s *Sample) StdDev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CI95 returns the half-width of the ~95% confidence interval of the mean
// (normal approximation, 1.96·σ/√n).
func (s *Sample) CI95() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(n))
}

// Min and Max report the range (0 for empty samples).
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max reports the largest observation.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Table is a fixed-width text table with a caption, rendered into
// EXPERIMENTS.md and experiment stdout.
type Table struct {
	Caption string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given caption and column headers.
func NewTable(caption string, headers ...string) *Table {
	return &Table{Caption: caption, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v unless already strings.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Cell returns the formatted cell at (row, col); empty when out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.rows) || col < 0 || col >= len(t.rows[row]) {
		return ""
	}
	return t.rows[row][col]
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Caption != "" {
		sb.WriteString(t.Caption)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Caption)
	}
	sb.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}

// CSV renders the table as comma-separated values with a header line.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Headers, ",") + "\n")
	for _, row := range t.rows {
		sb.WriteString(strings.Join(row, ",") + "\n")
	}
	return sb.String()
}
