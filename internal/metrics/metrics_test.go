package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.CI95() != 0 || s.N() != 0 {
		t.Fatal("empty sample not zeroed")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean %v, want 5", s.Mean())
	}
	// Sample stddev with n-1: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Fatalf("stddev %v, want %v", s.StdDev(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("range [%v,%v]", s.Min(), s.Max())
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := map[float64]float64{0: 1, 50: 50, 95: 95, 100: 100}
	for p, want := range cases {
		if got := s.Percentile(p); got != want {
			t.Errorf("p%v = %v, want %v", p, got, want)
		}
	}
}

// Property: mean is within [min, max], CI is non-negative, stddev 0 for
// constant samples.
func TestPropertySampleInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip inputs whose sum overflows float64
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9 && s.CI95() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConstantSampleStdDevZero(t *testing.T) {
	var s Sample
	for i := 0; i < 10; i++ {
		s.Add(3.5)
	}
	if s.StdDev() != 0 || s.CI95() != 0 {
		t.Fatalf("constant sample stddev %v ci %v", s.StdDev(), s.CI95())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E1: guarantee ratio vs load", "load", "rtds", "local-only")
	tb.AddRow(0.2, 0.95, 0.8)
	tb.AddRow(0.4, 0.91, 0.62)
	tb.AddRow("1.0", 0.55, 0.31)
	if tb.NumRows() != 3 {
		t.Fatalf("rows %d", tb.NumRows())
	}
	s := tb.String()
	for _, frag := range []string{"E1: guarantee ratio vs load", "load", "0.950", "1.0"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendered table missing %q:\n%s", frag, s)
		}
	}
	// Alignment: all lines at least as wide as the header row's width.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 1+2+3 {
		t.Fatalf("line count %d", len(lines))
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| load | rtds | local-only |") {
		t.Errorf("markdown header wrong:\n%s", md)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "load,rtds,local-only\n") {
		t.Errorf("csv header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "0.2,0.950,0.800") && !strings.Contains(csv, "0.200,0.950,0.800") {
		t.Errorf("csv rows wrong:\n%s", csv)
	}
}

func TestFloatFormatting(t *testing.T) {
	if formatFloat(3) != "3" {
		t.Errorf("integral float formatted as %q", formatFloat(3))
	}
	if formatFloat(3.14159) != "3.142" {
		t.Errorf("float formatted as %q", formatFloat(3.14159))
	}
}
