package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the Prometheus half of the package: a small, stdlib-only
// metric registry whose exposition follows the Prometheus text format
// (version 0.0.4). It exists so the gateway and the node control plane can
// serve GET /metrics without importing a client library the build container
// does not have. Only the features the repo needs are implemented: counters,
// gauges, fixed-bucket histograms, label vectors with pre-declared label
// names, and deterministic rendering (families and label sets in sorted
// order, so two scrapes of the same state are byte-identical).

// MetricKind is the TYPE line of a family: counter, gauge or histogram.
type MetricKind string

// The three exposition kinds the registry supports.
const (
	KindCounter   MetricKind = "counter"
	KindGauge     MetricKind = "gauge"
	KindHistogram MetricKind = "histogram"
)

// Registry holds metric families and renders them in the Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order is irrelevant; rendering sorts
}

// family is one named metric family: TYPE, HELP and its children keyed by
// the canonical label-value tuple.
type family struct {
	name       string
	help       string
	kind       MetricKind
	labelNames []string
	buckets    []float64 // histograms only

	mu       sync.Mutex
	children map[string]child
	keys     []string
}

type child interface {
	render(w *bufio.Writer, fam *family, labels string)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help string, kind MetricKind, labelNames []string, buckets []float64) *family {
	if name == "" || !validMetricName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !validLabelName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelNames: append([]string(nil), labelNames...),
		buckets:    buckets,
		children:   make(map[string]child),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// Names returns every registered family name in sorted order. The docs
// coverage test uses it to enforce that each exported metric appears in
// docs/metrics.md.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}

// NewCounter registers a label-less counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return f.counter(nil)
}

// NewCounterVec registers a counter family with the given label names;
// children are created on first With.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, KindCounter, labelNames, nil)}
}

// NewGauge registers a label-less gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return f.gauge(nil)
}

// NewGaugeVec registers a gauge family with the given label names.
func (r *Registry) NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, KindGauge, labelNames, nil)}
}

// NewHistogram registers a label-less histogram with the given upper
// bucket bounds (strictly increasing; the +Inf bucket is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, KindHistogram, nil, checkBuckets(name, buckets))
	return f.histogram(nil)
}

// NewHistogramVec registers a histogram family with the given bucket bounds
// and label names.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, KindHistogram, labelNames, checkBuckets(name, buckets))}
}

func checkBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not strictly increasing", name))
		}
	}
	return append([]float64(nil), buckets...)
}

// DefaultLatencyBuckets are the seconds-scale buckets the gateway's latency
// histograms use: 100µs to ~10s in roughly 3x steps.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10,
}

// ---------------------------------------------------------------------------
// children

// Counter is a monotonically increasing value.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas panic (counters only go up).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic("metrics: counter decreased")
	}
	addFloat(&c.bits, delta)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) render(w *bufio.Writer, fam *family, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, labels, formatValue(c.Value()))
}

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (may be negative).
func (g *Gauge) Add(delta float64) { addFloat(&g.bits, delta) }

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) render(w *bufio.Writer, fam *family, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, labels, formatValue(g.Value()))
}

// Histogram accumulates observations into fixed cumulative buckets.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // upper bounds, shared with the family
	counts  []uint64  // one per bound; +Inf is implicit in count
	count   uint64
	sum     float64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i]++
		}
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile estimates the q-quantile (0 < q <= 1) from the cumulative
// buckets: the upper bound of the first bucket whose cumulative count
// reaches q·count. It is the scrape-side estimate dashboards would compute;
// the gateway bench records it as p50/p99.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	for i, c := range h.counts {
		if c >= rank {
			return h.buckets[i]
		}
	}
	return math.Inf(1)
}

func (h *Histogram) render(w *bufio.Writer, fam *family, labels string) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	count, sum := h.count, h.sum
	h.mu.Unlock()
	for i, ub := range fam.buckets {
		fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, mergeLabels(labels, "le", formatValue(ub)), counts[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, mergeLabels(labels, "le", "+Inf"), count)
	fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, labels, formatValue(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", fam.name, labels, count)
}

// ---------------------------------------------------------------------------
// vectors

// CounterVec is a counter family indexed by label values.
type CounterVec struct{ fam *family }

// With returns the child counter for the given label values (created on
// first use). The number of values must match the declared label names.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.fam.counter(labelValues)
}

// GaugeVec is a gauge family indexed by label values.
type GaugeVec struct{ fam *family }

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.fam.gauge(labelValues)
}

// HistogramVec is a histogram family indexed by label values.
type HistogramVec struct{ fam *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.fam.histogram(labelValues)
}

func (f *family) child(labelValues []string, make func() child) child {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := renderLabels(f.labelNames, labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := make()
	f.children[key] = c
	f.keys = append(f.keys, key)
	return c
}

func (f *family) counter(labelValues []string) *Counter {
	return f.child(labelValues, func() child { return new(Counter) }).(*Counter)
}

func (f *family) gauge(labelValues []string) *Gauge {
	return f.child(labelValues, func() child { return new(Gauge) }).(*Gauge)
}

func (f *family) histogram(labelValues []string) *Histogram {
	return f.child(labelValues, func() child {
		return &Histogram{buckets: f.buckets, counts: make([]uint64, len(f.buckets))}
	}).(*Histogram)
}

// ---------------------------------------------------------------------------
// exposition

// WriteTo renders every family in the Prometheus text format, families and
// label sets in sorted order. Families with no children yet are rendered
// with HELP/TYPE only, so a scrape documents every metric the process can
// export even before the first event.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	sort.Strings(names)
	counting := &countingWriter{w: w}
	bw := bufio.NewWriter(counting)
	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		r.mu.Unlock()
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		sort.Strings(keys)
		for _, k := range keys {
			f.children[k].render(bw, f, k)
		}
		f.mu.Unlock()
	}
	err := bw.Flush()
	return counting.n, err
}

// ContentType is the Content-Type header value of a Prometheus text-format
// exposition.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Expose renders the registry to a string (test and bench convenience).
func (r *Registry) Expose() string {
	var sb strings.Builder
	r.WriteTo(&sb)
	return sb.String()
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// renderLabels renders a canonical label block: {a="x",b="y"} with the
// names in declaration order (already fixed per family), or "" for none.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteString(`"`)
	}
	sb.WriteByte('}')
	return sb.String()
}

// mergeLabels inserts one extra label (the histogram "le") into an existing
// rendered label block.
func mergeLabels(labels, name, value string) string {
	extra := name + `="` + escapeLabel(value) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func validMetricName(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// text-format validation

// ValidateText checks that data parses as Prometheus text format 0.0.4:
// HELP/TYPE comment syntax, known TYPE values, sample lines of the form
// name{label="value"} value [timestamp] whose names are legal and whose
// values parse as floats, histogram sample suffixes consistent with their
// declared TYPE, and at least one sample or family present. The soak and
// the gateway tests run every /metrics response through it.
func ValidateText(data []byte) error {
	types := make(map[string]MetricKind)
	sawAnything := false
	lineNo := 0
	for _, line := range strings.Split(string(data), "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				// Other comments are allowed by the format.
				continue
			}
			name := fields[2]
			if !validMetricName(name) {
				return fmt.Errorf("line %d: invalid metric name %q in %s", lineNo, name, fields[1])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE without a kind", lineNo)
				}
				kind := MetricKind(strings.TrimSpace(fields[3]))
				switch kind {
				case KindCounter, KindGauge, KindHistogram, "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown TYPE %q", lineNo, kind)
				}
				types[name] = kind
			}
			sawAnything = true
			continue
		}
		name, rest, err := splitSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		value := strings.Fields(rest)
		if len(value) < 1 || len(value) > 2 {
			return fmt.Errorf("line %d: expected value [timestamp], got %q", lineNo, rest)
		}
		if _, err := parseSampleValue(value[0]); err != nil {
			return fmt.Errorf("line %d: bad sample value %q", lineNo, value[0])
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name && types[trimmed] == KindHistogram {
				base = trimmed
				break
			}
		}
		if kind, declared := types[base]; declared && kind == KindHistogram && base == name {
			return fmt.Errorf("line %d: histogram %s sampled without _bucket/_sum/_count suffix", lineNo, name)
		}
		sawAnything = true
	}
	if !sawAnything {
		return fmt.Errorf("metrics: empty exposition")
	}
	return nil
}

// splitSample splits a sample line into the metric name and the remainder
// after the optional label block, validating both.
func splitSample(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("sample line %q has no value", line)
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if line[i] == ' ' {
		return name, strings.TrimSpace(line[i:]), nil
	}
	// Label block: scan to the closing brace, honoring escaped quotes.
	inQuotes, esc := false, false
	for j := i + 1; j < len(line); j++ {
		c := line[j]
		switch {
		case esc:
			esc = false
		case c == '\\':
			esc = true
		case c == '"':
			inQuotes = !inQuotes
		case c == '}' && !inQuotes:
			return name, strings.TrimSpace(line[j+1:]), nil
		}
	}
	return "", "", fmt.Errorf("unterminated label block in %q", line)
}

func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// addFloat is an atomic float64 add over a uint64 bit store.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}
