package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_requests_total", "Requests handled.")
	c.Add(3)
	cv := r.NewCounterVec("test_by_tenant_total", "Per-tenant submissions.", "tenant", "result")
	cv.With("acme", "accepted").Add(2)
	cv.With("zeta", "rejected").Inc()
	g := r.NewGauge("test_inflight", "Jobs in flight.")
	g.Set(5)
	g.Dec()
	h := r.NewHistogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(10)

	out := r.Expose()
	for _, want := range []string{
		"# TYPE test_requests_total counter",
		"test_requests_total 3",
		`test_by_tenant_total{tenant="acme",result="accepted"} 2`,
		`test_by_tenant_total{tenant="zeta",result="rejected"} 1`,
		"# TYPE test_inflight gauge",
		"test_inflight 4",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.01"} 1`,
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_sum 10.505",
		"test_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateText([]byte(out)); err != nil {
		t.Fatalf("own exposition fails validation: %v\n%s", err, out)
	}
}

// Two scrapes of the same state must be byte-identical: families and label
// sets render in sorted order regardless of registration or touch order.
func TestExpositionDeterministic(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		v := r.NewCounterVec("det_total", "d", "k")
		r.NewGauge("det_gauge", "g").Set(1)
		for _, k := range order {
			v.With(k).Inc()
		}
		return r.Expose()
	}
	a := build([]string{"x", "y", "z"})
	b := build([]string{"z", "x", "y"})
	if a != b {
		t.Fatalf("exposition depends on touch order:\n%s\nvs\n%s", a, b)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q_seconds", "q", []float64{1, 2, 4, 8})
	for i := 0; i < 99; i++ {
		h.Observe(1.5) // lands in le=2
	}
	h.Observe(7) // lands in le=8
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("p50 = %v, want bucket bound 2", got)
	}
	if got := h.Quantile(0.995); got != 8 {
		t.Errorf("p99.5 = %v, want bucket bound 8", got)
	}
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}

func TestValidateTextRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad name":       "9bad_name 1\n",
		"no value":       "lonely_metric\n",
		"bad value":      "m 1.2.3\n",
		"bad type":       "# TYPE m sandwich\n",
		"unclosed block": "m{a=\"x\" 1\n",
		"histogram base": "# TYPE h histogram\nh 3\n",
	}
	for name, text := range cases {
		if err := ValidateText([]byte(text)); err == nil {
			t.Errorf("%s: ValidateText accepted %q", name, text)
		}
	}
	good := "# HELP m help text\n# TYPE m counter\nm{a=\"x\\\"y\"} 4 1712345678\n"
	if err := ValidateText([]byte(good)); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

func TestCounterPanicsOnDecrease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter add did not panic")
		}
	}()
	r := NewRegistry()
	r.NewCounter("c_total", "c").Add(-1)
}

func TestVectorConcurrency(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("conc_total", "c", "worker")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.With(string(rune('a' + w))).Inc()
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < 8; w++ {
		if got := v.With(string(rune('a' + w))).Value(); got != 1000 {
			t.Errorf("worker %d count = %v, want 1000", w, got)
		}
	}
	if err := ValidateText([]byte(r.Expose())); err != nil {
		t.Fatal(err)
	}
}
