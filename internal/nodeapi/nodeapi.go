// Package nodeapi is the control and observability plane of one deployed
// RTDS site (cmd/rtds-node): a small JSON-over-HTTP API for job
// submission, decision polling and leak checking, plus an expvar endpoint
// whose statistics (decision-latency percentiles from internal/metrics,
// transport counters) feed dashboards and the load harness.
//
// Endpoints:
//
//	GET  /healthz       process liveness
//	GET  /readyz        200 once the PCS bootstrap completed and the epoch is sealed
//	POST /submit        {"at":0,"deadline":40,"graph":{dag json}} -> {"id":"j1@3"}
//	GET  /jobs          {"jobs":[{id,outcome,arrival,decision_at,...}]}
//	GET  /stats         transport counters + decision-latency percentiles
//	GET  /reservations  {"jobs":["j1@3",...]} — job IDs with committed plan reservations
//	GET  /idle          {"idle":true} — lock released, no deferred work, no open txns
//	GET  /membership    membership view: epoch, incarnation, per-site liveness, repair state
//	GET  /metrics       Prometheus text exposition (see docs/metrics.md)
//	GET  /debug/vars    expvar (includes the rtds map below)
package nodeapi

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// Server serves the control API of one core.Node.
type Server struct {
	node  *core.Node
	ready atomic.Bool
	mux   *http.ServeMux
}

// New builds the API server for a node. Call SetReady once the node's
// bootstrap has been sealed.
func New(node *core.Node) *Server {
	s := &Server{node: node, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "bootstrapping", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	s.mux.HandleFunc("POST /submit", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleJobs)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /reservations", s.handleReservations)
	s.mux.HandleFunc("GET /idle", s.handleIdle)
	s.mux.HandleFunc("GET /membership", s.handleMembership)
	s.mux.HandleFunc("GET /metrics", s.handleProm)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	registerExpvar(s)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetReady marks the node ready (bootstrap sealed); /readyz flips to 200
// and submissions are accepted.
func (s *Server) SetReady() { s.ready.Store(true) }

// SubmitRequest is the body of POST /submit. The graph uses the dag
// package's JSON schema; At is epoch-relative virtual time (0 = now) and
// Deadline is relative to arrival.
type SubmitRequest struct {
	At       float64         `json:"at"`
	Deadline float64         `json:"deadline"`
	Graph    json.RawMessage `json:"graph"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		http.Error(w, "node is still bootstrapping", http.StatusServiceUnavailable)
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	g, err := dag.UnmarshalGraph(req.Graph)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	job, err := s.node.Submit(req.At, g, req.Deadline)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]string{"id": job.ID})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"jobs": s.node.JobStatuses()})
}

// StatsReply is the GET /stats schema.
type StatsReply struct {
	Site               int              `json:"site"`
	Ready              bool             `json:"ready"`
	Messages           int64            `json:"messages"`
	Bytes              int64            `json:"bytes"`
	Dropped            int64            `json:"dropped"`
	ByKind             map[string]int64 `json:"by_kind,omitempty"`
	BootstrapMessages  int64            `json:"bootstrap_messages"`
	BootstrapBytes     int64            `json:"bootstrap_bytes"`
	Jobs               int              `json:"jobs"`
	Decided            int              `json:"decided"`
	Accepted           int              `json:"accepted"`
	Violations         int              `json:"violations"`
	Disruptions        int              `json:"disruptions"`
	DecisionLatencyP50 float64          `json:"decision_latency_p50"`
	DecisionLatencyP99 float64          `json:"decision_latency_p99"`
	RoutingTableBytes  int              `json:"routing_table_bytes"`
	RoutingEntries     int              `json:"routing_entries"`
}

func (s *Server) stats() StatsReply {
	st := s.node.Stats()
	bm, bb := s.node.BootstrapCost()
	rb, re := s.node.RoutingState()
	reply := StatsReply{
		Site:              int(s.node.Self()),
		Ready:             s.ready.Load(),
		Messages:          st.Messages(),
		Bytes:             st.Bytes(),
		Dropped:           st.Dropped(),
		ByKind:            st.ByKind(),
		BootstrapMessages: bm,
		BootstrapBytes:    bb,
		Violations:        len(s.node.Violations()),
		Disruptions:       s.node.FaultDisruptions(),
		RoutingTableBytes: rb,
		RoutingEntries:    re,
	}
	var latency metrics.Sample
	for _, j := range s.node.JobStatuses() {
		reply.Jobs++
		if j.Outcome == core.Pending {
			continue
		}
		reply.Decided++
		if j.Outcome == core.AcceptedLocal || j.Outcome == core.AcceptedDistributed {
			reply.Accepted++
		}
		latency.Add(j.DecisionAt - j.Arrival)
	}
	reply.DecisionLatencyP50 = latency.Percentile(50)
	reply.DecisionLatencyP99 = latency.Percentile(99)
	return reply
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.stats())
}

func (s *Server) handleReservations(w http.ResponseWriter, r *http.Request) {
	jobs := s.node.ReservationJobIDs()
	if jobs == nil {
		jobs = []string{}
	}
	writeJSON(w, map[string][]string{"jobs": jobs})
}

func (s *Server) handleIdle(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]bool{"idle": s.node.Idle()})
}

// handleMembership exposes the node's membership view. With membership
// disabled the zero snapshot (started=false, no sites) is returned, so
// dashboards can tell "off" from "alone".
func (s *Server) handleMembership(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.node.Membership())
}

// ParseAddrs parses a deployment address list of the form
// "0=host:port,1=host:port,...", shared by the -peers flag of rtds-node
// and the -nodes flag of rtds-load. flagName only shapes error messages.
// With requireAll every site in [0,sites) must be present.
func ParseAddrs(flagName, spec string, sites int, requireAll bool) (map[graph.NodeID]string, error) {
	out := make(map[graph.NodeID]string)
	for _, tok := range strings.Split(spec, ",") {
		idStr, addr, found := strings.Cut(strings.TrimSpace(tok), "=")
		if !found {
			return nil, fmt.Errorf("-%s token %q is not id=host:port", flagName, tok)
		}
		id, err := strconv.Atoi(idStr)
		if err != nil || id < 0 || id >= sites {
			return nil, fmt.Errorf("-%s id %q out of range [0,%d)", flagName, idStr, sites)
		}
		out[graph.NodeID(id)] = addr
	}
	if requireAll {
		for id := 0; id < sites; id++ {
			if out[graph.NodeID(id)] == "" {
				return nil, fmt.Errorf("-%s is missing site %d", flagName, id)
			}
		}
	}
	return out, nil
}

// ParseSites parses a comma-separated site-id list ("3" or "1,4") into a
// set, validating the range. Used by rtds-load's churn flags.
func ParseSites(flagName, spec string, sites int) (map[graph.NodeID]bool, error) {
	out := make(map[graph.NodeID]bool)
	for _, tok := range strings.Split(spec, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || id < 0 || id >= sites {
			return nil, fmt.Errorf("-%s id %q out of range [0,%d)", flagName, tok, sites)
		}
		out[graph.NodeID(id)] = true
	}
	return out, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// ---------------------------------------------------------------------------
// expvar

// expvar names are global per process; a test may host several node API
// servers, so the published "rtds" variable aggregates every live server
// keyed by site id.
var (
	expvarOnce sync.Once
	expvarMu   sync.Mutex
	servers    = map[int]*Server{}
)

func registerExpvar(s *Server) {
	expvarMu.Lock()
	servers[int(s.node.Self())] = s
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("rtds", expvar.Func(func() any {
			expvarMu.Lock()
			defer expvarMu.Unlock()
			out := make(map[string]StatsReply, len(servers))
			for id, srv := range servers {
				out[fmt.Sprintf("site_%d", id)] = srv.stats()
			}
			return out
		}))
	})
}
