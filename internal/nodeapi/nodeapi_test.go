package nodeapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/core/membership"
	"repro/internal/dag"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// startPair boots a 2-site TCP cluster and returns both nodes' API
// servers behind httptest.
func startPair(t *testing.T) (srv0, srv1 *httptest.Server, cleanup func()) {
	t.Helper()
	topo := graph.New(2)
	topo.MustAddEdge(0, 1, 0.05)
	cfg := core.DefaultConfig()
	cfg.EnrollSlack = 4
	cfg.ReleasePadFactor = 30
	cfg.Membership = membership.Config{Enabled: true, HeartbeatEvery: 25, SuspectAfter: 100}
	scale := time.Millisecond

	trs := make([]*wire.NetTransport, 2)
	addrs := make(map[graph.NodeID]string)
	for id := 0; id < 2; id++ {
		tr, err := wire.Listen(wire.NetConfig{
			Self: graph.NodeID(id), Topo: topo, Listen: "127.0.0.1:0", Scale: scale,
		})
		if err != nil {
			t.Fatal(err)
		}
		trs[id] = tr
		addrs[graph.NodeID(id)] = tr.Addr()
	}
	apis := make([]*Server, 2)
	nodes := make([]*core.Node, 2)
	for id, tr := range trs {
		tr.SetPeers(addrs)
		node, err := core.NewNode(topo, cfg, tr, graph.NodeID(id))
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
		apis[id] = New(node)
	}
	for _, tr := range trs {
		tr.Start()
	}
	for _, node := range nodes {
		node.StartBootstrap()
	}
	for id, node := range nodes {
		if !node.WaitReady(30 * time.Second) {
			t.Fatalf("node %d bootstrap stalled", id)
		}
		node.Seal()
	}
	s0, s1 := httptest.NewServer(apis[0]), httptest.NewServer(apis[1])
	return s0, s1, func() {
		s0.Close()
		s1.Close()
		for _, tr := range trs {
			tr.Close()
		}
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestControlPlane(t *testing.T) {
	srv0, _, cleanup := startPair(t)
	defer cleanup()

	// Readiness gating: SetReady was not called yet, so submissions and
	// readyz are refused while healthz answers.
	if resp, err := http.Get(srv0.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	if resp, _ := http.Get(srv0.URL + "/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before SetReady: status %d, want 503", resp.StatusCode)
	}
	g := dag.NewBuilder("one").AddTask(1, 2).MustBuild()
	graphJSON, _ := json.Marshal(g)
	body := fmt.Sprintf(`{"at":0,"deadline":50,"graph":%s}`, graphJSON)
	resp, err := http.Post(srv0.URL+"/submit", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit before ready: status %d, want 503", resp.StatusCode)
	}

	// Flip ready on the server under test (the peer stays implicit).
	serverOf(t, srv0).SetReady()
	if resp, _ := http.Get(srv0.URL + "/readyz"); resp.StatusCode != 200 {
		t.Fatalf("readyz after SetReady: status %d", resp.StatusCode)
	}

	resp, err = http.Post(srv0.URL+"/submit", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitReply struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitReply); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if submitReply.ID == "" {
		t.Fatal("submit returned no job id")
	}

	// Poll /jobs until the trivial job is decided (locally, instantly).
	deadline := time.Now().Add(30 * time.Second)
	for {
		var reply struct {
			Jobs []core.JobStatus `json:"jobs"`
		}
		getJSON(t, srv0.URL+"/jobs", &reply)
		if len(reply.Jobs) == 1 && reply.Jobs[0].OutcomeName != "pending" {
			if reply.Jobs[0].OutcomeName != "accepted-local" {
				t.Fatalf("trivial job decided %q, want accepted-local", reply.Jobs[0].OutcomeName)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never decided")
		}
		time.Sleep(5 * time.Millisecond)
	}

	var stats StatsReply
	getJSON(t, srv0.URL+"/stats", &stats)
	if stats.Jobs != 1 || stats.Decided != 1 || stats.Accepted != 1 {
		t.Fatalf("stats: %+v, want 1 job decided and accepted", stats)
	}
	if stats.BootstrapMessages == 0 {
		t.Fatal("stats reports no bootstrap messages")
	}

	var res struct {
		Jobs []string `json:"jobs"`
	}
	getJSON(t, srv0.URL+"/reservations", &res)
	if len(res.Jobs) != 1 || res.Jobs[0] != submitReply.ID {
		t.Fatalf("reservations %v, want exactly %q", res.Jobs, submitReply.ID)
	}

	var idle struct {
		Idle bool `json:"idle"`
	}
	getJSON(t, srv0.URL+"/idle", &idle)
	if !idle.Idle {
		t.Fatal("node not idle after its only job was decided")
	}

	// Malformed submissions are 400s, not crashes.
	for _, bad := range []string{"{", `{"at":0,"deadline":50,"graph":{"tasks":[]}}`} {
		resp, err := http.Post(srv0.URL+"/submit", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad submit %q: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// Membership view: the layer is armed, heartbeating, and the peer is
	// alive (snapshot fields are stable even while beacons keep flowing).
	var mem membership.Snapshot
	getJSON(t, srv0.URL+"/membership", &mem)
	if !mem.Started || mem.Joining {
		t.Fatalf("membership snapshot %+v, want started and not joining", mem)
	}
	foundPeer := false
	for _, st := range mem.Sites {
		if st.Site == 1 {
			foundPeer = true
			if st.Dead {
				t.Fatal("healthy peer reported dead")
			}
			if !st.Neighbor {
				t.Fatal("direct peer not flagged as neighbor")
			}
		}
	}
	if !foundPeer {
		t.Fatalf("membership snapshot misses the peer: %+v", mem.Sites)
	}

	// expvar surface exists and carries the rtds map.
	var vars map[string]json.RawMessage
	getJSON(t, srv0.URL+"/debug/vars", &vars)
	if _, ok := vars["rtds"]; !ok {
		t.Fatal("/debug/vars has no rtds entry")
	}

	// The Prometheus plane: valid text format, live values.
	resp, err = http.Get(srv0.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Errorf("/metrics content type %q", ct)
	}
	if err := metrics.ValidateText(promBody); err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v\n%s", err, promBody)
	}
	for _, want := range []string{
		"rtds_node_ready 1",
		"rtds_node_jobs_accepted_total 1",
		`rtds_node_messages_by_kind_total{kind=`,
	} {
		if !strings.Contains(string(promBody), want) {
			t.Errorf("/metrics missing %q:\n%s", want, promBody)
		}
	}
}

// Every family a live scrape can emit must be in MetricNames (the set
// docs/metrics.md is tested against).
func TestMetricNamesCoverLiveScrape(t *testing.T) {
	live := buildPromRegistry(StatsReply{
		Ready: true, Messages: 3, ByKind: map[string]int64{"rtds.enroll": 2},
	}).Names()
	declared := make(map[string]bool)
	for _, n := range MetricNames() {
		declared[n] = true
	}
	for _, n := range live {
		if !declared[n] {
			t.Errorf("live scrape emits %s, absent from MetricNames()", n)
		}
	}
}

// serverOf digs the *Server back out of the httptest handler (it is the
// handler).
func serverOf(t *testing.T, ts *httptest.Server) *Server {
	t.Helper()
	s, ok := ts.Config.Handler.(*Server)
	if !ok {
		t.Fatalf("handler is %T, want *Server", ts.Config.Handler)
	}
	return s
}
