package nodeapi

import (
	"net/http"

	"repro/internal/determinism"
	"repro/internal/metrics"
)

// buildPromRegistry renders one stats snapshot as a Prometheus registry.
// Node statistics are cumulative counters maintained by the protocol
// core, so scrape-time construction is cheaper and simpler than keeping a
// live registry in sync; it also makes every scrape a consistent
// snapshot. MetricNames derives the documented family set from the same
// function, so the two cannot drift.
func buildPromRegistry(st StatsReply) *metrics.Registry {
	r := metrics.NewRegistry()
	ready := 0.0
	if st.Ready {
		ready = 1
	}
	r.NewGauge("rtds_node_ready",
		"1 once the PCS bootstrap completed and the epoch is sealed.").Set(ready)
	r.NewGauge("rtds_node_site",
		"Site ID of this node in the shared topology.").Set(float64(st.Site))
	r.NewCounter("rtds_node_messages_total",
		"Protocol messages sent since the bootstrap was sealed.").Add(float64(st.Messages))
	r.NewCounter("rtds_node_bytes_total",
		"Protocol bytes sent since the bootstrap was sealed.").Add(float64(st.Bytes))
	r.NewCounter("rtds_node_dropped_total",
		"Messages dropped by fault injection or overflow.").Add(float64(st.Dropped))
	byKind := r.NewCounterVec("rtds_node_messages_by_kind_total",
		"Protocol messages sent, by message kind.", "kind")
	for _, kind := range determinism.SortedKeys(st.ByKind) {
		byKind.With(kind).Add(float64(st.ByKind[kind]))
	}
	r.NewCounter("rtds_node_bootstrap_messages_total",
		"Messages spent on the PCS bootstrap phase.").Add(float64(st.BootstrapMessages))
	r.NewCounter("rtds_node_bootstrap_bytes_total",
		"Bytes spent on the PCS bootstrap phase.").Add(float64(st.BootstrapBytes))
	r.NewCounter("rtds_node_jobs_total",
		"Jobs submitted at this site.").Add(float64(st.Jobs))
	r.NewCounter("rtds_node_jobs_decided_total",
		"Locally submitted jobs with a decision.").Add(float64(st.Decided))
	r.NewCounter("rtds_node_jobs_accepted_total",
		"Locally submitted jobs the cluster guaranteed.").Add(float64(st.Accepted))
	r.NewCounter("rtds_node_violations_total",
		"Protocol invariant violations detected by the runtime oracle.").Add(float64(st.Violations))
	r.NewCounter("rtds_node_disruptions_total",
		"Fault-injection disruptions applied to this node.").Add(float64(st.Disruptions))
	r.NewGauge("rtds_node_routing_table_bytes",
		"Per-site routing-state footprint in bytes (intra-region table plus landmark vector under hierarchical routing; the full table when flat).").Set(float64(st.RoutingTableBytes))
	r.NewGauge("rtds_node_routing_entries",
		"Destinations the local routing state resolves directly (region members plus landmarks under hierarchical routing; all sites when flat).").Set(float64(st.RoutingEntries))
	r.NewGauge("rtds_node_decision_latency_p50_seconds",
		"Median decision latency of locally submitted jobs, in virtual seconds.").Set(st.DecisionLatencyP50)
	r.NewGauge("rtds_node_decision_latency_p99_seconds",
		"p99 decision latency of locally submitted jobs, in virtual seconds.").Set(st.DecisionLatencyP99)
	return r
}

// handleProm serves GET /metrics in the Prometheus text format.
func (s *Server) handleProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.ContentType)
	buildPromRegistry(s.stats()).WriteTo(w)
}

// MetricNames lists every metric family the node exports, for the
// docs/metrics.md coverage test.
func MetricNames() []string {
	return buildPromRegistry(StatsReply{}).Names()
}
