package routing

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Build runs the full distributed PCS construction over a private
// discrete-event network and returns every site's routing table plus the
// communication statistics of the construction. rounds is typically
// RoundsForRadius(h).
func Build(topo *graph.Graph, rounds int) (map[graph.NodeID]*Table, *simnet.Stats, error) {
	engine := sim.New()
	tr := simnet.NewDES(engine, topo)
	nodes := make(map[graph.NodeID]*Node, topo.Len())
	tables := make(map[graph.NodeID]*Table, topo.Len())
	for id := graph.NodeID(0); int(id) < topo.Len(); id++ {
		id := id
		nodes[id] = NewNode(id, topo.Neighbors(id), rounds,
			func(to graph.NodeID, p simnet.Payload) {
				if err := tr.Send(id, to, p); err != nil {
					panic(err) // routing only sends to direct neighbors
				}
			},
			func(t *Table) { tables[id] = t },
		)
		tr.Attach(id, func(from graph.NodeID, p simnet.Payload) {
			msg, ok := p.(TableMsg)
			if !ok {
				panic(fmt.Sprintf("routing: unexpected payload %q", p.Kind()))
			}
			nodes[id].HandleTable(from, msg)
		})
	}
	for id := graph.NodeID(0); int(id) < topo.Len(); id++ {
		nodes[id].Start()
	}
	if err := engine.Run(); err != nil {
		return nil, nil, fmt.Errorf("routing: construction did not converge: %w", err)
	}
	for id := graph.NodeID(0); int(id) < topo.Len(); id++ {
		if tables[id] == nil {
			return nil, nil, fmt.Errorf("routing: node %d did not finish after %d rounds", id, rounds)
		}
	}
	return tables, tr.Stats(), nil
}

// CentralTables is the centralized oracle: it computes, without any message
// exchange, exactly the tables the distributed protocol produces at every
// node after the given number of rounds — minimum delay over paths of at
// most rounds+1 edges, minimum hop counts capped the same way, and the
// deterministic next-hop tie-breaking of Table.merge. The whole synchronous
// information flow is simulated once; callers that need every site's table
// (the bidding baseline) must use this instead of calling CentralTable per
// site, which would redo the n-node simulation n times.
func CentralTables(topo *graph.Graph, rounds int) []*Table {
	return RebuildAlive(topo, rounds, func(graph.NodeID) bool { return true })
}

// RebuildAlive recomputes the routing tables of the surviving sites after a
// set of sites has been declared dead: the CentralTables synchronous flow
// (CentralTables delegates here with an all-alive predicate), run over the
// alive subgraph — dead nodes contribute no table and dead links carry no
// snapshot. It stands in for the §7 re-flood a deployment would trigger on
// failure detection, so surviving sites route around dead ones where an
// alive path of at most rounds+1 edges exists; destinations with no such
// path simply drop out of the tables and the protocol layer degrades to
// dropping traffic addressed to them. Dead sites' slots in the returned
// slice are nil.
func RebuildAlive(topo *graph.Graph, rounds int, alive func(graph.NodeID) bool) []*Table {
	n := topo.Len()
	state := make([]*Table, n)
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		if !alive(id) {
			continue
		}
		var nbrs []graph.Edge
		for _, e := range topo.Neighbors(id) {
			if alive(e.To) {
				nbrs = append(nbrs, e)
			}
		}
		state[v] = NewTable(id, nbrs)
	}
	for r := 0; r < rounds; r++ {
		snaps := make([][]WireRoute, n)
		for v := 0; v < n; v++ {
			if state[v] != nil {
				snaps[v] = state[v].snapshot()
			}
		}
		changed := false
		for v := 0; v < n; v++ {
			if state[v] == nil {
				continue
			}
			for _, e := range topo.Neighbors(graph.NodeID(v)) {
				if state[e.To] == nil {
					continue
				}
				if state[v].merge(e.To, e.Delay, snaps[e.To]) {
					changed = true
				}
			}
		}
		// Fixed point: further rounds cannot alter any table, so stopping
		// early returns exactly what the remaining rounds would.
		if !changed {
			break
		}
	}
	return state
}

// CentralTable computes one node's table (see CentralTables). Callers that
// need many nodes' tables should call CentralTables once instead.
func CentralTable(topo *graph.Graph, k graph.NodeID, rounds int) *Table {
	return CentralTables(topo, rounds)[k]
}

// OracleSphere computes the PCS of k (radius h) straight from the topology:
// all nodes whose BFS hop distance is at most h. Used by tests to validate
// Table.Sphere.
func OracleSphere(topo *graph.Graph, k graph.NodeID, h int) []graph.NodeID {
	hops := topo.HopDistances(k)
	var out []graph.NodeID
	for v, d := range hops {
		if d >= 0 && d <= h {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}
