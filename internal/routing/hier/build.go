package hier

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Build runs the full two-phase hierarchical bootstrap over a private
// discrete-event network and returns every site's table plus the
// communication statistics of the construction — the hierarchical
// counterpart of routing.Build, used by tests and offline tooling. The
// live protocol path (internal/core) drives the same Bootstrap state
// machines over the cluster's own transport instead.
func Build(topo *graph.Graph) (map[graph.NodeID]*Table, *Layout, *simnet.Stats, error) {
	lay, err := NewLayout(topo)
	if err != nil {
		return nil, nil, nil, err
	}
	engine := sim.New()
	tr := simnet.NewDES(engine, topo)
	boots := make(map[graph.NodeID]*Bootstrap, topo.Len())
	for id := graph.NodeID(0); int(id) < topo.Len(); id++ {
		id := id
		boots[id] = NewBootstrap(id, topo.Neighbors(id), lay,
			func(to graph.NodeID, p simnet.Payload) {
				if err := tr.Send(id, to, p); err != nil {
					panic(err) // the bootstrap only sends to direct neighbors
				}
			})
		tr.Attach(id, func(from graph.NodeID, p simnet.Payload) {
			switch msg := p.(type) {
			case routing.TableMsg:
				boots[id].HandleTable(from, msg)
			case LandmarkAd:
				boots[id].HandleAd(from, msg)
			default:
				panic(fmt.Sprintf("hier: unexpected payload %q", p.Kind()))
			}
		})
	}
	for id := graph.NodeID(0); int(id) < topo.Len(); id++ {
		boots[id].Start()
	}
	if err := engine.Run(); err != nil {
		return nil, nil, nil, fmt.Errorf("hier: bootstrap did not converge: %w", err)
	}
	tables := make(map[graph.NodeID]*Table, topo.Len())
	for id := graph.NodeID(0); int(id) < topo.Len(); id++ {
		if !boots[id].Done() {
			return nil, nil, nil, fmt.Errorf("hier: site %d drained without converging (missing regions %v)",
				id, boots[id].MissingRegions())
		}
		tables[id] = boots[id].Finish()
	}
	return tables, lay, tr.Stats(), nil
}
