// Package hier implements two-level region/landmark routing on top of the
// flat §7 distance-vector protocol of internal/routing, so per-site routing
// state stays sub-linear in the network size:
//
//   - the topology is partitioned into ~√n connected regions
//     (graph.Partition), and each region deterministically elects the
//     member with the smallest intra-region hop eccentricity as its
//     landmark (ties to the lowest site ID);
//   - every site runs the interrupted distance-vector bootstrap over its
//     intra-region links only, producing an exact table of its region
//     (O(√n) entries);
//   - every landmark floods a small advertisement through the whole
//     network; each site keeps, per region, its best distance/next-hop
//     toward that region's landmark (O(√n) entries of constant size) and
//     re-forwards only improvements, so the flood quiesces.
//
// Forwarding: a destination in the local region follows the exact intra
// table; any other destination is forwarded along the landmark gradient of
// its region until the message enters that region, where the intra table
// takes over. Intra-region paths never leave the region (the bootstrap only
// saw intra-region links), so region-local protocol traffic crosses zero
// region boundaries.
//
// Per-site state is therefore O(√n) entries — versus O(n) for the flat
// table — and the bootstrap exchanges O(regionEdges·regionDiam) table
// messages plus O(E·√n) constant-size advertisements instead of flooding
// O(n)-entry tables network-wide.
package hier

import (
	"fmt"

	"repro/internal/determinism"
	"repro/internal/graph"
)

// Layout is the deterministic region/landmark structure derived from a
// topology: a pure function of the graph, shared by every site (the same
// way every site already knows the topology's delay ranges and its own
// neighbor list). It carries no per-site routing state.
type Layout struct {
	// Regions is the number of regions (~√n).
	Regions int
	// Assign maps every site to its region.
	Assign []int
	// Members lists each region's sites in ascending ID order.
	Members [][]graph.NodeID
	// Landmarks names each region's elected landmark.
	Landmarks []graph.NodeID
	// Rounds is the per-region intra-region bootstrap round count:
	// routing.RoundsForRadius of the region's hop diameter, the same
	// interruption idiom as the flat protocol.
	Rounds []int
	// Adjacent lists, per region, the regions it shares a cut edge with,
	// in ascending order.
	Adjacent [][]int
}

// RegionsFor returns the region count used for an n-site network: ⌈√n⌉.
func RegionsFor(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// NewLayout partitions the topology into ⌈√n⌉ regions and elects the
// landmarks. The topology must be connected (graph.Partition then yields
// internally connected regions, which the intra-region bootstrap requires).
func NewLayout(topo *graph.Graph) (*Layout, error) {
	n := topo.Len()
	if n == 0 {
		return nil, fmt.Errorf("hier: empty topology")
	}
	if !topo.Connected() {
		return nil, fmt.Errorf("hier: topology is not connected")
	}
	nregions := RegionsFor(n)
	lay := &Layout{
		Regions:   nregions,
		Assign:    topo.Partition(nregions),
		Members:   make([][]graph.NodeID, nregions),
		Landmarks: make([]graph.NodeID, nregions),
		Rounds:    make([]int, nregions),
		Adjacent:  make([][]int, nregions),
	}
	for v, r := range lay.Assign {
		lay.Members[r] = append(lay.Members[r], graph.NodeID(v))
	}
	adj := make([]map[int]bool, nregions)
	for r := range adj {
		adj[r] = make(map[int]bool)
	}
	for v := 0; v < n; v++ {
		for _, e := range topo.Neighbors(graph.NodeID(v)) {
			if a, b := lay.Assign[v], lay.Assign[e.To]; a != b {
				adj[a][b] = true
			}
		}
	}
	for r := 0; r < nregions; r++ {
		if len(lay.Members[r]) == 0 {
			return nil, fmt.Errorf("hier: region %d is empty", r)
		}
		landmark, diam, err := electLandmark(topo, lay.Assign, lay.Members[r])
		if err != nil {
			return nil, fmt.Errorf("hier: region %d: %w", r, err)
		}
		lay.Landmarks[r] = landmark
		lay.Rounds[r] = roundsForDiameter(diam)
		lay.Adjacent[r] = determinism.SortedKeys(adj[r])
	}
	return lay, nil
}

// roundsForDiameter converts a region's hop diameter into intra-region
// bootstrap rounds, mirroring routing.RoundsForRadius: 2·diam−1 rounds
// discover every intra-region path of at most 2·diam edges — the same
// "stop after 2h phases" interruption the flat protocol applies globally.
func roundsForDiameter(diam int) int {
	if diam < 1 {
		return 0
	}
	return 2*diam - 1
}

// electLandmark returns the region member with the smallest hop
// eccentricity within the region's induced subgraph (ties to the lowest
// ID, which the ascending member order provides), plus the region's hop
// diameter. Errors if the region is not internally connected.
func electLandmark(topo *graph.Graph, assign []int, members []graph.NodeID) (graph.NodeID, int, error) {
	best, bestEcc, diam := graph.NodeID(-1), -1, 0
	for _, m := range members {
		ecc, err := regionEccentricity(topo, assign, m, len(members))
		if err != nil {
			return -1, 0, err
		}
		if best < 0 || ecc < bestEcc {
			best, bestEcc = m, ecc
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return best, diam, nil
}

// regionEccentricity BFSes from src over intra-region links only and
// returns the maximum hop distance to any region member. Errors if some
// member is unreachable inside the region.
func regionEccentricity(topo *graph.Graph, assign []int, src graph.NodeID, members int) (int, error) {
	region := assign[src]
	dist := map[graph.NodeID]int{src: 0}
	queue := []graph.NodeID{src}
	ecc := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range topo.Neighbors(u) {
			if assign[e.To] != region {
				continue
			}
			if _, ok := dist[e.To]; ok {
				continue
			}
			dist[e.To] = dist[u] + 1
			if dist[e.To] > ecc {
				ecc = dist[e.To]
			}
			queue = append(queue, e.To)
		}
	}
	if len(dist) != members {
		return 0, fmt.Errorf("region of site %d is not internally connected (%d of %d members reachable)",
			src, len(dist), members)
	}
	return ecc, nil
}

// MaxRounds reports the largest per-region bootstrap round count — the
// bound every region's intra path length stays under.
func (l *Layout) MaxRounds() int {
	max := 0
	for _, r := range l.Rounds {
		if r > max {
			max = r
		}
	}
	return max
}

// Region reports the region of a site.
func (l *Layout) Region(site graph.NodeID) int { return l.Assign[site] }

// SameRegion reports whether two sites share a region.
func (l *Layout) SameRegion(a, b graph.NodeID) bool { return l.Assign[a] == l.Assign[b] }
