package hier

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
)

func testTopo(n int, seed int64) *graph.Graph {
	return graph.RandomConnected(n, 4, graph.DelayRange{Min: 0.05, Max: 0.3}, seed)
}

func TestLayoutDeterministicAndConnected(t *testing.T) {
	topo := testTopo(128, 7)
	a, err := NewLayout(topo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLayout(topo)
	if err != nil {
		t.Fatal(err)
	}
	if a.Regions != RegionsFor(128) {
		t.Fatalf("Regions = %d, want %d", a.Regions, RegionsFor(128))
	}
	for r := 0; r < a.Regions; r++ {
		if a.Landmarks[r] != b.Landmarks[r] {
			t.Fatalf("region %d: landmark %d vs %d across runs", r, a.Landmarks[r], b.Landmarks[r])
		}
		if got := a.Assign[a.Landmarks[r]]; got != r {
			t.Fatalf("region %d: landmark %d lives in region %d", r, a.Landmarks[r], got)
		}
		if len(a.Members[r]) == 0 {
			t.Fatalf("region %d empty", r)
		}
	}
	for v, r := range a.Assign {
		if r != b.Assign[v] {
			t.Fatalf("site %d: region %d vs %d across runs", v, r, b.Assign[v])
		}
	}
}

// TestBuildDeliversEverywhere drives the full two-phase bootstrap and then
// forwards a probe between every ordered site pair using only the
// per-site NextHop answers: every probe must arrive, and probes between
// region mates must never leave the region (the zero-cross-region-traffic
// property the regional commit spheres rely on).
func TestBuildDeliversEverywhere(t *testing.T) {
	topo := testTopo(96, 3)
	tables, lay, _, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	n := topo.Len()
	maxHops := 4 * n // generous loop guard; gradient routing is loop-free
	for s := graph.NodeID(0); int(s) < n; s++ {
		for d := graph.NodeID(0); int(d) < n; d++ {
			if s == d {
				continue
			}
			cur, hops := s, 0
			for cur != d {
				next, ok := tables[cur].NextHop(d)
				if !ok {
					t.Fatalf("no route at %d toward %d (from %d)", cur, d, s)
				}
				if !topo.HasEdge(cur, next) {
					t.Fatalf("table at %d forwards to non-neighbor %d", cur, next)
				}
				if lay.SameRegion(s, d) && !lay.SameRegion(cur, next) {
					t.Fatalf("intra-region probe %d->%d left the region at %d->%d", s, d, cur, next)
				}
				cur = next
				if hops++; hops > maxHops {
					t.Fatalf("probe %d->%d looped", s, d)
				}
			}
		}
	}
}

func TestIntraTableMatchesRegionOracle(t *testing.T) {
	topo := testTopo(64, 11)
	tables, lay, _, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	// The intra table of each site must equal the flat protocol's table
	// over the region's induced subgraph at the region's round count.
	for r := 0; r < lay.Regions; r++ {
		sub, remap := regionSubgraph(topo, lay, r)
		oracle := routing.CentralTables(sub, lay.Rounds[r])
		for local, site := range lay.Members[r] {
			intra := tables[site].Intra()
			for localD, siteD := range lay.Members[r] {
				want := oracle[local].Dist(graph.NodeID(localD))
				got := intra.Dist(siteD)
				if got != want {
					t.Fatalf("region %d: dist %d->%d = %v, oracle %v", r, site, siteD, got, want)
				}
			}
			_ = remap
		}
	}
}

// regionSubgraph builds the induced subgraph of region r with nodes
// renumbered to 0..len(members)-1 in member order.
func regionSubgraph(topo *graph.Graph, lay *Layout, r int) (*graph.Graph, map[graph.NodeID]graph.NodeID) {
	members := lay.Members[r]
	remap := make(map[graph.NodeID]graph.NodeID, len(members))
	for i, m := range members {
		remap[m] = graph.NodeID(i)
	}
	sub := graph.New(len(members))
	for _, m := range members {
		for _, e := range topo.Neighbors(m) {
			if lay.Assign[e.To] == r && m < e.To {
				sub.MustAddEdge(remap[m], remap[e.To], e.Delay)
			}
		}
	}
	return sub, remap
}

// TestStateSubLinear pins the headline: per-site state entries grow like
// √n, not n. At 1,024 sites the largest per-site state must stay under an
// eighth of the flat table's n entries.
func TestStateSubLinear(t *testing.T) {
	topo := testTopo(1024, 1)
	tables, _, _, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0
	for id := graph.NodeID(0); int(id) < topo.Len(); id++ {
		if e := tables[id].StateEntries(); e > worst {
			worst = e
		}
	}
	if worst >= 1024/8 {
		t.Fatalf("worst per-site state %d entries at n=1024; want sub-linear (< %d)", worst, 1024/8)
	}
}

func TestEscalationLandmarks(t *testing.T) {
	topo := testTopo(64, 5)
	tables, lay, _, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	for id := graph.NodeID(0); int(id) < topo.Len(); id++ {
		r := lay.Region(id)
		esc := tables[id].EscalationLandmarks()
		if len(esc) != len(lay.Adjacent[r]) {
			t.Fatalf("site %d: %d escalation landmarks, %d adjacent regions", id, len(esc), len(lay.Adjacent[r]))
		}
		for _, lm := range esc {
			if lay.Region(lm) == r {
				t.Fatalf("site %d: escalation landmark %d is in its own region", id, lm)
			}
			if lay.Landmarks[lay.Region(lm)] != lm {
				t.Fatalf("site %d: %d is not the landmark of region %d", id, lm, lay.Region(lm))
			}
		}
	}
}
